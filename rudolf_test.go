package rudolf_test

import (
	"strings"
	"testing"

	rudolf "repro"
)

// buildSchema assembles the paper's four-attribute schema through the public
// API only.
func buildSchema(t *testing.T) *rudolf.Schema {
	t.Helper()
	loc := rudolf.NewOntology("location").
		Add("World").
		Add("Gas Station", "World").
		Add("Gas Station A", "Gas Station").
		Add("Gas Station B", "Gas Station").
		Add("Online Store", "World").
		MustBuild()
	s, err := rudolf.NewSchema(
		rudolf.Attribute{Name: "time", Kind: rudolf.Numeric,
			Domain: rudolf.NewDomain(0, 1439), Format: rudolf.FormatTimeOfDay},
		rudolf.Attribute{Name: "amount", Kind: rudolf.Numeric,
			Domain: rudolf.NewDomain(0, 100000), Format: rudolf.FormatMoney},
		rudolf.Attribute{Name: "type", Kind: rudolf.Categorical,
			Ontology: rudolf.PaperTypeOntology()},
		rudolf.Attribute{Name: "location", Kind: rudolf.Categorical,
			Ontology: loc},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPublicAPISession runs a complete refinement session against the
// public API: load transactions, parse rules, refine with the auto expert,
// and check that the frauds end up captured.
func TestPublicAPISession(t *testing.T) {
	s := buildSchema(t)
	rel := rudolf.NewRelation(s)
	typeOnt := s.Attr(2).Ontology
	locOnt := s.Attr(3).Ontology
	add := func(h, m, amt int64, typ, loc string, lab rudolf.Label) {
		_, err := rel.Append(rudolf.Tuple{
			h*60 + m, amt,
			int64(typeOnt.MustLookup(typ)),
			int64(locOnt.MustLookup(loc)),
		}, lab, 500)
		if err != nil {
			t.Fatal(err)
		}
	}
	add(18, 2, 107, "Online, no CCV", "Online Store", rudolf.Fraud)
	add(18, 3, 106, "Online, no CCV", "Online Store", rudolf.Fraud)
	add(18, 4, 112, "Online, with CCV", "Online Store", rudolf.Legitimate)
	add(20, 53, 46, "Offline, without PIN", "Gas Station B", rudolf.Fraud)
	add(21, 1, 49, "Offline, with PIN", "Gas Station A", rudolf.Unlabeled)

	rs, err := rudolf.ParseRules(s,
		"time in [18:00,18:05] && amount >= $110",
		`time in [20:45,21:15] && amount >= $40 && location = "Gas Station A"`,
	)
	if err != nil {
		t.Fatal(err)
	}
	sess := rudolf.NewSession(rs, rudolf.NewAutoAcceptExpert(), rudolf.Options{})
	stats := sess.Refine(rel)
	if stats.FraudCaptured != stats.FraudTotal {
		t.Fatalf("frauds captured %d/%d\n%s",
			stats.FraudCaptured, stats.FraudTotal, sess.Rules().Format(s))
	}
	if stats.LegitCaptured != 0 {
		t.Fatalf("legitimate still captured\n%s", sess.Rules().Format(s))
	}
	// The caller's rule set is untouched.
	if rs.Len() != 2 {
		t.Error("session mutated the input rule set")
	}
}

func TestPublicAPIRuleIO(t *testing.T) {
	s := buildSchema(t)
	rs, err := rudolf.ParseRules(s,
		"amount >= $100",
		`location <= "Gas Station" && time in [20:00,21:00]`,
	)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := rudolf.WriteRules(&buf, s, rs); err != nil {
		t.Fatal(err)
	}
	got, err := rudolf.ReadRules(strings.NewReader("# comment\n\n"+buf.String()), s)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != rs.Len() {
		t.Fatalf("round trip %d rules, want %d", got.Len(), rs.Len())
	}
	for i := 0; i < rs.Len(); i++ {
		if !got.Rule(i).Equal(s, rs.Rule(i)) {
			t.Errorf("rule %d differs after round trip", i)
		}
	}
	if _, err := rudolf.ReadRules(strings.NewReader("nonsense"), s); err == nil {
		t.Error("bad rule file accepted")
	}
}

func TestPublicAPIDatasetAndOracle(t *testing.T) {
	ds := rudolf.GenerateDataset(rudolf.DataConfig{Size: 1500, Seed: 4})
	if ds.Rel.Len() != 1500 {
		t.Fatalf("dataset size = %d", ds.Rel.Len())
	}
	initial := rudolf.InitialRules(ds, 0, 4)
	sess := rudolf.NewSession(initial, rudolf.NewOracleExpert(ds.Truth),
		rudolf.Options{Clusterer: rudolf.DatasetClusterer()})
	stats := sess.Refine(ds.Rel)
	if stats.FraudCaptured != stats.FraudTotal {
		t.Errorf("oracle session missed frauds: %d/%d", stats.FraudCaptured, stats.FraudTotal)
	}
	if sess.Log().Len() == 0 {
		t.Error("no modifications logged")
	}
}

func TestPublicAPICSVRoundTrip(t *testing.T) {
	ds := rudolf.GenerateDataset(rudolf.DataConfig{Size: 200, Seed: 9})
	var buf strings.Builder
	if err := ds.Rel.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := rudolf.ReadCSV(ds.Schema, strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ds.Rel.Len() {
		t.Fatalf("CSV round trip %d rows, want %d", got.Len(), ds.Rel.Len())
	}
}

func TestPublicAPINoviceAndInteractive(t *testing.T) {
	ds := rudolf.GenerateDataset(rudolf.DataConfig{Size: 800, Seed: 5})
	novice := rudolf.NewNoviceExpert(rudolf.NewOracleExpert(ds.Truth), 1)
	sess := rudolf.NewSession(rudolf.InitialRules(ds, 0, 5), novice,
		rudolf.Options{Clusterer: rudolf.DatasetClusterer()})
	sess.Refine(ds.Rel)

	// Interactive expert over a canned stdin that accepts everything and is
	// always satisfied.
	in := strings.NewReader(strings.Repeat("a\n", 500) + strings.Repeat("y\n", 50))
	var out strings.Builder
	ie := rudolf.NewInteractiveExpert(in, &out)
	sess2 := rudolf.NewSession(rudolf.InitialRules(ds, 0, 5), ie,
		rudolf.Options{Clusterer: rudolf.DatasetClusterer(), MaxRounds: 1})
	sess2.Refine(ds.Rel.Prefix(400))
	if out.Len() == 0 {
		t.Error("interactive expert produced no prompts")
	}
}

// TestLargeScaleSmoke exercises the full pipeline at a size closer to the
// paper's smallest FI. Skipped under -short.
func TestLargeScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale smoke test skipped in short mode")
	}
	ds := rudolf.GenerateDataset(rudolf.DataConfig{Size: 50000, FraudPct: 1.0, Seed: 99})
	sess := rudolf.NewSession(rudolf.InitialRules(ds, 55, 99),
		rudolf.NewOracleExpert(ds.Truth),
		rudolf.Options{Clusterer: rudolf.DatasetClusterer()})
	stats := sess.Refine(ds.Rel.Prefix(25000))
	if stats.FraudCaptured != stats.FraudTotal {
		t.Errorf("large-scale refine missed frauds: %d/%d", stats.FraudCaptured, stats.FraudTotal)
	}
	// Compiled evaluation over the full 50K stays fast and agrees with the
	// reference evaluator.
	ev := rudolf.CompileRules(ds.Schema, sess.Rules())
	if !ev.Eval(ds.Rel).Equal(sess.Rules().Eval(ds.Rel)) {
		t.Error("compiled and reference evaluation disagree at scale")
	}
}

// TestPreviewEdit: the what-if deltas match Definition 3.1 on the running
// example.
func TestPreviewEdit(t *testing.T) {
	s := buildSchema(t)
	rel := rudolf.NewRelation(s)
	loc := s.Attr(3).Ontology
	typ := s.Attr(2).Ontology
	rel.MustAppend(rudolf.Tuple{1082, 107, int64(typ.MustLookup("Online, no CCV")),
		int64(loc.MustLookup("Online Store"))}, rudolf.Fraud, 500)
	rel.MustAppend(rudolf.Tuple{1084, 112, int64(typ.MustLookup("Online, with CCV")),
		int64(loc.MustLookup("Online Store"))}, rudolf.Legitimate, 500)

	old, _ := rudolf.ParseRules(s, "amount >= $110")
	new, _ := rudolf.ParseRules(s, "amount >= $100 && type = \"Online, no CCV\"")
	dF, dL, dR := rudolf.PreviewEdit(old, new, rel)
	if dF != 1 || dL != 1 || dR != 0 {
		t.Errorf("PreviewEdit = (%d,%d,%d), want (1,1,0): one more fraud captured, one legit released", dF, dL, dR)
	}
}
