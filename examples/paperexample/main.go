// Paperexample replays the running example of the paper end to end: the
// Figure 1 rules and type ontology, the Figure 2 transactions, the
// Example 4.4 generalizations (including Elena's roundings) and the
// Example 4.7 specializations (including her choice of the type split),
// printing every step.
//
//	go run ./examples/paperexample
package main

import (
	"fmt"

	rudolf "repro"
	"repro/internal/paperdata"
)

func main() {
	s := paperdata.Schema()
	rel := paperdata.Transactions(s)
	ruleSet := paperdata.ExistingRules(s)

	fmt.Println("== Figure 1: existing rules ==")
	fmt.Print(ruleSet.Format(s))
	fmt.Println("\n== Figure 2: today's transactions ==")
	for i := 0; i < rel.Len(); i++ {
		fmt.Printf("  %2d. %s\n", i+1, rel.FormatTuple(i))
	}

	// Elena's decisions for the generalization phase of Example 4.4: accept
	// rule 1's proposal but round the amount down to $100; accept rule 2's
	// but widen the window to 19:15; accept rule 3's (location generalizes
	// to "Gas Station") as proposed.
	elena := &scriptedElena{
		gen: []rudolf.GenDecision{
			{Accept: true, Edited: rudolf.MustParseRule(s, "time in [18:00,18:05] && amount >= $100")},
			{Accept: true, Edited: rudolf.MustParseRule(s, "time in [18:55,19:15] && amount >= $110")},
			{Accept: true},
		},
		split: []rudolf.SplitDecision{
			{Accept: false},                // Example 4.7: not the time split
			{Accept: false},                // nor the amount split
			{Accept: true, Keep: []int{1}}, // the type split; keep "Online, no CCV"
		},
	}

	sess := rudolf.NewSession(ruleSet, elena, rudolf.Options{})

	fmt.Println("\n== Algorithm 1: generalize to capture the frauds (Example 4.4) ==")
	sess.Generalize(rel)
	fmt.Print(sess.Rules().Format(s))
	st := sess.Stats(rel)
	fmt.Printf("captured frauds: %d/%d\n", st.FraudCaptured, st.FraudTotal)

	fmt.Println("\n== The card holders verify l1, l2, l3 as legitimate ==")
	paperdata.LegitimateFollowUp(rel)

	fmt.Println("\n== Algorithm 2: specialize to exclude them (Example 4.7) ==")
	sess.Specialize(rel)
	fmt.Print(sess.Rules().Format(s))
	st = sess.Stats(rel)
	fmt.Printf("captured frauds: %d/%d, captured legitimate: %d\n",
		st.FraudCaptured, st.FraudTotal, st.LegitCaptured)

	fmt.Println("\n== Modification log ==")
	fmt.Print(sess.Log())
}

// scriptedElena replays the fixed decisions of the paper's examples and
// narrates each proposal.
type scriptedElena struct {
	gen   []rudolf.GenDecision
	split []rudolf.SplitDecision
}

func (e *scriptedElena) ReviewGeneralization(p *rudolf.GenProposal) rudolf.GenDecision {
	fmt.Printf("  RUDOLF proposes (score %.0f): %s\n", p.Score, p.Proposed.Format(p.Schema))
	if len(e.gen) == 0 {
		fmt.Println("  Elena accepts.")
		return rudolf.GenDecision{Accept: true}
	}
	d := e.gen[0]
	e.gen = e.gen[1:]
	if d.Edited != nil {
		fmt.Printf("  Elena rounds it to:        %s\n", d.Edited.Format(p.Schema))
	} else {
		fmt.Println("  Elena accepts.")
	}
	return d
}

func (e *scriptedElena) ReviewSplit(p *rudolf.SplitProposal) rudolf.SplitDecision {
	fmt.Printf("  RUDOLF proposes splitting %q on %s:\n",
		p.Original.Format(p.Schema), p.Schema.Attr(p.Attr).Name)
	for i, r := range p.Replacements {
		fmt.Printf("    r%d) %s\n", i+1, r.Format(p.Schema))
	}
	if len(e.split) == 0 {
		fmt.Println("  Elena accepts.")
		return rudolf.SplitDecision{Accept: true}
	}
	d := e.split[0]
	e.split = e.split[1:]
	switch {
	case !d.Accept:
		fmt.Println("  Elena asks for an alternative.")
	case d.Keep != nil:
		fmt.Printf("  Elena accepts, keeping only r%d.\n", d.Keep[0]+1)
	default:
		fmt.Println("  Elena accepts.")
	}
	return d
}

func (e *scriptedElena) Satisfied(st rudolf.RoundStats) bool { return st.Perfect() }
