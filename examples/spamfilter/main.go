// Spamfilter applies RUDOLF to spam-rule refinement (another domain the
// paper names): rules over a relation of mail features — sending-domain
// ontology, link count, message size, hour — are adapted interactively as a
// new spam campaign starts and a false positive is reported. The expert here
// is scripted, standing in for a postmaster reviewing proposals.
//
//	go run ./examples/spamfilter
package main

import (
	"fmt"
	"math/rand"

	rudolf "repro"
)

func main() {
	domainOnt := rudolf.NewOntology("sender").
		Add("Any Sender").
		Add("Corporate", "Any Sender").
		Add("Freemail", "Any Sender").
		Add("Disposable", "Any Sender").
		Add("partner.example", "Corporate").
		Add("internal.example", "Corporate").
		Add("gmail.test", "Freemail").
		Add("hotmail.test", "Freemail").
		Add("tempmail.test", "Disposable").
		Add("10minute.test", "Disposable").
		MustBuild()

	schema := rudolf.MustSchema(
		rudolf.Attribute{Name: "hour", Kind: rudolf.Numeric,
			Domain: rudolf.NewDomain(0, 23), Format: rudolf.FormatPlain},
		rudolf.Attribute{Name: "links", Kind: rudolf.Numeric,
			Domain: rudolf.NewDomain(0, 500), Format: rudolf.FormatPlain},
		rudolf.Attribute{Name: "kbytes", Kind: rudolf.Numeric,
			Domain: rudolf.NewDomain(0, 10000), Format: rudolf.FormatPlain},
		rudolf.Attribute{Name: "sender", Kind: rudolf.Categorical, Ontology: domainOnt},
	)

	rel := rudolf.NewRelation(schema)
	rng := rand.New(rand.NewSource(11))
	leaf := func(names ...string) int64 {
		return int64(domainOnt.MustLookup(names[rng.Intn(len(names))]))
	}
	// Normal mail.
	for i := 0; i < 400; i++ {
		rel.MustAppend(rudolf.Tuple{
			int64(rng.Intn(24)), int64(rng.Intn(8)), int64(2 + rng.Intn(200)),
			leaf("partner.example", "internal.example", "gmail.test", "hotmail.test"),
		}, rudolf.Unlabeled, 150)
	}
	// New campaign: disposable-domain blasts with many links, small bodies.
	for i := 0; i < 25; i++ {
		rel.MustAppend(rudolf.Tuple{
			int64(rng.Intn(24)), int64(25 + rng.Intn(60)), int64(1 + rng.Intn(12)),
			leaf("tempmail.test", "10minute.test"),
		}, rudolf.Fraud, 920) // spam plays the "fraud" role
	}
	// A user-reported false positive: the partner newsletter (many links).
	newsletter := rudolf.Tuple{9, 40, 180, int64(domainOnt.MustLookup("partner.example"))}
	fp := rel.MustAppend(newsletter, rudolf.Legitimate, 700)

	// The incumbent filter: anything with very many links.
	ruleSet, err := rudolf.ParseRules(schema, "links >= 35")
	if err != nil {
		panic(err)
	}

	fmt.Printf("mail: %d messages, %d reported spam\n", rel.Len(), rel.Count(rudolf.Fraud))
	fmt.Printf("\nincumbent filter:\n%s\n", ruleSet.Format(schema))

	// The postmaster knows the campaign signature and rewrites proposals to
	// the disposable-domain pattern; for the newsletter complaint they insist
	// on the sender-based split.
	sess := rudolf.NewSession(ruleSet, spamExpert{schema: schema, ont: domainOnt},
		rudolf.Options{Weights: rudolf.Weights{Alpha: 10, Beta: 4, Gamma: 0.25}})
	stats := sess.Refine(rel)

	fmt.Printf("refined filter:\n%s\n", sess.Rules().Format(schema))
	fmt.Printf("spam caught: %d/%d, false positives: %d (newsletter passes: %v)\n",
		stats.FraudCaptured, stats.FraudTotal, stats.LegitCaptured,
		len(sess.Rules().CapturingRules(schema, rel.Tuple(fp))) == 0)
}

// spamExpert accepts proposals, but rounds any generalization touching the
// sender to the whole "Disposable" category (domain knowledge: the campaign
// rotates through throwaway domains).
type spamExpert struct {
	schema *rudolf.Schema
	ont    *rudolf.Ontology
}

func (e spamExpert) ReviewGeneralization(p *rudolf.GenProposal) rudolf.GenDecision {
	sender := e.schema.MustIndex("sender")
	disposable := e.ont.MustLookup("Disposable")
	cond := p.Proposed.Cond(sender)
	if cond.C != e.ont.Top() && e.ont.Contains(disposable, cond.C) && cond.C != disposable {
		edited := p.Proposed.Clone()
		edited.SetCond(sender, rudolf.ConceptCond(disposable))
		return rudolf.GenDecision{Accept: true, Edited: edited}
	}
	return rudolf.GenDecision{Accept: true}
}

func (e spamExpert) ReviewSplit(p *rudolf.SplitProposal) rudolf.SplitDecision {
	// Prefer the sender-based split for the newsletter complaint.
	if p.Attr != e.schema.MustIndex("sender") {
		return rudolf.SplitDecision{Accept: false}
	}
	return rudolf.SplitDecision{Accept: true}
}

func (e spamExpert) Satisfied(st rudolf.RoundStats) bool { return st.Perfect() }
