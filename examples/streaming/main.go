// Streaming shows RUDOLF in day-by-day operation, the way a fraud desk
// would actually run it: each morning the analyst reviews yesterday's
// reported frauds and verified legitimates, runs a refinement round over
// everything seen so far, commits the resulting rule set to the version
// history, and classifies the new day's traffic with the compiled evaluator.
// A drift pattern that starts mid-stream demonstrates rule adaptation.
//
//	go run ./examples/streaming
package main

import (
	"fmt"

	rudolf "repro"
)

func main() {
	ds := rudolf.GenerateDataset(rudolf.DataConfig{
		Size: 4000, FraudPct: 2.0, Days: 20, Seed: 17, DriftFraction: 0.4,
	})
	schema := ds.Schema
	sess := rudolf.NewSession(rudolf.InitialRules(ds, 0, 17),
		rudolf.NewOracleExpert(ds.Truth),
		rudolf.Options{Clusterer: rudolf.DatasetClusterer()})
	hist := rudolf.NewHistory(schema)
	hist.Commit(sess.Rules(), nil, "incumbent rules")

	// Transactions are time-sorted; find each day's end index.
	dayEnd := make(map[int64]int)
	for i := 0; i < ds.Rel.Len(); i++ {
		dayEnd[ds.Rel.Tuple(i)[0]] = i + 1
	}

	fmt.Println("day  seen   rules  mods  caught  missed  false+")
	logMark := 0
	for day := int64(4); day < 20; day += 3 {
		seen := dayEnd[day]
		sess.Refine(ds.Rel.Prefix(seen))
		mods := sess.Log().All()[logMark:]
		logMark = sess.Log().Len()
		hist.Commit(sess.Rules(), mods, fmt.Sprintf("after day %d", day))

		// Classify the *next* three days with the compiled evaluator.
		ev := rudolf.CompileRules(schema, sess.Rules())
		captured := ev.Eval(ds.Rel)
		var caught, missed, falsePos int
		hi := ds.Rel.Len()
		if end, ok := dayEnd[day+3]; ok {
			hi = end
		}
		for i := seen; i < hi; i++ {
			switch {
			case ds.TrueFraud[i] && captured.Has(i):
				caught++
			case ds.TrueFraud[i]:
				missed++
			case captured.Has(i):
				falsePos++
			}
		}
		fmt.Printf("%3d  %5d  %5d  %4d  %6d  %6d  %6d\n",
			day, seen, sess.Rules().Len(), len(mods), caught, missed, falsePos)
	}

	fmt.Printf("\nversion history: %d versions\n", hist.Len())
	if diff, err := hist.Diff(0, hist.Len()-1); err == nil {
		fmt.Printf("rules changed since the incumbent set: %d lines of diff\n", len(diff))
		for i, line := range diff {
			if i >= 6 {
				fmt.Printf("  ... %d more\n", len(diff)-i)
				break
			}
			fmt.Println(" ", line)
		}
	}
}
