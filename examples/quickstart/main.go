// Quickstart: generate a small synthetic financial-institute dataset, take
// its (imperfect) incumbent rule set, and run one automatic refinement pass
// (the RUDOLF⁻ mode — no human in the loop) to capture the reported frauds
// and exclude the verified legitimate transactions.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	rudolf "repro"
)

func main() {
	// A 2000-transaction FI dataset with planted attack patterns.
	ds := rudolf.GenerateDataset(rudolf.DataConfig{Size: 2000, FraudPct: 2.0, Seed: 7})
	initial := rudolf.InitialRules(ds, 0, 7)

	fmt.Printf("dataset: %d transactions, %d reported frauds\n\n",
		ds.Rel.Len(), ds.Rel.Count(rudolf.Fraud))
	fmt.Printf("incumbent rules (%d):\n%s\n", initial.Len(), initial.Format(ds.Schema))

	sess := rudolf.NewSession(initial, rudolf.NewAutoAcceptExpert(), rudolf.Options{
		Clusterer: rudolf.DatasetClusterer(),
	})
	before := sess.Stats(ds.Rel)
	stats := sess.Refine(ds.Rel)

	fmt.Printf("before: %d/%d frauds captured, %d legitimate wrongly captured\n",
		before.FraudCaptured, before.FraudTotal, before.LegitCaptured)
	fmt.Printf("after:  %d/%d frauds captured, %d legitimate wrongly captured (%d modifications)\n\n",
		stats.FraudCaptured, stats.FraudTotal, stats.LegitCaptured, stats.Modifications)
	fmt.Printf("refined rules (%d):\n%s", sess.Rules().Len(), sess.Rules().Format(ds.Schema))
	fmt.Printf("\nmodification log:\n%s", sess.Log())
}
