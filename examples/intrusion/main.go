// Intrusion shows RUDOLF on a different domain, as Section 1 of the paper
// promises ("a general-purpose system ... for preventing network attacks
// ... or for intrusion detection"): refining firewall-style rules over a
// relation of network flows with a protocol/service ontology and an IP-space
// ontology, after a port-scan burst and a data-exfiltration pattern appear.
//
//	go run ./examples/intrusion
package main

import (
	"fmt"
	"math/rand"

	rudolf "repro"
)

func main() {
	serviceOnt := rudolf.NewOntology("service").
		Add("Any Service").
		Add("Web", "Any Service").
		Add("Remote Access", "Any Service").
		Add("File Transfer", "Any Service").
		Add("HTTP", "Web").
		Add("HTTPS", "Web").
		Add("SSH", "Remote Access").
		Add("Telnet", "Remote Access").
		Add("RDP", "Remote Access").
		Add("FTP", "File Transfer").
		Add("SMB", "File Transfer").
		MustBuild()
	netOnt := rudolf.NewOntology("source").
		Add("Internet").
		Add("Internal", "Internet").
		Add("External", "Internet").
		Add("Office LAN", "Internal").
		Add("Datacenter", "Internal").
		Add("Residential ISP", "External").
		Add("Cloud Provider", "External").
		Add("TOR Exit", "External").
		MustBuild()

	schema := rudolf.MustSchema(
		rudolf.Attribute{Name: "hour", Kind: rudolf.Numeric,
			Domain: rudolf.NewDomain(0, 23), Format: rudolf.FormatPlain},
		rudolf.Attribute{Name: "port", Kind: rudolf.Numeric,
			Domain: rudolf.NewDomain(1, 65535), Format: rudolf.FormatPlain},
		rudolf.Attribute{Name: "mbytes", Kind: rudolf.Numeric,
			Domain: rudolf.NewDomain(0, 100000), Format: rudolf.FormatPlain},
		rudolf.Attribute{Name: "service", Kind: rudolf.Categorical, Ontology: serviceOnt},
		rudolf.Attribute{Name: "source", Kind: rudolf.Categorical, Ontology: netOnt},
	)

	rel := rudolf.NewRelation(schema)
	rng := rand.New(rand.NewSource(3))
	leafOf := func(o *rudolf.Ontology, names ...string) int64 {
		return int64(o.MustLookup(names[rng.Intn(len(names))]))
	}
	// Background traffic.
	for i := 0; i < 600; i++ {
		rel.MustAppend(rudolf.Tuple{
			int64(rng.Intn(24)), int64(1 + rng.Intn(65535)), int64(rng.Intn(200)),
			leafOf(serviceOnt, "HTTP", "HTTPS", "SSH", "FTP", "SMB", "RDP"),
			leafOf(netOnt, "Office LAN", "Datacenter", "Residential ISP", "Cloud Provider"),
		}, rudolf.Unlabeled, 100)
	}
	// Attack 1: night-time telnet/SSH brute force from TOR exits.
	for i := 0; i < 20; i++ {
		rel.MustAppend(rudolf.Tuple{
			int64(1 + rng.Intn(4)), int64(22 + rng.Intn(2)), int64(rng.Intn(5)),
			leafOf(serviceOnt, "SSH", "Telnet"),
			int64(netOnt.MustLookup("TOR Exit")),
		}, rudolf.Fraud, 900)
	}
	// Attack 2: bulk exfiltration over file transfer to cloud providers.
	for i := 0; i < 15; i++ {
		rel.MustAppend(rudolf.Tuple{
			int64(2 + rng.Intn(3)), int64(1 + rng.Intn(65535)), int64(5000 + rng.Intn(40000)),
			leafOf(serviceOnt, "FTP", "SMB"),
			int64(netOnt.MustLookup("Cloud Provider")),
		}, rudolf.Fraud, 850)
	}
	// A verified-benign nightly backup that looks like exfiltration.
	backup := rudolf.Tuple{
		3, 445, 20000,
		int64(serviceOnt.MustLookup("SMB")),
		int64(netOnt.MustLookup("Datacenter")),
	}
	rel.MustAppend(backup, rudolf.Legitimate, 300)

	// The analyst's current rules are stale: they watch for daytime telnet
	// only and flag all large flows.
	ruleSet, err := rudolf.ParseRules(schema,
		`hour in [9,17] && service = "Telnet"`,
		"mbytes >= 9000",
	)
	if err != nil {
		panic(err)
	}

	fmt.Println("flows:", rel.Len(), "— intrusions reported:", rel.Count(rudolf.Fraud))
	fmt.Printf("\nstale rules:\n%s\n", ruleSet.Format(schema))

	sess := rudolf.NewSession(ruleSet, rudolf.NewAutoAcceptExpert(), rudolf.Options{
		Weights: rudolf.Weights{Alpha: 10, Beta: 2, Gamma: 0.25},
	})
	stats := sess.Refine(rel)

	fmt.Printf("refined rules:\n%s\n", sess.Rules().Format(schema))
	fmt.Printf("intrusions captured: %d/%d, benign flows wrongly flagged: %d (backup excluded: %v)\n",
		stats.FraudCaptured, stats.FraudTotal, stats.LegitCaptured,
		len(sess.Rules().CapturingRules(schema, backup)) == 0)
}
