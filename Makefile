# RUDOLF reproduction — CI entry points.
#
#   make build    compile every package and command
#   make test     run the full test suite
#   make race     run the test suite under the race detector (the differential
#                 tests double as the proof that the 64-aligned chunk-parallel
#                 evaluators are race-free, and the serve hot-swap test that
#                 rule publishes never tear; see DESIGN.md §8-9)
#   make vet      static analysis
#   make bench    run the benchmark suite once (no test re-run)
#   make bench-json  run the core evaluator + serving benches, print a
#                 non-gating benchcmp drift table against the committed
#                 baselines, and refresh BENCH_core.json / BENCH_serve.json
#                 at the repo root (scripts/bench.sh; BENCHTIME/COUNT/TOL
#                 tune it). `make ci` reruns it compare-only (WRITE=0) at
#                 BENCHTIME=100x — enough iterations that pool warm-up
#                 amortizes away and alloc regressions show — with a wide
#                 band for the wall-clock noise; baselines are never dirtied
#   make serve    run the online scoring daemon (cmd/rudolfd) on :8080
#   make loadgen  drive traffic at a running daemon and report p50/p99
#   make smoke    boot rudolfd on a random port, score a generated batch,
#                 swap rules, refine on labeled feedback, and assert /metrics
#                 and /trace moved (scripts/smoke.sh)
#   make trace-demo  boot rudolfd, drive load + one refinement, dump GET
#                 /trace and validate the Chrome trace with scripts/checktrace
#                 (set TRACE_OUT=path to keep the trace file)
#   make trace-check explicit go vet + race pass over the tracer and its
#                 heaviest concurrent consumer (internal/trace, internal/serve)
#   make crash-smoke  boot rudolfd with a durable data directory, drive load
#                 plus feedback/publish churn, SIGKILL it mid-flight, restart
#                 on the same directory, and assert the acknowledged state
#                 survived the crash (scripts/crash-smoke.sh)
#   make cluster-smoke  boot a durable leader plus two -follow followers,
#                 drive concurrent load with a mid-load rule publish, assert
#                 roles, the read_only write rejection and leader-exact
#                 /v1/rules ETag convergence, SIGKILL + restart one follower,
#                 and require the aggregate follower throughput to clear a
#                 core-aware factor (scripts/cluster-smoke.sh)
#   make check    build + vet + test + race + trace-check
#   make ci       the full CI gate: check + smoke + crash-smoke +
#                 cluster-smoke + trace-demo

GO        ?= go
PKGS      ?= ./...
BENCH     ?= .
BENCHTIME ?= 1s
COUNT     ?= 1
ADDR      ?= 127.0.0.1:8080
TRACE_OUT ?=

.PHONY: all build test race vet bench bench-json serve loadgen smoke crash-smoke cluster-smoke trace-demo trace-check check ci clean

all: ci

build:
	$(GO) build $(PKGS)

test:
	$(GO) test $(PKGS)

race:
	$(GO) test -race $(PKGS)

vet:
	$(GO) vet $(PKGS)

bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem $(PKGS)

bench-json:
	GO=$(GO) BENCHTIME=$(BENCHTIME) COUNT=$(COUNT) bash scripts/bench.sh

serve:
	$(GO) run ./cmd/rudolfd -addr $(ADDR)

loadgen:
	$(GO) run ./cmd/loadgen -url http://$(ADDR)

smoke:
	GO=$(GO) bash scripts/smoke.sh

crash-smoke:
	GO=$(GO) bash scripts/crash-smoke.sh

cluster-smoke:
	GO=$(GO) bash scripts/cluster-smoke.sh

trace-demo:
	GO=$(GO) TRACE_OUT=$(TRACE_OUT) bash scripts/trace-demo.sh

trace-check:
	$(GO) vet ./internal/trace/... ./internal/serve/...
	$(GO) test -race ./internal/trace/... ./internal/serve/...

check: build vet test race trace-check

ci: check smoke crash-smoke cluster-smoke trace-demo
	-GO=$(GO) BENCHTIME=100x WRITE=0 TOL=1.0 bash scripts/bench.sh

clean:
	$(GO) clean -testcache
