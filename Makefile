# RUDOLF reproduction — CI entry points.
#
#   make build   compile every package and command
#   make test    run the full test suite
#   make race    run the test suite under the race detector (the differential
#                tests double as the proof that the 64-aligned chunk-parallel
#                evaluators are race-free; see DESIGN.md §8)
#   make vet     static analysis
#   make bench   run the benchmark suite once (no test re-run)
#   make check   build + vet + test + race — the full CI gate

GO      ?= go
PKGS    ?= ./...
BENCH   ?= .

.PHONY: all build test race vet bench check clean

all: check

build:
	$(GO) build $(PKGS)

test:
	$(GO) test $(PKGS)

race:
	$(GO) test -race $(PKGS)

vet:
	$(GO) vet $(PKGS)

bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem $(PKGS)

check: build vet test race

clean:
	$(GO) clean -testcache
