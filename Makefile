# RUDOLF reproduction — CI entry points.
#
#   make build    compile every package and command
#   make test     run the full test suite
#   make race     run the test suite under the race detector (the differential
#                 tests double as the proof that the 64-aligned chunk-parallel
#                 evaluators are race-free, and the serve hot-swap test that
#                 rule publishes never tear; see DESIGN.md §8-9)
#   make vet      static analysis
#   make bench    run the benchmark suite once (no test re-run)
#   make serve    run the online scoring daemon (cmd/rudolfd) on :8080
#   make loadgen  drive traffic at a running daemon and report p50/p99
#   make smoke    boot rudolfd on a random port, score a generated batch,
#                 swap rules, and assert /metrics moved (scripts/smoke.sh)
#   make check    build + vet + test + race
#   make ci       the full CI gate: check + smoke

GO      ?= go
PKGS    ?= ./...
BENCH   ?= .
ADDR    ?= 127.0.0.1:8080

.PHONY: all build test race vet bench serve loadgen smoke check ci clean

all: ci

build:
	$(GO) build $(PKGS)

test:
	$(GO) test $(PKGS)

race:
	$(GO) test -race $(PKGS)

vet:
	$(GO) vet $(PKGS)

bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem $(PKGS)

serve:
	$(GO) run ./cmd/rudolfd -addr $(ADDR)

loadgen:
	$(GO) run ./cmd/loadgen -url http://$(ADDR)

smoke:
	GO=$(GO) bash scripts/smoke.sh

check: build vet test race

ci: check smoke

clean:
	$(GO) clean -testcache
