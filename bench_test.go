// Benchmarks regenerating the paper's evaluation: one benchmark per figure
// and in-text table of Section 5 (see DESIGN.md §4 for the experiment
// index), the ablation benches of DESIGN.md §5, and micro-benchmarks of the
// core machinery. Metrics that matter for the reproduction (error
// percentages, modification counts, speedups) are attached to each benchmark
// via b.ReportMetric; wall-clock ns/op measures the harness itself.
//
// Benchmark datasets are scaled down (the paper's 100K-10M-row datasets ran
// on a server; these defaults keep `go test -bench=.` under a few minutes).
// Scale up with -benchtime or by editing benchSetup.
package rudolf_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"

	rudolf "repro"
	"repro/internal/capture"
	"repro/internal/cluster"
	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/exact"
	"repro/internal/experiment"
	"repro/internal/index"
	"repro/internal/paperdata"
	"repro/internal/relation"
	"repro/internal/window"
)

// benchSetup keeps benchmark runs fast while preserving the figures' shapes.
func benchSetup() experiment.Setup {
	return experiment.Setup{
		Data:    datagen.Config{Size: 1500},
		Repeats: 1,
	}
}

func reportSeries(b *testing.B, fig experiment.Figure) {
	b.Helper()
	for _, s := range fig.Series {
		if len(s.Y) == 0 {
			continue
		}
		b.ReportMetric(s.Y[len(s.Y)-1], "final_"+metricName(s.Name))
	}
}

func metricName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// BenchmarkFig3a regenerates Figure 3(a): cumulative modifications per
// method (final round reported as metrics).
func BenchmarkFig3a(b *testing.B) {
	var fig experiment.Figure
	for i := 0; i < b.N; i++ {
		fig = experiment.Fig3a(benchSetup())
	}
	reportSeries(b, fig)
}

// BenchmarkFig3b regenerates Figure 3(b): prediction error per method.
func BenchmarkFig3b(b *testing.B) {
	var fig experiment.Figure
	for i := 0; i < b.N; i++ {
		fig = experiment.Fig3b(benchSetup())
	}
	reportSeries(b, fig)
}

// BenchmarkFig3c regenerates Figure 3(c): error vs dataset size.
func BenchmarkFig3c(b *testing.B) {
	var fig experiment.Figure
	for i := 0; i < b.N; i++ {
		fig = experiment.Fig3c(benchSetup(), []int{500, 1500, 3000})
	}
	reportSeries(b, fig)
}

// BenchmarkFig3d regenerates Figure 3(d): rule updates vs fraud percentage.
func BenchmarkFig3d(b *testing.B) {
	var fig experiment.Figure
	for i := 0; i < b.N; i++ {
		fig = experiment.Fig3d(benchSetup(), []float64{0.5, 1.5, 2.5})
	}
	reportSeries(b, fig)
}

// BenchmarkFig3e regenerates Figure 3(e): error vs fraud percentage.
func BenchmarkFig3e(b *testing.B) {
	var fig experiment.Figure
	for i := 0; i < b.N; i++ {
		fig = experiment.Fig3e(benchSetup(), []float64{0.5, 1.5, 2.5})
	}
	reportSeries(b, fig)
}

// BenchmarkFig3f regenerates Figure 3(f): the expert-time study. The
// speedup metric is manual seconds-per-round over RUDOLF seconds-per-round
// (the paper reports 4-5×).
func BenchmarkFig3f(b *testing.B) {
	var rows []experiment.Fig3fResult
	for i := 0; i < b.N; i++ {
		rows = experiment.Fig3f(benchSetup(), 50, 1800)
	}
	if len(rows) == 2 && rows[0].SecondsPerRound > 0 {
		b.ReportMetric(rows[1].SecondsPerRound/rows[0].SecondsPerRound, "time_speedup_x")
		b.ReportMetric(float64(rows[1].FixesCompleted), "manual_fixes_of_50")
	}
}

// BenchmarkNoviceStudy regenerates the in-text novice comparison.
func BenchmarkNoviceStudy(b *testing.B) {
	var r experiment.NoviceStudyResult
	for i := 0; i < b.N; i++ {
		r = experiment.NoviceStudy(benchSetup())
	}
	b.ReportMetric(r.ExpertRudolf, "expert_rudolf_errpct")
	b.ReportMetric(r.NoviceRudolf, "novice_rudolf_errpct")
	b.ReportMetric(r.NoviceAlone, "novice_alone_errpct")
}

// BenchmarkModificationMix regenerates the in-text 75/20/5 modification-mix
// statistic.
func BenchmarkModificationMix(b *testing.B) {
	var mix map[cost.ModKind]float64
	for i := 0; i < b.N; i++ {
		mix = experiment.ModificationMix(benchSetup())
	}
	b.ReportMetric(mix[cost.CondRefine], "refine_pct")
	b.ReportMetric(mix[cost.RuleSplit], "split_pct")
	b.ReportMetric(mix[cost.RuleAdd], "add_pct")
}

// BenchmarkHopSweep regenerates the in-text hop-size observation.
func BenchmarkHopSweep(b *testing.B) {
	var fig experiment.Figure
	for i := 0; i < b.N; i++ {
		fig = experiment.HopSweep(benchSetup(), []float64{10, 20})
	}
	rounds := fig.Series[0].Y
	if len(rounds) == 2 {
		b.ReportMetric(rounds[0], "rounds_hop10")
		b.ReportMetric(rounds[1], "rounds_hop20")
	}
}

// BenchmarkProposalLatency regenerates the in-text "at most one second"
// proposal-latency measurement.
func BenchmarkProposalLatency(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		last = float64(experiment.ProposalLatency(benchSetup()).Milliseconds())
	}
	b.ReportMetric(last, "proposal_ms")
}

// BenchmarkRudolfS regenerates the in-text RUDOLF-s comparison.
func BenchmarkRudolfS(b *testing.B) {
	var r map[experiment.MethodID]float64
	for i := 0; i < b.N; i++ {
		r = experiment.RudolfS(benchSetup())
	}
	b.ReportMetric(r[experiment.MethodRudolf], "rudolf_errpct")
	b.ReportMetric(r[experiment.MethodRudolfS], "rudolfs_errpct")
	b.ReportMetric(r[experiment.MethodRudolfMinus], "rudolfminus_errpct")
}

// BenchmarkAblationClustering compares the clustering algorithms inside
// RUDOLF (DESIGN.md §5).
func BenchmarkAblationClustering(b *testing.B) {
	var r map[string]float64
	for i := 0; i < b.N; i++ {
		r = experiment.AblationClustering(benchSetup())
	}
	b.ReportMetric(r["leader"], "leader_errpct")
	b.ReportMetric(r["streaming-k-means"], "kmeans_errpct")
}

// BenchmarkAblationTopK sweeps the top-k width of Algorithm 1.
func BenchmarkAblationTopK(b *testing.B) {
	var fig experiment.Figure
	for i := 0; i < b.N; i++ {
		fig = experiment.AblationTopK(benchSetup(), []int{1, 3})
	}
	reportSeries(b, fig)
}

// BenchmarkAblationWeights sweeps the γ coefficient.
func BenchmarkAblationWeights(b *testing.B) {
	var fig experiment.Figure
	for i := 0; i < b.N; i++ {
		fig = experiment.AblationWeights(benchSetup(), []float64{0.25, 1})
	}
	reportSeries(b, fig)
}

// BenchmarkAblationWeightedCost compares unit and learned modification
// costs (the paper's future-work extension).
func BenchmarkAblationWeightedCost(b *testing.B) {
	var r map[string]float64
	for i := 0; i < b.N; i++ {
		r = experiment.AblationWeightedCost(benchSetup())
	}
	b.ReportMetric(r["unit"], "unit_errpct")
	b.ReportMetric(r["weighted"], "weighted_errpct")
}

// --- Micro-benchmarks of the core machinery ---

// BenchmarkRuleSetEval measures Φ(I) evaluation throughput.
func BenchmarkRuleSetEval(b *testing.B) {
	ds := datagen.Generate(datagen.Config{Size: 5000, Seed: 1})
	rs := datagen.InitialRules(ds, 30, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.Eval(ds.Rel)
	}
	b.ReportMetric(float64(ds.Rel.Len()*rs.Len()), "tuple_rule_pairs/op")
}

// BenchmarkClusterLeader measures the leader clusterer over the fraud set.
func BenchmarkClusterLeader(b *testing.B) {
	ds := datagen.Generate(datagen.Config{Size: 20000, FraudPct: 2.5, Seed: 1})
	frauds := ds.Rel.Indices(relation.Fraud)
	alg := datagen.Clusterer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg.Cluster(ds.Rel, frauds)
	}
	b.ReportMetric(float64(len(frauds)), "frauds/op")
}

// BenchmarkClusterStreamingKMeans measures the streaming k-means variant.
func BenchmarkClusterStreamingKMeans(b *testing.B) {
	ds := datagen.Generate(datagen.Config{Size: 20000, FraudPct: 2.5, Seed: 1})
	frauds := ds.Rel.Indices(relation.Fraud)
	alg := cluster.StreamingKMeans{K: 8, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg.Cluster(ds.Rel, frauds)
	}
}

// BenchmarkGeneralizationScore measures the Equation 2 scoring of one rule
// against one representative (the inner loop of top-k ranking).
func BenchmarkGeneralizationScore(b *testing.B) {
	s := paperdata.Schema()
	rel := paperdata.Transactions(s)
	rs := paperdata.ExistingRules(s)
	rep := cluster.MakeRepresentative(rel, []int{0, 1})
	w := cost.DefaultWeights()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cost.GeneralizationScore(s, rel, rs.Rule(0), rep.Conds, w)
	}
}

// BenchmarkOntologyUpDistance measures semantic distance queries on the
// synthetic geo ontology.
func BenchmarkOntologyUpDistance(b *testing.B) {
	o := datagen.GeoOntology(datagen.DefaultGeoConfig())
	leaves := o.Leaves()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.UpDistance(leaves[i%len(leaves)], leaves[(i*7+3)%len(leaves)])
	}
}

// BenchmarkDatasetGenerate measures synthetic FI dataset generation.
func BenchmarkDatasetGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		datagen.Generate(datagen.Config{Size: 5000, Seed: int64(i)})
	}
}

// BenchmarkFullOracleSession measures one complete interactive refinement
// (generalize + specialize to convergence) with the oracle expert.
func BenchmarkFullOracleSession(b *testing.B) {
	ds := datagen.Generate(datagen.Config{Size: 2000, Seed: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess := rudolf.NewSession(rudolf.InitialRules(ds, 0, 2),
			rudolf.NewOracleExpert(ds.Truth),
			rudolf.Options{Clusterer: rudolf.DatasetClusterer()})
		sess.Refine(ds.Rel)
	}
}

// BenchmarkTraceOverhead quantifies what the span instrumentation threaded
// through the refinement hot path costs. The "nil" sub-benchmark runs a full
// oracle session with no tracer (the production default for library use) —
// it must match BenchmarkFullOracleSession within noise and report zero
// allocations attributable to tracing, because every span call on a nil
// tracer returns the zero Span and no-ops. The "enabled" sub-benchmark runs
// the same session with a live ring-buffer tracer; the delta is the real
// cost of recording every round, phase, expert query and modification
// (reported in DESIGN.md §10).
func BenchmarkTraceOverhead(b *testing.B) {
	ds := datagen.Generate(datagen.Config{Size: 2000, Seed: 2})
	run := func(b *testing.B, tr *rudolf.Tracer) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sess := rudolf.NewSession(rudolf.InitialRules(ds, 0, 2),
				rudolf.NewOracleExpert(ds.Truth),
				rudolf.Options{Clusterer: rudolf.DatasetClusterer(), Tracer: tr})
			sess.Refine(ds.Rel)
		}
	}
	b.Run("nil", func(b *testing.B) { run(b, nil) })
	b.Run("enabled", func(b *testing.B) {
		tr := rudolf.NewTracer(1 << 15)
		run(b, tr)
		if tr.Len() == 0 {
			b.Fatal("enabled tracer recorded no spans")
		}
	})
}

// BenchmarkExactHittingSet measures the exact solver on a 16-element
// instance (the machinery behind the Theorem 4.1/4.5 validations).
func BenchmarkExactHittingSet(b *testing.B) {
	hs := exact.HittingSet{N: 16, Sets: [][]int{
		{0, 1, 2}, {2, 3, 4}, {4, 5, 6}, {6, 7, 8},
		{8, 9, 10}, {10, 11, 12}, {12, 13, 14}, {14, 15, 0},
		{1, 5, 9, 13}, {3, 7, 11, 15},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hs.Exact()
	}
}

// BenchmarkReductionRoundTrip measures the executable Theorem 4.1 reduction
// plus its exact solution.
func BenchmarkReductionRoundTrip(b *testing.B) {
	hs := exact.HittingSet{N: 5, Sets: [][]int{{0, 1, 2}, {1, 2, 3, 4}, {3, 4}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gi := exact.ReduceToGeneralization(hs)
		gi.SolveGeneralizationExact()
	}
}

// BenchmarkCompiledEval measures the compiled parallel evaluator against
// the same workload as BenchmarkRuleSetEval.
func BenchmarkCompiledEval(b *testing.B) {
	ds := datagen.Generate(datagen.Config{Size: 5000, Seed: 1})
	rs := datagen.InitialRules(ds, 30, 1)
	e := index.Compile(ds.Schema, rs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Eval(ds.Rel)
	}
	b.ReportMetric(float64(ds.Rel.Len()*rs.Len()), "tuple_rule_pairs/op")
}

// BenchmarkCompiledEvalFirst measures the serving hot path's first-match
// variant against BenchmarkCompiledEval's workload: the same short-circuit
// loop writing an int32 per tuple instead of a bit, so per-rule fire
// accounting must stay within noise of plain Eval (the attribution-off
// regression guard, together with BenchmarkServeScore). The dst slice is
// reused across iterations, as the pooled serving path reuses it — the
// pre-EvalFirstInto form re-allocated the result every call (20,600 B/op
// against plain Eval's 776); TestCompiledEvalFirstBytesPerOp pins the fix.
func BenchmarkCompiledEvalFirst(b *testing.B) {
	ds := datagen.Generate(datagen.Config{Size: 5000, Seed: 1})
	rs := datagen.InitialRules(ds, 30, 1)
	e := index.Compile(ds.Schema, rs)
	dst := e.EvalFirstInto(ds.Rel, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = e.EvalFirstInto(ds.Rel, dst)
	}
	b.ReportMetric(float64(ds.Rel.Len()*rs.Len()), "tuple_rule_pairs/op")
}

// TestCompiledEvalFirstBytesPerOp pins the EvalFirstInto scratch fix in
// bytes, not just allocation counts: steady-state first-match evaluation
// over a 5000-tuple relation must not re-allocate its result (the 20,600
// B/op leak), leaving only the chunk goroutines and the bitset-free
// bookkeeping. The budget is a loose roof far under one int32 per tuple.
func TestCompiledEvalFirstBytesPerOp(t *testing.T) {
	ds := datagen.Generate(datagen.Config{Size: 5000, Seed: 1})
	rs := datagen.InitialRules(ds, 30, 1)
	e := index.Compile(ds.Schema, rs)
	dst := e.EvalFirstInto(ds.Rel, nil) // warm: dst reaches full capacity
	const runs = 50
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		dst = e.EvalFirstInto(ds.Rel, dst)
	}
	runtime.ReadMemStats(&after)
	if perOp := (after.TotalAlloc - before.TotalAlloc) / runs; perOp > 4096 {
		t.Fatalf("EvalFirstInto steady state = %d B/op, want <= 4096 (result slice is leaking again)", perOp)
	}
}

// BenchmarkCompiledEvalAttributed measures the full-provenance evaluation
// (every rule, every non-trivial condition, no short-circuits) on the same
// workload — the cost an `"explain_all": true` scoring request pays per
// tuple. The arena-backed AttributionBuffer is reused across iterations,
// exactly as the serving path reuses its pooled buffer, so steady-state
// allocs/op stays O(1) instead of the pre-arena O(tuples × rules × checks)
// (2.3M allocs/op, 175 MB/op on this workload).
func BenchmarkCompiledEvalAttributed(b *testing.B) {
	ds := datagen.Generate(datagen.Config{Size: 5000, Seed: 1})
	rs := datagen.InitialRules(ds, 30, 1)
	e := index.Compile(ds.Schema, rs)
	var buf index.AttributionBuffer
	e.EvalAttributedInto(ds.Rel, &buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EvalAttributedInto(ds.Rel, &buf)
	}
	b.ReportMetric(float64(ds.Rel.Len()*rs.Len()), "tuple_rule_pairs/op")
}

// BenchmarkCompiledEvalAttributedLazy measures the lazy variant behind plain
// `"explain": true`: matched rules get their full check breakdown from the
// arena, non-matched rules only their flags (margins re-derived on demand by
// AttributeRule). On fraud-shaped data almost nothing matches, so this
// should sit near EvalFirst, far below the full table above.
func BenchmarkCompiledEvalAttributedLazy(b *testing.B) {
	ds := datagen.Generate(datagen.Config{Size: 5000, Seed: 1})
	rs := datagen.InitialRules(ds, 30, 1)
	e := index.Compile(ds.Schema, rs)
	var buf index.AttributionBuffer
	e.EvalAttributedLazyInto(ds.Rel, &buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EvalAttributedLazyInto(ds.Rel, &buf)
	}
	b.ReportMetric(float64(ds.Rel.Len()*rs.Len()), "tuple_rule_pairs/op")
}

// BenchmarkCompiledEvalLarge measures the evaluator at a scale closer to
// the paper's smallest FI (100K transactions).
func BenchmarkCompiledEvalLarge(b *testing.B) {
	ds := datagen.Generate(datagen.Config{Size: 100000, Seed: 1})
	rs := datagen.InitialRules(ds, 55, 1)
	e := index.Compile(ds.Schema, rs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Eval(ds.Rel)
	}
}

// BenchmarkIncrementalCapture measures the tentpole's hot path: one rule
// edit per round with the incremental capture cache — recompile and
// re-evaluate only the touched rule, then re-read the union. Compare with
// BenchmarkCaptureFullRescan, which pays a full interpreted Φ(I) rescan for
// the same edit (what every Stats/repHandled/splitCandidates call inside a
// refinement round used to cost).
func BenchmarkIncrementalCapture(b *testing.B) {
	ds := datagen.Generate(datagen.Config{Size: 20000, Seed: 1})
	rs := datagen.InitialRules(ds, 55, 1)
	c := capture.New()
	c.Bind(ds.Rel, rs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ri := i % rs.Len()
		nr := rs.Rule(ri).Clone().SetMinScore(int16(i % 2))
		rs.Replace(ri, nr)
		c.RuleReplaced(ri, nr)
		c.Union()
	}
	b.ReportMetric(float64(ds.Rel.Len()*rs.Len()), "tuple_rule_pairs/op")
}

// BenchmarkCaptureFullRescan is the pre-cache baseline for the same edit
// sequence: every edit invalidates everything and Φ(I) is recomputed by the
// interpreted Set.Eval.
func BenchmarkCaptureFullRescan(b *testing.B) {
	ds := datagen.Generate(datagen.Config{Size: 20000, Seed: 1})
	rs := datagen.InitialRules(ds, 55, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ri := i % rs.Len()
		nr := rs.Rule(ri).Clone().SetMinScore(int16(i % 2))
		rs.Replace(ri, nr)
		rs.Eval(ds.Rel)
	}
	b.ReportMetric(float64(ds.Rel.Len()*rs.Len()), "tuple_rule_pairs/op")
}

// BenchmarkFleet runs the 15-FI roster study (scaled) and reports the
// fleet-wide mean error.
func BenchmarkFleet(b *testing.B) {
	var fleet []experiment.FleetFI
	for i := 0; i < b.N; i++ {
		fleet = experiment.Fleet(benchSetup(), 15, 1000)
	}
	var sum float64
	for _, fi := range fleet {
		sum += fi.ErrorPct
	}
	b.ReportMetric(sum/float64(len(fleet)), "fleet_mean_errpct")
}

// BenchmarkWindowObserve measures the sliding-window store's steady-state
// ingest — the per-transaction cost the serving daemon adds to /v1/score
// once windowed rules are published. Three registered specs (COUNT, SUM,
// DISTINCT) over 512 rotating keys, time advancing so buckets rotate and
// expire; steady state must stay alloc-free for COUNT/SUM
// (TestObserveSteadyStateAllocs in internal/window pins that exactly).
func BenchmarkWindowObserve(b *testing.B) {
	specs := []window.Spec{
		{Agg: window.Count, Key: 1, Val: -1, Window: 10},
		{Agg: window.Sum, Key: 1, Val: 2, Window: 60},
		{Agg: window.Distinct, Key: 1, Val: 2, Window: 30},
	}
	st := window.New(window.Config{TimeAttr: 0})
	st.EnsureSpecs(specs)
	tup := relation.Tuple{0, 0, 25}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tup[0] = int64(i / 64)
		tup[1] = int64(i % 512)
		tup[2] = int64(i % 97)
		st.Observe(tup)
	}
}

// BenchmarkServeScore measures end-to-end serving latency of the online
// scoring daemon (internal/serve): HTTP round trip + JSON decode + schema
// validation + compiled evaluation against a 50-rule set, for a single
// transaction and for a batch of 64 — the perf trajectory of the serving
// layer itself, alongside the evaluator-internal benches above.
func BenchmarkServeScore(b *testing.B) {
	ds := datagen.Generate(datagen.Config{Size: 2000, Seed: 1})
	ruleSet := datagen.InitialRules(ds, 50, 1)
	srv, err := rudolf.NewServer(rudolf.ServerConfig{Schema: ds.Schema, Rules: ruleSet})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Real tuples from the generated dataset, rendered in the wire form.
	mkBody := func(n int, mode string) []byte {
		txs := make([]map[string]any, n)
		for i := range txs {
			t := ds.Rel.Tuple(i % ds.Rel.Len())
			attrs := make(map[string]any, ds.Schema.Arity())
			for a := 0; a < ds.Schema.Arity(); a++ {
				attrs[ds.Schema.Attr(a).Name] = ds.Schema.FormatValue(a, t[a])
			}
			txs[i] = map[string]any{"attrs": attrs, "score": ds.Rel.Score(i % ds.Rel.Len())}
		}
		req := map[string]any{"transactions": txs}
		if mode != "" {
			req[mode] = true
		}
		raw, err := json.Marshal(req)
		if err != nil {
			b.Fatal(err)
		}
		return raw
	}

	for _, bc := range []struct {
		name string
		n    int
		mode string
	}{
		{"single", 1, ""},
		{"batch64", 64, ""},
		{"batch64_explain", 64, "explain"},
		{"batch64_explain_all", 64, "explain_all"},
	} {
		b.Run(bc.name, func(b *testing.B) {
			body := mkBody(bc.n, bc.mode)
			client := ts.Client()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := client.Post(ts.URL+"/score", "application/json", bytes.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("status %d", resp.StatusCode)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(bc.n)*float64(b.N)/b.Elapsed().Seconds(), "tx/s")
		})
	}
}

// BenchmarkServeScoreVelocity is BenchmarkServeScore with a windowed rule in
// the published set: every scored batch additionally takes the observe lock,
// feeds the window store, and stamps aggregate columns for the evaluator.
// The delta against BenchmarkServeScore's matching sub-benches is the full
// serving cost of stateful velocity rules.
func BenchmarkServeScoreVelocity(b *testing.B) {
	ds := datagen.Generate(datagen.Config{Size: 2000, Seed: 1})
	ruleSet := datagen.InitialRules(ds, 50, 1)
	ruleSet.Add(rudolf.MustParseRule(ds.Schema, "COUNT(location, 10m) >= 5"))
	srv, err := rudolf.NewServer(rudolf.ServerConfig{Schema: ds.Schema, Rules: ruleSet})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	mkBody := func(n int) []byte {
		txs := make([]map[string]any, n)
		for i := range txs {
			t := ds.Rel.Tuple(i % ds.Rel.Len())
			attrs := make(map[string]any, ds.Schema.Arity())
			for a := 0; a < ds.Schema.Arity(); a++ {
				attrs[ds.Schema.Attr(a).Name] = ds.Schema.FormatValue(a, t[a])
			}
			txs[i] = map[string]any{"attrs": attrs, "score": ds.Rel.Score(i % ds.Rel.Len())}
		}
		raw, err := json.Marshal(map[string]any{"transactions": txs})
		if err != nil {
			b.Fatal(err)
		}
		return raw
	}

	for _, bc := range []struct {
		name string
		n    int
	}{
		{"single", 1},
		{"batch64", 64},
	} {
		b.Run(bc.name, func(b *testing.B) {
			body := mkBody(bc.n)
			client := ts.Client()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := client.Post(ts.URL+"/score", "application/json", bytes.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("status %d", resp.StatusCode)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(bc.n)*float64(b.N)/b.Elapsed().Seconds(), "tx/s")
		})
	}
}
