// Package rudolf is a from-scratch Go implementation of RUDOLF, the
// interactive rule refinement system for fraud detection of Milo,
// Novgorodov and Tan ("Interactive Rule Refinement for Fraud Detection",
// EDBT 2018).
//
// RUDOLF maintains a set of rules over a universal transaction relation.
// Each rule is a conjunction of per-attribute conditions — numeric intervals
// and ontology concepts — and the rule set flags the transactions it
// captures as fraudulent. As new transactions arrive and are reported
// fraudulent or verified legitimate, a refinement Session proposes minimal
// rule generalizations (Algorithm 1 of the paper) and rule splits
// (Algorithm 2) to a domain Expert, who can accept, reject, revert parts of,
// or rewrite every proposal.
//
// The package is a facade over the implementation packages: it re-exports
// the types needed to build schemas, ontologies, transaction relations and
// rules, to run refinement sessions with interactive or simulated experts,
// to generate the synthetic financial-institute datasets used by the
// reproduced experiments, and to rerun every figure of the paper's
// evaluation. A minimal session looks like:
//
//	schema := ...                       // rudolf.NewSchema
//	rel := ...                          // transactions with labels
//	rs, _ := rudolf.ParseRules(schema, "time in [18:00,18:05] && amount >= $110")
//	sess := rudolf.NewSession(rs, rudolf.NewAutoAcceptExpert(), rudolf.Options{})
//	stats := sess.Refine(rel)           // generalize + specialize until stable
//	fmt.Print(sess.Rules().Format(schema))
//
// See the examples directory for complete programs, DESIGN.md for the
// architecture and EXPERIMENTS.md for the reproduced evaluation.
package rudolf

import (
	"context"
	"io"
	"net"

	"repro/internal/capture"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/expert"
	"repro/internal/history"
	"repro/internal/index"
	"repro/internal/ontology"
	"repro/internal/order"
	"repro/internal/relation"
	"repro/internal/rules"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/window"
)

// Data model types.
type (
	// Schema describes the attributes of the universal transaction relation.
	Schema = relation.Schema
	// Attribute is one column: numeric (bounded discrete domain) or
	// categorical (ontology-valued).
	Attribute = relation.Attribute
	// Relation is an append-only transaction relation with labels and ML
	// risk scores.
	Relation = relation.Relation
	// Tuple is one transaction.
	Tuple = relation.Tuple
	// Label is the ground-truth annotation of a transaction.
	Label = relation.Label
	// Domain is a bounded discrete numeric domain.
	Domain = order.Domain
	// Interval is a closed interval over a numeric domain.
	Interval = order.Interval
	// Format renders numeric values (plain, time-of-day, money).
	Format = order.Format
	// Ontology is a concept DAG used by categorical attributes.
	Ontology = ontology.Ontology
	// Concept identifies an ontology node.
	Concept = ontology.Concept
	// OntologyBuilder assembles ontologies.
	OntologyBuilder = ontology.Builder
)

// Rule language types.
type (
	// Rule is a conjunction of one condition per attribute.
	Rule = rules.Rule
	// RuleSet is a disjunction of rules.
	RuleSet = rules.Set
	// Condition restricts one attribute.
	Condition = rules.Condition
)

// Refinement types.
type (
	// Session drives interactive rule refinement.
	Session = core.Session
	// Options configures a session (weights, top-k, clustering, cost model).
	Options = core.Options
	// Expert is the human (or simulated human) in the loop.
	Expert = core.Expert
	// GenProposal is a proposed rule generalization.
	GenProposal = core.GenProposal
	// GenDecision is the expert's answer to a generalization proposal.
	GenDecision = core.GenDecision
	// SplitProposal is a proposed rule split.
	SplitProposal = core.SplitProposal
	// SplitDecision is the expert's answer to a split proposal.
	SplitDecision = core.SplitDecision
	// RoundStats summarizes a refinement round.
	RoundStats = core.RoundStats
	// Weights are the α/β/γ benefit coefficients of the cost model.
	Weights = cost.Weights
)

// Dataset generation types.
type (
	// DataConfig parameterizes a synthetic financial-institute dataset.
	DataConfig = datagen.Config
	// Dataset is a generated dataset with ground truth and planted attack
	// patterns.
	Dataset = datagen.Dataset
)

// Label values.
const (
	Unlabeled  = relation.Unlabeled
	Fraud      = relation.Fraud
	Legitimate = relation.Legitimate
)

// Attribute kinds.
const (
	Numeric     = relation.Numeric
	Categorical = relation.Categorical
)

// Numeric value formats.
const (
	FormatPlain     = order.FormatPlain
	FormatTimeOfDay = order.FormatTimeOfDay
	FormatMinutes   = order.FormatMinutes
	FormatMoney     = order.FormatMoney
)

// NewSchema builds a schema from attributes; see relation.NewSchema.
func NewSchema(attrs ...Attribute) (*Schema, error) { return relation.NewSchema(attrs...) }

// MustSchema is NewSchema for statically known-good schemas.
func MustSchema(attrs ...Attribute) *Schema { return relation.MustSchema(attrs...) }

// NewDomain returns the discrete numeric domain [min, max].
func NewDomain(min, max int64) Domain { return order.NewDomain(min, max) }

// NewRelation returns an empty transaction relation over the schema.
func NewRelation(s *Schema) *Relation { return relation.New(s) }

// ReadCSV parses a relation from CSV (as written by Relation.WriteCSV).
func ReadCSV(s *Schema, r io.Reader) (*Relation, error) { return relation.ReadCSV(s, r) }

// ReadSchemaJSON parses a schema (with its ontologies) from the JSON form
// written by Schema.WriteJSON, so datasets are self-describing.
func ReadSchemaJSON(r io.Reader) (*Schema, error) { return relation.ReadSchemaJSON(r) }

// NewOntology starts building an ontology; the first concept added is ⊤.
func NewOntology(name string) *OntologyBuilder { return ontology.NewBuilder(name) }

// PaperTypeOntology returns the transaction-type hierarchy of the paper's
// Figure 1, including the cross-cutting "With code"/"No code" concepts.
func PaperTypeOntology() *Ontology { return ontology.PaperTypeOntology() }

// ParseRule parses one rule in the textual form produced by Rule.Format,
// e.g. `time in [18:00,18:05] && amount >= $110 && location <= "Gas Station"`.
func ParseRule(s *Schema, text string) (*Rule, error) { return rules.Parse(s, text) }

// MustParseRule is ParseRule for rule literals known to be valid.
func MustParseRule(s *Schema, text string) *Rule { return rules.MustParse(s, text) }

// ParseRules parses several rules into a rule set.
func ParseRules(s *Schema, texts ...string) (*RuleSet, error) {
	out := rules.NewSet()
	for _, t := range texts {
		r, err := rules.Parse(s, t)
		if err != nil {
			return nil, err
		}
		out.Add(r)
	}
	return out, nil
}

// NewRuleSet returns a rule set over the given rules.
func NewRuleSet(rs ...*Rule) *RuleSet { return rules.NewSet(rs...) }

// NumericCond returns the condition A ∈ iv for a numeric attribute.
func NumericCond(iv Interval) Condition { return rules.NumericCond(iv) }

// ConceptCond returns the condition A ≤ c for a categorical attribute.
func ConceptCond(c Concept) Condition { return rules.ConceptCond(c) }

// PreviewEdit computes the Definition 3.1 deltas of replacing the rule set
// old by new over rel — the what-if view a rule-editing UI shows before a
// change is committed: ΔF (change in captured frauds), ΔL (change in
// excluded legitimate transactions) and ΔR (change in excluded unlabeled
// transactions), each positive when the edit helps.
func PreviewEdit(old, new *RuleSet, rel *Relation) (dF, dL, dR int) {
	return cost.Deltas(old, new, rel)
}

// NormalizeRules tidies a rule set without changing Φ(I): subsumed rules
// are dropped and adjacent numeric fragments re-merge. Returns the number
// of rules removed.
func NormalizeRules(s *Schema, rs *RuleSet) int { return rules.Normalize(s, rs) }

// NewCommitteeExpert aggregates several experts by majority vote (the paper
// ran its study with 8 experts).
func NewCommitteeExpert(members ...Expert) Expert { return expert.NewCommittee(members...) }

// ReadRules parses a rule set from a reader, one rule per line.
func ReadRules(r io.Reader, s *Schema) (*RuleSet, error) { return rules.ReadSet(r, s) }

// WriteRules writes a rule set, one rule per line.
func WriteRules(w io.Writer, s *Schema, rs *RuleSet) error { return rules.WriteSet(w, s, rs) }

// NewSession starts a refinement session over an existing rule set (which
// is cloned) guided by the given expert.
func NewSession(rs *RuleSet, e Expert, opts Options) *Session {
	return core.NewSession(rs, e, opts)
}

// DefaultWeights returns α = β = γ = 1, the paper's default.
func DefaultWeights() Weights { return cost.DefaultWeights() }

// NewAutoAcceptExpert returns the expert that accepts every proposal — the
// fully-automatic RUDOLF⁻ variant of the paper's Section 5.
func NewAutoAcceptExpert() Expert { return &expert.AutoAccept{} }

// NewOracleExpert returns a simulated trained expert who knows the true
// attack patterns behind the frauds (one rule per pattern) and behaves like
// the paper's running-example expert: accepting pattern-consistent
// proposals, rounding boundaries to the true pattern, rejecting stretches of
// unrelated rules, and trimming dead split branches.
func NewOracleExpert(truth *RuleSet) Expert { return expert.NewOracle(truth) }

// NewNoviceExpert wraps an expert with the decision noise of the paper's
// student volunteers.
func NewNoviceExpert(inner Expert, seed int64) Expert { return expert.NewNovice(inner, seed) }

// NewInteractiveExpert returns a terminal-driven expert reading decisions
// from in and writing prompts to out (used by cmd/rudolf).
func NewInteractiveExpert(in io.Reader, out io.Writer) Expert {
	return expert.NewInteractive(in, out)
}

// NewRecordingExpert wraps an expert with an audit trail: every proposal
// and decision is written to out, one line per interaction.
func NewRecordingExpert(inner Expert, out io.Writer) Expert {
	return expert.NewRecording(inner, out)
}

// Explanation explains one rule's verdict on one transaction.
type Explanation = rules.Explanation

// Explain reports, for each rule in the set, whether it captures
// transaction i of rel and which conditions held or failed — the "why was
// this flagged?" view for alert triage.
func Explain(rs *RuleSet, rel *Relation, i int) []Explanation {
	return rules.Explain(rs, rel, i)
}

// GenerateDataset synthesizes a financial-institute dataset with planted
// attack patterns, per DESIGN.md's substitution for the paper's proprietary
// data.
func GenerateDataset(cfg DataConfig) *Dataset { return datagen.Generate(cfg) }

// InitialRules builds the FI's incumbent (imperfect) rule set for a
// generated dataset; minRules pads the set to FI-sized rule counts.
func InitialRules(ds *Dataset, minRules int, seed int64) *RuleSet {
	return datagen.InitialRules(ds, minRules, seed)
}

// DatasetClusterer returns the leader clusterer configured for the
// synthetic FI schema (daily-recurring attack windows).
func DatasetClusterer() cluster.Algorithm { return datagen.Clusterer() }

// Evaluator is a compiled, parallel rule-set evaluator for large relations.
type Evaluator = index.Evaluator

// Decision-provenance types of the compiled evaluator (see
// Evaluator.AttributeTuple and Evaluator.EvalAttributed): the per-rule,
// per-condition breakdown — with signed margins to the decision boundary —
// that the serving layer's explain mode and cmd/rudolf's -explain flag
// share. A check passes if and only if its margin is >= 0.
type (
	// TupleAttribution is one transaction's full decision provenance.
	TupleAttribution = index.TupleAttribution
	// RuleAttribution is one rule's verdict with its check breakdown.
	RuleAttribution = index.RuleAttribution
	// CheckAttribution is one condition's pass/fail and signed margin.
	CheckAttribution = index.CheckAttribution
	// AttributionBuffer is reusable caller-owned storage for the evaluator's
	// EvalAttributedInto / EvalAttributedLazyInto: flat arenas that make
	// repeated attribution allocation-free. See the ownership rules on
	// index.AttributionBuffer (results alias the buffer until the next call).
	AttributionBuffer = index.AttributionBuffer
)

// ScoreAttr is the CheckAttribution.Attr value marking a rule's
// minimum-score threshold check.
const ScoreAttr = index.ScoreAttr

// WindowAttr is the top of the CheckAttribution.Attr range marking windowed
// (sliding-window aggregate) condition checks — a check satisfies
// IsWindow() when Attr <= WindowAttr; CheckAttribution.Win() then
// indexes the evaluator's WindowSpecs.
const WindowAttr = index.WindowAttr

// WindowSpec identifies one sliding-window aggregate — COUNT, SUM or
// DISTINCT over a key attribute and a time window (the "COUNT(user, 10m)"
// atoms of the rule language).
type WindowSpec = window.Spec

// WindowCond is one windowed condition of a rule (see Rule.Windows): a
// WindowSpec plus the interval its aggregate must fall in.
type WindowCond = rules.WindowCond

// FormatWindowAtom renders a window spec in the rule language's textual
// aggregate-atom form, e.g. "COUNT(user, 10m)".
func FormatWindowAtom(s *Schema, sp WindowSpec) string { return rules.FormatWindowAtom(s, sp) }

// History is a versioned store of rule-set snapshots with the modifications
// between them (the FIs of the paper keep exactly such change histories).
type History = history.Store

// HistoryVersion is one committed rule-set version.
type HistoryVersion = history.Version

// Modification is one logged rule change (see Session.Log).
type Modification = core.Modification

// NewHistory returns an empty rule-set history over the schema.
func NewHistory(s *Schema) *History { return history.NewStore(s) }

// ReadHistoryJSON loads a history written by History.WriteJSON.
func ReadHistoryJSON(r io.Reader, s *Schema) (*History, error) { return history.ReadJSON(r, s) }

// CompileRules snapshots a rule set into a compiled evaluator whose Eval
// runs conditions in selectivity order on parallel workers — use it instead
// of RuleSet.Eval when classifying large relations repeatedly.
func CompileRules(s *Schema, rs *RuleSet) *Evaluator { return index.Compile(s, rs) }

// CaptureCache maintains Φ(I) — the captured-transaction set — incrementally
// across rule edits: one compiled capture bitset per rule plus their running
// union, so editing one rule re-evaluates only that rule instead of
// re-scanning the whole set. Sessions use one internally for every Stats and
// capture query of the refinement loop; rule-management UIs evaluating edit
// previews over large transaction logs can Bind their own.
type CaptureCache = capture.Cache

// NewCaptureCache returns an unbound incremental capture cache; Bind it to a
// relation and rule set before querying, and notify it (RuleAdded,
// RuleReplaced, RuleRemoved) of every rule-set mutation.
func NewCaptureCache() *CaptureCache { return capture.New() }

// Online serving types (see internal/serve and cmd/rudolfd).
type (
	// Server is the online scoring daemon: an atomically hot-swappable
	// compiled rule set behind HTTP endpoints for scoring, rule swaps,
	// feedback ingestion, in-place refinement and telemetry.
	Server = serve.Server
	// ServerConfig parameterizes a Server; only Schema is required.
	ServerConfig = serve.Config
	// TelemetryRegistry collects counters, gauges and histograms served in
	// Prometheus text format on the daemon's /metrics endpoint.
	TelemetryRegistry = telemetry.Registry
)

// NewServer builds a scoring daemon and publishes cfg.Rules as version 1.
// Mount its Handler on any http.Server, or use Serve for the full lifecycle
// (listen, serve, graceful drain).
func NewServer(cfg ServerConfig) (*Server, error) { return serve.New(cfg) }

// Serve runs a scoring daemon on addr until ctx is canceled, then drains
// gracefully: readiness flips to 503, in-flight requests finish (bounded by
// cfg.DrainTimeout), and the listener closes.
func Serve(ctx context.Context, addr string, cfg ServerConfig) error {
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return srv.Serve(ctx, ln)
}

// NewTelemetryRegistry returns an empty metrics registry, for embedders that
// want the daemon's metrics merged into their own exposition page.
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.NewRegistry() }

// Tracing types (see internal/trace and DESIGN.md §10).
type (
	// Tracer records hierarchical spans into a bounded ring buffer. Pass one
	// in Options.Tracer to trace a refinement session, or read the serving
	// daemon's via Server.Tracer. A nil Tracer is valid and free: every span
	// operation is a zero-allocation no-op.
	Tracer = trace.Tracer
	// Span is one traced operation; the zero Span is inert.
	Span = trace.Span
	// TraceRecord is one completed span or instant, as returned by
	// Tracer.Snapshot and consumed by the exporters.
	TraceRecord = trace.Record
)

// NewTracer returns a tracer whose ring holds up to capacity completed spans
// (0 means the package default). Oldest spans are dropped (and counted) when
// the ring overflows.
func NewTracer(capacity int) *Tracer { return trace.New(trace.Options{Capacity: capacity}) }

// WriteChromeTrace writes the tracer's recorded spans as a Chrome
// trace_event JSON document loadable in chrome://tracing and
// ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, t *Tracer) error { return trace.WriteChromeTo(w, t) }

// WriteTraceJSONL writes trace records as JSON Lines, one span per line —
// the grep/jq-friendly export.
func WriteTraceJSONL(w io.Writer, recs []TraceRecord) error { return trace.WriteJSONL(w, recs) }
