package rudolf_test

import (
	"fmt"
	"strings"

	rudolf "repro"
)

// paperSetting builds the running example of the paper through the public
// API: the Figure 1 ontologies and rules, and the Figure 2 transactions.
func paperSetting() (*rudolf.Schema, *rudolf.Relation, *rudolf.RuleSet) {
	loc := rudolf.NewOntology("location").
		Add("World").
		Add("Gas Station", "World").
		Add("Gas Station A", "Gas Station").
		Add("Gas Station B", "Gas Station").
		Add("Online Store", "World").
		MustBuild()
	schema := rudolf.MustSchema(
		rudolf.Attribute{Name: "time", Kind: rudolf.Numeric,
			Domain: rudolf.NewDomain(0, 1439), Format: rudolf.FormatTimeOfDay},
		rudolf.Attribute{Name: "amount", Kind: rudolf.Numeric,
			Domain: rudolf.NewDomain(0, 100000), Format: rudolf.FormatMoney},
		rudolf.Attribute{Name: "location", Kind: rudolf.Categorical, Ontology: loc},
	)
	rel := rudolf.NewRelation(schema)
	add := func(h, m, amt int64, where string, lab rudolf.Label) {
		rel.MustAppend(rudolf.Tuple{h*60 + m, amt, int64(loc.MustLookup(where))}, lab, 500)
	}
	add(18, 2, 107, "Online Store", rudolf.Fraud)
	add(18, 3, 106, "Online Store", rudolf.Fraud)
	add(18, 4, 112, "Online Store", rudolf.Legitimate)
	add(20, 53, 46, "Gas Station B", rudolf.Fraud)
	rs, _ := rudolf.ParseRules(schema,
		"time in [18:00,18:05] && amount >= $110",
		`time in [20:45,21:15] && amount >= $40 && location = "Gas Station A"`,
	)
	return schema, rel, rs
}

// ExampleNewSession shows a complete automatic refinement pass: the amount
// threshold is lowered to capture the new frauds and the gas-station rule is
// generalized to the ontology concept covering station B.
func ExampleNewSession() {
	schema, rel, rs := paperSetting()
	sess := rudolf.NewSession(rs, rudolf.NewAutoAcceptExpert(), rudolf.Options{})
	stats := sess.Refine(rel)
	fmt.Printf("frauds captured: %d/%d, false positives: %d\n",
		stats.FraudCaptured, stats.FraudTotal, stats.LegitCaptured)
	fmt.Print(sess.Rules().Format(schema))
	// Output:
	// frauds captured: 3/3, false positives: 0
	// 1) time in [20:45,21:15] && amount >= $40 && location <= "Gas Station"
	// 2) time in [18:00,18:03] && amount >= $106
	// 3) time = 18:05 && amount >= $106
}

// ExampleParseRule shows the textual rule language round trip.
func ExampleParseRule() {
	schema, _, _ := paperSetting()
	r, err := rudolf.ParseRule(schema,
		`time in [20:45,21:15] && amount >= $40 && location <= "Gas Station" && score >= 700`)
	if err != nil {
		panic(err)
	}
	fmt.Println(r.Format(schema))
	// Output:
	// time in [20:45,21:15] && amount >= $40 && location <= "Gas Station" && score >= 700
}

// ExampleExplain shows the alert-triage view: why a rule does or does not
// capture a transaction.
func ExampleExplain() {
	schema, rel, rs := paperSetting()
	_ = schema
	for _, e := range rudolf.Explain(rs, rel, 0) {
		verdict := "no"
		if e.Captured {
			verdict = "yes"
		}
		var failing []string
		for _, c := range e.Conditions {
			if !c.Satisfied {
				failing = append(failing, c.Condition)
			}
		}
		fmt.Printf("rule %d captured=%s failing=[%s]\n",
			e.RuleIndex+1, verdict, strings.Join(failing, "; "))
	}
	// Output:
	// rule 1 captured=no failing=[amount >= $110]
	// rule 2 captured=no failing=[time in [20:45,21:15]; location = "Gas Station A"]
}

// ExampleGenerateDataset shows the synthetic FI generator and the compiled
// evaluator working together.
func ExampleGenerateDataset() {
	ds := rudolf.GenerateDataset(rudolf.DataConfig{Size: 1000, Seed: 1})
	ev := rudolf.CompileRules(ds.Schema, ds.Truth)
	captured := ev.Eval(ds.Rel)
	missed := 0
	for _, i := range ds.Rel.Indices(rudolf.Fraud) {
		if !captured.Has(i) {
			missed++
		}
	}
	fmt.Printf("the planted patterns capture every reported fraud: %v\n", missed == 0)
	// Output:
	// the planted patterns capture every reported fraud: true
}
