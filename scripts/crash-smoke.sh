#!/usr/bin/env bash
# Crash-recovery smoke test for the durable serving stack: boot rudolfd with
# a data directory and -fsync always, drive scoring load plus durable churn
# (feedback batches + rule republishes) with cmd/loadgen, kill the daemon
# with SIGKILL mid-flight, restart it on the same data directory, and assert
# with `loadgen -resume` that the rule-set version and feedback count
# survived the crash, that the boot replayed WAL records, that errors arrive
# in the uniform envelope, and that legacy paths still answer 308 redirects.
# -velocity additionally publishes a windowed COUNT rule and scores part of
# a same-key burst before the kill; the resume run finishes the burst and
# requires the rule to fire with window margin exactly 0 — proof the crash
# lost none of the observed transactions. Wired into `make crash-smoke` and
# the `make ci` chain.
set -euo pipefail

cd "$(dirname "$0")/.."

GO=${GO:-go}
DURATION=${CRASH_SMOKE_DURATION:-2s}
CHURN=${CRASH_SMOKE_CHURN:-5}
TMP=$(mktemp -d)
BIN="$TMP/bin"
DATA="$TMP/data"
mkdir -p "$BIN"

cleanup() {
    if [[ -n "${DAEMON_PID:-}" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -KILL "$DAEMON_PID" 2>/dev/null || true
        wait "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

# boot <logfile>: start rudolfd against $DATA and wait for its address.
boot() {
    local log=$1
    : >"$TMP/addr"
    "$BIN/rudolfd" -addr 127.0.0.1:0 -addr-file "$TMP/addr" -size 2000 -seed 1 \
        -data-dir "$DATA" -fsync always -snapshot-interval -1s \
        >"$log" 2>&1 &
    DAEMON_PID=$!
    for _ in $(seq 1 100); do
        [[ -s "$TMP/addr" ]] && break
        if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
            echo "crash-smoke: rudolfd died during startup:" >&2
            cat "$log" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [[ ! -s "$TMP/addr" ]]; then
        echo "crash-smoke: rudolfd never published its address" >&2
        cat "$log" >&2
        exit 1
    fi
    ADDR=$(head -n1 "$TMP/addr" | tr -d '[:space:]')
}

echo "crash-smoke: building rudolfd and loadgen"
$GO build -o "$BIN/rudolfd" ./cmd/rudolfd
$GO build -o "$BIN/loadgen" ./cmd/loadgen

echo "crash-smoke: booting rudolfd with -data-dir (fsync always)"
boot "$TMP/rudolfd-1.log"
echo "crash-smoke: rudolfd is up on $ADDR (pid $DAEMON_PID)"

echo "crash-smoke: load + durable churn ($CHURN feedback batches + republishes)"
"$BIN/loadgen" -url "http://$ADDR" -duration "$DURATION" -concurrency 4 -batch 64 \
    -churn "$CHURN" -state-file "$TMP/state" -velocity
echo "crash-smoke: recorded state: $(cat "$TMP/state")"

echo "crash-smoke: SIGKILL to pid $DAEMON_PID (no drain, no flush)"
kill -KILL "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

echo "crash-smoke: restarting on the same data directory"
boot "$TMP/rudolfd-2.log"
echo "crash-smoke: rudolfd is back on $ADDR"

echo "crash-smoke: asserting the recorded state survived the crash"
"$BIN/loadgen" -url "http://$ADDR" -resume -state-file "$TMP/state" -velocity

# Graceful drain of the recovered daemon: SIGTERM must exit cleanly and
# flush its state.
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
DAEMON_PID=""
grep -q "durable state flushed" "$TMP/rudolfd-2.log" || {
    echo "crash-smoke: drain did not flush durable state" >&2
    cat "$TMP/rudolfd-2.log" >&2
    exit 1
}
echo "crash-smoke: recovered daemon drained cleanly"
echo "crash-smoke: ok"
