#!/usr/bin/env bash
# Replication smoke test for the WAL-shipping cluster (DESIGN.md §16): boot
# one durable leader and two -follow followers, assert roles over GET
# /v1/status and the read_only write rejection (stable envelope + Location
# into the leader), measure a single-follower scoring baseline, then drive
# both followers concurrently while the leader publishes a new rule set
# mid-load and require every node to converge to the leader's exact
# /v1/rules ETag. One follower is then SIGKILLed and restarted — it must
# re-bootstrap from the leader and converge again. Finally the aggregate
# two-follower throughput must beat the single-follower baseline by
# CLUSTER_SMOKE_FACTOR. The default is core-aware and deliberately lenient —
# this is a scale sanity check, not a benchmark: with >= 4 cores the two
# followers must actually scale (1.2x the baseline); on smaller boxes the
# leader, both followers and both load generators all contend for the same
# CPUs, so the assertion degrades to a floor (0.5x) proving both followers
# keep serving under concurrent load. Wired into `make cluster-smoke` and
# the `make ci` chain.
set -euo pipefail

cd "$(dirname "$0")/.."

GO=${GO:-go}
DURATION=${CLUSTER_SMOKE_DURATION:-3s}
CORES=$(nproc 2>/dev/null || echo 1)
if [[ -n "${CLUSTER_SMOKE_FACTOR:-}" ]]; then
    FACTOR=$CLUSTER_SMOKE_FACTOR
elif [[ $CORES -ge 4 ]]; then
    FACTOR=1.2
else
    FACTOR=0.5
fi
TMP=$(mktemp -d)
BIN="$TMP/bin"
DATA="$TMP/data"
mkdir -p "$BIN"

LEADER_PID=""
F1_PID=""
F2_PID=""
F3_PID=""
L2_PID=""
cleanup() {
    local pid
    for pid in "$F1_PID" "$F2_PID" "$F3_PID" "$LEADER_PID" "$L2_PID"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill -KILL "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$TMP"
}
trap cleanup EXIT

# wait_addr <addr-file> <pid> <log> <name>: block until the daemon writes its
# bound address, echo it.
wait_addr() {
    local addrfile=$1 pid=$2 log=$3 name=$4
    for _ in $(seq 1 200); do
        [[ -s "$addrfile" ]] && break
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "cluster-smoke: $name died during startup:" >&2
            cat "$log" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [[ ! -s "$addrfile" ]]; then
        echo "cluster-smoke: $name never published its address" >&2
        cat "$log" >&2
        exit 1
    fi
    head -n1 "$addrfile" | tr -d '[:space:]'
}

# wait_ready <base-url> <name>: poll /readyz until it answers 200.
wait_ready() {
    local base=$1 name=$2
    for _ in $(seq 1 200); do
        if curl -fsS "$base/readyz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "cluster-smoke: $name never became ready" >&2
    exit 1
}

# boot_follower <n>: start follower n against the leader; sets F<n> (base
# URL) and F<n>_PID.
boot_follower() {
    local n=$1
    local log="$TMP/follower-$n.log" addrfile="$TMP/addr-f$n"
    : >"$addrfile"
    "$BIN/rudolfd" -addr 127.0.0.1:0 -addr-file "$addrfile" \
        -follow "http://$LEADER_ADDR" >"$log" 2>&1 &
    local pid=$!
    local addr
    addr=$(wait_addr "$addrfile" "$pid" "$log" "follower $n")
    if [[ $n == 1 ]]; then
        F1_PID=$pid F1="http://$addr"
    else
        F2_PID=$pid F2="http://$addr"
    fi
}

# etag_of <base-url>: the current GET /v1/rules ETag.
etag_of() {
    curl -fsS -o /dev/null -D - "$1/v1/rules" |
        awk 'tolower($1) == "etag:" { print $2 }' | tr -d '\r'
}

# tx_rate <loadgen-log>: the load-phase throughput loadgen reported.
tx_rate() {
    awk '/tx\/s/ { for (i = 1; i <= NF; i++) if ($i == "->") print $(i + 1) }' "$1" | head -n1
}

echo "cluster-smoke: building rudolfd and loadgen"
$GO build -o "$BIN/rudolfd" ./cmd/rudolfd
$GO build -o "$BIN/loadgen" ./cmd/loadgen

echo "cluster-smoke: booting the leader with -data-dir"
: >"$TMP/addr-leader"
"$BIN/rudolfd" -addr 127.0.0.1:0 -addr-file "$TMP/addr-leader" -size 2000 -seed 1 \
    -data-dir "$DATA" -fsync interval -snapshot-interval 2s \
    >"$TMP/leader.log" 2>&1 &
LEADER_PID=$!
LEADER_ADDR=$(wait_addr "$TMP/addr-leader" "$LEADER_PID" "$TMP/leader.log" "leader")
LEADER="http://$LEADER_ADDR"
wait_ready "$LEADER" "leader"
echo "cluster-smoke: leader is up on $LEADER_ADDR (pid $LEADER_PID)"

echo "cluster-smoke: booting two followers of $LEADER"
boot_follower 1
boot_follower 2
wait_ready "$F1" "follower 1"
wait_ready "$F2" "follower 2"
echo "cluster-smoke: followers are up on $F1 and $F2"

echo "cluster-smoke: asserting roles over GET /v1/status"
[[ $(curl -fsS "$LEADER/v1/status" | jq -r .role) == leader ]] || {
    echo "cluster-smoke: leader does not report role=leader" >&2
    exit 1
}
for f in "$F1" "$F2"; do
    [[ $(curl -fsS "$f/v1/status" | jq -r .role) == follower ]] || {
        echo "cluster-smoke: $f does not report role=follower" >&2
        exit 1
    }
done

echo "cluster-smoke: asserting the read_only write rejection"
STATUS=$(curl -s -o "$TMP/ro-body" -D "$TMP/ro-headers" -w '%{http_code}' \
    -H 'Content-Type: application/json' -X POST "$F1/v1/rules" \
    -d '{"rules": ["score >= 1"]}')
[[ $STATUS == 403 ]] || {
    echo "cluster-smoke: follower POST /v1/rules answered $STATUS, want 403" >&2
    cat "$TMP/ro-body" >&2
    exit 1
}
[[ $(jq -r .error.code <"$TMP/ro-body") == read_only ]] || {
    echo "cluster-smoke: rejection is not the read_only envelope:" >&2
    cat "$TMP/ro-body" >&2
    exit 1
}
grep -qi "^Location: $LEADER/v1/rules" "$TMP/ro-headers" || {
    echo "cluster-smoke: rejection Location does not point at the leader:" >&2
    cat "$TMP/ro-headers" >&2
    exit 1
}

echo "cluster-smoke: single-follower baseline ($DURATION)"
"$BIN/loadgen" -url "$F1" -follower-of "$LEADER" -duration "$DURATION" \
    -concurrency 4 -batch 64 | tee "$TMP/loadgen-base.log"
BASE_RATE=$(tx_rate "$TMP/loadgen-base.log")

echo "cluster-smoke: concurrent load on both followers, publish mid-load"
"$BIN/loadgen" -url "$F1" -follower-of "$LEADER" -duration "$DURATION" \
    -concurrency 4 -batch 64 -seed 2 >"$TMP/loadgen-f1.log" 2>&1 &
LG1=$!
"$BIN/loadgen" -url "$F2" -follower-of "$LEADER" -duration "$DURATION" \
    -concurrency 4 -batch 64 -seed 3 >"$TMP/loadgen-f2.log" 2>&1 &
LG2=$!
sleep 1
NEW_RULES=$(curl -fsS "$LEADER/v1/rules" | jq '.rules + ["score >= 1"]')
curl -fsS -H 'Content-Type: application/json' -X POST "$LEADER/v1/rules" \
    -d "{\"rules\": $NEW_RULES, \"comment\": \"cluster-smoke mid-load publish\"}" >/dev/null
echo "cluster-smoke: published a new rule set on the leader mid-load"
wait "$LG1" || { echo "cluster-smoke: loadgen on follower 1 failed:" >&2; cat "$TMP/loadgen-f1.log" >&2; exit 1; }
wait "$LG2" || { echo "cluster-smoke: loadgen on follower 2 failed:" >&2; cat "$TMP/loadgen-f2.log" >&2; exit 1; }

echo "cluster-smoke: waiting for every node to converge on the leader's ETag"
LETAG=$(etag_of "$LEADER")
for f in "$F1" "$F2"; do
    for _ in $(seq 1 100); do
        [[ $(etag_of "$f") == "$LETAG" ]] && break
        sleep 0.1
    done
    FETAG=$(etag_of "$f")
    [[ $FETAG == "$LETAG" ]] || {
        echo "cluster-smoke: $f ETag $FETAG never converged to leader ETag $LETAG" >&2
        exit 1
    }
done
echo "cluster-smoke: all nodes serve /v1/rules with ETag $LETAG"

echo "cluster-smoke: SIGKILL follower 2 (pid $F2_PID) and restart it"
kill -KILL "$F2_PID"
wait "$F2_PID" 2>/dev/null || true
F2_PID=""
boot_follower 2
wait_ready "$F2" "restarted follower 2"
"$BIN/loadgen" -url "$F2" -follower-of "$LEADER" -duration 1s \
    -concurrency 2 -batch 64 -seed 4 >"$TMP/loadgen-f2b.log" 2>&1 || {
    echo "cluster-smoke: restarted follower 2 failed its contract check:" >&2
    cat "$TMP/loadgen-f2b.log" >&2
    exit 1
}
echo "cluster-smoke: restarted follower 2 re-bootstrapped and converged"

R1=$(tx_rate "$TMP/loadgen-f1.log")
R2=$(tx_rate "$TMP/loadgen-f2.log")
RATIO=$(awk -v a="$R1" -v b="$R2" -v base="$BASE_RATE" \
    'BEGIN { printf "%.2f", (a + b) / base }')
echo "cluster-smoke: single-follower baseline $BASE_RATE tx/s; concurrent $R1 + $R2 tx/s (ratio $RATIO, want >= $FACTOR on $CORES cores)"
awk -v a="$R1" -v b="$R2" -v base="$BASE_RATE" -v f="$FACTOR" \
    'BEGIN { exit !(a + b >= f * base) }' || {
    echo "cluster-smoke: aggregate follower throughput did not scale (ratio $RATIO < $FACTOR)" >&2
    exit 1
}

# --- Replication-lag alerting: a catching-up follower pages, then resolves
# A second leader runs with periodic snapshots disabled, so a fresh follower
# must replay its entire WAL record by record — a wide, observable catch-up
# window. The WAL is fattened with observe records (a windowed rule makes
# every scored batch durable), then a follower boots with a node-local alert
# file (-alerts, proving the flag composes with -follow) and a 25ms
# evaluator: any replication lag at all must page. The firing→resolved pair
# is asserted from the retained history, so the assertion does not race the
# catch-up — the fast ticker observed it even if the poll below missed it.
echo "cluster-smoke: replication-lag alert phase (leader 2, no periodic snapshots)"
: >"$TMP/addr-leader2"
"$BIN/rudolfd" -addr 127.0.0.1:0 -addr-file "$TMP/addr-leader2" -size 2000 -seed 1 \
    -data-dir "$TMP/data2" -fsync interval -snapshot-interval -1s \
    >"$TMP/leader2.log" 2>&1 &
L2_PID=$!
L2_ADDR=$(wait_addr "$TMP/addr-leader2" "$L2_PID" "$TMP/leader2.log" "leader 2")
L2="http://$L2_ADDR"
wait_ready "$L2" "leader 2"
L2_RULES=$(curl -fsS "$L2/v1/rules" | jq '.rules + ["COUNT(location, 10m) >= 5"]')
curl -fsS -H 'Content-Type: application/json' -X POST "$L2/v1/rules" \
    -d "{\"rules\": $L2_RULES, \"comment\": \"cluster-smoke windowed rule\"}" >/dev/null
"$BIN/loadgen" -url "$L2" -duration "$DURATION" -concurrency 4 -batch 64 -seed 5 \
    >"$TMP/loadgen-l2.log" 2>&1 || {
    echo "cluster-smoke: WAL-fattening load on leader 2 failed:" >&2
    cat "$TMP/loadgen-l2.log" >&2
    exit 1
}

cat >"$TMP/lag-alert.txt" <<'EOF'
# Cluster-smoke: page the moment this follower trails the leader at all.
alert lag_catchup severity=page: value(rudolf_replica_lag_records) >= 1
EOF
: >"$TMP/addr-f3"
"$BIN/rudolfd" -addr 127.0.0.1:0 -addr-file "$TMP/addr-f3" \
    -follow "$L2" -alerts "$TMP/lag-alert.txt" -alert-interval 25ms \
    >"$TMP/follower-3.log" 2>&1 &
F3_PID=$!
F3_ADDR=$(wait_addr "$TMP/addr-f3" "$F3_PID" "$TMP/follower-3.log" "follower 3")
F3="http://$F3_ADDR"

# Best-effort live observation of the firing state while /readyz is still
# 503; the authoritative assertion is on the history below.
LIVE=""
for _ in $(seq 1 200); do
    if curl -fsS "$F3/readyz" >/dev/null 2>&1; then
        break
    fi
    DOC=$(curl -fsS "$F3/v1/alerts" 2>/dev/null || true)
    if [[ -n "$DOC" ]] && jq -e \
        '.rules[] | select(.name == "lag_catchup") | .state == "firing"' <<<"$DOC" >/dev/null 2>&1; then
        LIVE=1
    fi
    sleep 0.02
done
wait_ready "$F3" "follower 3"

# Caught up: the next evaluation sees zero lag and must resolve the page.
LAG_OK=""
for _ in $(seq 1 100); do
    DOC=$(curl -fsS "$F3/v1/alerts?refresh=1")
    if jq -e '.rules[] | select(.name == "lag_catchup") | .state == "inactive"' <<<"$DOC" >/dev/null; then
        LAG_OK=1
        break
    fi
    sleep 0.05
done
[[ -n "$LAG_OK" ]] || {
    echo "cluster-smoke: lag_catchup never resolved after catch-up: $DOC" >&2
    exit 1
}
jq -e '
    ([.recent[] | select(.name == "lag_catchup" and .state == "firing")] | length >= 1)
    and ([.recent[] | select(.name == "lag_catchup" and .state == "resolved")] | length >= 1)
' <<<"$DOC" >/dev/null || {
    echo "cluster-smoke: lag_catchup history lacks the firing/resolved pair: $DOC" >&2
    cat "$TMP/follower-3.log" >&2
    exit 1
}
curl -fsS "$F3/v1/status" | jq -e '.role == "follower" and .alerts_firing == 0' >/dev/null || {
    echo "cluster-smoke: follower 3 status malformed after catch-up" >&2
    exit 1
}
echo "cluster-smoke: lag alert fired during catch-up and resolved when caught up${LIVE:+ (observed live)}"

# Graceful teardown: followers first, then the leaders.
for pid in "$F1_PID" "$F2_PID" "$F3_PID" "$LEADER_PID" "$L2_PID"; do
    kill -TERM "$pid"
    wait "$pid"
done
F1_PID="" F2_PID="" F3_PID="" LEADER_PID="" L2_PID=""
echo "cluster-smoke: ok"
