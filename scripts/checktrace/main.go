// Command checktrace validates a Chrome trace_event JSON file produced by
// the rudolf tracer (GET /trace on rudolfd, rudolf -trace-out, or
// experiments -traces). It is the assertion half of `make trace-demo`:
// beyond well-formedness it checks the span tree is structurally sound
// (parents contain their children in time on the same track) and that the
// trace actually tells the refinement story — at least one refine.round span
// with an expert-query child.
//
// Usage:
//
//	checktrace [-o save.json] <file-or-http-url>
//
// The argument is a path or an http(s) URL; with -o the fetched bytes are
// also written to a file (so one invocation can both dump and validate a
// live daemon's /trace). Exits non-zero with a diagnostic on any violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
)

// event is one trace_event, with the tracer's correlation args decoded.
type event struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`  // microseconds
	Dur   float64        `json:"dur"` // microseconds
	PID   int            `json:"pid"`
	TID   uint64         `json:"tid"`
	Args  map[string]any `json:"args"`
}

func (e *event) spanID() (uint64, bool)   { return argID(e.Args, "span_id") }
func (e *event) parentID() (uint64, bool) { return argID(e.Args, "parent_id") }

func argID(args map[string]any, key string) (uint64, bool) {
	v, ok := args[key]
	if !ok {
		return 0, false
	}
	f, ok := v.(float64) // encoding/json decodes numbers as float64
	if !ok || f < 0 {
		return 0, false
	}
	return uint64(f), true
}

func main() {
	out := flag.String("o", "", "also write the fetched trace JSON to this path")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: checktrace [-o save.json] <file-or-http-url>")
		os.Exit(2)
	}
	raw, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			fatal(err)
		}
	}
	if err := validate(raw); err != nil {
		fatal(err)
	}
}

// load reads the trace from a file path or an http(s) URL.
func load(src string) ([]byte, error) {
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		resp, err := http.Get(src)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: %d", src, resp.StatusCode)
		}
		return io.ReadAll(resp.Body)
	}
	return os.ReadFile(src)
}

// validate runs every structural check and prints a one-line summary.
func validate(raw []byte) error {
	var doc struct {
		TraceEvents []event `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("not a JSON trace document: %w", err)
	}
	evs := doc.TraceEvents
	if len(evs) == 0 {
		return fmt.Errorf("trace has no events")
	}

	// Per-event well-formedness + span index.
	byID := make(map[uint64]*event, len(evs))
	for i := range evs {
		e := &evs[i]
		if e.Name == "" {
			return fmt.Errorf("event %d has no name", i)
		}
		if e.Phase != "X" && e.Phase != "i" {
			return fmt.Errorf("event %d (%s) has phase %q, want X or i", i, e.Name, e.Phase)
		}
		if e.TS < 0 || e.Dur < 0 {
			return fmt.Errorf("event %d (%s) has negative ts/dur (%v/%v)", i, e.Name, e.TS, e.Dur)
		}
		id, ok := e.spanID()
		if !ok {
			return fmt.Errorf("event %d (%s) carries no args.span_id", i, e.Name)
		}
		if prev, dup := byID[id]; dup {
			return fmt.Errorf("span id %d duplicated (%s and %s)", id, prev.Name, e.Name)
		}
		byID[id] = e
	}

	// Parent linkage: children lie within their parent in time, on the same
	// track. Parents evicted by ring overflow are skipped (orphans are fine);
	// tol absorbs µs rounding of the ns-resolution records.
	const tol = 2.0 // µs
	children := make(map[uint64][]*event, len(evs))
	checked := 0
	for i := range evs {
		e := &evs[i]
		pid, ok := e.parentID()
		if !ok {
			continue
		}
		p, present := byID[pid]
		if !present {
			continue
		}
		children[pid] = append(children[pid], e)
		if e.TID != p.TID {
			return fmt.Errorf("%s (span %d) is on track %d but its parent %s is on %d",
				e.Name, mustID(e), e.TID, p.Name, p.TID)
		}
		if e.TS+tol < p.TS || e.TS+e.Dur > p.TS+p.Dur+tol {
			return fmt.Errorf("%s [%.1f,%.1f] escapes parent %s [%.1f,%.1f]",
				e.Name, e.TS, e.TS+e.Dur, p.Name, p.TS, p.TS+p.Dur)
		}
		checked++
	}

	// The refinement story: ≥1 refine.round span with ≥1 expert-query span
	// somewhere beneath it (expert spans nest under the generalize/specialize
	// phase spans, which nest under the round).
	rounds, roundsWithExpert := 0, 0
	for id, e := range byID {
		if e.Name != "refine.round" {
			continue
		}
		rounds++
		if hasDescendant(children, id, func(e *event) bool { return strings.HasPrefix(e.Name, "expert.") }) {
			roundsWithExpert++
		}
	}
	if rounds == 0 {
		return fmt.Errorf("trace has no refine.round span")
	}
	if roundsWithExpert == 0 {
		return fmt.Errorf("no refine.round span has an expert.* child (%d rounds)", rounds)
	}

	names := make(map[string]int, 16)
	for i := range evs {
		names[evs[i].Name]++
	}
	top := make([]string, 0, len(names))
	for n := range names {
		top = append(top, n)
	}
	sort.Strings(top)
	fmt.Printf("checktrace: ok — %d events, %d parent links verified, %d refine.round (%d with expert queries)\n",
		len(evs), checked, rounds, roundsWithExpert)
	fmt.Printf("checktrace: span names: %s\n", strings.Join(top, " "))
	return nil
}

// hasDescendant walks the span tree below root looking for a span matching
// pred.
func hasDescendant(children map[uint64][]*event, root uint64, pred func(*event) bool) bool {
	stack := []uint64{root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range children[id] {
			if pred(c) {
				return true
			}
			if cid, ok := c.spanID(); ok {
				stack = append(stack, cid)
			}
		}
	}
	return false
}

func mustID(e *event) uint64 {
	id, _ := e.spanID()
	return id
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "checktrace:", err)
	os.Exit(1)
}
