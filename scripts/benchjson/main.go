// Command benchjson converts `go test -bench` text output (read from
// stdin) into a stable JSON document, so benchmark runs can be committed,
// diffed and charted without scraping the free-form text format. It is the
// back half of scripts/bench.sh / `make bench-json`, which emit
// BENCH_core.json and BENCH_serve.json at the repo root.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./scripts/benchjson -out BENCH.json
//
// The parser understands the standard testing package output: the
// goos/goarch/pkg/cpu header lines, and one result line per benchmark of
// the form
//
//	BenchmarkName-8   1234   56789 ns/op   12 B/op   3 allocs/op   4.5 custom_metric/op
//
// Every "<value> <unit>" pair after the iteration count is preserved:
// ns/op gets a dedicated field, everything else (including b.ReportMetric
// extras like tx/s or tuple_rule_pairs/op) lands in the metrics map.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"
)

type benchResult struct {
	// Name is the benchmark name with the "Benchmark" prefix and the
	// -GOMAXPROCS suffix stripped (sub-benchmarks keep their slash path).
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix of the raw name (0 if absent).
	Procs int `json:"procs,omitempty"`
	// Runs is the iteration count the harness settled on.
	Runs int64 `json:"runs"`
	// NsPerOp is the headline wall-clock metric.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every other "<value> <unit>" pair of the result line,
	// keyed by unit (e.g. "B/op", "allocs/op", "tx/s").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type benchDoc struct {
	Generated  string        `json:"generated"`
	GoOS       string        `json:"goos,omitempty"`
	GoArch     string        `json:"goarch,omitempty"`
	Pkg        string        `json:"pkg,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output path (empty: stdout)")
	flag.Parse()

	doc := benchDoc{Generated: generatedStamp()}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBenchLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark result lines on stdin"))
	}

	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	raw = append(raw, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(raw); err != nil {
			fatal(err)
		}
		return
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

// parseBenchLine decodes one benchmark result line; ok is false for lines
// that merely look like one (e.g. a wrapped name with no fields).
func parseBenchLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return benchResult{}, false
	}
	r := benchResult{Metrics: map[string]float64{}}
	r.Name = strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(r.Name, "-"); i >= 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	r.Runs = runs
	// The rest is "<value> <unit>" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		if fields[i+1] == "ns/op" {
			r.NsPerOp = v
			continue
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return r, true
}

// generatedStamp returns the "generated" timestamp. A wall-clock stamp
// would make every run of `make bench-json` dirty the committed BENCH_*.json
// even when no number moved, so the stamp is sourced deterministically:
// SOURCE_DATE_EPOCH (the reproducible-builds convention) wins, then the HEAD
// commit date of the enclosing git checkout; wall clock is the last resort
// for exported trees with neither.
func generatedStamp() string {
	if v := os.Getenv("SOURCE_DATE_EPOCH"); v != "" {
		if sec, err := strconv.ParseInt(v, 10, 64); err == nil {
			return time.Unix(sec, 0).UTC().Format(time.RFC3339)
		}
		fmt.Fprintf(os.Stderr, "benchjson: ignoring malformed SOURCE_DATE_EPOCH %q\n", v)
	}
	if out, err := exec.Command("git", "log", "-1", "--format=%ct").Output(); err == nil {
		if sec, err := strconv.ParseInt(strings.TrimSpace(string(out)), 10, 64); err == nil {
			return time.Unix(sec, 0).UTC().Format(time.RFC3339)
		}
	}
	return time.Now().UTC().Format(time.RFC3339)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
