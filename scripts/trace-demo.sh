#!/usr/bin/env bash
# Trace demo: boot rudolfd on a random port, drive load plus one
# feedback-driven refinement through it with cmd/loadgen -smoke, then dump
# GET /v1/trace to a Chrome trace_event JSON file and validate it with
# scripts/checktrace (well-formed, span tree sound, at least one refine.round
# span with expert-query descendants). The dumped file loads directly in
# ui.perfetto.dev. Wired into `make trace-demo` and the `make ci` chain.
set -euo pipefail

cd "$(dirname "$0")/.."

GO=${GO:-go}
DURATION=${TRACE_DEMO_DURATION:-1s}
TMP=$(mktemp -d)
BIN="$TMP/bin"
OUT=${TRACE_OUT:-$TMP/trace-demo.json}
mkdir -p "$BIN"

cleanup() {
    if [[ -n "${DAEMON_PID:-}" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -TERM "$DAEMON_PID" 2>/dev/null || true
        wait "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "trace-demo: building rudolfd, loadgen and checktrace"
$GO build -o "$BIN/rudolfd" ./cmd/rudolfd
$GO build -o "$BIN/loadgen" ./cmd/loadgen
$GO build -o "$BIN/checktrace" ./scripts/checktrace

echo "trace-demo: booting rudolfd on a random port"
"$BIN/rudolfd" -addr 127.0.0.1:0 -addr-file "$TMP/addr" -size 2000 -seed 1 \
    -log-format json >"$TMP/rudolfd.log" 2>&1 &
DAEMON_PID=$!

for _ in $(seq 1 100); do
    [[ -s "$TMP/addr" ]] && break
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        echo "trace-demo: rudolfd died during startup:" >&2
        cat "$TMP/rudolfd.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [[ ! -s "$TMP/addr" ]]; then
    echo "trace-demo: rudolfd never published its address" >&2
    cat "$TMP/rudolfd.log" >&2
    exit 1
fi
ADDR=$(head -n1 "$TMP/addr" | tr -d '[:space:]')
echo "trace-demo: rudolfd is up on $ADDR"

# Load + feedback + /refine: the -smoke pass runs the refinement whose spans
# the trace must contain.
"$BIN/loadgen" -url "http://$ADDR" -duration "$DURATION" -concurrency 4 -batch 32 -smoke

# Dump GET /v1/trace to $OUT and validate it in one go.
echo "trace-demo: dumping and validating GET /v1/trace"
"$BIN/checktrace" -o "$OUT" "http://$ADDR/v1/trace"
echo "trace-demo: chrome trace written to $OUT (load it in ui.perfetto.dev)"

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
DAEMON_PID=""
echo "trace-demo: ok"
