#!/usr/bin/env bash
# Smoke test for the online scoring daemon: boot rudolfd on a random port,
# drive a generated batch load through /v1/score with cmd/loadgen, swap the
# rules, and assert that /metrics moved (transactions scored, version
# bumped). Wired into `make smoke` and the `make ci` chain.
set -euo pipefail

cd "$(dirname "$0")/.."

GO=${GO:-go}
DURATION=${SMOKE_DURATION:-2s}
TMP=$(mktemp -d)
BIN="$TMP/bin"
mkdir -p "$BIN"

cleanup() {
    if [[ -n "${DAEMON_PID:-}" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -TERM "$DAEMON_PID" 2>/dev/null || true
        wait "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "smoke: building rudolfd and loadgen"
$GO build -o "$BIN/rudolfd" ./cmd/rudolfd
$GO build -o "$BIN/loadgen" ./cmd/loadgen

echo "smoke: booting rudolfd on a random port"
# -alert-interval 100ms: the fast ticker the alert phase at the bottom
# relies on. No -alerts file — loadgen -smoke asserts the compiled-in
# default SLO rules are installed (and quiet); the alert phase then swaps
# in its own aggressive rule through POST /v1/alerts.
"$BIN/rudolfd" -addr 127.0.0.1:0 -addr-file "$TMP/addr" -size 2000 -seed 1 \
    -alert-interval 100ms \
    >"$TMP/rudolfd.log" 2>&1 &
DAEMON_PID=$!

# Wait for the daemon to write its bound address.
for _ in $(seq 1 100); do
    [[ -s "$TMP/addr" ]] && break
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        echo "smoke: rudolfd died during startup:" >&2
        cat "$TMP/rudolfd.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [[ ! -s "$TMP/addr" ]]; then
    echo "smoke: rudolfd never published its address" >&2
    cat "$TMP/rudolfd.log" >&2
    exit 1
fi
ADDR=$(head -n1 "$TMP/addr" | tr -d '[:space:]')
echo "smoke: rudolfd is up on $ADDR"

# Load phase + control-plane assertions (swap rules, /metrics moved).
"$BIN/loadgen" -url "http://$ADDR" -duration "$DURATION" -concurrency 4 -batch 64 -smoke

# --- Decision provenance + rule health, exercised from the outside -------
# loadgen asserted these through its Go client; repeat the core invariants
# with curl+jq, the way an operator would, against a rule set the script
# controls: republish the served rules plus a catch-all score-threshold
# rule, replay a transaction from the audit ring through explain-mode
# scoring, and assert the attribution and the feedback-driven TP/FP join.
echo "smoke: explain + rule-health assertions (curl/jq)"
BASE="http://$ADDR"

RULES_JSON=$(curl -fsS "$BASE/v1/rules")
N=$(echo "$RULES_JSON" | jq '.rules | length')
NEW_RULES=$(echo "$RULES_JSON" | jq '.rules + ["score >= 1"]')
curl -fsS -H 'Content-Type: application/json' -X POST "$BASE/v1/rules" \
    -d "{\"rules\": $NEW_RULES, \"comment\": \"smoke catch-all\"}" >/dev/null
VERSION=$(curl -fsS "$BASE/v1/rules" | jq .version)

# The audit ring survives rule swaps; its rendered attrs are a valid wire
# transaction (loadgen already asserted the ring is non-empty).
ATTRS=$(curl -fsS "$BASE/v1/audit?n=1" | jq '.entries[0].attrs')
TX="{\"attrs\": $ATTRS, \"score\": 500}"

# Default explain mode: a breakdown per *fired* rule, margins consistent.
EXPLAIN=$(curl -fsS -H 'Content-Type: application/json' -X POST "$BASE/v1/score" \
    -d "{\"transactions\": [$TX], \"explain\": true}")
echo "$EXPLAIN" | jq -e --argjson n "$N" --argjson v "$VERSION" '
    .version == $v
    and (.explanations | length == 1)
    and (.explanations[0] | .flagged == ((.matched | length) > 0))
    and (.explanations[0].matched | index($n) != null)
    and ([.explanations[0].rules[].rule] == .explanations[0].matched)
    and ([.explanations[0].rules[].matched] | all)
    and ([.explanations[0].rules[].checks[] | .pass == (.margin >= 0)] | all)
' >/dev/null || {
    echo "smoke: explain-mode attribution assertions failed: $EXPLAIN" >&2
    exit 1
}
# explain_all: the full index-aligned rule table, near-misses included.
EXPLAIN_ALL=$(curl -fsS -H 'Content-Type: application/json' -X POST "$BASE/v1/score" \
    -d "{\"transactions\": [$TX], \"explain_all\": true}")
echo "$EXPLAIN_ALL" | jq -e --argjson n "$N" --argjson v "$VERSION" '
    .version == $v
    and (.explanations | length == 1)
    and (.explanations[0].rules | length == $n + 1)
    and ([.explanations[0].rules[].rule] == [range(0; $n + 1)])
    and ([.explanations[0].rules[].checks[] | .pass == (.margin >= 0)] | all)
' >/dev/null || {
    echo "smoke: explain_all attribution assertions failed: $EXPLAIN_ALL" >&2
    exit 1
}
# Fire accounting is first-match: the fire is credited to the first rule the
# transaction matches, which may be a base rule rather than the catch-all.
FIRST=$(echo "$EXPLAIN" | jq '.explanations[0].matched[0]')

# The catch-all rule captures the transaction, so fraud feedback must move
# its TP and legit feedback its FP in /v1/rules/health — and the health
# snapshot must be ETag-consistent with the published version.
curl -fsS -H 'Content-Type: application/json' -X POST "$BASE/v1/feedback" \
    -d "{\"transactions\": [{\"attrs\": $ATTRS, \"score\": 500, \"label\": \"fraud\"}]}" >/dev/null
curl -fsS -H 'Content-Type: application/json' -X POST "$BASE/v1/feedback" \
    -d "{\"transactions\": [{\"attrs\": $ATTRS, \"score\": 500, \"label\": \"legit\"}]}" >/dev/null
HEALTH=$(curl -fsS "$BASE/v1/rules/health")
echo "$HEALTH" | jq -e --argjson n "$N" --argjson v "$VERSION" --argjson first "$FIRST" '
    .version == $v
    and (.rules | length == $n + 1)
    and (.rules[$first].fires >= 1)
    and (.rules[$n].tp >= 1)
    and (.rules[$n].fp >= 1)
' >/dev/null || {
    echo "smoke: /v1/rules/health TP/FP assertions failed: $HEALTH" >&2
    exit 1
}
ETAG=$(curl -fsS -o /dev/null -D - "$BASE/v1/rules/health" | tr -d '\r' | awk 'tolower($1)=="etag:"{print $2}')
CODE=$(curl -s -o /dev/null -w '%{http_code}' -H "If-None-Match: $ETAG" "$BASE/v1/rules/health")
if [[ "$CODE" != "304" ]]; then
    echo "smoke: /v1/rules/health If-None-Match $ETAG answered $CODE, want 304" >&2
    exit 1
fi
echo "smoke: explain + rule-health assertions ok (version $VERSION, fire on rule $FIRST, catch-all rule $N: tp/fp moved)"

# --- Stateful velocity rules: a same-venue burst trips a windowed COUNT --
# Publish a single windowed rule so flagged ⟺ the velocity rule fired, then
# replay the audit transaction five times in a tight burst: the fifth event
# at the same location within 10 minutes must fire the rule, and its explain
# check must carry the window kind with a non-negative margin. The first
# probe must not fire — at most two earlier explain observations share its
# location, so its count is at most 3 < 5. (Probes 2-4 are left unasserted:
# carryover observations can legitimately push them over the threshold.)
echo "smoke: velocity-rule assertions (curl/jq)"
curl -fsS -H 'Content-Type: application/json' -X POST "$BASE/v1/rules" \
    -d '{"rules": ["COUNT(location, 10m) >= 5"], "comment": "smoke velocity"}' >/dev/null
BURST=$(jq -n --argjson a "$ATTRS" \
    '{transactions: [range(0;5) | {attrs: ($a + {time: (1400 + .)}), score: 500}], explain: true}')
VEL=$(curl -fsS -H 'Content-Type: application/json' -X POST "$BASE/v1/score" -d "$BURST")
echo "$VEL" | jq -e '
    (.flagged[0] == false)
    and (.flagged[4] == true)
    and ([.explanations[4].rules[0].checks[]
          | select(.kind == "window") | .pass and .margin >= 0] | any)
' >/dev/null || {
    echo "smoke: velocity burst assertions failed: $VEL" >&2
    exit 1
}
echo "smoke: velocity-rule assertions ok (burst fired the windowed rule)"

# The window store's occupancy must be visible on /metrics after the burst,
# with both eviction-cause series present.
METRICS=$(curl -fsS "$BASE/metrics")
echo "$METRICS" | awk '$1 == "rudolf_window_entries" && $2 > 0 {found=1} END {exit !found}' || {
    echo "smoke: rudolf_window_entries not positive after the velocity burst" >&2
    exit 1
}
for series in 'rudolf_window_evictions_total{cause="expired"}' 'rudolf_window_evictions_total{cause="lru"}' 'rudolf_stage_duration_seconds_count{stage="eval"}'; do
    grep -qF "$series" <<<"$METRICS" || {
        echo "smoke: /metrics missing series $series" >&2
        exit 1
    }
done
echo "smoke: window + stage metrics ok"

# --- Hot-path observability: slow ring + consolidated debug state --------
# A deliberately heavy request (big explain_all batch, far heavier than
# anything above) must exceed the adaptive tail-sampling threshold and keep
# its full span tree in GET /v1/debug/slow, stage breakdown included,
# correlated by the X-Request-Id the response carried.
echo "smoke: debug-endpoint assertions (curl/jq)"
jq -n --argjson a "$ATTRS" \
    '{transactions: [range(0;2048) | {attrs: ($a + {time: ((3000 + .) % 1440)}), score: 500}], explain_all: true}' \
    >"$TMP/bigbatch.json"
# A promoted request's uncovered time is occasionally a GC pause outside
# the stage taxonomy (often why it was slow enough to promote); the
# structural assertions are unconditional, only the 90% coverage bound
# earns a fresh probe.
COVERED=""
for attempt in 1 2 3 4 5; do
    SLOW_ID=$(curl -fsS -o /dev/null -D - -H 'Content-Type: application/json' \
        -X POST "$BASE/v1/score" --data-binary @"$TMP/bigbatch.json" | tr -d '\r' | awk 'tolower($1)=="x-request-id:"{print $2}')
    [[ -n "$SLOW_ID" ]] || { echo "smoke: slow probe returned no X-Request-Id" >&2; exit 1; }
    SLOW=$(curl -fsS "$BASE/v1/debug/slow")
    echo "$SLOW" | jq -e --arg id "$SLOW_ID" '
        (.count > 0)
        and ((.entries | length) == .count)
        and ([.entries[] | select(.request_id == $id)] | length == 1)
        and (.entries[] | select(.request_id == $id) |
             (.name == "request.score")
             and (.stages_ns | length > 0)
             and (.stage_total_ns <= .dur_ns)
             and (.spans | length > 1))
    ' >/dev/null || {
        echo "smoke: /v1/debug/slow assertions failed for $SLOW_ID: $SLOW" >&2
        exit 1
    }
    if echo "$SLOW" | jq -e --arg id "$SLOW_ID" \
        '.entries[] | select(.request_id == $id) | .stage_total_ns >= .dur_ns * 0.9' >/dev/null; then
        COVERED=1
        break
    fi
    echo "smoke: slow probe $SLOW_ID stage coverage under 90% (attempt $attempt/5), retrying"
done
[[ -n "$COVERED" ]] || {
    echo "smoke: no slow probe reached 90% stage coverage in 5 attempts" >&2
    exit 1
}
# The Chrome-trace form must parse and carry events.
curl -fsS "$BASE/v1/debug/slow?format=chrome" | jq -e '.traceEvents | length > 0' >/dev/null || {
    echo "smoke: /v1/debug/slow?format=chrome is malformed" >&2
    exit 1
}
# /v1/debug/state consolidates every subsystem into one document.
STATE=$(curl -fsS "$BASE/v1/debug/state")
echo "$STATE" | jq -e '
    (.uptime_seconds > 0)
    and (.version >= 1)
    and (.rules >= 1)
    and (.workers >= 1)
    and (.scored_tx > 0)
    and (.trace.capacity > 0) and (.trace.held > 0)
    and (.slow.capacity > 0) and (.slow.promoted > 0) and (.slow.len > 0)
    and (.window.entries > 0)
    and (.runtime.goroutines > 0) and (.runtime.heap_bytes > 0)
' >/dev/null || {
    echo "smoke: /v1/debug/state assertions failed: $STATE" >&2
    exit 1
}
echo "smoke: debug-endpoint assertions ok (slow trace $SLOW_ID retained with stage breakdown)"

# --- Alerting: induce a breach, watch it fire, starve it, watch it resolve
# Replace the default SLO rules with one aggressive traffic rule: any
# scoring between two evaluator ticks breaches it. A background curl loop
# keeps transactions flowing, so the 100ms ticker must take the rule to
# firing; killing the loop starves the rate and the next quiet tick must
# resolve it. State is read without ?refresh=1 so it is the periodic
# evaluator being asserted, not an on-demand pass.
echo "smoke: alert breach/resolve assertions (curl/jq)"
ACK=$(curl -fsS -H 'Content-Type: application/json' -X POST "$BASE/v1/alerts" \
    -d '{"rules": ["alert smoke_traffic severity=page: rate(rudolf_score_tx_total) > 0"]}')
echo "$ACK" | jq -e '.config_version == 2 and .rules == 1' >/dev/null || {
    echo "smoke: POST /v1/alerts ack malformed: $ACK" >&2
    exit 1
}

touch "$TMP/alertload"
(
    while [[ -f "$TMP/alertload" ]]; do
        curl -fsS -H 'Content-Type: application/json' -X POST "$BASE/v1/score" \
            -d "{\"transactions\": [$TX]}" >/dev/null 2>&1 || true
        sleep 0.02
    done
) &
LOAD_PID=$!

# Two 100ms evaluation intervals is the contract; poll a little past that
# to absorb scheduler noise, but record how many ticks it actually took.
FIRED=""
for i in $(seq 1 40); do
    STATE=$(curl -fsS "$BASE/v1/alerts")
    if echo "$STATE" | jq -e '.rules[] | select(.name == "smoke_traffic") | .state == "firing"' >/dev/null; then
        FIRED=1
        break
    fi
    sleep 0.05
done
rm -f "$TMP/alertload"
if [[ -z "$FIRED" ]]; then
    wait "$LOAD_PID" 2>/dev/null || true
    echo "smoke: smoke_traffic never fired under load: $STATE" >&2
    exit 1
fi
echo "smoke: smoke_traffic fired after ~$((i * 50))ms of load"

# While firing, the alert is visible on every surface.
METRICS=$(curl -fsS "$BASE/metrics")
grep -qF 'ALERTS{name="smoke_traffic",severity="page",state="firing"} 1' <<<"$METRICS" || {
    echo "smoke: /metrics missing the firing ALERTS series" >&2
    exit 1
}
curl -fsS "$BASE/v1/status" | jq -e '.alerts_firing >= 1' >/dev/null || {
    echo "smoke: /v1/status alerts_firing did not move" >&2
    exit 1
}
curl -fsS "$BASE/v1/debug/state" | jq -e \
    '.alerts.rules == 1 and .alerts.firing >= 1 and .alerts.ticker_running' >/dev/null || {
    echo "smoke: /v1/debug/state alerts block malformed" >&2
    exit 1
}

# Load stopped: the next quiet tick sees a zero rate and resolves.
wait "$LOAD_PID" 2>/dev/null || true
RESOLVED=""
for _ in $(seq 1 40); do
    STATE=$(curl -fsS "$BASE/v1/alerts")
    if echo "$STATE" | jq -e '.rules[] | select(.name == "smoke_traffic") | .state == "inactive"' >/dev/null; then
        RESOLVED=1
        break
    fi
    sleep 0.05
done
[[ -n "$RESOLVED" ]] || {
    echo "smoke: smoke_traffic never resolved after load stopped: $STATE" >&2
    exit 1
}
# The firing→resolved pair is in the retained history, newest first.
echo "$STATE" | jq -e '
    ([.recent[] | select(.name == "smoke_traffic" and .state == "resolved")] | length >= 1)
    and ([.recent[] | select(.name == "smoke_traffic" and .state == "firing")] | length >= 1)
' >/dev/null || {
    echo "smoke: alert history lacks the firing/resolved pair: $STATE" >&2
    exit 1
}
METRICS=$(curl -fsS "$BASE/metrics")
grep -qF 'ALERTS{name="smoke_traffic",severity="page",state="firing"} 0' <<<"$METRICS" || {
    echo "smoke: ALERTS series did not drop back to 0 after resolve" >&2
    exit 1
}
echo "smoke: alert breach/resolve assertions ok (fired under load, resolved when starved)"

# Graceful drain: SIGTERM must exit cleanly.
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
DAEMON_PID=""
echo "smoke: rudolfd drained cleanly"
echo "smoke: ok"
