#!/usr/bin/env bash
# Smoke test for the online scoring daemon: boot rudolfd on a random port,
# drive a generated batch load through /v1/score with cmd/loadgen, swap the
# rules, and assert that /metrics moved (transactions scored, version
# bumped). Wired into `make smoke` and the `make ci` chain.
set -euo pipefail

cd "$(dirname "$0")/.."

GO=${GO:-go}
DURATION=${SMOKE_DURATION:-2s}
TMP=$(mktemp -d)
BIN="$TMP/bin"
mkdir -p "$BIN"

cleanup() {
    if [[ -n "${DAEMON_PID:-}" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -TERM "$DAEMON_PID" 2>/dev/null || true
        wait "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "smoke: building rudolfd and loadgen"
$GO build -o "$BIN/rudolfd" ./cmd/rudolfd
$GO build -o "$BIN/loadgen" ./cmd/loadgen

echo "smoke: booting rudolfd on a random port"
"$BIN/rudolfd" -addr 127.0.0.1:0 -addr-file "$TMP/addr" -size 2000 -seed 1 \
    >"$TMP/rudolfd.log" 2>&1 &
DAEMON_PID=$!

# Wait for the daemon to write its bound address.
for _ in $(seq 1 100); do
    [[ -s "$TMP/addr" ]] && break
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        echo "smoke: rudolfd died during startup:" >&2
        cat "$TMP/rudolfd.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [[ ! -s "$TMP/addr" ]]; then
    echo "smoke: rudolfd never published its address" >&2
    cat "$TMP/rudolfd.log" >&2
    exit 1
fi
ADDR=$(head -n1 "$TMP/addr" | tr -d '[:space:]')
echo "smoke: rudolfd is up on $ADDR"

# Load phase + control-plane assertions (swap rules, /metrics moved).
"$BIN/loadgen" -url "http://$ADDR" -duration "$DURATION" -concurrency 4 -batch 64 -smoke

# Graceful drain: SIGTERM must exit cleanly.
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
DAEMON_PID=""
echo "smoke: rudolfd drained cleanly"
echo "smoke: ok"
