// Command benchcmp compares two benchjson documents (the committed baseline
// and a fresh run) and prints a regression table: every metric whose value
// moved beyond the tolerance band, worst first. It is deliberately
// non-gating — the exit status is 0 whether or not anything regressed —
// because `make ci` runs the benches at -benchtime 1x, where wall-clock
// numbers are noise; the table is a tripwire for the numbers that are stable
// at any benchtime (B/op, allocs/op) and a heads-up for the rest.
//
// Usage:
//
//	go run ./scripts/benchcmp [-tol 0.30] BENCH_core.json fresh.json
//
// Exit status is non-zero only for usage/parse errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
)

type benchResult struct {
	Name    string             `json:"name"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics"`
}

type benchDoc struct {
	Generated  string        `json:"generated"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// lowerIsBetter reports the improvement direction of a metric unit: for
// throughput-style units (anything per second) bigger is better, for
// costs (ns/op, B/op, allocs/op) smaller is. Informational metrics such as
// tuple_rule_pairs/op or the experiment error percentages describe the
// workload, not its cost, and are not compared at all.
func lowerIsBetter(unit string) (lower, comparable bool) {
	switch unit {
	case "ns/op", "B/op", "allocs/op":
		return true, true
	case "tx/s":
		return false, true
	}
	return false, false
}

type row struct {
	bench, unit        string
	oldV, newV, change float64 // change > 0 means worse
}

func main() {
	tol := flag.Float64("tol", 0.30, "tolerance band: relative change treated as noise")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-tol 0.30] baseline.json fresh.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	fresh, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	baseline := map[string]benchResult{}
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}

	var worse []row
	compared, missing := 0, 0
	for _, nb := range fresh.Benchmarks {
		ob, ok := baseline[nb.Name]
		if !ok {
			missing++
			continue
		}
		for unit, newV := range metricsOf(nb) {
			oldV, ok := metricsOf(ob)[unit]
			if !ok {
				continue
			}
			lower, cmp := lowerIsBetter(unit)
			if !cmp || oldV == 0 {
				continue
			}
			compared++
			change := newV/oldV - 1
			if !lower {
				change = -change
			}
			if change > *tol {
				worse = append(worse, row{nb.Name, unit, oldV, newV, change})
			}
		}
	}

	fmt.Printf("benchcmp: %s vs %s (%d metrics compared, tolerance ±%.0f%%)\n",
		flag.Arg(0), flag.Arg(1), compared, *tol*100)
	if missing > 0 {
		fmt.Printf("benchcmp: %d fresh benchmarks have no baseline entry (new or renamed)\n", missing)
	}
	if len(worse) == 0 {
		fmt.Println("benchcmp: no metric regressed beyond the tolerance band")
		return
	}
	sort.Slice(worse, func(i, j int) bool { return worse[i].change > worse[j].change })
	fmt.Printf("benchcmp: WARNING — %d metrics regressed beyond the band (non-gating):\n", len(worse))
	fmt.Printf("  %-45s %-12s %14s %14s %9s\n", "benchmark", "metric", "baseline", "fresh", "worse")
	for _, r := range worse {
		fmt.Printf("  %-45s %-12s %14s %14s %8.0f%%\n",
			r.bench, r.unit, human(r.oldV), human(r.newV), r.change*100)
	}
}

// metricsOf flattens a result into unit → value, folding ns_per_op in.
func metricsOf(b benchResult) map[string]float64 {
	out := map[string]float64{"ns/op": b.NsPerOp}
	for k, v := range b.Metrics {
		out[k] = v
	}
	return out
}

// human renders a value compactly (benchmark magnitudes span 1 to 1e9).
func human(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case a >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case a >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

func load(path string) (benchDoc, error) {
	var doc benchDoc
	raw, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return doc, fmt.Errorf("%s: no benchmarks", path)
	}
	return doc, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcmp:", err)
	os.Exit(1)
}
