#!/usr/bin/env bash
# Benchmark pipeline behind `make bench-json`: run the core evaluator /
# attribution benches and the end-to-end serving benches, then convert the
# text output into committed, diffable JSON at the repo root
# (BENCH_core.json and BENCH_serve.json) via scripts/benchjson.
#
# Environment knobs:
#   GO         go binary (default: go)
#   BENCHTIME  -benchtime per benchmark (default: 1s; `make ci` smokes with
#              1x so the pipeline is exercised without the full cost)
#   COUNT      -count repetitions (default: 1)
set -euo pipefail
cd "$(dirname "$0")/.."

GO="${GO:-go}"
BENCHTIME="${BENCHTIME:-1s}"
COUNT="${COUNT:-1}"

# Core: the compiled evaluator family (plain, first-match, full attribution)
# plus the interpreted baseline and the incremental capture cache — the
# regression guard that attribution-off scoring stays near Eval while
# explain-mode provenance and full rescans are visibly separate cost tiers.
CORE_BENCH='^(BenchmarkCompiledEval|BenchmarkCompiledEvalFirst|BenchmarkCompiledEvalAttributed|BenchmarkRuleSetEval|BenchmarkIncrementalCapture|BenchmarkCaptureFullRescan)$'

# Serve: HTTP round trip + JSON + validation + evaluation, single/batch64,
# with and without explain.
SERVE_BENCH='^BenchmarkServeScore$'

core_raw="$(mktemp)"
serve_raw="$(mktemp)"
trap 'rm -f "$core_raw" "$serve_raw"' EXIT

echo "bench: core evaluator benches (benchtime $BENCHTIME, count $COUNT)"
$GO test -run '^$' -bench "$CORE_BENCH" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$core_raw"

echo "bench: serving benches (benchtime $BENCHTIME, count $COUNT)"
$GO test -run '^$' -bench "$SERVE_BENCH" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$serve_raw"

$GO run ./scripts/benchjson -out BENCH_core.json <"$core_raw"
$GO run ./scripts/benchjson -out BENCH_serve.json <"$serve_raw"
echo "bench: wrote BENCH_core.json and BENCH_serve.json"
