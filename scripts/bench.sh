#!/usr/bin/env bash
# Benchmark pipeline behind `make bench-json`: run the core evaluator /
# attribution benches and the end-to-end serving benches, convert the text
# output into JSON via scripts/benchjson, compare the fresh numbers against
# the committed baselines (BENCH_core.json / BENCH_serve.json) with
# scripts/benchcmp, then refresh the baselines.
#
# Environment knobs:
#   GO         go binary (default: go)
#   BENCHTIME  -benchtime per benchmark (default: 1s; `make ci` smokes with
#              100x so the pipeline is exercised without the full cost while
#              pool warm-up still amortizes out of the alloc numbers)
#   COUNT      -count repetitions (default: 1)
#   TOL        benchcmp tolerance band (default: 0.30; `make ci` widens it,
#              short-run wall-clock numbers are noise — B/op and allocs/op
#              are the signal there)
#   WRITE      1 (default) refreshes the committed BENCH_*.json; 0 compares
#              only, leaving the baselines untouched (the `make ci` mode)
set -euo pipefail
cd "$(dirname "$0")/.."

GO="${GO:-go}"
BENCHTIME="${BENCHTIME:-1s}"
COUNT="${COUNT:-1}"
TOL="${TOL:-0.30}"
WRITE="${WRITE:-1}"

# Core: the compiled evaluator family (plain, first-match, full and lazy
# attribution) plus the interpreted baseline, the incremental capture
# cache and the sliding-window store's ingest path — the regression guard
# that attribution-off scoring stays near Eval while explain-mode
# provenance and full rescans are visibly separate cost tiers, and that
# per-transaction window observation stays alloc-free.
CORE_BENCH='^(BenchmarkCompiledEval|BenchmarkCompiledEvalFirst|BenchmarkCompiledEvalAttributed|BenchmarkCompiledEvalAttributedLazy|BenchmarkRuleSetEval|BenchmarkIncrementalCapture|BenchmarkCaptureFullRescan|BenchmarkWindowObserve)$'

# Serve: HTTP round trip + JSON + validation + evaluation, single/batch64,
# plain / explain (matched rules only) / explain_all (full rule table),
# plus the same round trip with a windowed rule published (observe lock +
# window store + column stamp on every batch).
SERVE_BENCH='^(BenchmarkServeScore|BenchmarkServeScoreVelocity)$'

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

echo "bench: core evaluator benches (benchtime $BENCHTIME, count $COUNT)"
$GO test -run '^$' -bench "$CORE_BENCH" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$tmpdir/core.txt"

echo "bench: serving benches (benchtime $BENCHTIME, count $COUNT)"
$GO test -run '^$' -bench "$SERVE_BENCH" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$tmpdir/serve.txt"

$GO run ./scripts/benchjson -out "$tmpdir/core.json" <"$tmpdir/core.txt"
$GO run ./scripts/benchjson -out "$tmpdir/serve.json" <"$tmpdir/serve.txt"

# Non-gating drift report against the committed baselines before touching
# them: benchcmp always exits 0, the table is the signal.
for name in core serve; do
	if [ -f "BENCH_$name.json" ]; then
		$GO run ./scripts/benchcmp -tol "$TOL" "BENCH_$name.json" "$tmpdir/$name.json"
	fi
done

if [ "$WRITE" = "1" ]; then
	mv "$tmpdir/core.json" BENCH_core.json
	mv "$tmpdir/serve.json" BENCH_serve.json
	echo "bench: wrote BENCH_core.json and BENCH_serve.json"
else
	echo "bench: compare-only run (WRITE=0), baselines untouched"
fi
