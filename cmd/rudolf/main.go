// Command rudolf runs an interactive rule refinement session, the
// command-line equivalent of the RUDOLF prototype: load a transaction CSV
// (as produced by cmd/datagen) and a rule file, then review the system's
// generalization and split proposals at the terminal. Pass -expert auto to
// apply every proposal without review (the RUDOLF⁻ mode).
//
// Usage:
//
//	rudolf -data data.csv -rules rules.txt [-expert interactive|auto] [-rules-out refined.txt]
//
// Without -data, a synthetic dataset is generated on the fly (-size, -seed).
//
// Rule files use the textual rule language documented in README.md ("The
// rule language") — per-attribute conditions, an optional score threshold,
// and the windowed velocity atoms (COUNT(user, 10m) >= 5, SUM, DISTINCT)
// when the schema declares a time attribute.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	rudolf "repro"
	"repro/internal/cli"
)

func main() {
	var (
		dataPath   = flag.String("data", "", "transaction CSV (empty: generate synthetic data)")
		schemaPath = flag.String("schema", "", "schema JSON for -data (empty: the built-in synthetic FI schema)")
		rulesPath  = flag.String("rules", "", "rule file (empty: the FI's generated incumbent rules)")
		expertKind = flag.String("expert", "interactive", "expert: interactive or auto")
		size       = flag.Int("size", 2000, "synthetic dataset size (when -data is empty)")
		seed       = flag.Int64("seed", 1, "synthetic dataset seed")
		rulesOut   = flag.String("rules-out", "", "write the refined rules to this path")
		classify   = flag.String("classify", "", "write the transactions flagged by the refined rules to this CSV path")
		historyOut = flag.String("history", "", "append the refined version to this JSON rule history")
		explain    = flag.Int("explain", -1, "explain the refined rules' verdict on this transaction index and exit")
		logFormat  = flag.String("log-format", "text", "log format: text or json")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn or error")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace of the refinement session to this path")
	)
	flag.Parse()

	logger, err := cli.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fatal(err)
	}
	slog.SetDefault(logger)

	// Validate the expert choice before any (possibly expensive) dataset
	// loading or generation: an unknown value exits non-zero with a usage
	// hint instead of burying the mistake under a generated session.
	var exp rudolf.Expert
	switch *expertKind {
	case "interactive":
		exp = rudolf.NewInteractiveExpert(os.Stdin, os.Stdout)
	case "auto":
		exp = rudolf.NewAutoAcceptExpert()
	default:
		fmt.Fprintf(os.Stderr, "rudolf: unknown expert %q (valid values: interactive, auto)\n\n", *expertKind)
		flag.Usage()
		os.Exit(2)
	}

	if *schemaPath != "" && (*dataPath == "" || *rulesPath == "") {
		fatal(fmt.Errorf("-schema requires -data and -rules (the synthetic dataset has its own schema)"))
	}

	ds := rudolf.GenerateDataset(rudolf.DataConfig{Size: *size, Seed: *seed})
	schema := ds.Schema
	rel := ds.Rel
	if *schemaPath != "" {
		s, err := cli.LoadSchema(*schemaPath)
		if err != nil {
			fatal(err)
		}
		schema = s
	}
	if *dataPath != "" {
		r, err := cli.LoadRelation(*dataPath, schema)
		if err != nil {
			fatal(err)
		}
		rel = r
	}

	var ruleSet *rudolf.RuleSet
	if *rulesPath != "" {
		rs, err := cli.LoadRules(*rulesPath, schema)
		if err != nil {
			fatal(err)
		}
		ruleSet = rs
	} else {
		ruleSet = rudolf.InitialRules(ds, 0, *seed)
	}

	fmt.Printf("starting rules:\n%s\n", ruleSet.Format(schema))
	opts := rudolf.Options{}
	if *schemaPath == "" {
		// The synthetic FI schema has a day attribute that must not
		// separate clusters; custom schemas use the default clusterer.
		opts.Clusterer = rudolf.DatasetClusterer()
	}
	var tracer *rudolf.Tracer
	if *traceOut != "" {
		tracer = rudolf.NewTracer(0)
		opts.Tracer = tracer
	}
	sess := rudolf.NewSession(ruleSet, exp, opts)
	stats := sess.Refine(rel)
	if *traceOut != "" {
		if err := writeTrace(*traceOut, tracer); err != nil {
			fatal(err)
		}
		logger.Info("session trace written", "path", *traceOut, "spans", tracer.Len())
	}
	fmt.Printf("\nfinal: %d/%d frauds captured, %d legitimate captured, %d unlabeled captured, %d modifications\n",
		stats.FraudCaptured, stats.FraudTotal, stats.LegitCaptured,
		stats.UnlabeledCaptured, stats.Modifications)
	fmt.Printf("\nrefined rules:\n%s", sess.Rules().Format(schema))

	if *rulesOut != "" {
		if err := cli.SaveRules(*rulesOut, schema, sess.Rules()); err != nil {
			fatal(err)
		}
	}
	if *classify != "" {
		if err := writeFlagged(*classify, schema, rel, sess.Rules()); err != nil {
			fatal(err)
		}
	}
	if *historyOut != "" {
		if err := appendHistory(*historyOut, schema, ruleSet, sess); err != nil {
			fatal(err)
		}
	}
	if *explain >= 0 {
		if *explain >= rel.Len() {
			fatal(fmt.Errorf("-explain %d out of range (have %d transactions)", *explain, rel.Len()))
		}
		printAttribution(os.Stdout, schema, rel, sess.Rules(), *explain)
	}
}

// printAttribution renders the refined rules' verdict on transaction i with
// full decision provenance — the same per-rule, per-condition breakdown
// (with signed margins to the decision boundary) that rudolfd's
// `"explain_all": true` scoring mode returns (the full rule table, not just
// the fired rules of plain `"explain"`), computed by the shared compiled
// attribution path (Evaluator.AttributeTuple).
func printAttribution(w io.Writer, schema *rudolf.Schema, rel *rudolf.Relation, rs *rudolf.RuleSet, i int) {
	ev := rudolf.CompileRules(schema, rs)
	attr := ev.AttributeTuple(rel, i)
	winSpecs := ev.WindowSpecs()
	verdict := "not flagged"
	if attr.Flagged() {
		verdict = fmt.Sprintf("FLAGGED by %d/%d rules", len(attr.Matched), rs.Len())
	}
	fmt.Fprintf(w, "\nexplaining transaction %d: %s (score %d) — %s\n",
		i, rel.FormatTuple(i), rel.Score(i), verdict)
	for _, ra := range attr.Rules {
		status := "misses"
		if ra.Matched {
			status = "MATCHES"
		}
		fmt.Fprintf(w, "\nrule %d %s: %s\n", ra.Rule, status, rs.Rule(ra.Rule).Format(schema))
		if ra.Empty {
			fmt.Fprintf(w, "  (empty rule: can never match)\n")
			continue
		}
		if len(ra.Checks) == 0 {
			fmt.Fprintf(w, "  (no non-trivial conditions: matches every transaction)\n")
			continue
		}
		for _, c := range ra.Checks {
			name, value := "score", fmt.Sprintf("%d", rel.Score(i))
			kind := "threshold"
			switch {
			case c.Attr == rudolf.ScoreAttr:
				// defaults above
			case c.IsWindow():
				name, value, kind = "window", "-", "window"
				if w := int(c.Win()); w < len(winSpecs) {
					name = rudolf.FormatWindowAtom(schema, winSpecs[w])
				}
			default:
				name = schema.Attr(c.Attr).Name
				value = schema.FormatValue(c.Attr, rel.Tuple(i)[c.Attr])
				kind = "numeric"
				if c.Categorical {
					kind = "ontological"
				}
			}
			mark := "fail"
			if c.Pass {
				mark = "pass"
			}
			fmt.Fprintf(w, "  %-12s = %-24s %s  margin %+d (%s)\n", name, value, mark, c.Margin, kind)
		}
	}
}

// writeTrace dumps the session tracer as a Chrome trace_event JSON file
// loadable in chrome://tracing or ui.perfetto.dev.
func writeTrace(path string, tracer *rudolf.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rudolf.WriteChromeTrace(f, tracer); err != nil {
		f.Close() //nolint:errcheck // write error takes precedence
		return err
	}
	return f.Close()
}

// appendHistory loads (or creates) the JSON history at path and commits the
// session's starting and refined rule sets.
func appendHistory(path string, schema *rudolf.Schema, initial *rudolf.RuleSet, sess *rudolf.Session) error {
	hist, err := cli.LoadOrNewHistory(path, schema)
	if err != nil {
		return err
	}
	if hist.Len() == 0 {
		hist.Commit(initial, nil, "session start")
	}
	hist.Commit(sess.Rules(), sess.Log().All(), "refined by cmd/rudolf")
	if err := cli.SaveHistory(path, hist); err != nil {
		return err
	}
	slog.Info("history updated", "versions", hist.Len(), "path", path)
	return nil
}

// writeFlagged evaluates the rules with the compiled evaluator and writes
// the captured transactions as CSV.
func writeFlagged(path string, schema *rudolf.Schema, rel *rudolf.Relation, rs *rudolf.RuleSet) error {
	ev := rudolf.CompileRules(schema, rs)
	captured := ev.Eval(rel)
	flagged := rudolf.NewRelation(schema)
	var appendErr error
	captured.ForEach(func(i int) {
		if appendErr != nil {
			return
		}
		_, appendErr = flagged.Append(rel.Tuple(i), rel.Label(i), rel.Score(i))
	})
	if appendErr != nil {
		return appendErr
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := flagged.WriteCSV(f); err != nil {
		return err
	}
	slog.Info("flagged transactions written", "flagged", flagged.Len(), "total", rel.Len(), "path", path)
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rudolf:", err)
	os.Exit(1)
}
