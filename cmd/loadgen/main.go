// Command loadgen is the traffic generator for cmd/rudolfd: it fetches the
// daemon's schema, synthesizes random transaction batches, hammers /score
// from concurrent workers for a fixed duration, and then reports throughput
// plus the p50/p99 scoring latency scraped back off /metrics — the same
// numbers a production dashboard would watch.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8080 [-duration 10s] [-concurrency 8]
//	        [-batch 64] [-seed 1] [-smoke]
//
// With -smoke it additionally exercises the control plane after the load
// phase — swaps the rules (POST /rules) and asserts that /metrics moved
// (transactions scored, version bumped) — exiting non-zero on any failure,
// which is what `make smoke` runs in CI.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ontology"
	"repro/internal/relation"
	"repro/internal/telemetry"
)

func main() {
	var (
		baseURL     = flag.String("url", "http://127.0.0.1:8080", "rudolfd base URL")
		duration    = flag.Duration("duration", 10*time.Second, "load duration")
		concurrency = flag.Int("concurrency", 8, "concurrent workers")
		batch       = flag.Int("batch", 64, "transactions per /score request")
		seed        = flag.Int64("seed", 1, "traffic generation seed")
		smoke       = flag.Bool("smoke", false, "after the load phase, swap rules and assert /metrics moved")
	)
	flag.Parse()
	url := strings.TrimRight(*baseURL, "/")

	schema, err := fetchSchema(url)
	if err != nil {
		fatal(err)
	}
	startRules, startVersion, err := fetchRules(url)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loadgen: target %s, schema arity %d, rules version %d (%d rules)\n",
		url, schema.Arity(), startVersion, len(startRules))

	// Pre-generate distinct request bodies so the hot loop only does I/O.
	rng := rand.New(rand.NewSource(*seed))
	bodies := make([][]byte, 64)
	for i := range bodies {
		bodies[i] = scoreBody(rng, schema, *batch)
	}

	var (
		txScored atomic.Int64
		requests atomic.Int64
		errs     atomic.Int64
	)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for i := w; time.Now().Before(deadline); i++ {
				body := bodies[i%len(bodies)]
				resp, err := client.Post(url+"/score", "application/json", bytes.NewReader(body))
				if err != nil {
					errs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs.Add(1)
					continue
				}
				requests.Add(1)
				txScored.Add(int64(*batch))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	page, err := fetchMetrics(url)
	if err != nil {
		fatal(err)
	}
	rate := float64(txScored.Load()) / elapsed.Seconds()
	fmt.Printf("loadgen: %d requests, %d tx in %v -> %.0f tx/s (%d errors)\n",
		requests.Load(), txScored.Load(), elapsed.Round(time.Millisecond), rate, errs.Load())
	if h, err := telemetry.ScrapeHistogram(strings.NewReader(page), "rudolf_score_latency_seconds"); err == nil {
		fmt.Printf("loadgen: per-tx latency from /metrics: p50 %s, p99 %s (%d observations)\n",
			fmtSeconds(h.Quantile(0.5)), fmtSeconds(h.Quantile(0.99)), h.Total)
	}
	if h, err := telemetry.ScrapeHistogram(strings.NewReader(page), "rudolf_score_batch_latency_seconds"); err == nil {
		fmt.Printf("loadgen: per-request latency from /metrics: p50 %s, p99 %s\n",
			fmtSeconds(h.Quantile(0.5)), fmtSeconds(h.Quantile(0.99)))
	}

	if !*smoke {
		return
	}
	if err := runSmoke(url, page, startRules, startVersion, txScored.Load(), errs.Load()); err != nil {
		fatal(fmt.Errorf("smoke: %w", err))
	}
	fmt.Println("loadgen: smoke ok")
}

// runSmoke is the control-plane assertion pass behind `make smoke`: the load
// phase must have scored traffic, a rules swap must bump the published
// version, and /metrics must reflect both.
func runSmoke(url, page string, startRules []string, startVersion int, scored, errCount int64) error {
	if scored == 0 {
		return fmt.Errorf("no transactions scored during the load phase")
	}
	if errCount > 0 {
		return fmt.Errorf("%d scoring requests failed", errCount)
	}
	if v, ok := telemetry.ScrapeValue(page, "rudolf_score_tx_total"); !ok || int64(v) < scored {
		return fmt.Errorf("rudolf_score_tx_total = %v (ok=%v), want >= %d", v, ok, scored)
	}

	// Swap: republish the same rules; the version must bump even so (every
	// publish is a new history version).
	raw, err := json.Marshal(map[string]any{"rules": startRules, "comment": "loadgen smoke swap"})
	if err != nil {
		return err
	}
	resp, err := http.Post(url+"/rules", "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /rules: %d %s", resp.StatusCode, body)
	}
	_, afterVersion, err := fetchRules(url)
	if err != nil {
		return err
	}
	if afterVersion <= startVersion {
		return fmt.Errorf("version did not bump on swap: %d -> %d", startVersion, afterVersion)
	}

	// The metrics page must have moved with the swap.
	page2, err := fetchMetrics(url)
	if err != nil {
		return err
	}
	if v, ok := telemetry.ScrapeValue(page2, "rudolf_rules_version"); !ok || int(v) != afterVersion {
		return fmt.Errorf("rudolf_rules_version = %v (ok=%v), want %d", v, ok, afterVersion)
	}
	swapsBefore, _ := telemetry.ScrapeValue(page, "rudolf_rule_swaps_total")
	swapsAfter, ok := telemetry.ScrapeValue(page2, "rudolf_rule_swaps_total")
	if !ok || swapsAfter <= swapsBefore {
		return fmt.Errorf("rudolf_rule_swaps_total did not move: %v -> %v", swapsBefore, swapsAfter)
	}
	return nil
}

// scoreBody builds one random /score batch against the schema: numeric
// attributes draw uniformly from their domain, categorical ones pick a
// random ontology leaf, risk scores spread over [0, 1000].
func scoreBody(rng *rand.Rand, schema *relation.Schema, batch int) []byte {
	txs := make([]map[string]any, batch)
	for i := range txs {
		attrs := make(map[string]any, schema.Arity())
		for a := 0; a < schema.Arity(); a++ {
			attr := schema.Attr(a)
			if attr.Kind == relation.Categorical {
				leaves := attr.Ontology.Leaves()
				c := leaves[rng.Intn(len(leaves))]
				attrs[attr.Name] = attr.Ontology.ConceptName(ontology.Concept(c))
				continue
			}
			v := attr.Domain.Min + rng.Int63n(attr.Domain.Max-attr.Domain.Min+1)
			attrs[attr.Name] = v
		}
		txs[i] = map[string]any{"attrs": attrs, "score": rng.Intn(relation.MaxScore + 1)}
	}
	raw, err := json.Marshal(map[string]any{"transactions": txs})
	if err != nil {
		panic(err) // generated values always marshal
	}
	return raw
}

func fetchSchema(url string) (*relation.Schema, error) {
	resp, err := http.Get(url + "/schema")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /schema: %d", resp.StatusCode)
	}
	return relation.ReadSchemaJSON(resp.Body)
}

func fetchRules(url string) (rules []string, version int, err error) {
	resp, err := http.Get(url + "/rules")
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("GET /rules: %d", resp.StatusCode)
	}
	var out struct {
		Version int      `json:"version"`
		Rules   []string `json:"rules"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, 0, err
	}
	return out.Rules, out.Version, nil
}

func fetchMetrics(url string) (string, error) {
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
