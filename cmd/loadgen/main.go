// Command loadgen is the traffic generator for cmd/rudolfd: it fetches the
// daemon's schema, synthesizes random transaction batches, hammers /score
// from concurrent workers for a fixed duration, and then reports throughput
// plus the p50/p99 scoring latency scraped back off /metrics — the same
// numbers a production dashboard would watch. Every scoring response's
// request_id is decoded, and the slowest observed request is reported with
// its id so it can be looked up in the daemon's GET /trace output.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8080 [-duration 10s] [-concurrency 8]
//	        [-batch 64] [-seed 1] [-smoke] [-churn N] [-state-file f]
//	        [-resume] [-expect-version N] [-expect-feedback N] [-velocity]
//	        [-follower-of http://leader:8080]
//
// With -smoke it additionally exercises the control plane after the load
// phase — asserts decision provenance (explain-mode /v1/score responses
// satisfy the margin invariant, GET /v1/rules/health joins fraud feedback
// into per-rule TP counts, GET /v1/audit retained sampled decisions), swaps
// the rules (POST /v1/rules), pushes a labeled feedback batch, runs a
// /v1/refine, asserts that /metrics moved (transactions scored, version
// bumped, refinement rounds observed) and that GET /v1/trace returns
// well-formed trace JSON, and — when the schema has a time attribute —
// publishes a windowed velocity rule and asserts a same-key burst trips it
// exactly at its COUNT threshold with a window-kind explain check. Exits
// non-zero on any failure, which is what `make smoke` runs in CI.
//
// -churn N drives the durable write path: N labeled feedback batches
// interleaved with N rule republishes, after which the published rule-set
// version and feedback total are printed (and written to -state-file, when
// set) so a later run can assert they survived a restart.
//
// -resume is that later run: it skips the load phase and instead asserts
// that the daemon's current version and feedback count equal
// -expect-version / -expect-feedback (or the values recorded in
// -state-file), that the boot actually replayed WAL records
// (rudolf_wal_replayed_records_total > 0), that errors arrive in the
// uniform envelope, and that legacy unversioned paths answer 308 redirects
// to /v1 — the assertion pass behind `make crash-smoke`.
//
// -follower-of asserts the replication contract before the load phase runs:
// the target must report role=follower on GET /v1/status and become ready,
// reject a mutating request with the stable "read_only" envelope plus a
// Location header into the leader, converge GET /v1/rules to the leader's
// exact ETag, and score read-only at that version. The load phase then
// hammers the follower as usual — the assertion pass behind
// `make cluster-smoke`. Incompatible with -smoke and -churn, which mutate.
//
// -velocity extends the churn/resume pair with stateful-rule convergence:
// the churn run publishes a windowed COUNT rule and scores part of a
// same-key burst (below the threshold), and the resume run finishes the
// burst — the rule must fire with window margin exactly 0, which only
// happens if the kill -9 lost none of the observed transactions.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	goruntime "runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ontology"
	"repro/internal/relation"
	"repro/internal/rules"
	"repro/internal/telemetry"
)

func main() {
	var (
		baseURL     = flag.String("url", "http://127.0.0.1:8080", "rudolfd base URL")
		duration    = flag.Duration("duration", 10*time.Second, "load duration")
		concurrency = flag.Int("concurrency", 8, "concurrent workers")
		batch       = flag.Int("batch", 64, "transactions per /score request")
		seed        = flag.Int64("seed", 1, "traffic generation seed")
		smoke       = flag.Bool("smoke", false, "after the load phase, swap rules and assert /metrics moved")
		churn       = flag.Int("churn", 0, "after the load phase, push N feedback batches interleaved with N republishes")
		stateFile   = flag.String("state-file", "", "write (churn) / read (resume) the version+feedback state here")
		resume      = flag.Bool("resume", false, "skip the load phase; assert the daemon restored the recorded state")
		expectVer   = flag.Int("expect-version", -1, "with -resume: expected rule-set version (-1: take it from -state-file)")
		expectFb    = flag.Int("expect-feedback", -1, "with -resume: expected feedback count (-1: take it from -state-file)")
		velocity    = flag.Bool("velocity", false, "with -churn/-resume: assert windowed-rule aggregate state survives the restart")
		followerOf  = flag.String("follower-of", "", "assert -url is a ready read-only replication follower of the leader at this base URL before the load phase")
	)
	flag.Parse()
	url := strings.TrimRight(*baseURL, "/")

	if *resume {
		if err := runResume(url, *expectVer, *expectFb, *stateFile, *velocity); err != nil {
			fatal(fmt.Errorf("resume: %w", err))
		}
		fmt.Println("loadgen: resume ok")
		return
	}

	schema, err := fetchSchema(url)
	if err != nil {
		fatal(err)
	}
	startRules, startVersion, err := fetchRules(url)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loadgen: target %s, schema arity %d, rules version %d (%d rules)\n",
		url, schema.Arity(), startVersion, len(startRules))

	if *followerOf != "" {
		if *smoke || *churn > 0 {
			fatal(fmt.Errorf("-follower-of is incompatible with -smoke and -churn: followers reject writes"))
		}
		if err := runFollowerCheck(url, *followerOf, schema); err != nil {
			fatal(fmt.Errorf("follower check: %w", err))
		}
		fmt.Printf("loadgen: follower contract verified against leader %s\n", *followerOf)
	}

	// Pre-generate distinct request bodies so the hot loop only does I/O.
	rng := rand.New(rand.NewSource(*seed))
	bodies := make([][]byte, 64)
	for i := range bodies {
		bodies[i] = scoreBody(rng, schema, *batch)
	}

	var (
		txScored atomic.Int64
		requests atomic.Int64
		errs     atomic.Int64
	)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	worst := make([]slowest, *concurrency)
	// Per-worker latency logs, merged after the load phase into the
	// client-side percentiles cross-checked against the server's histograms.
	lat := make([][]time.Duration, *concurrency)
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for i := w; time.Now().Before(deadline); i++ {
				body := bodies[i%len(bodies)]
				t0 := time.Now()
				resp, err := client.Post(url+"/v1/score", "application/json", bytes.NewReader(body))
				if err != nil {
					errs.Add(1)
					continue
				}
				raw, readErr := io.ReadAll(resp.Body)
				resp.Body.Close()
				took := time.Since(t0)
				if readErr != nil || resp.StatusCode != http.StatusOK {
					errs.Add(1)
					continue
				}
				requests.Add(1)
				txScored.Add(int64(*batch))
				lat[w] = append(lat[w], took)
				if took > worst[w].latency {
					var out struct {
						RequestID string `json:"request_id"`
					}
					json.Unmarshal(raw, &out) //nolint:errcheck // best-effort id decode
					worst[w] = slowest{latency: took, requestID: out.RequestID}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	client := summarizeLatencies(lat)

	// Merge each worker's slowest observation into the overall worst request.
	var worstReq slowest
	for _, s := range worst {
		if s.latency > worstReq.latency {
			worstReq = s
		}
	}

	page, err := fetchMetrics(url)
	if err != nil {
		fatal(err)
	}
	rate := float64(txScored.Load()) / elapsed.Seconds()
	fmt.Printf("loadgen: %d requests, %d tx in %v -> %.0f tx/s (%d errors)\n",
		requests.Load(), txScored.Load(), elapsed.Round(time.Millisecond), rate, errs.Load())
	if client.requests > 0 {
		fmt.Printf("loadgen: client-side latency: p50 %s, p99 %s, p99.9 %s over %d requests\n",
			client.p50.Round(time.Microsecond), client.p99.Round(time.Microsecond),
			client.p999.Round(time.Microsecond), client.requests)
	}
	if h, err := telemetry.ScrapeHistogram(strings.NewReader(page), "rudolf_score_latency_seconds"); err == nil {
		fmt.Printf("loadgen: per-request latency from /metrics: p50 %s, p99 %s (%d requests observed)\n",
			fmtSeconds(telemetry.Quantile(h, 0.5)), fmtSeconds(telemetry.Quantile(h, 0.99)), h.Total)
	}
	printStageTable(page)
	if h, err := telemetry.ScrapeHistogram(strings.NewReader(page), "rudolf_score_batch_size"); err == nil && h.Total > 0 {
		fmt.Printf("loadgen: batch size from /metrics: mean %.1f tx/request\n", h.Sum/float64(h.Total))
	}
	if worstReq.requestID != "" {
		fmt.Printf("loadgen: slowest request %s took %s (look it up under GET /trace)\n",
			worstReq.requestID, worstReq.latency.Round(time.Microsecond))
	}

	if *churn > 0 {
		if err := runChurn(url, rng, schema, startRules, *churn, *stateFile, *velocity); err != nil {
			fatal(fmt.Errorf("churn: %w", err))
		}
	}

	if !*smoke {
		return
	}
	if err := runSmoke(url, page, rng, schema, startRules, startVersion, txScored.Load(), errs.Load(), worstReq, client); err != nil {
		fatal(fmt.Errorf("smoke: %w", err))
	}
	fmt.Println("loadgen: smoke ok")
}

// clientLatencies summarizes the client-observed request latencies of the
// load phase.
type clientLatencies struct {
	requests       int
	total          time.Duration
	p50, p99, p999 time.Duration
}

// summarizeLatencies merges the per-worker latency logs and computes the
// client-side percentiles.
func summarizeLatencies(lat [][]time.Duration) clientLatencies {
	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return clientLatencies{}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var total time.Duration
	for _, d := range all {
		total += d
	}
	q := func(p float64) time.Duration {
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	return clientLatencies{
		requests: len(all), total: total,
		p50: q(0.50), p99: q(0.99), p999: q(0.999),
	}
}

// loadgenStages mirrors the server's stage taxonomy
// (rudolf_stage_duration_seconds{stage=...}).
var loadgenStages = []string{"decode", "acquire", "wal_append", "window", "eval", "encode", "write"}

// stageStat is one stage's scraped sum/count.
type stageStat struct {
	sum   float64
	count float64
}

// scrapeStages reads the per-stage histogram sums and counts off a /metrics
// page, keyed by stage label.
func scrapeStages(page string) map[string]stageStat {
	out := make(map[string]stageStat, len(loadgenStages))
	for _, st := range loadgenStages {
		sum, okS := telemetry.ScrapeValue(page, fmt.Sprintf(`rudolf_stage_duration_seconds_sum{stage=%q}`, st))
		count, okC := telemetry.ScrapeValue(page, fmt.Sprintf(`rudolf_stage_duration_seconds_count{stage=%q}`, st))
		if okS && okC {
			out[st] = stageStat{sum: sum, count: count}
		}
	}
	return out
}

// printStageTable reports where server-side request time went, by stage.
func printStageTable(page string) {
	stages := scrapeStages(page)
	var parts []string
	var total float64
	for _, st := range loadgenStages {
		s, ok := stages[st]
		if !ok || s.count == 0 {
			continue
		}
		total += s.sum
		parts = append(parts, fmt.Sprintf("%s %s", st, fmtSeconds(s.sum/s.count)))
	}
	if len(parts) > 0 {
		fmt.Printf("loadgen: server stage means from /metrics: %s (total %s across stages)\n",
			strings.Join(parts, ", "), fmtSeconds(total))
	}
}

// slowest tracks the worst-latency scoring request one worker observed,
// keyed by the request id the daemon echoed back — the handle an operator
// uses to find the matching span in GET /trace.
type slowest struct {
	latency   time.Duration
	requestID string
}

// runSmoke is the control-plane assertion pass behind `make smoke`: the load
// phase must have scored traffic, a rules swap must bump the published
// version, a feedback-driven /refine must register on the new refinement
// metrics series, GET /trace must return well-formed trace JSON containing
// the refine request's span, and /metrics must reflect all of it.
func runSmoke(url, page string, rng *rand.Rand, schema *relation.Schema,
	startRules []string, startVersion int, scored, errCount int64, worstReq slowest, client clientLatencies) error {
	if scored == 0 {
		return fmt.Errorf("no transactions scored during the load phase")
	}
	if errCount > 0 {
		return fmt.Errorf("%d scoring requests failed", errCount)
	}
	if worstReq.requestID == "" {
		return fmt.Errorf("no request_id decoded from any scoring response")
	}
	if v, ok := telemetry.ScrapeValue(page, "rudolf_score_tx_total"); !ok || int64(v) < scored {
		return fmt.Errorf("rudolf_score_tx_total = %v (ok=%v), want >= %d", v, ok, scored)
	}
	if err := crossCheckStages(page, client); err != nil {
		return err
	}
	if err := checkBuildInfo(page); err != nil {
		return err
	}
	if err := checkAlerts(url, page); err != nil {
		return err
	}

	// Decision provenance: run explain-mode scores against the still-live
	// start version, validate the attribution invariants, feed one flagged
	// transaction back as fraud and assert the rule-health join saw it. This
	// must run BEFORE the swap below: publishing resets the health epoch.
	if err := checkExplainAndHealth(url, rng, schema, startRules, startVersion); err != nil {
		return err
	}
	if err := checkAudit(url, startVersion); err != nil {
		return err
	}

	// Swap: republish the same rules; the version must bump even so (every
	// publish is a new history version).
	raw, err := json.Marshal(map[string]any{"rules": startRules, "comment": "loadgen smoke swap"})
	if err != nil {
		return err
	}
	resp, err := http.Post(url+"/v1/rules", "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /v1/rules: %d %s", resp.StatusCode, body)
	}
	_, afterVersion, err := fetchRules(url)
	if err != nil {
		return err
	}
	if afterVersion <= startVersion {
		return fmt.Errorf("version did not bump on swap: %d -> %d", startVersion, afterVersion)
	}

	// The metrics page must have moved with the swap.
	page2, err := fetchMetrics(url)
	if err != nil {
		return err
	}
	if v, ok := telemetry.ScrapeValue(page2, "rudolf_rules_version"); !ok || int(v) != afterVersion {
		return fmt.Errorf("rudolf_rules_version = %v (ok=%v), want %d", v, ok, afterVersion)
	}
	swapsBefore, _ := telemetry.ScrapeValue(page, "rudolf_rule_swaps_total")
	swapsAfter, ok := telemetry.ScrapeValue(page2, "rudolf_rule_swaps_total")
	if !ok || swapsAfter <= swapsBefore {
		return fmt.Errorf("rudolf_rule_swaps_total did not move: %v -> %v", swapsBefore, swapsAfter)
	}

	// Refinement pass: push a labeled feedback batch and run one /refine, then
	// assert the refinement observability series and the trace both saw it.
	resp, err = http.Post(url+"/v1/feedback", "application/json", bytes.NewReader(feedbackBody(rng, schema, 32)))
	if err != nil {
		return err
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /v1/feedback: %d %s", resp.StatusCode, body)
	}
	resp, err = http.Post(url+"/v1/refine", "application/json", strings.NewReader("{}"))
	if err != nil {
		return err
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /v1/refine: %d %s", resp.StatusCode, body)
	}
	var refined struct {
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(body, &refined); err != nil || refined.RequestID == "" {
		return fmt.Errorf("POST /v1/refine carries no request_id (body %s): %v", body, err)
	}

	page3, err := fetchMetrics(url)
	if err != nil {
		return err
	}
	h, err := telemetry.ScrapeHistogram(strings.NewReader(page3), "rudolf_refine_round_duration_seconds")
	if err != nil {
		return fmt.Errorf("scraping rudolf_refine_round_duration_seconds: %w", err)
	}
	if h.Total == 0 {
		return fmt.Errorf("rudolf_refine_round_duration_seconds observed no rounds after /refine")
	}
	for _, series := range []string{
		`rudolf_expert_queries_total{kind="generalization"}`,
		`rudolf_expert_queries_total{kind="split"}`,
		`rudolf_capture_cache_hits_total{caller="serve"}`,
		`rudolf_capture_cache_misses_total{caller="refine"}`,
	} {
		if !strings.Contains(page3, series) {
			return fmt.Errorf("/metrics missing refinement series %s", series)
		}
	}

	// The trace endpoint must return well-formed Chrome trace JSON whose
	// events include the refine request's span, correlated by request id.
	resp, err = http.Get(url + "/v1/trace")
	if err != nil {
		return err
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /v1/trace: %d %s", resp.StatusCode, body)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return fmt.Errorf("GET /v1/trace is not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("GET /v1/trace returned no events")
	}
	refineSeen := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "request.refine" && ev.Args["id"] == refined.RequestID {
			refineSeen = true
			break
		}
	}
	if !refineSeen {
		return fmt.Errorf("trace has no request.refine span with id %s", refined.RequestID)
	}
	fmt.Printf("loadgen: smoke refine %s: %d refinement rounds traced, %d trace events\n",
		refined.RequestID, h.Total, len(doc.TraceEvents))

	// Stateful velocity rules: publish a windowed COUNT rule and drive a
	// same-key burst through it (no-op when the schema has no time role).
	if err := checkVelocity(url, rng, schema); err != nil {
		return err
	}

	// Observability: a deliberately slow request must land in the slow ring
	// with a stage breakdown, and /v1/debug/state must be well-formed.
	return checkDebugObservability(url, rng, schema)
}

// checkBuildInfo asserts the build-identity gauge: rudolf_build_info must
// be a constant 1 labeled with the Go runtime version — which, for a
// locally built daemon, is the very toolchain that built this loadgen.
func checkBuildInfo(page string) error {
	series := fmt.Sprintf(`rudolf_build_info{go_version=%q,version=`, goruntime.Version())
	for _, line := range strings.Split(page, "\n") {
		if !strings.HasPrefix(line, series) {
			continue
		}
		if !strings.HasSuffix(strings.TrimSpace(line), " 1") {
			return fmt.Errorf("rudolf_build_info is not constant 1: %q", line)
		}
		fmt.Printf("loadgen: smoke build-info ok: %s\n", strings.TrimSpace(line))
		return nil
	}
	return fmt.Errorf("/metrics has no rudolf_build_info series for %s", goruntime.Version())
}

// checkAlerts asserts the alerting surface's shape: GET /v1/alerts serves
// the compiled-in default rules (all inactive on a healthy freshly loaded
// daemon) with a working ETag, and /metrics exports the matching
// ALERTS{name,severity,state} gauge family. The breach-and-resolve
// lifecycle is exercised by scripts/smoke.sh with an aggressive rule file;
// here the defaults must simply be present, evaluable and quiet.
func checkAlerts(url, page string) error {
	resp, err := http.Get(url + "/v1/alerts?refresh=1")
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	etag := resp.Header.Get("ETag")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /v1/alerts: %d %s", resp.StatusCode, body)
	}
	if etag == "" {
		return fmt.Errorf("GET /v1/alerts carries no ETag")
	}
	var doc struct {
		RequestID string `json:"request_id"`
		Firing    int    `json:"firing"`
		Rules     []struct {
			Name  string `json:"name"`
			State string `json:"state"`
			Expr  string `json:"expr"`
		} `json:"rules"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return fmt.Errorf("GET /v1/alerts is not valid JSON: %w", err)
	}
	if doc.RequestID == "" || len(doc.Rules) == 0 {
		return fmt.Errorf("/v1/alerts request_id=%q rules=%d malformed", doc.RequestID, len(doc.Rules))
	}
	for _, r := range doc.Rules {
		if r.Name == "" || r.State == "" || r.Expr == "" {
			return fmt.Errorf("/v1/alerts rule malformed: %+v", r)
		}
		if r.State == "firing" {
			return fmt.Errorf("default alert %s firing on a freshly loaded daemon (%s)", r.Name, r.Expr)
		}
		series := fmt.Sprintf(`ALERTS{name=%q,severity=`, r.Name)
		if !strings.Contains(page, series) {
			return fmt.Errorf("/metrics missing the ALERTS gauge family for alert %s", r.Name)
		}
	}
	// The ETag must answer a conditional re-read with 304 (no transitions
	// can have happened: nothing fires and we installed no rules).
	req, err := http.NewRequest(http.MethodGet, url+"/v1/alerts", nil)
	if err != nil {
		return err
	}
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		return fmt.Errorf("conditional GET /v1/alerts: %d, want 304", resp.StatusCode)
	}
	fmt.Printf("loadgen: smoke alerts ok: %d default rules installed, %d firing, ETag %s honored\n",
		len(doc.Rules), doc.Firing, etag)
	return nil
}

// crossCheckStages validates the server's per-stage histograms against the
// client's own measurements of the load phase: every always-on stage saw
// every request, and the server-side stage time per request cannot exceed
// what the client observed end to end (client time adds the network).
func crossCheckStages(page string, client clientLatencies) error {
	if client.requests == 0 {
		return fmt.Errorf("no client-side latencies recorded during the load phase")
	}
	stages := scrapeStages(page)
	var totalStage float64
	for _, st := range []string{"decode", "eval", "encode", "write"} {
		s, ok := stages[st]
		if !ok {
			return fmt.Errorf("/metrics has no rudolf_stage_duration_seconds series for stage %q", st)
		}
		if s.count < float64(client.requests) {
			return fmt.Errorf("stage %q observed %.0f requests, client sent %d", st, s.count, client.requests)
		}
	}
	for _, s := range stages {
		totalStage += s.sum
	}
	clientTotal := client.total.Seconds()
	if totalStage > clientTotal*1.05 {
		return fmt.Errorf("server stage time %.3fs exceeds client-observed request time %.3fs: stages cannot take longer than the requests that contain them",
			totalStage, clientTotal)
	}
	fmt.Printf("loadgen: smoke stages ok: %.1f%% of client-observed time attributed server-side across %d stages\n",
		100*totalStage/clientTotal, len(stages))
	return nil
}

// checkDebugObservability drives the tail-sampling path end to end: one
// deliberately heavy request (a max-size explain_all batch, orders of
// magnitude more work than the load phase's batches) must exceed the
// adaptive p99 threshold and surface in GET /v1/debug/slow with a per-stage
// breakdown that accounts for its latency; GET /v1/debug/state must return
// a well-formed consolidated document.
func checkDebugObservability(url string, rng *rand.Rand, schema *relation.Schema) error {
	// A slow request's uncovered time is occasionally dominated by a GC
	// pause or scheduler hiccup outside the stage taxonomy — often the very
	// reason it was slow enough to promote. The structural assertions are
	// unconditional; only the 90% coverage bound earns a fresh probe.
	const probeAttempts = 5
	var lastCoverage error
	for attempt := 0; attempt < probeAttempts; attempt++ {
		raw, err := json.Marshal(map[string]any{"transactions": randomTxs(rng, schema, 4096), "explain_all": true})
		if err != nil {
			return err
		}
		resp, err := http.Post(url+"/v1/score", "application/json", bytes.NewReader(raw))
		if err != nil {
			return err
		}
		slowID := resp.Header.Get("X-Request-Id")
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("slow-probe POST /v1/score: %d", resp.StatusCode)
		}
		if slowID == "" {
			return fmt.Errorf("slow-probe response carries no X-Request-Id")
		}

		resp, err = http.Get(url + "/v1/debug/slow")
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET /v1/debug/slow: %d %s", resp.StatusCode, body)
		}
		var slow struct {
			Count         int   `json:"count"`
			PromotedTotal int   `json:"promoted_total"`
			ThresholdNS   int64 `json:"threshold_ns"`
			Entries       []struct {
				RequestID    string           `json:"request_id"`
				Name         string           `json:"name"`
				DurNS        int64            `json:"dur_ns"`
				StagesNS     map[string]int64 `json:"stages_ns"`
				StageTotalNS int64            `json:"stage_total_ns"`
				Spans        []struct {
					Name string `json:"name"`
				} `json:"spans"`
			} `json:"entries"`
		}
		if err := json.Unmarshal(body, &slow); err != nil {
			return fmt.Errorf("GET /v1/debug/slow is not valid JSON: %w", err)
		}
		if slow.Count == 0 || slow.Count != len(slow.Entries) || slow.PromotedTotal < slow.Count {
			return fmt.Errorf("/v1/debug/slow count=%d entries=%d promoted=%d malformed",
				slow.Count, len(slow.Entries), slow.PromotedTotal)
		}
		found := false
		lastCoverage = nil
		for _, e := range slow.Entries {
			if e.RequestID != slowID {
				continue
			}
			found = true
			if e.Name != "request.score" {
				return fmt.Errorf("slow entry %s has root %q, want request.score", slowID, e.Name)
			}
			if len(e.StagesNS) == 0 || len(e.Spans) < 2 {
				return fmt.Errorf("slow entry %s has no stage breakdown (stages=%d spans=%d)",
					slowID, len(e.StagesNS), len(e.Spans))
			}
			// Stage intervals are disjoint and contained in the root span: the
			// sum can never exceed the end-to-end duration, and for a request
			// this heavy it must account for it to within 10%.
			if e.StageTotalNS > e.DurNS {
				return fmt.Errorf("slow entry %s: stages sum to %s of a %s request",
					slowID, time.Duration(e.StageTotalNS), time.Duration(e.DurNS))
			}
			if e.StageTotalNS < e.DurNS*9/10 {
				lastCoverage = fmt.Errorf("slow entry %s: stages sum to %s of a %s request, want within 10%%",
					slowID, time.Duration(e.StageTotalNS), time.Duration(e.DurNS))
				continue
			}
			fmt.Printf("loadgen: smoke slow-trace ok: request %s (%s) retained with %d stages covering %.1f%% (threshold %s)\n",
				slowID, time.Duration(e.DurNS).Round(time.Microsecond), len(e.StagesNS),
				100*float64(e.StageTotalNS)/float64(e.DurNS), time.Duration(slow.ThresholdNS).Round(time.Microsecond))
		}
		if !found {
			return fmt.Errorf("slow probe %s not in /v1/debug/slow (%d entries, threshold %s)",
				slowID, slow.Count, time.Duration(slow.ThresholdNS))
		}
		if lastCoverage == nil {
			break
		}
		fmt.Printf("loadgen: smoke slow-trace retry %d/%d: %v\n", attempt+1, probeAttempts, lastCoverage)
	}
	if lastCoverage != nil {
		return lastCoverage
	}

	resp, err := http.Get(url + "/v1/debug/state")
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /v1/debug/state: %d %s", resp.StatusCode, body)
	}
	var state struct {
		UptimeSeconds float64 `json:"uptime_seconds"`
		Version       int     `json:"version"`
		Rules         int     `json:"rules"`
		Workers       int     `json:"workers"`
		ScoredTx      uint64  `json:"scored_tx"`
		Trace         struct {
			Capacity int `json:"capacity"`
			Held     int `json:"held"`
		} `json:"trace"`
		Slow struct {
			Capacity int `json:"capacity"`
			Len      int `json:"len"`
			Promoted int `json:"promoted"`
		} `json:"slow"`
		Window *struct {
			Entries int64 `json:"entries"`
		} `json:"window"`
		Runtime struct {
			Goroutines int64 `json:"goroutines"`
			HeapBytes  int64 `json:"heap_bytes"`
		} `json:"runtime"`
	}
	if err := json.Unmarshal(body, &state); err != nil {
		return fmt.Errorf("GET /v1/debug/state is not valid JSON: %w", err)
	}
	switch {
	case state.UptimeSeconds <= 0:
		return fmt.Errorf("/v1/debug/state uptime_seconds = %v", state.UptimeSeconds)
	case state.Version <= 0 || state.Rules <= 0 || state.Workers <= 0:
		return fmt.Errorf("/v1/debug/state version=%d rules=%d workers=%d malformed", state.Version, state.Rules, state.Workers)
	case state.ScoredTx == 0:
		return fmt.Errorf("/v1/debug/state scored_tx = 0 after the load phase")
	case state.Trace.Capacity <= 0 || state.Trace.Held <= 0:
		return fmt.Errorf("/v1/debug/state trace capacity=%d held=%d", state.Trace.Capacity, state.Trace.Held)
	case state.Slow.Capacity <= 0 || state.Slow.Len == 0 || state.Slow.Promoted == 0:
		return fmt.Errorf("/v1/debug/state slow capacity=%d len=%d promoted=%d", state.Slow.Capacity, state.Slow.Len, state.Slow.Promoted)
	case state.Runtime.Goroutines <= 0 || state.Runtime.HeapBytes <= 0:
		return fmt.Errorf("/v1/debug/state runtime goroutines=%d heap_bytes=%d", state.Runtime.Goroutines, state.Runtime.HeapBytes)
	}
	if schema.TimeAttr() >= 0 {
		if state.Window == nil || state.Window.Entries == 0 {
			return fmt.Errorf("/v1/debug/state window empty after velocity bursts (window=%+v)", state.Window)
		}
	}
	fmt.Printf("loadgen: smoke debug-state ok: version %d, %d rules, %d tx scored, %d slow traces retained\n",
		state.Version, state.Rules, state.ScoredTx, state.Slow.Len)
	return nil
}

// checkExplainAndHealth exercises the decision-provenance path end to end:
// GET /v1/rules/health must report the live version with traffic accounted,
// an explain-mode /v1/score must return per-rule, per-condition attributions
// that satisfy the margin invariant (a check passes iff its margin is >= 0,
// a transaction is flagged iff it matched at least one rule), and feeding a
// flagged transaction back as labeled fraud must move that rule's TP count
// in the next health snapshot.
func checkExplainAndHealth(url string, rng *rand.Rand, schema *relation.Schema,
	ruleTexts []string, version int) error {
	ruleCount := len(ruleTexts)
	health, etag, err := fetchRuleHealth(url)
	if err != nil {
		return err
	}
	if health.Version != version {
		return fmt.Errorf("/v1/rules/health version = %d, want live version %d", health.Version, version)
	}
	if health.TotalScored == 0 {
		return fmt.Errorf("/v1/rules/health total_scored = 0 after the load phase")
	}
	if len(health.Rules) != ruleCount {
		return fmt.Errorf("/v1/rules/health reports %d rules, want %d", len(health.Rules), ruleCount)
	}
	if etag == "" {
		return fmt.Errorf("/v1/rules/health carries no ETag")
	}

	// One explain batch: random transactions (whatever their verdict, every
	// attribution must be internally consistent) plus one transaction
	// crafted from the published rule texts to match by construction, so the
	// flagged path is exercised deterministically.
	crafted, err := craftMatchingTx(schema, ruleTexts)
	if err != nil {
		return err
	}
	txs := append(randomTxs(rng, schema, 31), crafted)
	raw, err := json.Marshal(map[string]any{"transactions": txs, "explain": true})
	if err != nil {
		return err
	}
	resp, err := http.Post(url+"/v1/score", "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("explain-mode POST /v1/score: %d %s", resp.StatusCode, body)
	}
	var out struct {
		Version      int    `json:"version"`
		Flagged      []bool `json:"flagged"`
		Explanations []struct {
			Flagged bool  `json:"flagged"`
			Matched []int `json:"matched"`
			Rules   []struct {
				Rule    int  `json:"rule"`
				Matched bool `json:"matched"`
				Checks  []struct {
					Attr   string `json:"attr"`
					Kind   string `json:"kind"`
					Pass   bool   `json:"pass"`
					Margin int64  `json:"margin"`
				} `json:"checks"`
			} `json:"rules"`
		} `json:"explanations"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return fmt.Errorf("explain-mode /v1/score response: %w", err)
	}
	if len(out.Explanations) != len(txs) {
		return fmt.Errorf("explain-mode /v1/score returned %d explanations for %d transactions", len(out.Explanations), len(txs))
	}
	for i, e := range out.Explanations {
		if e.Flagged != (len(e.Matched) > 0) {
			return fmt.Errorf("explanation %d: flagged=%v but %d matched rules", i, e.Flagged, len(e.Matched))
		}
		if e.Flagged != out.Flagged[i] {
			return fmt.Errorf("explanation %d disagrees with flagged[%d]", i, i)
		}
		for _, re := range e.Rules {
			if re.Rule < 0 || re.Rule >= ruleCount {
				return fmt.Errorf("explanation %d attributes rule %d outside [0,%d)", i, re.Rule, ruleCount)
			}
			// Default explain mode carries breakdowns only for fired rules
			// (explain_all is the full-table form).
			if !re.Matched {
				return fmt.Errorf("explanation %d: non-matched rule %d in the default explain breakdown", i, re.Rule)
			}
			for _, c := range re.Checks {
				if c.Pass != (c.Margin >= 0) {
					return fmt.Errorf("explanation %d rule %d check %s: pass=%v margin=%d violates the margin invariant",
						i, re.Rule, c.Attr, c.Pass, c.Margin)
				}
			}
		}
		for _, m := range e.Matched {
			found := false
			for _, re := range e.Rules {
				if re.Rule != m {
					continue
				}
				found = true
				if !re.Matched {
					return fmt.Errorf("explanation %d: matched rule %d reported matched=false", i, m)
				}
				for _, c := range re.Checks {
					if !c.Pass {
						return fmt.Errorf("explanation %d: matched rule %d has failing check %s", i, m, c.Attr)
					}
				}
			}
			if !found {
				return fmt.Errorf("explanation %d: matched rule %d missing from the rule breakdown", i, m)
			}
		}
	}
	last := out.Explanations[len(out.Explanations)-1]
	if !last.Flagged {
		return fmt.Errorf("crafted rule-matching transaction was not flagged")
	}
	flaggedTx, flaggedRule := crafted, last.Matched[0]

	// The flagged transaction's first-match rule must have fired, and feeding
	// it back as labeled fraud must count as a true positive for it.
	health, _, err = fetchRuleHealth(url)
	if err != nil {
		return err
	}
	if health.Rules[flaggedRule].Fires == 0 {
		return fmt.Errorf("rule %d flagged a transaction but reports 0 fires", flaggedRule)
	}
	tpBefore := health.Rules[flaggedRule].TP
	flaggedTx["label"] = "fraud"
	raw, err = json.Marshal(map[string]any{"transactions": []map[string]any{flaggedTx}})
	if err != nil {
		return err
	}
	resp, err = http.Post(url+"/v1/feedback", "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /v1/feedback (flagged fraud): %d %s", resp.StatusCode, body)
	}
	health, _, err = fetchRuleHealth(url)
	if err != nil {
		return err
	}
	if health.Rules[flaggedRule].TP <= tpBefore {
		return fmt.Errorf("rule %d tp = %d after fraud feedback it captures, want > %d",
			flaggedRule, health.Rules[flaggedRule].TP, tpBefore)
	}
	fmt.Printf("loadgen: smoke explain ok: rule %d fired %d times, tp %d -> %d after fraud feedback\n",
		flaggedRule, health.Rules[flaggedRule].Fires, tpBefore, health.Rules[flaggedRule].TP)
	return nil
}

// craftMatchingTx builds a wire transaction that satisfies the first
// satisfiable published rule by construction: each numeric condition
// contributes its interval's low end, each categorical condition a leaf
// admitted by its concept bound, and the risk score the rule's threshold.
func craftMatchingTx(schema *relation.Schema, ruleTexts []string) (map[string]any, error) {
	for _, text := range ruleTexts {
		r, err := rules.Parse(schema, text)
		if err != nil {
			return nil, fmt.Errorf("published rule %q does not parse: %w", text, err)
		}
		if r.IsEmpty(schema) {
			continue
		}
		if len(r.Windows()) > 0 {
			// A windowed (velocity) rule depends on the server's aggregate
			// state, not on any single transaction — no crafted tuple can
			// match it by construction. checkVelocity exercises these.
			continue
		}
		attrs := make(map[string]any, schema.Arity())
		ok := true
		for a := 0; a < schema.Arity() && ok; a++ {
			attr := schema.Attr(a)
			cond := r.Cond(a)
			if attr.Kind == relation.Categorical {
				ok = false
				for _, leaf := range attr.Ontology.Leaves() {
					if cond.Admits(attr, int64(leaf)) {
						attrs[attr.Name] = attr.Ontology.ConceptName(ontology.Concept(leaf))
						ok = true
						break
					}
				}
				continue
			}
			iv := cond.Iv.Intersect(attr.Domain.Full())
			if iv.IsEmpty() {
				ok = false
				continue
			}
			attrs[attr.Name] = iv.Lo
		}
		if !ok {
			continue
		}
		return map[string]any{"attrs": attrs, "score": int(r.MinScore())}, nil
	}
	return nil, fmt.Errorf("none of the %d published rules is satisfiable", len(ruleTexts))
}

// Velocity burst constants shared by the smoke and crash flows: a windowed
// COUNT rule with this threshold fires on the threshold-th same-key probe
// inside the window. The crash flow sends velocityPreCrash probes before the
// kill and the remainder after recovery, so the rule firing post-restart
// with margin 0 proves the aggregate state was reconstructed exactly.
const (
	velocityThreshold = 5
	velocityPreCrash  = 3
	velocityStartMin  = 200 // first probe's time-attribute value
)

// velocityRuleText builds a windowed velocity rule over the daemon's schema:
// COUNT over the first categorical attribute (the first non-time attribute
// when there is none), 10-minute window. Returns the key attribute index.
func velocityRuleText(schema *relation.Schema) (string, int, error) {
	if schema.TimeAttr() < 0 {
		return "", -1, fmt.Errorf("schema has no time attribute")
	}
	key := -1
	for a := 0; a < schema.Arity(); a++ {
		if a == schema.TimeAttr() {
			continue
		}
		if schema.Attr(a).Kind == relation.Categorical {
			key = a
			break
		}
		if key < 0 {
			key = a
		}
	}
	if key < 0 {
		return "", -1, fmt.Errorf("schema has no usable key attribute")
	}
	return fmt.Sprintf("COUNT(%s, 10m) >= %d", schema.Attr(key).Name, velocityThreshold), key, nil
}

// velocityTxs builds n burst probes: every probe carries the key attribute's
// first leaf (or domain minimum) and times one minute apart from start, so
// they all land in one 10-minute window of one aggregation key.
func velocityTxs(rng *rand.Rand, schema *relation.Schema, key, start, n int) []map[string]any {
	txs := randomTxs(rng, schema, n)
	timeName := schema.Attr(schema.TimeAttr()).Name
	keyAttr := schema.Attr(key)
	var keyVal any
	if keyAttr.Kind == relation.Categorical {
		keyVal = keyAttr.Ontology.ConceptName(ontology.Concept(keyAttr.Ontology.Leaves()[0]))
	} else {
		keyVal = keyAttr.Domain.Min
	}
	for i := range txs {
		attrs := txs[i]["attrs"].(map[string]any)
		attrs[timeName] = start + i
		attrs[keyAttr.Name] = keyVal
	}
	return txs
}

// velocityExplain is the explain-mode response subset the velocity checks
// decode.
type velocityExplain struct {
	Flagged      []bool `json:"flagged"`
	Explanations []struct {
		Matched []int `json:"matched"`
		Rules   []struct {
			Rule   int `json:"rule"`
			Checks []struct {
				Attr   string `json:"attr"`
				Kind   string `json:"kind"`
				Pass   bool   `json:"pass"`
				Margin int64  `json:"margin"`
			} `json:"checks"`
		} `json:"rules"`
	} `json:"explanations"`
}

// scoreVelocityBurst publishes nothing; it scores the given burst with
// explain and decodes the response.
func scoreVelocityBurst(url string, txs []map[string]any) (velocityExplain, error) {
	var out velocityExplain
	raw, err := json.Marshal(map[string]any{"transactions": txs, "explain": true})
	if err != nil {
		return out, err
	}
	resp, err := http.Post(url+"/v1/score", "application/json", bytes.NewReader(raw))
	if err != nil {
		return out, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("velocity POST /v1/score: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return out, fmt.Errorf("velocity /v1/score response: %w", err)
	}
	if len(out.Explanations) != len(txs) {
		return out, fmt.Errorf("velocity /v1/score returned %d explanations for %d probes", len(out.Explanations), len(txs))
	}
	return out, nil
}

// publishWithVelocityRule appends the velocity rule to the currently
// published set and republishes; returns the new rule's index and key attr.
func publishWithVelocityRule(url string, schema *relation.Schema) (velIdx, key int, err error) {
	ruleText, key, err := velocityRuleText(schema)
	if err != nil {
		return -1, -1, err
	}
	cur, _, err := fetchRules(url)
	if err != nil {
		return -1, -1, err
	}
	raw, err := json.Marshal(map[string]any{"rules": append(cur, ruleText), "comment": "loadgen velocity"})
	if err != nil {
		return -1, -1, err
	}
	resp, err := http.Post(url+"/v1/rules", "application/json", bytes.NewReader(raw))
	if err != nil {
		return -1, -1, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return -1, -1, fmt.Errorf("POST /v1/rules (velocity): %d %s", resp.StatusCode, body)
	}
	return len(cur), key, nil
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// checkVelocity exercises the stateful scoring path end to end: publish a
// windowed COUNT rule, drive a same-key burst through /v1/score, and assert
// the rule stays quiet below the threshold, fires exactly at it with a
// window-kind check satisfying the margin invariant, and shows up firing in
// GET /v1/rules/health.
func checkVelocity(url string, rng *rand.Rand, schema *relation.Schema) error {
	if schema.TimeAttr() < 0 {
		fmt.Println("loadgen: smoke velocity skipped (schema has no time attribute)")
		return nil
	}
	velIdx, key, err := publishWithVelocityRule(url, schema)
	if err != nil {
		return err
	}
	out, err := scoreVelocityBurst(url, velocityTxs(rng, schema, key, velocityStartMin, velocityThreshold))
	if err != nil {
		return err
	}
	if containsInt(out.Explanations[0].Matched, velIdx) {
		return fmt.Errorf("velocity rule %d fired on the burst's first probe", velIdx)
	}
	last := out.Explanations[len(out.Explanations)-1]
	if !containsInt(last.Matched, velIdx) {
		return fmt.Errorf("velocity rule %d did not fire on probe %d of a same-key burst", velIdx, velocityThreshold)
	}
	winChecks := 0
	for _, re := range last.Rules {
		if re.Rule != velIdx {
			continue
		}
		for _, c := range re.Checks {
			if c.Kind != "window" {
				continue
			}
			winChecks++
			if !c.Pass || c.Margin < 0 {
				return fmt.Errorf("velocity rule %d window check %s: pass=%v margin=%d on the firing probe",
					velIdx, c.Attr, c.Pass, c.Margin)
			}
			if !strings.Contains(c.Attr, "COUNT(") {
				return fmt.Errorf("window check attr = %q, want the aggregate atom", c.Attr)
			}
		}
	}
	if winChecks == 0 {
		return fmt.Errorf("velocity rule %d fired without a window-kind check in its breakdown", velIdx)
	}
	health, _, err := fetchRuleHealth(url)
	if err != nil {
		return err
	}
	if velIdx >= len(health.Rules) || health.Rules[velIdx].Fires == 0 {
		return fmt.Errorf("/v1/rules/health reports no fires for velocity rule %d", velIdx)
	}
	// The window store's occupancy must be visible on /metrics after the
	// burst: live entries, plus both eviction-cause series (present even at
	// zero — an operator alerts on series that exist).
	page, err := fetchMetrics(url)
	if err != nil {
		return err
	}
	if v, ok := telemetry.ScrapeValue(page, "rudolf_window_entries"); !ok || v <= 0 {
		return fmt.Errorf("rudolf_window_entries = %v (ok=%v) after a velocity burst, want > 0", v, ok)
	}
	for _, series := range []string{
		`rudolf_window_evictions_total{cause="expired"}`,
		`rudolf_window_evictions_total{cause="lru"}`,
	} {
		if _, ok := telemetry.ScrapeValue(page, series); !ok {
			return fmt.Errorf("/metrics missing window eviction series %s", series)
		}
	}
	fmt.Printf("loadgen: smoke velocity ok: rule %d fired on probe %d/%d, %d fires in /v1/rules/health\n",
		velIdx, velocityThreshold, velocityThreshold, health.Rules[velIdx].Fires)
	return nil
}

// velocityPrepare is the crash flow's first half (run with -churn
// -velocity): publish the velocity rule and send the below-threshold prefix
// of a burst, whose observations must survive the coming kill -9.
func velocityPrepare(url string, rng *rand.Rand, schema *relation.Schema) error {
	velIdx, key, err := publishWithVelocityRule(url, schema)
	if err != nil {
		return err
	}
	out, err := scoreVelocityBurst(url, velocityTxs(rng, schema, key, velocityStartMin, velocityPreCrash))
	if err != nil {
		return err
	}
	for i, e := range out.Explanations {
		if containsInt(e.Matched, velIdx) {
			return fmt.Errorf("velocity rule %d fired on pre-crash probe %d, below the threshold", velIdx, i)
		}
	}
	fmt.Printf("loadgen: velocity prepared: %d/%d probes observed pre-crash, rule %d quiet\n",
		velocityPreCrash, velocityThreshold, velIdx)
	return nil
}

// velocityResume is the crash flow's second half (run with -resume
// -velocity): the remaining probes of the burst must trip the rule with
// margin exactly 0 — the count is right only if every pre-crash observation
// was recovered from the WAL.
func velocityResume(url string, rng *rand.Rand) error {
	schema, err := fetchSchema(url)
	if err != nil {
		return err
	}
	_, key, err := velocityRuleText(schema)
	if err != nil {
		return err
	}
	texts, _, err := fetchRules(url)
	if err != nil {
		return err
	}
	velIdx := -1
	for i, text := range texts {
		if strings.HasPrefix(text, "COUNT(") {
			velIdx = i
		}
	}
	if velIdx < 0 {
		return fmt.Errorf("restored rule set has no velocity rule: %v", texts)
	}
	n := velocityThreshold - velocityPreCrash
	out, err := scoreVelocityBurst(url, velocityTxs(rng, schema, key, velocityStartMin+velocityPreCrash, n))
	if err != nil {
		return err
	}
	last := out.Explanations[len(out.Explanations)-1]
	if !containsInt(last.Matched, velIdx) {
		return fmt.Errorf("velocity rule %d did not fire after recovery: pre-crash observations lost", velIdx)
	}
	for _, re := range last.Rules {
		if re.Rule != velIdx {
			continue
		}
		for _, c := range re.Checks {
			if c.Kind == "window" && c.Margin != 0 {
				return fmt.Errorf("post-recovery window margin = %d, want 0 (count must be exactly %d)",
					c.Margin, velocityThreshold)
			}
		}
	}
	fmt.Printf("loadgen: velocity resume ok: rule %d fired on probe %d with margin 0 after the crash\n",
		velIdx, velocityThreshold)
	return nil
}

// checkAudit asserts the sampled decision audit ring retained entries from
// the load phase (the default 1-in-100 sampling sees thousands of scored
// transactions) and that each entry is well-formed.
func checkAudit(url string, version int) error {
	resp, err := http.Get(fmt.Sprintf("%s/v1/audit?n=5", url))
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /v1/audit: %d %s", resp.StatusCode, body)
	}
	var out struct {
		Version  int `json:"version"`
		Retained int `json:"retained"`
		Count    int `json:"count"`
		Entries  []struct {
			Seq   uint64            `json:"seq"`
			Rule  int               `json:"rule"`
			Attrs map[string]string `json:"attrs"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return fmt.Errorf("GET /v1/audit response: %w", err)
	}
	if out.Version != version {
		return fmt.Errorf("/v1/audit version = %d, want %d", out.Version, version)
	}
	if out.Retained == 0 || out.Count == 0 || len(out.Entries) != out.Count {
		return fmt.Errorf("/v1/audit retained=%d count=%d entries=%d, want sampled decisions after the load phase",
			out.Retained, out.Count, len(out.Entries))
	}
	for i, e := range out.Entries {
		if e.Rule < -1 || len(e.Attrs) == 0 {
			return fmt.Errorf("/v1/audit entry %d malformed: rule=%d attrs=%d", i, e.Rule, len(e.Attrs))
		}
	}
	return nil
}

// runChurn drives the durable write path: n labeled feedback batches
// interleaved with n rule republishes, then records the resulting rule-set
// version and feedback total (stdout, and stateFile when set) for a later
// -resume run to assert against.
func runChurn(url string, rng *rand.Rand, schema *relation.Schema, startRules []string, n int, stateFile string, velocity bool) error {
	for i := 0; i < n; i++ {
		resp, err := http.Post(url+"/v1/feedback", "application/json", bytes.NewReader(feedbackBody(rng, schema, 8)))
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST /v1/feedback (churn %d): %d %s", i, resp.StatusCode, body)
		}
		raw, err := json.Marshal(map[string]any{"rules": startRules, "comment": fmt.Sprintf("loadgen churn %d", i)})
		if err != nil {
			return err
		}
		resp, err = http.Post(url+"/v1/rules", "application/json", bytes.NewReader(raw))
		if err != nil {
			return err
		}
		body, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST /v1/rules (churn %d): %d %s", i, resp.StatusCode, body)
		}
	}
	// The velocity publish must happen before the state is recorded: it bumps
	// the version the -resume run asserts against.
	if velocity {
		if err := velocityPrepare(url, rng, schema); err != nil {
			return err
		}
	}
	version, feedback, err := fetchStats(url)
	if err != nil {
		return err
	}
	fmt.Printf("loadgen: churn state version=%d feedback=%d\n", version, feedback)
	if stateFile != "" {
		state := fmt.Sprintf("version=%d feedback=%d\n", version, feedback)
		if err := os.WriteFile(stateFile, []byte(state), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// runResume asserts a restarted daemon restored the recorded state: version
// and feedback count match, the boot replayed WAL records, errors arrive in
// the uniform envelope, and legacy paths answer 308 redirects to /v1.
func runResume(url string, expectVer, expectFb int, stateFile string, velocity bool) error {
	if stateFile != "" && (expectVer < 0 || expectFb < 0) {
		raw, err := os.ReadFile(stateFile)
		if err != nil {
			return err
		}
		var v, f int
		if _, err := fmt.Sscanf(strings.TrimSpace(string(raw)), "version=%d feedback=%d", &v, &f); err != nil {
			return fmt.Errorf("state file %s: %w", stateFile, err)
		}
		if expectVer < 0 {
			expectVer = v
		}
		if expectFb < 0 {
			expectFb = f
		}
	}
	if expectVer < 0 || expectFb < 0 {
		return fmt.Errorf("need -expect-version and -expect-feedback (or -state-file)")
	}

	version, feedback, err := fetchStats(url)
	if err != nil {
		return err
	}
	if version != expectVer {
		return fmt.Errorf("restored rule-set version = %d, want %d", version, expectVer)
	}
	if feedback != expectFb {
		return fmt.Errorf("restored feedback count = %d, want %d", feedback, expectFb)
	}

	// The boot must have actually replayed the log, not just started fresh.
	page, err := fetchMetrics(url)
	if err != nil {
		return err
	}
	if v, ok := telemetry.ScrapeValue(page, "rudolf_wal_replayed_records_total"); !ok || v <= 0 {
		return fmt.Errorf("rudolf_wal_replayed_records_total = %v (ok=%v), want > 0 after a restart", v, ok)
	}

	// Rule health must reset coherently to the replayed version: same
	// version as /v1/stats, a fresh epoch with nothing scored yet.
	health, _, err := fetchRuleHealth(url)
	if err != nil {
		return err
	}
	if health.Version != expectVer {
		return fmt.Errorf("/v1/rules/health version = %d after restart, want replayed version %d", health.Version, expectVer)
	}
	if health.TotalScored != 0 {
		return fmt.Errorf("/v1/rules/health total_scored = %d on a fresh boot, want 0", health.TotalScored)
	}

	// Errors arrive in the uniform envelope with a stable code.
	resp, err := http.Post(url+"/v1/score", "application/json", strings.NewReader(`{"transactions":[]}`))
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		return fmt.Errorf("empty /v1/score batch: %d %s, want 400", resp.StatusCode, body)
	}
	var envelope struct {
		Error struct {
			Code      string `json:"code"`
			Message   string `json:"message"`
			RequestID string `json:"request_id"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error.Code != "bad_request" || envelope.Error.Message == "" {
		return fmt.Errorf("error body %s is not the uniform envelope (err %v)", body, err)
	}

	// Legacy unversioned paths answer 308 redirects to their /v1 successors.
	client := &http.Client{
		CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
	}
	resp, err = client.Get(url + "/rules")
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining
	resp.Body.Close()
	if resp.StatusCode != http.StatusPermanentRedirect || resp.Header.Get("Location") != "/v1/rules" {
		return fmt.Errorf("GET /rules = %d Location %q, want 308 to /v1/rules", resp.StatusCode, resp.Header.Get("Location"))
	}

	// Velocity convergence: finish the burst velocityPrepare started before
	// the crash; the windowed rule firing with margin 0 proves the aggregate
	// store was rebuilt to the exact pre-crash counts.
	if velocity {
		if err := velocityResume(url, rand.New(rand.NewSource(2))); err != nil {
			return err
		}
	}
	fmt.Printf("loadgen: resume verified version=%d feedback=%d, WAL replay observed, envelope + redirects intact\n",
		version, feedback)
	return nil
}

// healthDoc mirrors the /v1/rules/health wire shape loadgen asserts on.
type healthDoc struct {
	Version     int    `json:"version"`
	TotalScored uint64 `json:"total_scored"`
	Rules       []struct {
		Rule      int     `json:"rule"`
		Fires     uint64  `json:"fires"`
		Share     float64 `json:"share"`
		TP        uint64  `json:"tp"`
		FP        uint64  `json:"fp"`
		Precision float64 `json:"precision"`
		Drift     float64 `json:"drift"`
	} `json:"rules"`
}

// fetchRuleHealth reads the per-rule health snapshot and its ETag.
func fetchRuleHealth(url string) (healthDoc, string, error) {
	resp, err := http.Get(url + "/v1/rules/health")
	if err != nil {
		return healthDoc{}, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return healthDoc{}, "", fmt.Errorf("GET /v1/rules/health: %d", resp.StatusCode)
	}
	var out healthDoc
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return healthDoc{}, "", err
	}
	return out, resp.Header.Get("ETag"), nil
}

// fetchStats reads the published version and feedback count off /v1/stats.
func fetchStats(url string) (version, feedback int, err error) {
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("GET /v1/stats: %d", resp.StatusCode)
	}
	var out struct {
		Version  int `json:"version"`
		Feedback int `json:"feedback"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, 0, err
	}
	return out.Version, out.Feedback, nil
}

// feedbackBody builds one labeled /feedback batch: random transactions like
// scoreBody's, with fraud/legit/unlabeled labels round-robined so the next
// /refine has both frauds to chase and legitimates to protect.
func feedbackBody(rng *rand.Rand, schema *relation.Schema, n int) []byte {
	labels := []string{"fraud", "legit", "unlabeled"}
	txs := randomTxs(rng, schema, n)
	for i := range txs {
		txs[i]["label"] = labels[i%len(labels)]
	}
	raw, err := json.Marshal(map[string]any{"transactions": txs})
	if err != nil {
		panic(err) // generated values always marshal
	}
	return raw
}

// randomTxs synthesizes n random wire transactions against the schema:
// numeric attributes draw uniformly from their domain, categorical ones pick
// a random ontology leaf, risk scores spread over [0, 1000].
func randomTxs(rng *rand.Rand, schema *relation.Schema, n int) []map[string]any {
	txs := make([]map[string]any, n)
	for i := range txs {
		attrs := make(map[string]any, schema.Arity())
		for a := 0; a < schema.Arity(); a++ {
			attr := schema.Attr(a)
			if attr.Kind == relation.Categorical {
				leaves := attr.Ontology.Leaves()
				c := leaves[rng.Intn(len(leaves))]
				attrs[attr.Name] = attr.Ontology.ConceptName(ontology.Concept(c))
				continue
			}
			attrs[attr.Name] = attr.Domain.Min + rng.Int63n(attr.Domain.Max-attr.Domain.Min+1)
		}
		txs[i] = map[string]any{"attrs": attrs, "score": rng.Intn(relation.MaxScore + 1)}
	}
	return txs
}

// scoreBody builds one random /score batch (see randomTxs).
func scoreBody(rng *rand.Rand, schema *relation.Schema, batch int) []byte {
	raw, err := json.Marshal(map[string]any{"transactions": randomTxs(rng, schema, batch)})
	if err != nil {
		panic(err) // generated values always marshal
	}
	return raw
}

func fetchSchema(url string) (*relation.Schema, error) {
	resp, err := http.Get(url + "/v1/schema")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/schema: %d", resp.StatusCode)
	}
	return relation.ReadSchemaJSON(resp.Body)
}

func fetchRules(url string) (rules []string, version int, err error) {
	resp, err := http.Get(url + "/v1/rules")
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("GET /v1/rules: %d", resp.StatusCode)
	}
	var out struct {
		Version int      `json:"version"`
		Rules   []string `json:"rules"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, 0, err
	}
	return out.Rules, out.Version, nil
}

// fetchRulesETag returns the ETag and version of GET /v1/rules — the pair
// runFollowerCheck compares across leader and follower, since identical
// ETags are the replication invariant (DESIGN.md §16).
func fetchRulesETag(url string) (etag string, version int, err error) {
	resp, err := http.Get(url + "/v1/rules")
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", 0, fmt.Errorf("GET /v1/rules: %d", resp.StatusCode)
	}
	var out struct {
		Version int `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", 0, err
	}
	return resp.Header.Get("ETag"), out.Version, nil
}

// runFollowerCheck asserts the follower-role contract of the target at url
// before the load phase: GET /v1/status reports role=follower and readiness,
// a mutating request bounces with the stable "read_only" envelope and a
// Location header into the leader, GET /v1/rules converges to the leader's
// exact ETag, and scoring still works read-only.
func runFollowerCheck(url, leaderURL string, schema *relation.Schema) error {
	leaderURL = strings.TrimRight(leaderURL, "/")

	// Role + readiness. The follower catches up asynchronously, so readiness
	// is polled rather than demanded immediately.
	var st struct {
		Role  string `json:"role"`
		Ready bool   `json:"ready"`
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/status")
		if err != nil {
			return err
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("GET /v1/status: %w", err)
		}
		if st.Role != "follower" {
			return fmt.Errorf("/v1/status role = %q, want follower", st.Role)
		}
		if st.Ready {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("follower never became ready")
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Mutations are rejected with the stable envelope and redirected home.
	resp, err := http.Post(url+"/v1/feedback", "application/json", strings.NewReader(`{}`))
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		return fmt.Errorf("POST /v1/feedback on a follower: %d %s, want 403", resp.StatusCode, body)
	}
	var envelope struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error.Code != "read_only" {
		return fmt.Errorf("follower write rejection %s is not the read_only envelope (err %v)", body, err)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, leaderURL) {
		return fmt.Errorf("follower write rejection Location = %q, want a URL under the leader %s", loc, leaderURL)
	}

	// ETag convergence: the follower must serve the leader's exact rules
	// bytes. Poll briefly — a publish may be streaming right now.
	var letag, fetag string
	var lver, fver int
	deadline = time.Now().Add(10 * time.Second)
	for {
		if letag, lver, err = fetchRulesETag(leaderURL); err != nil {
			return fmt.Errorf("leader rules: %w", err)
		}
		if fetag, fver, err = fetchRulesETag(url); err != nil {
			return fmt.Errorf("follower rules: %w", err)
		}
		if letag != "" && letag == fetag && lver == fver {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("rules never converged: leader %s v%d, follower %s v%d", letag, lver, fetag, fver)
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Printf("loadgen: follower serves rules v%d with the leader's ETag %s\n", fver, fetag)

	// Read-only scoring serves at the replicated version.
	rng := rand.New(rand.NewSource(7))
	resp, err = http.Post(url+"/v1/score", "application/json", bytes.NewReader(scoreBody(rng, schema, 4)))
	if err != nil {
		return err
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("follower /v1/score: %d %s", resp.StatusCode, body)
	}
	var sr struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(body, &sr); err != nil || sr.Version != fver {
		return fmt.Errorf("follower scored at version %d (err %v), want %d", sr.Version, err, fver)
	}
	return nil
}

func fetchMetrics(url string) (string, error) {
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
