// Command rudolfd is the online scoring daemon: it serves the current rule
// set against live transaction traffic over HTTP, ingests fraud/legit
// feedback, refines its rules in place, and hot-swaps every published
// version atomically. See DESIGN.md §9 for the serving architecture.
//
// Usage:
//
//	rudolfd [-addr 127.0.0.1:8080] [-schema schema.json -rules rules.txt]
//	        [-history history.json] [-workers N] [-max-batch N] [-drain 10s]
//
// Without -schema, the daemon boots on the synthetic financial-institute
// schema with the generated incumbent rule set (-size, -seed), which is the
// zero-config path cmd/loadgen and `make smoke` exercise.
//
// Endpoints: POST /score, GET+POST /rules, POST /feedback, POST /refine,
// GET /stats, GET /schema, GET /healthz, GET /readyz, GET /metrics.
// SIGINT/SIGTERM drains gracefully: /readyz flips to 503, in-flight
// requests finish, and -history (when set) is written back.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	rudolf "repro"
	"repro/internal/cli"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		addrFile   = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
		schemaPath = flag.String("schema", "", "schema JSON (empty: the built-in synthetic FI schema)")
		rulesPath  = flag.String("rules", "", "rule file (empty: the FI's generated incumbent rules)")
		histPath   = flag.String("history", "", "JSON rule history to continue and persist on shutdown")
		size       = flag.Int("size", 2000, "synthetic dataset size (when -schema is empty)")
		seed       = flag.Int64("seed", 1, "synthetic dataset seed")
		workers    = flag.Int("workers", 0, "concurrent scoring evaluations (0: 2x GOMAXPROCS)")
		maxBatch   = flag.Int("max-batch", 0, "max transactions per request (0: default)")
		drain      = flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")
	)
	flag.Parse()

	cfg := rudolf.ServerConfig{Workers: *workers, MaxBatch: *maxBatch, DrainTimeout: *drain}

	if *schemaPath != "" {
		if *rulesPath == "" {
			fatal(fmt.Errorf("-schema requires -rules (the synthetic dataset brings its own incumbent rules)"))
		}
		schema, err := cli.LoadSchema(*schemaPath)
		if err != nil {
			fatal(err)
		}
		ruleSet, err := cli.LoadRules(*rulesPath, schema)
		if err != nil {
			fatal(err)
		}
		cfg.Schema, cfg.Rules = schema, ruleSet
	} else {
		ds := rudolf.GenerateDataset(rudolf.DataConfig{Size: *size, Seed: *seed})
		cfg.Schema = ds.Schema
		if *rulesPath != "" {
			ruleSet, err := cli.LoadRules(*rulesPath, ds.Schema)
			if err != nil {
				fatal(err)
			}
			cfg.Rules = ruleSet
		} else {
			cfg.Rules = rudolf.InitialRules(ds, 0, *seed)
		}
		// The synthetic FI schema has a day attribute that must not
		// separate clusters during /refine.
		cfg.Refine.Clusterer = rudolf.DatasetClusterer()
	}

	if *histPath != "" {
		hist, err := cli.LoadOrNewHistory(*histPath, cfg.Schema)
		if err != nil {
			fatal(err)
		}
		cfg.History = hist
	}

	srv, err := rudolf.NewServer(cfg)
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	fmt.Printf("rudolfd: listening on %s (rules version %d, %d rules)\n",
		bound, srv.Version(), srv.Rules().Len())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Serve(ctx, ln); err != nil {
		fatal(err)
	}
	fmt.Println("rudolfd: drained")

	if *histPath != "" {
		if err := cli.SaveHistory(*histPath, srv.History()); err != nil {
			fatal(err)
		}
		fmt.Printf("rudolfd: history with %d versions -> %s\n", srv.History().Len(), *histPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rudolfd:", err)
	os.Exit(1)
}
