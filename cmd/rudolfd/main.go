// Command rudolfd is the online scoring daemon: it serves the current rule
// set against live transaction traffic over HTTP, ingests fraud/legit
// feedback, refines its rules in place, and hot-swaps every published
// version atomically. See DESIGN.md §9 for the serving architecture.
//
// Usage:
//
//	rudolfd [-addr 127.0.0.1:8080] [-schema schema.json -rules rules.txt]
//	        [-history history.json | -data-dir state/ | -follow URL]
//	        [-workers N] [-max-batch N] [-drain 10s]
//	        [-fsync always|interval|never] [-fsync-interval 100ms]
//	        [-snapshot-interval 1m] [-wal-segment-bytes N]
//	        [-log-format text|json] [-log-level info]
//	        [-debug-addr 127.0.0.1:6060] [-trace-capacity N]
//	        [-slow-ring N] [-slow-floor 250ms]
//	        [-audit-ring N] [-audit-sample N] [-drift-half-life 5m]
//	        [-rule-label-cap N]
//	        [-alerts alerts.txt] [-alert-interval 15s] [-alert-webhook URL]
//
// Without -schema, the daemon boots on the synthetic financial-institute
// schema with the generated incumbent rule set (-size, -seed), which is the
// zero-config path cmd/loadgen and `make smoke` exercise.
//
// Endpoints: POST /v1/score, GET+POST /v1/rules, POST /v1/feedback,
// POST /v1/refine, GET /v1/stats, GET /v1/schema, GET /v1/status,
// GET /v1/trace, GET /v1/debug/slow, GET /v1/debug/state,
// GET /v1/rules/health, GET /v1/audit, GET+POST /v1/alerts,
// the replication surface
// GET /v1/wal/segments, GET /v1/wal/snapshot and GET /v1/wal/stream
// (durable leaders only), plus the unversioned infra endpoints
// GET /healthz, GET /readyz, GET /metrics.
// Legacy unversioned API paths answer 308 redirects to their /v1
// successors. Published rules (POST /v1/rules and -rules files) use the
// textual rule language documented in README.md ("The rule language"),
// including the windowed velocity atoms (COUNT(user, 10m) >= 5) when the
// schema declares a time attribute; under a windowed rule set the daemon
// observes every scored transaction into the sliding-window aggregate
// store (DESIGN.md §14).
//
// The hot path is always observable (DESIGN.md §15): per-stage latency
// histograms on /metrics, and a tail-sampled slow-request ring — requests
// slower than a live p99-tracking threshold (or the -slow-floor) keep their
// full span tree for GET /v1/debug/slow. GET /v1/debug/state consolidates
// trace/window/WAL/capture/runtime introspection into one JSON document.
//
// The daemon also alerts on its own telemetry (DESIGN.md §17): a built-in
// alert engine periodically evaluates declarative threshold rules — over
// the /metrics series (delta-window quantiles and rates), the per-rule
// health signals of GET /v1/rules/health, and the replication gauges — and
// drives each alert through pending → firing → resolved with for-duration
// hysteresis. GET /v1/alerts serves the live readout (?refresh=1 evaluates
// on demand), POST /v1/alerts installs a replacement rule set node-locally
// on any role, /metrics exports ALERTS{name,severity,state} gauges, and
// -alert-webhook streams firing/resolved transitions as JSON POSTs with
// bounded queueing and capped-backoff retries. -alerts loads a rule file
// (one rule per line, e.g.
// `alert slo severity=page for=1m: p99(rudolf_stage_duration_seconds{stage="eval"}) > 5ms`);
// without it a conservative compiled-in SLO set is active.
//
// -debug-addr opens a second, loopback-only listener exposing
// net/http/pprof (/debug/pprof/...), kept off the scoring port so profiling
// can never be reached through the service's ingress.
//
// -data-dir makes the serving state durable: analyst feedback and rule-set
// publishes are appended to a write-ahead log before they are acknowledged,
// periodic snapshots bound replay time, and a restart (graceful or kill -9)
// replays snapshot+WAL before the listener accepts traffic, so /readyz
// never reports ready with half-restored state. SIGINT/SIGTERM drains
// gracefully: /readyz flips to 503, in-flight requests finish, the durable
// state is flushed (or, without -data-dir, -history is written back).
//
// -follow <leader-url> runs the daemon as a read-only replication follower
// (DESIGN.md §16): it fetches the schema from the leader, bootstraps from
// the leader's newest snapshot, tails its WAL stream, and serves /v1/score,
// GET /v1/rules and the observability endpoints at the leader's exact rule
// version (identical /v1/rules ETags). Mutating requests answer 403 with
// code "read_only" and a Location header to the leader. /readyz stays 503
// until replay catches up to the leader's position; GET /v1/status reports
// the node's role either way. If the leader prunes past the follower's
// position the process exits non-zero — restart it to re-bootstrap.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	rudolf "repro"
	"repro/internal/cli"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		addrFile    = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
		schemaPath  = flag.String("schema", "", "schema JSON (empty: the built-in synthetic FI schema)")
		rulesPath   = flag.String("rules", "", "rule file (empty: the FI's generated incumbent rules)")
		histPath    = flag.String("history", "", "JSON rule history to continue and persist on shutdown")
		dataDir     = flag.String("data-dir", "", "durable state directory (WAL + snapshots); replayed on boot")
		followURL   = flag.String("follow", "", "run as a read-only replication follower of the leader at this base URL (e.g. http://leader:8080)")
		fsync       = flag.String("fsync", "", "WAL fsync policy: always, interval or never (default always; requires -data-dir)")
		fsyncIvl    = flag.Duration("fsync-interval", 0, "flush period under -fsync interval (0: default)")
		snapIvl     = flag.Duration("snapshot-interval", 0, "periodic snapshot interval (0: default; negative: only on shutdown)")
		walSegBytes = flag.Int64("wal-segment-bytes", 0, "WAL segment rotation threshold (0: default)")
		size        = flag.Int("size", 2000, "synthetic dataset size (when -schema is empty)")
		seed        = flag.Int64("seed", 1, "synthetic dataset seed")
		workers     = flag.Int("workers", 0, "concurrent scoring evaluations (0: 2x GOMAXPROCS)")
		maxBatch    = flag.Int("max-batch", 0, "max transactions per request (0: default)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")
		logFormat   = flag.String("log-format", "text", "log format: text or json")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn or error")
		debugAddr   = flag.String("debug-addr", "", "separate listener for net/http/pprof (empty: disabled)")
		traceCap    = flag.Int("trace-capacity", 0, "span ring-buffer capacity served by GET /v1/trace (0: default)")
		slowRing    = flag.Int("slow-ring", 0, "tail-sampled slow-request ring capacity served by GET /v1/debug/slow (0: default; negative: disabled)")
		slowFloor   = flag.Duration("slow-floor", 0, "promote any request at least this slow into the slow ring (0: adaptive p99 only)")
		auditRing   = flag.Int("audit-ring", 0, "sampled decision audit ring capacity served by GET /v1/audit (0: default; negative: disabled)")
		auditSample = flag.Int("audit-sample", 0, "audit 1-in-N decision sampling rate (0: default; 1: every decision)")
		driftHalf   = flag.Duration("drift-half-life", 0, "EWMA half-life for per-rule fire-rate drift in GET /v1/rules/health (0: default)")
		ruleLblCap  = flag.Int("rule-label-cap", 0, "max per-rule metric label series before collapsing to rule=\"other\" (0: default; negative: unbounded)")
		alertsPath  = flag.String("alerts", "", "declarative alert-rule file (empty: the compiled-in SLO defaults)")
		alertIvl    = flag.Duration("alert-interval", 0, "alert evaluation period (0: default 15s; negative: on-demand only via GET /v1/alerts?refresh=1)")
		alertHook   = flag.String("alert-webhook", "", "POST firing/resolved alert transitions as JSON to this URL")
	)
	flag.Parse()

	logger, err := cli.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fatal(err)
	}
	slog.SetDefault(logger)

	cfg, err := cli.ServeOptions{
		SchemaPath:       *schemaPath,
		RulesPath:        *rulesPath,
		HistoryPath:      *histPath,
		DataDir:          *dataDir,
		FollowURL:        *followURL,
		Fsync:            *fsync,
		FsyncInterval:    *fsyncIvl,
		SnapshotInterval: *snapIvl,
		WALSegmentBytes:  *walSegBytes,
		Size:             *size,
		Seed:             *seed,
		Workers:          *workers,
		MaxBatch:         *maxBatch,
		Drain:            *drain,
		TraceCapacity:    *traceCap,
		SlowRing:         *slowRing,
		SlowFloor:        *slowFloor,
		AuditRing:        *auditRing,
		AuditSample:      *auditSample,
		DriftHalfLife:    *driftHalf,
		RuleLabelCap:     *ruleLblCap,
		AlertsPath:       *alertsPath,
		AlertInterval:    *alertIvl,
		AlertWebhook:     *alertHook,
		Logger:           logger,
	}.ServerConfig()
	if err != nil {
		fatal(err)
	}

	srv, err := rudolf.NewServer(cfg)
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	logger.Info("listening", "addr", bound, "version", srv.Version(), "rules", srv.Rules().Len())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}

	if *debugAddr != "" {
		stopDebug, err := startDebugServer(*debugAddr, logger)
		if err != nil {
			fatal(err)
		}
		defer stopDebug()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Follower mode: replicate from the leader next to the HTTP listener.
	// Replication errors are unrecoverable in place (e.g. the leader pruned
	// past our position, so the state must be re-bootstrapped): initiate the
	// same graceful drain a signal would, then exit non-zero so a supervisor
	// restarts the process into a clean bootstrap.
	var followErr error
	if *followURL != "" {
		go func() {
			if err := srv.Follow(ctx); err != nil {
				logger.Error("replication failed", "leader", *followURL, "err", err)
				followErr = err
				stop()
			}
		}()
	}

	if err := srv.Serve(ctx, ln); err != nil {
		fatal(err)
	}
	logger.Info("drained")
	if followErr != nil {
		fatal(fmt.Errorf("replication: %w", followErr))
	}

	if *histPath != "" {
		if err := cli.SaveHistory(*histPath, srv.History()); err != nil {
			fatal(err)
		}
		logger.Info("history saved", "versions", srv.History().Len(), "path", *histPath)
	}
}

// startDebugServer exposes net/http/pprof on its own listener, so profiling
// endpoints never share a port with the scoring traffic. The default
// http.DefaultServeMux is deliberately avoided: only the pprof routes are
// mounted, nothing else can leak onto the debug port.
func startDebugServer(addr string, logger *slog.Logger) (stop func(), err error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug listener: %w", err)
	}
	hs := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	logger.Info("pprof debug server listening", "addr", ln.Addr().String())
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Error("debug server", "err", err)
		}
	}()
	return func() { hs.Close() }, nil //nolint:errcheck // best-effort teardown
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rudolfd:", err)
	os.Exit(1)
}
