// Command experiments regenerates the paper's evaluation: every figure of
// Figure 3 plus the in-text results and the ablations, printed as the tables
// the plots are drawn from (see EXPERIMENTS.md for the recorded output).
//
// Usage:
//
//	experiments              # everything
//	experiments -fig 3b      # one figure: 3a 3b 3c 3d 3e 3f mix novice hops latency rudolfs ablations
//	experiments -size 10000 -repeats 5 -seed 3
//	experiments -traces traces/   # also write a Chrome trace per figure run
//
// With -traces DIR every figure run records its refinement sessions (rounds,
// expert queries, capture rebinds) into DIR/<fig>.json, a Chrome trace_event
// file loadable in ui.perfetto.dev — the timeline behind the printed table.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/experiment"
	"repro/internal/trace"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "which experiment to run")
		report    = flag.String("report", "", "write a markdown paper-vs-measured report to this path and exit")
		size      = flag.Int("size", 5000, "dataset size")
		repeats   = flag.Int("repeats", 3, "datasets to average over")
		seed      = flag.Int64("seed", 0, "base random seed")
		tracesDir = flag.String("traces", "", "write a Chrome trace per figure run to this directory")
	)
	flag.Parse()

	setup := experiment.Setup{
		Data:    datagen.Config{Size: *size, Seed: *seed},
		Repeats: *repeats,
		Seed:    *seed,
	}
	if *tracesDir != "" {
		if err := os.MkdirAll(*tracesDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	runners := map[string]func(experiment.Setup){
		"3a": func(s experiment.Setup) { experiment.Fig3a(s).Render(os.Stdout) },
		"3b": func(s experiment.Setup) { experiment.Fig3b(s).Render(os.Stdout) },
		"3c": func(s experiment.Setup) {
			sizes := []int{*size / 5, *size / 2, *size, *size * 2}
			experiment.Fig3c(s, sizes).Render(os.Stdout)
		},
		"3d": func(s experiment.Setup) {
			experiment.Fig3d(s, []float64{0.5, 1.0, 1.5, 2.5}).Render(os.Stdout)
		},
		"3e": func(s experiment.Setup) {
			experiment.Fig3e(s, []float64{0.5, 1.0, 1.5, 2.5}).Render(os.Stdout)
		},
		"3f":     renderFig3f,
		"mix":    renderMix,
		"novice": renderNovice,
		"hops": func(s experiment.Setup) {
			experiment.HopSweep(s, []float64{10, 15, 20}).Render(os.Stdout)
		},
		"latency": func(s experiment.Setup) {
			fmt.Printf("proposal latency: %v (paper: at most one second)\n", experiment.ProposalLatency(s))
		},
		"rudolfs": renderRudolfS,
		"fleet": func(s experiment.Setup) {
			experiment.RenderFleet(os.Stdout, experiment.Fleet(s, 15, *size))
		},
		"ablations": renderAblations,
	}
	order := []string{"3a", "3b", "3c", "3d", "3e", "3f", "mix", "novice", "hops", "latency", "rudolfs", "fleet", "ablations"}

	// runFig runs one figure, recording (and dumping) a trace when -traces is
	// set: each figure gets its own tracer so traces/<fig>.json is exactly
	// that figure's refinement timeline.
	runFig := func(id string, fn func(experiment.Setup)) {
		s := setup
		var tr *trace.Tracer
		if *tracesDir != "" {
			tr = trace.New(trace.Options{Capacity: 1 << 16})
			s.Tracer = tr
		}
		fn(s)
		if tr != nil {
			path := filepath.Join(*tracesDir, id+".json")
			if err := writeTrace(path, tr); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "experiments: trace written to %s (%d spans, %d dropped)\n",
				path, tr.Len(), tr.Dropped())
		}
	}

	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		experiment.Report(f, setup)
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "report written to", *report)
		return
	}

	if *fig == "all" {
		for _, id := range order {
			fmt.Printf("\n===== %s =====\n", id)
			runFig(id, runners[id])
		}
		return
	}
	id := strings.ToLower(*fig)
	run, ok := runners[id]
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown figure %q (choose from %s, all)\n",
			*fig, strings.Join(order, " "))
		os.Exit(2)
	}
	runFig(id, run)
}

// writeTrace dumps one figure's tracer as a Chrome trace_event JSON file.
func writeTrace(path string, tr *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChromeTo(f, tr); err != nil {
		f.Close() //nolint:errcheck // write error takes precedence
		return err
	}
	return f.Close()
}

func renderFig3f(setup experiment.Setup) {
	rows := experiment.Fig3f(setup, 50, 3600)
	fmt.Println("Figure 3f: expert time to fix up to 50 problematic transactions (1h session)")
	fmt.Printf("%-14s  %5s  %6s  %7s  %9s  %8s\n", "method", "fixed", "asked", "rounds", "seconds", "sec/round")
	for _, r := range rows {
		fmt.Printf("%-14s  %5d  %6d  %7d  %9.0f  %8.0f\n",
			r.Method, r.FixesCompleted, r.FixesAsked, r.Rounds, r.Seconds, r.SecondsPerRound)
	}
}

func renderMix(setup experiment.Setup) {
	mix := experiment.ModificationMix(setup)
	fmt.Println("Modification mix (paper: ~75% condition refinements, ~20% rule splits, ~5% rule additions)")
	kinds := make([]cost.ModKind, 0, len(mix))
	for k := range mix {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return mix[kinds[i]] > mix[kinds[j]] })
	for _, k := range kinds {
		fmt.Printf("  %-24s %5.1f%%\n", k, mix[k])
	}
}

func renderNovice(setup experiment.Setup) {
	r := experiment.NoviceStudy(setup)
	fmt.Println("Novice study (final % misclassified; paper: novices+RUDOLF ≈ experts − 5%, ≫ novices alone)")
	fmt.Printf("  expert + RUDOLF: %6.2f%%\n", r.ExpertRudolf)
	fmt.Printf("  novice + RUDOLF: %6.2f%%\n", r.NoviceRudolf)
	fmt.Printf("  novice alone:    %6.2f%%\n", r.NoviceAlone)
}

func renderRudolfS(setup experiment.Setup) {
	r := experiment.RudolfS(setup)
	fmt.Println("RUDOLF-s study (final % misclassified; paper: RUDOLF-s ≈ fully-manual ≈ RUDOLF⁻)")
	for _, id := range []experiment.MethodID{
		experiment.MethodRudolf, experiment.MethodRudolfS,
		experiment.MethodManual, experiment.MethodRudolfMinus,
	} {
		fmt.Printf("  %-14s %6.2f%%\n", id, r[id])
	}
}

func renderAblations(setup experiment.Setup) {
	fmt.Println("Ablation: clustering algorithm (final % misclassified)")
	for name, err := range experiment.AblationClustering(setup) {
		fmt.Printf("  %-20s %6.2f%%\n", name, err)
	}
	fmt.Println()
	experiment.AblationTopK(setup, []int{1, 2, 3, 5}).Render(os.Stdout)
	fmt.Println()
	experiment.AblationWeights(setup, []float64{0, 0.5, 1, 2, 5}).Render(os.Stdout)
	fmt.Println()
	fmt.Println("Ablation: modification cost model (final % misclassified)")
	for name, err := range experiment.AblationWeightedCost(setup) {
		fmt.Printf("  %-10s %6.2f%%\n", name, err)
	}
}
