// Command datagen generates a synthetic financial-institute transaction
// dataset (see DESIGN.md §3 for how it substitutes the paper's proprietary
// data) and writes it as CSV, together with the FI's incumbent rule set and
// the ground-truth pattern rules.
//
// Usage:
//
//	datagen -size 5000 -fraud 1.5 -seed 1 \
//	        -out data.csv -rules-out rules.txt -truth-out truth.txt
package main

import (
	"flag"
	"fmt"
	"os"

	rudolf "repro"
)

func main() {
	var (
		size      = flag.Int("size", 5000, "number of transactions")
		fraud     = flag.Float64("fraud", 1.5, "fraud percentage (paper: 0.5-2.5)")
		days      = flag.Int("days", 30, "observation period in days")
		patterns  = flag.Int("patterns", 8, "number of planted attack patterns")
		seed      = flag.Int64("seed", 1, "random seed")
		minRules  = flag.Int("min-rules", 0, "pad the initial rule set to at least this many rules")
		out       = flag.String("out", "data.csv", "output CSV path ('-' for stdout)")
		rulesOut  = flag.String("rules-out", "", "optional path for the incumbent rule set")
		truthOut  = flag.String("truth-out", "", "optional path for the ground-truth pattern rules")
		schemaOut = flag.String("schema-out", "", "optional path for the schema JSON (for cmd/rudolf -schema)")
	)
	flag.Parse()

	ds := rudolf.GenerateDataset(rudolf.DataConfig{
		Size: *size, FraudPct: *fraud, Days: *days, Patterns: *patterns, Seed: *seed,
	})
	if err := writeData(ds, *out); err != nil {
		fatal(err)
	}
	if *rulesOut != "" {
		if err := writeRules(*rulesOut, ds.Schema, rudolf.InitialRules(ds, *minRules, *seed)); err != nil {
			fatal(err)
		}
	}
	if *truthOut != "" {
		if err := writeRules(*truthOut, ds.Schema, ds.Truth); err != nil {
			fatal(err)
		}
	}
	if *schemaOut != "" {
		f, err := os.Create(*schemaOut)
		if err != nil {
			fatal(err)
		}
		if err := ds.Schema.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	frauds := 0
	for _, f := range ds.TrueFraud {
		if f {
			frauds++
		}
	}
	fmt.Fprintf(os.Stderr, "generated %d transactions (%d fraudulent, %.2f%%), %d patterns\n",
		ds.Rel.Len(), frauds, 100*float64(frauds)/float64(ds.Rel.Len()), len(ds.Patterns))
}

func writeData(ds *rudolf.Dataset, path string) error {
	if path == "-" {
		return ds.Rel.WriteCSV(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ds.Rel.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

func writeRules(path string, s *rudolf.Schema, rs *rudolf.RuleSet) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rudolf.WriteRules(f, s, rs); err != nil {
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
