package index_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/index"
	"repro/internal/testutil"
)

// TestEvalAttributedIntoDifferential proves the buffer-backed eager path is
// output-identical to EvalAttributed across randomized instances — and, by
// reusing ONE AttributionBuffer across every seed, that a dirty buffer
// carrying a previous schema/relation/rule-set's arenas never leaks into the
// next result.
func TestEvalAttributedIntoDifferential(t *testing.T) {
	var buf index.AttributionBuffer // deliberately shared across all seeds
	for seed := int64(0); seed < 80; seed++ {
		rng := rand.New(rand.NewSource(9000 + seed))
		s := testutil.RandomSchema(rng)
		rel := testutil.RandomRelation(rng, s, rng.Intn(250))
		rs := testutil.RandomRuleSet(rng, s, rng.Intn(8))
		ev := index.Compile(s, rs)

		wantSet, want := ev.EvalAttributed(rel)
		gotSet := ev.EvalAttributedInto(rel, &buf)
		if !gotSet.Equal(wantSet) {
			t.Fatalf("seed %d: EvalAttributedInto union disagrees with EvalAttributed\nrules:\n%s", seed, rs.Format(s))
		}
		if len(buf.Tuples) != len(want) {
			t.Fatalf("seed %d: %d buffered attributions, want %d", seed, len(buf.Tuples), len(want))
		}
		for i := range want {
			if fmt.Sprint(buf.Tuples[i]) != fmt.Sprint(want[i]) {
				t.Fatalf("seed %d tuple %d:\n into: %v\neager: %v", seed, i, buf.Tuples[i], want[i])
			}
		}
	}
}

// TestEvalAttributedLazyDifferential proves the lazy path against the eager
// one: identical union bitset, identical Matched lists and Matched/Empty
// flags, byte-identical check breakdowns for every rule that fired, nil
// Checks (never stale data) for rules that did not — and that AttributeRule
// re-derives exactly the eager breakdown for those on demand.
func TestEvalAttributedLazyDifferential(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(11000 + seed))
			s := testutil.RandomSchema(rng)
			rel := testutil.RandomRelation(rng, s, rng.Intn(250))
			rs := testutil.RandomRuleSet(rng, s, rng.Intn(8))
			ev := index.Compile(s, rs)

			wantSet, want := ev.EvalAttributed(rel)
			var buf index.AttributionBuffer
			gotSet := ev.EvalAttributedLazyInto(rel, &buf)
			if !gotSet.Equal(wantSet) {
				t.Fatalf("lazy union disagrees with eager\nrules:\n%s", rs.Format(s))
			}
			scratch := make([]index.CheckAttribution, 0, ev.MaxRuleChecks())
			for i := range want {
				got := buf.Tuples[i]
				if fmt.Sprint(got.Matched) != fmt.Sprint(want[i].Matched) {
					t.Fatalf("tuple %d: lazy matched %v, eager %v", i, got.Matched, want[i].Matched)
				}
				if len(got.Rules) != len(want[i].Rules) {
					t.Fatalf("tuple %d: %d lazy rules, %d eager", i, len(got.Rules), len(want[i].Rules))
				}
				for ri := range want[i].Rules {
					lr, er := got.Rules[ri], want[i].Rules[ri]
					if lr.Rule != er.Rule || lr.Matched != er.Matched || lr.Empty != er.Empty {
						t.Fatalf("tuple %d rule %d: lazy %+v, eager %+v", i, ri, lr, er)
					}
					if er.Matched {
						// Fired rules carry the full breakdown, byte-identical.
						if fmt.Sprint(lr.Checks) != fmt.Sprint(er.Checks) {
							t.Fatalf("tuple %d rule %d checks:\n lazy: %v\neager: %v", i, ri, lr.Checks, er.Checks)
						}
						continue
					}
					if lr.Checks != nil {
						t.Fatalf("tuple %d rule %d: non-matched lazy rule carries checks %v", i, ri, lr.Checks)
					}
					// On-demand re-derivation reproduces the eager breakdown —
					// margins, order and Matched identical — through both the
					// allocating and the caller-scratch form.
					if re := ev.AttributeRule(ri, rel, i); fmt.Sprint(re) != fmt.Sprint(er) {
						t.Fatalf("tuple %d rule %d: AttributeRule %v, eager %v", i, ri, re, er)
					}
					if re := ev.AttributeRuleAppend(ri, rel, i, scratch[:0]); fmt.Sprint(re) != fmt.Sprint(er) {
						t.Fatalf("tuple %d rule %d: AttributeRuleAppend %v, eager %v", i, ri, re, er)
					}
				}
			}
		})
	}
}

// TestEvalFirstIntoDifferential pins EvalFirstInto to EvalFirst under dst
// reuse across differently-sized relations.
func TestEvalFirstIntoDifferential(t *testing.T) {
	var dst []int32
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(13000 + seed))
		s := testutil.RandomSchema(rng)
		rel := testutil.RandomRelation(rng, s, rng.Intn(300))
		rs := testutil.RandomRuleSet(rng, s, rng.Intn(8))
		ev := index.Compile(s, rs)
		want := ev.EvalFirst(rel)
		dst = ev.EvalFirstInto(rel, dst)
		if len(dst) != len(want) {
			t.Fatalf("seed %d: EvalFirstInto len %d, want %d", seed, len(dst), len(want))
		}
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("seed %d tuple %d: EvalFirstInto %d, EvalFirst %d", seed, i, dst[i], want[i])
			}
		}
	}
}

// TestAttributionBufferMutationReuse drives the shared buffer through
// in-place evaluator mutations (Add/Replace/Remove change the per-tuple
// check geometry) and checks every evaluation against the eager path.
func TestAttributionBufferMutationReuse(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(15000 + seed))
		s := testutil.RandomSchema(rng)
		rel := testutil.RandomRelation(rng, s, 50+rng.Intn(100))
		rs := testutil.RandomRuleSet(rng, s, 1+rng.Intn(5))
		ev := index.Compile(s, rs)
		var buf index.AttributionBuffer
		for step := 0; step < 10; step++ {
			switch op := rng.Intn(3); {
			case op == 0 || rs.Len() == 0:
				r := testutil.RandomRule(rng, s)
				rs.Add(r)
				ev.Add(r)
			case op == 1:
				i := rng.Intn(rs.Len())
				r := testutil.RandomRule(rng, s)
				rs.Replace(i, r)
				ev.Replace(i, r)
			default:
				i := rng.Intn(rs.Len())
				rs.Remove(i)
				ev.Remove(i)
			}
			_, want := ev.EvalAttributed(rel)
			ev.EvalAttributedInto(rel, &buf)
			for i := range want {
				if fmt.Sprint(buf.Tuples[i]) != fmt.Sprint(want[i]) {
					t.Fatalf("seed %d step %d tuple %d: buffered attribution diverged after mutation", seed, step, i)
				}
			}
		}
	}
}

// TestAttributionIntoAllocs pins the steady-state allocation budget of the
// buffer-backed paths: after one warm-up call, re-evaluating the same-shaped
// relation must cost only the result bitset and the chunk goroutines — no
// per-rule or per-tuple allocations (the 2.3M-allocs/op regression this
// buffer design removed; the committed BENCH_core.json pins the benchmark
// form of the same budget).
func TestAttributionIntoAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	s := testutil.RandomSchema(rng)
	rel := testutil.RandomRelation(rng, s, 256)
	rs := testutil.RandomRuleSet(rng, s, 6)
	ev := index.Compile(s, rs)
	ev.Workers = 2

	var buf index.AttributionBuffer
	ev.EvalAttributedInto(rel, &buf) // warm the arenas
	// Budget: bitset.New (2 allocs) + a closure per parallel chunk + the
	// WaitGroup-spawned goroutines. 16 is a loose roof far under "per tuple".
	if n := testing.AllocsPerRun(20, func() { ev.EvalAttributedInto(rel, &buf) }); n > 16 {
		t.Fatalf("EvalAttributedInto steady state = %.0f allocs/run, want <= 16", n)
	}
	if n := testing.AllocsPerRun(20, func() { ev.EvalAttributedLazyInto(rel, &buf) }); n > 16 {
		t.Fatalf("EvalAttributedLazyInto steady state = %.0f allocs/run, want <= 16", n)
	}
	first := ev.EvalFirstInto(rel, nil)
	if n := testing.AllocsPerRun(20, func() { first = ev.EvalFirstInto(rel, first) }); n > 8 {
		t.Fatalf("EvalFirstInto steady state = %.0f allocs/run, want <= 8", n)
	}
	scratch := make([]index.CheckAttribution, 0, ev.MaxRuleChecks())
	if n := testing.AllocsPerRun(50, func() { ev.AttributeRuleAppend(0, rel, 0, scratch[:0]) }); n > 0 {
		t.Fatalf("AttributeRuleAppend with scratch = %.0f allocs/run, want 0", n)
	}
}

// FuzzEvalAttributedLazy drives the lazy-vs-eager equivalence from the
// fuzzer: every int64 seed is a complete random instance.
func FuzzEvalAttributedLazy(f *testing.F) {
	for _, seed := range []int64{0, 1, 7, 42, 1234, -99} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		s := testutil.RandomSchema(rng)
		rel := testutil.RandomRelation(rng, s, rng.Intn(200))
		rs := testutil.RandomRuleSet(rng, s, rng.Intn(6))
		ev := index.Compile(s, rs)
		wantSet, want := ev.EvalAttributed(rel)
		var buf index.AttributionBuffer
		if got := ev.EvalAttributedLazyInto(rel, &buf); !got.Equal(wantSet) {
			t.Fatalf("lazy union diverged for seed %d", seed)
		}
		for i := range want {
			got := buf.Tuples[i]
			if fmt.Sprint(got.Matched) != fmt.Sprint(want[i].Matched) {
				t.Fatalf("seed %d tuple %d: matched diverged", seed, i)
			}
			for ri := range want[i].Rules {
				lr, er := got.Rules[ri], want[i].Rules[ri]
				if lr.Matched != er.Matched || lr.Empty != er.Empty {
					t.Fatalf("seed %d tuple %d rule %d: flags diverged", seed, i, ri)
				}
				if er.Matched && fmt.Sprint(lr.Checks) != fmt.Sprint(er.Checks) {
					t.Fatalf("seed %d tuple %d rule %d: checks diverged", seed, i, ri)
				}
				if !er.Matched {
					if re := ev.AttributeRule(ri, rel, i); fmt.Sprint(re) != fmt.Sprint(er) {
						t.Fatalf("seed %d tuple %d rule %d: AttributeRule diverged", seed, i, ri)
					}
				}
			}
		}
	})
}
