package index

import (
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/order"
	"repro/internal/paperdata"
	"repro/internal/relation"
	"repro/internal/rules"
)

// TestEvalMatchesReference: the compiled evaluator agrees with the
// reference Set.Eval on generated FI datasets and rule sets.
func TestEvalMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		ds := datagen.Generate(datagen.Config{Size: 3000, Seed: seed})
		rs := datagen.InitialRules(ds, 25, seed)
		want := rs.Eval(ds.Rel)
		for _, workers := range []int{0, 1, 3} {
			e := Compile(ds.Schema, rs)
			e.Workers = workers
			got := e.Eval(ds.Rel)
			if !got.Equal(want) {
				t.Fatalf("seed %d workers %d: compiled eval differs from reference", seed, workers)
			}
		}
	}
}

// TestEvalScoreThresholds: compiled rules honor minimum-score thresholds.
func TestEvalScoreThresholds(t *testing.T) {
	ds := datagen.Generate(datagen.Config{Size: 1000, Seed: 5})
	rs := rules.NewSet(rules.NewRule(ds.Schema).SetMinScore(800))
	want := rs.Eval(ds.Rel)
	got := Compile(ds.Schema, rs).Eval(ds.Rel)
	if !got.Equal(want) {
		t.Fatal("score-threshold evaluation differs from reference")
	}
	if got.Count() == 0 || got.Count() == ds.Rel.Len() {
		t.Fatalf("degenerate capture count %d", got.Count())
	}
}

// TestEvalEmptyRule: rules with empty conditions never match.
func TestEvalEmptyRule(t *testing.T) {
	s := paperdata.Schema()
	rel := paperdata.Transactions(s)
	empty := rules.NewRule(s).SetCond(0, rules.NumericCond(order.Empty()))
	e := Compile(s, rules.NewSet(empty))
	if got := e.Eval(rel).Count(); got != 0 {
		t.Errorf("empty rule captured %d", got)
	}
	if e.Matches(rel, 0) {
		t.Error("Matches true for empty rule")
	}
}

// TestEvalTrivialRule: the trivial rule captures everything.
func TestEvalTrivialRule(t *testing.T) {
	s := paperdata.Schema()
	rel := paperdata.Transactions(s)
	e := Compile(s, rules.NewSet(rules.NewRule(s)))
	if got := e.Eval(rel).Count(); got != rel.Len() {
		t.Errorf("trivial rule captured %d of %d", got, rel.Len())
	}
	if e.RuleCount() != 1 {
		t.Errorf("RuleCount = %d", e.RuleCount())
	}
}

// TestMatchesPointQuery agrees with the reference per-transaction check.
func TestMatchesPointQuery(t *testing.T) {
	ds := datagen.Generate(datagen.Config{Size: 800, Seed: 9})
	rs := datagen.InitialRules(ds, 10, 9)
	e := Compile(ds.Schema, rs)
	for i := 0; i < ds.Rel.Len(); i++ {
		want := len(rs.CapturingRulesAt(ds.Rel, i)) > 0
		if got := e.Matches(ds.Rel, i); got != want {
			t.Fatalf("Matches(%d) = %v, want %v", i, got, want)
		}
	}
}

// TestSnapshotSemantics: changes to the rule set after Compile are not
// reflected.
func TestSnapshotSemantics(t *testing.T) {
	s := paperdata.Schema()
	rel := paperdata.Transactions(s)
	rs := rules.NewSet(rules.MustParse(s, "amount >= $100"))
	e := Compile(s, rs)
	before := e.Eval(rel).Count()
	rs.Add(rules.NewRule(s)) // would capture everything
	if got := e.Eval(rel).Count(); got != before {
		t.Error("evaluator reflected post-compile rule set changes")
	}
}

// TestEvalRandomizedAgainstBruteForce stresses odd sizes and chunk edges.
func TestEvalRandomizedAgainstBruteForce(t *testing.T) {
	s := paperdata.Schema()
	rng := rand.New(rand.NewSource(77))
	typeLeaves := s.Attr(2).Ontology.Leaves()
	locLeaves := s.Attr(3).Ontology.Leaves()
	for trial := 0; trial < 10; trial++ {
		rel := relation.New(s)
		n := 1 + rng.Intn(300) // deliberately not a multiple of 64
		for i := 0; i < n; i++ {
			rel.MustAppend(relation.Tuple{
				int64(rng.Intn(1440)), int64(rng.Intn(1000)),
				int64(typeLeaves[rng.Intn(len(typeLeaves))]),
				int64(locLeaves[rng.Intn(len(locLeaves))]),
			}, relation.Unlabeled, int16(rng.Intn(1001)))
		}
		rs := rules.NewSet()
		for k := 0; k < 1+rng.Intn(5); k++ {
			r := rules.NewRule(s)
			lo := int64(rng.Intn(1440))
			r.SetCond(0, rules.NumericCond(order.Interval{Lo: lo, Hi: lo + int64(rng.Intn(300))}))
			if rng.Intn(2) == 0 {
				r.SetCond(2, rules.ConceptCond(typeLeaves[rng.Intn(len(typeLeaves))]))
			}
			if rng.Intn(3) == 0 {
				r.SetMinScore(int16(rng.Intn(1001)))
			}
			rs.Add(r)
		}
		want := rs.Eval(rel)
		got := Compile(s, rs).Eval(rel)
		if !got.Equal(want) {
			t.Fatalf("trial %d: mismatch", trial)
		}
	}
}
