// Package index provides a compiled, parallel evaluator for rule sets over
// large transaction relations. The straightforward Set.Eval checks every
// condition through the generic ontology machinery; the paper's production
// setting (100K-10M transactions per FI, rules re-evaluated after every
// refinement round) wants better. The evaluator compiles each rule once —
// resolving categorical conditions to leaf bitsets and ordering conditions
// by estimated selectivity so the cheapest rejections come first — and
// evaluates chunks of the relation on parallel workers.
//
// The evaluator starts as a snapshot — compile it after the rule set changes
// — but it also supports incremental maintenance: Add, Replace and Remove
// mirror the corresponding rules.Set mutations so a caller (notably the
// capture.Cache) can recompile only the one rule an edit touched instead of
// re-snapshotting the whole set.
package index

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/bitset"
	"repro/internal/ontology"
	"repro/internal/relation"
	"repro/internal/rules"
	"repro/internal/trace"
	"repro/internal/window"
)

// compiledCond is one condition in evaluation-ready form.
type compiledCond struct {
	attr int
	// numeric: value must lie in [lo, hi].
	isCat  bool
	lo, hi int64
	// categorical: the value's leaf position must be in leaves.
	leaves *bitset.Set
	// concept is the original bound A ≤ concept, retained for the
	// attribution path (ontological margins need the concept, not just its
	// leaf set). Unused during plain evaluation.
	concept ontology.Concept
	// margins caches, per leaf position, the signed ontological margin of
	// this condition for that observed leaf (see attributeCond). Computed at
	// compile time so attribution never walks the ontology DAG per tuple —
	// UpDistance is a BFS that allocates, and the pre-table attribution path
	// paid it per categorical check per tuple.
	margins []int64
	// selectivity estimates the fraction of the domain the condition admits
	// (smaller = more selective = checked earlier).
	selectivity float64
}

// compiledRule is a rule with pre-resolved, selectivity-ordered conditions.
type compiledRule struct {
	conds []compiledCond
	// wins holds the rule's windowed aggregate checks (see window.go),
	// evaluated after the per-tuple conditions against resolved columns.
	wins     []compiledWin
	minScore int16
	// empty marks rules that can never match (an empty condition).
	empty bool
	// emit lists the cond indices in ascending schema-attribute order — the
	// presentation order of the attribution path, precomputed here so
	// attributing a tuple never sorts (each rule holds at most one condition
	// per attribute, so the order is total and stable across recompiles).
	emit []int32
}

// checkCount returns how many CheckAttributions attributing this rule emits
// (every non-trivial condition, every windowed check, plus the optional
// score-threshold check).
func (cr *compiledRule) checkCount() int {
	if cr.empty {
		return 0
	}
	n := len(cr.conds) + len(cr.wins)
	if cr.minScore > 0 {
		n++
	}
	return n
}

// Evaluator is a compiled rule set.
type Evaluator struct {
	schema *relation.Schema
	rules  []compiledRule
	// leafPos maps, per categorical attribute, concept id → leaf position
	// (-1 for non-leaves).
	leafPos map[int][]int
	// winSpecs is the deduplicated, append-only registry of window specs the
	// compiled rules reference (see window.go); compiledWin.spec indexes it.
	winSpecs []window.Spec
	// marginCache shares the immutable attribution margin tables across
	// compiled conditions with the same bound, so incremental Add/Replace of
	// a rule whose concepts were seen before re-derives nothing. Only the
	// single-goroutine compile paths touch it; the parallel attribution
	// workers read the cached slices without writing.
	marginCache map[marginKey][]int64
	// Workers bounds the evaluation parallelism; 0 means GOMAXPROCS.
	Workers int
}

// marginKey identifies one condition bound A ≤ concept for margin caching.
type marginKey struct {
	attr    int
	concept ontology.Concept
}

// Compile builds an evaluator for the rule set. The rule set is snapshotted:
// later changes to it are not reflected.
func Compile(schema *relation.Schema, rs *rules.Set) *Evaluator {
	e := &Evaluator{
		schema:      schema,
		leafPos:     make(map[int][]int),
		marginCache: make(map[marginKey][]int64),
	}
	for i := 0; i < schema.Arity(); i++ {
		a := schema.Attr(i)
		if a.Kind != relation.Categorical {
			continue
		}
		pos := make([]int, a.Ontology.Len())
		for c := range pos {
			if p, ok := a.Ontology.LeafPos(ontology.Concept(c)); ok {
				pos[c] = p
			} else {
				pos[c] = -1
			}
		}
		e.leafPos[i] = pos
	}
	for _, r := range rs.Rules() {
		e.rules = append(e.rules, e.compileRule(r))
	}
	return e
}

func (e *Evaluator) compileRule(r *rules.Rule) compiledRule {
	out := compiledRule{minScore: r.MinScore()}
	e.compileWins(&out, r)
	if out.empty {
		return out
	}
	for i := 0; i < e.schema.Arity(); i++ {
		a := e.schema.Attr(i)
		c := r.Cond(i)
		if c.IsTrivial(a) {
			continue // admits everything: no check needed
		}
		if c.IsEmpty(a) {
			out.empty = true
			return out
		}
		// Selectivity defaults to 1.0 ("admits everything"): a zero-leaf
		// ontology or zero-size domain would otherwise divide by zero and
		// the resulting NaN/Inf poisons the sort.SliceStable ordering below
		// (NaN compares false both ways, so cheap rejections stop coming
		// first — and with NaNs the order depends on the input permutation).
		cc := compiledCond{attr: i, selectivity: 1}
		if a.Kind == relation.Categorical {
			cc.isCat = true
			cc.concept = c.C
			cc.leaves = a.Ontology.LeafSet(c.C)
			if total := len(a.Ontology.Leaves()); total > 0 {
				cc.selectivity = float64(cc.leaves.Count()) / float64(total)
			}
			key := marginKey{attr: i, concept: c.C}
			if m, ok := e.marginCache[key]; ok {
				cc.margins = m
			} else {
				cc.margins = condMargins(a.Ontology, c.C, cc.leaves)
				e.marginCache[key] = cc.margins
			}
		} else {
			cc.lo, cc.hi = c.Iv.Lo, c.Iv.Hi
			if size := a.Domain.Size(); size > 0 {
				cc.selectivity = float64(c.Iv.Size()) / float64(size)
			}
		}
		out.conds = append(out.conds, cc)
	}
	sort.SliceStable(out.conds, func(x, y int) bool {
		return out.conds[x].selectivity < out.conds[y].selectivity
	})
	out.emit = make([]int32, len(out.conds))
	for i := range out.emit {
		out.emit[i] = int32(i)
	}
	sort.Slice(out.emit, func(x, y int) bool {
		return out.conds[out.emit[x]].attr < out.conds[out.emit[y]].attr
	})
	return out
}

// condMargins precomputes the signed ontological margin of condition
// A ≤ concept for every observed leaf of the attribute's ontology, indexed
// by leaf position: a passing leaf's margin is its up-distance to a concept
// containing the bound (specificity to spare), a failing leaf's is the
// negated up-distance the bound would need before admitting it (Equation 1),
// floored at one step. One BFS per leaf at compile time replaces one per
// categorical check per tuple at attribution time.
func condMargins(o *ontology.Ontology, concept ontology.Concept, leaves *bitset.Set) []int64 {
	out := make([]int64, len(o.Leaves()))
	for pos, leaf := range o.Leaves() {
		if leaves.Has(pos) {
			d, _ := o.UpDistance(leaf, concept)
			out[pos] = int64(d)
		} else {
			d, ok := o.UpDistance(concept, leaf)
			if !ok || d < 1 {
				d = 1
			}
			out[pos] = -int64(d)
		}
	}
	return out
}

// CompileUnder is Compile wrapped in an "index.compile" span nested under
// parent (no span when parent is the zero Span — compilation is then
// untraced and free). The capture cache and the serving daemon's publish
// path use it so rule-set compilation shows up on the same track as the
// operation that triggered it.
func CompileUnder(parent trace.Span, schema *relation.Schema, rs *rules.Set) *Evaluator {
	sp := parent.Child("index.compile")
	e := Compile(schema, rs)
	sp.Int("rules", int64(rs.Len()))
	sp.End()
	return e
}

// RuleCount returns the number of compiled rules.
func (e *Evaluator) RuleCount() int { return len(e.rules) }

// Add compiles rule r and appends it, returning its index — the mirror of
// rules.Set.Add for callers maintaining the evaluator incrementally.
func (e *Evaluator) Add(r *rules.Rule) int {
	e.rules = append(e.rules, e.compileRule(r))
	return len(e.rules) - 1
}

// Replace recompiles only the rule at index ri — the mirror of
// rules.Set.Replace.
func (e *Evaluator) Replace(ri int, r *rules.Rule) {
	e.rules[ri] = e.compileRule(r)
}

// Remove deletes the compiled rule at ri, preserving the order of the rest —
// the mirror of rules.Set.Remove.
func (e *Evaluator) Remove(ri int) {
	e.rules = append(e.rules[:ri], e.rules[ri+1:]...)
}

// matches reports whether transaction i satisfies the compiled rule. wc is
// the window-aggregate column table resolved once per evaluation by
// winCols (nil when the evaluator has no windowed conditions).
func (e *Evaluator) matches(cr *compiledRule, rel *relation.Relation, i int, wc [][]int64) bool {
	if cr.empty || rel.Score(i) < cr.minScore {
		return false
	}
	t := rel.Tuple(i)
	for k := range cr.conds {
		c := &cr.conds[k]
		v := t[c.attr]
		if c.isCat {
			pos := e.leafPos[c.attr][v]
			if pos < 0 || !c.leaves.Has(pos) {
				return false
			}
			continue
		}
		if v < c.lo || v > c.hi {
			return false
		}
	}
	if len(cr.wins) > 0 {
		return winMatches(cr, wc, i)
	}
	return true
}

// parallelChunks splits [0, n) into 64-aligned chunks and runs fn over them
// on parallel workers. The 64-alignment means no two workers ever touch the
// same word of a *bitset.Set indexed by transaction, so chunk bodies may
// write per-transaction bits without synchronization.
func (e *Evaluator) parallelChunks(n int, fn func(lo, hi int)) {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	const align = 64
	chunk := (n/workers + align) / align * align
	if chunk < align {
		chunk = align
	}
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Eval returns the set of transactions captured by any rule, equal to
// rules.Set.Eval on the snapshotted rule set but evaluated with compiled
// conditions on parallel workers.
func (e *Evaluator) Eval(rel *relation.Relation) *bitset.Set {
	out := bitset.New(rel.Len())
	wc := e.winCols(rel)
	e.parallelChunks(rel.Len(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for ri := range e.rules {
				if e.matches(&e.rules[ri], rel, i, wc) {
					out.Add(i)
					break
				}
			}
		}
	})
	return out
}

// EvalUnder is Eval wrapped in an "index.eval" chunk-evaluation span nested
// under parent, carrying the row and rule counts. The zero parent Span makes
// it exactly Eval.
func (e *Evaluator) EvalUnder(parent trace.Span, rel *relation.Relation) *bitset.Set {
	sp := parent.Child("index.eval")
	out := e.Eval(rel)
	sp.Int("rows", int64(rel.Len())).Int("rules", int64(len(e.rules))).Int("chunks", int64(e.chunkCount(rel.Len())))
	sp.End()
	return out
}

// EvalPerRuleUnder is EvalPerRule wrapped in an "index.eval_per_rule" span
// nested under parent.
func (e *Evaluator) EvalPerRuleUnder(parent trace.Span, rel *relation.Relation) []*bitset.Set {
	sp := parent.Child("index.eval_per_rule")
	out := e.EvalPerRule(rel)
	sp.Int("rows", int64(rel.Len())).Int("rules", int64(len(e.rules))).Int("chunks", int64(e.chunkCount(rel.Len())))
	sp.End()
	return out
}

// chunkCount reports how many 64-aligned chunks parallelChunks would use
// over n rows (span attribution only).
func (e *Evaluator) chunkCount(n int) int {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	const align = 64
	chunk := (n/workers + align) / align * align
	if chunk < align {
		chunk = align
	}
	return (n + chunk - 1) / chunk
}

// EvalRule evaluates only the compiled rule at ri over the relation,
// returning its capture set — the incremental-recompute primitive of the
// capture cache (one rule changed, so only one bitset must be refreshed).
func (e *Evaluator) EvalRule(ri int, rel *relation.Relation) *bitset.Set {
	out := bitset.New(rel.Len())
	cr := &e.rules[ri]
	wc := e.winCols(rel)
	e.parallelChunks(rel.Len(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if e.matches(cr, rel, i, wc) {
				out.Add(i)
			}
		}
	})
	return out
}

// EvalPerRule returns one capture bitset per compiled rule, computed in a
// single chunk-parallel pass over the relation (cheaper than RuleCount
// separate EvalRule scans: each tuple is loaded once and tested against
// every rule while hot). Chunks are 64-aligned, so workers write disjoint
// words of every per-rule bitset.
func (e *Evaluator) EvalPerRule(rel *relation.Relation) []*bitset.Set {
	out := make([]*bitset.Set, len(e.rules))
	for ri := range out {
		out[ri] = bitset.New(rel.Len())
	}
	wc := e.winCols(rel)
	e.parallelChunks(rel.Len(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for ri := range e.rules {
				if e.matches(&e.rules[ri], rel, i, wc) {
					out[ri].Add(i)
				}
			}
		}
	})
	return out
}

// Matches reports whether transaction i is captured by any compiled rule
// (the point-query form of Eval).
func (e *Evaluator) Matches(rel *relation.Relation, i int) bool {
	wc := e.winCols(rel)
	for ri := range e.rules {
		if e.matches(&e.rules[ri], rel, i, wc) {
			return true
		}
	}
	return false
}
