// Package index provides a compiled, parallel evaluator for rule sets over
// large transaction relations. The straightforward Set.Eval checks every
// condition through the generic ontology machinery; the paper's production
// setting (100K-10M transactions per FI, rules re-evaluated after every
// refinement round) wants better. The evaluator compiles each rule once —
// resolving categorical conditions to leaf bitsets and ordering conditions
// by estimated selectivity so the cheapest rejections come first — and
// evaluates chunks of the relation on parallel workers.
//
// The evaluator is a snapshot: compile it after the rule set changes.
package index

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/bitset"
	"repro/internal/ontology"
	"repro/internal/relation"
	"repro/internal/rules"
)

// compiledCond is one condition in evaluation-ready form.
type compiledCond struct {
	attr int
	// numeric: value must lie in [lo, hi].
	isCat  bool
	lo, hi int64
	// categorical: the value's leaf position must be in leaves.
	leaves *bitset.Set
	// selectivity estimates the fraction of the domain the condition admits
	// (smaller = more selective = checked earlier).
	selectivity float64
}

// compiledRule is a rule with pre-resolved, selectivity-ordered conditions.
type compiledRule struct {
	conds    []compiledCond
	minScore int16
	// empty marks rules that can never match (an empty condition).
	empty bool
}

// Evaluator is a compiled rule set.
type Evaluator struct {
	schema *relation.Schema
	rules  []compiledRule
	// leafPos maps, per categorical attribute, concept id → leaf position
	// (-1 for non-leaves).
	leafPos map[int][]int
	// Workers bounds the evaluation parallelism; 0 means GOMAXPROCS.
	Workers int
}

// Compile builds an evaluator for the rule set. The rule set is snapshotted:
// later changes to it are not reflected.
func Compile(schema *relation.Schema, rs *rules.Set) *Evaluator {
	e := &Evaluator{schema: schema, leafPos: make(map[int][]int)}
	for i := 0; i < schema.Arity(); i++ {
		a := schema.Attr(i)
		if a.Kind != relation.Categorical {
			continue
		}
		pos := make([]int, a.Ontology.Len())
		for c := range pos {
			if p, ok := a.Ontology.LeafPos(ontology.Concept(c)); ok {
				pos[c] = p
			} else {
				pos[c] = -1
			}
		}
		e.leafPos[i] = pos
	}
	for _, r := range rs.Rules() {
		e.rules = append(e.rules, e.compileRule(r))
	}
	return e
}

func (e *Evaluator) compileRule(r *rules.Rule) compiledRule {
	out := compiledRule{minScore: r.MinScore()}
	for i := 0; i < e.schema.Arity(); i++ {
		a := e.schema.Attr(i)
		c := r.Cond(i)
		if c.IsTrivial(a) {
			continue // admits everything: no check needed
		}
		if c.IsEmpty(a) {
			out.empty = true
			return out
		}
		cc := compiledCond{attr: i}
		if a.Kind == relation.Categorical {
			cc.isCat = true
			cc.leaves = a.Ontology.LeafSet(c.C)
			total := len(a.Ontology.Leaves())
			if total > 0 {
				cc.selectivity = float64(cc.leaves.Count()) / float64(total)
			}
		} else {
			cc.lo, cc.hi = c.Iv.Lo, c.Iv.Hi
			cc.selectivity = float64(c.Iv.Size()) / float64(a.Domain.Size())
		}
		out.conds = append(out.conds, cc)
	}
	sort.SliceStable(out.conds, func(x, y int) bool {
		return out.conds[x].selectivity < out.conds[y].selectivity
	})
	return out
}

// RuleCount returns the number of compiled rules.
func (e *Evaluator) RuleCount() int { return len(e.rules) }

// matches reports whether transaction i satisfies the compiled rule.
func (e *Evaluator) matches(cr *compiledRule, rel *relation.Relation, i int) bool {
	if cr.empty || rel.Score(i) < cr.minScore {
		return false
	}
	t := rel.Tuple(i)
	for k := range cr.conds {
		c := &cr.conds[k]
		v := t[c.attr]
		if c.isCat {
			pos := e.leafPos[c.attr][v]
			if pos < 0 || !c.leaves.Has(pos) {
				return false
			}
			continue
		}
		if v < c.lo || v > c.hi {
			return false
		}
	}
	return true
}

// Eval returns the set of transactions captured by any rule, equal to
// rules.Set.Eval on the snapshotted rule set but evaluated with compiled
// conditions on parallel workers.
func (e *Evaluator) Eval(rel *relation.Relation) *bitset.Set {
	out := bitset.New(rel.Len())
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := rel.Len()
	// Chunks are multiples of 64 transactions so no two workers touch the
	// same output word.
	const align = 64
	chunk := (n/workers + align) / align * align
	if chunk < align {
		chunk = align
	}
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				for ri := range e.rules {
					if e.matches(&e.rules[ri], rel, i) {
						out.Add(i)
						break
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// Matches reports whether transaction i is captured by any compiled rule
// (the point-query form of Eval).
func (e *Evaluator) Matches(rel *relation.Relation, i int) bool {
	for ri := range e.rules {
		if e.matches(&e.rules[ri], rel, i) {
			return true
		}
	}
	return false
}
