package index_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/index"
	"repro/internal/testutil"
)

// TestEvaluatorDifferential is the property test of the compiled evaluator:
// across many random seeds — covering empty rule sets, empty relations,
// empty/trivial/point conditions, tiny domains, multi-parent ontologies and
// minScore edges — index.Compile(s, rs).Eval(rel) must return exactly the
// same bitset as the interpreted rules.Set.Eval(rel), and the per-rule paths
// (EvalRule, EvalPerRule) must agree with Rule.Captures. Run it under -race:
// the chunked evaluators write bitset words from many goroutines and this
// test is the proof the 64-aligned chunking keeps them disjoint.
func TestEvaluatorDifferential(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			s := testutil.RandomSchema(rng)
			rel := testutil.RandomRelation(rng, s, rng.Intn(300)) // 0..299 tuples
			rs := testutil.RandomRuleSet(rng, s, rng.Intn(8))     // 0..7 rules

			want := rs.Eval(rel)
			ev := index.Compile(s, rs)
			if got := ev.Eval(rel); !got.Equal(want) {
				t.Fatalf("Eval: compiled evaluator disagrees with Set.Eval\nrules:\n%s", rs.Format(s))
			}

			per := ev.EvalPerRule(rel)
			if len(per) != rs.Len() {
				t.Fatalf("EvalPerRule returned %d bitsets for %d rules", len(per), rs.Len())
			}
			for i := 0; i < rs.Len(); i++ {
				wantRule := rs.Rule(i).Captures(rel)
				if !per[i].Equal(wantRule) {
					t.Fatalf("EvalPerRule[%d] disagrees with Rule.Captures\nrule: %s",
						i, rs.Rule(i).Format(s))
				}
				if got := ev.EvalRule(i, rel); !got.Equal(wantRule) {
					t.Fatalf("EvalRule(%d) disagrees with Rule.Captures\nrule: %s",
						i, rs.Rule(i).Format(s))
				}
			}
		})
	}
}

// TestEvaluatorMutationDifferential exercises the evaluator's in-place
// mutation ops (Add/Replace/Remove) against a mirrored rules.Set: after every
// edit the recompiled state must still evaluate identically.
func TestEvaluatorMutationDifferential(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		s := testutil.RandomSchema(rng)
		rel := testutil.RandomRelation(rng, s, 50+rng.Intn(150))
		rs := testutil.RandomRuleSet(rng, s, 1+rng.Intn(5))
		ev := index.Compile(s, rs)

		for step := 0; step < 20; step++ {
			switch op := rng.Intn(3); {
			case op == 0 || rs.Len() == 0: // add
				r := testutil.RandomRule(rng, s)
				rs.Add(r)
				ev.Add(r)
			case op == 1: // replace
				i := rng.Intn(rs.Len())
				r := testutil.RandomRule(rng, s)
				rs.Replace(i, r)
				ev.Replace(i, r)
			default: // remove
				i := rng.Intn(rs.Len())
				rs.Remove(i)
				ev.Remove(i)
			}
			if got, want := ev.Eval(rel), rs.Eval(rel); !got.Equal(want) {
				t.Fatalf("seed %d step %d: evaluator diverged from Set.Eval after edit", seed, step)
			}
		}
	}
}

// FuzzEvaluatorEval drives the same differential property from the fuzzer's
// seed corpus (and any discovered inputs): every int64 is a complete random
// instance.
func FuzzEvaluatorEval(f *testing.F) {
	for _, seed := range []int64{0, 1, 7, 42, 1234, -99} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		s := testutil.RandomSchema(rng)
		rel := testutil.RandomRelation(rng, s, rng.Intn(200))
		rs := testutil.RandomRuleSet(rng, s, rng.Intn(6))
		if got, want := index.Compile(s, rs).Eval(rel), rs.Eval(rel); !got.Equal(want) {
			t.Fatalf("compiled evaluator disagrees with Set.Eval for seed %d", seed)
		}
	})
}
