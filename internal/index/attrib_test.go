package index_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/index"
	"repro/internal/order"
	"repro/internal/relation"
	"repro/internal/rules"
	"repro/internal/testutil"
)

// TestEvalAttributedDifferential is the equivalence proof of the attribution
// path: across randomized schemas, relations and rule sets,
// EvalAttributed's union bitset must equal Eval's (and Set.Eval's), the
// per-tuple matched-rule lists must equal the per-rule capture bitsets of
// EvalPerRule, EvalFirst must report the lowest matching rule index, and
// every check must satisfy the margin invariant: Pass ⇔ Margin >= 0.
func TestEvalAttributedDifferential(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(7000 + seed))
			s := testutil.RandomSchema(rng)
			rel := testutil.RandomRelation(rng, s, rng.Intn(250))
			rs := testutil.RandomRuleSet(rng, s, rng.Intn(8))

			ev := index.Compile(s, rs)
			want := rs.Eval(rel)
			got, attrs := ev.EvalAttributed(rel)
			if !got.Equal(want) {
				t.Fatalf("EvalAttributed union disagrees with Set.Eval\nrules:\n%s", rs.Format(s))
			}
			if len(attrs) != rel.Len() {
				t.Fatalf("EvalAttributed returned %d attributions for %d tuples", len(attrs), rel.Len())
			}
			per := ev.EvalPerRule(rel)
			first := ev.EvalFirst(rel)
			if len(first) != rel.Len() {
				t.Fatalf("EvalFirst returned %d entries for %d tuples", len(first), rel.Len())
			}
			for i := 0; i < rel.Len(); i++ {
				// Matched rule indices == per-rule capture bitsets.
				var wantMatched []int
				wantFirst := index.NoRule
				for ri := 0; ri < rs.Len(); ri++ {
					if per[ri].Has(i) {
						wantMatched = append(wantMatched, ri)
						if wantFirst == index.NoRule {
							wantFirst = int32(ri)
						}
					}
				}
				if first[i] != wantFirst {
					t.Fatalf("tuple %d: EvalFirst = %d, want %d", i, first[i], wantFirst)
				}
				a := attrs[i]
				if len(a.Matched) != len(wantMatched) {
					t.Fatalf("tuple %d: matched %v, want %v", i, a.Matched, wantMatched)
				}
				for k := range wantMatched {
					if a.Matched[k] != wantMatched[k] {
						t.Fatalf("tuple %d: matched %v, want %v", i, a.Matched, wantMatched)
					}
				}
				if a.Flagged() != want.Has(i) {
					t.Fatalf("tuple %d: Flagged = %v, union has %v", i, a.Flagged(), want.Has(i))
				}
				if len(a.Rules) != rs.Len() {
					t.Fatalf("tuple %d: %d rule attributions for %d rules", i, len(a.Rules), rs.Len())
				}
				for ri, ra := range a.Rules {
					if ra.Rule != ri {
						t.Fatalf("tuple %d: attribution %d claims rule %d", i, ri, ra.Rule)
					}
					if ra.Matched != per[ri].Has(i) {
						t.Fatalf("tuple %d rule %d: Matched = %v, capture bit %v\nrule: %s",
							i, ri, ra.Matched, per[ri].Has(i), rs.Rule(ri).Format(s))
					}
					// Matched must be the conjunction of the checks, and every
					// check must satisfy the margin sign invariant.
					conj := !ra.Empty
					lastAttr := -2
					for _, c := range ra.Checks {
						if c.Pass != (c.Margin >= 0) {
							t.Fatalf("tuple %d rule %d attr %d: Pass=%v but Margin=%d",
								i, ri, c.Attr, c.Pass, c.Margin)
						}
						if !c.Pass {
							conj = false
						}
						if c.Attr != index.ScoreAttr && c.Attr <= lastAttr {
							t.Fatalf("tuple %d rule %d: checks not in ascending attr order", i, ri)
						}
						if c.Attr != index.ScoreAttr {
							lastAttr = c.Attr
						}
						// Each check must agree with the raw condition.
						if c.Attr != index.ScoreAttr {
							attr := s.Attr(c.Attr)
							if adm := rs.Rule(ri).Cond(c.Attr).Admits(attr, rel.Tuple(i)[c.Attr]); adm != c.Pass {
								t.Fatalf("tuple %d rule %d attr %d: Pass=%v but Condition.Admits=%v",
									i, ri, c.Attr, c.Pass, adm)
							}
						} else if wantPass := rel.Score(i) >= rs.Rule(ri).MinScore(); wantPass != c.Pass {
							t.Fatalf("tuple %d rule %d score check: Pass=%v, want %v", i, ri, c.Pass, wantPass)
						}
					}
					if conj != ra.Matched {
						t.Fatalf("tuple %d rule %d: Matched=%v but checks conjoin to %v", i, ri, ra.Matched, conj)
					}
				}
			}
		})
	}
}

// TestAttributeTupleAgreesWithEvalAttributed pins the point-query form to
// the batch form.
func TestAttributeTupleAgreesWithEvalAttributed(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := testutil.RandomSchema(rng)
	rel := testutil.RandomRelation(rng, s, 64)
	rs := testutil.RandomRuleSet(rng, s, 5)
	ev := index.Compile(s, rs)
	_, attrs := ev.EvalAttributed(rel)
	for i := 0; i < rel.Len(); i++ {
		got := ev.AttributeTuple(rel, i)
		if fmt.Sprint(got) != fmt.Sprint(attrs[i]) {
			t.Fatalf("tuple %d: AttributeTuple %v != EvalAttributed %v", i, got, attrs[i])
		}
	}
}

// TestAttributionNumericMargins pins the exact numeric margin arithmetic on
// a hand-built instance (the randomized test only checks the sign
// invariant).
func TestAttributionNumericMargins(t *testing.T) {
	s := relation.MustSchema(relation.Attribute{
		Name:   "a",
		Kind:   relation.Numeric,
		Domain: order.NewDomain(0, 100),
	})
	rel := relation.New(s)
	// Attribute 0 domain is [0,100]; the rule condition below is [10, 20].
	for _, v := range []int64{9, 10, 14, 20, 30} {
		rel.MustAppend(relation.Tuple{v}, relation.Unlabeled, 0)
	}
	rs := rules.NewSet(rules.MustParse(s, "a in [10,20]"))
	ev := index.Compile(s, rs)
	_, attrs := ev.EvalAttributed(rel)
	want := []struct {
		pass   bool
		margin int64
	}{
		{false, -1}, // 9: one below lo
		{true, 0},   // 10: on the boundary
		{true, 4},   // 14: 4 from lo, 6 from hi -> 4
		{true, 0},   // 20: on the boundary
		{false, -10},
	}
	for i, w := range want {
		c := attrs[i].Rules[0].Checks[0]
		if c.Pass != w.pass || c.Margin != w.margin {
			t.Fatalf("tuple %d: got pass=%v margin=%d, want pass=%v margin=%d",
				i, c.Pass, c.Margin, w.pass, w.margin)
		}
	}
}
