package index

import (
	"math"
	"testing"

	"repro/internal/order"
	"repro/internal/relation"
	"repro/internal/rules"
)

// TestCompileRuleSelectivityDegenerateDomain is the regression test for the
// NaN/Inf selectivity family: an unguarded compileRule divides a condition's
// width by the domain size (or leaf count), so a zero-size domain turns
// selectivity into NaN (0/0) or +Inf (k/0) — and NaN poisons the
// sort.SliceStable ordering below it, because NaN compares false both ways
// and the "cheapest rejection first" order then silently depends on the
// input permutation. Two layers now prevent it: the trivial/empty checks
// short-circuit the conditions whose denominators vanish (over a zero-size
// domain every interval contains the empty Full() interval, so the condition
// is skipped outright), and any path that still reaches the division starts
// from the neutral default selectivity 1.0 with the division guarded on a
// positive denominator. This test pins both: compilation over a degenerate
// schema stays total, never emits a non-finite selectivity, and keeps the
// healthy conditions ordered sharpest-first.
func TestCompileRuleSelectivityDegenerateDomain(t *testing.T) {
	s, err := relation.NewSchema(
		relation.Attribute{Name: "broken", Kind: relation.Numeric,
			// Min > Max: Size() == 0. Constructed as a literal because
			// order.NewDomain rejects it — but hand-built schemas and
			// future data loaders (min/max over zero rows) can still carry
			// one, and Compile must stay total on it.
			Domain: order.Domain{Min: 1, Max: 0}},
		relation.Attribute{Name: "ok", Kind: relation.Numeric,
			Domain: order.NewDomain(0, 99)},
	)
	if err != nil {
		t.Fatal(err)
	}

	r := rules.NewRule(s).
		// The would-be 2/0 = +Inf condition over the zero-size domain.
		SetCond(0, rules.NumericCond(order.Interval{Lo: 2, Hi: 3})).
		// A sharp point condition on the healthy attribute: selectivity 0.01.
		SetCond(1, rules.NumericCond(order.Point(7)))

	ev := Compile(s, rules.NewSet(r))
	cr := ev.rules[0]
	if cr.empty {
		t.Fatal("rule compiled as empty")
	}
	for _, cc := range cr.conds {
		if math.IsNaN(cc.selectivity) || math.IsInf(cc.selectivity, 0) {
			t.Errorf("attr %d selectivity = %v, want finite", cc.attr, cc.selectivity)
		}
	}
	// The zero-size-domain condition can reject nothing a valid tuple could
	// carry (no tuple has a value in an empty domain), so the first layer
	// drops it; only the healthy sharp condition remains, checked first.
	if len(cr.conds) != 1 || cr.conds[0].attr != 1 {
		t.Fatalf("compiled conds = %+v, want exactly the sharp condition on attr 1", cr.conds)
	}
	if cr.conds[0].selectivity != 0.01 {
		t.Errorf("sharp selectivity = %v, want 0.01", cr.conds[0].selectivity)
	}

	// The evaluator stays total end to end: evaluation over the degenerate
	// schema's (unavoidably empty) relation agrees with the interpreter.
	rel := relation.New(s)
	if got, want := ev.Eval(rel), rules.NewSet(r).Eval(rel); !got.Equal(want) {
		t.Error("compiled evaluation diverged on the degenerate schema")
	}
}

// TestCompileRuleSelectivityGuardDefault exercises the second layer directly:
// compileRule's division is guarded on a positive denominator and otherwise
// leaves the neutral default 1.0 in place, so even a condition compiled
// against a zero-size domain sorts deterministically after every well-formed
// condition instead of injecting NaN into the comparator.
func TestCompileRuleSelectivityGuardDefault(t *testing.T) {
	healthy := relation.MustSchema(
		relation.Attribute{Name: "ok", Kind: relation.Numeric,
			Domain: order.NewDomain(0, 99)},
	)
	degenerate := relation.Attribute{Name: "broken", Kind: relation.Numeric,
		Domain: order.Domain{Min: 1, Max: 0}}

	// Drive the guard exactly as compileRule does, for the degenerate
	// attribute and a non-empty interval: the unguarded quotient would be
	// 2/0 = +Inf.
	cc := compiledCond{attr: 0, selectivity: 1}
	iv := order.Interval{Lo: 2, Hi: 3}
	if size := degenerate.Domain.Size(); size > 0 {
		cc.selectivity = float64(iv.Size()) / float64(size)
	}
	if cc.selectivity != 1 {
		t.Fatalf("guarded selectivity = %v, want the neutral default 1", cc.selectivity)
	}

	// And the neutral default sorts after every genuine selectivity.
	r := rules.NewRule(healthy).SetCond(0, rules.NumericCond(order.Interval{Lo: 0, Hi: 98}))
	real := Compile(healthy, rules.NewSet(r)).rules[0].conds[0]
	if !(real.selectivity < cc.selectivity) {
		t.Errorf("wide-but-real selectivity %v must sort before the neutral default %v",
			real.selectivity, cc.selectivity)
	}
}

// TestCompileRuleSelectivityOrdering pins the healthy path: conditions are
// checked most-selective first.
func TestCompileRuleSelectivityOrdering(t *testing.T) {
	s := relation.MustSchema(
		relation.Attribute{Name: "wide", Kind: relation.Numeric,
			Domain: order.NewDomain(0, 999)},
		relation.Attribute{Name: "narrow", Kind: relation.Numeric,
			Domain: order.NewDomain(0, 999)},
	)
	r := rules.NewRule(s).
		SetCond(0, rules.NumericCond(order.Interval{Lo: 0, Hi: 499})). // 0.5
		SetCond(1, rules.NumericCond(order.Point(3)))                  // 0.001
	cr := Compile(s, rules.NewSet(r)).rules[0]
	if cr.conds[0].attr != 1 || cr.conds[1].attr != 0 {
		t.Errorf("condition order = [%d %d], want narrow before wide",
			cr.conds[0].attr, cr.conds[1].attr)
	}
}
