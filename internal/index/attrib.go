package index

import (
	"repro/internal/bitset"
	"repro/internal/ontology"
	"repro/internal/relation"
	"repro/internal/trace"
)

// This file is the attribution path of the compiled evaluator: the same
// chunk-parallel machinery as Eval, but instead of short-circuiting on the
// first matching rule it records, per tuple, which rules fired and how far
// every non-trivial condition was from flipping — the decision provenance
// the serving layer's `"explain": true` mode and the offline CLI's -explain
// flag surface to analysts. Plain Eval/EvalFirst are untouched, so scoring
// with attribution off pays nothing (BenchmarkServeScore guards this).
//
// Margins are signed and satisfy one invariant, proven differentially in
// attrib_test.go: a check passes if and only if its margin is >= 0.
//
//   - numeric condition v ∈ [lo, hi]: pass margin is min(v-lo, hi-v), the
//     distance to the nearest boundary; fail margin is -(lo-v) or -(v-hi),
//     the (negated) distance back into the interval.
//   - categorical condition A ≤ C over observed leaf l: pass margin is the
//     minimal number of generalization steps from l up to a concept
//     containing C (how much specificity the rule has to spare); fail margin
//     is the negated number of generalization steps C would need before it
//     admitted l (Equation 1's ontological distance).
//   - score threshold: margin is score - minScore.
//
// The allocation story (DESIGN.md §13): attribution over a relation never
// allocates per rule or per tuple. An AttributionBuffer owns three flat
// arenas — RuleAttributions, matched indices and CheckAttributions — and
// every tuple's storage is carved at a deterministic offset (tuple i's
// checks live at i×perTuple), so the 64-aligned parallel chunks write
// disjoint arena regions without synchronization and a buffer is reused
// across calls without clearing. Checks render in schema-attribute order
// via the compile-time emit permutation; nothing sorts at attribution time.

// CheckAttribution is the outcome of one non-trivial compiled check of one
// rule against one tuple.
type CheckAttribution struct {
	// Attr is the schema attribute index, ScoreAttr for the rule's
	// minimum-score threshold, or WindowAttr − spec for a windowed aggregate
	// check (see IsWindow/Win). The struct deliberately stays at four fields:
	// the compiler only keeps struct values in registers up to four fields
	// (ssa.MaxStruct), and attribution copies these by value in its hottest
	// loop — a fifth field for the spec index measured 2.3x slower on
	// BenchmarkCompiledEvalAttributed.
	Attr int
	// Categorical marks ontological (concept-bound) checks.
	Categorical bool
	// Pass reports whether the tuple satisfies the check. Pass holds if and
	// only if Margin >= 0.
	Pass bool
	// Margin is the signed distance to the decision boundary (see the file
	// comment for the exact per-kind definition). For a windowed check with a
	// one-sided threshold like COUNT(...) >= K the margin is exactly
	// aggregate − K: how far past (or short of) the velocity threshold the
	// key's recent activity is.
	Margin int64
}

// ScoreAttr is the CheckAttribution.Attr value of a rule's minimum-score
// threshold check (it guards the whole rule, not one schema attribute).
const ScoreAttr = -1

// WindowAttr is the top of the CheckAttribution.Attr range occupied by
// windowed aggregate checks: a check for window spec s carries
// Attr = WindowAttr − s, so spec 0 is WindowAttr itself and every windowed
// check satisfies Attr <= WindowAttr (they address sliding-window
// aggregates, not schema attributes).
const WindowAttr = -2

// IsWindow reports whether the check is a windowed aggregate check.
func (c CheckAttribution) IsWindow() bool { return c.Attr <= WindowAttr }

// Win returns the window spec index (into the evaluator's WindowSpecs) of a
// windowed check; meaningless unless IsWindow.
func (c CheckAttribution) Win() int32 { return int32(WindowAttr - c.Attr) }

// RuleAttribution is one rule's verdict on one tuple with the full check
// breakdown (no short-circuiting: every non-trivial condition is attributed
// even after the first failure, so analysts see every margin).
type RuleAttribution struct {
	// Rule is the rule's index in the compiled set.
	Rule int
	// Matched reports whether the rule captures the tuple — every check
	// passed (and the rule is not empty).
	Matched bool
	// Empty marks rules that can never match (an empty condition); such
	// rules carry no checks.
	Empty bool
	// Checks holds one attribution per non-trivial condition, ordered by
	// ascending attribute index, with the score-threshold check (Attr ==
	// ScoreAttr) last when the rule has one. Under lazy evaluation
	// (EvalAttributedLazyInto) Checks is nil for rules that did not match;
	// AttributeRule re-derives the full breakdown on demand.
	Checks []CheckAttribution
}

// TupleAttribution is the decision provenance of one tuple: which rules
// matched, and the per-rule condition breakdown.
type TupleAttribution struct {
	// Matched lists the indices of the rules capturing the tuple, ascending.
	Matched []int
	// Rules holds one attribution per compiled rule, index-aligned with the
	// rule set.
	Rules []RuleAttribution
}

// Flagged reports whether any rule captured the tuple.
func (a TupleAttribution) Flagged() bool { return len(a.Matched) > 0 }

// attributeCond computes one condition's pass/fail and signed margin for
// value v.
func (e *Evaluator) attributeCond(c *compiledCond, v int64) CheckAttribution {
	out := CheckAttribution{Attr: c.attr, Categorical: c.isCat}
	if c.isCat {
		pos := e.leafPos[c.attr][v]
		if pos >= 0 {
			// The compile-time margin table covers every observed leaf; a
			// passing leaf's margin is >= 0 and a failing one's <= -1, so the
			// table encodes Pass too.
			out.Margin = c.margins[pos]
			out.Pass = out.Margin >= 0
			return out
		}
		// Non-leaf observed value: outside the table (and the leaf set), so
		// the check fails with the minimal violation the DAG supports.
		d, ok := e.schema.Attr(c.attr).Ontology.UpDistance(c.concept, ontology.Concept(v))
		if !ok || d < 1 {
			d = 1 // no chain: minimal violation
		}
		out.Margin = -int64(d)
		return out
	}
	switch {
	case v < c.lo:
		out.Margin = -(c.lo - v)
	case v > c.hi:
		out.Margin = -(v - c.hi)
	default:
		out.Pass = true
		if m := c.hi - v; m < v-c.lo {
			out.Margin = m
		} else {
			out.Margin = v - c.lo
		}
	}
	return out
}

// attributeRuleAppend evaluates every check of compiled rule ri against
// tuple i without short-circuiting, appending the checks (in the compiled
// emit order: schema attributes ascending, score threshold last) to dst.
// The returned attribution's Checks aliases the appended region, so dst
// must not be shared between live attributions unless each append stays
// within its own pre-carved capacity (the arena discipline of
// AttributionBuffer) or dst never reallocates underneath an earlier result.
func (e *Evaluator) attributeRuleAppend(ri int, rel *relation.Relation, i int, dst []CheckAttribution, wc [][]int64) RuleAttribution {
	cr := &e.rules[ri]
	out := RuleAttribution{Rule: ri, Matched: true}
	if cr.empty {
		out.Empty = true
		out.Matched = false
		return out
	}
	t := rel.Tuple(i)
	base := len(dst)
	for _, ci := range cr.emit {
		ca := e.attributeCond(&cr.conds[ci], t[cr.conds[ci].attr])
		if !ca.Pass {
			out.Matched = false
		}
		dst = append(dst, ca)
	}
	for _, w := range cr.wins {
		var v int64
		if wc != nil {
			v = wc[w.spec][i]
		}
		ca := attributeWin(w, v)
		if wc == nil {
			ca.Pass = false // no columns: fail closed, like winMatches
			out.Matched = false
		}
		if !ca.Pass {
			out.Matched = false
		}
		dst = append(dst, ca)
	}
	if cr.minScore > 0 {
		ca := CheckAttribution{
			Attr:   ScoreAttr,
			Margin: int64(rel.Score(i)) - int64(cr.minScore),
		}
		ca.Pass = ca.Margin >= 0
		if !ca.Pass {
			out.Matched = false
		}
		dst = append(dst, ca)
	}
	out.Checks = dst[base:]
	return out
}

// AttributeRule re-derives the full attribution of compiled rule ri against
// tuple i — the compact on-demand companion of the lazy evaluation path:
// EvalAttributedLazyInto leaves non-matching rules' Checks nil, and callers
// that need a specific rule's margins anyway (a "how close was rule 7?"
// query) recompute exactly that rule here instead of paying for all of them.
func (e *Evaluator) AttributeRule(ri int, rel *relation.Relation, i int) RuleAttribution {
	return e.attributeRuleAppend(ri, rel, i, nil, e.winCols(rel))
}

// AttributeRuleAppend is AttributeRule writing into caller-owned storage:
// checks are appended to dst (pass dst[:0] to reuse its capacity) and the
// returned attribution's Checks aliases the appended region. A steady-state
// caller reuses one scratch slice across many rules and never allocates.
func (e *Evaluator) AttributeRuleAppend(ri int, rel *relation.Relation, i int, dst []CheckAttribution) RuleAttribution {
	return e.attributeRuleAppend(ri, rel, i, dst, e.winCols(rel))
}

// MaxRuleChecks returns the largest check count any single compiled rule
// emits — the scratch capacity that makes AttributeRuleAppend allocation-free
// for every rule in the set.
func (e *Evaluator) MaxRuleChecks() int {
	maxn := 0
	for ri := range e.rules {
		if n := e.rules[ri].checkCount(); n > maxn {
			maxn = n
		}
	}
	return maxn
}

// AttributeTuple returns the full decision provenance of tuple i: the
// point-query form of EvalAttributed, shared by cmd/rudolf's -explain flag.
// All checks are carved from one arena (three allocations per call, not per
// rule); batch callers should use EvalAttributedInto with a reused buffer.
func (e *Evaluator) AttributeTuple(rel *relation.Relation, i int) TupleAttribution {
	perTuple := 0
	for ri := range e.rules {
		perTuple += e.rules[ri].checkCount()
	}
	arena := make([]CheckAttribution, 0, perTuple)
	out := TupleAttribution{Rules: make([]RuleAttribution, len(e.rules))}
	wc := e.winCols(rel)
	for ri := range e.rules {
		base := len(arena)
		out.Rules[ri] = e.attributeRuleAppend(ri, rel, i, arena, wc)
		arena = arena[:base+len(out.Rules[ri].Checks)]
		if out.Rules[ri].Matched {
			out.Matched = append(out.Matched, ri)
		}
	}
	return out
}

// AttributionBuffer is caller-owned, reusable storage for EvalAttributedInto
// and EvalAttributedLazyInto. The zero value is ready to use; the first call
// sizes the arenas and later calls reuse them (growing only when the
// relation or rule set outgrows the previous high-water mark), so a pooled
// buffer makes repeated attribution allocation-free.
//
// Ownership rules: Tuples — and every Matched/Rules/Checks slice hanging off
// it — aliases the buffer's arenas and is valid only until the next
// Eval*Into call on the same buffer. Callers that hand the buffer back to a
// pool must finish reading (or copy out) first; two concurrent evaluations
// need two buffers.
type AttributionBuffer struct {
	// Tuples holds one attribution per transaction of the last evaluated
	// relation (length rel.Len()), index-aligned with it.
	Tuples []TupleAttribution

	rules   []RuleAttribution  // flat: tuple-major, nRules per tuple
	matched []int              // flat: nRules capacity per tuple
	checks  []CheckAttribution // flat: perTuple capacity per tuple

	// geometry of the current rule set (recomputed every Ensure: the
	// evaluator mutates in place via Add/Replace/Remove).
	checkOff []int // per rule: offset of its checks inside a tuple's block
	perTuple int   // Σ checkCount over rules
}

// ensure sizes the arenas for evaluating n tuples against e's current rules.
func (b *AttributionBuffer) ensure(e *Evaluator, n int) {
	nr := len(e.rules)
	if cap(b.checkOff) < nr {
		b.checkOff = make([]int, nr)
	}
	b.checkOff = b.checkOff[:nr]
	b.perTuple = 0
	for ri := range e.rules {
		b.checkOff[ri] = b.perTuple
		b.perTuple += e.rules[ri].checkCount()
	}
	if need := n * nr; cap(b.rules) < need {
		b.rules = make([]RuleAttribution, need)
	} else {
		b.rules = b.rules[:need]
	}
	if need := n * nr; cap(b.matched) < need {
		b.matched = make([]int, need)
	} else {
		b.matched = b.matched[:need]
	}
	if need := n * b.perTuple; cap(b.checks) < need {
		b.checks = make([]CheckAttribution, need)
	} else {
		b.checks = b.checks[:need]
	}
	if cap(b.Tuples) < n {
		b.Tuples = make([]TupleAttribution, n)
	} else {
		b.Tuples = b.Tuples[:n]
	}
}

// attributeInto is the shared chunk-parallel engine of the eager and lazy
// buffer-backed evaluations. Tuple i's storage lives at fixed offsets
// (rules/matched at i×nRules, checks at i×perTuple), so workers touch
// disjoint arena regions and nothing synchronizes.
func (e *Evaluator) attributeInto(rel *relation.Relation, buf *AttributionBuffer, lazy bool) *bitset.Set {
	n := rel.Len()
	buf.ensure(e, n)
	nr := len(e.rules)
	out := bitset.New(n)
	wc := e.winCols(rel)
	e.parallelChunks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rules := buf.rules[i*nr : (i+1)*nr]
			matched := buf.matched[i*nr : i*nr : (i+1)*nr]
			base := i * buf.perTuple
			for ri := range e.rules {
				if lazy && !e.matches(&e.rules[ri], rel, i, wc) {
					rules[ri] = RuleAttribution{Rule: ri, Empty: e.rules[ri].empty}
					continue
				}
				off := base + buf.checkOff[ri]
				cnt := e.rules[ri].checkCount()
				rules[ri] = e.attributeRuleAppend(ri, rel, i, buf.checks[off:off:off+cnt], wc)
				if rules[ri].Matched {
					matched = append(matched, ri)
				}
			}
			buf.Tuples[i] = TupleAttribution{Matched: matched, Rules: rules}
			if len(matched) > 0 {
				out.Add(i)
			}
		}
	})
	return out
}

// EvalAttributedInto evaluates the relation with full (eager) decision
// provenance into buf, returning Eval's Φ(I) bitset; buf.Tuples carries the
// same attributions EvalAttributed would return, at a handful of arena
// allocations per high-water mark instead of millions per call. See
// AttributionBuffer for the aliasing/ownership rules.
func (e *Evaluator) EvalAttributedInto(rel *relation.Relation, buf *AttributionBuffer) *bitset.Set {
	return e.attributeInto(rel, buf, false)
}

// EvalAttributedLazyInto is EvalAttributedInto materializing condition-level
// margins only for rules that fire: non-matching rules are rejected by the
// same short-circuiting check as Eval and carry a nil Checks (Matched,
// Empty and the per-tuple Matched list stay exact — proven differentially
// by TestEvalAttributedLazyDifferential). Callers needing a non-matching
// rule's margins re-derive just that rule via AttributeRule. This is the
// serving layer's explain path: analysts ask "why was this flagged", which
// only the firing rules answer.
func (e *Evaluator) EvalAttributedLazyInto(rel *relation.Relation, buf *AttributionBuffer) *bitset.Set {
	return e.attributeInto(rel, buf, true)
}

// EvalAttributedLazyIntoUnder is EvalAttributedLazyInto wrapped in an
// "index.eval_attributed_lazy" span nested under parent.
func (e *Evaluator) EvalAttributedLazyIntoUnder(parent trace.Span, rel *relation.Relation, buf *AttributionBuffer) *bitset.Set {
	sp := parent.Child("index.eval_attributed_lazy")
	out := e.EvalAttributedLazyInto(rel, buf)
	sp.Int("rows", int64(rel.Len())).Int("rules", int64(len(e.rules))).Int("chunks", int64(e.chunkCount(rel.Len())))
	sp.End()
	return out
}

// EvalAttributed evaluates the relation with full decision provenance: the
// returned bitset is exactly Eval's Φ(I) (proven differentially), and the
// attribution slice holds one TupleAttribution per transaction, computed on
// the same 64-aligned parallel chunks (workers write disjoint slice
// elements, so no synchronization is needed). Storage is freshly allocated
// per call; hot paths reuse an AttributionBuffer via EvalAttributedInto.
func (e *Evaluator) EvalAttributed(rel *relation.Relation) (*bitset.Set, []TupleAttribution) {
	var buf AttributionBuffer
	out := e.EvalAttributedInto(rel, &buf)
	return out, buf.Tuples
}

// EvalAttributedUnder is EvalAttributed wrapped in an
// "index.eval_attributed" span nested under parent; the zero parent Span
// makes it exactly EvalAttributed.
func (e *Evaluator) EvalAttributedUnder(parent trace.Span, rel *relation.Relation) (*bitset.Set, []TupleAttribution) {
	sp := parent.Child("index.eval_attributed")
	out, attrs := e.EvalAttributed(rel)
	sp.Int("rows", int64(rel.Len())).Int("rules", int64(len(e.rules))).Int("chunks", int64(e.chunkCount(rel.Len())))
	sp.End()
	return out, attrs
}

// EvalFirst returns, per transaction, the index of the first matching rule
// (or NoRule when none matches) — the same short-circuiting loop as Eval,
// writing an int32 per tuple instead of a bit. The serving hot path uses it
// so per-rule fire accounting costs nothing beyond the write: first-match
// attribution is the standard fire semantics of an ordered rule list.
func (e *Evaluator) EvalFirst(rel *relation.Relation) []int32 {
	return e.EvalFirstInto(rel, nil)
}

// EvalFirstInto is EvalFirst writing into caller-owned storage: dst is
// resized (reallocating only when the relation outgrows its capacity) and
// returned, so a pooled slice makes repeated first-match scoring
// allocation-free (the BenchmarkCompiledEvalFirst B/op guard).
func (e *Evaluator) EvalFirstInto(rel *relation.Relation, dst []int32) []int32 {
	n := rel.Len()
	if cap(dst) < n {
		dst = make([]int32, n)
	}
	out := dst[:n]
	wc := e.winCols(rel)
	e.parallelChunks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = NoRule
			for ri := range e.rules {
				if e.matches(&e.rules[ri], rel, i, wc) {
					out[i] = int32(ri)
					break
				}
			}
		}
	})
	return out
}

// NoRule is the EvalFirst marker for "no rule matched".
const NoRule int32 = -1

// EvalFirstUnder is EvalFirst wrapped in an "index.eval_first" span nested
// under parent.
func (e *Evaluator) EvalFirstUnder(parent trace.Span, rel *relation.Relation) []int32 {
	return e.EvalFirstIntoUnder(parent, rel, nil)
}

// EvalFirstIntoUnder is EvalFirstInto wrapped in an "index.eval_first" span
// nested under parent.
func (e *Evaluator) EvalFirstIntoUnder(parent trace.Span, rel *relation.Relation, dst []int32) []int32 {
	sp := parent.Child("index.eval_first")
	out := e.EvalFirstInto(rel, dst)
	sp.Int("rows", int64(rel.Len())).Int("rules", int64(len(e.rules))).Int("chunks", int64(e.chunkCount(rel.Len())))
	sp.End()
	return out
}
