package index

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/ontology"
	"repro/internal/relation"
	"repro/internal/trace"
)

// This file is the attribution path of the compiled evaluator: the same
// chunk-parallel machinery as Eval, but instead of short-circuiting on the
// first matching rule it records, per tuple, which rules fired and how far
// every non-trivial condition was from flipping — the decision provenance
// the serving layer's `"explain": true` mode and the offline CLI's -explain
// flag surface to analysts. Plain Eval/EvalFirst are untouched, so scoring
// with attribution off pays nothing (BenchmarkServeScore guards this).
//
// Margins are signed and satisfy one invariant, proven differentially in
// attrib_test.go: a check passes if and only if its margin is >= 0.
//
//   - numeric condition v ∈ [lo, hi]: pass margin is min(v-lo, hi-v), the
//     distance to the nearest boundary; fail margin is -(lo-v) or -(v-hi),
//     the (negated) distance back into the interval.
//   - categorical condition A ≤ C over observed leaf l: pass margin is the
//     minimal number of generalization steps from l up to a concept
//     containing C (how much specificity the rule has to spare); fail margin
//     is the negated number of generalization steps C would need before it
//     admitted l (Equation 1's ontological distance).
//   - score threshold: margin is score - minScore.

// CheckAttribution is the outcome of one non-trivial compiled check of one
// rule against one tuple.
type CheckAttribution struct {
	// Attr is the schema attribute index, or ScoreAttr for the rule's
	// minimum-score threshold.
	Attr int
	// Categorical marks ontological (concept-bound) checks.
	Categorical bool
	// Pass reports whether the tuple satisfies the check. Pass holds if and
	// only if Margin >= 0.
	Pass bool
	// Margin is the signed distance to the decision boundary (see the file
	// comment for the exact per-kind definition).
	Margin int64
}

// ScoreAttr is the CheckAttribution.Attr value of a rule's minimum-score
// threshold check (it guards the whole rule, not one schema attribute).
const ScoreAttr = -1

// RuleAttribution is one rule's verdict on one tuple with the full check
// breakdown (no short-circuiting: every non-trivial condition is attributed
// even after the first failure, so analysts see every margin).
type RuleAttribution struct {
	// Rule is the rule's index in the compiled set.
	Rule int
	// Matched reports whether the rule captures the tuple — every check
	// passed (and the rule is not empty).
	Matched bool
	// Empty marks rules that can never match (an empty condition); such
	// rules carry no checks.
	Empty bool
	// Checks holds one attribution per non-trivial condition, ordered by
	// ascending attribute index, with the score-threshold check (Attr ==
	// ScoreAttr) last when the rule has one.
	Checks []CheckAttribution
}

// TupleAttribution is the decision provenance of one tuple: which rules
// matched, and the per-rule condition breakdown.
type TupleAttribution struct {
	// Matched lists the indices of the rules capturing the tuple, ascending.
	Matched []int
	// Rules holds one attribution per compiled rule, index-aligned with the
	// rule set.
	Rules []RuleAttribution
}

// Flagged reports whether any rule captured the tuple.
func (a TupleAttribution) Flagged() bool { return len(a.Matched) > 0 }

// attributeCond computes one condition's pass/fail and signed margin for
// value v.
func (e *Evaluator) attributeCond(c *compiledCond, v int64) CheckAttribution {
	out := CheckAttribution{Attr: c.attr, Categorical: c.isCat}
	if c.isCat {
		pos := e.leafPos[c.attr][v]
		out.Pass = pos >= 0 && c.leaves.Has(pos)
		o := e.schema.Attr(c.attr).Ontology
		if out.Pass {
			d, _ := o.UpDistance(ontology.Concept(v), c.concept)
			out.Margin = int64(d)
		} else {
			d, ok := o.UpDistance(c.concept, ontology.Concept(v))
			if !ok || d < 1 {
				d = 1 // non-leaf observed value: no chain, minimal violation
			}
			out.Margin = -int64(d)
		}
		return out
	}
	switch {
	case v < c.lo:
		out.Margin = -(c.lo - v)
	case v > c.hi:
		out.Margin = -(v - c.hi)
	default:
		out.Pass = true
		if m := c.hi - v; m < v-c.lo {
			out.Margin = m
		} else {
			out.Margin = v - c.lo
		}
	}
	return out
}

// attributeRule evaluates every check of compiled rule ri against tuple i,
// without short-circuiting.
func (e *Evaluator) attributeRule(ri int, rel *relation.Relation, i int) RuleAttribution {
	cr := &e.rules[ri]
	out := RuleAttribution{Rule: ri, Matched: true}
	if cr.empty {
		out.Empty = true
		out.Matched = false
		return out
	}
	t := rel.Tuple(i)
	out.Checks = make([]CheckAttribution, 0, len(cr.conds)+1)
	for k := range cr.conds {
		ca := e.attributeCond(&cr.conds[k], t[cr.conds[k].attr])
		if !ca.Pass {
			out.Matched = false
		}
		out.Checks = append(out.Checks, ca)
	}
	// Checks are compiled in selectivity order; present them in schema order
	// so the breakdown is stable across recompiles and selectivity changes.
	sort.SliceStable(out.Checks, func(x, y int) bool {
		return out.Checks[x].Attr < out.Checks[y].Attr
	})
	if cr.minScore > 0 {
		ca := CheckAttribution{
			Attr:   ScoreAttr,
			Margin: int64(rel.Score(i)) - int64(cr.minScore),
		}
		ca.Pass = ca.Margin >= 0
		if !ca.Pass {
			out.Matched = false
		}
		out.Checks = append(out.Checks, ca)
	}
	return out
}

// AttributeTuple returns the full decision provenance of tuple i: the
// point-query form of EvalAttributed, shared by the serving layer's explain
// mode and cmd/rudolf's -explain flag.
func (e *Evaluator) AttributeTuple(rel *relation.Relation, i int) TupleAttribution {
	out := TupleAttribution{Rules: make([]RuleAttribution, len(e.rules))}
	for ri := range e.rules {
		out.Rules[ri] = e.attributeRule(ri, rel, i)
		if out.Rules[ri].Matched {
			out.Matched = append(out.Matched, ri)
		}
	}
	return out
}

// EvalAttributed evaluates the relation with full decision provenance: the
// returned bitset is exactly Eval's Φ(I) (proven differentially), and the
// attribution slice holds one TupleAttribution per transaction, computed on
// the same 64-aligned parallel chunks (workers write disjoint slice
// elements, so no synchronization is needed).
func (e *Evaluator) EvalAttributed(rel *relation.Relation) (*bitset.Set, []TupleAttribution) {
	out := bitset.New(rel.Len())
	attrs := make([]TupleAttribution, rel.Len())
	e.parallelChunks(rel.Len(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			attrs[i] = e.AttributeTuple(rel, i)
			if attrs[i].Flagged() {
				out.Add(i)
			}
		}
	})
	return out, attrs
}

// EvalAttributedUnder is EvalAttributed wrapped in an
// "index.eval_attributed" span nested under parent; the zero parent Span
// makes it exactly EvalAttributed.
func (e *Evaluator) EvalAttributedUnder(parent trace.Span, rel *relation.Relation) (*bitset.Set, []TupleAttribution) {
	sp := parent.Child("index.eval_attributed")
	out, attrs := e.EvalAttributed(rel)
	sp.Int("rows", int64(rel.Len())).Int("rules", int64(len(e.rules))).Int("chunks", int64(e.chunkCount(rel.Len())))
	sp.End()
	return out, attrs
}

// EvalFirst returns, per transaction, the index of the first matching rule
// (or NoRule when none matches) — the same short-circuiting loop as Eval,
// writing an int32 per tuple instead of a bit. The serving hot path uses it
// so per-rule fire accounting costs nothing beyond the write: first-match
// attribution is the standard fire semantics of an ordered rule list.
func (e *Evaluator) EvalFirst(rel *relation.Relation) []int32 {
	out := make([]int32, rel.Len())
	e.parallelChunks(rel.Len(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = NoRule
			for ri := range e.rules {
				if e.matches(&e.rules[ri], rel, i) {
					out[i] = int32(ri)
					break
				}
			}
		}
	})
	return out
}

// NoRule is the EvalFirst marker for "no rule matched".
const NoRule int32 = -1

// EvalFirstUnder is EvalFirst wrapped in an "index.eval_first" span nested
// under parent.
func (e *Evaluator) EvalFirstUnder(parent trace.Span, rel *relation.Relation) []int32 {
	sp := parent.Child("index.eval_first")
	out := e.EvalFirst(rel)
	sp.Int("rows", int64(rel.Len())).Int("rules", int64(len(e.rules))).Int("chunks", int64(e.chunkCount(rel.Len())))
	sp.End()
	return out
}
