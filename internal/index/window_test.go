package index

import (
	"math/rand"
	"testing"

	"repro/internal/order"
	"repro/internal/relation"
	"repro/internal/rules"
	"repro/internal/window"
)

func velocitySchema() *relation.Schema {
	return relation.MustSchema(
		relation.Attribute{Name: "minute", Kind: relation.Numeric,
			Domain: order.NewDomain(0, 1_000_000), Time: true},
		relation.Attribute{Name: "user", Kind: relation.Numeric,
			Domain: order.NewDomain(0, 10_000)},
		relation.Attribute{Name: "amount", Kind: relation.Numeric,
			Domain: order.NewDomain(0, 100_000)},
	)
}

func velocityRelation(seed int64, n int) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	s := velocitySchema()
	rel := relation.New(s)
	now := int64(0)
	for i := 0; i < n; i++ {
		now += int64(rng.Intn(4))
		user := int64(rng.Intn(12))
		if rng.Intn(10) == 0 { // burst: several rapid events for one user
			for k := 0; k < 4 && i < n; k++ {
				rel.MustAppend(relation.Tuple{now, user, int64(rng.Intn(500))},
					relation.Unlabeled, int16(rng.Intn(relation.MaxScore+1)))
				i++
			}
			continue
		}
		rel.MustAppend(relation.Tuple{now, user, int64(rng.Intn(500))},
			relation.Unlabeled, int16(rng.Intn(relation.MaxScore+1)))
	}
	return rel
}

func velocityRules(t *testing.T, s *relation.Schema) *rules.Set {
	t.Helper()
	return rules.NewSet(
		rules.MustParse(s, "COUNT(user, 10m) >= 4"),
		rules.MustParse(s, "SUM(amount, user, 1h) >= 2000 && amount >= 100"),
		rules.MustParse(s, "DISTINCT(amount, user, 30m) >= 5"),
		rules.MustParse(s, "amount >= 450"), // window-less control
		rules.MustParse(s, "COUNT(user, 5m) in [2,3] && score >= 500"),
	)
}

// TestCompiledWindowedEvalDifferential proves the compiled evaluator agrees
// with the reference rules.Set.Eval on windowed rule sets — the same
// differential contract the per-tuple paths have.
func TestCompiledWindowedEvalDifferential(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rel := velocityRelation(seed, 400)
		rs := velocityRules(t, rel.Schema())
		e := Compile(rel.Schema(), rs)
		want := rs.Eval(rel)
		if got := e.Eval(rel); !got.Equal(want) {
			t.Fatalf("seed %d: compiled Eval diverges from Set.Eval", seed)
		}
		// Per-rule and first-match paths agree with per-rule reference.
		per := e.EvalPerRule(rel)
		first := e.EvalFirst(rel)
		for i := 0; i < rel.Len(); i++ {
			wantFirst := NoRule
			for ri := 0; ri < rs.Len(); ri++ {
				inPer := per[ri].Has(i)
				if inPer != rs.Rule(ri).MatchesAt(rel, i) {
					t.Fatalf("seed %d: rule %d tuple %d: per-rule %v, MatchesAt %v",
						seed, ri, i, inPer, !inPer)
				}
				if inPer && wantFirst == NoRule {
					wantFirst = int32(ri)
				}
			}
			if first[i] != wantFirst {
				t.Fatalf("seed %d tuple %d: EvalFirst %d, want %d", seed, i, first[i], wantFirst)
			}
		}
	}
}

// TestWindowedAttribution checks the margin contract on windowed checks:
// pass ⟺ margin >= 0, and a one-sided >= K check's margin is aggregate − K.
func TestWindowedAttribution(t *testing.T) {
	s := velocitySchema()
	rel := relation.New(s)
	for i := int64(0); i < 6; i++ { // 6 events in 6 minutes for user 1
		rel.MustAppend(relation.Tuple{100 + i, 1, 100}, relation.Unlabeled, 500)
	}
	rs := rules.NewSet(rules.MustParse(s, "COUNT(user, 10m) >= 4"))
	e := Compile(s, rs)

	cols := window.ComputeColumns(rel, e.WindowSpecs())
	col := cols.Column(window.Spec{Agg: window.Count, Key: 1, Val: -1, Window: 10})
	if col == nil {
		t.Fatal("spec not registered")
	}
	for i := 0; i < rel.Len(); i++ {
		ra := e.AttributeRule(0, rel, i)
		var wcheck *CheckAttribution
		for k := range ra.Checks {
			if ra.Checks[k].IsWindow() {
				wcheck = &ra.Checks[k]
			}
		}
		if wcheck == nil {
			t.Fatalf("tuple %d: no window check emitted", i)
		}
		if wantMargin := col[i] - 4; wcheck.Margin != wantMargin {
			t.Errorf("tuple %d: margin %d, want aggregate-threshold %d", i, wcheck.Margin, wantMargin)
		}
		if wcheck.Pass != (wcheck.Margin >= 0) {
			t.Errorf("tuple %d: pass %v inconsistent with margin %d", i, wcheck.Pass, wcheck.Margin)
		}
		if wcheck.Pass != ra.Matched {
			t.Errorf("tuple %d: rule matched %v but window check pass %v", i, ra.Matched, wcheck.Pass)
		}
	}
	// Lazy attribution stays exact on the windowed set.
	var buf AttributionBuffer
	lazyOut := e.EvalAttributedLazyInto(rel, &buf)
	if want := rs.Eval(rel); !lazyOut.Equal(want) {
		t.Error("lazy attributed eval diverges from reference")
	}
	for i := 0; i < rel.Len(); i++ {
		if got, want := buf.Tuples[i].Flagged(), rs.Rule(0).MatchesAt(rel, i); got != want {
			t.Errorf("tuple %d: lazy flagged %v, want %v", i, got, want)
		}
	}
}

// TestWindowedEvalAfterAppend pins the cache-invalidation contract of the
// per-relation column set: evaluating, appending tuples, and evaluating
// again must recompute the aggregate columns for the grown relation rather
// than index past the stale stamp (the serving daemon's feedback relation
// does exactly this on every feedback batch).
func TestWindowedEvalAfterAppend(t *testing.T) {
	s := velocitySchema()
	rel := relation.New(s)
	for i := int64(0); i < 3; i++ {
		rel.MustAppend(relation.Tuple{100 + i, 1, 100}, relation.Unlabeled, 500)
	}
	rs := rules.NewSet(rules.MustParse(s, "COUNT(user, 10m) >= 4"))
	e := Compile(s, rs)

	if got := e.Eval(rel); got.Count() != 0 { // caches a 3-row column set
		t.Fatalf("3 events flagged %d tuples, want 0", got.Count())
	}
	rel.MustAppend(relation.Tuple{103, 1, 100}, relation.Unlabeled, 500)
	got := e.Eval(rel) // must recompute columns at length 4, not reuse 3 rows
	if got.Count() != 1 || !got.Has(3) {
		t.Fatalf("after append: flagged %d tuples (has(3)=%v), want exactly the 4th",
			got.Count(), got.Has(3))
	}
	per := e.EvalPerRule(rel)
	if !per[0].Has(3) {
		t.Fatal("per-rule eval missed the appended tuple")
	}
}

// TestWindowedIncrementalMaintenance exercises Add/Replace/Remove with
// windowed rules: the spec registry grows append-only and evaluation stays
// differentially correct after each mutation.
func TestWindowedIncrementalMaintenance(t *testing.T) {
	rel := velocityRelation(7, 300)
	s := rel.Schema()
	rs := rules.NewSet(rules.MustParse(s, "amount >= 400"))
	e := Compile(s, rs)

	check := func(stage string) {
		t.Helper()
		if got, want := e.Eval(rel), rs.Eval(rel); !got.Equal(want) {
			t.Fatalf("%s: compiled Eval diverges", stage)
		}
	}
	check("initial")

	r1 := rules.MustParse(s, "COUNT(user, 10m) >= 4")
	rs.Add(r1)
	e.Add(r1)
	check("after add windowed")
	if len(e.WindowSpecs()) != 1 {
		t.Fatalf("specs = %v, want 1", e.WindowSpecs())
	}

	r2 := rules.MustParse(s, "SUM(amount, user, 1h) >= 2000")
	rs.Replace(1, r2)
	e.Replace(1, r2)
	check("after replace")
	if len(e.WindowSpecs()) != 2 {
		t.Fatalf("specs after replace = %v, want 2 (append-only)", e.WindowSpecs())
	}

	rs.Remove(1)
	e.Remove(1)
	check("after remove")
	if len(e.WindowSpecs()) != 2 {
		t.Fatalf("specs after remove = %v, want 2 (append-only)", e.WindowSpecs())
	}
}
