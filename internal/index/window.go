package index

import (
	"math"

	"repro/internal/relation"
	"repro/internal/rules"
	"repro/internal/window"
)

// Windowed conditions in the compiled evaluator. A rule's velocity atoms
// (COUNT(user, 10m) > 5, ...) compile to interval checks over materialized
// aggregate columns: the evaluator keeps a deduplicated spec list and every
// evaluation entry point resolves, once per call, a column slice per spec
// (winCols). The serving daemon stamps live columns onto each scored batch
// from its window.Store; offline paths fall back to an exact replay
// (window.ComputeColumns). Rule sets without windowed conditions resolve a
// nil column table and pay nothing — the pinned allocation benchmarks
// (BenchmarkCompiledEvalFirst) run unchanged.

// compiledWin is one windowed condition: the spec's index in the
// evaluator's winSpecs and the admitted aggregate interval (one-sided
// thresholds carry math.MinInt64/MaxInt64 sentinels).
type compiledWin struct {
	spec   int32
	lo, hi int64
}

// WindowSpecs returns the deduplicated window specs of every rule compiled
// into the evaluator, in first-use order; callers must treat the slice as
// read-only. The list is append-only across Add/Replace/Remove — a spec
// stays registered even if its last rule goes away — so it may be a strict
// superset of the live rules' needs (stale columns are computed but never
// read; the set resets at the next full Compile).
func (e *Evaluator) WindowSpecs() []window.Spec { return e.winSpecs }

// winSpecIndex returns the index of sp in e.winSpecs, registering it if new.
func (e *Evaluator) winSpecIndex(sp window.Spec) int32 {
	for i, s := range e.winSpecs {
		if s == sp {
			return int32(i)
		}
	}
	e.winSpecs = append(e.winSpecs, sp)
	return int32(len(e.winSpecs) - 1)
}

// compileWins compiles r's windowed conditions into cr, registering specs.
func (e *Evaluator) compileWins(cr *compiledRule, r *rules.Rule) {
	for _, wc := range r.Windows() {
		if wc.Iv.IsEmpty() {
			cr.empty = true
			cr.wins = nil
			return
		}
		cr.wins = append(cr.wins, compiledWin{
			spec: e.winSpecIndex(wc.Spec), lo: wc.Iv.Lo, hi: wc.Iv.Hi,
		})
	}
}

// winCols resolves the aggregate column table for evaluating rel: one
// []int64 per registered spec, index-aligned with e.winSpecs, or nil when
// the evaluator has no windowed conditions (the common case — and the fast
// path: no column set is consulted or computed).
//
// A column set already stamped on the relation with exactly this spec list
// (the serving daemon's per-batch stamp, or a previous resolution here) is
// reused as-is. Anything else — no cache, or a cache with different specs —
// triggers an exact offline replay which is then cached on the relation;
// concurrent resolutions race benignly (equivalent sets, last writer wins).
func (e *Evaluator) winCols(rel *relation.Relation) [][]int64 {
	if len(e.winSpecs) == 0 {
		return nil
	}
	if cs, ok := rel.WindowColumns().(*window.ColumnSet); ok && cs.Matches(e.winSpecs, rel.Len()) {
		return cs.Cols
	}
	cs := window.ComputeColumns(rel, e.winSpecs)
	rel.SetWindowColumns(cs)
	return cs.Cols
}

// winMatches reports whether tuple i passes every windowed check, given the
// resolved column table. A nil table with checks present fails closed (it
// can only arise from programmatic misuse — every entry point resolves the
// table when specs exist).
func winMatches(cr *compiledRule, wc [][]int64, i int) bool {
	for _, w := range cr.wins {
		if wc == nil {
			return false
		}
		v := wc[w.spec][i]
		if v < w.lo || v > w.hi {
			return false
		}
	}
	return true
}

// attributeWin computes one windowed check's pass/fail and signed margin:
// the same near-miss semantics as numeric conditions (pass ⟺ margin >= 0),
// with one-sided thresholds measured against their only real bound so a
// "COUNT(...) >= K" check's margin is exactly aggregate − K.
func attributeWin(w compiledWin, v int64) CheckAttribution {
	out := CheckAttribution{Attr: WindowAttr - int(w.spec)}
	switch {
	case v < w.lo:
		out.Margin = -(w.lo - v)
	case v > w.hi:
		out.Margin = -(v - w.hi)
	default:
		out.Pass = true
		switch {
		case w.hi == math.MaxInt64:
			out.Margin = v - w.lo
		case w.lo == math.MinInt64:
			out.Margin = w.hi - v
		default:
			if m := w.hi - v; m < v-w.lo {
				out.Margin = m
			} else {
				out.Margin = v - w.lo
			}
		}
	}
	return out
}
