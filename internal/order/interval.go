package order

import "fmt"

// Interval is a closed interval [Lo, Hi] over a discrete numeric domain.
// An interval with Lo > Hi is empty and plays the role of the ⊥ element.
type Interval struct {
	Lo Value
	Hi Value
}

// Point returns the degenerate interval [v, v].
func Point(v Value) Interval { return Interval{Lo: v, Hi: v} }

// Empty returns a canonical empty interval.
func Empty() Interval { return Interval{Lo: 1, Hi: 0} }

// IsEmpty reports whether the interval contains no values.
func (iv Interval) IsEmpty() bool { return iv.Lo > iv.Hi }

// Size returns the number of values in the interval (0 when empty).
func (iv Interval) Size() int64 {
	if iv.IsEmpty() {
		return 0
	}
	return iv.Hi - iv.Lo + 1
}

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v Value) bool { return iv.Lo <= v && v <= iv.Hi }

// ContainsInterval reports whether other ⊆ iv. The empty interval is
// contained in every interval.
func (iv Interval) ContainsInterval(other Interval) bool {
	if other.IsEmpty() {
		return true
	}
	return iv.Lo <= other.Lo && other.Hi <= iv.Hi
}

// Equal reports whether the two intervals denote the same set of values.
// All empty intervals are equal to each other.
func (iv Interval) Equal(other Interval) bool {
	if iv.IsEmpty() || other.IsEmpty() {
		return iv.IsEmpty() && other.IsEmpty()
	}
	return iv == other
}

// Intersect returns the intersection of the two intervals.
func (iv Interval) Intersect(other Interval) Interval {
	lo, hi := iv.Lo, iv.Hi
	if other.Lo > lo {
		lo = other.Lo
	}
	if other.Hi < hi {
		hi = other.Hi
	}
	if lo > hi {
		return Empty()
	}
	return Interval{Lo: lo, Hi: hi}
}

// Overlaps reports whether the two intervals share at least one value.
func (iv Interval) Overlaps(other Interval) bool {
	return !iv.Intersect(other).IsEmpty()
}

// Cover returns the smallest interval containing both iv and other. Covering
// with an empty interval returns the other interval unchanged.
func (iv Interval) Cover(other Interval) Interval {
	if iv.IsEmpty() {
		return other
	}
	if other.IsEmpty() {
		return iv
	}
	lo, hi := iv.Lo, iv.Hi
	if other.Lo < lo {
		lo = other.Lo
	}
	if other.Hi > hi {
		hi = other.Hi
	}
	return Interval{Lo: lo, Hi: hi}
}

// CoverPoint returns the smallest interval containing both iv and v.
func (iv Interval) CoverPoint(v Value) Interval { return iv.Cover(Point(v)) }

// ExtensionDistance implements the interval distance of Equation 1: the sum
// of sizes of the smallest interval(s) that must be added to iv (the rule's
// condition) so that it contains target (the representative tuple's value
// range). For example |[1,5] − [5,100]| = 4, |[1,100] − [1,5]| = 95 and
// |[5,10] − [1,100]| = 0, matching the paper's examples (the paper writes the
// distance as |target − rule|).
//
// Extending an empty condition to a non-empty target costs the full size of
// the target.
func (iv Interval) ExtensionDistance(target Interval) int64 {
	if target.IsEmpty() {
		return 0
	}
	if iv.IsEmpty() {
		return target.Size()
	}
	var d int64
	if target.Lo < iv.Lo {
		d += iv.Lo - target.Lo
	}
	if target.Hi > iv.Hi {
		d += target.Hi - iv.Hi
	}
	return d
}

// Extend returns the smallest interval that contains both iv and target:
// the minimal generalization of the condition iv needed to capture target.
func (iv Interval) Extend(target Interval) Interval { return iv.Cover(target) }

// SplitAround removes the single value v from the interval, returning the
// (possibly empty) left part [Lo, v-1] and right part [v+1, Hi] restricted to
// the domain d. This is the numeric split of Algorithm 2, using prev(v) and
// succ(v) of the attribute's domain.
func (iv Interval) SplitAround(d Domain, v Value) (left, right Interval) {
	left, right = Empty(), Empty()
	if !iv.Contains(v) {
		return iv, Empty()
	}
	if p, ok := d.Prev(v); ok && p >= iv.Lo {
		left = Interval{Lo: iv.Lo, Hi: p}
	}
	if s, ok := d.Succ(v); ok && s <= iv.Hi {
		right = Interval{Lo: s, Hi: iv.Hi}
	}
	return left, right
}

// String renders the interval in the paper's notation.
func (iv Interval) String() string {
	if iv.IsEmpty() {
		return "⊥"
	}
	if iv.Lo == iv.Hi {
		return fmt.Sprintf("[%d]", iv.Lo)
	}
	return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi)
}
