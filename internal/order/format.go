package order

import (
	"fmt"
	"strconv"
	"strings"
)

// Format describes how the discretized values of a numeric domain are
// rendered and parsed. It exists so that rules and transactions print in the
// units the paper uses (clock times such as 18:05, dollar amounts such as
// $110) while the engine works on plain int64 values.
type Format int

const (
	// FormatPlain renders values as decimal integers.
	FormatPlain Format = iota
	// FormatTimeOfDay renders values as HH:MM within a single day
	// (v is minutes since midnight, modulo taken for multi-day domains).
	FormatTimeOfDay
	// FormatMinutes renders values as D+HH:MM where D is the day index.
	// v is minutes since the start of the observation period.
	FormatMinutes
	// FormatMoney renders values as $N (whole currency units).
	FormatMoney
)

const minutesPerDay = 24 * 60

// FormatValue renders v according to the format.
func (f Format) FormatValue(v Value) string {
	switch f {
	case FormatTimeOfDay:
		m := ((v % minutesPerDay) + minutesPerDay) % minutesPerDay
		return fmt.Sprintf("%02d:%02d", m/60, m%60)
	case FormatMinutes:
		day := v / minutesPerDay
		m := v % minutesPerDay
		if day == 0 {
			return fmt.Sprintf("%02d:%02d", m/60, m%60)
		}
		return fmt.Sprintf("%d+%02d:%02d", day, m/60, m%60)
	case FormatMoney:
		return "$" + strconv.FormatInt(v, 10)
	default:
		return strconv.FormatInt(v, 10)
	}
}

// ParseValue parses the textual form produced by FormatValue. Plain decimal
// integers are accepted by every format so that machine-generated data files
// remain format-agnostic.
func (f Format) ParseValue(s string) (Value, error) {
	s = strings.TrimSpace(s)
	if v, err := strconv.ParseInt(strings.TrimPrefix(s, "$"), 10, 64); err == nil {
		return v, nil
	}
	switch f {
	case FormatTimeOfDay, FormatMinutes:
		var day int64
		rest := s
		if i := strings.IndexByte(s, '+'); i >= 0 {
			d, err := strconv.ParseInt(s[:i], 10, 64)
			if err != nil {
				return 0, fmt.Errorf("order: bad day prefix in %q", s)
			}
			day, rest = d, s[i+1:]
		}
		hh, mm, ok := strings.Cut(rest, ":")
		if !ok {
			return 0, fmt.Errorf("order: bad time value %q", s)
		}
		h, err1 := strconv.ParseInt(hh, 10, 64)
		m, err2 := strconv.ParseInt(mm, 10, 64)
		if err1 != nil || err2 != nil || h < 0 || h > 23 || m < 0 || m > 59 {
			return 0, fmt.Errorf("order: bad time value %q", s)
		}
		return day*minutesPerDay + h*60 + m, nil
	default:
		return 0, fmt.Errorf("order: bad numeric value %q", s)
	}
}

// FormatInterval renders an interval using the format of its endpoints.
func (f Format) FormatInterval(iv Interval) string {
	if iv.IsEmpty() {
		return "⊥"
	}
	if iv.Lo == iv.Hi {
		return f.FormatValue(iv.Lo)
	}
	return "[" + f.FormatValue(iv.Lo) + "," + f.FormatValue(iv.Hi) + "]"
}
