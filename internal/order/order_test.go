package order

import (
	"testing"
	"testing/quick"
)

func TestNewDomainPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDomain(5, 1) did not panic")
		}
	}()
	NewDomain(5, 1)
}

func TestDomainContains(t *testing.T) {
	d := NewDomain(10, 20)
	for _, tc := range []struct {
		v    Value
		want bool
	}{
		{9, false}, {10, true}, {15, true}, {20, true}, {21, false},
	} {
		if got := d.Contains(tc.v); got != tc.want {
			t.Errorf("Contains(%d) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

func TestDomainSizeAndFull(t *testing.T) {
	d := NewDomain(-3, 3)
	if d.Size() != 7 {
		t.Errorf("Size() = %d, want 7", d.Size())
	}
	full := d.Full()
	if full.Lo != -3 || full.Hi != 3 {
		t.Errorf("Full() = %v, want [-3,3]", full)
	}
}

func TestDomainClamp(t *testing.T) {
	d := NewDomain(0, 100)
	for _, tc := range []struct{ in, want Value }{
		{-5, 0}, {0, 0}, {50, 50}, {100, 100}, {101, 100},
	} {
		if got := d.Clamp(tc.in); got != tc.want {
			t.Errorf("Clamp(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestDomainPrevSucc(t *testing.T) {
	d := NewDomain(0, 10)
	if _, ok := d.Prev(0); ok {
		t.Error("Prev(0) should not exist at domain minimum")
	}
	if v, ok := d.Prev(5); !ok || v != 4 {
		t.Errorf("Prev(5) = %d,%v, want 4,true", v, ok)
	}
	if _, ok := d.Succ(10); ok {
		t.Error("Succ(10) should not exist at domain maximum")
	}
	if v, ok := d.Succ(5); !ok || v != 6 {
		t.Errorf("Succ(5) = %d,%v, want 6,true", v, ok)
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := Interval{Lo: 3, Hi: 7}
	if iv.IsEmpty() {
		t.Error("[3,7] reported empty")
	}
	if iv.Size() != 5 {
		t.Errorf("Size() = %d, want 5", iv.Size())
	}
	if !iv.Contains(3) || !iv.Contains(7) || iv.Contains(8) || iv.Contains(2) {
		t.Error("Contains endpoints/outside wrong")
	}
	if Empty().Size() != 0 || !Empty().IsEmpty() {
		t.Error("Empty() is not empty")
	}
	if Point(4) != (Interval{Lo: 4, Hi: 4}) {
		t.Error("Point(4) wrong")
	}
}

func TestIntervalContainsInterval(t *testing.T) {
	for _, tc := range []struct {
		a, b Interval
		want bool
	}{
		{Interval{1, 10}, Interval{2, 5}, true},
		{Interval{1, 10}, Interval{1, 10}, true},
		{Interval{1, 10}, Interval{0, 5}, false},
		{Interval{1, 10}, Interval{5, 11}, false},
		{Interval{1, 10}, Empty(), true},
		{Empty(), Interval{1, 1}, false},
		{Empty(), Empty(), true},
	} {
		if got := tc.a.ContainsInterval(tc.b); got != tc.want {
			t.Errorf("%v.ContainsInterval(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestIntervalEqual(t *testing.T) {
	if !(Interval{5, 2}).Equal(Empty()) {
		t.Error("all empty intervals should compare equal")
	}
	if !(Interval{1, 3}).Equal(Interval{1, 3}) {
		t.Error("identical intervals unequal")
	}
	if (Interval{1, 3}).Equal(Interval{1, 4}) {
		t.Error("distinct intervals equal")
	}
}

func TestIntervalIntersect(t *testing.T) {
	for _, tc := range []struct {
		a, b, want Interval
	}{
		{Interval{1, 5}, Interval{3, 8}, Interval{3, 5}},
		{Interval{1, 5}, Interval{6, 8}, Empty()},
		{Interval{1, 5}, Interval{5, 8}, Interval{5, 5}},
		{Interval{1, 10}, Interval{3, 4}, Interval{3, 4}},
	} {
		got := tc.a.Intersect(tc.b)
		if !got.Equal(tc.want) {
			t.Errorf("%v ∩ %v = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestIntervalCover(t *testing.T) {
	for _, tc := range []struct {
		a, b, want Interval
	}{
		{Interval{1, 5}, Interval{8, 9}, Interval{1, 9}},
		{Interval{1, 5}, Empty(), Interval{1, 5}},
		{Empty(), Interval{2, 3}, Interval{2, 3}},
		{Interval{4, 6}, Interval{2, 5}, Interval{2, 6}},
	} {
		got := tc.a.Cover(tc.b)
		if !got.Equal(tc.want) {
			t.Errorf("%v.Cover(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
	if got := (Interval{2, 4}).CoverPoint(9); got != (Interval{2, 9}) {
		t.Errorf("CoverPoint = %v, want [2,9]", got)
	}
}

// TestExtensionDistancePaperExamples checks the three worked examples given
// under Equation 1 of the paper.
func TestExtensionDistancePaperExamples(t *testing.T) {
	for _, tc := range []struct {
		target, rule Interval
		want         int64
	}{
		{Interval{1, 5}, Interval{5, 100}, 4},       // |[1,5] − [5,100]| = 4
		{Interval{1, 100}, Interval{1, 5}, 95},      // |[1,100] − [1,5]| = 95
		{Interval{5, 10}, Interval{1, 100}, 0},      // |[5,10] − [1,100]| = 0
		{Interval{106, 107}, Interval{110, 1e6}, 4}, // Example 4.4: Amt ≥ 110 vs [106,107]
	} {
		if got := tc.rule.ExtensionDistance(tc.target); got != tc.want {
			t.Errorf("|%v − %v| = %d, want %d", tc.target, tc.rule, got, tc.want)
		}
	}
}

func TestExtensionDistanceEmptyCases(t *testing.T) {
	if got := Empty().ExtensionDistance(Interval{1, 5}); got != 5 {
		t.Errorf("extending empty to [1,5] = %d, want 5", got)
	}
	if got := (Interval{1, 5}).ExtensionDistance(Empty()); got != 0 {
		t.Errorf("extending to empty = %d, want 0", got)
	}
}

func TestExtendProducesCover(t *testing.T) {
	r := Interval{10, 20}
	f := Interval{5, 12}
	got := r.Extend(f)
	if got != (Interval{5, 20}) {
		t.Errorf("Extend = %v, want [5,20]", got)
	}
}

func TestSplitAround(t *testing.T) {
	d := NewDomain(0, 100)
	for _, tc := range []struct {
		iv          Interval
		v           Value
		left, right Interval
	}{
		{Interval{10, 20}, 15, Interval{10, 14}, Interval{16, 20}},
		{Interval{10, 20}, 10, Empty(), Interval{11, 20}},
		{Interval{10, 20}, 20, Interval{10, 19}, Empty()},
		{Interval{15, 15}, 15, Empty(), Empty()},
		{Interval{10, 20}, 50, Interval{10, 20}, Empty()}, // value outside: unchanged
	} {
		l, r := tc.iv.SplitAround(d, tc.v)
		if !l.Equal(tc.left) || !r.Equal(tc.right) {
			t.Errorf("%v.SplitAround(%d) = %v,%v want %v,%v", tc.iv, tc.v, l, r, tc.left, tc.right)
		}
	}
}

func TestSplitAroundAtDomainEdge(t *testing.T) {
	d := NewDomain(0, 100)
	l, r := (Interval{0, 5}).SplitAround(d, 0)
	if !l.IsEmpty() || !r.Equal(Interval{1, 5}) {
		t.Errorf("split at domain min = %v,%v", l, r)
	}
	l, r = (Interval{95, 100}).SplitAround(d, 100)
	if !l.Equal(Interval{95, 99}) || !r.IsEmpty() {
		t.Errorf("split at domain max = %v,%v", l, r)
	}
}

func TestIntervalString(t *testing.T) {
	for _, tc := range []struct {
		iv   Interval
		want string
	}{
		{Interval{1, 5}, "[1,5]"},
		{Point(7), "[7]"},
		{Empty(), "⊥"},
	} {
		if got := tc.iv.String(); got != tc.want {
			t.Errorf("String(%v) = %q, want %q", tc.iv, got, tc.want)
		}
	}
}

// Property: ExtensionDistance is zero iff the rule already contains the
// target, and Extend always yields a containing interval whose extra size
// equals the distance.
func TestExtensionDistanceProperties(t *testing.T) {
	f := func(a, b, c, d int16) bool {
		rule := Interval{Lo: min64(int64(a), int64(b)), Hi: max64(int64(a), int64(b))}
		target := Interval{Lo: min64(int64(c), int64(d)), Hi: max64(int64(c), int64(d))}
		dist := rule.ExtensionDistance(target)
		ext := rule.Extend(target)
		if !ext.ContainsInterval(target) || !ext.ContainsInterval(rule) {
			return false
		}
		if (dist == 0) != rule.ContainsInterval(target) {
			return false
		}
		return ext.Size()-rule.Size() == dist
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Intersect is the greatest lower bound and Cover the least upper
// bound with respect to interval containment.
func TestIntervalLatticeProperties(t *testing.T) {
	f := func(a, b, c, d int16) bool {
		x := Interval{Lo: min64(int64(a), int64(b)), Hi: max64(int64(a), int64(b))}
		y := Interval{Lo: min64(int64(c), int64(d)), Hi: max64(int64(c), int64(d))}
		inter, cov := x.Intersect(y), x.Cover(y)
		return x.ContainsInterval(inter) && y.ContainsInterval(inter) &&
			cov.ContainsInterval(x) && cov.ContainsInterval(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatValue(t *testing.T) {
	for _, tc := range []struct {
		f    Format
		v    Value
		want string
	}{
		{FormatPlain, 42, "42"},
		{FormatTimeOfDay, 18*60 + 5, "18:05"},
		{FormatTimeOfDay, 0, "00:00"},
		{FormatTimeOfDay, 2*minutesPerDay + 61, "01:01"},
		{FormatMinutes, 61, "01:01"},
		{FormatMinutes, minutesPerDay + 61, "1+01:01"},
		{FormatMoney, 110, "$110"},
	} {
		if got := tc.f.FormatValue(tc.v); got != tc.want {
			t.Errorf("%v.FormatValue(%d) = %q, want %q", tc.f, tc.v, got, tc.want)
		}
	}
}

func TestParseValue(t *testing.T) {
	for _, tc := range []struct {
		f    Format
		s    string
		want Value
	}{
		{FormatPlain, "42", 42},
		{FormatMoney, "$110", 110},
		{FormatMoney, "110", 110},
		{FormatTimeOfDay, "18:05", 18*60 + 5},
		{FormatMinutes, "1+01:01", minutesPerDay + 61},
		{FormatMinutes, "90", 90},
	} {
		got, err := tc.f.ParseValue(tc.s)
		if err != nil || got != tc.want {
			t.Errorf("%v.ParseValue(%q) = %d,%v want %d", tc.f, tc.s, got, err, tc.want)
		}
	}
}

func TestParseValueErrors(t *testing.T) {
	for _, tc := range []struct {
		f Format
		s string
	}{
		{FormatPlain, "abc"},
		{FormatTimeOfDay, "25:00"},
		{FormatTimeOfDay, "12:61"},
		{FormatMinutes, "x+01:00"},
		{FormatMoney, "$$5x"},
	} {
		if _, err := tc.f.ParseValue(tc.s); err == nil {
			t.Errorf("%v.ParseValue(%q) succeeded, want error", tc.f, tc.s)
		}
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	f := func(v int32, k uint8) bool {
		format := Format(k % 4)
		val := int64(v)
		if format == FormatTimeOfDay {
			val = ((val % minutesPerDay) + minutesPerDay) % minutesPerDay
		}
		if format == FormatMinutes && val < 0 {
			val = -val
		}
		got, err := format.ParseValue(format.FormatValue(val))
		return err == nil && got == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatInterval(t *testing.T) {
	f := FormatTimeOfDay
	if got := f.FormatInterval(Interval{18 * 60, 18*60 + 5}); got != "[18:00,18:05]" {
		t.Errorf("FormatInterval = %q", got)
	}
	if got := f.FormatInterval(Point(60)); got != "01:00" {
		t.Errorf("FormatInterval point = %q", got)
	}
	if got := f.FormatInterval(Empty()); got != "⊥" {
		t.Errorf("FormatInterval empty = %q", got)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
