// Package order models the totally ordered, discrete attribute domains used
// by the RUDOLF rule language: bounded integer domains with predecessor and
// successor, closed intervals, and the interval-extension distance of
// Equation 1 of the paper (Milo, Novgorodov, Tan: "Interactive Rule
// Refinement for Fraud Detection", EDBT 2018).
//
// All numeric attribute values are represented as int64 after discretization
// (minutes for time, whole dollars for amounts, counts for counters). The
// greatest element ⊤ of a domain is the full interval [Min, Max]; the least
// element ⊥ is the empty interval, which by assumption never appears as a
// tuple value.
package order

import "fmt"

// Value is a point in a discrete numeric domain.
type Value = int64

// Domain is a bounded discrete numeric domain [Min, Max] with unit step.
// The zero value is the degenerate domain [0, 0].
type Domain struct {
	Min Value
	Max Value
}

// NewDomain returns the domain [min, max]. It panics if min > max; domains
// are built from static schema declarations, so a bad bound is a programming
// error rather than a runtime condition.
func NewDomain(min, max Value) Domain {
	if min > max {
		panic(fmt.Sprintf("order: invalid domain [%d, %d]", min, max))
	}
	return Domain{Min: min, Max: max}
}

// Contains reports whether v lies within the domain bounds.
func (d Domain) Contains(v Value) bool { return d.Min <= v && v <= d.Max }

// Size returns the number of values in the domain.
func (d Domain) Size() int64 { return d.Max - d.Min + 1 }

// Full returns the interval covering the entire domain (the ⊤ element).
func (d Domain) Full() Interval { return Interval{Lo: d.Min, Hi: d.Max} }

// Clamp returns v restricted to the domain bounds.
func (d Domain) Clamp(v Value) Value {
	if v < d.Min {
		return d.Min
	}
	if v > d.Max {
		return d.Max
	}
	return v
}

// Prev returns the predecessor of v in the domain and whether one exists.
// It is used by the rule specialization algorithm (Algorithm 2) to split a
// condition A ∈ [b, e] into [b, prev(v)] and [succ(v), e].
func (d Domain) Prev(v Value) (Value, bool) {
	if v <= d.Min {
		return 0, false
	}
	return v - 1, true
}

// Succ returns the successor of v in the domain and whether one exists.
func (d Domain) Succ(v Value) (Value, bool) {
	if v >= d.Max {
		return 0, false
	}
	return v + 1, true
}
