package alert

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func discardLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }

// flakySink is a webhook receiver that fails the first failN requests, then
// accepts everything, recording the delivered payloads.
type flakySink struct {
	mu       sync.Mutex
	failN    int
	requests int
	events   []Event
}

func (f *flakySink) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.requests++
	if f.requests <= f.failN {
		http.Error(w, "not yet", http.StatusServiceUnavailable)
		return
	}
	var p webhookPayload
	if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	f.events = append(f.events, p.Alerts...)
	w.WriteHeader(http.StatusOK)
}

func (f *flakySink) snapshot() (int, []Event) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.requests, append([]Event(nil), f.events...)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestWebhookRetryBackoff: a delivery that fails twice is retried with
// backoff and eventually lands, with retries counted.
func TestWebhookRetryBackoff(t *testing.T) {
	sink := &flakySink{failN: 2}
	srv := httptest.NewServer(sink)
	defer srv.Close()
	s := newWebhookSink(WebhookConfig{
		URL:        srv.URL,
		MinBackoff: time.Millisecond,
		MaxBackoff: 4 * time.Millisecond,
	}, nil, discardLogger())
	defer s.close()

	s.enqueue(Event{Name: "boom", State: StateFiring, At: time.Now()})
	waitFor(t, "delivery after retries", func() bool { return s.sent.Load() == 1 })
	reqs, events := sink.snapshot()
	if reqs != 3 {
		t.Errorf("requests = %d, want 2 failures + 1 success", reqs)
	}
	if len(events) != 1 || events[0].Name != "boom" {
		t.Errorf("delivered events = %+v", events)
	}
	if got := s.retries.Load(); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	if st := s.status(); st.Sent != 1 || st.Retries != 2 || st.Dropped != 0 {
		t.Errorf("status = %+v", st)
	}
}

// TestWebhookBatches: events queued while a delivery is in flight coalesce
// into one POST.
func TestWebhookBatches(t *testing.T) {
	var gate sync.WaitGroup
	gate.Add(1)
	sink := &flakySink{}
	var first atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if first.CompareAndSwap(false, true) {
			gate.Wait() // hold the first delivery open while more events queue
		}
		sink.ServeHTTP(w, r)
	}))
	defer srv.Close()
	s := newWebhookSink(WebhookConfig{URL: srv.URL, MinBackoff: time.Millisecond}, nil, discardLogger())
	defer s.close()

	s.enqueue(Event{Name: "a", State: StateFiring})
	waitFor(t, "first delivery in flight", func() bool { return first.Load() })
	s.enqueue(Event{Name: "b", State: StateFiring})
	s.enqueue(Event{Name: "c", State: StateResolved})
	gate.Done()
	waitFor(t, "all deliveries", func() bool { return s.sent.Load() == 3 })
	reqs, events := sink.snapshot()
	if reqs != 2 {
		t.Errorf("requests = %d, want 2 (first single, then a coalesced batch)", reqs)
	}
	if len(events) != 3 {
		t.Errorf("delivered %d events, want 3", len(events))
	}
}

// TestWebhookQueueDrop: a full queue drops new events instead of blocking
// the evaluation pass, and counts them.
func TestWebhookQueueDrop(t *testing.T) {
	reg := telemetry.NewRegistry()
	// Unroutable URL + tiny queue: nothing ever drains.
	s := newWebhookSink(WebhookConfig{
		URL:        "http://127.0.0.1:1/unreachable",
		QueueCap:   2,
		MinBackoff: time.Hour, // park the sender after the first failure
		MaxBackoff: time.Hour,
		Timeout:    10 * time.Millisecond,
	}, reg, discardLogger())
	defer s.close()

	for i := 0; i < 10; i++ {
		s.enqueue(Event{Name: "spam", State: StateFiring})
	}
	if s.dropped.Load() == 0 {
		t.Fatal("no drops recorded on an over-full queue")
	}
	if v, ok := reg.Value("rudolf_alert_webhook_dropped_total"); !ok || v == 0 {
		t.Fatalf("drop counter series = %v/%v", v, ok)
	}
	if s.sent.Load() != 0 {
		t.Errorf("sent = %d against an unroutable URL", s.sent.Load())
	}
	if q := len(s.ch); q > 2 {
		t.Errorf("queue holds %d events, cap is 2", q)
	}
}

// TestWebhookCloseMidRetry: close() interrupts a backoff sleep promptly and
// counts the stranded queue as dropped.
func TestWebhookCloseMidRetry(t *testing.T) {
	s := newWebhookSink(WebhookConfig{
		URL:        "http://127.0.0.1:1/unreachable",
		QueueCap:   4,
		MinBackoff: time.Hour,
		MaxBackoff: time.Hour,
		Timeout:    10 * time.Millisecond,
	}, nil, discardLogger())
	for i := 0; i < 4; i++ {
		s.enqueue(Event{Name: "stuck", State: StateFiring})
	}
	waitFor(t, "first attempt", func() bool { return s.retries.Load() >= 1 })
	start := time.Now()
	s.close()
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("close blocked %v against an hour-long backoff", took)
	}
	if s.sent.Load() != 0 || s.dropped.Load() == 0 {
		t.Errorf("after close: sent=%d dropped=%d, want stranded events counted dropped",
			s.sent.Load(), s.dropped.Load())
	}
}

// TestEngineWebhookEndToEnd: engine transitions reach the webhook.
func TestEngineWebhookEndToEnd(t *testing.T) {
	sink := &flakySink{}
	srv := httptest.NewServer(sink)
	defer srv.Close()
	reg := telemetry.NewRegistry()
	sig := reg.FloatGauge("sig")
	clk := newFakeClock()
	e := NewEngine(Config{
		Rules:   MustParseRules("alert hook severity=page: value(sig) > 1"),
		Sources: Sources{Metrics: reg},
		Webhook: &WebhookConfig{URL: srv.URL, MinBackoff: time.Millisecond},
		Now:     clk.Now,
	})
	defer e.Close()

	sig.Set(5)
	e.Evaluate()
	clk.Advance(time.Second)
	sig.Set(0)
	e.Evaluate()
	waitFor(t, "firing+resolved delivered", func() bool {
		_, events := sink.snapshot()
		return len(events) == 2
	})
	_, events := sink.snapshot()
	if events[0].State != StateFiring || events[1].State != StateResolved {
		t.Fatalf("delivered sequence: %+v", events)
	}
	if snap := e.Snapshot(); snap.Webhook == nil || snap.Webhook.Sent != 2 {
		t.Fatalf("snapshot webhook status: %+v", snap.Webhook)
	}
}

func TestParseRuleLines(t *testing.T) {
	rules, err := ParseRuleLines([]string{"alert a: value(x) > 1", "", "# c", "alert b: value(y) > 2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("parsed %d rules, want 2", len(rules))
	}
	if _, err := ParseRuleLines([]string{"alert a: value(x) >"}); err == nil ||
		!strings.Contains(err.Error(), "line 1") {
		t.Fatalf("bad line not located: %v", err)
	}
}
