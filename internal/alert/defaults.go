package alert

// defaultRulesText is the compiled-in rule set rudolfd loads when no
// -alerts file is given: one alert per operational failure mode the daemon
// already measures. Thresholds are deliberately conservative — they are
// SLO defaults for a production box, not demo triggers (scripts/smoke.sh
// publishes its own aggressive rules to exercise the lifecycle quickly).
const defaultRulesText = `
# SLO burn: the eval stage of the score hot path. The whole-request budget
# is single-digit milliseconds; a sustained 5ms p99 in eval alone means the
# rule set or the window store is drowning.
alert slo_eval_p99 severity=page for=1m: p99(rudolf_stage_duration_seconds{stage="eval"}) > 5ms

# Replication lag: a follower trailing the leader by hundreds of WAL
# records for sustained time is serving stale rule versions. (On a leader
# the series does not exist, so this alert never leaves inactive.)
alert replica_lag severity=page for=30s: value(rudolf_replica_lag_records) > 500

# Replication churn: steady reconnects mean the stream keeps dying (leader
# restarts, network flap, prune races).
alert replica_reconnect_churn severity=warn for=1m: rate(rudolf_replica_reconnects_total) > 0.2

# Durability: WAL fsync stalls starve every acknowledged write.
alert wal_fsync_stall severity=warn for=30s: p99(rudolf_wal_fsync_seconds) > 50ms

# Window store pressure: LRU evictions mean live velocity state is being
# discarded to make room — windowed rules silently under-count.
alert window_lru_pressure severity=warn for=1m: rate(rudolf_window_evictions_total{cause="lru"}) > 100

# Rule health: some published rule is mostly wrong on labeled feedback
# (FP share over 90% with at least 5 labeled feedbacks).
alert rule_fp_spike severity=warn for=2m: max(rule_fp_share) > 0.9
`

// DefaultRules returns the compiled-in rule set (a fresh copy per call).
func DefaultRules() []Rule { return MustParseRules(defaultRulesText) }
