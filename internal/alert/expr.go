package alert

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Expr is one compiled threshold expression:
//
//	<fn>(<signal>) <op> <threshold>
//
// Functions:
//
//	value(series)  — the instantaneous value of a counter / gauge /
//	                 float-gauge telemetry series (exact name, labels
//	                 included). A missing series is "no data", not zero —
//	                 value(rudolf_replica_lag_records) simply never fires
//	                 on a leader, where the series does not exist.
//	rate(series)   — the per-second increase of a counter (or of a
//	                 histogram's observation count) between evaluations.
//	p50/p90/p95/p99/p999(series)
//	               — the quantile estimate over the histogram's
//	                 observations since the previous evaluation (the
//	                 inter-tick delta, not the lifetime distribution —
//	                 cumulative buckets would never let an alert resolve).
//	                 An interval with no observations is "no data".
//	max(signal)    — the maximum over a per-rule rulestats signal:
//	                 rule_fp_share (FP/(TP+FP), rules with ≥ MinEvidence
//	                 labeled feedbacks only), rule_drift, or
//	                 rule_staleness_seconds (rules that have fired).
//
// Comparators: > >= < <= == !=. Thresholds are plain numbers or Go
// durations (5ms → 0.005; seconds are the unit of every latency series).
//
// "No data" makes the condition false: an alert with nothing to measure is
// not breaching, and a firing alert whose signal dries up resolves.
type Expr struct {
	// Fn is the sampling function name.
	Fn string
	// Signal is the series name (labels included) or rulestats signal.
	Signal string
	// Op is the comparator.
	Op string
	// Threshold is the right-hand side, in the signal's unit.
	Threshold float64
	// Raw is the original expression text.
	Raw string
}

// The rulestats per-rule signals usable under max(...).
const (
	SignalRuleFPShare   = "rule_fp_share"
	SignalRuleDrift     = "rule_drift"
	SignalRuleStaleness = "rule_staleness_seconds"
)

// MinEvidence is the labeled-feedback floor for rule_fp_share: rules with
// fewer than this many TP+FP feedbacks are skipped, so one stray analyst
// label cannot page anyone.
const MinEvidence = 5

// quantileFns maps the pNN function names to their quantile.
var quantileFns = map[string]float64{
	"p50": 0.50, "p90": 0.90, "p95": 0.95, "p99": 0.99, "p999": 0.999,
}

// ParseExpr parses the expression grammar documented on Expr.
func ParseExpr(text string) (Expr, error) {
	raw := strings.TrimSpace(text)
	lp := strings.IndexByte(raw, '(')
	rp := strings.LastIndexByte(raw, ')')
	if lp < 0 || rp < lp {
		return Expr{}, fmt.Errorf("bad expression %q: want fn(signal) op threshold", raw)
	}
	e := Expr{
		Fn:     strings.TrimSpace(raw[:lp]),
		Signal: strings.TrimSpace(raw[lp+1 : rp]),
		Raw:    raw,
	}
	if _, isQuantile := quantileFns[e.Fn]; !isQuantile {
		switch e.Fn {
		case "value", "rate", "max":
		default:
			return Expr{}, fmt.Errorf("unknown function %q (want value, rate, max, p50, p90, p95, p99 or p999)", e.Fn)
		}
	}
	if e.Signal == "" {
		return Expr{}, fmt.Errorf("empty signal in %q", raw)
	}
	if e.Fn == "max" {
		switch e.Signal {
		case SignalRuleFPShare, SignalRuleDrift, SignalRuleStaleness:
		default:
			return Expr{}, fmt.Errorf("max() takes a rulestats signal (%s, %s or %s), not %q",
				SignalRuleFPShare, SignalRuleDrift, SignalRuleStaleness, e.Signal)
		}
	}
	rest := strings.Fields(raw[rp+1:])
	if len(rest) != 2 {
		return Expr{}, fmt.Errorf("bad comparison in %q: want `op threshold` after the closing ')'", raw)
	}
	switch rest[0] {
	case ">", ">=", "<", "<=", "==", "!=":
		e.Op = rest[0]
	default:
		return Expr{}, fmt.Errorf("unknown comparator %q (want >, >=, <, <=, == or !=)", rest[0])
	}
	th, err := parseThreshold(rest[1])
	if err != nil {
		return Expr{}, fmt.Errorf("bad threshold %q: %w", rest[1], err)
	}
	e.Threshold = th
	return e, nil
}

// parseThreshold accepts a plain float or a Go duration (converted to
// seconds — the unit of every telemetry latency series).
func parseThreshold(s string) (float64, error) {
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	if d, err := time.ParseDuration(s); err == nil {
		if d < 0 {
			return 0, fmt.Errorf("negative duration")
		}
		return d.Seconds(), nil
	}
	return 0, fmt.Errorf("want a number (0.9) or a duration (5ms)")
}

// compare applies the expression's comparator to a sampled value.
func (e Expr) compare(v float64) bool {
	switch e.Op {
	case ">":
		return v > e.Threshold
	case ">=":
		return v >= e.Threshold
	case "<":
		return v < e.Threshold
	case "<=":
		return v <= e.Threshold
	case "==":
		return v == e.Threshold
	case "!=":
		return v != e.Threshold
	}
	return false
}
