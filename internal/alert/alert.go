// Package alert is the daemon's stdlib-only alerting and SLO engine
// (DESIGN.md §17): it periodically evaluates declarative threshold rules
// over three signal sources — the live telemetry registry (counter rates,
// gauge values, histogram-quantile estimates over the inter-evaluation
// delta), rulestats epochs (per-rule false-positive share, drift,
// staleness) and replication state (the follower lag and reconnect series)
// — and drives each rule through a pending → firing → resolved state
// machine with `for`-duration hysteresis, a bounded transition history, an
// ALERTS{name,severity,state} gauge family, and an optional webhook sink.
//
// Evaluation runs on its own ticker, never on the scoring hot path: the
// engine only reads atomics the hot path already maintains.
package alert

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Severity ranks an alert rule: "info" (FYI), "warn" (investigate) or
// "page" (wake someone).
type Severity string

// The recognized severities.
const (
	SeverityInfo Severity = "info"
	SeverityWarn Severity = "warn"
	SeverityPage Severity = "page"
)

func parseSeverity(s string) (Severity, error) {
	switch Severity(s) {
	case SeverityInfo, SeverityWarn, SeverityPage:
		return Severity(s), nil
	}
	return "", fmt.Errorf("unknown severity %q (want info, warn or page)", s)
}

// State is one alert's position in the lifecycle. Inactive alerts have no
// breach; Pending alerts breach but have not sustained it for the rule's
// `for` duration; Firing alerts have. There is no "resolved" state — a
// resolution is a transition (Firing → Inactive) recorded in the history.
type State string

// The alert states.
const (
	StateInactive State = "inactive"
	StatePending  State = "pending"
	StateFiring   State = "firing"
	// StateResolved appears only in transition events (and webhook
	// payloads), never as a rule's current state.
	StateResolved State = "resolved"
)

// Rule is one declarative alert: a named threshold expression with a
// severity and a `for`-duration that the breach must sustain before the
// alert fires. Rules parse from a line-oriented text form:
//
//	alert <name> [severity=info|warn|page] [for=<duration>]: <expr>
//
// e.g.
//
//	alert slo_score_eval_p99 severity=page for=1m: p99(rudolf_stage_duration_seconds{stage="eval"}) > 5ms
//
// See ParseExpr for the expression grammar.
type Rule struct {
	// Name identifies the alert (the ALERTS{name=...} label). Letters,
	// digits, '_', '-' and '.' only.
	Name string
	// Severity defaults to warn.
	Severity Severity
	// For is the hysteresis: the expression must hold on every evaluation
	// for at least this long before the alert transitions pending → firing.
	// 0 fires on the first breaching evaluation.
	For time.Duration
	// Expr is the compiled threshold expression.
	Expr Expr
	// Raw is the rule's original text (round-tripped by GET /v1/alerts).
	Raw string
}

// validName reports whether s is a well-formed alert name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '-', r == '.':
		default:
			return false
		}
	}
	return true
}

// ParseRule parses one alert definition line.
func ParseRule(line string) (Rule, error) {
	raw := strings.TrimSpace(line)
	colon := strings.IndexByte(raw, ':')
	if colon < 0 {
		return Rule{}, fmt.Errorf("missing ':' between the alert header and its expression in %q", raw)
	}
	header, exprText := strings.TrimSpace(raw[:colon]), strings.TrimSpace(raw[colon+1:])
	fields := strings.Fields(header)
	if len(fields) < 2 || fields[0] != "alert" {
		return Rule{}, fmt.Errorf("alert header %q: want `alert <name> [severity=...] [for=...]`", header)
	}
	r := Rule{Name: fields[1], Severity: SeverityWarn, Raw: raw}
	if !validName(r.Name) {
		return Rule{}, fmt.Errorf("bad alert name %q (letters, digits, '_', '-', '.')", fields[1])
	}
	for _, f := range fields[2:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return Rule{}, fmt.Errorf("alert %s: bad header option %q (want key=value)", r.Name, f)
		}
		switch k {
		case "severity":
			sev, err := parseSeverity(v)
			if err != nil {
				return Rule{}, fmt.Errorf("alert %s: %w", r.Name, err)
			}
			r.Severity = sev
		case "for":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return Rule{}, fmt.Errorf("alert %s: bad for=%q (want a non-negative duration like 30s)", r.Name, v)
			}
			r.For = d
		default:
			return Rule{}, fmt.Errorf("alert %s: unknown header option %q (want severity= or for=)", r.Name, k)
		}
	}
	expr, err := ParseExpr(exprText)
	if err != nil {
		return Rule{}, fmt.Errorf("alert %s: %w", r.Name, err)
	}
	r.Expr = expr
	return r, nil
}

// ParseRules parses a whole alert-rule document: one rule per line, '#'
// comments and blank lines ignored. Duplicate names are an error.
func ParseRules(r io.Reader) ([]Rule, error) {
	var out []Rule
	seen := make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rule, err := ParseRule(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if prev, dup := seen[rule.Name]; dup {
			return nil, fmt.Errorf("line %d: alert %q already defined on line %d", lineNo, rule.Name, prev)
		}
		seen[rule.Name] = lineNo
		out = append(out, rule)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ParseRuleLines parses one rule per string — the POST /v1/alerts body shape.
func ParseRuleLines(lines []string) ([]Rule, error) {
	return ParseRules(strings.NewReader(strings.Join(lines, "\n")))
}

// MustParseRules is ParseRules over a string, panicking on error — for the
// compiled-in default rule set, which is validated by tests.
func MustParseRules(text string) []Rule {
	rules, err := ParseRules(strings.NewReader(text))
	if err != nil {
		panic(fmt.Sprintf("alert: bad built-in rules: %v", err))
	}
	return rules
}

// Event is one recorded lifecycle transition (firing or resolved) — the
// history-ring entry and the webhook payload item.
type Event struct {
	Name     string   `json:"name"`
	Severity Severity `json:"severity"`
	// State is "firing" or "resolved".
	State State `json:"state"`
	// Expr is the rule's expression text.
	Expr string `json:"expr"`
	// Value is the sampled value that caused the transition (for resolved
	// events: the last breaching value).
	Value float64 `json:"value"`
	// At is when the transition happened.
	At time.Time `json:"at"`
	// FiredAt is when the alert started firing (set on resolved events, so
	// consumers see the incident span without correlating two events).
	FiredAt time.Time `json:"fired_at,omitzero"`
}

// RuleStatus is one rule's current position for GET /v1/alerts.
type RuleStatus struct {
	Name     string   `json:"name"`
	Severity Severity `json:"severity"`
	State    State    `json:"state"`
	Expr     string   `json:"expr"`
	ForS     float64  `json:"for_s"`
	// SinceS is seconds spent in the current state (omitted while inactive).
	SinceS float64 `json:"since_s,omitempty"`
	// Value is the most recent sample of the rule's expression input.
	Value float64 `json:"value"`
	// HasData is false when the expression's series has produced no sample
	// yet (missing series, or a delta window with no observations).
	HasData bool `json:"has_data"`
}

// sortEventsNewestFirst orders a copied history slice for the wire.
func sortEventsNewestFirst(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At.After(evs[j].At) })
}
