package alert

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/rulestats"
	"repro/internal/telemetry"
)

// fakeClock is a manually advanced clock for deterministic hysteresis
// tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestParseRule(t *testing.T) {
	t.Run("full header", func(t *testing.T) {
		r, err := ParseRule(`alert eval_p99 severity=page for=1m: p99(rudolf_stage_duration_seconds{stage="eval"}) > 5ms`)
		if err != nil {
			t.Fatal(err)
		}
		if r.Name != "eval_p99" || r.Severity != SeverityPage || r.For != time.Minute {
			t.Fatalf("header parsed as %+v", r)
		}
		if r.Expr.Fn != "p99" || r.Expr.Signal != `rudolf_stage_duration_seconds{stage="eval"}` ||
			r.Expr.Op != ">" || r.Expr.Threshold != 0.005 {
			t.Fatalf("expr parsed as %+v", r.Expr)
		}
	})
	t.Run("defaults", func(t *testing.T) {
		r, err := ParseRule(`alert lag: value(rudolf_replica_lag_records) >= 500`)
		if err != nil {
			t.Fatal(err)
		}
		if r.Severity != SeverityWarn || r.For != 0 || r.Expr.Threshold != 500 {
			t.Fatalf("defaults: %+v", r)
		}
	})
	for _, bad := range []string{
		`p99(x) > 5ms`,                                // no header
		`alert a severity=fatal: value(x) > 1`,        // bad severity
		`alert a for=-5s: value(x) > 1`,               // negative for
		`alert a wat=1: value(x) > 1`,                 // unknown option
		`alert a value(x) > 1`,                        // missing colon
		`alert bad name: value(x) > 1`,                // space in name (parsed as option)
		`alert a: histogram_quantile(0.99, x) > 1`,    // unknown fn
		`alert a: value(x) ~ 1`,                       // bad op
		`alert a: value(x) > fast`,                    // bad threshold
		`alert a: max(rudolf_score_tx_total) > 1`,     // max needs a rulestats signal
		`alert a: value() > 1`,                        // empty signal
		`alert a: value(x) > 1 2`,                     // trailing garbage
	} {
		if _, err := ParseRule(bad); err == nil {
			t.Errorf("ParseRule(%q) succeeded, want error", bad)
		}
	}
}

func TestParseRulesDocument(t *testing.T) {
	doc := `
# comment
alert a: value(x) > 1

alert b for=10s: rate(y_total) > 0.5
`
	rules, err := ParseRules(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].Name != "a" || rules[1].Name != "b" {
		t.Fatalf("parsed %+v", rules)
	}
	if _, err := ParseRules(strings.NewReader("alert a: value(x) > 1\nalert a: value(x) > 2")); err == nil {
		t.Error("duplicate names accepted")
	}
}

func TestDefaultRules(t *testing.T) {
	rules := DefaultRules()
	if len(rules) < 5 {
		t.Fatalf("DefaultRules() = %d rules, want the documented set", len(rules))
	}
	names := map[string]bool{}
	for _, r := range rules {
		names[r.Name] = true
	}
	for _, want := range []string{"slo_eval_p99", "replica_lag", "wal_fsync_stall", "window_lru_pressure", "rule_fp_spike"} {
		if !names[want] {
			t.Errorf("default rules missing %q", want)
		}
	}
}

// TestStateMachine drives the pending → firing → resolved lifecycle with a
// gauge signal under a fake clock: table-driven (value, advance) steps with
// the expected state after each evaluation.
func TestStateMachine(t *testing.T) {
	type step struct {
		value float64
		want  State
	}
	const tick = 100 * time.Millisecond
	cases := []struct {
		name  string
		rule  string
		steps []step
	}{
		{
			name: "for hysteresis",
			rule: "alert a for=200ms: value(sig) > 10",
			steps: []step{
				{5, StateInactive},
				{15, StatePending},  // breach at t
				{15, StatePending},  // +100ms < for
				{15, StateFiring},   // +200ms >= for
				{15, StateFiring},   // stays
				{5, StateInactive},  // resolves
				{15, StatePending},  // re-arms from scratch
			},
		},
		{
			name: "dip resets pending",
			rule: "alert a for=200ms: value(sig) > 10",
			steps: []step{
				{15, StatePending},
				{15, StatePending},
				{5, StateInactive}, // dip before `for` elapsed: no fire
				{15, StatePending}, // window restarts
				{15, StatePending},
				{15, StateFiring},
			},
		},
		{
			name: "for zero fires immediately",
			rule: "alert a: value(sig) > 10",
			steps: []step{
				{15, StateFiring},
				{5, StateInactive},
			},
		},
		{
			name: "less-than comparator",
			rule: "alert a for=100ms: value(sig) < 3",
			steps: []step{
				{2, StatePending},
				{2, StateFiring},
				{4, StateInactive},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := telemetry.NewRegistry()
			sig := reg.FloatGauge("sig")
			clk := newFakeClock()
			rules, err := ParseRules(strings.NewReader(tc.rule))
			if err != nil {
				t.Fatal(err)
			}
			e := NewEngine(Config{Rules: rules, Sources: Sources{Metrics: reg}, Now: clk.Now})
			defer e.Close()
			for i, st := range tc.steps {
				sig.Set(st.value)
				e.Evaluate()
				snap := e.Snapshot()
				if got := snap.Rules[0].State; got != st.want {
					t.Fatalf("step %d (value %v): state = %s, want %s", i, st.value, got, st.want)
				}
				clk.Advance(tick)
			}
		})
	}
}

// TestStateMachineEvents checks the transition history and firing counts of
// one full fire/resolve cycle.
func TestStateMachineEvents(t *testing.T) {
	reg := telemetry.NewRegistry()
	sig := reg.FloatGauge("sig")
	clk := newFakeClock()
	e := NewEngine(Config{
		Rules:   MustParseRules("alert boom severity=page: value(sig) > 1"),
		Sources: Sources{Metrics: reg},
		Now:     clk.Now,
	})
	defer e.Close()

	sig.Set(5)
	e.Evaluate()
	if e.FiringCount() != 1 {
		t.Fatalf("FiringCount = %d after breach, want 1", e.FiringCount())
	}
	if v, ok := reg.Value(`ALERTS{name="boom",severity="page",state="firing"}`); !ok || v != 1 {
		t.Fatalf("ALERTS firing gauge = %v/%v, want 1", v, ok)
	}
	clk.Advance(time.Second)
	sig.Set(0)
	e.Evaluate()
	if e.FiringCount() != 0 {
		t.Fatalf("FiringCount = %d after resolve, want 0", e.FiringCount())
	}
	if v, _ := reg.Value(`ALERTS{name="boom",severity="page",state="firing"}`); v != 0 {
		t.Fatalf("ALERTS firing gauge = %v after resolve, want 0", v)
	}
	snap := e.Snapshot()
	if len(snap.Recent) != 2 {
		t.Fatalf("history = %d events, want firing+resolved", len(snap.Recent))
	}
	if snap.Recent[0].State != StateResolved || snap.Recent[1].State != StateFiring {
		t.Fatalf("history order: %+v", snap.Recent)
	}
	res := snap.Recent[0]
	if res.FiredAt.IsZero() || !res.At.After(res.FiredAt) {
		t.Fatalf("resolved event span: at=%v fired_at=%v", res.At, res.FiredAt)
	}
	if v, _ := reg.Value("rudolf_alert_evals_total"); v != 2 {
		t.Fatalf("evals counter = %v, want 2", v)
	}
	if v, _ := reg.Value(`rudolf_alert_transitions_total{to="resolved"}`); v != 1 {
		t.Fatalf("resolved transitions = %v, want 1", v)
	}
}

// TestMissingSeriesIsNoData: an unregistered series never fires (the
// leader-side contract of the replica-lag default rule), and a firing alert
// whose quantile window dries up resolves.
func TestMissingSeriesIsNoData(t *testing.T) {
	reg := telemetry.NewRegistry()
	clk := newFakeClock()
	e := NewEngine(Config{
		Rules:   MustParseRules("alert lag: value(rudolf_replica_lag_records) > 0"),
		Sources: Sources{Metrics: reg},
		Now:     clk.Now,
	})
	defer e.Close()
	e.Evaluate()
	snap := e.Snapshot()
	if snap.Rules[0].State != StateInactive || snap.Rules[0].HasData {
		t.Fatalf("missing series: %+v", snap.Rules[0])
	}
}

// TestQuantileDelta: pNN evaluates the inter-evaluation delta, so a latency
// breach fires and — crucially — resolves once the load stops, which a
// lifetime-cumulative quantile could never do.
func TestQuantileDelta(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("lat", telemetry.StageBuckets)
	clk := newFakeClock()
	e := NewEngine(Config{
		Rules:   MustParseRules("alert slow: p99(lat) > 1ms"),
		Sources: Sources{Metrics: reg},
		Now:     clk.Now,
	})
	defer e.Close()

	// Prime the delta window, then evaluate a window of fast traffic.
	e.Evaluate()
	for i := 0; i < 1000; i++ {
		h.Observe(10e-6)
	}
	clk.Advance(time.Second)
	e.Evaluate()
	if st := e.Snapshot().Rules[0]; st.State != StateInactive || !st.HasData {
		t.Fatalf("fast window: %+v", st)
	}

	// A burst of slow observations breaches the delta p99 even though the
	// lifetime distribution is still dominated by the fast ones.
	for i := 0; i < 100; i++ {
		h.Observe(20e-3)
	}
	clk.Advance(time.Second)
	e.Evaluate()
	if st := e.Snapshot().Rules[0]; st.State != StateFiring {
		t.Fatalf("slow window: state = %s (value %v, data %v), want firing", st.State, st.Value, st.HasData)
	}

	// Load stops: the next window has no observations → no data → resolve.
	clk.Advance(time.Second)
	e.Evaluate()
	if st := e.Snapshot().Rules[0]; st.State != StateInactive || st.HasData {
		t.Fatalf("idle window: %+v, want resolved no-data", st)
	}
}

// TestRate: rate() is the per-second counter increase between evaluations,
// no-data on first sight and after a reset.
func TestRate(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("reconnects_total")
	clk := newFakeClock()
	e := NewEngine(Config{
		Rules:   MustParseRules("alert churn: rate(reconnects_total) > 0.5"),
		Sources: Sources{Metrics: reg},
		Now:     clk.Now,
	})
	defer e.Close()

	e.Evaluate() // primes
	if st := e.Snapshot().Rules[0]; st.HasData {
		t.Fatalf("first sighting should be no-data: %+v", st)
	}
	c.Add(10)
	clk.Advance(10 * time.Second)
	e.Evaluate() // 10 events / 10s = 1/s > 0.5
	if st := e.Snapshot().Rules[0]; st.State != StateFiring || st.Value != 1 {
		t.Fatalf("rate breach: %+v", st)
	}
	clk.Advance(10 * time.Second)
	e.Evaluate() // no increase → 0/s
	if st := e.Snapshot().Rules[0]; st.State != StateInactive || st.Value != 0 {
		t.Fatalf("rate resolve: %+v", st)
	}
}

// TestMaxRuleSignal: the rulestats signals aggregate per-rule health with
// the evidence floor.
func TestMaxRuleSignal(t *testing.T) {
	snap := rulestats.Snapshot{Rules: []rulestats.RuleHealth{
		{Rule: 0, TP: 1, FP: 1, Drift: -1, LastFiredAgo: -1},   // below evidence floor
		{Rule: 1, TP: 2, FP: 8, Drift: 0.4, LastFiredAgo: 30},  // fp share 0.8
		{Rule: 2, TP: 9, FP: 1, Drift: 0.9, LastFiredAgo: 120}, // fp share 0.1
	}}
	if v, ok := maxRuleSignal(snap, SignalRuleFPShare); !ok || v != 0.8 {
		t.Errorf("fp share = %v/%v, want 0.8 (rule 0 is under the evidence floor)", v, ok)
	}
	if v, ok := maxRuleSignal(snap, SignalRuleDrift); !ok || v != 0.9 {
		t.Errorf("drift = %v/%v, want 0.9", v, ok)
	}
	if v, ok := maxRuleSignal(snap, SignalRuleStaleness); !ok || v != 120 {
		t.Errorf("staleness = %v/%v, want 120", v, ok)
	}
	if _, ok := maxRuleSignal(rulestats.Snapshot{}, SignalRuleFPShare); ok {
		t.Error("empty snapshot should be no-data")
	}

	// End to end through an engine.
	reg := telemetry.NewRegistry()
	e := NewEngine(Config{
		Rules:   MustParseRules("alert fp: max(rule_fp_share) > 0.5"),
		Sources: Sources{Metrics: reg, RuleStats: func() rulestats.Snapshot { return snap }},
		Now:     newFakeClock().Now,
	})
	defer e.Close()
	e.Evaluate()
	if st := e.Snapshot().Rules[0]; st.State != StateFiring || st.Value != 0.8 {
		t.Fatalf("fp spike: %+v", st)
	}
}

// TestHistoryBounded: the transition ring wraps at HistoryCap.
func TestHistoryBounded(t *testing.T) {
	reg := telemetry.NewRegistry()
	sig := reg.FloatGauge("sig")
	clk := newFakeClock()
	e := NewEngine(Config{
		Rules:      MustParseRules("alert flap: value(sig) > 0"),
		Sources:    Sources{Metrics: reg},
		HistoryCap: 4,
		Now:        clk.Now,
	})
	defer e.Close()
	for i := 0; i < 10; i++ { // each cycle = firing + resolved
		sig.Set(1)
		e.Evaluate()
		clk.Advance(time.Second)
		sig.Set(0)
		e.Evaluate()
		clk.Advance(time.Second)
	}
	snap := e.Snapshot()
	if len(snap.Recent) != 4 {
		t.Fatalf("history = %d, want the cap 4", len(snap.Recent))
	}
	for i := 1; i < len(snap.Recent); i++ {
		if snap.Recent[i].At.After(snap.Recent[i-1].At) {
			t.Fatalf("history not newest-first: %+v", snap.Recent)
		}
	}
}

// TestSetRules: installing a new set restarts lifecycles, bumps the config
// version and zeroes the gauges of vanished rules.
func TestSetRules(t *testing.T) {
	reg := telemetry.NewRegistry()
	sig := reg.FloatGauge("sig")
	e := NewEngine(Config{
		Rules:   MustParseRules("alert old: value(sig) > 0"),
		Sources: Sources{Metrics: reg},
		Now:     newFakeClock().Now,
	})
	defer e.Close()
	sig.Set(1)
	e.Evaluate()
	if e.FiringCount() != 1 {
		t.Fatal("setup: old rule should fire")
	}
	v := e.SetRules(MustParseRules("alert fresh for=1h: value(sig) > 0"))
	if v != 2 {
		t.Fatalf("config version = %d, want 2", v)
	}
	if e.FiringCount() != 0 {
		t.Fatal("firing count should reset on install")
	}
	if g, _ := reg.Value(`ALERTS{name="old",severity="warn",state="firing"}`); g != 0 {
		t.Fatalf("vanished rule's gauge = %v, want 0", g)
	}
	snap := e.Snapshot()
	if len(snap.Rules) != 1 || snap.Rules[0].Name != "fresh" || snap.Rules[0].State != StateInactive {
		t.Fatalf("post-install snapshot: %+v", snap.Rules)
	}
}

// TestConcurrentEvaluate exercises evaluate vs snapshot vs rule install vs
// live signal writes under -race.
func TestConcurrentEvaluate(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("lat", telemetry.StageBuckets)
	c := reg.Counter("hits_total")
	e := NewEngine(Config{
		Rules: MustParseRules(
			"alert a: p99(lat) > 1ms\nalert b: rate(hits_total) > 10\nalert c for=1ms: value(rudolf_nope) > 0"),
		Sources: Sources{Metrics: reg},
	})
	defer e.Close()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, loop := range []func(){
		func() { h.Observe(0.002); c.Inc() },
		func() { e.Evaluate() },
		func() { _ = e.Snapshot() },
		func() { _ = e.FiringCount() },
		func() { e.SetRules(MustParseRules("alert a: p99(lat) > 1ms")) },
	} {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					f()
				}
			}
		}(loop)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}
