package alert

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// WebhookConfig parameterizes the optional alert sink: every firing and
// resolved transition is POSTed as JSON to URL. Delivery is asynchronous
// and at-most-once from the producer's view: events queue into a bounded
// channel (a full queue drops the newest event and counts the drop — the
// engine must never block on a dead receiver), and the single sender
// retries a failed batch with capped exponential backoff.
type WebhookConfig struct {
	// URL receives the POSTs. Required.
	URL string
	// Timeout bounds one delivery attempt. 0 means 5s.
	Timeout time.Duration
	// QueueCap bounds the undelivered-event queue. 0 means 256.
	QueueCap int
	// MinBackoff / MaxBackoff shape the retry schedule: MinBackoff after
	// the first failure, doubling up to MaxBackoff. 0 means 250ms / 30s.
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// Client overrides the HTTP client (tests); nil builds one from
	// Timeout.
	Client *http.Client
}

// webhookPayload is the POST body: one or more events per delivery (the
// sender coalesces whatever is queued).
type webhookPayload struct {
	Source string  `json:"source"`
	Alerts []Event `json:"alerts"`
}

// WebhookStatus is the sink's introspection block for GET /v1/alerts and
// /v1/debug/state.
type WebhookStatus struct {
	URL     string `json:"url"`
	Queued  int    `json:"queued"`
	Sent    uint64 `json:"sent"`
	Retries uint64 `json:"retries"`
	Dropped uint64 `json:"dropped"`
}

// webhookSink owns the queue and the sender goroutine.
type webhookSink struct {
	cfg    WebhookConfig
	client *http.Client
	log    *slog.Logger

	ch        chan Event
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once

	sent    atomic.Uint64 // events delivered
	retries atomic.Uint64 // failed delivery attempts that were retried
	dropped atomic.Uint64 // events dropped on a full queue

	mSent    *telemetry.Counter
	mRetries *telemetry.Counter
	mDropped *telemetry.Counter
	mQueue   *telemetry.Gauge
}

func newWebhookSink(cfg WebhookConfig, reg *telemetry.Registry, log *slog.Logger) *webhookSink {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 256
	}
	if cfg.MinBackoff <= 0 {
		cfg.MinBackoff = 250 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 30 * time.Second
	}
	s := &webhookSink{
		cfg:    cfg,
		client: cfg.Client,
		log:    log,
		ch:     make(chan Event, cfg.QueueCap),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if s.client == nil {
		s.client = &http.Client{Timeout: cfg.Timeout}
	}
	if reg != nil {
		reg.Help("rudolf_alert_webhook_sent_total", "Alert events delivered to the webhook.")
		reg.Help("rudolf_alert_webhook_retries_total", "Failed webhook delivery attempts that were retried.")
		reg.Help("rudolf_alert_webhook_dropped_total", "Alert events dropped because the webhook queue was full.")
		reg.Help("rudolf_alert_webhook_queue", "Alert events waiting for webhook delivery.")
		s.mSent = reg.Counter("rudolf_alert_webhook_sent_total")
		s.mRetries = reg.Counter("rudolf_alert_webhook_retries_total")
		s.mDropped = reg.Counter("rudolf_alert_webhook_dropped_total")
		s.mQueue = reg.Gauge("rudolf_alert_webhook_queue")
	}
	go s.run()
	return s
}

// enqueue hands an event to the sender without ever blocking the
// evaluation pass: a full queue drops the event and counts it.
func (s *webhookSink) enqueue(ev Event) {
	select {
	case s.ch <- ev:
		if s.mQueue != nil {
			s.mQueue.Set(int64(len(s.ch)))
		}
	default:
		s.dropped.Add(1)
		if s.mDropped != nil {
			s.mDropped.Inc()
		}
	}
}

// run is the sender loop: take one event, coalesce whatever else is
// queued, deliver the batch with capped exponential backoff until it lands
// or the sink closes.
func (s *webhookSink) run() {
	defer close(s.done)
	for {
		select {
		case <-s.stop:
			return
		case ev := <-s.ch:
			batch := []Event{ev}
		drain:
			for len(batch) < 64 {
				select {
				case more := <-s.ch:
					batch = append(batch, more)
				default:
					break drain
				}
			}
			if s.mQueue != nil {
				s.mQueue.Set(int64(len(s.ch)))
			}
			if !s.deliver(batch) {
				return // closed mid-retry
			}
		}
	}
}

// deliver POSTs one batch, retrying with backoff. It returns false only
// when the sink closed before the batch landed.
func (s *webhookSink) deliver(batch []Event) bool {
	body, err := json.Marshal(webhookPayload{Source: "rudolfd", Alerts: batch})
	if err != nil { // unreachable: Event marshals
		s.log.Error("alert webhook payload", "err", err)
		return true
	}
	backoff := s.cfg.MinBackoff
	for {
		err := s.post(body)
		if err == nil {
			s.sent.Add(uint64(len(batch)))
			if s.mSent != nil {
				s.mSent.Add(uint64(len(batch)))
			}
			return true
		}
		s.retries.Add(1)
		if s.mRetries != nil {
			s.mRetries.Inc()
		}
		s.log.Warn("alert webhook delivery failed; retrying",
			"url", s.cfg.URL, "events", len(batch), "backoff", backoff.String(), "err", err)
		t := time.NewTimer(backoff)
		select {
		case <-s.stop:
			t.Stop()
			// The batch is abandoned: count it dropped so no event ever
			// silently vanishes from the accounting.
			s.dropped.Add(uint64(len(batch)))
			if s.mDropped != nil {
				s.mDropped.Add(uint64(len(batch)))
			}
			return false
		case <-t.C:
		}
		if backoff *= 2; backoff > s.cfg.MaxBackoff {
			backoff = s.cfg.MaxBackoff
		}
	}
}

func (s *webhookSink) post(body []byte) error {
	resp, err := s.client.Post(s.cfg.URL, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("webhook answered %s", resp.Status)
	}
	return nil
}

func (s *webhookSink) status() WebhookStatus {
	return WebhookStatus{
		URL:     s.cfg.URL,
		Queued:  len(s.ch),
		Sent:    s.sent.Load(),
		Retries: s.retries.Load(),
		Dropped: s.dropped.Load(),
	}
}

// close stops the sender; events still queued (or mid-retry) are dropped
// and counted.
func (s *webhookSink) close() {
	s.closeOnce.Do(func() {
		close(s.stop)
		<-s.done
		if n := len(s.ch); n > 0 {
			s.dropped.Add(uint64(n))
			if s.mDropped != nil {
				s.mDropped.Add(uint64(n))
			}
		}
	})
}
