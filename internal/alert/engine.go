package alert

import (
	"context"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rulestats"
	"repro/internal/telemetry"
)

// Sources are the signal inputs an engine samples. Metrics is required;
// RuleStats is optional (the max(rule_*) signals report "no data" without
// it). Replication signals need no hook of their own: a follower registers
// rudolf_replica_lag_records and rudolf_replica_reconnects_total in the
// same registry, and on a leader their absence is ordinary no-data.
type Sources struct {
	// Metrics is the live telemetry registry the value/rate/pNN functions
	// read (via Registry.Value and Registry.FindHistogram — never by
	// rendering and re-parsing the exposition text).
	Metrics *telemetry.Registry
	// RuleStats snapshots the per-rule health epoch for the max(rule_*)
	// signals.
	RuleStats func() rulestats.Snapshot
}

// Config parameterizes an Engine.
type Config struct {
	// Rules is the initial alert rule set (swap later with SetRules).
	Rules []Rule
	// Interval is the evaluation period used by Run. 0 means
	// DefaultInterval.
	Interval time.Duration
	// HistoryCap bounds the transition-event history. 0 means
	// DefaultHistoryCap.
	HistoryCap int
	// Webhook configures the optional sink; nil disables it.
	Webhook *WebhookConfig
	// Sources are the signal inputs.
	Sources Sources
	// Prepare, when set, runs before each evaluation pass (outside the
	// engine lock) — the server hooks its derived-gauge refresh here so
	// window/WAL/runtime gauges are as fresh for an alert sample as they
	// are for a /metrics scrape.
	Prepare func()
	// Logger receives transition logs; nil discards.
	Logger *slog.Logger
	// Now is the clock (tests inject a fake one); nil means time.Now.
	Now func() time.Time
}

// Defaults for the zero Config values.
const (
	DefaultInterval   = 15 * time.Second
	DefaultHistoryCap = 256
)

// ruleRuntime is one rule's mutable lifecycle state.
type ruleRuntime struct {
	state     State
	since     time.Time // when the current state was entered
	firedAt   time.Time // when the alert last entered firing
	lastValue float64
	hasData   bool
	gPending  *telemetry.Gauge // ALERTS{...,state="pending"}; nil without metrics
	gFiring   *telemetry.Gauge
}

// Snapshot is the engine's full readout for GET /v1/alerts and
// /v1/debug/state.
type Snapshot struct {
	// ConfigVersion counts rule-set installs (1 = the boot-time set);
	// Generation counts state transitions. Together they version the
	// document: the /v1/alerts ETag is "<ConfigVersion>-<Generation>".
	ConfigVersion int           `json:"config_version"`
	Generation    uint64        `json:"generation"`
	Interval      time.Duration `json:"interval_ns"`
	// LastEval is the zero time before the first evaluation.
	LastEval time.Time `json:"last_eval,omitzero"`
	Firing   int       `json:"firing"`
	Pending  int       `json:"pending"`
	// Rules holds every rule's current status, in rule order.
	Rules []RuleStatus `json:"rules"`
	// Recent holds the retained transition events, newest first.
	Recent []Event `json:"recent"`
	// Webhook is nil when no sink is configured.
	Webhook *WebhookStatus `json:"webhook,omitempty"`
}

// Engine evaluates alert rules and owns their lifecycle state. All methods
// are safe for concurrent use; evaluation and snapshotting share one mutex
// that no scoring path ever touches.
type Engine struct {
	sources  Sources
	prepare  func()
	log      *slog.Logger
	now      func() time.Time
	interval time.Duration

	mu         sync.Mutex
	rules      []Rule
	runtimes   []ruleRuntime
	cfgVersion int
	generation uint64
	lastEval   time.Time
	history    []Event // ring, wraps at historyCap
	histNext   int
	historyCap int
	// prevHist / prevRate hold the previous evaluation's per-signal
	// snapshots for the delta-window quantile and rate functions.
	prevHist map[string]histPrev
	prevRate map[string]ratePrev
	// gauges caches the ALERTS series ever created, so removed rules can be
	// zeroed instead of lingering at a stale 1.
	gauges map[gaugeKey]*telemetry.Gauge

	firing atomic.Int64 // mirrored out for lock-free /v1/status reads

	webhook *webhookSink

	mEvals       *telemetry.Counter
	mToPending   *telemetry.Counter
	mToFiring    *telemetry.Counter
	mToResolved  *telemetry.Counter
	mFiringGauge *telemetry.Gauge
}

type histPrev struct {
	cum   []uint64
	total uint64
	at    time.Time
}

type ratePrev struct {
	v  float64
	at time.Time
}

type gaugeKey struct {
	name  string
	sev   Severity
	state State
}

// NewEngine builds an engine and installs cfg.Rules as config version 1.
// It does not start evaluating — call Run (or Evaluate for a single pass).
func NewEngine(cfg Config) *Engine {
	e := &Engine{
		sources:    cfg.Sources,
		prepare:    cfg.Prepare,
		log:        cfg.Logger,
		now:        cfg.Now,
		interval:   cfg.Interval,
		historyCap: cfg.HistoryCap,
		prevHist:   make(map[string]histPrev),
		prevRate:   make(map[string]ratePrev),
		gauges:     make(map[gaugeKey]*telemetry.Gauge),
	}
	if e.now == nil {
		e.now = time.Now
	}
	if e.log == nil {
		e.log = slog.New(slog.DiscardHandler)
	}
	if e.interval <= 0 {
		e.interval = DefaultInterval
	}
	if e.historyCap <= 0 {
		e.historyCap = DefaultHistoryCap
	}
	if r := e.sources.Metrics; r != nil {
		r.Help("ALERTS", "Alert lifecycle states: 1 while the named alert is in the labeled state (Prometheus ALERTS convention).")
		r.Help("rudolf_alert_evals_total", "Alert evaluation passes completed.")
		r.Help("rudolf_alert_transitions_total", "Alert state transitions, by target state.")
		r.Help("rudolf_alerts_firing", "Alerts currently firing.")
		e.mEvals = r.Counter("rudolf_alert_evals_total")
		e.mToPending = r.Counter(`rudolf_alert_transitions_total{to="pending"}`)
		e.mToFiring = r.Counter(`rudolf_alert_transitions_total{to="firing"}`)
		e.mToResolved = r.Counter(`rudolf_alert_transitions_total{to="resolved"}`)
		e.mFiringGauge = r.Gauge("rudolf_alerts_firing")
	}
	if cfg.Webhook != nil && cfg.Webhook.URL != "" {
		e.webhook = newWebhookSink(*cfg.Webhook, e.sources.Metrics, e.log)
	}
	e.mu.Lock()
	e.installLocked(cfg.Rules)
	e.mu.Unlock()
	return e
}

// stateGauge returns (creating on first use) the ALERTS series for one
// rule × state.
func (e *Engine) stateGauge(name string, sev Severity, st State) *telemetry.Gauge {
	if e.sources.Metrics == nil {
		return nil
	}
	k := gaugeKey{name, sev, st}
	if g, ok := e.gauges[k]; ok {
		return g
	}
	series := `ALERTS{name="` + telemetry.EscapeLabel(name) +
		`",severity="` + telemetry.EscapeLabel(string(sev)) +
		`",state="` + string(st) + `"}`
	g := e.sources.Metrics.Gauge(series)
	e.gauges[k] = g
	return g
}

// installLocked replaces the rule set: fresh runtimes (every alert restarts
// inactive — lifecycle state is only meaningful against the rules that
// defined it), zeroed gauges for rules that vanished, a config-version
// bump. Callers hold e.mu.
func (e *Engine) installLocked(rules []Rule) {
	for _, g := range e.gauges {
		g.Set(0)
	}
	e.rules = append([]Rule(nil), rules...)
	e.runtimes = make([]ruleRuntime, len(e.rules))
	for i := range e.rules {
		rt := &e.runtimes[i]
		rt.state = StateInactive
		rt.gPending = e.stateGauge(e.rules[i].Name, e.rules[i].Severity, StatePending)
		rt.gFiring = e.stateGauge(e.rules[i].Name, e.rules[i].Severity, StateFiring)
	}
	e.cfgVersion++
	e.generation++
	e.firing.Store(0)
	if e.mFiringGauge != nil {
		e.mFiringGauge.Set(0)
	}
}

// SetRules atomically replaces the alert rule set and returns the new
// config version. Current lifecycle state is discarded — the new rules
// start inactive and re-form their own pending windows.
func (e *Engine) SetRules(rules []Rule) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.installLocked(rules)
	e.log.Info("alert rules installed", "rules", len(rules), "config_version", e.cfgVersion)
	return e.cfgVersion
}

// Rules returns the current rule set (a copy).
func (e *Engine) Rules() []Rule {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Rule(nil), e.rules...)
}

// FiringCount returns the number of currently firing alerts without taking
// the engine lock (for the /v1/status hot-ish path).
func (e *Engine) FiringCount() int { return int(e.firing.Load()) }

// Run evaluates on the configured interval until ctx is done. It blocks;
// run it in its own goroutine.
func (e *Engine) Run(ctx context.Context) {
	t := time.NewTicker(e.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			e.Evaluate()
		}
	}
}

// Interval returns the evaluation period.
func (e *Engine) Interval() time.Duration { return e.interval }

// Close stops the webhook sink (if any), flushing nothing: undelivered
// events are dropped and counted. Safe to call more than once.
func (e *Engine) Close() {
	if e.webhook != nil {
		e.webhook.close()
	}
}

// Evaluate runs one evaluation pass over every rule: sample each distinct
// expression, apply the comparator, advance the state machine, record
// transitions, update the ALERTS gauges and feed the webhook sink.
func (e *Engine) Evaluate() {
	if e.prepare != nil {
		e.prepare()
	}
	now := e.now()
	e.mu.Lock()
	defer e.mu.Unlock()

	// Sample every distinct expression input once per pass: two rules over
	// the same histogram must see the same delta window, and the
	// prev-snapshot bookkeeping must advance exactly once per signal.
	type sampleResult struct {
		v  float64
		ok bool
	}
	samples := make(map[string]sampleResult, len(e.rules))
	var rsnap *rulestats.Snapshot
	sampleOf := func(x Expr) (float64, bool) {
		key := x.Fn + "(" + x.Signal + ")"
		if s, done := samples[key]; done {
			return s.v, s.ok
		}
		v, ok := e.sampleLocked(x, now, &rsnap)
		samples[key] = sampleResult{v, ok}
		return v, ok
	}

	firing := 0
	for i := range e.rules {
		rule := &e.rules[i]
		rt := &e.runtimes[i]
		v, ok := sampleOf(rule.Expr)
		rt.lastValue, rt.hasData = v, ok
		breach := ok && rule.Expr.compare(v)
		switch {
		case breach:
			if rt.state == StateInactive {
				rt.state, rt.since = StatePending, now
				rt.gPending.Set(1)
				e.generation++
				if e.mToPending != nil {
					e.mToPending.Inc()
				}
			}
			if rt.state == StatePending && now.Sub(rt.since) >= rule.For {
				rt.state, rt.since, rt.firedAt = StateFiring, now, now
				rt.gPending.Set(0)
				rt.gFiring.Set(1)
				e.generation++
				if e.mToFiring != nil {
					e.mToFiring.Inc()
				}
				e.recordLocked(Event{
					Name: rule.Name, Severity: rule.Severity, State: StateFiring,
					Expr: rule.Expr.Raw, Value: v, At: now,
				})
				e.log.Warn("alert firing", "alert", rule.Name, "severity", rule.Severity,
					"expr", rule.Expr.Raw, "value", v)
			}
		case rt.state == StatePending:
			// One false sample resets the hysteresis window entirely.
			rt.state, rt.since = StateInactive, now
			rt.gPending.Set(0)
			e.generation++
		case rt.state == StateFiring:
			rt.state, rt.since = StateInactive, now
			rt.gFiring.Set(0)
			e.generation++
			if e.mToResolved != nil {
				e.mToResolved.Inc()
			}
			e.recordLocked(Event{
				Name: rule.Name, Severity: rule.Severity, State: StateResolved,
				Expr: rule.Expr.Raw, Value: v, At: now, FiredAt: rt.firedAt,
			})
			e.log.Info("alert resolved", "alert", rule.Name,
				"fired_for", now.Sub(rt.firedAt).String())
		}
		if rt.state == StateFiring {
			firing++
		}
	}
	e.firing.Store(int64(firing))
	if e.mFiringGauge != nil {
		e.mFiringGauge.Set(int64(firing))
	}
	e.lastEval = now
	if e.mEvals != nil {
		e.mEvals.Inc()
	}
}

// recordLocked appends a transition event to the bounded history ring and
// the webhook queue. Callers hold e.mu.
func (e *Engine) recordLocked(ev Event) {
	if len(e.history) < e.historyCap {
		e.history = append(e.history, ev)
	} else {
		e.history[e.histNext] = ev
		e.histNext = (e.histNext + 1) % e.historyCap
	}
	if e.webhook != nil {
		e.webhook.enqueue(ev)
	}
}

// sampleLocked evaluates one expression input against the sources. The
// bool result distinguishes a real sample from "no data". Callers hold
// e.mu; rsnap caches the rulestats snapshot across one pass.
func (e *Engine) sampleLocked(x Expr, now time.Time, rsnap **rulestats.Snapshot) (float64, bool) {
	switch x.Fn {
	case "max":
		if e.sources.RuleStats == nil {
			return 0, false
		}
		if *rsnap == nil {
			s := e.sources.RuleStats()
			*rsnap = &s
		}
		return maxRuleSignal(**rsnap, x.Signal)
	case "value":
		if e.sources.Metrics == nil {
			return 0, false
		}
		return e.sources.Metrics.Value(x.Signal)
	case "rate":
		return e.rateLocked(x.Signal, now)
	default: // pNN — ParseExpr admits nothing else
		return e.quantileLocked(x.Signal, quantileFns[x.Fn], now)
	}
}

// rateLocked computes the per-second increase of a counter (or a
// histogram's observation count) since the previous evaluation. The first
// sighting of a series, a zero-elapsed window and a counter reset are all
// no-data; the current value is remembered either way.
func (e *Engine) rateLocked(signal string, now time.Time) (float64, bool) {
	if e.sources.Metrics == nil {
		return 0, false
	}
	var cur float64
	if h, ok := e.sources.Metrics.FindHistogram(signal); ok {
		cur = float64(h.Count())
	} else if v, ok := e.sources.Metrics.Value(signal); ok {
		cur = v
	} else {
		return 0, false
	}
	prev, seen := e.prevRate[signal]
	e.prevRate[signal] = ratePrev{v: cur, at: now}
	if !seen || cur < prev.v || !now.After(prev.at) {
		return 0, false
	}
	return (cur - prev.v) / now.Sub(prev.at).Seconds(), true
}

// quantileLocked estimates a quantile over the histogram's observations
// since the previous evaluation — the inter-tick delta distribution. A
// lifetime-cumulative histogram would ratchet: once p99 breached it could
// never un-breach, so a fired alert could never resolve. An empty window
// (and the first sighting, and a reset) is no-data.
func (e *Engine) quantileLocked(signal string, q float64, now time.Time) (float64, bool) {
	if e.sources.Metrics == nil {
		return 0, false
	}
	h, ok := e.sources.Metrics.FindHistogram(signal)
	if !ok {
		return 0, false
	}
	uppers, cum, total := h.Buckets()
	prev, seen := e.prevHist[signal]
	e.prevHist[signal] = histPrev{cum: cum, total: total, at: now}
	if !seen || len(prev.cum) != len(cum) || total < prev.total {
		return 0, false
	}
	dTotal := total - prev.total
	if dTotal == 0 {
		return 0, false
	}
	dCum := make([]uint64, len(cum))
	for i := range cum {
		if cum[i] >= prev.cum[i] {
			dCum[i] = cum[i] - prev.cum[i]
		}
	}
	// Re-cumulate defensively: per-bucket deltas of a torn concurrent read
	// can be locally non-monotone; clamp so the quantile walk stays sane.
	for i := 1; i < len(dCum); i++ {
		if dCum[i] < dCum[i-1] {
			dCum[i] = dCum[i-1]
		}
	}
	return telemetry.QuantileFromBuckets(uppers, dCum, dTotal, q), true
}

// maxRuleSignal folds a rulestats snapshot into the max over one per-rule
// signal. No eligible rule means no data.
func maxRuleSignal(snap rulestats.Snapshot, signal string) (float64, bool) {
	best, any := 0.0, false
	for _, h := range snap.Rules {
		var v float64
		switch signal {
		case SignalRuleFPShare:
			if h.TP+h.FP < MinEvidence {
				continue
			}
			v = float64(h.FP) / float64(h.TP+h.FP)
		case SignalRuleDrift:
			if h.Drift < 0 {
				continue
			}
			v = h.Drift
		case SignalRuleStaleness:
			if h.LastFiredAgo < 0 {
				continue
			}
			v = h.LastFiredAgo
		default:
			return 0, false
		}
		if !any || v > best {
			best, any = v, true
		}
	}
	return best, any
}

// Snapshot returns the engine's full current readout.
func (e *Engine) Snapshot() Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	out := Snapshot{
		ConfigVersion: e.cfgVersion,
		Generation:    e.generation,
		Interval:      e.interval,
		LastEval:      e.lastEval,
		Rules:         make([]RuleStatus, len(e.rules)),
	}
	for i := range e.rules {
		rule, rt := &e.rules[i], &e.runtimes[i]
		st := RuleStatus{
			Name: rule.Name, Severity: rule.Severity, State: rt.state,
			Expr: rule.Expr.Raw, ForS: rule.For.Seconds(),
			Value: rt.lastValue, HasData: rt.hasData,
		}
		if rt.state != StateInactive {
			st.SinceS = now.Sub(rt.since).Seconds()
		}
		switch rt.state {
		case StateFiring:
			out.Firing++
		case StatePending:
			out.Pending++
		}
		out.Rules[i] = st
	}
	out.Recent = append([]Event(nil), e.history...)
	sortEventsNewestFirst(out.Recent)
	if e.webhook != nil {
		ws := e.webhook.status()
		out.Webhook = &ws
	}
	return out
}
