package cost

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/ontology"
	"repro/internal/order"
	"repro/internal/paperdata"
	"repro/internal/relation"
	"repro/internal/rules"
)

// rep1 is the first representative tuple of Example 4.4: the cluster of the
// first two fraudulent transactions of Figure 2.
func rep1(s *relation.Schema) []rules.Condition {
	typeOnt := s.Attr(2).Ontology
	locOnt := s.Attr(3).Ontology
	return []rules.Condition{
		rules.NumericCond(order.Interval{Lo: 18*60 + 2, Hi: 18*60 + 3}),
		rules.NumericCond(order.Interval{Lo: 106, Hi: 107}),
		rules.ConceptCond(typeOnt.MustLookup("Online, no CCV")),
		rules.ConceptCond(locOnt.MustLookup("Online Store")),
	}
}

func TestWeightsBenefit(t *testing.T) {
	w := Weights{Alpha: 2, Beta: 3, Gamma: 5}
	if got := w.Benefit(1, -2, 4); got != 2-6+20 {
		t.Errorf("Benefit = %v, want 16", got)
	}
	if DefaultWeights() != (Weights{1, 1, 1}) {
		t.Error("DefaultWeights != (1,1,1)")
	}
}

func TestCondDistanceNumeric(t *testing.T) {
	s := paperdata.Schema()
	amount := s.Attr(1)
	rule := rules.NumericCond(order.Interval{Lo: 110, Hi: 100000})
	target := rules.NumericCond(order.Interval{Lo: 106, Hi: 107})
	if got := CondDistance(amount, rule, target); got != 4 {
		t.Errorf("amount distance = %v, want 4 (Example 4.4)", got)
	}
}

func TestCondDistanceCategorical(t *testing.T) {
	s := paperdata.Schema()
	locAttr := s.Attr(3)
	lo := locAttr.Ontology
	a := rules.ConceptCond(lo.MustLookup("Gas Station A"))
	b := rules.ConceptCond(lo.MustLookup("Gas Station B"))
	if got := CondDistance(locAttr, a, b); got != 1 {
		t.Errorf("|Gas Station B − Gas Station A| = %v, want 1 (Example 4.4)", got)
	}
	shop := rules.ConceptCond(lo.MustLookup("Online Store"))
	if got := CondDistance(locAttr, a, shop); got != 2 {
		t.Errorf("|Online Store − Gas Station A| = %v, want 2", got)
	}
}

// TestRuleDistanceExample44 pins the Equation 1 distances of the three
// Figure 1 rules from the first representative tuple. (The paper's prose
// says 178 for rule 3's time component; the formal definition gives
// |20:45 − 18:02| = 163 — see DESIGN.md.)
func TestRuleDistanceExample44(t *testing.T) {
	s := paperdata.Schema()
	rs := paperdata.ExistingRules(s)
	rep := rep1(s)
	for i, want := range []float64{
		0 + 4 + 0 + 0,   // rule 1
		53 + 4 + 0 + 0,  // rule 2
		163 + 0 + 0 + 2, // rule 3 (see note above; location distance is 2: A → Gas Station → World)
	} {
		if got := RuleDistance(s, rs.Rule(i), rep); got != want {
			t.Errorf("rule %d distance = %v, want %v", i+1, got, want)
		}
	}
}

func TestDeltasSetWide(t *testing.T) {
	s := paperdata.Schema()
	rel := paperdata.Transactions(s)
	old := paperdata.ExistingRules(s)
	// Generalize rule 1 minimally to capture rep1.
	gen, changed := rules.GeneralizeToCover(s, old.Rule(0), rep1(s))
	if len(changed) != 1 || changed[0] != 1 {
		t.Fatalf("changed = %v, want [1] (amount only)", changed)
	}
	new := old.Clone()
	new.Replace(0, gen)
	dF, dL, dR := Deltas(old, new, rel)
	if dF != 2 || dL != 0 || dR != 0 {
		t.Errorf("Deltas = (%d,%d,%d), want (2,0,0)", dF, dL, dR)
	}
}

func TestDeltasDetectLegitimate(t *testing.T) {
	s := paperdata.Schema()
	rel := paperdata.Transactions(s)
	paperdata.LegitimateFollowUp(rel)
	old := paperdata.ExistingRules(s)
	// Removing rule 1 un-captures l1 (tuple 2, now labeled legitimate).
	new := old.Clone()
	new.Remove(0)
	dF, dL, dR := Deltas(old, new, rel)
	if dF != 0 || dL != 1 || dR != 0 {
		t.Errorf("Deltas = (%d,%d,%d), want (0,1,0)", dF, dL, dR)
	}
}

// TestGeneralizationScoreExample44 reproduces the Equation 2 ranking of
// Example 4.4: rule 1 scores 2, rule 2 scores 56, rule 3 scores worst.
func TestGeneralizationScoreExample44(t *testing.T) {
	s := paperdata.Schema()
	rel := paperdata.Transactions(s)
	rs := paperdata.ExistingRules(s)
	rep := rep1(s)
	w := DefaultWeights()

	s1, gen1 := GeneralizationScore(s, rel, rs.Rule(0), rep, w)
	if s1 != 2 {
		t.Errorf("rule 1 score = %v, want 2 (Example 4.4: (0+4+0+0)−(2+0+0))", s1)
	}
	// The proposed modification is Amt ≥ 106.
	if got := gen1.Cond(1).Iv.Lo; got != 106 {
		t.Errorf("rule 1 generalization lowers amount to %d, want 106", got)
	}
	s2, _ := GeneralizationScore(s, rel, rs.Rule(1), rep, w)
	if s2 != 56 {
		t.Errorf("rule 2 score = %v, want 56 (Example 4.4: (53+4+0+0)−(2+0−1))", s2)
	}
	s3, _ := GeneralizationScore(s, rel, rs.Rule(2), rep, w)
	if s3 != 162 {
		t.Errorf("rule 3 score = %v, want 162 ((163+0+0+2)−(6+0−3); paper's 168 rests on its 178 typo)", s3)
	}
	if !(s1 < s2 && s2 < s3) {
		t.Errorf("ranking violated: %v, %v, %v", s1, s2, s3)
	}
}

func TestGeneralizationScoreAlreadyCapturing(t *testing.T) {
	s := paperdata.Schema()
	rel := paperdata.Transactions(s)
	wide := rules.MustParse(s, "amount >= $1")
	score, gen := GeneralizationScore(s, rel, wide, rep1(s), DefaultWeights())
	if score != 0 {
		t.Errorf("score = %v, want 0 for an already-capturing rule", score)
	}
	if !gen.Equal(s, wide) {
		t.Error("generalization of a capturing rule should be unchanged")
	}
}

func TestDeltasForRuleSwapNil(t *testing.T) {
	s := paperdata.Schema()
	rel := paperdata.Transactions(s)
	r := rules.MustParse(s, "amount >= $100")
	// Pure addition: everything r captures counts.
	dF, dL, dR := DeltasForRuleSwap(nil, r, rel)
	if dF != 3 || dR != -2 || dL != 0 {
		t.Errorf("add deltas = (%d,%d,%d), want (3,0,-2)", dF, dL, dR)
	}
	// Pure removal: signs flip.
	dF2, dL2, dR2 := DeltasForRuleSwap(r, nil, rel)
	if dF2 != -dF || dL2 != -dL || dR2 != -dR {
		t.Error("removal deltas are not the negation of addition deltas")
	}
}

func TestSplitBenefit(t *testing.T) {
	s := paperdata.Schema()
	rel := paperdata.Transactions(s)
	paperdata.LegitimateFollowUp(rel)
	w := DefaultWeights()
	removed := bitset.New(rel.Len())
	removed.Add(2) // legitimate
	removed.Add(0) // fraud
	removed.Add(8) // unlabeled
	if got := SplitBenefit(rel, removed, nil, w); got != -1+1+1 {
		t.Errorf("SplitBenefit = %v, want 1", got)
	}
	// A transaction still covered by another rule contributes nothing.
	others := bitset.New(rel.Len())
	others.Add(0)
	if got := SplitBenefit(rel, removed, others, w); got != 2 {
		t.Errorf("SplitBenefit with coverage = %v, want 2", got)
	}
}

func TestModKindString(t *testing.T) {
	for k, want := range map[ModKind]string{
		CondRefine:  "condition-refinement",
		RuleSplit:   "rule-split",
		RuleAdd:     "rule-addition",
		RuleRemove:  "rule-removal",
		ModKind(99): "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestUnitModel(t *testing.T) {
	var m Model = UnitModel{}
	if m.ModificationCost(CondRefine, 3) != 1 || m.ModificationCost(RuleAdd, -1) != 1 {
		t.Error("UnitModel should always charge 1")
	}
}

func TestWeightedModel(t *testing.T) {
	m := NewWeightedModel()
	if m.ModificationCost(CondRefine, 0) != 1 {
		t.Error("fresh weighted model should charge 1")
	}
	m.KindWeight[RuleSplit] = 2
	m.AttrWeight[3] = 4
	if got := m.ModificationCost(RuleSplit, 3); got != 8 {
		t.Errorf("cost = %v, want 8", got)
	}
	if got := m.ModificationCost(RuleSplit, -1); got != 2 {
		t.Errorf("whole-rule cost = %v, want 2", got)
	}
}

func TestWeightedModelFeedback(t *testing.T) {
	m := NewWeightedModel()
	for i := 0; i < 3; i++ {
		m.Feedback(0, false)
	}
	if m.AttrWeight[0] <= 1 {
		t.Errorf("rejections should raise the weight, got %v", m.AttrWeight[0])
	}
	for i := 0; i < 50; i++ {
		m.Feedback(0, false)
	}
	if m.AttrWeight[0] > maxAttrWeight {
		t.Errorf("weight exceeds clamp: %v", m.AttrWeight[0])
	}
	for i := 0; i < 100; i++ {
		m.Feedback(0, true)
	}
	if m.AttrWeight[0] < minAttrWeight {
		t.Errorf("weight below clamp: %v", m.AttrWeight[0])
	}
	if math.IsNaN(m.AttrWeight[0]) {
		t.Error("weight became NaN")
	}
}

// TestDistanceMatchesGeneralizationGrowth cross-checks Equation 1 against
// the minimal generalization: for numeric attributes, the interval distance
// must equal exactly the growth of the condition when GeneralizeToCover
// extends it — the two implementations must agree on "how much wider".
func TestDistanceMatchesGeneralizationGrowth(t *testing.T) {
	s := paperdata.Schema()
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 200; trial++ {
		r := rules.NewRule(s)
		lo := int64(rng.Intn(1000))
		r.SetCond(1, rules.NumericCond(order.Interval{Lo: lo, Hi: lo + int64(rng.Intn(500))}))
		tlo := int64(rng.Intn(1200))
		target := make([]rules.Condition, s.Arity())
		for i := 0; i < s.Arity(); i++ {
			target[i] = r.Cond(i)
		}
		target[1] = rules.NumericCond(order.Interval{Lo: tlo, Hi: tlo + int64(rng.Intn(300))})

		dist := CondDistance(s.Attr(1), r.Cond(1), target[1])
		gen, _ := rules.GeneralizeToCover(s, r, target)
		growth := gen.Cond(1).Iv.Size() - r.Cond(1).Iv.Size()
		if float64(growth) != dist {
			t.Fatalf("trial %d: distance %v but growth %d", trial, dist, growth)
		}
	}
}

// TestCategoricalDistanceMatchesGeneralization: the ontological up-distance
// equals the number of BFS steps MinimalGeneralization takes.
func TestCategoricalDistanceMatchesGeneralization(t *testing.T) {
	s := paperdata.Schema()
	locAttr := s.Attr(3)
	o := locAttr.Ontology
	rng := rand.New(rand.NewSource(56))
	for trial := 0; trial < 100; trial++ {
		from := ontology.Concept(rng.Intn(o.Len()))
		to := ontology.Concept(rng.Intn(o.Len()))
		d := CondDistance(locAttr, rules.ConceptCond(from), rules.ConceptCond(to))
		g, steps := o.MinimalGeneralization(from, to)
		if float64(steps) != d {
			t.Fatalf("trial %d: distance %v but %d BFS steps", trial, d, steps)
		}
		if !o.Contains(g, to) {
			t.Fatalf("trial %d: generalization does not contain target", trial)
		}
	}
}
