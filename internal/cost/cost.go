// Package cost implements the cost model of Sections 3 and 4 of the paper:
// the per-attribute and per-rule distances of Equation 1, the benefit term
// α·ΔF + β·ΔL + γ·ΔR of Definition 3.1, the rule-ranking score of
// Equation 2, and pluggable per-modification costs (unit costs as in the
// paper's hardness proofs, plus the weighted variant the paper lists as
// future work).
package cost

import (
	"repro/internal/bitset"
	"repro/internal/relation"
	"repro/internal/rules"
)

// Weights are the non-negative coefficients α, β, γ of Definition 3.1,
// weighting the importance of capturing frauds, avoiding legitimate
// transactions, and excluding unlabeled transactions.
type Weights struct {
	Alpha float64
	Beta  float64
	Gamma float64
}

// DefaultWeights returns α = β = γ = 1, the setting used in the paper's
// worked examples (Example 4.7).
func DefaultWeights() Weights { return Weights{Alpha: 1, Beta: 1, Gamma: 1} }

// FraudWeights returns the production-style weighting used by the
// experiments: capturing frauds matters an order of magnitude more than
// excluding unlabeled transactions (α ≫ β > γ). Definition 3.1 leaves the
// coefficients to the user "to tune the relative importance of each
// category"; with uniform weights an unattended refinement loop will gladly
// trade a few captured frauds for many excluded unlabeled transactions,
// which is the wrong trade in fraud detection.
func FraudWeights() Weights { return Weights{Alpha: 10, Beta: 2, Gamma: 0.25} }

// Benefit returns α·ΔF + β·ΔL + γ·ΔR.
func (w Weights) Benefit(dF, dL, dR int) float64 {
	return w.Alpha*float64(dF) + w.Beta*float64(dL) + w.Gamma*float64(dR)
}

// CondDistance is the per-attribute distance of Equation 1: how much the
// rule's condition must be generalized to contain the target condition.
// For numeric attributes it is the interval-extension distance; for
// categorical attributes it is the ontological up-distance.
func CondDistance(a relation.Attribute, rule, target rules.Condition) float64 {
	if a.Kind == relation.Categorical {
		d, ok := a.Ontology.UpDistance(rule.C, target.C)
		if !ok {
			return float64(a.Ontology.LeafCount(a.Ontology.Top()))
		}
		return float64(d)
	}
	return float64(rule.Iv.ExtensionDistance(target.Iv))
}

// RuleDistance is |f − r| of Equation 1: the sum over attributes of the
// condition distances between rule r and the target pattern (typically the
// representative tuple of a cluster).
func RuleDistance(s *relation.Schema, r *rules.Rule, target []rules.Condition) float64 {
	var sum float64
	for i := 0; i < s.Arity(); i++ {
		sum += CondDistance(s.Attr(i), r.Cond(i), target[i])
	}
	return sum
}

// Deltas computes ΔF, ΔL and ΔR of Definition 3.1 for replacing the rule
// set old by new over relation rel:
//
//	ΔF = |F ∩ new(I)| − |F ∩ old(I)|   (increase in captured frauds)
//	ΔL = |L ∩ old(I)| − |L ∩ new(I)|   (decrease in captured legitimate)
//	ΔR = |R ∩ old(I)| − |R ∩ new(I)|   (decrease in captured unlabeled)
//
// (The printed definition of ΔL in the paper has a typo — both operands are
// Φ — which we resolve by symmetry with ΔF and the prose.)
func Deltas(old, new *rules.Set, rel *relation.Relation) (dF, dL, dR int) {
	return deltasFromSets(old.Eval(rel), new.Eval(rel), rel)
}

// DeltasForRuleSwap computes the deltas of replacing a single rule
// (evaluated in isolation) by another, matching the per-rule arithmetic of
// the paper's Example 4.4. Either rule may be nil, denoting "no rule"; this
// expresses pure additions and removals.
func DeltasForRuleSwap(old, new *rules.Rule, rel *relation.Relation) (dF, dL, dR int) {
	empty := bitset.New(rel.Len())
	oldCap, newCap := empty, empty
	if old != nil {
		oldCap = old.Captures(rel)
	}
	if new != nil {
		newCap = new.Captures(rel)
	}
	return deltasFromSets(oldCap, newCap, rel)
}

func deltasFromSets(oldCap, newCap *bitset.Set, rel *relation.Relation) (dF, dL, dR int) {
	// Walk only the symmetric difference: a rule edit is local, so the two
	// capture sets typically differ in a handful of transactions out of the
	// whole relation, and the word-level XOR skips identical stretches 64
	// transactions at a time.
	diff := oldCap.Clone()
	diff.SymmetricDifferenceWith(newCap)
	diff.ForEach(func(i int) {
		inc := 1
		if !newCap.Has(i) {
			inc = -1
		}
		switch rel.Label(i) {
		case relation.Fraud:
			dF += inc
		case relation.Legitimate:
			dL -= inc
		default:
			dR -= inc
		}
	})
	return dF, dL, dR
}

// GeneralizationScore is Equation 2: the cost of modifying rule r so that it
// captures the target pattern, computed as the Equation 1 distance minus the
// benefit of the minimal generalization (with deltas evaluated on the rule
// in isolation, as in Example 4.4). Lower is better. The returned rule is
// the minimal generalization itself, so callers ranking rules do not have to
// recompute it.
func GeneralizationScore(s *relation.Schema, rel *relation.Relation,
	r *rules.Rule, target []rules.Condition, w Weights) (float64, *rules.Rule) {
	return GeneralizationScoreCached(s, rel, r, nil, target, w)
}

// GeneralizationScoreCached is GeneralizationScore with the rule's current
// capture set supplied by the caller — typically read off an incremental
// capture cache — which saves one full-relation scan per ranked rule in the
// top-k loop of Algorithm 1. A nil oldCap falls back to evaluating r.
func GeneralizationScoreCached(s *relation.Schema, rel *relation.Relation,
	r *rules.Rule, oldCap *bitset.Set, target []rules.Condition, w Weights) (float64, *rules.Rule) {
	score, gen, _, _, _ := GeneralizationScoreDetail(s, rel, r, oldCap, target, w)
	return score, gen
}

// GeneralizationScoreDetail is GeneralizationScoreCached additionally
// returning the Definition 3.1 deltas of the minimal generalization — ΔF
// (frauds gained), ΔL (legitimate captures avoided; negative when the
// widening captures more) and ΔR (unlabeled captures avoided). The deltas
// are computed while scoring anyway; returning them lets the refinement
// tracer attribute every expert question without a second relation scan.
func GeneralizationScoreDetail(s *relation.Schema, rel *relation.Relation,
	r *rules.Rule, oldCap *bitset.Set, target []rules.Condition, w Weights) (score float64, gen *rules.Rule, dF, dL, dR int) {
	gen, changed := rules.GeneralizeToCover(s, r, target)
	dist := RuleDistance(s, r, target)
	if len(changed) == 0 {
		// Already capturing: distance 0, and no behaviour change.
		return 0, gen, 0, 0, 0
	}
	if oldCap == nil {
		oldCap = r.Captures(rel)
	}
	dF, dL, dR = deltasFromSets(oldCap, gen.Captures(rel), rel)
	return dist - w.Benefit(dF, dL, dR), gen, dF, dL, dR
}

// SplitBenefit returns the benefit of removing the given transactions from a
// rule's capture set (the attribute-selection criterion of Algorithm 2).
// removed is the set of transaction indices the split would no longer
// capture, counted only if no other rule still captures them (coveredByOthers).
func SplitBenefit(rel *relation.Relation, removed *bitset.Set,
	coveredByOthers *bitset.Set, w Weights) float64 {
	var dF, dL, dR int
	removed.ForEach(func(i int) {
		if coveredByOthers != nil && coveredByOthers.Has(i) {
			return // still captured by another rule: no behaviour change
		}
		switch rel.Label(i) {
		case relation.Fraud:
			dF-- // a fraud is lost
		case relation.Legitimate:
			dL++ // a legitimate transaction is excluded
		default:
			dR++ // an unlabeled transaction is excluded
		}
	})
	return w.Benefit(dF, dL, dR)
}
