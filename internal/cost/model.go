package cost

// ModKind classifies rule modifications for costing and for the
// modification-mix statistics reported in Section 5 of the paper (~75%
// condition refinements, ~20% rule splits, ~5% rule additions).
type ModKind uint8

const (
	// CondRefine is a change to one condition of an existing rule
	// (generalization or specialization).
	CondRefine ModKind = iota
	// RuleSplit is the duplication of a rule into restricted copies by
	// Algorithm 2.
	RuleSplit
	// RuleAdd is the creation of a new rule.
	RuleAdd
	// RuleRemove is the deletion of a rule.
	RuleRemove
)

// String names the modification kind.
func (k ModKind) String() string {
	switch k {
	case CondRefine:
		return "condition-refinement"
	case RuleSplit:
		return "rule-split"
	case RuleAdd:
		return "rule-addition"
	case RuleRemove:
		return "rule-removal"
	default:
		return "unknown"
	}
}

// Model assigns a cost to each rule modification. The paper's analysis uses
// unit costs; its future-work section proposes per-attribute weighted costs,
// which WeightedModel implements.
type Model interface {
	// ModificationCost returns the cost of a modification of the given kind
	// touching the given attribute (attr is -1 for whole-rule operations).
	ModificationCost(kind ModKind, attr int) float64
}

// UnitModel charges 1 for every modification, as assumed throughout the
// paper's hardness proofs and examples.
type UnitModel struct{}

// ModificationCost implements Model.
func (UnitModel) ModificationCost(ModKind, int) float64 { return 1 }

// WeightedModel charges per-kind and per-attribute weights. It implements
// the paper's future-work cost model: weights can be adjusted from expert
// feedback so that attributes whose proposed changes experts keep rejecting
// become more expensive to touch.
type WeightedModel struct {
	// KindWeight scales each modification kind; missing kinds default to 1.
	KindWeight map[ModKind]float64
	// AttrWeight scales modifications touching a given attribute; missing
	// attributes default to 1.
	AttrWeight map[int]float64
}

// NewWeightedModel returns a WeightedModel with all weights 1.
func NewWeightedModel() *WeightedModel {
	return &WeightedModel{
		KindWeight: make(map[ModKind]float64),
		AttrWeight: make(map[int]float64),
	}
}

// ModificationCost implements Model.
func (m *WeightedModel) ModificationCost(kind ModKind, attr int) float64 {
	c := 1.0
	if w, ok := m.KindWeight[kind]; ok {
		c *= w
	}
	if attr >= 0 {
		if w, ok := m.AttrWeight[attr]; ok {
			c *= w
		}
	}
	return c
}

// learning parameters for Feedback: multiplicative update, clamped so a
// single attribute can neither become free nor prohibitively expensive.
const (
	feedbackStep  = 1.25
	minAttrWeight = 0.25
	maxAttrWeight = 8.0
)

// Feedback adjusts the attribute weight after an expert decision: rejected
// proposals make the attribute more expensive to modify, accepted ones make
// it cheaper. This is the dynamic adaptation sketched in Section 7.
func (m *WeightedModel) Feedback(attr int, accepted bool) {
	w, ok := m.AttrWeight[attr]
	if !ok {
		w = 1
	}
	if accepted {
		w /= feedbackStep
	} else {
		w *= feedbackStep
	}
	if w < minAttrWeight {
		w = minAttrWeight
	}
	if w > maxAttrWeight {
		w = maxAttrWeight
	}
	m.AttrWeight[attr] = w
}
