package expert

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/paperdata"
	"repro/internal/relation"
	"repro/internal/rules"
)

func truth(s *relation.Schema) *rules.Set {
	return rules.NewSet(
		rules.MustParse(s, `time in [18:00,18:05] && amount >= $100 && type <= "Online, no CCV"`),
		rules.MustParse(s, `time in [18:55,19:15] && amount >= $100 && type <= "Online, no CCV"`),
		rules.MustParse(s, `time in [20:45,21:15] && amount >= $40 && location <= "Gas Station" && type <= "Offline"`),
	)
}

// genProposal builds the Example 4.4 rule-1 proposal: generalize
// "amount >= 110" to "amount >= 106" for the first fraud cluster.
func genProposal(t *testing.T) (*core.GenProposal, *relation.Schema) {
	t.Helper()
	s := paperdata.Schema()
	rel := paperdata.Transactions(s)
	original := rules.MustParse(s, "time in [18:00,18:05] && amount >= $110")
	rep := cluster.MakeRepresentative(rel, []int{0, 1})
	proposed, changed := rules.GeneralizeToCover(s, original, rep.Conds)
	return &core.GenProposal{
		Schema:    s,
		Rel:       rel,
		RuleIndex: 0,
		Original:  original,
		Proposed:  proposed,
		Changed:   changed,
		Rep:       rep,
	}, s
}

func TestAutoAcceptEverything(t *testing.T) {
	p, _ := genProposal(t)
	a := &AutoAccept{}
	if d := a.ReviewGeneralization(p); !d.Accept || d.Edited != nil {
		t.Error("AutoAccept should accept unmodified")
	}
	if d := a.ReviewSplit(&core.SplitProposal{}); !d.Accept {
		t.Error("AutoAccept should accept splits")
	}
	if a.Satisfied(core.RoundStats{FraudTotal: 1}) {
		t.Error("AutoAccept satisfied while a fraud is missed")
	}
	if !a.Satisfied(core.RoundStats{FraudTotal: 1, FraudCaptured: 1}) {
		t.Error("AutoAccept not satisfied when perfect")
	}
}

// TestOracleRoundsToPattern: the oracle accepts the rule-1 proposal and
// rounds the amount bound out to the true pattern's $100 (Elena's edit).
func TestOracleRoundsToPattern(t *testing.T) {
	p, s := genProposal(t)
	o := NewOracle(truth(s))
	d := o.ReviewGeneralization(p)
	if !d.Accept {
		t.Fatal("oracle rejected a pattern-consistent proposal")
	}
	if d.Edited == nil {
		t.Fatal("oracle did not round the boundary")
	}
	if got := d.Edited.Cond(1).Iv.Lo; got != 100 {
		t.Errorf("rounded amount bound = %d, want 100", got)
	}
	if o.SimulatedSeconds() <= 0 {
		t.Error("no simulated time charged")
	}
}

// TestOracleRejectsUnrelatedRuleStretch: generalizing the gas-station rule
// across the space to capture the online cluster must be rejected.
func TestOracleRejectsUnrelatedRuleStretch(t *testing.T) {
	s := paperdata.Schema()
	rel := paperdata.Transactions(s)
	original := rules.MustParse(s, `time in [20:45,21:15] && amount >= $40 && location = "Gas Station A"`)
	rep := cluster.MakeRepresentative(rel, []int{0, 1})
	proposed, changed := rules.GeneralizeToCover(s, original, rep.Conds)
	p := &core.GenProposal{
		Schema: s, Rel: rel, RuleIndex: 2,
		Original: original, Proposed: proposed, Changed: changed, Rep: rep,
	}
	o := NewOracle(truth(s))
	d := o.ReviewGeneralization(p)
	if d.Accept {
		t.Error("oracle accepted stretching an unrelated rule")
	}
	if len(d.RevertAttrs) != len(changed) {
		t.Errorf("oracle reverted %d of %d modifications", len(d.RevertAttrs), len(changed))
	}
}

func TestOracleAcceptsWithoutPattern(t *testing.T) {
	p, s := genProposal(t)
	o := NewOracle(rules.NewSet()) // no known patterns
	if d := o.ReviewGeneralization(p); !d.Accept || d.Edited != nil {
		t.Error("patternless oracle should accept the system's proposal as-is")
	}
	_ = s
}

// TestOracleRejectsFraudLosingSplit: a split that loses a fraud is rejected;
// one that only trims the legitimate tuple is accepted.
func TestOracleRejectsFraudLosingSplit(t *testing.T) {
	s := paperdata.Schema()
	rel := paperdata.Transactions(s)
	paperdata.LegitimateFollowUp(rel)
	original := rules.MustParse(s, "time in [18:00,18:05] && amount >= $100")
	o := NewOracle(truth(s))

	// A bad "split": an empty replacement list loses the two frauds.
	bad := &core.SplitProposal{
		Schema: s, Rel: rel, Original: original, Attr: 3,
		Replacements: nil, LegitIndex: 2,
	}
	if d := o.ReviewSplit(bad); d.Accept {
		t.Error("oracle accepted a fraud-losing split")
	}

	// The good split on type keeps both frauds.
	goodReps := []*rules.Rule{
		original.Clone().SetCond(2, rules.ConceptCond(s.Attr(2).Ontology.MustLookup("Offline"))),
		original.Clone().SetCond(2, rules.ConceptCond(s.Attr(2).Ontology.MustLookup("Online, no CCV"))),
	}
	good := &core.SplitProposal{
		Schema: s, Rel: rel, Original: original, Attr: 2,
		Replacements: goodReps, LegitIndex: 2,
	}
	d := o.ReviewSplit(good)
	if !d.Accept {
		t.Fatal("oracle rejected a fraud-preserving split")
	}
	// The offline branch captures no fraud and overlaps only the
	// gas-station pattern in type — but its time window [18:00,18:05] does
	// not overlap pattern 3's window, so the oracle trims it.
	if d.Keep == nil {
		t.Fatal("oracle kept the dead offline branch")
	}
	if len(d.Keep) != 1 || d.Keep[0] != 1 {
		t.Errorf("Keep = %v, want [1] (the Online, no CCV branch)", d.Keep)
	}
}

func TestOracleSatisfiedOnlyWhenPerfect(t *testing.T) {
	o := NewOracle(rules.NewSet())
	if o.Satisfied(core.RoundStats{FraudTotal: 2, FraudCaptured: 1}) {
		t.Error("satisfied while frauds missed")
	}
	if !o.Satisfied(core.RoundStats{FraudTotal: 2, FraudCaptured: 2}) {
		t.Error("not satisfied when perfect")
	}
}

func TestNoviceNoiseAndTiming(t *testing.T) {
	p, s := genProposal(t)
	inner := NewOracle(truth(s))
	n := NewNovice(inner, 7)
	sawNoRound, sawReject, sawRound := false, false, false
	for i := 0; i < 200; i++ {
		d := n.ReviewGeneralization(p)
		switch {
		case !d.Accept:
			sawReject = true
		case d.Edited == nil:
			sawNoRound = true
		default:
			sawRound = true
		}
	}
	if !sawNoRound || !sawReject || !sawRound {
		t.Errorf("novice noise missing a mode: noRound=%v reject=%v round=%v",
			sawNoRound, sawReject, sawRound)
	}
	if n.SimulatedSeconds() != 200*DefaultNoviceTiming().PerGeneralization {
		t.Errorf("novice time = %v", n.SimulatedSeconds())
	}
	if !n.Satisfied(core.RoundStats{}) {
		t.Error("novice Satisfied should delegate to the oracle (perfect empty stats)")
	}
}

func TestNoviceSplitNoise(t *testing.T) {
	s := paperdata.Schema()
	rel := paperdata.Transactions(s)
	paperdata.LegitimateFollowUp(rel)
	original := rules.MustParse(s, "time in [18:00,18:05] && amount >= $100")
	goodReps := []*rules.Rule{
		original.Clone().SetCond(2, rules.ConceptCond(s.Attr(2).Ontology.MustLookup("Offline"))),
		original.Clone().SetCond(2, rules.ConceptCond(s.Attr(2).Ontology.MustLookup("Online, no CCV"))),
	}
	p := &core.SplitProposal{
		Schema: s, Rel: rel, Original: original, Attr: 2,
		Replacements: goodReps, LegitIndex: 2,
	}
	n := NewNovice(NewOracle(truth(s)), 11)
	sawTrim, sawNoTrim := false, false
	for i := 0; i < 200; i++ {
		d := n.ReviewSplit(p)
		if !d.Accept {
			continue
		}
		if d.Keep == nil {
			sawNoTrim = true
		} else {
			sawTrim = true
		}
	}
	if !sawTrim || !sawNoTrim {
		t.Errorf("novice split noise missing a mode: trim=%v noTrim=%v", sawTrim, sawNoTrim)
	}
}

func TestInteractiveGeneralization(t *testing.T) {
	p, s := genProposal(t)
	in := strings.NewReader("x\na\n")
	var out strings.Builder
	ie := NewInteractive(in, &out)
	d := ie.ReviewGeneralization(p)
	if !d.Accept {
		t.Error("interactive accept failed")
	}
	if !strings.Contains(out.String(), "proposed:") {
		t.Error("proposal not printed")
	}
	if !strings.Contains(out.String(), "unrecognized") {
		t.Error("bad input not reported")
	}

	// Edit path with a parse error first.
	in = strings.NewReader("e\nghost = 1\ne\namount >= $100\n")
	ie = NewInteractive(in, &out)
	d = ie.ReviewGeneralization(p)
	if !d.Accept || d.Edited == nil {
		t.Fatal("interactive edit failed")
	}
	if d.Edited.Cond(1).Iv.Lo != 100 {
		t.Error("edited rule not parsed")
	}

	// Revert path.
	in = strings.NewReader("v\namount ghost\n")
	ie = NewInteractive(in, &out)
	d = ie.ReviewGeneralization(p)
	if d.Accept || len(d.RevertAttrs) != 1 || d.RevertAttrs[0] != s.MustIndex("amount") {
		t.Errorf("revert decision = %+v", d)
	}

	// Reject path.
	in = strings.NewReader("r\n")
	ie = NewInteractive(in, &out)
	if d := ie.ReviewGeneralization(p); d.Accept {
		t.Error("interactive reject failed")
	}
}

func TestInteractiveSplitAndSatisfied(t *testing.T) {
	s := paperdata.Schema()
	rel := paperdata.Transactions(s)
	original := rules.MustParse(s, "time in [18:00,18:05] && amount >= $100")
	reps := []*rules.Rule{
		original.Clone().SetCond(2, rules.ConceptCond(s.Attr(2).Ontology.MustLookup("Offline"))),
		original.Clone().SetCond(2, rules.ConceptCond(s.Attr(2).Ontology.MustLookup("Online, no CCV"))),
	}
	p := &core.SplitProposal{Schema: s, Rel: rel, Original: original, Attr: 2,
		Replacements: reps, LegitIndex: 2}

	var out strings.Builder
	ie := NewInteractive(strings.NewReader("k\n2\n"), &out)
	d := ie.ReviewSplit(p)
	if !d.Accept || len(d.Keep) != 1 || d.Keep[0] != 1 {
		t.Errorf("keep decision = %+v", d)
	}
	ie = NewInteractive(strings.NewReader("r\n"), &out)
	if d := ie.ReviewSplit(p); d.Accept {
		t.Error("interactive split reject failed")
	}
	ie = NewInteractive(strings.NewReader("\n"), &out)
	if d := ie.ReviewSplit(p); !d.Accept {
		t.Error("default answer should accept")
	}

	ie = NewInteractive(strings.NewReader("n\ny\n"), &out)
	if ie.Satisfied(core.RoundStats{}) {
		t.Error("answer n should continue")
	}
	if !ie.Satisfied(core.RoundStats{}) {
		t.Error("answer y should stop")
	}
}

func TestTimingDefaults(t *testing.T) {
	o := &Oracle{Truth: rules.NewSet()}
	if o.timing() != DefaultExpertTiming() {
		t.Error("zero oracle timing should default")
	}
	n := &Novice{Inner: o}
	if n.timing() != DefaultNoviceTiming() {
		t.Error("zero novice timing should default")
	}
	if n.random() == nil {
		t.Error("nil rng not lazily created")
	}
}

// TestRecordingExpert: the audit wrapper passes decisions through unchanged
// and writes one line per interaction.
func TestRecordingExpert(t *testing.T) {
	p, s := genProposal(t)
	var out strings.Builder
	rec := NewRecording(NewOracle(truth(s)), &out)
	dec := rec.ReviewGeneralization(p)
	if !dec.Accept || dec.Edited == nil {
		t.Error("recording changed the inner decision")
	}
	if rec.Interactions() != 1 {
		t.Errorf("interactions = %d", rec.Interactions())
	}
	if !strings.Contains(out.String(), "ACCEPTED") || !strings.Contains(out.String(), "edited to") {
		t.Errorf("audit line = %q", out.String())
	}
	// Split lines and satisfaction lines appear too.
	rel := p.Rel
	original := p.Original
	rec.ReviewSplit(&core.SplitProposal{
		Schema: s, Rel: rel, Original: original, Attr: 0,
		Replacements: nil, LegitIndex: 2,
	})
	if !strings.Contains(out.String(), "split rule") {
		t.Error("no split audit line")
	}
	rec.Satisfied(core.RoundStats{FraudTotal: 1, FraudCaptured: 1})
	if !strings.Contains(out.String(), "satisfied=true") {
		t.Error("no satisfaction audit line")
	}
	if rec.SimulatedSeconds() <= 0 {
		t.Error("time tracking not delegated")
	}
}

// TestCommitteeMajority: mixed committees resolve by majority; edits come
// from the first accepting editor; reverts union over rejectors.
func TestCommitteeMajority(t *testing.T) {
	p, s := genProposal(t)
	oracle := NewOracle(truth(s))
	accept := &AutoAccept{}
	reject := rejectAll{}

	// 2 accepts vs 1 reject: accepted, with the oracle's edit.
	c := NewCommittee(oracle, accept, reject)
	d := c.ReviewGeneralization(p)
	if !d.Accept || d.Edited == nil {
		t.Errorf("majority-accept committee: %+v", d)
	}
	// 1 accept vs 2 rejects: rejected with the union of reverts.
	c2 := NewCommittee(accept, reject, reject)
	d2 := c2.ReviewGeneralization(p)
	if d2.Accept || len(d2.RevertAttrs) == 0 {
		t.Errorf("majority-reject committee: %+v", d2)
	}
	// Satisfaction: two always-satisfied members outvote one never-satisfied.
	if !NewCommittee(accept, accept, &neverSatisfied{}).Satisfied(core.RoundStats{}) {
		t.Error("majority satisfaction failed")
	}
	if NewCommittee(accept, &neverSatisfied{}, &neverSatisfied{}).Satisfied(core.RoundStats{}) {
		t.Error("minority satisfaction passed")
	}
}

func TestCommitteeSplitVote(t *testing.T) {
	s := paperdata.Schema()
	rel := paperdata.Transactions(s)
	paperdata.LegitimateFollowUp(rel)
	original := rules.MustParse(s, "time in [18:00,18:05] && amount >= $100")
	goodReps := []*rules.Rule{
		original.Clone().SetCond(2, rules.ConceptCond(s.Attr(2).Ontology.MustLookup("Offline"))),
		original.Clone().SetCond(2, rules.ConceptCond(s.Attr(2).Ontology.MustLookup("Online, no CCV"))),
	}
	prop := &core.SplitProposal{Schema: s, Rel: rel, Original: original, Attr: 2,
		Replacements: goodReps, LegitIndex: 2}
	oracle := NewOracle(truth(s))
	c := NewCommittee(oracle, &AutoAccept{}, &AutoAccept{})
	d := c.ReviewSplit(prop)
	if !d.Accept {
		t.Fatal("committee rejected a good split")
	}
	if d.Keep == nil {
		t.Error("oracle's trim not adopted by the committee")
	}
	if NewCommittee(rejectAll{}, rejectAll{}, &AutoAccept{}).ReviewSplit(prop).Accept {
		t.Error("minority accept passed")
	}
}

func TestCommitteeTimeIsSlowestMember(t *testing.T) {
	p, s := genProposal(t)
	fast := NewOracle(truth(s))
	slow := NewNovice(NewOracle(truth(s)), 3)
	c := NewCommittee(fast, slow)
	c.ReviewGeneralization(p)
	if c.SimulatedSeconds() != slow.SimulatedSeconds() {
		t.Errorf("committee time %v, want the slowest member's %v",
			c.SimulatedSeconds(), slow.SimulatedSeconds())
	}
}

func TestCommitteePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty committee did not panic")
		}
	}()
	NewCommittee()
}

type rejectAll struct{}

func (rejectAll) ReviewGeneralization(p *core.GenProposal) core.GenDecision {
	return core.GenDecision{Accept: false, RevertAttrs: p.Changed}
}
func (rejectAll) ReviewSplit(*core.SplitProposal) core.SplitDecision {
	return core.SplitDecision{Accept: false}
}
func (rejectAll) Satisfied(core.RoundStats) bool { return true }

type neverSatisfied struct{ AutoAccept }

func (*neverSatisfied) Satisfied(core.RoundStats) bool { return false }
