package expert

import (
	"repro/internal/core"
)

// Committee aggregates several experts by majority vote — the paper ran its
// experiments with 8 experts (and separately with 10 students) and averaged
// their outcomes; a committee is the online version of that aggregation.
//
// Votes: a proposal is accepted when more than half the members accept.
// Among accepting members who edited the proposal, the first member's edit
// is adopted (a deterministic stand-in for discussion). Reverts are the
// union of the rejecting members' reverts. The committee is satisfied when
// a majority is.
type Committee struct {
	clock
	Members []core.Expert
}

// NewCommittee returns a committee over the given members (at least one).
func NewCommittee(members ...core.Expert) *Committee {
	if len(members) == 0 {
		panic("expert: committee needs at least one member")
	}
	return &Committee{Members: members}
}

// ReviewGeneralization implements core.Expert.
func (c *Committee) ReviewGeneralization(p *core.GenProposal) core.GenDecision {
	accepts := 0
	var firstEdit *core.GenDecision
	revertSet := map[int]bool{}
	for _, m := range c.Members {
		d := m.ReviewGeneralization(p)
		if d.Accept {
			accepts++
			if d.Edited != nil && firstEdit == nil {
				firstEdit = &d
			}
			continue
		}
		for _, a := range d.RevertAttrs {
			revertSet[a] = true
		}
	}
	if accepts*2 > len(c.Members) {
		out := core.GenDecision{Accept: true}
		if firstEdit != nil {
			out.Edited = firstEdit.Edited
		}
		return out
	}
	out := core.GenDecision{Accept: false}
	for a := range revertSet {
		out.RevertAttrs = append(out.RevertAttrs, a)
	}
	return out
}

// ReviewSplit implements core.Expert.
func (c *Committee) ReviewSplit(p *core.SplitProposal) core.SplitDecision {
	accepts := 0
	var firstKeep []int
	for _, m := range c.Members {
		d := m.ReviewSplit(p)
		if d.Accept {
			accepts++
			if d.Keep != nil && firstKeep == nil {
				firstKeep = d.Keep
			}
		}
	}
	if accepts*2 > len(c.Members) {
		return core.SplitDecision{Accept: true, Keep: firstKeep}
	}
	return core.SplitDecision{Accept: false}
}

// Satisfied implements core.Expert.
func (c *Committee) Satisfied(st core.RoundStats) bool {
	yes := 0
	for _, m := range c.Members {
		if m.Satisfied(st) {
			yes++
		}
	}
	return yes*2 > len(c.Members)
}

// SimulatedSeconds implements core.TimeTracker: the committee's time is the
// slowest member's (members review in parallel, as in a panel).
func (c *Committee) SimulatedSeconds() float64 {
	var max float64
	for _, m := range c.Members {
		if tt, ok := m.(core.TimeTracker); ok {
			if s := tt.SimulatedSeconds(); s > max {
				max = s
			}
		}
	}
	return max
}
