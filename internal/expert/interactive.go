package expert

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/rules"
)

// Interactive is a terminal-driven expert: each proposal is printed to Out
// and the decision is read from In. It powers the cmd/rudolf CLI and mirrors
// the interaction surface of the original RUDOLF prototype: accept, reject,
// revert selected attributes, or type a replacement rule.
type Interactive struct {
	in  *bufio.Scanner
	out io.Writer
}

// NewInteractive returns an Interactive expert reading decisions from in
// and writing prompts to out.
func NewInteractive(in io.Reader, out io.Writer) *Interactive {
	return &Interactive{in: bufio.NewScanner(in), out: out}
}

func (ie *Interactive) printf(format string, args ...any) {
	fmt.Fprintf(ie.out, format, args...)
}

func (ie *Interactive) readLine() string {
	if !ie.in.Scan() {
		return ""
	}
	return strings.TrimSpace(ie.in.Text())
}

// ReviewGeneralization implements core.Expert.
func (ie *Interactive) ReviewGeneralization(p *core.GenProposal) core.GenDecision {
	ie.printf("\n--- Generalization proposal (score %.1f) ---\n", p.Score)
	ie.printf("cluster: %d fraudulent transaction(s), e.g. %s\n",
		len(p.Rep.Members), p.Rel.FormatTuple(p.Rep.Members[0]))
	if p.Original != nil {
		ie.printf("rule:     %s\n", p.Original.Format(p.Schema))
	}
	ie.printf("proposed: %s\n", p.Proposed.Format(p.Schema))
	for {
		ie.printf("[a]ccept, [r]eject, [e]dit rule, re[v]ert attributes? ")
		switch ans := strings.ToLower(ie.readLine()); ans {
		case "a", "":
			return core.GenDecision{Accept: true}
		case "r":
			return core.GenDecision{Accept: false, RevertAttrs: p.Changed}
		case "e":
			if r := ie.readRule(p); r != nil {
				return core.GenDecision{Accept: true, Edited: r}
			}
		case "v":
			return core.GenDecision{Accept: false, RevertAttrs: ie.readAttrs(p)}
		default:
			ie.printf("unrecognized answer %q\n", ans)
		}
	}
}

func (ie *Interactive) readRule(p *core.GenProposal) *rules.Rule {
	ie.printf("enter rule: ")
	text := ie.readLine()
	r, err := rules.Parse(p.Schema, text)
	if err != nil {
		ie.printf("parse error: %v\n", err)
		return nil
	}
	return r
}

func (ie *Interactive) readAttrs(p *core.GenProposal) []int {
	ie.printf("attribute names to revert (space-separated): ")
	var out []int
	for _, name := range strings.Fields(ie.readLine()) {
		if i, ok := p.Schema.Index(name); ok {
			out = append(out, i)
		} else {
			ie.printf("unknown attribute %q ignored\n", name)
		}
	}
	return out
}

// ReviewSplit implements core.Expert.
func (ie *Interactive) ReviewSplit(p *core.SplitProposal) core.SplitDecision {
	ie.printf("\n--- Split proposal (benefit %.1f) ---\n", p.Benefit)
	ie.printf("to exclude: %s\n", p.Rel.FormatTuple(p.LegitIndex))
	ie.printf("rule:       %s\n", p.Original.Format(p.Schema))
	ie.printf("split on:   %s\n", p.Schema.Attr(p.Attr).Name)
	for i, r := range p.Replacements {
		ie.printf("  %d) %s\n", i+1, r.Format(p.Schema))
	}
	for {
		ie.printf("[a]ccept all, [r]eject (try another attribute), [k]eep subset? ")
		switch ans := strings.ToLower(ie.readLine()); ans {
		case "a", "":
			return core.SplitDecision{Accept: true}
		case "r":
			return core.SplitDecision{Accept: false}
		case "k":
			ie.printf("rule numbers to keep (space-separated): ")
			var keep []int
			for _, f := range strings.Fields(ie.readLine()) {
				if n, err := strconv.Atoi(f); err == nil && n >= 1 && n <= len(p.Replacements) {
					keep = append(keep, n-1)
				}
			}
			return core.SplitDecision{Accept: true, Keep: keep}
		default:
			ie.printf("unrecognized answer %q\n", ans)
		}
	}
}

// Satisfied implements core.Expert.
func (ie *Interactive) Satisfied(st core.RoundStats) bool {
	ie.printf("\nround %d: %d/%d frauds captured, %d legitimate captured, %d unlabeled captured, %d modifications\n",
		st.Round, st.FraudCaptured, st.FraudTotal, st.LegitCaptured, st.UnlabeledCaptured, st.Modifications)
	ie.printf("satisfied? [y/n] ")
	return strings.ToLower(ie.readLine()) != "n"
}
