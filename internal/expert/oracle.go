package expert

import (
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/rules"
)

// Oracle simulates a trained domain expert who knows the true attack
// patterns behind the frauds (in the experiments these are the planted
// patterns of the synthetic datasets; in the paper they are the experts'
// domain knowledge). Its behaviour mirrors Elena's in Examples 4.4 and 4.7:
//
//   - A generalization of a rule that is semantically "about" the same
//     attack (its region overlaps the true pattern) is accepted, and its
//     boundaries are rounded out to the true pattern's boundaries — the
//     paper's "Amt ≥ 106 → Amt ≥ 100" rounding.
//   - A generalization that would stretch an unrelated rule across the data
//     space is rejected outright (all modifications undesired), steering
//     Algorithm 1 to the next candidate or to a fresh rule.
//   - A split is accepted only if it loses no currently-known fraud; the
//     expert also trims replacement branches that neither capture a fraud
//     nor overlap a true pattern (as Elena discards one branch in
//     Example 4.7).
type Oracle struct {
	clock
	// Truth holds one rule per true attack pattern.
	Truth *rules.Set
	// Timing is the simulated interaction time; zero means
	// DefaultExpertTiming.
	Timing Timing
}

// NewOracle returns an Oracle over the given ground-truth pattern rules.
func NewOracle(truth *rules.Set) *Oracle {
	return &Oracle{Truth: truth, Timing: DefaultExpertTiming()}
}

func (o *Oracle) timing() Timing {
	if o.Timing == (Timing{}) {
		return DefaultExpertTiming()
	}
	return o.Timing
}

// ReviewGeneralization implements core.Expert.
func (o *Oracle) ReviewGeneralization(p *core.GenProposal) core.GenDecision {
	o.charge(o.timing().PerGeneralization)
	pattern := o.patternForMembers(p.Schema, p.Rel, p.Rep.Members)
	if pattern == nil {
		// Frauds with no recognizable pattern: trust the system's minimal
		// change.
		return core.GenDecision{Accept: true}
	}
	if p.Original != nil && !regionsOverlap(p.Schema, p.Original, pattern) {
		// The base rule is about a different attack; stretching it across
		// the space would be wrong. Reject everything.
		return core.GenDecision{Accept: false, RevertAttrs: p.Changed}
	}
	// Accept, rounding the conditions out to the true pattern's boundaries:
	// the expert recognizes the ongoing attack and writes its real region,
	// never narrowing below the proposal (the representative must stay
	// captured even if the pattern is unexpectedly narrower). For a new rule
	// (Original nil, the line-18 fallback) this replaces the overfit
	// transaction-specific rule by the attack's region — the paper's point
	// that expert knowledge detects the pattern "often even before it is
	// manifested in the transactions themselves".
	edited := p.Proposed.Clone()
	for attr := 0; attr < p.Schema.Arity(); attr++ {
		at := p.Schema.Attr(attr)
		c := condCover(at, pattern.Cond(attr), p.Proposed.Cond(attr))
		if p.Original != nil {
			c = condCover(at, c, p.Original.Cond(attr))
		}
		edited.SetCond(attr, c)
	}
	if edited.Equal(p.Schema, p.Proposed) {
		return core.GenDecision{Accept: true}
	}
	return core.GenDecision{Accept: true, Edited: edited}
}

// ReviewSplit implements core.Expert.
func (o *Oracle) ReviewSplit(p *core.SplitProposal) core.SplitDecision {
	o.charge(o.timing().PerSplit)
	// Count the frauds the split would lose.
	originalCap := p.Original.Captures(p.Rel)
	lost := 0
	originalCap.ForEach(func(i int) {
		if p.Rel.Label(i) != relation.Fraud {
			return
		}
		for _, r := range p.Replacements {
			if r.Matches(p.Schema, p.Rel.Tuple(i)) {
				return
			}
		}
		lost++
	})
	if lost > 0 {
		return core.SplitDecision{Accept: false}
	}
	// Trim branches that neither capture a known fraud nor overlap a true
	// pattern; they only widen the rule set.
	var keep []int
	for ri, r := range p.Replacements {
		if o.branchWorthKeeping(p, r) {
			keep = append(keep, ri)
		}
	}
	if len(keep) == len(p.Replacements) {
		return core.SplitDecision{Accept: true}
	}
	return core.SplitDecision{Accept: true, Keep: keep}
}

func (o *Oracle) branchWorthKeeping(p *core.SplitProposal, r *rules.Rule) bool {
	cap := r.Captures(p.Rel)
	found := false
	cap.ForEach(func(i int) {
		if p.Rel.Label(i) == relation.Fraud {
			found = true
		}
	})
	if found {
		return true
	}
	for _, pat := range o.Truth.Rules() {
		if regionsOverlap(p.Schema, r, pat) {
			return true
		}
	}
	return false
}

// Satisfied implements core.Expert: the oracle stops once the rules are
// perfect on the data seen so far.
func (o *Oracle) Satisfied(st core.RoundStats) bool { return st.Perfect() }

// patternForMembers returns the truth rule matching the most cluster
// members (at least half), or nil if no pattern stands out.
func (o *Oracle) patternForMembers(s *relation.Schema, rel *relation.Relation, members []int) *rules.Rule {
	if o.Truth == nil || len(members) == 0 {
		return nil
	}
	var best *rules.Rule
	bestN := 0
	for _, pat := range o.Truth.Rules() {
		n := 0
		for _, m := range members {
			if pat.Matches(s, rel.Tuple(m)) {
				n++
			}
		}
		if n > bestN {
			best, bestN = pat, n
		}
	}
	if bestN*2 < len(members) {
		return nil
	}
	return best
}
