package expert

import (
	"fmt"
	"io"

	"repro/internal/core"
)

// Recording wraps any expert and writes an audit trail of every proposal
// and decision to an io.Writer — the interaction transcript a regulated
// fraud desk must keep alongside the rule history.
type Recording struct {
	// Inner is the expert whose decisions are recorded.
	Inner core.Expert
	// Out receives one line per interaction.
	Out io.Writer

	interactions int
}

// NewRecording wraps inner, writing the audit trail to out.
func NewRecording(inner core.Expert, out io.Writer) *Recording {
	return &Recording{Inner: inner, Out: out}
}

// Interactions returns the number of recorded interactions.
func (r *Recording) Interactions() int { return r.interactions }

// ReviewGeneralization implements core.Expert.
func (r *Recording) ReviewGeneralization(p *core.GenProposal) core.GenDecision {
	dec := r.Inner.ReviewGeneralization(p)
	r.interactions++
	target := fmt.Sprintf("rule %d", p.RuleIndex+1)
	if p.RuleIndex < 0 {
		target = "new rule"
	}
	verdict := "REJECTED"
	if dec.Accept {
		verdict = "ACCEPTED"
	}
	fmt.Fprintf(r.Out, "[%d] generalize %s -> %q: %s", r.interactions, target,
		p.Proposed.Format(p.Schema), verdict)
	if dec.Edited != nil {
		fmt.Fprintf(r.Out, ", edited to %q", dec.Edited.Format(p.Schema))
	}
	if len(dec.RevertAttrs) > 0 {
		fmt.Fprintf(r.Out, ", reverted %d attribute(s)", len(dec.RevertAttrs))
	}
	fmt.Fprintln(r.Out)
	return dec
}

// ReviewSplit implements core.Expert.
func (r *Recording) ReviewSplit(p *core.SplitProposal) core.SplitDecision {
	dec := r.Inner.ReviewSplit(p)
	r.interactions++
	verdict := "REJECTED"
	if dec.Accept {
		verdict = "ACCEPTED"
	}
	fmt.Fprintf(r.Out, "[%d] split rule %d on %s (%d replacement(s)): %s",
		r.interactions, p.RuleIndex+1, p.Schema.Attr(p.Attr).Name,
		len(p.Replacements), verdict)
	if dec.Keep != nil {
		fmt.Fprintf(r.Out, ", kept %d", len(dec.Keep))
	}
	fmt.Fprintln(r.Out)
	return dec
}

// Satisfied implements core.Expert.
func (r *Recording) Satisfied(st core.RoundStats) bool {
	done := r.Inner.Satisfied(st)
	fmt.Fprintf(r.Out, "[round %d] frauds %d/%d, legit captured %d, satisfied=%v\n",
		st.Round, st.FraudCaptured, st.FraudTotal, st.LegitCaptured, done)
	return done
}

// SimulatedSeconds implements core.TimeTracker when the inner expert does.
func (r *Recording) SimulatedSeconds() float64 {
	if tt, ok := r.Inner.(core.TimeTracker); ok {
		return tt.SimulatedSeconds()
	}
	return 0
}
