package expert

import (
	"math/rand"

	"repro/internal/core"
)

// Novice simulates the student volunteers of Section 5: it follows the
// oracle's reasoning but with decision noise — sometimes it fails to apply
// the domain-knowledge rounding (accepting the system's minimal change
// as-is), sometimes it wrongly rejects a good proposal, and sometimes it
// fails to trim dead split branches. Interactions are also slower.
type Novice struct {
	clock
	// Inner is the expert being imitated (normally an Oracle).
	Inner core.Expert
	// NoRoundProb is the probability of accepting a proposal without the
	// inner expert's edit.
	NoRoundProb float64
	// WrongRejectProb is the probability of rejecting a proposal the inner
	// expert would accept.
	WrongRejectProb float64
	// Timing is the simulated interaction time; zero means
	// DefaultNoviceTiming.
	Timing Timing

	rng *rand.Rand
}

// NewNovice wraps the inner expert with the default noise levels
// (calibrated so novice-assisted quality lands ~5% behind the experts, as
// reported in Section 5) and a deterministic noise source.
func NewNovice(inner core.Expert, seed int64) *Novice {
	return &Novice{
		Inner:           inner,
		NoRoundProb:     0.35,
		WrongRejectProb: 0.10,
		Timing:          DefaultNoviceTiming(),
		rng:             rand.New(rand.NewSource(seed)),
	}
}

func (n *Novice) timing() Timing {
	if n.Timing == (Timing{}) {
		return DefaultNoviceTiming()
	}
	return n.Timing
}

func (n *Novice) random() *rand.Rand {
	if n.rng == nil {
		n.rng = rand.New(rand.NewSource(1))
	}
	return n.rng
}

// ReviewGeneralization implements core.Expert.
func (n *Novice) ReviewGeneralization(p *core.GenProposal) core.GenDecision {
	n.charge(n.timing().PerGeneralization)
	dec := n.Inner.ReviewGeneralization(p)
	rng := n.random()
	if dec.Accept && rng.Float64() < n.WrongRejectProb {
		return core.GenDecision{Accept: false, RevertAttrs: p.Changed}
	}
	if dec.Accept && dec.Edited != nil && rng.Float64() < n.NoRoundProb {
		dec.Edited = nil // missed the domain-knowledge rounding
	}
	return dec
}

// ReviewSplit implements core.Expert.
func (n *Novice) ReviewSplit(p *core.SplitProposal) core.SplitDecision {
	n.charge(n.timing().PerSplit)
	dec := n.Inner.ReviewSplit(p)
	if dec.Accept && dec.Keep != nil && n.random().Float64() < n.NoRoundProb {
		dec.Keep = nil // failed to trim dead branches
	}
	return dec
}

// Satisfied implements core.Expert: novices lack the trained eye for
// residual misses and declare themselves done once the rules look mostly
// right (≥90% of reported frauds captured, few legitimate captures), which
// is where their ~5% quality gap against the experts comes from.
func (n *Novice) Satisfied(st core.RoundStats) bool {
	if n.Inner.Satisfied(st) {
		return true
	}
	return st.FraudCaptured*10 >= st.FraudTotal*9 && st.LegitCaptured <= st.LegitTotal/10
}
