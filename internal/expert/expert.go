// Package expert provides the domain experts that sit in RUDOLF's loop: an
// auto-accepting expert (the RUDOLF⁻ variant of Section 5), a simulated
// oracle expert that knows the planted ground-truth attack patterns and
// behaves like the paper's "Elena" (accepting pattern-consistent proposals,
// rounding boundaries to the true pattern, rejecting stretches of unrelated
// rules, trimming dead split branches), a novice expert that adds decision
// noise to the oracle (the student volunteers of Section 5), a scripted
// expert for deterministic tests, and an interactive terminal expert.
//
// Every expert tracks simulated interaction time (never real sleeping),
// which the experiment harness uses for the Figure 3(f) timing results.
package expert

import (
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/rules"
)

// Timing configures the simulated seconds a human spends per interaction.
type Timing struct {
	PerGeneralization float64
	PerSplit          float64
}

// DefaultExpertTiming reflects the paper's measurements for trained experts
// working with RUDOLF (about 50 seconds per refinement round, a handful of
// proposals per round).
func DefaultExpertTiming() Timing { return Timing{PerGeneralization: 6, PerSplit: 8} }

// DefaultNoviceTiming makes novices roughly twice as slow per interaction.
func DefaultNoviceTiming() Timing { return Timing{PerGeneralization: 18, PerSplit: 22} }

// clock accumulates simulated seconds; experts embed it.
type clock struct {
	seconds float64
}

func (c *clock) charge(s float64) { c.seconds += s }

// SimulatedSeconds implements core.TimeTracker.
func (c *clock) SimulatedSeconds() float64 { return c.seconds }

// AutoAccept accepts every proposal unmodified, realizing RUDOLF⁻: the
// system's suggestions applied without consulting an expert. It reports
// satisfaction only when the rules are perfect on the current data, so the
// refinement loop keeps iterating while it is making progress.
type AutoAccept struct {
	clock
}

// ReviewGeneralization implements core.Expert.
func (a *AutoAccept) ReviewGeneralization(*core.GenProposal) core.GenDecision {
	return core.GenDecision{Accept: true}
}

// ReviewSplit implements core.Expert.
func (a *AutoAccept) ReviewSplit(*core.SplitProposal) core.SplitDecision {
	return core.SplitDecision{Accept: true}
}

// Satisfied implements core.Expert.
func (a *AutoAccept) Satisfied(st core.RoundStats) bool { return st.Perfect() }

// Scripted replays canned decisions in order; when a queue runs dry it
// accepts. It is intended for deterministic unit tests of the algorithms'
// interaction handling.
type Scripted struct {
	clock
	// Gen and Split are consumed front to back by the respective reviews.
	Gen   []core.GenDecision
	Split []core.SplitDecision
	// SatisfiedAfter makes Satisfied return true once that many rounds have
	// been observed; 0 means always satisfied.
	SatisfiedAfter int

	rounds int
	// GenProposals and SplitProposals record what was reviewed.
	GenProposals   []*core.GenProposal
	SplitProposals []*core.SplitProposal
}

// ReviewGeneralization implements core.Expert.
func (s *Scripted) ReviewGeneralization(p *core.GenProposal) core.GenDecision {
	s.GenProposals = append(s.GenProposals, p)
	if len(s.Gen) == 0 {
		return core.GenDecision{Accept: true}
	}
	d := s.Gen[0]
	s.Gen = s.Gen[1:]
	return d
}

// ReviewSplit implements core.Expert.
func (s *Scripted) ReviewSplit(p *core.SplitProposal) core.SplitDecision {
	s.SplitProposals = append(s.SplitProposals, p)
	if len(s.Split) == 0 {
		return core.SplitDecision{Accept: true}
	}
	d := s.Split[0]
	s.Split = s.Split[1:]
	return d
}

// Satisfied implements core.Expert.
func (s *Scripted) Satisfied(core.RoundStats) bool {
	s.rounds++
	return s.rounds >= s.SatisfiedAfter
}

// regionsOverlap reports whether two rules select overlapping regions:
// every numeric condition pair intersects and every categorical condition
// pair shares at least one leaf.
func regionsOverlap(s *relation.Schema, a, b *rules.Rule) bool {
	for i := 0; i < s.Arity(); i++ {
		at := s.Attr(i)
		ca, cb := a.Cond(i), b.Cond(i)
		if at.Kind == relation.Categorical {
			if !conceptsShareLeaf(at, ca, cb) {
				return false
			}
			continue
		}
		if !ca.Iv.Overlaps(cb.Iv) {
			return false
		}
	}
	return true
}

func conceptsShareLeaf(at relation.Attribute, a, b rules.Condition) bool {
	o := at.Ontology
	for _, l := range o.LeavesUnder(a.C) {
		if o.Contains(b.C, l) {
			return true
		}
	}
	return false
}

// condCover returns the most specific condition covering both inputs.
func condCover(at relation.Attribute, a, b rules.Condition) rules.Condition {
	if at.Kind == relation.Categorical {
		if at.Ontology.Contains(a.C, b.C) {
			return a
		}
		if at.Ontology.Contains(b.C, a.C) {
			return b
		}
		g, _ := at.Ontology.MinimalGeneralization(a.C, b.C)
		return rules.ConceptCond(g)
	}
	return rules.NumericCond(a.Iv.Cover(b.Iv))
}
