// Package metrics implements the prediction-quality measurements of
// Section 5: given predicted fraud flags and ground truth over a window of
// future transactions, it computes the confusion counts, the per-class
// percentages the paper reports ("the percentage out of all fraudulent
// (resp. legitimate) transactions that it identifies (resp. wrongly
// classifies as fraudulent)"), and the balanced misclassification percentage
// used as the single error number in the figures.
package metrics

import "repro/internal/bitset"

// Confusion holds the four confusion-matrix counts over a set of
// transactions (classes: fraud vs legitimate ground truth).
type Confusion struct {
	TP int // fraud predicted fraud
	FP int // legitimate predicted fraud
	FN int // fraud predicted legitimate
	TN int // legitimate predicted legitimate
}

// Evaluate compares predicted fraud flags to ground truth over tuples
// [lo, hi) of a relation, where predicted holds indices relative to the same
// relation the truth slice describes.
func Evaluate(predicted *bitset.Set, trueFraud []bool, lo, hi int) Confusion {
	var c Confusion
	if hi > len(trueFraud) {
		hi = len(trueFraud)
	}
	for i := lo; i < hi; i++ {
		p := predicted.Has(i)
		switch {
		case trueFraud[i] && p:
			c.TP++
		case trueFraud[i] && !p:
			c.FN++
		case !trueFraud[i] && p:
			c.FP++
		default:
			c.TN++
		}
	}
	return c
}

// MissedFraudPct is the percentage of fraudulent transactions the rules
// fail to identify (100 − recall).
func (c Confusion) MissedFraudPct() float64 {
	f := c.TP + c.FN
	if f == 0 {
		return 0
	}
	return 100 * float64(c.FN) / float64(f)
}

// FalseAlarmPct is the percentage of legitimate transactions wrongly
// classified as fraudulent.
func (c Confusion) FalseAlarmPct() float64 {
	l := c.FP + c.TN
	if l == 0 {
		return 0
	}
	return 100 * float64(c.FP) / float64(l)
}

// BalancedErrorPct is the mean of the two per-class error percentages — the
// single "percentage of misclassified transactions" number plotted in the
// figures. Balancing keeps the 0.5-2.5% fraud base rate from drowning the
// missed-fraud signal in the legitimate majority.
func (c Confusion) BalancedErrorPct() float64 {
	return (c.MissedFraudPct() + c.FalseAlarmPct()) / 2
}

// RawErrorPct is the unweighted percentage of misclassified transactions.
func (c Confusion) RawErrorPct() float64 {
	total := c.TP + c.FP + c.FN + c.TN
	if total == 0 {
		return 0
	}
	return 100 * float64(c.FN+c.FP) / float64(total)
}

// Precision is TP / (TP + FP), in [0, 1]; 1 when nothing was predicted.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is TP / (TP + FN), in [0, 1]; 1 when there are no frauds.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Add accumulates another confusion matrix into c.
func (c Confusion) Add(other Confusion) Confusion {
	c.TP += other.TP
	c.FP += other.FP
	c.FN += other.FN
	c.TN += other.TN
	return c
}
