package metrics

import (
	"math"
	"testing"

	"repro/internal/bitset"
)

func confusionFixture() (pred *bitset.Set, truth []bool) {
	// 10 tuples: frauds at 0,1,2; predictions at 0,1,5.
	truth = []bool{true, true, true, false, false, false, false, false, false, false}
	pred = bitset.New(len(truth))
	pred.Add(0)
	pred.Add(1)
	pred.Add(5)
	return pred, truth
}

func TestEvaluateCounts(t *testing.T) {
	pred, truth := confusionFixture()
	c := Evaluate(pred, truth, 0, len(truth))
	if c.TP != 2 || c.FN != 1 || c.FP != 1 || c.TN != 6 {
		t.Fatalf("confusion = %+v", c)
	}
}

func TestEvaluateWindow(t *testing.T) {
	pred, truth := confusionFixture()
	c := Evaluate(pred, truth, 2, 6)
	// Window covers tuples 2..5: fraud 2 (missed), legits 3,4,5 (5 flagged).
	if c.TP != 0 || c.FN != 1 || c.FP != 1 || c.TN != 2 {
		t.Fatalf("windowed confusion = %+v", c)
	}
	// Out-of-range hi is clamped.
	c2 := Evaluate(pred, truth, 0, 99)
	if c2 != Evaluate(pred, truth, 0, len(truth)) {
		t.Error("hi clamp wrong")
	}
}

func TestPercentages(t *testing.T) {
	pred, truth := confusionFixture()
	c := Evaluate(pred, truth, 0, len(truth))
	if got := c.MissedFraudPct(); math.Abs(got-100.0/3) > 1e-9 {
		t.Errorf("MissedFraudPct = %v", got)
	}
	if got := c.FalseAlarmPct(); math.Abs(got-100.0/7) > 1e-9 {
		t.Errorf("FalseAlarmPct = %v", got)
	}
	wantBal := (100.0/3 + 100.0/7) / 2
	if got := c.BalancedErrorPct(); math.Abs(got-wantBal) > 1e-9 {
		t.Errorf("BalancedErrorPct = %v, want %v", got, wantBal)
	}
	if got := c.RawErrorPct(); math.Abs(got-20) > 1e-9 {
		t.Errorf("RawErrorPct = %v, want 20", got)
	}
}

func TestPrecisionRecallF1(t *testing.T) {
	c := Confusion{TP: 2, FP: 1, FN: 1, TN: 6}
	if got := c.Precision(); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("Precision = %v", got)
	}
	if got := c.Recall(); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("Recall = %v", got)
	}
	if got := c.F1(); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("F1 = %v", got)
	}
}

func TestDegenerateCases(t *testing.T) {
	var c Confusion
	if c.MissedFraudPct() != 0 || c.FalseAlarmPct() != 0 || c.RawErrorPct() != 0 {
		t.Error("empty confusion should be all-zero percentages")
	}
	if c.Precision() != 1 || c.Recall() != 1 {
		t.Error("empty confusion precision/recall should be 1")
	}
	zero := Confusion{FN: 1, FP: 1}
	if zero.F1() != 0 {
		t.Error("F1 of all-wrong should be 0")
	}
}

func TestAdd(t *testing.T) {
	a := Confusion{TP: 1, FP: 2, FN: 3, TN: 4}
	b := Confusion{TP: 10, FP: 20, FN: 30, TN: 40}
	got := a.Add(b)
	if got != (Confusion{TP: 11, FP: 22, FN: 33, TN: 44}) {
		t.Errorf("Add = %+v", got)
	}
	// Value semantics: a unchanged.
	if a.TP != 1 {
		t.Error("Add mutated the receiver")
	}
}
