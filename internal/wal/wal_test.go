package wal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// collect returns a replay callback that copies every delivered payload.
func collect(got *[][]byte, seqs *[]uint64) func(Entry) error {
	return func(e Entry) error {
		*got = append(*got, append([]byte(nil), e.Payload...))
		if seqs != nil {
			*seqs = append(*seqs, e.Seq)
		}
		return nil
	}
}

func mustOpen(t *testing.T, opts Options, replay func(Entry) error) *Log {
	t.Helper()
	l, err := Open(opts, replay)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

// TestRoundTrip appends pseudo-random payloads across many small segments and
// asserts that a reopen replays them byte-identically, in order, with dense
// sequence numbers — the differential test between the append path and the
// replay path.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1))
	opts := Options{Dir: dir, SegmentBytes: 256, Sync: SyncNever}

	var want [][]byte
	l := mustOpen(t, opts, nil)
	for i := 0; i < 200; i++ {
		n := rng.Intn(64)
		p := make([]byte, n)
		for j := range p {
			p[j] = byte('a' + rng.Intn(26))
		}
		seq, err := l.Append(p)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if wantSeq := uint64(i + 1); seq != wantSeq {
			t.Fatalf("Append returned seq %d, want %d", seq, wantSeq)
		}
		want = append(want, p)
	}
	st := l.Stats()
	if st.Appends != 200 || st.LastSeq != 200 {
		t.Fatalf("stats = %+v, want 200 appends, last seq 200", st)
	}
	if st.Segments < 2 {
		t.Fatalf("got %d segments, want rotation to have happened", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var got [][]byte
	var seqs []uint64
	l2 := mustOpen(t, opts, collect(&got, &seqs))
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: replayed %q, want %q", i+1, got[i], want[i])
		}
		if seqs[i] != uint64(i+1) {
			t.Fatalf("record %d: seq %d, want %d", i, seqs[i], i+1)
		}
	}
	if l2.LastSeq() != 200 {
		t.Fatalf("LastSeq after reopen = %d, want 200", l2.LastSeq())
	}
	// And the log keeps appending from where it left off.
	if seq, err := l2.Append([]byte("resumed")); err != nil || seq != 201 {
		t.Fatalf("Append after reopen = %d, %v; want 201, nil", seq, err)
	}
}

// TestTornTailTruncation cuts the final segment at every possible byte
// boundary inside the last record and asserts the tail is dropped with a
// warning while every earlier record survives.
func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Sync: SyncNever}
	l := mustOpen(t, opts, nil)
	payloads := [][]byte{[]byte(`{"a":1}`), []byte(`{"b":22}`), []byte(`{"c":333}`)}
	for _, p := range payloads {
		if _, err := l.Append(p); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	seg := segmentPath(dir, 1)
	pristine, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(pristine, []byte("\n"))
	// lines[0..2] are the records; lines[3] is empty.
	tailStart := len(pristine) - len(lines[2])

	for cut := tailStart + 1; cut < len(pristine); cut++ {
		if err := os.WriteFile(seg, pristine[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got [][]byte
		l2, err := Open(opts, collect(&got, nil))
		if err != nil {
			t.Fatalf("cut at %d: Open: %v", cut, err)
		}
		if len(got) != 2 {
			t.Fatalf("cut at %d: replayed %d records, want 2", cut, len(got))
		}
		if st := l2.Stats(); st.TornTailDrops != 1 {
			t.Fatalf("cut at %d: torn drops = %d, want 1", cut, st.TornTailDrops)
		}
		// The torn tail must be gone from disk and a fresh append must land
		// as record 3 on a clean frame boundary.
		if seq, err := l2.Append([]byte(`{"d":4}`)); err != nil || seq != 3 {
			t.Fatalf("cut at %d: Append = %d, %v; want 3, nil", cut, seq, err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		var again [][]byte
		l3, err := Open(opts, collect(&again, nil))
		if err != nil {
			t.Fatalf("cut at %d: reopen after repair: %v", cut, err)
		}
		if len(again) != 3 || !bytes.Equal(again[2], []byte(`{"d":4}`)) {
			t.Fatalf("cut at %d: post-repair replay = %q", cut, again)
		}
		l3.Close()
	}
}

// TestTornTailMissingNewline: a final record that is fully intact except for
// its trailing newline must still be dropped — otherwise the next append
// would concatenate onto its line.
func TestTornTailMissingNewline(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Sync: SyncNever}
	l := mustOpen(t, opts, nil)
	for i := 0; i < 2; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	seg := segmentPath(dir, 1)
	data, _ := os.ReadFile(seg)
	if err := os.WriteFile(seg, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	l2, err := Open(opts, collect(&got, nil))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l2.Close()
	if len(got) != 1 || string(got[0]) != "rec0" {
		t.Fatalf("replayed %q, want only rec0", got)
	}
	if st := l2.Stats(); st.TornTailDrops != 1 {
		t.Fatalf("torn drops = %d, want 1", st.TornTailDrops)
	}
}

// TestBitFlip flips one byte of the final record (tolerated: torn tail) and
// then one byte of an earlier record (fails loud: not a crash artifact).
func TestBitFlip(t *testing.T) {
	build := func(t *testing.T) (string, Options, []byte) {
		dir := t.TempDir()
		opts := Options{Dir: dir, Sync: SyncNever}
		l := mustOpen(t, opts, nil)
		for i := 0; i < 3; i++ {
			if _, err := l.Append([]byte(fmt.Sprintf(`{"rec":%d}`, i))); err != nil {
				t.Fatal(err)
			}
		}
		l.Close()
		data, err := os.ReadFile(segmentPath(dir, 1))
		if err != nil {
			t.Fatal(err)
		}
		return dir, opts, data
	}

	t.Run("final record tolerated", func(t *testing.T) {
		dir, opts, data := build(t)
		lines := bytes.SplitAfter(data, []byte("\n"))
		tailStart := len(data) - len(lines[2])
		for off := tailStart; off < len(data)-1; off++ { // spare the newline
			flipped := append([]byte(nil), data...)
			flipped[off] ^= 0xFF // invert: never a case-change that hex parsing forgives
			if err := os.WriteFile(segmentPath(dir, 1), flipped, 0o644); err != nil {
				t.Fatal(err)
			}
			var got [][]byte
			l, err := Open(opts, collect(&got, nil))
			if err != nil {
				t.Fatalf("flip at %d: Open: %v", off, err)
			}
			if len(got) != 2 {
				t.Fatalf("flip at %d: replayed %d, want 2", off, len(got))
			}
			l.Close()
		}
	})

	t.Run("earlier record fails loud", func(t *testing.T) {
		dir, opts, data := build(t)
		lines := bytes.SplitAfter(data, []byte("\n"))
		for off := 0; off < len(lines[0])-1; off++ { // first record, spare newline
			flipped := append([]byte(nil), data...)
			flipped[off] ^= 0xFF
			if err := os.WriteFile(segmentPath(dir, 1), flipped, 0o644); err != nil {
				t.Fatal(err)
			}
			l, err := Open(opts, nil)
			if err == nil {
				l.Close()
				t.Fatalf("flip at %d: Open succeeded, want corrupt-record error", off)
			}
			if !strings.Contains(err.Error(), "not a torn tail") {
				t.Fatalf("flip at %d: error %q, want a refusing-to-replay error", off, err)
			}
		}
	})
}

// TestCorruptEarlierSegment: a torn tail is only forgivable in the FINAL
// segment — a truncated record in an earlier segment fails loud.
func TestCorruptEarlierSegment(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, SegmentBytes: 1, Sync: SyncNever} // rotate every record
	l := mustOpen(t, opts, nil)
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Truncate the middle of segment 2 (records: seg1=rec0, seg2=rec1, ...).
	seg := segmentPath(dir, 2)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(opts, nil); err == nil {
		t.Fatal("Open succeeded, want an error for a torn record in a non-final segment")
	}
}

// TestMissingSegment: a gap in the segment sequence fails loud.
func TestMissingSegment(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, SegmentBytes: 1, Sync: SyncNever}
	l := mustOpen(t, opts, nil)
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	if err := os.Remove(segmentPath(dir, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(opts, nil); err == nil || !strings.Contains(err.Error(), "missing segment") {
		t.Fatalf("Open = %v, want a missing-segment error", err)
	}
}

// TestPruneAndReopen prunes snapshot-covered segments and asserts a reopen
// resumes at the right sequence number even though the log no longer starts
// at record 1.
func TestPruneAndReopen(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, SegmentBytes: 1, Sync: SyncNever} // rotate every record
	l := mustOpen(t, opts, nil)
	for i := 1; i <= 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// SegmentBytes 1 rotates after every append: segments 1..5 hold one
	// record each, segment 6 is the empty active segment.
	removed, err := l.Prune(3)
	if err != nil {
		t.Fatalf("Prune: %v", err)
	}
	if removed != 3 {
		t.Fatalf("Prune removed %d segments, want 3", removed)
	}
	l.Close()

	var got [][]byte
	var seqs []uint64
	l2, err := Open(opts, collect(&got, &seqs))
	if err != nil {
		t.Fatalf("reopen after prune: %v", err)
	}
	if len(got) != 2 || string(got[0]) != "rec4" || seqs[0] != 4 || seqs[1] != 5 {
		t.Fatalf("replay after prune = %q (seqs %v), want rec4, rec5 at seqs 4, 5", got, seqs)
	}
	if seq, err := l2.Append([]byte("rec6")); err != nil || seq != 6 {
		t.Fatalf("Append after prune = %d, %v; want 6, nil", seq, err)
	}
	// Pruning past the end removes everything but the active segment.
	if removed, err = l2.Prune(99); err != nil || removed == 0 {
		t.Fatalf("Prune(99) = %d, %v; want everything but the active segment gone", removed, err)
	}
	if st := l2.Stats(); st.Segments != 1 {
		t.Fatalf("segments after full prune = %d, want 1", st.Segments)
	}
	l2.Close()

	// A log whose surviving records all live in the active segment still
	// reopens at the right position.
	l3, err := Open(opts, nil)
	if err != nil {
		t.Fatalf("reopen after full prune: %v", err)
	}
	defer l3.Close()
	if seq, err := l3.Append([]byte("rec7")); err != nil || seq != 7 {
		t.Fatalf("Append after full prune = %d, %v; want 7, nil", seq, err)
	}
}

// TestSyncPolicies exercises the three fsync policies' bookkeeping.
func TestSyncPolicies(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		l := mustOpen(t, Options{Dir: t.TempDir(), Sync: SyncAlways}, nil)
		defer l.Close()
		l.Append([]byte("a"))
		l.Append([]byte("b"))
		if st := l.Stats(); st.Fsyncs < 2 {
			t.Fatalf("fsyncs = %d, want one per append", st.Fsyncs)
		}
	})
	t.Run("never", func(t *testing.T) {
		l := mustOpen(t, Options{Dir: t.TempDir(), Sync: SyncNever}, nil)
		l.Append([]byte("a"))
		if st := l.Stats(); st.Fsyncs != 0 {
			t.Fatalf("fsyncs = %d, want 0 before Close", st.Fsyncs)
		}
		// Close flushes regardless of policy.
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("interval", func(t *testing.T) {
		l := mustOpen(t, Options{Dir: t.TempDir(), Sync: SyncInterval, SyncInterval: time.Millisecond}, nil)
		defer l.Close()
		l.Append([]byte("a"))
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if l.Stats().Fsyncs > 0 {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatal("background fsync never ran")
	})
	t.Run("explicit sync", func(t *testing.T) {
		l := mustOpen(t, Options{Dir: t.TempDir(), Sync: SyncNever}, nil)
		defer l.Close()
		l.Append([]byte("a"))
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		if st := l.Stats(); st.Fsyncs != 1 {
			t.Fatalf("fsyncs = %d, want 1 after explicit Sync", st.Fsyncs)
		}
	})
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"", SyncAlways, true},
		{"always", SyncAlways, true},
		{"interval", SyncInterval, true},
		{"never", SyncNever, true},
		{"sometimes", "", false},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseSyncPolicy(%q) = %q, %v; want %q, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

func TestAppendRejectsNewline(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir(), Sync: SyncNever}, nil)
	defer l.Close()
	if _, err := l.Append([]byte("two\nlines")); err == nil {
		t.Fatal("Append accepted a payload containing a newline")
	}
}

func TestAppendAfterClose(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir(), Sync: SyncNever}, nil)
	l.Close()
	if _, err := l.Append([]byte("late")); err == nil {
		t.Fatal("Append succeeded on a closed log")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestReplayCallbackError: an error from the replay callback aborts Open.
func TestReplayCallbackError(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Sync: SyncNever}
	l := mustOpen(t, opts, nil)
	l.Append([]byte(`{"bad":"payload"}`))
	l.Close()
	_, err := Open(opts, func(Entry) error { return fmt.Errorf("schema drift") })
	if err == nil || !strings.Contains(err.Error(), "schema drift") {
		t.Fatalf("Open = %v, want the callback's error", err)
	}
}

// TestJSONPayloadRoundTrip: the intended workload — one JSON document per
// record — survives framing.
func TestJSONPayloadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Sync: SyncNever}
	l := mustOpen(t, opts, nil)
	type rec struct {
		Kind string `json:"kind"`
		N    int    `json:"n"`
	}
	for i := 0; i < 10; i++ {
		b, _ := json.Marshal(rec{Kind: "feedback", N: i})
		if _, err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	n := 0
	l2, err := Open(opts, func(e Entry) error {
		var r rec
		if err := json.Unmarshal(e.Payload, &r); err != nil {
			return err
		}
		if r.N != n {
			return fmt.Errorf("record %d decoded N=%d", n, r.N)
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if n != 10 {
		t.Fatalf("replayed %d, want 10", n)
	}
}

// FuzzTornTail feeds arbitrary bytes as the final segment of a log and
// asserts Open either fails cleanly or yields a log whose accepted prefix
// round-trips: no panics, no acceptance of corrupt records.
func FuzzTornTail(f *testing.F) {
	good := appendFrame(nil, 1, []byte(`{"seed":true}`))
	f.Add(good)
	f.Add(append(append([]byte(nil), good...), appendFrame(nil, 2, []byte(`x`))...))
	f.Add([]byte("1 3 00000000 abc\n"))
	f.Add([]byte("garbage with no structure"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Skip()
		}
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Skip()
		}
		var got [][]byte
		l, err := Open(Options{Dir: dir, Sync: SyncNever}, collect(&got, nil))
		if err != nil {
			return // loud failure is an acceptable outcome for arbitrary bytes
		}
		// Whatever was accepted must survive an append + reopen verbatim.
		if _, err := l.Append([]byte("probe")); err != nil {
			t.Fatalf("Append on accepted log: %v", err)
		}
		l.Close()
		var again [][]byte
		l2, err := Open(Options{Dir: dir, Sync: SyncNever}, collect(&again, nil))
		if err != nil {
			t.Fatalf("reopen of accepted log: %v", err)
		}
		l2.Close()
		if len(again) != len(got)+1 {
			t.Fatalf("reopen replayed %d records, want %d", len(again), len(got)+1)
		}
		for i := range got {
			if !bytes.Equal(again[i], got[i]) {
				t.Fatalf("record %d changed across reopen", i)
			}
		}
		if string(again[len(got)]) != "probe" {
			t.Fatalf("probe record corrupted: %q", again[len(got)])
		}
	})
}

// TestLatencyCountersAndDiskBytes: the optional latency histograms observe
// every append and fsync, and the disk-footprint stat tracks appends,
// survives a reopen (re-summed from the live segment files) and shrinks
// under Prune.
func TestLatencyCountersAndDiskBytes(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	ctr := Counters{
		Appends:       reg.Counter("appends"),
		Fsyncs:        reg.Counter("fsyncs"),
		AppendSeconds: reg.Histogram("append_seconds", telemetry.StageBuckets),
		FsyncSeconds:  reg.Histogram("fsync_seconds", telemetry.StageBuckets),
	}
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 64, Sync: SyncAlways, Counters: ctr}, nil)
	const records = 8
	var lastSeq uint64
	for i := 0; i < records; i++ {
		seq, err := l.Append([]byte(fmt.Sprintf("record-%02d", i)))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		lastSeq = seq
	}
	if got := ctr.AppendSeconds.Count(); got != records {
		t.Fatalf("AppendSeconds observed %d appends, want %d", got, records)
	}
	// SyncAlways fsyncs at least once per append (rotation adds more).
	if got := ctr.FsyncSeconds.Count(); got < records {
		t.Fatalf("FsyncSeconds observed %d fsyncs, want >= %d", got, records)
	}
	if ctr.AppendSeconds.Sum() < 0 || ctr.FsyncSeconds.Sum() < 0 {
		t.Fatal("negative latency sums")
	}
	if got, want := ctr.FsyncSeconds.Count(), ctr.Fsyncs.Value(); got != want {
		t.Fatalf("fsync histogram count %d != fsync counter %d", got, want)
	}

	st := l.Stats()
	if st.DiskBytes <= 0 || st.Segments < 2 {
		t.Fatalf("Stats = %+v, want bytes on disk across rotated segments", st)
	}
	grown := st.DiskBytes
	l.Close()

	// Reopen re-sums the footprint from the live segment files.
	l2 := mustOpen(t, Options{Dir: dir, SegmentBytes: 64, Sync: SyncNever}, nil)
	defer l2.Close()
	st2 := l2.Stats()
	if st2.DiskBytes != grown {
		t.Fatalf("reopen DiskBytes = %d, want %d (same live segments)", st2.DiskBytes, grown)
	}
	if removed, err := l2.Prune(lastSeq); err != nil || removed == 0 {
		t.Fatalf("Prune removed %d segments (err %v), want > 0", removed, err)
	}
	if after := l2.Stats(); after.DiskBytes >= grown || after.DiskBytes <= 0 {
		t.Fatalf("post-prune DiskBytes = %d, want shrunk from %d but non-zero", after.DiskBytes, grown)
	}
}
