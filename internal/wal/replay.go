package wal

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
)

// replaySegment verifies and replays one segment file. first is the sequence
// number its first record must carry; final marks the last segment of the
// log, the only place where a torn tail is tolerated. It returns the byte
// offset just past the last good record (the truncation point for a torn
// tail), the sequence number of the last good record, and how many records
// were delivered.
//
// Defect classification: any malformed record that is the FINAL record of
// the FINAL segment — truncated line, short payload, header that does not
// parse, CRC or length mismatch, broken sequence number — is a torn tail: a
// crash mid-append explains it, so it is dropped with a warning. The same
// defect anywhere earlier cannot be a crash artifact (records after it made
// it to disk intact), so it fails loud.
func (l *Log) replaySegment(path string, first uint64, final bool, replay func(Entry) error) (goodEnd int64, lastGood uint64, n int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("wal: %w", err)
	}
	name := filepath.Base(path)
	want := first
	offset := int64(0)
	for len(data) > 0 {
		line := data
		nl := bytes.IndexByte(data, '\n')
		torn := false
		if nl < 0 {
			// No newline: the final line was truncated mid-write.
			torn = true
		} else {
			line = data[:nl]
		}
		isLast := torn || nl == len(data)-1
		entry, perr := parseFrame(line, want)
		if perr != nil || torn {
			if final && isLast {
				reason := "truncated"
				if perr != nil {
					reason = perr.Error()
				}
				l.log.Warn("wal: dropping torn tail record",
					"segment", name, "seq", want, "offset", offset, "reason", reason)
				l.stats.torn++
				inc(l.opts.Counters.TornTailDrops)
				return offset, want - 1, n, nil
			}
			reason := "truncated"
			if perr != nil {
				reason = perr.Error()
			}
			return 0, 0, 0, fmt.Errorf("wal: %s: corrupt record %d at offset %d before the final record: %s (not a torn tail — refusing to replay past it)",
				name, want, offset, reason)
		}
		if replay != nil {
			if rerr := replay(entry); rerr != nil {
				return 0, 0, 0, fmt.Errorf("wal: %s: replaying record %d: %w", name, entry.Seq, rerr)
			}
		}
		l.stats.replayed++
		inc(l.opts.Counters.Replayed)
		n++
		lastGood = want
		want++
		offset += int64(nl) + 1
		data = data[nl+1:]
	}
	return offset, lastGood, n, nil
}

// parseFrame decodes one framed line (without its trailing newline) and
// verifies sequence number, length and CRC.
func parseFrame(line []byte, wantSeq uint64) (Entry, error) {
	rest := line
	next := func() ([]byte, error) {
		i := bytes.IndexByte(rest, ' ')
		if i < 0 {
			return nil, fmt.Errorf("short frame header")
		}
		f := rest[:i]
		rest = rest[i+1:]
		return f, nil
	}
	seqF, err := next()
	if err != nil {
		return Entry{}, err
	}
	lenF, err := next()
	if err != nil {
		return Entry{}, err
	}
	crcF, err := next()
	if err != nil {
		return Entry{}, err
	}
	seq, err := strconv.ParseUint(string(seqF), 10, 64)
	if err != nil {
		return Entry{}, fmt.Errorf("bad sequence field %q", seqF)
	}
	if seq != wantSeq {
		return Entry{}, fmt.Errorf("sequence %d, want %d", seq, wantSeq)
	}
	plen, err := strconv.ParseInt(string(lenF), 10, 64)
	if err != nil || plen < 0 {
		return Entry{}, fmt.Errorf("bad length field %q", lenF)
	}
	if int64(len(rest)) != plen {
		return Entry{}, fmt.Errorf("payload is %d bytes, frame declares %d", len(rest), plen)
	}
	wantCRC, err := strconv.ParseUint(string(crcF), 16, 32)
	if err != nil {
		return Entry{}, fmt.Errorf("bad CRC field %q", crcF)
	}
	if got := crc32.ChecksumIEEE(rest); uint64(got) != wantCRC {
		return Entry{}, fmt.Errorf("CRC mismatch: payload %08x, frame %08x", got, wantCRC)
	}
	return Entry{Seq: seq, Payload: rest}, nil
}
