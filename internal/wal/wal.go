// Package wal is the durability layer of the serving stack: an append-only,
// length+CRC32-framed JSONL write-ahead log with segment rotation, a
// configurable fsync policy, and torn-tail tolerance on recovery.
//
// The log stores opaque single-line payloads (the serving daemon writes JSON
// documents) framed one per line as
//
//	<seq> <len> <crc32-hex> <payload>\n
//
// where seq is the record's monotonically increasing sequence number, len is
// the byte length of the payload, and crc32 is the IEEE CRC32 of the payload
// bytes in fixed-width hex. The frame keeps the file greppable (it is still
// one JSON document per line) while making every record independently
// verifiable: a torn final record — truncated mid-write by a crash, or with
// a flipped bit anywhere in its line — fails the length or CRC check and is
// dropped with a warning on replay, whereas corruption anywhere before the
// final record of the final segment fails loud, because it cannot be
// explained by a crash mid-append.
//
// Records are written across rotating segment files named
// wal-<first-seq>.log. Whole segments made redundant by a snapshot are
// removed with Prune. The fsync policy trades durability for throughput:
// "always" fsyncs every append (no acked record is ever lost), "interval"
// fsyncs dirty segments on a background ticker (bounded loss window), and
// "never" leaves flushing to the OS (crash-consistent but lossy). Writes
// always reach the kernel at append time regardless of policy — the policy
// only governs fsync(2).
package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// SyncPolicy selects when appended records are fsynced to disk.
type SyncPolicy string

const (
	// SyncAlways fsyncs after every append: an acked record is durable.
	SyncAlways SyncPolicy = "always"
	// SyncInterval fsyncs dirty segments on a background ticker
	// (Options.SyncInterval): crash loss is bounded by the interval.
	SyncInterval SyncPolicy = "interval"
	// SyncNever never fsyncs explicitly; the OS flushes when it pleases.
	SyncNever SyncPolicy = "never"
)

// ParseSyncPolicy maps the textual flag values onto a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case SyncAlways, SyncInterval, SyncNever:
		return SyncPolicy(s), nil
	case "":
		return SyncAlways, nil
	default:
		return "", fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
	}
}

// Counters are optional telemetry hooks; nil fields are simply not counted.
type Counters struct {
	// Appends counts records appended to the log.
	Appends *telemetry.Counter
	// Fsyncs counts fsync(2) calls issued by the log.
	Fsyncs *telemetry.Counter
	// Replayed counts durable records delivered during Open.
	Replayed *telemetry.Counter
	// TornTailDrops counts torn final records dropped during Open.
	TornTailDrops *telemetry.Counter
	// AppendSeconds observes the latency of each record append (framing and
	// the write(2), excluding any synchronous fsync).
	AppendSeconds *telemetry.Histogram
	// FsyncSeconds observes the latency of each fsync(2) issued by the log.
	FsyncSeconds *telemetry.Histogram
}

func inc(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

func observe(h *telemetry.Histogram, d time.Duration) {
	if h != nil {
		h.Observe(d.Seconds())
	}
}

// Options parameterizes Open.
type Options struct {
	// Dir is the segment directory; created if missing. Required.
	Dir string
	// SegmentBytes rotates to a new segment once the current one exceeds
	// this size. 0 means DefaultSegmentBytes.
	SegmentBytes int64
	// Sync is the fsync policy ("" means SyncAlways).
	Sync SyncPolicy
	// SyncInterval is the flush period under SyncInterval. 0 means
	// DefaultSyncInterval.
	SyncInterval time.Duration
	// Logger receives replay warnings (torn-tail drops). Nil discards.
	Logger *slog.Logger
	// Tracer records wal.append / wal.replay spans. Nil disables.
	Tracer *trace.Tracer
	// Counters are the telemetry hooks.
	Counters Counters
}

// Defaults for zero Options values.
const (
	DefaultSegmentBytes = 64 << 20
	DefaultSyncInterval = 100 * time.Millisecond
)

// Entry is one durable record delivered on replay.
type Entry struct {
	// Seq is the record's sequence number (1-based, dense).
	Seq uint64
	// Payload is the record body. The slice is owned by the callback for
	// the duration of the call only; copy it to retain it.
	Payload []byte
}

// Stats is a point-in-time snapshot of the log's lifetime counters.
type Stats struct {
	Appends       uint64 // records appended this process
	Fsyncs        uint64 // fsync(2) calls issued
	Replayed      uint64 // records replayed by Open
	TornTailDrops uint64 // torn final records dropped by Open
	Segments      int    // live segment files
	DiskBytes     int64  // total bytes across live segment files
	LastSeq       uint64 // sequence number of the newest durable record
}

// Log is an open write-ahead log positioned to append. Safe for concurrent
// use.
type Log struct {
	opts Options
	log  *slog.Logger

	mu        sync.Mutex
	f         *os.File // active segment
	size      int64    // active segment size
	diskBytes int64    // bytes across all live segments
	nextSeq   uint64
	dirty     bool
	closed    bool
	segments  []uint64 // first seq of every live segment, ascending
	buf       []byte   // frame scratch, reused across appends
	readers   map[*Reader]struct{}
	notify    chan struct{} // closed+replaced on append; see WaitFor

	stats struct {
		appends, fsyncs, replayed, torn uint64
	}

	stopSync chan struct{}
	syncDone chan struct{}
}

// Open replays every durable record in opts.Dir through replay (in sequence
// order), truncates any torn tail, and returns a Log positioned to append
// the next record. A nil replay skips delivery but still verifies the log.
// If replay returns an error, Open fails with it.
func Open(opts Options, replay func(Entry) error) (*Log, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.Sync == "" {
		opts.Sync = SyncAlways
	}
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = DefaultSyncInterval
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.DiscardHandler)
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{opts: opts, log: opts.Logger}

	firsts, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	sp := trace.StartUnder(opts.Tracer, trace.Span{}, "wal.replay")
	sp.Str("dir", opts.Dir)
	last := uint64(0) // seq of the last good record seen
	for i, first := range firsts {
		if i == 0 {
			// The oldest surviving segment sets the starting sequence:
			// snapshots prune whole earlier segments, so first need not be 1.
			last = first - 1
		} else if first != last+1 {
			sp.End()
			return nil, fmt.Errorf("wal: segment %s starts at seq %d, want %d (missing segment?)",
				segmentName(first), first, last+1)
		}
		final := i == len(firsts)-1
		goodEnd, lastGood, n, err := l.replaySegment(segmentPath(opts.Dir, first), first, final, replay)
		if err != nil {
			sp.End()
			return nil, err
		}
		if n > 0 {
			last = lastGood
		}
		if final {
			// Continue appending to the final segment, truncated past any
			// torn tail so new frames start on a clean boundary.
			f, err := os.OpenFile(segmentPath(opts.Dir, first), os.O_WRONLY, 0o644)
			if err != nil {
				sp.End()
				return nil, fmt.Errorf("wal: reopening final segment: %w", err)
			}
			if err := f.Truncate(goodEnd); err != nil {
				f.Close()
				sp.End()
				return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
			}
			if _, err := f.Seek(goodEnd, 0); err != nil {
				f.Close()
				sp.End()
				return nil, fmt.Errorf("wal: seeking final segment: %w", err)
			}
			l.f, l.size = f, goodEnd
		}
	}
	l.segments = firsts
	l.nextSeq = last + 1
	for _, first := range firsts {
		// Sized after the torn-tail truncate above, so the sum reflects the
		// durable on-disk footprint exactly.
		if fi, err := os.Stat(segmentPath(opts.Dir, first)); err == nil {
			l.diskBytes += fi.Size()
		}
	}
	sp.Int("replayed", int64(l.stats.replayed))
	sp.Int("torn_tail_drops", int64(l.stats.torn))
	sp.Int("next_seq", int64(l.nextSeq))
	sp.End()

	if l.f == nil {
		// Fresh log: create the first segment eagerly so the directory is
		// recognizably a WAL from the first moment.
		if err := l.rotateLocked(); err != nil {
			return nil, err
		}
	}
	if opts.Sync == SyncInterval {
		l.stopSync = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// Append frames payload as the next record, writes it to the active segment
// and applies the fsync policy. The payload must be a single line (no '\n');
// the daemon writes one JSON document per record. Returns the record's
// sequence number.
func (l *Log) Append(payload []byte) (uint64, error) {
	for _, b := range payload {
		if b == '\n' {
			return 0, errors.New("wal: payload must not contain newlines (one JSON document per record)")
		}
	}
	sp := trace.StartUnder(l.opts.Tracer, trace.Span{}, "wal.append")
	defer sp.End()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errors.New("wal: log is closed")
	}
	start := time.Now()
	seq := l.nextSeq
	l.buf = appendFrame(l.buf[:0], seq, payload)
	if _, err := l.f.Write(l.buf); err != nil {
		return 0, fmt.Errorf("wal: appending record %d: %w", seq, err)
	}
	l.size += int64(len(l.buf))
	l.diskBytes += int64(len(l.buf))
	l.nextSeq++
	l.dirty = true
	l.notifyLocked()
	l.stats.appends++
	inc(l.opts.Counters.Appends)
	observe(l.opts.Counters.AppendSeconds, time.Since(start))
	sp.Int("seq", int64(seq))
	sp.Int("bytes", int64(len(l.buf)))
	if l.opts.Sync == SyncAlways {
		if err := l.fsyncLocked(); err != nil {
			return 0, err
		}
	}
	if l.size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// Sync forces an fsync of the active segment, whatever the policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	return l.fsyncLocked()
}

// fsyncLocked fsyncs the active segment if dirty. Callers hold l.mu.
func (l *Log) fsyncLocked() error {
	if !l.dirty || l.f == nil {
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.dirty = false
	l.stats.fsyncs++
	inc(l.opts.Counters.Fsyncs)
	observe(l.opts.Counters.FsyncSeconds, time.Since(start))
	return nil
}

// rotateLocked fsyncs and closes the active segment (if any) and opens a new
// one starting at nextSeq. Callers hold l.mu.
func (l *Log) rotateLocked() error {
	if l.f != nil {
		if err := l.fsyncLocked(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: closing segment: %w", err)
		}
		l.f = nil
	}
	path := segmentPath(l.opts.Dir, l.nextSeq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	l.f, l.size = f, 0
	l.segments = append(l.segments, l.nextSeq)
	return nil
}

// Prune removes whole segments every record of which has sequence number
// <= seq (typically the WAL position of the latest snapshot). The active
// segment is never removed, and neither is a segment an open Reader has not
// fully consumed — a streaming follower pins its position, so pruning can
// never unlink a file out from under a tailing reader (the satellite race
// this contract closes). Returns the number of segments removed.
func (l *Log) Prune(seq uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	for len(l.segments) > 1 {
		// Segment 0 covers [segments[0], segments[1]-1].
		end := l.segments[1] - 1
		if end > seq {
			break
		}
		pinned := false
		for r := range l.readers {
			if r.pos.Load() <= end {
				pinned = true
				break
			}
		}
		if pinned {
			break
		}
		path := segmentPath(l.opts.Dir, l.segments[0])
		var pruned int64
		if fi, err := os.Stat(path); err == nil {
			pruned = fi.Size()
		}
		if err := os.Remove(path); err != nil {
			return removed, fmt.Errorf("wal: pruning %s: %w", filepath.Base(path), err)
		}
		l.diskBytes -= pruned
		l.segments = l.segments[1:]
		removed++
	}
	return removed, nil
}

// LastSeq returns the sequence number of the newest appended record (0 for
// an empty log).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Appends:       l.stats.appends,
		Fsyncs:        l.stats.fsyncs,
		Replayed:      l.stats.replayed,
		TornTailDrops: l.stats.torn,
		Segments:      len(l.segments),
		DiskBytes:     l.diskBytes,
		LastSeq:       l.nextSeq - 1,
	}
}

// Close flushes and closes the log. Further Appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.notifyLocked() // wake WaitFor waiters so streams observe the close
	stop, done := l.stopSync, l.syncDone
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if l.f != nil {
		if l.dirty {
			if serr := l.f.Sync(); serr == nil {
				l.stats.fsyncs++
				inc(l.opts.Counters.Fsyncs)
			} else {
				err = serr
			}
			l.dirty = false
		}
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	return err
}

// syncLoop is the background flusher for the interval policy.
func (l *Log) syncLoop() {
	defer close(l.syncDone)
	tick := time.NewTicker(l.opts.SyncInterval)
	defer tick.Stop()
	for {
		select {
		case <-l.stopSync:
			return
		case <-tick.C:
			l.mu.Lock()
			if !l.closed {
				if err := l.fsyncLocked(); err != nil {
					l.log.Error("wal: background fsync", "err", err)
				}
			}
			l.mu.Unlock()
		}
	}
}

// appendFrame appends the framed record to dst and returns it.
func appendFrame(dst []byte, seq uint64, payload []byte) []byte {
	dst = strconv.AppendUint(dst, seq, 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(len(payload)), 10)
	dst = append(dst, ' ')
	crc := crc32.ChecksumIEEE(payload)
	dst = append(dst, fmt.Sprintf("%08x", crc)...)
	dst = append(dst, ' ')
	dst = append(dst, payload...)
	dst = append(dst, '\n')
	return dst
}

// segmentName formats the file name of the segment whose first record is
// seq.
func segmentName(seq uint64) string { return fmt.Sprintf("wal-%020d.log", seq) }

func segmentPath(dir string, seq uint64) string { return filepath.Join(dir, segmentName(seq)) }

// listSegments returns the first-sequence numbers of every segment in dir,
// ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var firsts []uint64
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: unrecognized segment file %q", name)
		}
		firsts = append(firsts, n)
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
	return firsts, nil
}
