package wal

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// readAll drains a Reader up to the durable tail, returning the payloads.
func readAll(t *testing.T, r *Reader) [][]byte {
	t.Helper()
	var got [][]byte
	for {
		e, ok, err := r.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			return got
		}
		got = append(got, e.Payload)
	}
}

// TestReaderRoundTrip appends across several small segments and asserts a
// Reader delivers every record in order, including ones appended after the
// reader already drained to the tail.
func TestReaderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 128, Sync: SyncNever}, nil)
	defer l.Close()

	var want []string
	for i := 0; i < 50; i++ {
		p := fmt.Sprintf("record-%03d", i)
		if _, err := l.Append([]byte(p)); err != nil {
			t.Fatalf("Append: %v", err)
		}
		want = append(want, p)
	}

	r, err := l.NewReader(1)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	defer r.Close()
	got := readAll(t, r)
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}

	// The reader is at the tail; new appends become visible without reopening.
	if _, err := l.Append([]byte("after-tail")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	e, ok, err := r.Next()
	if err != nil || !ok {
		t.Fatalf("Next after tail append: ok=%v err=%v", ok, err)
	}
	if string(e.Payload) != "after-tail" || e.Seq != 51 {
		t.Fatalf("got seq %d payload %q, want 51 %q", e.Seq, e.Payload, "after-tail")
	}
	if _, ok, _ := r.Next(); ok {
		t.Fatalf("expected tail after draining")
	}
}

// TestReaderFromMidLog seeks a reader into the middle of a sealed segment.
func TestReaderFromMidLog(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 128, Sync: SyncNever}, nil)
	defer l.Close()
	for i := 1; i <= 40; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("r%03d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	r, err := l.NewReader(17)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	defer r.Close()
	got := readAll(t, r)
	if len(got) != 24 {
		t.Fatalf("read %d records from seq 17, want 24", len(got))
	}
	if string(got[0]) != "r017" || string(got[23]) != "r040" {
		t.Fatalf("got range %q..%q, want r017..r040", got[0], got[23])
	}
}

// TestPruneHeldBackByReader is the regression test for the prune-vs-reader
// race: a snapshot prune must not unlink a segment a streaming reader has
// not consumed yet. The pin is positional — once the reader advances past
// the segment, the same Prune succeeds.
func TestPruneHeldBackByReader(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 64, Sync: SyncNever}, nil)
	defer l.Close()
	for i := 1; i <= 30; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("payload-%03d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if got := l.Stats().Segments; got < 3 {
		t.Fatalf("got %d segments, want at least 3", got)
	}

	r, err := l.NewReader(1)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	defer r.Close()

	// Mid-stream: the reader is inside segment 1 (one record consumed).
	if _, ok, err := r.Next(); !ok || err != nil {
		t.Fatalf("Next: ok=%v err=%v", ok, err)
	}

	// A prune that would remove everything must leave every segment the
	// reader still needs.
	last := l.LastSeq()
	if _, err := l.Prune(last); err != nil {
		t.Fatalf("Prune: %v", err)
	}
	m := l.Manifest()
	if m.FirstSeq != 1 {
		t.Fatalf("prune removed pinned segment: first available seq %d, want 1", m.FirstSeq)
	}

	// The stream must finish cleanly over the pinned files.
	rest := readAll(t, r)
	if got := 1 + len(rest); got != 30 {
		t.Fatalf("stream delivered %d records across prune, want 30", got)
	}

	// With the reader past them (and then closed), the prune proceeds.
	if _, err := l.Prune(last); err != nil {
		t.Fatalf("Prune after drain: %v", err)
	}
	m = l.Manifest()
	if len(m.Segments) != 1 {
		t.Fatalf("got %d segments after unpinned prune, want 1 (active)", len(m.Segments))
	}
	if m.LastSeq != 30 {
		t.Fatalf("manifest last seq %d, want 30", m.LastSeq)
	}
}

// TestNewReaderPruned asserts the explicit re-bootstrap signal when asking
// for records that were pruned away.
func TestNewReaderPruned(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 64, Sync: SyncNever}, nil)
	defer l.Close()
	for i := 1; i <= 20; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("payload-%03d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if _, err := l.Prune(l.LastSeq()); err != nil {
		t.Fatalf("Prune: %v", err)
	}
	first := l.Manifest().FirstSeq
	if first <= 1 {
		t.Fatalf("prune left first seq %d, want > 1", first)
	}
	if _, err := l.NewReader(1); !errors.Is(err, ErrPruned) {
		t.Fatalf("NewReader(1) after prune: err = %v, want ErrPruned", err)
	}
	r, err := l.NewReader(first)
	if err != nil {
		t.Fatalf("NewReader(first available): %v", err)
	}
	r.Close()
	if _, err := l.NewReader(l.LastSeq() + 2); err == nil {
		t.Fatalf("NewReader past the tail+1 unexpectedly succeeded")
	}
}

// TestWaitFor exercises the long-poll primitive: already-durable sequence
// numbers return a closed channel, future ones block until the append.
func TestWaitFor(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, Sync: SyncNever}, nil)
	defer l.Close()
	if _, err := l.Append([]byte("one")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	select {
	case <-l.WaitFor(1):
	default:
		t.Fatalf("WaitFor(1) should be closed already")
	}
	ch := l.WaitFor(2)
	select {
	case <-ch:
		t.Fatalf("WaitFor(2) closed before the append")
	default:
	}
	done := make(chan struct{})
	go func() {
		<-ch
		close(done)
	}()
	if _, err := l.Append([]byte("two")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("WaitFor(2) not woken by the append")
	}
}

// TestFrameExports asserts AppendFrame/ParseFrame round-trip and reject
// tampering — the wire contract the replication stream relies on.
func TestFrameExports(t *testing.T) {
	frame := AppendFrame(nil, 7, []byte(`{"k":"v"}`))
	e, err := ParseFrame(frame[:len(frame)-1], 7)
	if err != nil {
		t.Fatalf("ParseFrame: %v", err)
	}
	if e.Seq != 7 || string(e.Payload) != `{"k":"v"}` {
		t.Fatalf("round-trip got seq %d payload %q", e.Seq, e.Payload)
	}
	if _, err := ParseFrame(frame[:len(frame)-1], 8); err == nil {
		t.Fatalf("ParseFrame accepted wrong expected seq")
	}
	bad := append([]byte(nil), frame[:len(frame)-1]...)
	bad[len(bad)-2] ^= 0x01
	if _, err := ParseFrame(bad, 7); err == nil {
		t.Fatalf("ParseFrame accepted a flipped payload bit")
	}
}
