package wal

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"sync/atomic"
)

// This file is the read side of the log used by replication (DESIGN.md §16):
// a point-in-time Manifest of the segment list, a pruning-aware sequential
// Reader over the durable records, and a WaitFor notification channel so a
// streaming server can long-poll the tail without spinning.

// ErrPruned reports that the requested sequence number precedes the oldest
// live segment: the records were removed by Prune and the caller must
// re-bootstrap from a snapshot instead of tailing the log.
var ErrPruned = errors.New("wal: sequence already pruned")

// SegmentInfo describes one live segment file.
type SegmentInfo struct {
	// FirstSeq is the sequence number of the segment's first record.
	FirstSeq uint64 `json:"first_seq"`
	// Bytes is the segment's durable size. For the active segment this is
	// the durable frame boundary, which may trail the file size by an
	// in-flight write.
	Bytes int64 `json:"bytes"`
}

// Manifest is a consistent point-in-time view of the log's segment list.
type Manifest struct {
	// FirstSeq is the oldest sequence number still readable (records before
	// it were pruned). 1 for a never-pruned log.
	FirstSeq uint64 `json:"first_seq"`
	// LastSeq is the newest durable sequence number (0 for an empty log).
	LastSeq uint64 `json:"last_seq"`
	// Segments lists every live segment, ascending by FirstSeq.
	Segments []SegmentInfo `json:"segments"`
}

// Manifest returns a consistent snapshot of the segment list. The copy is
// taken under the log's lock, so it can never show a half-pruned or
// half-rotated list, but it is immediately stale: a segment may be pruned
// right after. Readers that need the records, not just the shape, should
// open a Reader — open readers hold Prune back.
func (l *Log) Manifest() Manifest {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := Manifest{LastSeq: l.nextSeq - 1}
	if len(l.segments) > 0 {
		m.FirstSeq = l.segments[0]
	}
	m.Segments = make([]SegmentInfo, 0, len(l.segments))
	for i, first := range l.segments {
		info := SegmentInfo{FirstSeq: first}
		if i == len(l.segments)-1 {
			info.Bytes = l.size
		} else if fi, err := os.Stat(segmentPath(l.opts.Dir, first)); err == nil {
			info.Bytes = fi.Size()
		}
		m.Segments = append(m.Segments, info)
	}
	return m
}

// WaitFor returns a channel that is closed once a record with sequence
// number >= seq is durable in the log (already closed if one is), or when
// the log is closed. It is the long-poll primitive behind the streaming
// endpoint: wait on the channel instead of polling LastSeq.
func (l *Log) WaitFor(seq uint64) <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.nextSeq-1 >= seq {
		return closedChan
	}
	if l.notify == nil {
		l.notify = make(chan struct{})
	}
	return l.notify
}

// closedChan is returned by WaitFor when the condition already holds.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// notifyLocked wakes every WaitFor waiter. Callers hold l.mu.
func (l *Log) notifyLocked() {
	if l.notify != nil {
		close(l.notify)
		l.notify = nil
	}
}

// Reader iterates the durable records of the log in sequence order, across
// segment boundaries, re-verifying every frame's CRC. While a Reader is
// open, Prune will not remove any segment the Reader has not fully
// consumed — this is the documented contract that makes streaming and
// snapshot pruning safe to run concurrently (the reader pins its position;
// see TestPruneHeldBackByReader). A Reader is owned by one goroutine;
// multiple Readers may run concurrently with appends and prunes.
type Reader struct {
	l   *Log
	pos atomic.Uint64 // next seq to deliver; read by Prune to pin segments

	f        *os.File
	br       *bufio.Reader
	segFirst uint64 // first seq of the open segment
	off      int64  // consumed bytes within the open segment
	limit    int64  // durable byte bound of the open segment
	sealed   bool   // open segment is not the active one
	closed   bool
}

// NewReader positions a Reader at sequence number from (0 is treated as 1).
// Returns ErrPruned if from precedes the oldest live segment, and an error
// if from is beyond the durable tail plus one.
func (l *Log) NewReader(from uint64) (*Reader, error) {
	if from == 0 {
		from = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, errors.New("wal: log is closed")
	}
	if len(l.segments) > 0 && from < l.segments[0] {
		return nil, fmt.Errorf("%w: seq %d precedes oldest live segment %s — bootstrap from a snapshot",
			ErrPruned, from, segmentName(l.segments[0]))
	}
	if from > l.nextSeq {
		return nil, fmt.Errorf("wal: seq %d is beyond the log tail (next seq %d)", from, l.nextSeq)
	}
	r := &Reader{l: l}
	r.pos.Store(from)
	if l.readers == nil {
		l.readers = make(map[*Reader]struct{})
	}
	l.readers[r] = struct{}{}
	return r, nil
}

// Next returns the next durable record. ok is false when the reader has
// reached the durable tail — the caller decides whether to wait (WaitFor)
// and retry or to stop. The returned payload is freshly allocated and owned
// by the caller. A non-nil error means the log is corrupt or the reader's
// segment vanished; the reader is not usable afterwards.
func (r *Reader) Next() (e Entry, ok bool, err error) {
	if r.closed {
		return Entry{}, false, errors.New("wal: reader is closed")
	}
	for {
		if r.f == nil {
			opened, err := r.openSegment()
			if err != nil {
				return Entry{}, false, err
			}
			if !opened {
				return Entry{}, false, nil // at the durable tail
			}
		}
		if r.off >= r.limit {
			if r.sealed {
				// Fully consumed a sealed segment: advance to the next one.
				r.closeSegment()
				continue
			}
			// Active segment: refresh the durable bound (it grows with
			// appends, and the segment may have been sealed by rotation).
			if !r.refreshLimit() {
				return Entry{}, false, nil // still at the durable tail
			}
			continue
		}
		line, err := r.br.ReadBytes('\n')
		if err != nil {
			// Frames never straddle the durable bound (size advances in
			// whole frames under the log lock), so a read error inside the
			// bound is real corruption or a vanished file.
			return Entry{}, false, fmt.Errorf("wal: reading %s at offset %d: %w", segmentName(r.segFirst), r.off, err)
		}
		want := r.pos.Load()
		entry, perr := parseFrame(line[:len(line)-1], want)
		if perr != nil {
			return Entry{}, false, fmt.Errorf("wal: %s: corrupt record %d at offset %d: %s",
				segmentName(r.segFirst), want, r.off, perr)
		}
		r.off += int64(len(line))
		r.pos.Store(want + 1)
		return Entry{Seq: want, Payload: entry.Payload}, true, nil
	}
}

// openSegment opens the segment containing pos and skips to it. Returns
// false (no error) when pos is past the durable tail.
func (r *Reader) openSegment() (bool, error) {
	pos := r.pos.Load()
	l := r.l
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return false, errors.New("wal: log is closed")
	}
	if pos > l.nextSeq-1 {
		l.mu.Unlock()
		return false, nil
	}
	// Find the segment whose range contains pos. The reader's pin guarantees
	// it was not pruned.
	idx := -1
	for i, first := range l.segments {
		if first <= pos {
			idx = i
		}
	}
	if idx < 0 {
		l.mu.Unlock()
		return false, fmt.Errorf("wal: no live segment contains seq %d", pos)
	}
	first := l.segments[idx]
	sealed := idx < len(l.segments)-1
	limit := l.size // durable bound of the active segment
	dir := l.opts.Dir
	l.mu.Unlock()

	f, err := os.Open(segmentPath(dir, first))
	if err != nil {
		return false, fmt.Errorf("wal: opening segment: %w", err)
	}
	if sealed {
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return false, fmt.Errorf("wal: sizing segment: %w", err)
		}
		limit = fi.Size()
	}
	r.f, r.segFirst, r.off, r.limit, r.sealed = f, first, 0, limit, sealed
	if r.br == nil {
		r.br = bufio.NewReaderSize(f, 64<<10)
	} else {
		r.br.Reset(f)
	}
	// Skip whole frames up to pos.
	for skip := first; skip < pos; skip++ {
		line, err := r.br.ReadBytes('\n')
		if err != nil {
			r.closeSegment()
			return false, fmt.Errorf("wal: skipping to seq %d in %s: %w", pos, segmentName(first), err)
		}
		if _, perr := parseFrame(line[:len(line)-1], skip); perr != nil {
			r.closeSegment()
			return false, fmt.Errorf("wal: %s: corrupt record %d while seeking: %s", segmentName(first), skip, perr)
		}
		r.off += int64(len(line))
	}
	return true, nil
}

// refreshLimit re-reads the durable bound of the open (active) segment.
// Returns false when nothing new is readable.
func (r *Reader) refreshLimit() bool {
	l := r.l
	l.mu.Lock()
	active := len(l.segments) > 0 && l.segments[len(l.segments)-1] == r.segFirst
	size := l.size
	l.mu.Unlock()
	if active {
		if size > r.limit {
			r.limit = size
			return true
		}
		return false
	}
	// The segment was sealed by rotation behind us: its full size is now
	// the final bound.
	fi, err := r.f.Stat()
	if err != nil {
		return false
	}
	r.sealed = true
	if fi.Size() > r.limit {
		r.limit = fi.Size()
		return true
	}
	// Sealed with nothing left: advance on the next Next() pass.
	return true
}

// closeSegment closes the open segment file; the next Next() reopens at pos.
func (r *Reader) closeSegment() {
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
}

// Pos returns the next sequence number the reader will deliver — the seq to
// pass to WaitFor when Next reports the durable tail.
func (r *Reader) Pos() uint64 { return r.pos.Load() }

// Close releases the reader and its prune pin.
func (r *Reader) Close() {
	if r.closed {
		return
	}
	r.closed = true
	r.closeSegment()
	r.l.mu.Lock()
	delete(r.l.readers, r)
	r.l.mu.Unlock()
}

// AppendFrame appends the wire framing of one record — the exact
// "<seq> <len> <crc32-hex> <payload>\n" format the log files use — to dst
// and returns the extended slice. It is exported so the replication stream
// can ship verified frames byte-identical to the on-disk format.
func AppendFrame(dst []byte, seq uint64, payload []byte) []byte {
	return appendFrame(dst, seq, payload)
}

// ParseFrame decodes one framed line (without its trailing newline) and
// verifies sequence number, length and CRC — the follower-side counterpart
// of AppendFrame. The returned payload aliases line.
func ParseFrame(line []byte, wantSeq uint64) (Entry, error) {
	return parseFrame(line, wantSeq)
}
