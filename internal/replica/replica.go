// Package replica is the follower side of WAL-shipping replication
// (DESIGN.md §16): it bootstraps a scoring node from the leader's newest
// snapshot, tails the leader's write-ahead log over HTTP, CRC-verifies every
// frame against the exact on-disk wire format, and hands each record to a
// Target for replay through the same code paths a durable boot uses. The
// loop reconnects with exponential backoff on any transport error; the only
// unrecoverable condition is lost log continuity (the leader pruned past the
// follower's position), which is surfaced as ErrContinuityLost so the
// process can exit and re-bootstrap cleanly on restart.
package replica

import (
	"bufio"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/wal"
)

// ErrContinuityLost reports that the leader no longer has the records the
// follower needs: the stream position was pruned behind a snapshot the
// follower did not bootstrap from. In-place recovery would double-apply
// feedback, so the replicator stops; restarting the process re-bootstraps
// from the leader's newest snapshot.
var ErrContinuityLost = errors.New("replica: leader pruned past our position; restart to re-bootstrap")

// Target consumes the replicated state. Both methods are called from the
// replicator's single goroutine, Bootstrap exactly once and before any
// Apply. An error from either is fatal to the replication loop.
type Target interface {
	// Bootstrap installs the leader snapshot covering WAL records 1..seq.
	// seq 0 with nil files means the leader has no snapshot yet (fresh
	// leader); the target starts empty and every record arrives via Apply.
	Bootstrap(seq uint64, files map[string][]byte) error
	// Apply replays one WAL record. seq is dense: always the previously
	// applied sequence number plus one.
	Apply(seq uint64, payload []byte) error
}

// Config parameterizes New.
type Config struct {
	// LeaderURL is the leader's base URL (e.g. http://10.0.0.1:8080).
	// Required.
	LeaderURL string
	// Target receives the bootstrap snapshot and the replayed records.
	// Required.
	Target Target
	// Client performs the HTTP requests. Nil means a client without an
	// overall timeout (the stream request is long-lived by design;
	// per-request control fetches carry their own context deadlines).
	Client *http.Client
	// Logger receives connection lifecycle logs. Nil discards.
	Logger *slog.Logger
	// BackoffMin and BackoffMax bound the reconnect backoff (defaults
	// 100ms and 5s). The backoff resets whenever a connection makes
	// progress.
	BackoffMin, BackoffMax time.Duration
	// OnConnect is called after each successful manifest fetch with the
	// leader's last durable seq and snapshot seq. Optional.
	OnConnect func(leaderLastSeq, snapshotSeq uint64)
	// OnApplied is called after each applied record. Optional.
	OnApplied func(seq uint64)
	// OnReconnect is called before each backoff sleep with the error that
	// broke the connection. Optional.
	OnReconnect func(err error)
}

// Defaults for zero Config values.
const (
	DefaultBackoffMin = 100 * time.Millisecond
	DefaultBackoffMax = 5 * time.Second
)

// controlTimeout bounds the non-streaming control fetches (manifest,
// snapshot).
const controlTimeout = 30 * time.Second

// Manifest mirrors the leader's GET /v1/wal/segments document.
type Manifest struct {
	FirstSeq    uint64            `json:"first_seq"`
	LastSeq     uint64            `json:"last_seq"`
	SnapshotSeq uint64            `json:"snapshot_seq"`
	Segments    []wal.SegmentInfo `json:"segments"`
}

// snapshotDoc mirrors the leader's GET /v1/wal/snapshot document: the files
// of one snapshot directory, base64-encoded, fetched atomically in a single
// response so a concurrent snapshot rotation can never hand out a torn mix.
type snapshotDoc struct {
	Seq   uint64            `json:"seq"`
	Files map[string]string `json:"files"`
}

// Replicator drives the bootstrap-then-tail loop against one leader.
type Replicator struct {
	cfg     Config
	log     *slog.Logger
	applied uint64 // last seq handed to Target
	booted  bool
}

// New validates the configuration and returns a Replicator ready to Run.
func New(cfg Config) (*Replicator, error) {
	if cfg.LeaderURL == "" {
		return nil, errors.New("replica: Config.LeaderURL is required")
	}
	u, err := url.Parse(cfg.LeaderURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("replica: leader URL %q is not an absolute URL", cfg.LeaderURL)
	}
	if cfg.Target == nil {
		return nil, errors.New("replica: Config.Target is required")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = DefaultBackoffMin
	}
	if cfg.BackoffMax < cfg.BackoffMin {
		cfg.BackoffMax = DefaultBackoffMax
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	cfg.LeaderURL = strings.TrimRight(cfg.LeaderURL, "/")
	return &Replicator{cfg: cfg, log: cfg.Logger}, nil
}

// Applied returns the last sequence number handed to the Target.
func (r *Replicator) Applied() uint64 { return r.applied }

// Run blocks replicating from the leader until ctx is cancelled (returns
// nil) or an unrecoverable error occurs: ErrContinuityLost, or a Target
// rejection (corrupt or incompatible leader state). Transport errors are
// retried forever with capped exponential backoff.
func (r *Replicator) Run(ctx context.Context) error {
	backoff := r.cfg.BackoffMin
	for {
		progressed, err := r.connectOnce(ctx)
		if ctx.Err() != nil {
			return nil
		}
		if err == nil {
			// The stream ended cleanly (leader drained). Reconnect.
			err = errors.New("replica: stream closed by leader")
		}
		if errors.Is(err, ErrContinuityLost) || isFatal(err) {
			return err
		}
		if r.cfg.OnReconnect != nil {
			r.cfg.OnReconnect(err)
		}
		if progressed {
			backoff = r.cfg.BackoffMin
		}
		r.log.Info("replica: reconnecting", "leader", r.cfg.LeaderURL, "applied", r.applied, "backoff", backoff, "err", err)
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > r.cfg.BackoffMax {
			backoff = r.cfg.BackoffMax
		}
	}
}

// fatalError marks Target rejections: retrying cannot help.
type fatalError struct{ err error }

func (e fatalError) Error() string { return e.err.Error() }
func (e fatalError) Unwrap() error { return e.err }

func isFatal(err error) bool {
	var fe fatalError
	return errors.As(err, &fe)
}

// connectOnce performs one manifest → (bootstrap) → stream cycle. It
// returns progressed=true when at least one record was applied (or the
// bootstrap completed), so Run can reset the backoff.
func (r *Replicator) connectOnce(ctx context.Context) (progressed bool, err error) {
	man, err := r.fetchManifest(ctx)
	if err != nil {
		return false, err
	}
	if !r.booted {
		if err := r.bootstrap(ctx, man); err != nil {
			return false, err
		}
		progressed = true
	}
	if r.cfg.OnConnect != nil {
		r.cfg.OnConnect(man.LastSeq, man.SnapshotSeq)
	}
	streamed, err := r.stream(ctx)
	return progressed || streamed, err
}

// bootstrap installs the leader's newest snapshot (or an empty state when
// the leader has none) into the Target.
func (r *Replicator) bootstrap(ctx context.Context, man Manifest) error {
	var files map[string][]byte
	seq := man.SnapshotSeq
	if seq > 0 {
		doc, err := r.fetchSnapshot(ctx, seq)
		if err != nil {
			return err
		}
		files = make(map[string][]byte, len(doc.Files))
		for name, b64 := range doc.Files {
			data, err := base64.StdEncoding.DecodeString(b64)
			if err != nil {
				return fatalError{fmt.Errorf("replica: snapshot file %s: %w", name, err)}
			}
			files[name] = data
		}
		seq = doc.Seq
	}
	if err := r.cfg.Target.Bootstrap(seq, files); err != nil {
		return fatalError{fmt.Errorf("replica: bootstrap at seq %d rejected: %w", seq, err)}
	}
	r.applied = seq
	r.booted = true
	r.log.Info("replica: bootstrapped", "leader", r.cfg.LeaderURL, "snapshot_seq", seq, "leader_last_seq", man.LastSeq)
	return nil
}

// stream tails GET /v1/wal/stream from applied+1, verifying and applying
// every frame until the connection breaks.
func (r *Replicator) stream(ctx context.Context) (progressed bool, err error) {
	from := r.applied + 1
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/wal/stream?from=%d", r.cfg.LeaderURL, from), nil)
	if err != nil {
		return false, err
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		// The leader's stable signal that `from` was pruned (see the serve
		// handler): continuity is lost.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return false, fmt.Errorf("%w (stream from seq %d)", ErrContinuityLost, from)
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return false, fmt.Errorf("replica: stream from seq %d: %s: %s", from, resp.Status, strings.TrimSpace(string(body)))
	}

	br := bufio.NewReaderSize(resp.Body, 64<<10)
	want := from
	for {
		line, err := readLine(br)
		if err != nil {
			return progressed, err
		}
		entry, perr := wal.ParseFrame(line, want)
		if perr != nil {
			return progressed, fmt.Errorf("replica: corrupt frame for seq %d: %s", want, perr)
		}
		if err := r.cfg.Target.Apply(entry.Seq, entry.Payload); err != nil {
			return progressed, fatalError{fmt.Errorf("replica: applying record %d: %w", entry.Seq, err)}
		}
		r.applied = entry.Seq
		if r.cfg.OnApplied != nil {
			r.cfg.OnApplied(entry.Seq)
		}
		progressed = true
		want++
	}
}

// readLine reads one '\n'-terminated frame of any length, returned without
// the newline.
func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadBytes('\n')
	if err != nil {
		if len(line) > 0 && err == io.EOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return line[:len(line)-1], nil
}

// fetchManifest retrieves the leader's WAL manifest.
func (r *Replicator) fetchManifest(ctx context.Context) (Manifest, error) {
	var man Manifest
	if err := r.getJSON(ctx, "/v1/wal/segments", &man); err != nil {
		return Manifest{}, err
	}
	return man, nil
}

// fetchSnapshot retrieves the files of the leader snapshot at seq in one
// atomic response.
func (r *Replicator) fetchSnapshot(ctx context.Context, seq uint64) (snapshotDoc, error) {
	var doc snapshotDoc
	if err := r.getJSON(ctx, fmt.Sprintf("/v1/wal/snapshot?seq=%d", seq), &doc); err != nil {
		return snapshotDoc{}, err
	}
	if doc.Seq != seq {
		return snapshotDoc{}, fmt.Errorf("replica: snapshot seq %d, requested %d", doc.Seq, seq)
	}
	return doc, nil
}

// getJSON performs one deadline-bounded control GET against the leader.
func (r *Replicator) getJSON(ctx context.Context, path string, out any) error {
	ctx, cancel := context.WithTimeout(ctx, controlTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.cfg.LeaderURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("replica: GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
