// Package cluster groups fraudulent transactions into clusters of similar
// tuples and computes each cluster's representative tuple, as required by
// the first step of the rule generalization algorithm (Algorithm 1).
//
// Two algorithms are provided: a deterministic single-pass leader clusterer,
// and a one-pass streaming k-means in the style of Shindler, Wong and
// Meyerson (NIPS 2011), which the paper cites as its clustering component.
// Both operate on a normalized mixed numeric/categorical tuple distance.
package cluster

import (
	"math/rand"
	"sort"

	"repro/internal/ontology"
	"repro/internal/order"
	"repro/internal/relation"
	"repro/internal/rules"
)

// TupleDistance returns a normalized distance in [0, 1] between two tuples:
// the mean over attributes of per-attribute distances, where numeric
// attributes contribute |a−b| / |domain| and categorical attributes
// contribute the ontological up-distance from a's value to cover b's,
// normalized by the ontology's maximum depth.
func TupleDistance(s *relation.Schema, a, b relation.Tuple) float64 {
	if s.Arity() == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < s.Arity(); i++ {
		attr := s.Attr(i)
		if attr.Kind == relation.Categorical {
			d, _ := attr.Ontology.UpDistance(ontology.Concept(a[i]), ontology.Concept(b[i]))
			if md := attr.Ontology.MaxDepth(); md > 0 {
				sum += float64(d) / float64(md)
			}
			continue
		}
		diff := a[i] - b[i]
		if diff < 0 {
			diff = -diff
		}
		sum += float64(diff) / float64(attr.Domain.Size())
	}
	return sum / float64(s.Arity())
}

// Representative is the representative tuple f(C) of a cluster: for every
// attribute, the smallest interval (numeric) or least covering concept
// (categorical) containing all member values, together with the member
// transaction indices.
type Representative struct {
	Conds   []rules.Condition
	Members []int
}

// Algorithm groups the given transaction indices of a relation into
// clusters. Implementations must be deterministic for a fixed configuration.
type Algorithm interface {
	Cluster(rel *relation.Relation, indices []int) [][]int
}

// MakeRepresentative computes the representative tuple of the cluster
// formed by the given member indices.
func MakeRepresentative(rel *relation.Relation, members []int) Representative {
	s := rel.Schema()
	rep := Representative{
		Conds:   make([]rules.Condition, s.Arity()),
		Members: append([]int(nil), members...),
	}
	for i := 0; i < s.Arity(); i++ {
		a := s.Attr(i)
		if a.Kind == relation.Categorical {
			concepts := make([]ontology.Concept, len(members))
			for j, m := range members {
				concepts[j] = ontology.Concept(rel.Tuple(m)[i])
			}
			rep.Conds[i] = rules.ConceptCond(a.Ontology.LeastCover(concepts))
			continue
		}
		lo, hi := rel.Tuple(members[0])[i], rel.Tuple(members[0])[i]
		for _, m := range members[1:] {
			v := rel.Tuple(m)[i]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		rep.Conds[i] = rules.NumericCond(order.Interval{Lo: lo, Hi: hi})
	}
	return rep
}

// Representatives runs the algorithm over the indices and returns one
// representative per cluster, ordered by each cluster's first member.
func Representatives(alg Algorithm, rel *relation.Relation, indices []int) []Representative {
	clusters := alg.Cluster(rel, indices)
	sort.Slice(clusters, func(i, j int) bool { return clusters[i][0] < clusters[j][0] })
	out := make([]Representative, 0, len(clusters))
	for _, c := range clusters {
		out = append(out, MakeRepresentative(rel, c))
	}
	return out
}

// Leader is a deterministic single-pass clusterer: each tuple joins the
// first cluster whose leader (first member) it is close to in *every*
// attribute, otherwise it starts a new cluster. The per-attribute criterion
// matches the conjunctive rule semantics: a cluster is only useful for rule
// generalization if its representative is tight in each attribute.
type Leader struct {
	// NumericFrac is the per-attribute tolerance for numeric attributes as
	// a fraction of the domain size; 0 means DefaultNumericFrac.
	NumericFrac float64
	// ConceptHops is the maximum ontological up-distance between the leader
	// and member values of a categorical attribute; 0 means
	// DefaultConceptHops (so sibling leaves, e.g. Gas Stations A and B,
	// cluster together) and a negative value demands identical leaves
	// (the ontology-free clustering used by RUDOLF-s).
	ConceptHops int
	// AttrFrac overrides NumericFrac for specific attributes. Use a value
	// of 1 (the whole domain) for attributes that should never separate
	// clusters — e.g. the day index of a schema whose attack windows recur
	// daily, where the same pattern's frauds span many days.
	AttrFrac map[int]float64
}

// Defaults for Leader: numeric values within 2% of the domain (about half an
// hour for a time-of-day attribute) and categorical values at most one
// ontology hop apart.
const (
	DefaultNumericFrac = 0.02
	DefaultConceptHops = 1
)

// Cluster implements Algorithm.
func (l Leader) Cluster(rel *relation.Relation, indices []int) [][]int {
	frac := l.NumericFrac
	if frac <= 0 {
		frac = DefaultNumericFrac
	}
	hops := l.ConceptHops
	if hops == 0 {
		hops = DefaultConceptHops
	} else if hops < 0 {
		hops = 0
	}
	s := rel.Schema()
	var clusters [][]int
	var leaders []relation.Tuple
	for _, idx := range indices {
		t := rel.Tuple(idx)
		placed := false
		for ci, leader := range leaders {
			if l.close(s, leader, t, frac, hops) {
				clusters[ci] = append(clusters[ci], idx)
				placed = true
				break
			}
		}
		if !placed {
			clusters = append(clusters, []int{idx})
			leaders = append(leaders, t)
		}
	}
	return clusters
}

// close reports whether t is within the per-attribute tolerances of leader.
func (l Leader) close(s *relation.Schema, leader, t relation.Tuple, frac float64, hops int) bool {
	for i := 0; i < s.Arity(); i++ {
		a := s.Attr(i)
		if a.Kind == relation.Categorical {
			d, ok := a.Ontology.UpDistance(ontology.Concept(leader[i]), ontology.Concept(t[i]))
			if !ok || d > hops {
				return false
			}
			continue
		}
		f := frac
		if override, ok := l.AttrFrac[i]; ok {
			f = override
		}
		diff := leader[i] - t[i]
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > f*float64(a.Domain.Size()) {
			return false
		}
	}
	return true
}

// StreamingKMeans is a one-pass facility-location clusterer in the style of
// the fast streaming k-means the paper cites: points either join the nearest
// existing facility or open a new one with probability proportional to their
// distance; when too many facilities open, the facility cost doubles and
// facilities are re-clustered among themselves. A final pass assigns every
// point to its nearest surviving facility.
type StreamingKMeans struct {
	// K is the target number of clusters; 0 lets the algorithm choose
	// roughly sqrt(n).
	K int
	// Seed drives the probabilistic facility openings.
	Seed int64
}

// Cluster implements Algorithm.
func (km StreamingKMeans) Cluster(rel *relation.Relation, indices []int) [][]int {
	if len(indices) == 0 {
		return nil
	}
	s := rel.Schema()
	k := km.K
	if k <= 0 {
		k = isqrt(len(indices))
	}
	maxFacilities := 4 * k
	if maxFacilities < 8 {
		maxFacilities = 8
	}
	rng := rand.New(rand.NewSource(km.Seed + 1))
	f := 0.02 // initial facility cost
	var facilities []int
	for _, idx := range indices {
		t := rel.Tuple(idx)
		if len(facilities) == 0 {
			facilities = append(facilities, idx)
			continue
		}
		d := nearestDistance(s, rel, facilities, t)
		if d/f > rng.Float64() {
			facilities = append(facilities, idx)
		}
		if len(facilities) > maxFacilities {
			f *= 2
			facilities = mergeFacilities(s, rel, facilities, f, rng)
		}
	}
	// Final assignment of every point to its nearest facility.
	clusters := make([][]int, len(facilities))
	for _, idx := range indices {
		best, bestD := 0, TupleDistance(s, rel.Tuple(facilities[0]), rel.Tuple(idx))
		for fi := 1; fi < len(facilities); fi++ {
			if d := TupleDistance(s, rel.Tuple(facilities[fi]), rel.Tuple(idx)); d < bestD {
				best, bestD = fi, d
			}
		}
		clusters[best] = append(clusters[best], idx)
	}
	out := clusters[:0]
	for _, c := range clusters {
		if len(c) > 0 {
			out = append(out, c)
		}
	}
	return out
}

func nearestDistance(s *relation.Schema, rel *relation.Relation, facilities []int, t relation.Tuple) float64 {
	best := TupleDistance(s, rel.Tuple(facilities[0]), t)
	for _, f := range facilities[1:] {
		if d := TupleDistance(s, rel.Tuple(f), t); d < best {
			best = d
		}
	}
	return best
}

// mergeFacilities re-runs the facility opening rule over the facilities
// themselves at the increased cost, shrinking their number.
func mergeFacilities(s *relation.Schema, rel *relation.Relation, facilities []int, f float64, rng *rand.Rand) []int {
	merged := []int{facilities[0]}
	for _, idx := range facilities[1:] {
		d := nearestDistance(s, rel, merged, rel.Tuple(idx))
		if d/f > rng.Float64() {
			merged = append(merged, idx)
		}
	}
	return merged
}

func isqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}
