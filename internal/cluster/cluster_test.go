package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/ontology"
	"repro/internal/order"
	"repro/internal/paperdata"
	"repro/internal/relation"
	"repro/internal/rules"
)

func TestTupleDistanceBasics(t *testing.T) {
	s := paperdata.Schema()
	rel := paperdata.Transactions(s)
	// Distance to self is 0.
	if d := TupleDistance(s, rel.Tuple(0), rel.Tuple(0)); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	// Symmetric-ish: numeric part symmetric; categorical up-distance is
	// symmetric for sibling leaves.
	d01 := TupleDistance(s, rel.Tuple(0), rel.Tuple(1))
	d10 := TupleDistance(s, rel.Tuple(1), rel.Tuple(0))
	if d01 != d10 {
		t.Errorf("distance asymmetric for sibling tuples: %v vs %v", d01, d10)
	}
	// Tuples of the same attack burst are much closer than across bursts.
	dSame := TupleDistance(s, rel.Tuple(5), rel.Tuple(6))
	dAcross := TupleDistance(s, rel.Tuple(0), rel.Tuple(5))
	if dSame >= dAcross {
		t.Errorf("burst distance %v not below cross-pattern distance %v", dSame, dAcross)
	}
	if d01 < 0 || d01 > 1 {
		t.Errorf("distance outside [0,1]: %v", d01)
	}
}

// TestLeaderClustersPaperFrauds verifies that the Figure 2 frauds form the
// three clusters of Example 4.4: {t1,t2}, {t4}, {t6,t7,t8}.
func TestLeaderClustersPaperFrauds(t *testing.T) {
	s := paperdata.Schema()
	rel := paperdata.Transactions(s)
	frauds := rel.Indices(relation.Fraud)
	clusters := Leader{}.Cluster(rel, frauds)
	if len(clusters) != 3 {
		t.Fatalf("got %d clusters (%v), want 3", len(clusters), clusters)
	}
	want := [][]int{{0, 1}, {3}, {5, 6, 7}}
	for i, c := range clusters {
		if len(c) != len(want[i]) {
			t.Fatalf("cluster %d = %v, want %v", i, c, want[i])
		}
		for j := range c {
			if c[j] != want[i][j] {
				t.Fatalf("cluster %d = %v, want %v", i, c, want[i])
			}
		}
	}
}

// TestRepresentativesExample44 pins the representative tuples of Example 4.4.
func TestRepresentativesExample44(t *testing.T) {
	s := paperdata.Schema()
	rel := paperdata.Transactions(s)
	reps := Representatives(Leader{}, rel, rel.Indices(relation.Fraud))
	if len(reps) != 3 {
		t.Fatalf("got %d representatives, want 3", len(reps))
	}
	typeOnt, locOnt := s.Attr(2).Ontology, s.Attr(3).Ontology

	// First: Time [18:02,18:03], Amount [106,107], Online no CCV, Online Store.
	r := reps[0]
	if !r.Conds[0].Iv.Equal(order.Interval{Lo: 18*60 + 2, Hi: 18*60 + 3}) {
		t.Errorf("rep1 time = %v", r.Conds[0].Iv)
	}
	if !r.Conds[1].Iv.Equal(order.Interval{Lo: 106, Hi: 107}) {
		t.Errorf("rep1 amount = %v", r.Conds[1].Iv)
	}
	if typeOnt.ConceptName(r.Conds[2].C) != "Online, no CCV" {
		t.Errorf("rep1 type = %s", typeOnt.ConceptName(r.Conds[2].C))
	}
	if locOnt.ConceptName(r.Conds[3].C) != "Online Store" {
		t.Errorf("rep1 location = %s", locOnt.ConceptName(r.Conds[3].C))
	}
	// Second: the singleton 19:08 transaction.
	if !reps[1].Conds[0].Iv.Equal(order.Point(19*60 + 8)) {
		t.Errorf("rep2 time = %v", reps[1].Conds[0].Iv)
	}
	// Third: Time [20:53,20:55], Amount [44,48], Offline without PIN, Gas Station B.
	r = reps[2]
	if !r.Conds[0].Iv.Equal(order.Interval{Lo: 20*60 + 53, Hi: 20*60 + 55}) {
		t.Errorf("rep3 time = %v", r.Conds[0].Iv)
	}
	if !r.Conds[1].Iv.Equal(order.Interval{Lo: 44, Hi: 48}) {
		t.Errorf("rep3 amount = %v", r.Conds[1].Iv)
	}
	if locOnt.ConceptName(r.Conds[3].C) != "Gas Station B" {
		t.Errorf("rep3 location = %s", locOnt.ConceptName(r.Conds[3].C))
	}
}

// TestRepresentativeMixedLocationsGeneralizes checks that a cluster spanning
// Gas Stations A and B gets the concept "Gas Station" as its location.
func TestRepresentativeMixedLocationsGeneralizes(t *testing.T) {
	s := paperdata.Schema()
	rel := relation.New(s)
	locOnt := s.Attr(3).Ontology
	typeOnt := s.Attr(2).Ontology
	off := int64(typeOnt.MustLookup("Offline, without PIN"))
	rel.MustAppend(relation.Tuple{100, 50, off, int64(locOnt.MustLookup("Gas Station A"))}, relation.Fraud, 0)
	rel.MustAppend(relation.Tuple{101, 52, off, int64(locOnt.MustLookup("Gas Station B"))}, relation.Fraud, 0)
	rep := MakeRepresentative(rel, []int{0, 1})
	if locOnt.ConceptName(rep.Conds[3].C) != "Gas Station" {
		t.Errorf("location cover = %s, want Gas Station", locOnt.ConceptName(rep.Conds[3].C))
	}
}

// TestRepresentativeCapturesAllMembers is the defining property of a
// representative: a rule built from its conditions captures every member.
func TestRepresentativeCapturesAllMembers(t *testing.T) {
	s := paperdata.Schema()
	rel := randomRelation(s, 500, 3)
	rng := rand.New(rand.NewSource(5))
	all := make([]int, rel.Len())
	for i := range all {
		all[i] = i
	}
	for trial := 0; trial < 30; trial++ {
		k := 1 + rng.Intn(8)
		members := make([]int, 0, k)
		seen := map[int]bool{}
		for len(members) < k {
			m := rng.Intn(rel.Len())
			if !seen[m] {
				seen[m] = true
				members = append(members, m)
			}
		}
		rep := MakeRepresentative(rel, members)
		r := rules.RuleFromConditions(s, rep.Conds)
		for _, m := range members {
			if !r.Matches(s, rel.Tuple(m)) {
				t.Fatalf("trial %d: representative does not capture member %d", trial, m)
			}
		}
	}
	_ = all
}

// TestRepresentativeMinimality: shrinking any numeric bound of the
// representative loses a member.
func TestRepresentativeMinimality(t *testing.T) {
	s := paperdata.Schema()
	rel := paperdata.Transactions(s)
	rep := MakeRepresentative(rel, []int{5, 6, 7})
	for _, attr := range []int{0, 1} {
		iv := rep.Conds[attr].Iv
		if iv.Size() <= 1 {
			continue
		}
		shrunkLo := rules.RuleFromConditions(s, rep.Conds)
		shrunkLo.SetCond(attr, rules.NumericCond(order.Interval{Lo: iv.Lo + 1, Hi: iv.Hi}))
		shrunkHi := rules.RuleFromConditions(s, rep.Conds)
		shrunkHi.SetCond(attr, rules.NumericCond(order.Interval{Lo: iv.Lo, Hi: iv.Hi - 1}))
		okLo, okHi := true, true
		for _, m := range rep.Members {
			if !shrunkLo.Matches(s, rel.Tuple(m)) {
				okLo = false
			}
			if !shrunkHi.Matches(s, rel.Tuple(m)) {
				okHi = false
			}
		}
		if okLo || okHi {
			t.Errorf("attr %d: representative interval %v is not tight", attr, iv)
		}
	}
}

func randomRelation(s *relation.Schema, n int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	rel := relation.New(s)
	typeLeaves := s.Attr(2).Ontology.Leaves()
	locLeaves := s.Attr(3).Ontology.Leaves()
	for i := 0; i < n; i++ {
		rel.MustAppend(relation.Tuple{
			int64(rng.Intn(1440)),
			int64(rng.Intn(2000)),
			int64(typeLeaves[rng.Intn(len(typeLeaves))]),
			int64(locLeaves[rng.Intn(len(locLeaves))]),
		}, relation.Label(rng.Intn(3)), int16(rng.Intn(1001)))
	}
	return rel
}

// TestClusteringPartition: both algorithms produce a partition of the input
// indices (every index in exactly one cluster).
func TestClusteringPartition(t *testing.T) {
	s := paperdata.Schema()
	rel := randomRelation(s, 400, 9)
	indices := rel.Indices(relation.Fraud)
	for name, alg := range map[string]Algorithm{
		"leader":    Leader{NumericFrac: 0.05},
		"streaming": StreamingKMeans{K: 6, Seed: 1},
	} {
		clusters := alg.Cluster(rel, indices)
		seen := map[int]int{}
		total := 0
		for _, c := range clusters {
			if len(c) == 0 {
				t.Errorf("%s: empty cluster", name)
			}
			for _, i := range c {
				seen[i]++
				total++
			}
		}
		if total != len(indices) {
			t.Errorf("%s: clustered %d of %d indices", name, total, len(indices))
		}
		for i, n := range seen {
			if n != 1 {
				t.Errorf("%s: index %d appears %d times", name, i, n)
			}
		}
	}
}

func TestClusteringDeterminism(t *testing.T) {
	s := paperdata.Schema()
	rel := randomRelation(s, 300, 21)
	indices := rel.Indices(relation.Unlabeled)
	for name, alg := range map[string]Algorithm{
		"leader":    Leader{},
		"streaming": StreamingKMeans{K: 5, Seed: 77},
	} {
		a := alg.Cluster(rel, indices)
		b := alg.Cluster(rel, indices)
		if len(a) != len(b) {
			t.Errorf("%s: nondeterministic cluster count", name)
			continue
		}
		for i := range a {
			if len(a[i]) != len(b[i]) {
				t.Errorf("%s: nondeterministic cluster %d", name, i)
			}
		}
	}
}

func TestStreamingKMeansEmptyAndSingle(t *testing.T) {
	s := paperdata.Schema()
	rel := randomRelation(s, 10, 2)
	if got := (StreamingKMeans{}).Cluster(rel, nil); got != nil {
		t.Errorf("clustering nothing = %v", got)
	}
	got := (StreamingKMeans{K: 3, Seed: 1}).Cluster(rel, []int{4})
	if len(got) != 1 || len(got[0]) != 1 || got[0][0] != 4 {
		t.Errorf("singleton clustering = %v", got)
	}
}

func TestStreamingKMeansRespectsTargetRoughly(t *testing.T) {
	s := paperdata.Schema()
	rel := randomRelation(s, 600, 31)
	indices := make([]int, rel.Len())
	for i := range indices {
		indices[i] = i
	}
	clusters := (StreamingKMeans{K: 5, Seed: 3}).Cluster(rel, indices)
	if len(clusters) == 0 || len(clusters) > 4*5 {
		t.Errorf("cluster count %d far from target 5", len(clusters))
	}
}

func TestLeaderZeroValueUsesDefaults(t *testing.T) {
	s := paperdata.Schema()
	rel := paperdata.Transactions(s)
	frauds := rel.Indices(relation.Fraud)
	a := Leader{}.Cluster(rel, frauds)
	b := Leader{NumericFrac: DefaultNumericFrac, ConceptHops: DefaultConceptHops}.Cluster(rel, frauds)
	if len(a) != len(b) {
		t.Error("zero-value Leader does not use the documented defaults")
	}
}

func TestTupleDistanceCategoricalComponent(t *testing.T) {
	// Single categorical attribute: distance equals normalized up-distance.
	onto := ontology.PaperTypeOntology()
	s := relation.MustSchema(relation.Attribute{Name: "type", Kind: relation.Categorical, Ontology: onto})
	rel := relation.New(s)
	a := rel.MustAppend(relation.Tuple{int64(onto.MustLookup("Online, with CCV"))}, relation.Unlabeled, 0)
	b := rel.MustAppend(relation.Tuple{int64(onto.MustLookup("Offline, with PIN"))}, relation.Unlabeled, 0)
	got := TupleDistance(s, rel.Tuple(a), rel.Tuple(b))
	want := 1.0 / float64(onto.MaxDepth())
	if got != want {
		t.Errorf("distance = %v, want %v", got, want)
	}
}
