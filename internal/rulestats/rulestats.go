// Package rulestats tracks per-rule health for the serving layer: which
// rules fire on live traffic, how often, how recently, how their fire rate
// drifts away from the rate observed right after they were published, and —
// by joining analyst feedback labels against recorded fire attributions —
// rough true-positive / false-positive estimates per rule. ARMS (Aparício et
// al., 2020) argues production fraud-rule stacks live or die by exactly this
// per-rule monitoring: a rule that stopped firing is dead weight, a rule
// whose fire rate doubled is drifting with the traffic, and a rule that only
// fires on legitimate transactions is burning analyst review budget.
//
// Concurrency model: the scoring hot path only touches per-rule atomics
// (fire counters, last-fired timestamps) and one shared transaction counter
// — no locks, no allocation. The tracker's epoch (one per published rule-set
// version) hangs off an atomic pointer; Reset swaps in a fresh epoch, so a
// publish never blocks in-flight scoring accounting and counters can never
// be attributed to the wrong version. EWMA drift state is folded in lazily,
// under a small mutex, only when a Snapshot is taken (the health endpoint or
// a metrics scrape) — the hot path never pays for it. The decision audit
// ring is bounded and mutex-guarded; only sampled decisions reach it.
package rulestats

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes a Tracker. The zero value is valid: every field has
// a serving-grade default.
type Config struct {
	// HalfLife is the half-life of the fire-rate EWMA behind the drift
	// score: observations this old carry half the weight of fresh ones.
	// 0 means DefaultHalfLife.
	HalfLife time.Duration
	// BaselineMinTx is the number of scored transactions after which the
	// epoch's baseline fire shares freeze (the denominator of the drift
	// score). 0 means DefaultBaselineMinTx.
	BaselineMinTx uint64
	// AuditCapacity bounds the decision audit ring. 0 means
	// DefaultAuditCapacity; negative disables the ring.
	AuditCapacity int
	// SampleEvery admits every n-th scored transaction into the audit ring
	// (deterministic systematic sampling — cheap and uniform under steady
	// load). 0 means DefaultSampleEvery; negative disables sampling.
	SampleEvery int
	// Now injects a clock for tests; nil means time.Now.
	Now func() time.Time
}

// Defaults for the zero Config values.
const (
	DefaultHalfLife      = time.Minute
	DefaultBaselineMinTx = 256
	DefaultAuditCapacity = 1024
	DefaultSampleEvery   = 100
)

func (cfg Config) withDefaults() Config {
	if cfg.HalfLife <= 0 {
		cfg.HalfLife = DefaultHalfLife
	}
	if cfg.BaselineMinTx == 0 {
		cfg.BaselineMinTx = DefaultBaselineMinTx
	}
	if cfg.AuditCapacity == 0 {
		cfg.AuditCapacity = DefaultAuditCapacity
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = DefaultSampleEvery
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return cfg
}

// ruleCell is the hot-path accounting of one rule within one epoch. All
// fields are atomics: scoring workers update them concurrently.
type ruleCell struct {
	fires     atomic.Uint64 // first-match fires on scored traffic
	tp        atomic.Uint64 // fired on feedback labeled fraud
	fp        atomic.Uint64 // fired on feedback labeled legitimate
	lastFired atomic.Int64  // unix nanos; 0 = never in this epoch
}

// epoch is the per-published-version accounting generation. Swapped
// wholesale on Reset so counters are always attributable to exactly one
// rule-set version.
type epoch struct {
	version int
	created time.Time
	cells   []ruleCell
	totalTx atomic.Uint64 // transactions scored in this epoch

	// Drift state, folded in lazily under mu by Snapshot: a frozen baseline
	// fire share per rule plus a time-decayed EWMA of the recent share.
	mu           sync.Mutex
	baseline     []float64 // per-rule fire share; nil until frozen
	baselineTx   uint64
	ewma         []float64 // per-rule EWMA fire share
	ewmaOK       []bool    // whether ewma[i] has been seeded
	lastFoldTime time.Time
	lastFires    []uint64 // fires at the last fold
	lastTotal    uint64   // totalTx at the last fold
}

// Tracker is the serving daemon's rule-health accountant. Create with New,
// Reset on every rule publish, feed it from the scoring and feedback paths,
// and read it with Snapshot / AuditEntries.
type Tracker struct {
	cfg Config
	ep  atomic.Pointer[epoch]

	// Audit ring: bounded, sampled, survives Reset (entries carry the
	// version they were scored under — it is an audit log, not a gauge).
	auditMu  sync.Mutex
	audit    []AuditEntry
	auditPos int
	auditLen int
	auditSeq atomic.Uint64
	scoreSeq atomic.Uint64 // systematic-sampling counter
}

// New returns a Tracker with no rules; call Reset to install the first
// published version.
func New(cfg Config) *Tracker {
	t := &Tracker{cfg: cfg.withDefaults()}
	if t.cfg.AuditCapacity > 0 {
		t.audit = make([]AuditEntry, t.cfg.AuditCapacity)
	}
	t.Reset(0, 0)
	return t
}

// Reset installs a fresh accounting epoch for a newly published rule-set
// version with ruleCount rules: fire counts, FP/TP estimates, baselines and
// EWMAs all restart from zero, so health is always relative to the rules
// actually serving. The audit ring is deliberately kept — it is a log of
// past decisions, each tagged with its version.
func (t *Tracker) Reset(version, ruleCount int) {
	ep := &epoch{
		version:      version,
		created:      t.cfg.Now(),
		cells:        make([]ruleCell, ruleCount),
		lastFires:    make([]uint64, ruleCount),
		ewma:         make([]float64, ruleCount),
		ewmaOK:       make([]bool, ruleCount),
		lastFoldTime: t.cfg.Now(),
	}
	t.ep.Store(ep)
}

// Version returns the rule-set version the current epoch accounts for.
func (t *Tracker) Version() int { return t.ep.Load().version }

// RecordFires ingests one scored batch's first-match attribution (the
// []int32 produced by index.Evaluator.EvalFirst; NoRule entries count as
// unmatched traffic). Safe for concurrent use; the cost is one atomic add
// per fired tuple plus one per batch.
func (t *Tracker) RecordFires(first []int32) {
	ep := t.ep.Load()
	ep.totalTx.Add(uint64(len(first)))
	now := t.cfg.Now().UnixNano()
	for _, ri := range first {
		if ri < 0 || int(ri) >= len(ep.cells) {
			continue
		}
		c := &ep.cells[ri]
		c.fires.Add(1)
		c.lastFired.Store(now)
	}
}

// RecordFeedback joins one labeled feedback transaction against the rules
// that capture it: a fraud label counts a true positive for every capturing
// rule, a legitimate label a false positive. Unlabeled feedback (fraud
// unknown) is ignored.
func (t *Tracker) RecordFeedback(fraud, legit bool, capturing []int) {
	if !fraud && !legit {
		return
	}
	ep := t.ep.Load()
	for _, ri := range capturing {
		if ri < 0 || ri >= len(ep.cells) {
			continue
		}
		if fraud {
			ep.cells[ri].tp.Add(1)
		} else {
			ep.cells[ri].fp.Add(1)
		}
	}
}

// RuleHealth is one rule's health snapshot within the current epoch.
type RuleHealth struct {
	// Rule is the rule's index in the published set.
	Rule int `json:"rule"`
	// Fires is the number of scored transactions whose first matching rule
	// this was, since the version was published.
	Fires uint64 `json:"fires"`
	// Share is Fires / total scored transactions (0 with no traffic).
	Share float64 `json:"share"`
	// TP and FP are the feedback-derived estimates: capturing rules of
	// fraud-labeled (TP) and legit-labeled (FP) feedback transactions.
	TP uint64 `json:"tp"`
	FP uint64 `json:"fp"`
	// Precision is TP / (TP+FP), or -1 with no labeled evidence.
	Precision float64 `json:"precision"`
	// LastFiredAgo is the seconds since the rule last fired, or -1 when it
	// has not fired in this epoch (the staleness signal).
	LastFiredAgo float64 `json:"last_fired_ago_seconds"`
	// BaselineShare is the fire share frozen after Config.BaselineMinTx
	// scored transactions, or -1 while the baseline is still forming.
	BaselineShare float64 `json:"baseline_share"`
	// EWMAShare is the time-decayed recent fire share (half-life
	// Config.HalfLife), or -1 before any fold.
	EWMAShare float64 `json:"ewma_share"`
	// Drift is |EWMAShare − BaselineShare| / max(BaselineShare, 1/BaselineMinTx):
	// 0 means the rule fires like it did at publish; 1 means the rate moved
	// by its whole baseline. -1 until both the baseline and the EWMA exist.
	Drift float64 `json:"drift"`
}

// Snapshot is the tracker's full health readout, consistent with exactly
// one epoch (and therefore one published version).
type Snapshot struct {
	Version  int          `json:"version"`
	TotalTx  uint64       `json:"total_scored"`
	AgeSecs  float64      `json:"epoch_age_seconds"`
	Baseline bool         `json:"baseline_frozen"`
	Rules    []RuleHealth `json:"rules"`
}

// Snapshot folds the pending fire counts into the drift EWMAs (freezing the
// baseline once enough traffic has been seen) and returns the per-rule
// health. It locks only the epoch's fold mutex — scoring is never blocked.
func (t *Tracker) Snapshot() Snapshot {
	ep := t.ep.Load()
	now := t.cfg.Now()
	total := ep.totalTx.Load()
	fires := make([]uint64, len(ep.cells))
	for i := range ep.cells {
		fires[i] = ep.cells[i].fires.Load()
	}

	ep.mu.Lock()
	// Freeze the baseline the first time enough traffic has accumulated.
	if ep.baseline == nil && total >= t.cfg.BaselineMinTx {
		ep.baseline = make([]float64, len(fires))
		for i, f := range fires {
			ep.baseline[i] = float64(f) / float64(total)
		}
		ep.baselineTx = total
	}
	// Fold the window since the last snapshot into the EWMA. The decay
	// factor is computed from wall-clock elapsed against the half-life, so
	// the EWMA is poll-frequency independent.
	if dTx := total - ep.lastTotal; dTx > 0 {
		dt := now.Sub(ep.lastFoldTime)
		if dt <= 0 {
			dt = time.Nanosecond
		}
		alpha := 1 - math.Exp2(-float64(dt)/float64(t.cfg.HalfLife))
		for i := range fires {
			share := float64(fires[i]-ep.lastFires[i]) / float64(dTx)
			if !ep.ewmaOK[i] {
				ep.ewma[i] = share
				ep.ewmaOK[i] = true
				continue
			}
			ep.ewma[i] += alpha * (share - ep.ewma[i])
		}
		copy(ep.lastFires, fires)
		ep.lastTotal = total
		ep.lastFoldTime = now
	}
	baseline := ep.baseline
	ewma := append([]float64(nil), ep.ewma...)
	ewmaOK := append([]bool(nil), ep.ewmaOK...)
	ep.mu.Unlock()

	out := Snapshot{
		Version:  ep.version,
		TotalTx:  total,
		AgeSecs:  now.Sub(ep.created).Seconds(),
		Baseline: baseline != nil,
		Rules:    make([]RuleHealth, len(fires)),
	}
	floor := 1 / float64(t.cfg.BaselineMinTx)
	for i := range fires {
		h := RuleHealth{
			Rule:          i,
			Fires:         fires[i],
			TP:            ep.cells[i].tp.Load(),
			FP:            ep.cells[i].fp.Load(),
			Precision:     -1,
			LastFiredAgo:  -1,
			BaselineShare: -1,
			EWMAShare:     -1,
			Drift:         -1,
		}
		if total > 0 {
			h.Share = float64(fires[i]) / float64(total)
		}
		if n := h.TP + h.FP; n > 0 {
			h.Precision = float64(h.TP) / float64(n)
		}
		if last := ep.cells[i].lastFired.Load(); last > 0 {
			h.LastFiredAgo = now.Sub(time.Unix(0, last)).Seconds()
			if h.LastFiredAgo < 0 {
				h.LastFiredAgo = 0
			}
		}
		if ewmaOK[i] {
			h.EWMAShare = ewma[i]
		}
		if baseline != nil {
			h.BaselineShare = baseline[i]
			if ewmaOK[i] {
				denom := baseline[i]
				if denom < floor {
					denom = floor
				}
				h.Drift = math.Abs(ewma[i]-baseline[i]) / denom
			}
		}
		out.Rules[i] = h
	}
	return out
}

// AuditEntry is one sampled scoring decision retained in the bounded audit
// ring: enough to reconstruct "what did we decide, under which rules, and
// why" without retaining the full traffic stream.
type AuditEntry struct {
	// Seq is a monotonically increasing id across the daemon's lifetime.
	Seq uint64 `json:"seq"`
	// Time is the scoring wall-clock time.
	Time time.Time `json:"time"`
	// RequestID is the serving request the decision belonged to.
	RequestID string `json:"request_id,omitempty"`
	// Version is the rule-set version that made the decision.
	Version int `json:"version"`
	// Rule is the first matching rule index, or -1 when nothing matched.
	Rule int `json:"rule"`
	// Flagged reports the decision.
	Flagged bool `json:"flagged"`
	// Score is the transaction's risk score.
	Score int16 `json:"score"`
	// Attrs is the transaction rendered attribute-by-attribute in the
	// schema's textual form.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// ShouldSample reports whether the next scored transaction should be
// recorded into the audit ring (systematic 1-in-SampleEvery sampling; one
// atomic add per call).
func (t *Tracker) ShouldSample() bool {
	if t.cfg.SampleEvery < 0 || t.cfg.AuditCapacity < 0 {
		return false
	}
	return t.scoreSeq.Add(1)%uint64(t.cfg.SampleEvery) == 0
}

// AddAudit appends one decision to the audit ring, stamping its sequence
// number and time (and version, when the caller left it zero, from the
// current epoch).
func (t *Tracker) AddAudit(e AuditEntry) {
	if t.audit == nil {
		return
	}
	e.Seq = t.auditSeq.Add(1)
	if e.Time.IsZero() {
		e.Time = t.cfg.Now()
	}
	if e.Version == 0 {
		e.Version = t.ep.Load().version
	}
	t.auditMu.Lock()
	t.audit[t.auditPos] = e
	t.auditPos = (t.auditPos + 1) % len(t.audit)
	if t.auditLen < len(t.audit) {
		t.auditLen++
	}
	t.auditMu.Unlock()
}

// AuditEntries returns up to n of the most recent audit entries, newest
// first (n <= 0 means all retained entries).
func (t *Tracker) AuditEntries(n int) []AuditEntry {
	t.auditMu.Lock()
	defer t.auditMu.Unlock()
	if n <= 0 || n > t.auditLen {
		n = t.auditLen
	}
	out := make([]AuditEntry, 0, n)
	for i := 0; i < n; i++ {
		pos := (t.auditPos - 1 - i + 2*len(t.audit)) % len(t.audit)
		out = append(out, t.audit[pos])
	}
	return out
}

// AuditLen returns the number of retained audit entries.
func (t *Tracker) AuditLen() int {
	t.auditMu.Lock()
	defer t.auditMu.Unlock()
	return t.auditLen
}
