package rulestats

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable test clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestTracker(cfg Config) (*Tracker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	cfg.Now = clk.Now
	return New(cfg), clk
}

func TestFireCountsAndShares(t *testing.T) {
	tr, _ := newTestTracker(Config{BaselineMinTx: 8})
	tr.Reset(3, 2)
	// 10 tx: rule 0 fires 6 times, rule 1 twice, 2 unmatched.
	tr.RecordFires([]int32{0, 0, 0, 1, -1, 0, 0, 1, -1, 0})
	s := tr.Snapshot()
	if s.Version != 3 || s.TotalTx != 10 {
		t.Fatalf("snapshot version=%d total=%d, want 3/10", s.Version, s.TotalTx)
	}
	if s.Rules[0].Fires != 6 || s.Rules[1].Fires != 2 {
		t.Fatalf("fires = %d/%d, want 6/2", s.Rules[0].Fires, s.Rules[1].Fires)
	}
	if s.Rules[0].Share != 0.6 || s.Rules[1].Share != 0.2 {
		t.Fatalf("shares = %v/%v, want 0.6/0.2", s.Rules[0].Share, s.Rules[1].Share)
	}
	if !s.Baseline {
		t.Fatalf("baseline should freeze at %d tx", 8)
	}
	if s.Rules[0].BaselineShare != 0.6 {
		t.Fatalf("baseline share = %v, want 0.6", s.Rules[0].BaselineShare)
	}
	// Out-of-range and NoRule indices are ignored, not panics.
	tr.RecordFires([]int32{99, -1, -7})
	if got := tr.Snapshot().TotalTx; got != 13 {
		t.Fatalf("total = %d, want 13", got)
	}
}

func TestFeedbackJoin(t *testing.T) {
	tr, _ := newTestTracker(Config{})
	tr.Reset(1, 3)
	tr.RecordFeedback(true, false, []int{0, 2})  // fraud captured by rules 0, 2
	tr.RecordFeedback(false, true, []int{0})     // legit captured by rule 0
	tr.RecordFeedback(false, false, []int{0, 1}) // unlabeled: ignored
	tr.RecordFeedback(true, false, nil)          // fraud nothing captured
	s := tr.Snapshot()
	if s.Rules[0].TP != 1 || s.Rules[0].FP != 1 {
		t.Fatalf("rule 0 tp/fp = %d/%d, want 1/1", s.Rules[0].TP, s.Rules[0].FP)
	}
	if s.Rules[0].Precision != 0.5 {
		t.Fatalf("rule 0 precision = %v, want 0.5", s.Rules[0].Precision)
	}
	if s.Rules[1].TP != 0 || s.Rules[1].FP != 0 || s.Rules[1].Precision != -1 {
		t.Fatalf("rule 1 should have no labeled evidence: %+v", s.Rules[1])
	}
	if s.Rules[2].TP != 1 || s.Rules[2].Precision != 1 {
		t.Fatalf("rule 2 tp=%d precision=%v, want 1/1", s.Rules[2].TP, s.Rules[2].Precision)
	}
}

func TestStalenessClock(t *testing.T) {
	tr, clk := newTestTracker(Config{})
	tr.Reset(1, 2)
	tr.RecordFires([]int32{0})
	clk.Advance(90 * time.Second)
	s := tr.Snapshot()
	if got := s.Rules[0].LastFiredAgo; got != 90 {
		t.Fatalf("rule 0 last fired ago = %v, want 90", got)
	}
	if got := s.Rules[1].LastFiredAgo; got != -1 {
		t.Fatalf("rule 1 (never fired) last fired ago = %v, want -1", got)
	}
}

func TestDriftDetectsRateChange(t *testing.T) {
	tr, clk := newTestTracker(Config{BaselineMinTx: 100, HalfLife: time.Minute})
	tr.Reset(1, 2)
	// Phase 1: rule 0 fires on 50% of traffic; freeze the baseline.
	batch := make([]int32, 100)
	for i := range batch {
		if i%2 == 0 {
			batch[i] = 0
		} else {
			batch[i] = NoRuleIdx
		}
	}
	tr.RecordFires(batch)
	s := tr.Snapshot()
	if !s.Baseline || s.Rules[0].BaselineShare != 0.5 {
		t.Fatalf("baseline = %v share %v, want frozen at 0.5", s.Baseline, s.Rules[0].BaselineShare)
	}
	if s.Rules[0].Drift > 0.01 {
		t.Fatalf("drift right after baseline = %v, want ~0", s.Rules[0].Drift)
	}
	// Phase 2: the rule goes silent for many half-lives; the EWMA must
	// collapse toward 0 and the drift toward |0-0.5|/0.5 = 1.
	for i := 0; i < 20; i++ {
		clk.Advance(time.Minute)
		silent := make([]int32, 100)
		for j := range silent {
			silent[j] = NoRuleIdx
		}
		tr.RecordFires(silent)
		tr.Snapshot() // fold
	}
	s = tr.Snapshot()
	if s.Rules[0].Drift < 0.9 {
		t.Fatalf("drift after the rule went silent = %v, want > 0.9", s.Rules[0].Drift)
	}
	// Rule 1 never fired: baseline 0, EWMA 0, drift 0 (not NaN/Inf).
	if d := s.Rules[1].Drift; d != 0 {
		t.Fatalf("drift of a never-firing rule = %v, want 0", d)
	}
}

func TestResetIsVersionAware(t *testing.T) {
	tr, _ := newTestTracker(Config{})
	tr.Reset(1, 1)
	tr.RecordFires([]int32{0, 0, 0})
	tr.RecordFeedback(true, false, []int{0})
	tr.Reset(2, 2)
	s := tr.Snapshot()
	if s.Version != 2 || len(s.Rules) != 2 {
		t.Fatalf("after reset: version %d rules %d, want 2/2", s.Version, len(s.Rules))
	}
	if s.TotalTx != 0 || s.Rules[0].Fires != 0 || s.Rules[0].TP != 0 {
		t.Fatalf("counters must reset on publish: %+v", s)
	}
}

func TestAuditRingBoundedNewestFirst(t *testing.T) {
	tr, _ := newTestTracker(Config{AuditCapacity: 4, SampleEvery: 1})
	tr.Reset(7, 1)
	for i := 0; i < 10; i++ {
		if !tr.ShouldSample() {
			t.Fatalf("SampleEvery=1 must sample every decision")
		}
		tr.AddAudit(AuditEntry{Rule: i, Flagged: true})
	}
	if tr.AuditLen() != 4 {
		t.Fatalf("audit len = %d, want capacity 4", tr.AuditLen())
	}
	got := tr.AuditEntries(0)
	if len(got) != 4 {
		t.Fatalf("entries = %d, want 4", len(got))
	}
	for i, e := range got {
		if want := 9 - i; e.Rule != want {
			t.Fatalf("entry %d rule = %d, want %d (newest first)", i, e.Rule, want)
		}
		if e.Version != 7 {
			t.Fatalf("entry version = %d, want stamped 7", e.Version)
		}
		if e.Seq == 0 || e.Time.IsZero() {
			t.Fatalf("entry %d missing seq/time: %+v", i, e)
		}
	}
	if got := tr.AuditEntries(2); len(got) != 2 || got[0].Rule != 9 {
		t.Fatalf("limited entries = %+v, want 2 newest", got)
	}
	// Entries survive a publish reset: the ring is an audit log.
	tr.Reset(8, 1)
	if tr.AuditLen() != 4 {
		t.Fatalf("audit ring must survive Reset, len = %d", tr.AuditLen())
	}
}

func TestSampling(t *testing.T) {
	tr, _ := newTestTracker(Config{SampleEvery: 10})
	n := 0
	for i := 0; i < 1000; i++ {
		if tr.ShouldSample() {
			n++
		}
	}
	if n != 100 {
		t.Fatalf("sampled %d of 1000 at 1-in-10, want exactly 100", n)
	}
	off, _ := newTestTracker(Config{SampleEvery: -1, AuditCapacity: -1})
	if off.ShouldSample() {
		t.Fatal("negative SampleEvery must disable sampling")
	}
	off.AddAudit(AuditEntry{}) // must not panic with a disabled ring
	if off.AuditLen() != 0 {
		t.Fatal("disabled ring retained an entry")
	}
}

func TestConcurrentAccounting(t *testing.T) {
	tr, _ := newTestTracker(Config{AuditCapacity: 64, SampleEvery: 3})
	tr.Reset(1, 4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 4 {
				case 0:
					tr.RecordFires([]int32{int32(i % 4), -1, 2})
				case 1:
					tr.RecordFeedback(i%2 == 0, i%2 == 1, []int{i % 4})
				case 2:
					if tr.ShouldSample() {
						tr.AddAudit(AuditEntry{Rule: i % 4})
					}
				default:
					tr.Snapshot()
					tr.AuditEntries(8)
				}
				if i%50 == 0 && w == 0 {
					tr.Reset(2+i, 4)
				}
			}
		}(w)
	}
	wg.Wait()
	s := tr.Snapshot()
	if len(s.Rules) != 4 {
		t.Fatalf("rules = %d, want 4", len(s.Rules))
	}
}

// NoRuleIdx mirrors index.NoRule without importing the index package (which
// would create an import cycle in this white-box test's package).
const NoRuleIdx int32 = -1
