package datagen

import (
	"repro/internal/cluster"

	"repro/internal/order"
	"repro/internal/relation"
)

// Attribute indices of the synthetic FI schema, in order.
const (
	AttrDay      = 0 // day index within the observation period
	AttrTime     = 1 // minute of day
	AttrAmount   = 2 // whole currency units
	AttrType     = 3 // transaction type (Figure 1 ontology)
	AttrLocation = 4 // geographic/venue ontology
	AttrClient   = 5 // client type ontology
	AttrPrevTxns = 6 // number of previous transactions of the account
)

// Domain bounds of the numeric attributes.
const (
	MaxAmount   = 5000
	MaxPrevTxns = 500
)

// Clusterer returns the leader clusterer configured for this schema: the
// day index never separates clusters, because planted attack windows recur
// daily and the same pattern's frauds span many days.
func Clusterer() cluster.Leader {
	return cluster.Leader{AttrFrac: map[int]float64{AttrDay: 1}}
}

// Schema returns the seven-attribute universal transaction relation used by
// the generator: T(day, time, amount, type, location, client, prev_txns).
// Splitting absolute time into a day index and a minute-of-day keeps daily
// recurring attack windows (e.g. "around closing time") expressible as a
// single interval condition, as in the paper's examples.
//
// The minute-of-day carries the schema's time role, so windowed aggregate
// rules (COUNT(location, 10m) >= 6) parse and evaluate over generated data.
// Because that clock resets at midnight, sliding windows are exact within a
// day and clamp at day boundaries (the store's watermark never goes
// backwards) — velocity experiments use single-day datasets (Days: 1).
func Schema(geo GeoConfig, days int) *relation.Schema {
	return relation.MustSchema(
		relation.Attribute{Name: "day", Kind: relation.Numeric,
			Domain: order.NewDomain(0, int64(days-1)), Format: order.FormatPlain},
		relation.Attribute{Name: "time", Kind: relation.Numeric,
			Domain: order.NewDomain(0, 1439), Format: order.FormatTimeOfDay, Time: true},
		relation.Attribute{Name: "amount", Kind: relation.Numeric,
			Domain: order.NewDomain(1, MaxAmount), Format: order.FormatMoney},
		relation.Attribute{Name: "type", Kind: relation.Categorical,
			Ontology: TypeOntology()},
		relation.Attribute{Name: "location", Kind: relation.Categorical,
			Ontology: GeoOntology(geo)},
		relation.Attribute{Name: "client", Kind: relation.Categorical,
			Ontology: ClientOntology()},
		relation.Attribute{Name: "prev_txns", Kind: relation.Numeric,
			Domain: order.NewDomain(0, MaxPrevTxns), Format: order.FormatPlain},
	)
}
