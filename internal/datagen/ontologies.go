// Package datagen synthesizes the financial-institute (FI) transaction
// datasets that substitute for the paper's proprietary company-XYZ data: a
// seven-attribute universal transaction relation, planted conjunctive attack
// patterns with concept drift, background legitimate traffic, simulated ML
// risk scores of tunable quality, and perturbed initial rule sets that
// misclassify 35-50% of labeled transactions, matching the statistics
// published in Section 5. See DESIGN.md §3 for the substitution argument.
package datagen

import (
	"fmt"

	"repro/internal/ontology"
)

// Venue kinds appearing under every city; each venue leaf also hangs under a
// cross-cutting "Any <kind>" concept, making the location ontology a DAG the
// way the paper's type hierarchy is (rules like location ≤ "Any Gas Station"
// become expressible, mirroring "Location ≤ Gas Station" in the examples).
var venueKinds = []string{"Gas Station", "Supermarket", "Online Store", "Restaurant", "Electronics"}

// GeoConfig sizes the synthetic geographic ontology.
type GeoConfig struct {
	Continents       int
	CountriesPerCont int
	CitiesPerCountry int
}

// DefaultGeoConfig yields ~180 concepts: 3 continents × 3 countries × 3
// cities × 5 venues.
func DefaultGeoConfig() GeoConfig {
	return GeoConfig{Continents: 3, CountriesPerCont: 3, CitiesPerCountry: 3}
}

// GeoOntology builds the DBPedia-like location DAG described in Section 5 of
// the paper (continent → country → city → venue), with cross-cutting
// venue-kind concepts.
func GeoOntology(cfg GeoConfig) *ontology.Ontology {
	b := ontology.NewBuilder("location").Add("World")
	for _, kind := range venueKinds {
		b.Add("Any "+kind, "World")
	}
	for c := 0; c < cfg.Continents; c++ {
		cont := fmt.Sprintf("Continent %d", c+1)
		b.Add(cont, "World")
		for k := 0; k < cfg.CountriesPerCont; k++ {
			country := fmt.Sprintf("Country %d.%d", c+1, k+1)
			b.Add(country, cont)
			for t := 0; t < cfg.CitiesPerCountry; t++ {
				city := fmt.Sprintf("City %d.%d.%d", c+1, k+1, t+1)
				b.Add(city, country)
				for _, kind := range venueKinds {
					b.Add(kind+" @ "+city, city, "Any "+kind)
				}
			}
		}
	}
	return b.MustBuild()
}

// ClientOntology builds the small client-type hierarchy (the "client type"
// categorical attribute the paper mentions among its data fields).
func ClientOntology() *ontology.Ontology {
	return ontology.NewBuilder("client").
		Add("Any Client").
		Add("Individual", "Any Client").
		Add("Business", "Any Client").
		Add("Standard", "Individual").
		Add("Premium", "Individual").
		Add("Small Business", "Business").
		Add("Corporate", "Business").
		MustBuild()
}

// TypeOntology returns the transaction-type DAG of Figure 1.
func TypeOntology() *ontology.Ontology { return ontology.PaperTypeOntology() }
