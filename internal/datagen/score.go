package datagen

import (
	"math/rand"

	"repro/internal/relation"
)

// scorer simulates the company's ML risk model: scores in [0, 1000] drawn
// from two overlapping Gaussians whose separation is controlled by a single
// quality knob. The threshold baseline of Section 5 classifies on this
// score, so its achievable error is governed directly by the separation.
type scorer struct {
	rng       *rand.Rand
	fraudMean float64
	legitMean float64
	spread    float64
}

// newScorer maps separation ∈ [0,1] to mean distance: at 0 both classes
// score identically; at 1 the means sit 6 spreads apart.
func newScorer(rng *rand.Rand, separation float64) *scorer {
	if separation < 0 {
		separation = 0
	}
	if separation > 1 {
		separation = 1
	}
	const spread = 140.0
	mid := float64(relation.MaxScore) / 2
	halfGap := separation * 3 * spread / 2
	return &scorer{
		rng:       rng,
		fraudMean: mid + halfGap,
		legitMean: mid - halfGap,
		spread:    spread,
	}
}

func (sc *scorer) score(fraud bool) int16 {
	mean := sc.legitMean
	if fraud {
		mean = sc.fraudMean
	}
	v := mean + sc.rng.NormFloat64()*sc.spread
	if v < 0 {
		v = 0
	}
	if v > relation.MaxScore {
		v = relation.MaxScore
	}
	return int16(v)
}
