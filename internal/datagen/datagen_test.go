package datagen

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/rules"
)

func TestGeoOntologyShape(t *testing.T) {
	o := GeoOntology(DefaultGeoConfig())
	// 3 × 3 × 3 cities × 5 venues = 135 leaves.
	if got := len(o.Leaves()); got != 135 {
		t.Errorf("leaves = %d, want 135", got)
	}
	// Cross-cutting venue-kind concepts exist and cover one leaf per city.
	anyGas, ok := o.Lookup("Any Gas Station")
	if !ok {
		t.Fatal("no 'Any Gas Station' concept")
	}
	if got := o.LeafCount(anyGas); got != 27 {
		t.Errorf("Any Gas Station covers %d leaves, want 27", got)
	}
	// A venue leaf has two parents: its city and its kind — the DAG shape.
	leaf := o.MustLookup("Gas Station @ City 1.1.1")
	if got := len(o.Parents(leaf)); got != 2 {
		t.Errorf("venue leaf has %d parents, want 2", got)
	}
}

func TestClientOntology(t *testing.T) {
	o := ClientOntology()
	if got := len(o.Leaves()); got != 4 {
		t.Errorf("client leaves = %d, want 4", got)
	}
	if !o.Contains(o.MustLookup("Individual"), o.MustLookup("Premium")) {
		t.Error("Individual should contain Premium")
	}
}

func TestSchemaShape(t *testing.T) {
	s := Schema(DefaultGeoConfig(), 30)
	if s.Arity() != 7 {
		t.Fatalf("arity = %d, want 7", s.Arity())
	}
	if s.Attr(AttrDay).Domain.Max != 29 {
		t.Errorf("day domain max = %d, want 29", s.Attr(AttrDay).Domain.Max)
	}
	for _, tc := range []struct {
		idx  int
		name string
	}{
		{AttrDay, "day"}, {AttrTime, "time"}, {AttrAmount, "amount"},
		{AttrType, "type"}, {AttrLocation, "location"},
		{AttrClient, "client"}, {AttrPrevTxns, "prev_txns"},
	} {
		if got := s.Attr(tc.idx).Name; got != tc.name {
			t.Errorf("attr %d = %q, want %q", tc.idx, got, tc.name)
		}
	}
}

func TestConfigDefault(t *testing.T) {
	c := Config{}.Default()
	if c.Size == 0 || c.FraudPct == 0 || c.Days == 0 || c.Patterns == 0 ||
		c.DriftFraction == 0 || c.FraudReportRate == 0 || c.LegitVerifyRate == 0 ||
		c.ScoreSeparation == 0 || c.Geo == (GeoConfig{}) {
		t.Errorf("Default left zero fields: %+v", c)
	}
	// Explicit values survive.
	c2 := Config{Size: 123, FraudPct: 2.5}.Default()
	if c2.Size != 123 || c2.FraudPct != 2.5 {
		t.Error("Default clobbered explicit fields")
	}
}

func TestGenerateBasicInvariants(t *testing.T) {
	cfg := Config{Size: 3000, Seed: 42}
	ds := Generate(cfg)
	if ds.Rel.Len() != 3000 {
		t.Fatalf("size = %d", ds.Rel.Len())
	}
	if len(ds.TrueFraud) != 3000 {
		t.Fatalf("truth length = %d", len(ds.TrueFraud))
	}
	// Time-sorted by (day, minute).
	for i := 1; i < ds.Rel.Len(); i++ {
		a, b := ds.Rel.Tuple(i-1), ds.Rel.Tuple(i)
		if a[AttrDay] > b[AttrDay] || (a[AttrDay] == b[AttrDay] && a[AttrTime] > b[AttrTime]) {
			t.Fatalf("not time sorted at %d", i)
		}
	}
	// Fraud rate near the 1.5% default (binomial tolerance).
	frauds := len(ds.FraudIndices())
	rate := 100 * float64(frauds) / 3000
	if rate < 0.7 || rate > 3.0 {
		t.Errorf("fraud rate = %.2f%%, want near 1.5%%", rate)
	}
	// Every fraud lies inside its pattern region: each truly fraudulent
	// tuple is captured by at least one truth rule.
	for _, i := range ds.FraudIndices() {
		if len(ds.Truth.CapturingRules(ds.Schema, ds.Rel.Tuple(i))) == 0 {
			t.Fatalf("fraud %d outside every pattern", i)
		}
	}
	// Labels only on reported/verified transactions; FRAUD labels only on
	// true frauds.
	for i := 0; i < ds.Rel.Len(); i++ {
		if ds.Rel.Label(i) == relation.Fraud && !ds.TrueFraud[i] {
			t.Fatalf("tuple %d labeled FRAUD but not truly fraudulent", i)
		}
		if ds.Rel.Label(i) == relation.Legitimate && ds.TrueFraud[i] {
			t.Fatalf("tuple %d labeled LEGITIMATE but truly fraudulent", i)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := Generate(Config{Size: 500, Seed: 7})
	b := Generate(Config{Size: 500, Seed: 7})
	if a.Rel.Len() != b.Rel.Len() {
		t.Fatal("nondeterministic size")
	}
	for i := 0; i < a.Rel.Len(); i++ {
		ta, tb := a.Rel.Tuple(i), b.Rel.Tuple(i)
		for j := range ta {
			if ta[j] != tb[j] {
				t.Fatalf("tuple %d differs", i)
			}
		}
		if a.Rel.Label(i) != b.Rel.Label(i) || a.Rel.Score(i) != b.Rel.Score(i) {
			t.Fatalf("label/score %d differs", i)
		}
	}
	c := Generate(Config{Size: 500, Seed: 8})
	same := true
	for i := 0; i < 500 && same; i++ {
		for j := range a.Rel.Tuple(i) {
			if a.Rel.Tuple(i)[j] != c.Rel.Tuple(i)[j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestDriftPatternsStartLate(t *testing.T) {
	ds := Generate(Config{Size: 2000, Seed: 3, Patterns: 10, DriftFraction: 0.4})
	var early, late int
	for _, p := range ds.Patterns {
		if p.StartDay == 0 {
			early++
		} else {
			late++
			if p.StartDay < ds.Config.Days/2 {
				t.Errorf("drift pattern starts on day %d, before midpoint", p.StartDay)
			}
		}
	}
	if early != 6 || late != 4 {
		t.Errorf("pattern split = %d early / %d late, want 6/4", early, late)
	}
}

func TestScoreSeparationOrdersClasses(t *testing.T) {
	ds := Generate(Config{Size: 5000, Seed: 5, FraudPct: 2.5, ScoreSeparation: 0.8})
	var fSum, lSum, fN, lN float64
	for i := 0; i < ds.Rel.Len(); i++ {
		if ds.TrueFraud[i] {
			fSum += float64(ds.Rel.Score(i))
			fN++
		} else {
			lSum += float64(ds.Rel.Score(i))
			lN++
		}
	}
	if fN == 0 || lN == 0 {
		t.Fatal("degenerate class counts")
	}
	if fSum/fN <= lSum/lN+100 {
		t.Errorf("fraud mean score %.0f not well above legit mean %.0f", fSum/fN, lSum/lN)
	}
}

// TestInitialRulesMisclassify checks the paper's starting condition: the
// incumbent rules misclassify a substantial share of the labeled
// transactions (the paper reports 35-50%; we assert a generous band).
func TestInitialRulesMisclassify(t *testing.T) {
	ds := Generate(Config{Size: 6000, Seed: 11})
	rs := InitialRules(ds, 0, 11)
	if rs.Len() < 5 {
		t.Fatalf("only %d initial rules", rs.Len())
	}
	captured := rs.Eval(ds.Rel)
	var missedFrauds, frauds int
	for i := 0; i < ds.Rel.Len(); i++ {
		if ds.Rel.Label(i) != relation.Fraud {
			continue
		}
		frauds++
		if !captured.Has(i) {
			missedFrauds++
		}
	}
	if frauds == 0 {
		t.Fatal("no labeled frauds")
	}
	pct := 100 * float64(missedFrauds) / float64(frauds)
	if pct < 20 || pct > 80 {
		t.Errorf("initial missed-fraud share = %.1f%%, want a substantial share (paper: 35-50%% misclassified)", pct)
	}
}

func TestInitialRulesPadding(t *testing.T) {
	ds := Generate(Config{Size: 1000, Seed: 13})
	rs := InitialRules(ds, 40, 13)
	if rs.Len() < 40 {
		t.Errorf("padded rule count = %d, want >= 40", rs.Len())
	}
}

func TestSplitIndex(t *testing.T) {
	ds := Generate(Config{Size: 1000, Seed: 1})
	if got := ds.SplitIndex(0.5); got != 500 {
		t.Errorf("SplitIndex(0.5) = %d", got)
	}
	if got := ds.SplitIndex(0); got != 0 {
		t.Errorf("SplitIndex(0) = %d", got)
	}
}

func TestPatternSamplesInsideRegion(t *testing.T) {
	ds := Generate(Config{Size: 100, Seed: 2})
	s := ds.Schema
	for pi, p := range ds.Patterns {
		// Sampled tuples (with a valid day) must satisfy the pattern rule.
		day := int64(p.StartDay)
		for k := 0; k < 20; k++ {
			tup := sampleInPattern(randFor(pi*100+k), s, p, day)
			if !p.Rule.Matches(s, tup) {
				t.Fatalf("pattern %d sample %v escapes its region %s",
					pi, tup, p.Rule.Format(s))
			}
		}
	}
}

func TestBackgroundSamplesValid(t *testing.T) {
	s := Schema(DefaultGeoConfig(), 30)
	rel := relation.New(s)
	for k := 0; k < 200; k++ {
		tup := sampleBackground(randFor(k), s, int64(k%30))
		if _, err := rel.Append(tup, relation.Unlabeled, 0); err != nil {
			t.Fatalf("background sample invalid: %v", err)
		}
	}
}

// randFor returns a deterministic rng for subtest k.
func randFor(k int) *rand.Rand { return rand.New(rand.NewSource(int64(k) + 1)) }

// TestInitialRulesScoreThresholds: the opt-in score-threshold knob produces
// rules that parse, round-trip and gate capture by score.
func TestInitialRulesScoreThresholds(t *testing.T) {
	ds := Generate(Config{Size: 2000, Seed: 31, InitialRuleScoreRate: 1})
	rs := InitialRules(ds, 0, 31)
	withScore := 0
	for _, r := range rs.Rules() {
		if r.MinScore() > 0 {
			withScore++
		}
	}
	if withScore == 0 {
		t.Fatal("no initial rule carries a score threshold at rate 1")
	}
	// Score-aware evaluation captures no more than condition-only matching.
	captured := rs.Eval(ds.Rel)
	for i := 0; i < ds.Rel.Len(); i++ {
		if captured.Has(i) && len(rs.CapturingRulesAt(ds.Rel, i)) == 0 {
			t.Fatalf("Eval and CapturingRulesAt disagree at %d", i)
		}
	}
	// Zero rate (the default) leaves rules threshold-free.
	ds0 := Generate(Config{Size: 500, Seed: 31})
	for _, r := range InitialRules(ds0, 0, 31).Rules() {
		if r.MinScore() != 0 {
			t.Fatal("default config produced a score threshold")
		}
	}
}

// TestVelocityBursts: planted card-testing bursts ride along as extra
// fraudulent rows, every burst is caught by a windowed velocity rule, and
// disabling bursts keeps the background generation untouched.
func TestVelocityBursts(t *testing.T) {
	cfg := Config{Size: 2000, Seed: 7, Days: 1, VelocityBursts: 3}
	ds := Generate(cfg)
	if len(ds.Bursts) != 3 {
		t.Fatalf("planted %d bursts, want 3", len(ds.Bursts))
	}
	planted := 0
	for _, b := range ds.Bursts {
		if b.Size < 6 {
			t.Fatalf("burst size %d below the catchable minimum", b.Size)
		}
		planted += b.Size
	}
	if ds.Rel.Len() != cfg.Size+planted {
		t.Fatalf("relation has %d rows, want %d background + %d burst probes",
			ds.Rel.Len(), cfg.Size, planted)
	}

	// Each burst's fastest probe sees a COUNT(location, 10m) aggregate of at
	// least the burst size, so the velocity rule fires inside every burst.
	r := rules.MustParse(ds.Schema, "COUNT(location, 10m) >= 6")
	for bi, b := range ds.Bursts {
		hit := false
		for i := 0; i < ds.Rel.Len() && !hit; i++ {
			tu := ds.Rel.Tuple(i)
			if tu[AttrLocation] == b.Location && tu[AttrTime] >= b.Start &&
				tu[AttrTime] < b.Start+b.Span && r.MatchesAt(ds.Rel, i) {
				hit = true
			}
		}
		if !hit {
			t.Errorf("burst %d (%+v) not caught by the windowed rule", bi, b)
		}
	}

	// Burst probes are true frauds (subject to the usual reporting rate for
	// labels), and they are amount-small: per-tuple they blend into the
	// background, which is the point.
	fraud := 0
	for _, f := range ds.TrueFraud {
		if f {
			fraud++
		}
	}
	if fraud < planted {
		t.Fatalf("%d true frauds, want at least the %d planted probes", fraud, planted)
	}

	// With bursts disabled the generator draws nothing extra: the background
	// tuple stream is reproduced exactly (bursts are appended after it).
	base := Generate(Config{Size: 2000, Seed: 7, Days: 1})
	if base.Rel.Len() != cfg.Size {
		t.Fatalf("baseline has %d rows, want %d", base.Rel.Len(), cfg.Size)
	}
	if len(base.Bursts) != 0 {
		t.Fatalf("baseline has %d bursts, want none", len(base.Bursts))
	}
}
