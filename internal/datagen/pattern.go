package datagen

import (
	"math/rand"

	"repro/internal/ontology"
	"repro/internal/order"
	"repro/internal/relation"
	"repro/internal/rules"
)

// Pattern is a planted attack: a conjunctive region of the transaction space
// inside which the attacker operates, active from StartDay onward. Pattern
// boundaries are "round" values (multiples of 5 minutes, $10, …) so that the
// oracle expert's boundary rounding has a ground truth to round to.
type Pattern struct {
	// Rule is the region; its day condition is [StartDay, last day].
	Rule *rules.Rule
	// StartDay is the first day the attack is active (drift: new patterns
	// appear mid-stream).
	StartDay int
	// Weight is the pattern's share when assigning fraudulent transactions
	// among the patterns active on a given day.
	Weight float64
}

// randomPattern synthesizes a pattern over the schema. Conditions:
// a daily time window of 30-120 minutes, an amount threshold or band, a
// transaction-type concept, a location concept (city, country, or
// venue-kind), occasionally a client-type or new-account condition.
func randomPattern(rng *rand.Rand, s *relation.Schema, startDay int) Pattern {
	r := rules.NewRule(s)

	days := s.Attr(AttrDay).Domain
	r.SetCond(AttrDay, rules.NumericCond(order.Interval{Lo: int64(startDay), Hi: days.Max}))

	winStart := int64(rng.Intn(276)) * 5 // 00:00 .. 22:55, multiple of 5
	winLen := int64(30 + 5*rng.Intn(19)) // 30..120 minutes
	winEnd := winStart + winLen
	if winEnd > 1439 {
		winEnd = 1439
	}
	r.SetCond(AttrTime, rules.NumericCond(order.Interval{Lo: winStart, Hi: winEnd}))

	lo := int64(20+10*rng.Intn(29)) * 1 // $20..$300 in $10 steps
	if rng.Intn(2) == 0 {
		r.SetCond(AttrAmount, rules.NumericCond(order.Interval{Lo: lo, Hi: MaxAmount}))
	} else {
		hi := lo + int64(100+50*rng.Intn(18)) // band of $100..$950
		if hi > MaxAmount {
			hi = MaxAmount
		}
		r.SetCond(AttrAmount, rules.NumericCond(order.Interval{Lo: lo, Hi: hi}))
	}

	r.SetCond(AttrType, rules.ConceptCond(randomConcept(rng, s.Attr(AttrType).Ontology, 1)))
	r.SetCond(AttrLocation, rules.ConceptCond(randomConcept(rng, s.Attr(AttrLocation).Ontology, 1)))

	if rng.Intn(10) < 3 {
		r.SetCond(AttrClient, rules.ConceptCond(randomConcept(rng, s.Attr(AttrClient).Ontology, 1)))
	}
	if rng.Intn(10) < 2 {
		// Fresh accounts: few previous transactions.
		r.SetCond(AttrPrevTxns, rules.NumericCond(order.Interval{Lo: 0, Hi: int64(5 + 5*rng.Intn(6))}))
	}

	return Pattern{Rule: r, StartDay: startDay, Weight: 0.5 + rng.Float64()}
}

// randomConcept picks a uniformly random non-⊤ concept of at least the given
// depth (falling back to any non-⊤ concept).
func randomConcept(rng *rand.Rand, o *ontology.Ontology, minDepth int) ontology.Concept {
	for tries := 0; tries < 64; tries++ {
		c := ontology.Concept(rng.Intn(o.Len()))
		if c != o.Top() && o.Depth(c) >= minDepth {
			return c
		}
	}
	return ontology.Concept(1)
}

// sampleInPattern draws a tuple uniformly from the pattern's region, with
// the day fixed.
func sampleInPattern(rng *rand.Rand, s *relation.Schema, p Pattern, day int64) relation.Tuple {
	t := make(relation.Tuple, s.Arity())
	for i := 0; i < s.Arity(); i++ {
		a := s.Attr(i)
		c := p.Rule.Cond(i)
		if i == AttrDay {
			t[i] = day
			continue
		}
		if a.Kind == relation.Categorical {
			leaves := a.Ontology.LeavesUnder(c.C)
			t[i] = int64(leaves[rng.Intn(len(leaves))])
			continue
		}
		iv := c.Iv.Intersect(a.Domain.Full())
		t[i] = iv.Lo + rng.Int63n(iv.Size())
	}
	return t
}

// sampleBackground draws a legitimate background transaction for the day:
// amounts are skewed small (roughly exponential), times cover the day, other
// attributes are uniform over their domains.
func sampleBackground(rng *rand.Rand, s *relation.Schema, day int64) relation.Tuple {
	t := make(relation.Tuple, s.Arity())
	t[AttrDay] = day
	t[AttrTime] = int64(rng.Intn(1440))
	amount := int64(1 + rng.ExpFloat64()*80)
	if amount > MaxAmount {
		amount = MaxAmount
	}
	t[AttrAmount] = amount
	for _, i := range []int{AttrType, AttrLocation, AttrClient} {
		leaves := s.Attr(i).Ontology.Leaves()
		t[i] = int64(leaves[rng.Intn(len(leaves))])
	}
	t[AttrPrevTxns] = int64(rng.Intn(MaxPrevTxns + 1))
	return t
}
