package datagen

import (
	"math/rand"
	"sort"

	"repro/internal/relation"
	"repro/internal/rules"
)

// Config parameterizes a synthetic FI dataset. The zero value is completed
// by Default; only set the fields you care about.
type Config struct {
	// Size is the number of transactions (the paper's FIs range from 100K
	// to 10M; the scaled default keeps experiments laptop-fast).
	Size int
	// FraudPct is the percentage of fraudulent transactions (paper: 0.5-2.5).
	FraudPct float64
	// Days is the observation period length.
	Days int
	// Patterns is the number of planted attack patterns.
	Patterns int
	// DriftFraction is the fraction of patterns that only become active in
	// the second half of the period (the concept drift the rules must adapt
	// to).
	DriftFraction float64
	// FraudReportRate is the probability a fraudulent transaction is
	// reported (labeled FRAUD) by the card holder.
	FraudReportRate float64
	// LegitVerifyRate is the probability a legitimate transaction is
	// explicitly verified (labeled LEGITIMATE).
	LegitVerifyRate float64
	// ScoreSeparation in [0,1] controls the quality of the simulated ML
	// risk score: 0 is useless, 1 nearly separates the classes.
	ScoreSeparation float64
	// NearMissFactor controls how much legitimate traffic falls inside
	// attack-pattern regions, relative to the fraud rate. These are the
	// paper's l₁/l₂/l₃-style transactions: ordinary purchases that happen to
	// match an attack's window/amount/venue and force rule specialization.
	NearMissFactor float64
	// NearMissVerifyRate is the probability a near-miss is explicitly
	// verified legitimate (cardholders dispute flags on these often).
	NearMissVerifyRate float64
	// InitialRuleScoreRate is the probability an incumbent rule carries a
	// risk-score threshold ("in practice each rule also includes some
	// threshold condition on the score", Section 1). 0 disables them, which
	// is also the paper's simplification in its examples and evaluation.
	InitialRuleScoreRate float64
	// VelocityBursts plants that many card-testing bursts: runs of small
	// fraudulent probes at a single location within a few minutes, invisible
	// to per-tuple conjunctive rules and catchable only by a windowed
	// aggregate (COUNT(location, ...)). 0 disables them, and then the
	// generator draws nothing extra from the rng, so default datasets are
	// byte-identical to pre-velocity builds. Most meaningful with Days: 1
	// (see Schema on the minute-of-day clock).
	VelocityBursts int
	// Geo sizes the location ontology.
	Geo GeoConfig
	// Seed drives all randomness.
	Seed int64
}

// Default fills zero fields with the defaults used across the experiments.
func (c Config) Default() Config {
	if c.Size == 0 {
		c.Size = 5000
	}
	if c.FraudPct == 0 {
		c.FraudPct = 1.5
	}
	if c.Days == 0 {
		c.Days = 30
	}
	if c.Patterns == 0 {
		c.Patterns = 8
	}
	if c.DriftFraction == 0 {
		c.DriftFraction = 0.4
	}
	if c.FraudReportRate == 0 {
		c.FraudReportRate = 0.95
	}
	if c.LegitVerifyRate == 0 {
		c.LegitVerifyRate = 0.08
	}
	if c.ScoreSeparation == 0 {
		c.ScoreSeparation = 0.35
	}
	if c.NearMissFactor == 0 {
		c.NearMissFactor = 0.2
	}
	if c.NearMissVerifyRate == 0 {
		c.NearMissVerifyRate = 0.4
	}
	if c.Geo == (GeoConfig{}) {
		c.Geo = DefaultGeoConfig()
	}
	return c
}

// Dataset is a generated FI dataset: the labeled transaction relation, the
// per-tuple ground truth, and the planted patterns (the oracle expert's
// domain knowledge).
type Dataset struct {
	Config Config
	Schema *relation.Schema
	Rel    *relation.Relation
	// TrueFraud is the ground truth per transaction; labels in Rel reflect
	// only what has been reported/verified.
	TrueFraud []bool
	// Patterns are the planted attacks.
	Patterns []Pattern
	// Truth holds the pattern rules (one per pattern) for the oracle expert.
	Truth *rules.Set
	// Bursts are the planted velocity attacks (empty unless
	// Config.VelocityBursts > 0).
	Bursts []Burst
}

// Burst is one planted velocity attack: Size fraudulent probes at a single
// location leaf within Span minutes of one day. Every probe looks like
// ordinary small background traffic tuple-by-tuple — only the arrival rate
// separates it, so a per-tuple conjunctive rule cannot isolate a burst
// without also capturing the venue's normal customers.
type Burst struct {
	Day      int64
	Start    int64 // minute of day
	Span     int64 // minutes; probes land in [Start, Start+Span)
	Location int64 // ontology leaf id
	Size     int
}

// Generate synthesizes a dataset. Everything is driven by cfg.Seed; equal
// configs produce equal datasets.
func Generate(cfg Config) *Dataset {
	cfg = cfg.Default()
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := Schema(cfg.Geo, cfg.Days)

	patterns := makePatterns(rng, s, cfg)
	truth := rules.NewSet()
	for _, p := range patterns {
		truth.Add(p.Rule)
	}

	type row struct {
		t        relation.Tuple
		fraud    bool
		nearMiss bool
	}
	rows := make([]row, 0, cfg.Size)
	fraudTarget := cfg.FraudPct / 100
	for i := 0; i < cfg.Size; i++ {
		day := int64(rng.Intn(cfg.Days))
		draw := rng.Float64()
		if draw < fraudTarget {
			if p, ok := pickPattern(rng, patterns, int(day)); ok {
				rows = append(rows, row{t: sampleInPattern(rng, s, p, day), fraud: true})
				continue
			}
		} else if draw < fraudTarget*(1+cfg.NearMissFactor) {
			// A legitimate transaction that happens to fall inside an attack
			// region (the l₁/l₂/l₃ transactions of the paper's example).
			if p, ok := pickPattern(rng, patterns, int(day)); ok {
				rows = append(rows, row{t: sampleInPattern(rng, s, p, day), nearMiss: true})
				continue
			}
		}
		rows = append(rows, row{t: sampleBackground(rng, s, day), fraud: false})
	}
	var bursts []Burst
	if cfg.VelocityBursts > 0 {
		bursts = makeBursts(rng, s, cfg)
		for _, b := range bursts {
			for k := 0; k < b.Size; k++ {
				t := sampleBackground(rng, s, b.Day)
				t[AttrTime] = b.Start + rng.Int63n(b.Span)
				t[AttrLocation] = b.Location
				t[AttrAmount] = 1 + rng.Int63n(20) // card-testing probes are small
				rows = append(rows, row{t: t, fraud: true})
			}
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].t[AttrDay] != rows[j].t[AttrDay] {
			return rows[i].t[AttrDay] < rows[j].t[AttrDay]
		}
		return rows[i].t[AttrTime] < rows[j].t[AttrTime]
	})

	ds := &Dataset{
		Config:   cfg,
		Schema:   s,
		Rel:      relation.New(s),
		Patterns: patterns,
		Truth:    truth,
		Bursts:   bursts,
	}
	scorer := newScorer(rng, cfg.ScoreSeparation)
	for _, rw := range rows {
		label := relation.Unlabeled
		switch {
		case rw.fraud:
			if rng.Float64() < cfg.FraudReportRate {
				label = relation.Fraud
			}
		case rw.nearMiss:
			if rng.Float64() < cfg.NearMissVerifyRate {
				label = relation.Legitimate
			}
		default:
			if rng.Float64() < cfg.LegitVerifyRate {
				label = relation.Legitimate
			}
		}
		ds.Rel.MustAppend(rw.t, label, scorer.score(rw.fraud))
		ds.TrueFraud = append(ds.TrueFraud, rw.fraud)
	}
	return ds
}

// makePatterns plants the attack patterns: the first (1-DriftFraction) share
// are active from day 0, the rest start in the second half of the period.
func makePatterns(rng *rand.Rand, s *relation.Schema, cfg Config) []Pattern {
	patterns := make([]Pattern, 0, cfg.Patterns)
	drift := int(float64(cfg.Patterns)*cfg.DriftFraction + 0.5)
	old := cfg.Patterns - drift
	for i := 0; i < old; i++ {
		patterns = append(patterns, randomPattern(rng, s, 0))
	}
	for i := 0; i < drift; i++ {
		start := cfg.Days/2 + rng.Intn(maxInt(1, cfg.Days*3/10))
		patterns = append(patterns, randomPattern(rng, s, start))
	}
	return patterns
}

// makeBursts places the velocity attacks: each picks a day, a start minute,
// a venue leaf, and 6-12 probes over a 5-minute span.
func makeBursts(rng *rand.Rand, s *relation.Schema, cfg Config) []Burst {
	leaves := s.Attr(AttrLocation).Ontology.Leaves()
	bursts := make([]Burst, 0, cfg.VelocityBursts)
	for i := 0; i < cfg.VelocityBursts; i++ {
		bursts = append(bursts, Burst{
			Day:      int64(rng.Intn(cfg.Days)),
			Start:    int64(rng.Intn(1430)),
			Span:     5,
			Location: int64(leaves[rng.Intn(len(leaves))]),
			Size:     6 + rng.Intn(7),
		})
	}
	return bursts
}

// pickPattern selects a pattern active on the given day, weighted.
func pickPattern(rng *rand.Rand, patterns []Pattern, day int) (Pattern, bool) {
	var total float64
	for _, p := range patterns {
		if p.StartDay <= day {
			total += p.Weight
		}
	}
	if total == 0 {
		return Pattern{}, false
	}
	x := rng.Float64() * total
	for _, p := range patterns {
		if p.StartDay > day {
			continue
		}
		x -= p.Weight
		if x <= 0 {
			return p, true
		}
	}
	return Pattern{}, false
}

// FraudIndices returns the indices of the truly fraudulent transactions.
func (ds *Dataset) FraudIndices() []int {
	var out []int
	for i, f := range ds.TrueFraud {
		if f {
			out = append(out, i)
		}
	}
	return out
}

// SplitIndex returns the transaction index at the given fraction of the
// dataset (for the before/after time split of the experiments).
func (ds *Dataset) SplitIndex(fraction float64) int {
	return int(float64(ds.Rel.Len()) * fraction)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
