package datagen

import (
	"math/rand"

	"repro/internal/order"
	"repro/internal/relation"
	"repro/internal/rules"
)

// InitialRules builds the FI's incumbent rule set: perturbed approximations
// of the patterns that were already active at the start of the period, plus
// a few spurious rules. Perturbations (clipped windows, raised amount
// thresholds, narrowed concepts) reproduce the paper's starting condition —
// incumbent rules that misclassify a substantial share (roughly 35-50%) of
// the labeled transactions and must be both generalized and specialized.
//
// minRules pads the set with narrower per-leaf variants to reach FI-sized
// rule counts (the paper's FIs run 10-130 rules); pass 0 for no padding.
func InitialRules(ds *Dataset, minRules int, seed int64) *rules.Set {
	rng := rand.New(rand.NewSource(seed))
	s := ds.Schema
	out := rules.NewSet()
	for _, p := range ds.Patterns {
		if p.StartDay != 0 {
			continue // the FI has not seen drift patterns yet
		}
		r := perturb(rng, s, p.Rule)
		// Only draw when thresholds are enabled, so the default configuration
		// keeps the exact random stream (and rule sets) it always had.
		if ds.Config.InitialRuleScoreRate > 0 && rng.Float64() < ds.Config.InitialRuleScoreRate {
			// Low thresholds: the incumbent rules also lean on the ML score.
			r.SetMinScore(int16(200 + 50*rng.Intn(5)))
		}
		out.Add(r)
	}
	// A few spurious rules from stale or over-eager analysis.
	for i := 0; i < 2; i++ {
		out.Add(randomPattern(rng, s, 0).Rule)
	}
	// Pad with narrow per-leaf variants of existing rules.
	for v := 0; out.Len() < minRules; v++ {
		base := out.Rule(v % out.Len())
		narrowed := narrowOneConcept(rng, s, base)
		out.Add(narrowed)
	}
	return out
}

// perturb distorts one pattern rule the way stale incumbent rules are
// distorted: clipped time windows, raised amount thresholds, narrowed
// concepts.
func perturb(rng *rand.Rand, s *relation.Schema, r *rules.Rule) *rules.Rule {
	out := r.Clone()
	// Clip the time window: start 10-40 minutes late.
	tw := out.Cond(AttrTime).Iv
	shift := int64(10 + 5*rng.Intn(7))
	lo := tw.Lo + shift
	if lo > tw.Hi {
		lo = tw.Hi
	}
	out.SetCond(AttrTime, rules.NumericCond(order.Interval{Lo: lo, Hi: tw.Hi}))
	// Raise the amount threshold by 10-30% of the band.
	am := out.Cond(AttrAmount).Iv
	width := am.Size()
	raise := int64(float64(width) * (0.1 + 0.2*rng.Float64()))
	amLo := am.Lo + raise
	if amLo > am.Hi {
		amLo = am.Hi
	}
	out.SetCond(AttrAmount, rules.NumericCond(order.Interval{Lo: amLo, Hi: am.Hi}))
	// Narrow one categorical concept to a child half the time.
	if rng.Intn(2) == 0 {
		out = narrowOneConcept(rng, s, out)
	}
	// Forget the day restriction: incumbent rules ran from day 0 anyway.
	out.SetCond(AttrDay, rules.TrivialCond(s.Attr(AttrDay)))
	return out
}

// narrowOneConcept returns a copy of r with one categorical condition
// replaced by one of its children (if any).
func narrowOneConcept(rng *rand.Rand, s *relation.Schema, r *rules.Rule) *rules.Rule {
	out := r.Clone()
	attrs := []int{AttrType, AttrLocation, AttrClient}
	start := rng.Intn(len(attrs))
	for k := 0; k < len(attrs); k++ {
		attr := attrs[(start+k)%len(attrs)]
		o := s.Attr(attr).Ontology
		children := o.Children(out.Cond(attr).C)
		if len(children) == 0 {
			continue
		}
		out.SetCond(attr, rules.ConceptCond(children[rng.Intn(len(children))]))
		return out
	}
	return out
}
