// Package cli holds the file-loading helpers shared by the command-line
// programs (cmd/rudolf, cmd/rudolfd): the open/parse/close dance for schema
// JSON, rule files, transaction CSVs and rule histories, with the file path
// attached to every error.
package cli

import (
	"fmt"
	"os"

	"repro/internal/alert"
	"repro/internal/history"
	"repro/internal/relation"
	"repro/internal/rules"
)

// load opens path and hands the file to parse, closing it afterwards and
// wrapping any error with the path.
func load(path string, parse func(f *os.File) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := parse(f); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// LoadSchema reads a schema (with its ontologies) from a JSON file written
// by Schema.WriteJSON.
func LoadSchema(path string) (*relation.Schema, error) {
	var s *relation.Schema
	err := load(path, func(f *os.File) (err error) {
		s, err = relation.ReadSchemaJSON(f)
		return err
	})
	return s, err
}

// LoadRules reads a rule file (one rule per line, '#' comments) against the
// schema.
func LoadRules(path string, s *relation.Schema) (*rules.Set, error) {
	var rs *rules.Set
	err := load(path, func(f *os.File) (err error) {
		rs, err = rules.ReadSet(f, s)
		return err
	})
	return rs, err
}

// LoadAlertRules reads a declarative alert-rule file (one rule per line,
// '#' comments; see internal/alert).
func LoadAlertRules(path string) ([]alert.Rule, error) {
	var rs []alert.Rule
	err := load(path, func(f *os.File) (err error) {
		rs, err = alert.ParseRules(f)
		return err
	})
	return rs, err
}

// LoadRelation reads a transaction CSV (as written by Relation.WriteCSV)
// against the schema.
func LoadRelation(path string, s *relation.Schema) (*relation.Relation, error) {
	var rel *relation.Relation
	err := load(path, func(f *os.File) (err error) {
		rel, err = relation.ReadCSV(s, f)
		return err
	})
	return rel, err
}

// LoadOrNewHistory reads a JSON rule history, returning an empty store when
// the file does not exist yet.
func LoadOrNewHistory(path string, s *relation.Schema) (*history.Store, error) {
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return history.NewStore(s), nil
	}
	var st *history.Store
	err := load(path, func(f *os.File) (err error) {
		st, err = history.ReadJSON(f, s)
		return err
	})
	return st, err
}

// SaveHistory writes the history as JSON to path.
func SaveHistory(path string, st *history.Store) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := st.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}

// SaveRules writes the rule set, one rule per line, to path.
func SaveRules(path string, s *relation.Schema, rs *rules.Set) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rules.WriteSet(f, s, rs); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}
