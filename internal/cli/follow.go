package cli

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/relation"
)

// Schema-fetch retry budget: a follower is routinely started before (or at
// the same time as) its leader, so transient connection failures during the
// leader's boot are expected, not fatal.
const (
	fetchSchemaAttempts = 40
	fetchSchemaDelay    = 500 * time.Millisecond
)

// FetchSchema retrieves the transaction schema from a leader's
// GET /v1/schema, retrying while the leader comes up. A follower
// self-configures from this — it needs no local schema file.
func FetchSchema(leaderURL string) (*relation.Schema, error) {
	url := strings.TrimRight(leaderURL, "/") + "/v1/schema"
	client := &http.Client{Timeout: 10 * time.Second}
	var lastErr error
	for attempt := 0; attempt < fetchSchemaAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(fetchSchemaDelay)
		}
		resp, err := client.Get(url)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			lastErr = fmt.Errorf("leader answered %s", resp.Status)
			continue
		}
		schema, err := relation.ReadSchemaJSON(resp.Body)
		resp.Body.Close()
		if err != nil {
			// A well-formed HTTP 200 with a broken schema body will not get
			// better on retry.
			return nil, fmt.Errorf("parsing schema from %s: %w", url, err)
		}
		return schema, nil
	}
	return nil, fmt.Errorf("fetching schema from %s: leader unreachable after %d attempts: %w",
		url, fetchSchemaAttempts, lastErr)
}
