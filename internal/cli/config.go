package cli

import (
	"errors"
	"log/slog"
	"time"

	"repro/internal/datagen"
	"repro/internal/serve"
)

// ServeOptions collects every rudolfd flag that shapes the serving
// configuration, so the flag-to-Config translation lives in exactly one
// place. ServerConfig applies the same synthetic-dataset fallbacks the
// daemon documents, loads the referenced files, and validates the result —
// the daemon's main() only parses flags and handles errors.
type ServeOptions struct {
	// SchemaPath is a schema JSON file; empty boots the built-in synthetic
	// financial-institute schema (Size/Seed control the generator).
	SchemaPath string
	// RulesPath is a rule file. Required with SchemaPath; optional with the
	// synthetic schema (empty: the generated incumbent rules).
	RulesPath string
	// HistoryPath continues a JSON rule history (the stateless persistence
	// mode; mutually exclusive with DataDir).
	HistoryPath string
	// DataDir enables durable serving state (WAL + snapshots).
	DataDir string
	// FollowURL runs the daemon as a read-only replication follower of the
	// leader at this base URL. The schema is fetched from the leader's
	// GET /v1/schema (retrying while the leader boots), so a follower needs
	// no local files at all; mutually exclusive with SchemaPath, RulesPath,
	// HistoryPath and DataDir.
	FollowURL string
	// Fsync, FsyncInterval, SnapshotInterval and WALSegmentBytes are the
	// durability knobs (see serve.Config); they require DataDir.
	Fsync            string
	FsyncInterval    time.Duration
	SnapshotInterval time.Duration
	WALSegmentBytes  int64
	// Size and Seed parameterize the synthetic dataset when SchemaPath is
	// empty.
	Size int
	Seed int64
	// Workers, MaxBatch, Drain and TraceCapacity map onto the serve.Config
	// fields of the same names (0 means the serving default).
	Workers       int
	MaxBatch      int
	Drain         time.Duration
	TraceCapacity int
	// SlowRing and SlowFloor shape the tail-sampled slow-request ring behind
	// GET /v1/debug/slow: the ring capacity (0 means the serving default,
	// negative disables) and the explicit promotion floor (0 means
	// adaptive-p99-only).
	SlowRing  int
	SlowFloor time.Duration
	// AuditRing, AuditSample, DriftHalfLife and RuleLabelCap are the rule
	// observability knobs: the sampled decision audit ring capacity, the
	// 1-in-N audit sampling rate, the fire-rate drift EWMA half-life and the
	// per-rule metric label cardinality cap (see serve.Config; 0 means the
	// serving default, negative disables where the field documents it).
	AuditRing     int
	AuditSample   int
	DriftHalfLife time.Duration
	RuleLabelCap  int
	// AlertsPath is a declarative alert-rule file (see internal/alert);
	// empty keeps the compiled-in default rules. AlertInterval is the
	// evaluation period (0 means the serving default, negative disables the
	// periodic evaluator). AlertWebhook receives firing/resolved
	// transitions as JSON POSTs.
	AlertsPath    string
	AlertInterval time.Duration
	AlertWebhook  string
	// Logger receives the daemon's structured logs.
	Logger *slog.Logger
}

// ServerConfig builds and validates the serving configuration from the
// options. Every error is actionable at the flag level.
func (o ServeOptions) ServerConfig() (serve.Config, error) {
	cfg := serve.Config{
		Workers:          o.Workers,
		MaxBatch:         o.MaxBatch,
		DrainTimeout:     o.Drain,
		TraceCapacity:    o.TraceCapacity,
		SlowRingCapacity: o.SlowRing,
		SlowFloor:        o.SlowFloor,
		Logger:           o.Logger,
		DataDir:          o.DataDir,
		Fsync:            o.Fsync,
		FsyncInterval:    o.FsyncInterval,
		SnapshotInterval: o.SnapshotInterval,
		WALSegmentBytes:  o.WALSegmentBytes,
		AuditCapacity:    o.AuditRing,
		AuditSampleEvery: o.AuditSample,
		DriftHalfLife:    o.DriftHalfLife,
		RuleLabelCap:     o.RuleLabelCap,
		AlertInterval:    o.AlertInterval,
		AlertWebhook:     o.AlertWebhook,
	}
	if o.AlertsPath != "" {
		alertRules, err := LoadAlertRules(o.AlertsPath)
		if err != nil {
			return serve.Config{}, err
		}
		cfg.AlertRules = alertRules
	}
	if o.HistoryPath != "" && o.DataDir != "" {
		return serve.Config{}, errors.New("-history and -data-dir are mutually exclusive: the data directory persists its own version history")
	}
	if o.FollowURL != "" {
		// A follower's entire state — schema, rules, history, feedback —
		// replicates from the leader; any local source of the same state
		// would conflict with it.
		switch {
		case o.DataDir != "":
			return serve.Config{}, errors.New("-follow and -data-dir are mutually exclusive: a follower's durable state is the leader's")
		case o.HistoryPath != "":
			return serve.Config{}, errors.New("-follow and -history are mutually exclusive: a follower replicates the leader's history")
		case o.SchemaPath != "":
			return serve.Config{}, errors.New("-follow and -schema are mutually exclusive: a follower fetches the schema from the leader")
		case o.RulesPath != "":
			return serve.Config{}, errors.New("-follow and -rules are mutually exclusive: a follower replicates the leader's published rules")
		}
		cfg.FollowURL = o.FollowURL
		schema, err := FetchSchema(o.FollowURL)
		if err != nil {
			return serve.Config{}, err
		}
		cfg.Schema = schema
		if err := cfg.Validate(); err != nil {
			return serve.Config{}, err
		}
		return cfg, nil
	}

	if o.SchemaPath != "" {
		if o.RulesPath == "" {
			return serve.Config{}, errors.New("-schema requires -rules (the synthetic dataset brings its own incumbent rules)")
		}
		schema, err := LoadSchema(o.SchemaPath)
		if err != nil {
			return serve.Config{}, err
		}
		ruleSet, err := LoadRules(o.RulesPath, schema)
		if err != nil {
			return serve.Config{}, err
		}
		cfg.Schema, cfg.Rules = schema, ruleSet
	} else {
		ds := datagen.Generate(datagen.Config{Size: o.Size, Seed: o.Seed})
		cfg.Schema = ds.Schema
		if o.RulesPath != "" {
			ruleSet, err := LoadRules(o.RulesPath, ds.Schema)
			if err != nil {
				return serve.Config{}, err
			}
			cfg.Rules = ruleSet
		} else {
			cfg.Rules = datagen.InitialRules(ds, 0, o.Seed)
		}
		// The synthetic FI schema has a day attribute that must not separate
		// clusters during /v1/refine.
		cfg.Refine.Clusterer = datagen.Clusterer()
	}

	if o.HistoryPath != "" {
		hist, err := LoadOrNewHistory(o.HistoryPath, cfg.Schema)
		if err != nil {
			return serve.Config{}, err
		}
		cfg.History = hist
	}

	if err := cfg.Validate(); err != nil {
		return serve.Config{}, err
	}
	return cfg, nil
}
