package cli

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the structured logger shared by the command-line
// programs: format is "text" (human-readable, the default) or "json" (one
// object per line, for log shippers); level is "debug", "info", "warn" or
// "error". Logs go to w (typically os.Stderr, keeping stdout clean for data
// output and scripts).
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}
