package cli

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestServeOptionsSynthetic: the zero-config path boots the synthetic
// dataset with incumbent rules and validates.
func TestServeOptionsSynthetic(t *testing.T) {
	cfg, err := (ServeOptions{Size: 200, Seed: 1}).ServerConfig()
	if err != nil {
		t.Fatalf("ServerConfig: %v", err)
	}
	if cfg.Schema == nil || cfg.Rules == nil || cfg.Rules.Len() == 0 {
		t.Fatalf("synthetic config lacks schema or rules: %+v", cfg)
	}
	if cfg.Refine.Clusterer == nil {
		t.Fatal("synthetic config must pin the dataset clusterer for /v1/refine")
	}
}

// TestServeOptionsErrors: flag-level contradictions surface as actionable
// errors before any server is constructed.
func TestServeOptionsErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		o    ServeOptions
		want string
	}{
		{"schema without rules", ServeOptions{SchemaPath: "x.json", Size: 10}, "-schema requires -rules"},
		{"history with data dir", ServeOptions{HistoryPath: "h.json", DataDir: "d", Size: 10}, "mutually exclusive"},
		{"fsync without data dir", ServeOptions{Fsync: "never", Size: 10}, "data directory"},
		{"bad fsync", ServeOptions{DataDir: "d", Fsync: "sometimes", Size: 10}, "unknown fsync policy"},
		{"missing schema file", ServeOptions{SchemaPath: "does-not-exist.json", RulesPath: "r.txt", Size: 10}, "does-not-exist.json"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.o.ServerConfig()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ServerConfig = %v, want an error containing %q", err, tc.want)
			}
		})
	}
}

// TestServeOptionsDurable: the durability knobs pass through to the
// validated config.
func TestServeOptionsDurable(t *testing.T) {
	dir := t.TempDir()
	cfg, err := (ServeOptions{Size: 100, Seed: 1, DataDir: filepath.Join(dir, "state"), Fsync: "never"}).ServerConfig()
	if err != nil {
		t.Fatalf("ServerConfig: %v", err)
	}
	if cfg.DataDir == "" || cfg.Fsync != "never" {
		t.Fatalf("durability knobs lost: %+v", cfg)
	}
}
