// Package trace is a stdlib-only, low-overhead span tracer for the
// refinement hot path. The paper's evaluation is entirely about where the
// interactive loop spends its effort — expert questions asked, modifications
// applied, cost accrued per round — and a production rule-management system
// needs the same story live: every refinement round, expert query, capture
// rebind and scoring request attributable and exportable.
//
// Design:
//
//   - A Tracer owns a fixed-capacity ring buffer of completed span Records.
//     Span-ID allocation is a single atomic fetch-add; finishing a span
//     copies one fixed-size Record into the ring under a short mutex (the
//     record is plain data — no allocation, no I/O). On overflow the oldest
//     records are overwritten and counted (Dropped), never blocking the
//     hot path.
//   - Spans are hierarchical: Child spans carry their parent's ID and
//     inherit its Track (the Chrome-trace tid), so one request or one
//     refinement session renders as one nested track in Perfetto.
//   - Attrs are typed key/values stored inline in a fixed array (MaxAttrs);
//     setting more drops the surplus and counts it. No maps, no interfaces
//     on the hot path.
//   - A nil *Tracer is fully supported and free: every method is
//     nil-receiver-safe, Start returns the zero Span, and every Span method
//     no-ops on the zero value without allocating (BenchmarkNilTracer
//     proves 0 allocs/op). Library code therefore threads an optional
//     tracer unconditionally.
//
// Completed spans are read back with Snapshot and exported as JSONL
// (WriteJSONL) or the Chrome trace_event format (WriteChrome) loadable in
// chrome://tracing and Perfetto. See DESIGN.md §10.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// MaxAttrs is the number of attributes stored inline per span. Attributes
// set beyond the limit are dropped (and counted by the tracer) so the ring
// buffer stays allocation-free.
const MaxAttrs = 8

// DefaultCapacity is the ring-buffer size used when Options.Capacity is 0.
const DefaultCapacity = 4096

// attr kinds.
const (
	kindNone = iota
	kindInt
	kindFloat
	kindStr
	kindBool
)

// Attr is one typed span attribute.
type Attr struct {
	Key  string
	kind uint8
	i    int64
	f    float64
	s    string
}

// Value returns the attribute's value as an any (for exporters).
func (a Attr) Value() any {
	switch a.kind {
	case kindInt:
		return a.i
	case kindFloat:
		return a.f
	case kindStr:
		return a.s
	case kindBool:
		return a.i != 0
	default:
		return nil
	}
}

// Record is one completed span (or instant event), as stored in the ring
// buffer. It is plain copyable data: fixed-size, no pointers beyond strings.
type Record struct {
	// ID is the span's unique id within its tracer; Parent is the enclosing
	// span's ID (0 for roots).
	ID, Parent uint64
	// Track groups spans for rendering: children inherit the root span's
	// track, so one request/session is one timeline row (the Chrome tid).
	Track uint64
	// Name is the span name, e.g. "refine.round".
	Name string
	// Start is wall-clock nanoseconds since the Unix epoch.
	Start int64
	// Dur is the span duration (0 for instant events).
	Dur time.Duration
	// Instant marks zero-duration point events (Chrome phase "i").
	Instant bool
	// NAttrs attributes are valid in Attrs.
	NAttrs int
	Attrs  [MaxAttrs]Attr
}

// Options parameterizes a Tracer.
type Options struct {
	// Capacity is the ring-buffer size in records; 0 means DefaultCapacity.
	Capacity int
	// OnEnd, when set, is invoked synchronously with every completed record
	// (after it is placed in the ring). The serving daemon uses it to feed
	// span-derived metrics (per-round refinement duration, expert-query
	// counts) without a second instrumentation layer. Must be fast and
	// goroutine-safe; set it before the tracer is shared.
	OnEnd func(Record)
	// SlowCapacity, when > 0, enables the tail-sampled slow ring with that
	// many retained entries: root spans slower than the live p99-tracking
	// threshold (or SlowFloor) have their whole span tree promoted out of
	// the main ring and kept until overwritten by later promotions.
	SlowCapacity int
	// SlowFloor promotes any candidate root span at least this slow,
	// regardless of the adaptive threshold. 0 means adaptive-only.
	SlowFloor time.Duration
	// SlowRootPrefix restricts promotion candidates to root spans whose
	// name starts with this prefix (the serving daemon passes "request.").
	// Empty matches every root span.
	SlowRootPrefix string
}

// Tracer collects spans into a fixed-capacity ring buffer. All methods are
// safe for concurrent use, and safe on a nil receiver (which disables
// tracing at zero cost).
type Tracer struct {
	opts Options

	ids atomic.Uint64 // span-id allocator

	mu  sync.Mutex
	buf []Record // ring storage, len == capacity
	n   uint64   // total records ever emitted

	attrDrops atomic.Uint64

	slow *slowRing // nil unless Options.SlowCapacity > 0

	pool sync.Pool // *spanData
}

// New returns a Tracer with the given options.
func New(opts Options) *Tracer {
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultCapacity
	}
	t := &Tracer{opts: opts, buf: make([]Record, opts.Capacity)}
	if opts.SlowCapacity > 0 {
		t.slow = newSlowRing(opts.SlowCapacity, opts.SlowFloor, opts.SlowRootPrefix)
	}
	t.pool.New = func() any { return new(spanData) }
	return t
}

// Enabled reports whether the tracer records spans (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// spanData is the mutable state of a live span, pooled to keep the enabled
// path allocation-light.
type spanData struct {
	rec   Record
	start time.Time
	done  bool
}

// Span is a handle on a live span. The zero Span is valid and inert: every
// method no-ops (and Child returns another zero Span), so instrumented code
// never branches on whether tracing is on.
type Span struct {
	t *Tracer
	d *spanData
}

// Start begins a root span. On a nil tracer it returns the zero Span.
func (t *Tracer) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	return t.start(name, 0, 0)
}

// StartUnder begins a child of parent when parent is live, else a root span
// of t (which may be nil) — the idiom for code that traces under an
// optional caller-provided span.
func StartUnder(t *Tracer, parent Span, name string) Span {
	if parent.d != nil {
		return parent.Child(name)
	}
	return t.Start(name)
}

func (t *Tracer) start(name string, parent, track uint64) Span {
	d := t.pool.Get().(*spanData)
	id := t.ids.Add(1)
	if track == 0 {
		track = id
	}
	d.rec = Record{ID: id, Parent: parent, Track: track, Name: name}
	d.start = time.Now()
	d.rec.Start = d.start.UnixNano()
	d.done = false
	return Span{t: t, d: d}
}

// Live reports whether the span records anything (false for the zero Span).
func (s Span) Live() bool { return s.d != nil && !s.d.done }

// Child begins a span nested under s, inheriting its track. On a zero (or
// ended) Span it returns the zero Span.
func (s Span) Child(name string) Span {
	if s.d == nil || s.d.done {
		return Span{}
	}
	return s.t.start(name, s.d.rec.ID, s.d.rec.Track)
}

// Instant emits a zero-duration point event under s (or nothing on the zero
// Span).
func (s Span) Instant(name string) {
	if s.d == nil || s.d.done {
		return
	}
	s.t.instant(name, s.d.rec.ID, s.d.rec.Track)
}

// Instant emits a root zero-duration point event. Safe on a nil tracer.
func (t *Tracer) Instant(name string) {
	if t == nil {
		return
	}
	t.instant(name, 0, 0)
}

func (t *Tracer) instant(name string, parent, track uint64) {
	id := t.ids.Add(1)
	if track == 0 {
		track = id
	}
	rec := Record{ID: id, Parent: parent, Track: track, Name: name,
		Start: time.Now().UnixNano(), Instant: true}
	t.emit(&rec)
}

// setAttr appends one attribute, dropping (and counting) past MaxAttrs.
func (s Span) setAttr(a Attr) Span {
	if s.d == nil || s.d.done {
		return s
	}
	if s.d.rec.NAttrs >= MaxAttrs {
		s.t.attrDrops.Add(1)
		return s
	}
	s.d.rec.Attrs[s.d.rec.NAttrs] = a
	s.d.rec.NAttrs++
	return s
}

// Int sets an integer attribute. All attribute setters are chainable and
// no-ops on the zero Span.
func (s Span) Int(key string, v int64) Span {
	return s.setAttr(Attr{Key: key, kind: kindInt, i: v})
}

// Float sets a float attribute.
func (s Span) Float(key string, v float64) Span {
	return s.setAttr(Attr{Key: key, kind: kindFloat, f: v})
}

// Str sets a string attribute.
func (s Span) Str(key, v string) Span {
	return s.setAttr(Attr{Key: key, kind: kindStr, s: v})
}

// Bool sets a boolean attribute.
func (s Span) Bool(key string, v bool) Span {
	var i int64
	if v {
		i = 1
	}
	return s.setAttr(Attr{Key: key, kind: kindBool, i: i})
}

// End completes the span: its record is stamped with the duration and
// placed in the ring buffer. End on the zero Span (or a second End) no-ops.
func (s Span) End() {
	if s.d == nil || s.d.done {
		return
	}
	d := s.d
	d.done = true
	d.rec.Dur = time.Since(d.start)
	s.t.emit(&d.rec)
	d.rec = Record{} // drop string references before pooling
	s.t.pool.Put(d)
}

// emit places one completed record in the ring.
func (t *Tracer) emit(r *Record) {
	t.mu.Lock()
	t.buf[t.n%uint64(len(t.buf))] = *r
	t.n++
	t.mu.Unlock()
	if t.opts.OnEnd != nil {
		t.opts.OnEnd(*r)
	}
	if t.slow != nil {
		t.maybePromote(r)
	}
}

// Len returns the number of records currently held (≤ capacity).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n < uint64(len(t.buf)) {
		return int(t.n)
	}
	return len(t.buf)
}

// Dropped returns how many records have been overwritten by ring overflow.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n <= uint64(len(t.buf)) {
		return 0
	}
	return t.n - uint64(len(t.buf))
}

// AttrsDropped returns how many attributes were discarded for exceeding
// MaxAttrs.
func (t *Tracer) AttrsDropped() uint64 {
	if t == nil {
		return 0
	}
	return t.attrDrops.Load()
}

// Snapshot copies the retained records, oldest first. Safe to call
// concurrently with span emission; the snapshot is a consistent copy of the
// ring at one instant.
func (t *Tracer) Snapshot() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	capU := uint64(len(t.buf))
	if t.n <= capU {
		out := make([]Record, t.n)
		copy(out, t.buf[:t.n])
		return out
	}
	out := make([]Record, capU)
	head := t.n % capU // oldest record position
	copy(out, t.buf[head:])
	copy(out[capU-head:], t.buf[:head])
	return out
}
