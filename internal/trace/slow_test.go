package trace

import (
	"sync"
	"testing"
	"time"
)

// slowTracer builds a tracer with the slow ring armed: a tiny floor means
// every "request." root promotes deterministically, no timing games.
func slowTracer(capacity int, floor time.Duration) *Tracer {
	return New(Options{
		Capacity:       256,
		SlowCapacity:   capacity,
		SlowFloor:      floor,
		SlowRootPrefix: "request.",
	})
}

// TestSlowFloorPromotesWholeTree: a root over the floor keeps its full span
// tree — root plus children — in the slow ring, and the stats account for it.
func TestSlowFloorPromotesWholeTree(t *testing.T) {
	tr := slowTracer(4, time.Nanosecond)
	root := tr.Start("request.score")
	root.Str("id", "req-000042")
	c1 := root.Child("stage.decode")
	c1.End()
	c2 := root.Child("stage.eval")
	g := c2.Child("eval.rule")
	g.End()
	c2.End()
	root.End()

	entries := tr.SlowSnapshot()
	if len(entries) != 1 {
		t.Fatalf("SlowSnapshot returned %d entries, want 1", len(entries))
	}
	e := entries[0]
	if e.Root.Name != "request.score" || e.Root.Parent != 0 {
		t.Fatalf("promoted root = %q (parent %d), want request.score root", e.Root.Name, e.Root.Parent)
	}
	names := map[string]bool{}
	for _, r := range e.Spans {
		names[r.Name] = true
		if r.Track != e.Root.ID {
			t.Fatalf("span %q has track %d, want the root's %d", r.Name, r.Track, e.Root.ID)
		}
	}
	for _, want := range []string{"request.score", "stage.decode", "stage.eval", "eval.rule"} {
		if !names[want] {
			t.Fatalf("promoted tree is missing span %q (got %v)", want, names)
		}
	}
	st := tr.SlowStats()
	if st.Promoted != 1 || st.Observed != 1 || st.Len != 1 || st.Capacity != 4 {
		t.Fatalf("SlowStats = %+v, want 1 promoted of 1 observed in a 4-ring", st)
	}
	if st.Floor != time.Nanosecond || st.Threshold != time.Nanosecond {
		t.Fatalf("SlowStats floor/threshold = %v/%v, want 1ns/1ns", st.Floor, st.Threshold)
	}
}

// TestSlowOnlyPrefixedRootsQualify: child spans and roots outside the prefix
// never promote, however slow.
func TestSlowOnlyPrefixedRootsQualify(t *testing.T) {
	tr := slowTracer(4, time.Nanosecond)
	other := tr.Start("refine.session")  // root, wrong prefix
	child := other.Child("request.fake") // right prefix, not a root
	child.End()
	other.End()
	tr.Instant("request.note") // instants never qualify
	if got := tr.SlowSnapshot(); len(got) != 0 {
		t.Fatalf("promoted %d entries from non-qualifying spans, want 0", len(got))
	}
	if st := tr.SlowStats(); st.Observed != 0 {
		t.Fatalf("Observed = %d, want 0: non-qualifying spans must not feed the threshold", st.Observed)
	}
}

// TestSlowRingOverflow: the ring holds the newest `capacity` promotions;
// Promoted keeps counting, Seq stays monotone oldest-first.
func TestSlowRingOverflow(t *testing.T) {
	tr := slowTracer(2, time.Nanosecond)
	for i := 0; i < 5; i++ {
		sp := tr.Start("request.score")
		sp.End()
	}
	entries := tr.SlowSnapshot()
	if len(entries) != 2 {
		t.Fatalf("ring holds %d entries, want capacity 2", len(entries))
	}
	if entries[0].Seq >= entries[1].Seq {
		t.Fatalf("snapshot out of order: seqs %d, %d", entries[0].Seq, entries[1].Seq)
	}
	st := tr.SlowStats()
	if st.Promoted != 5 || st.Len != 2 {
		t.Fatalf("SlowStats = %+v, want 5 promoted, 2 held", st)
	}
}

// TestSlowAdaptiveThreshold: with no floor, nothing promotes during warmup;
// after warmup a root far beyond the observed p99 does.
func TestSlowAdaptiveThreshold(t *testing.T) {
	tr := slowTracer(8, 0)
	for i := 0; i < 128; i++ { // near-zero-duration roots: warm the quantile
		sp := tr.Start("request.score")
		sp.End()
	}
	// A p99 sampler passes the jitter tail of even uniform traffic — that is
	// the point — but it must stay a tail: the bulk of the fast roots do not
	// promote, and nothing at all promotes before warmup.
	baseline := tr.SlowStats().Promoted
	if baseline > 128/8 {
		t.Fatalf("%d of 128 uniform fast roots promoted; the sampler is not selecting a tail", baseline)
	}
	slow := tr.Start("request.score")
	time.Sleep(20 * time.Millisecond) // orders of magnitude above the observed p99
	slow.End()
	if got := tr.SlowStats().Promoted; got != baseline+1 {
		t.Fatalf("slow outlier was not promoted (promoted %d -> %d)", baseline, got)
	}
	found := false
	for _, e := range tr.SlowSnapshot() {
		if e.Root.Dur >= 10*time.Millisecond {
			found = true
		}
	}
	if !found {
		t.Fatal("promoted entries do not include the slow outlier")
	}
	if thr := tr.SlowStats().Threshold; thr <= 0 || thr > 10*time.Millisecond {
		t.Fatalf("adaptive threshold = %v, want a sub-10ms p99 bound over fast traffic", thr)
	}
}

// TestSlowDisabledAndNil: a tracer without a slow ring, and the nil tracer,
// answer the slow API inertly.
func TestSlowDisabledAndNil(t *testing.T) {
	tr := New(Options{Capacity: 16})
	sp := tr.Start("request.score")
	sp.End()
	if got := tr.SlowSnapshot(); got != nil {
		t.Fatalf("disabled ring returned %v, want nil", got)
	}
	if st := tr.SlowStats(); st != (SlowStats{}) {
		t.Fatalf("disabled ring stats = %+v, want zero", st)
	}
	var nilT *Tracer
	if got := nilT.SlowSnapshot(); got != nil {
		t.Fatalf("nil tracer SlowSnapshot = %v, want nil", got)
	}
	if st := nilT.SlowStats(); st != (SlowStats{}) {
		t.Fatalf("nil tracer SlowStats = %+v, want zero", st)
	}
}

// TestConcurrentSlowPromotion hammers promotion and the read API from many
// goroutines; run under -race this is the slow ring's data-race proof.
func TestConcurrentSlowPromotion(t *testing.T) {
	tr := slowTracer(16, time.Nanosecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Start("request.score")
				c := sp.Child("stage.eval")
				c.End()
				sp.End()
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.SlowSnapshot()
				tr.SlowStats()
			}
		}()
	}
	wg.Wait()
	st := tr.SlowStats()
	if st.Promoted != 8*200 {
		t.Fatalf("Promoted = %d, want %d (every root is over the floor)", st.Promoted, 8*200)
	}
	if st.Len != 16 {
		t.Fatalf("ring holds %d, want full capacity 16", st.Len)
	}
	for _, e := range tr.SlowSnapshot() {
		if e.Root.Name != "request.score" {
			t.Fatalf("promoted root %q, want request.score", e.Root.Name)
		}
	}
}
