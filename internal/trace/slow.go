package trace

import (
	"strings"
	"sync"
	"time"
)

// This file adds tail-sampled slow-request retention to the tracer. The main
// ring buffer is a flight recorder: at production request rates it holds a
// few hundred milliseconds of history, so by the time anyone asks "why was
// that request slow?" the interesting span tree has been overwritten by
// thousands of fast ones. The slow ring fixes that asymmetry: when a ROOT
// span ends with a duration in the tail of the live latency distribution
// (above a self-tracking p99 estimate, or above an explicit floor), its
// whole span tree — root plus every descendant still resident in the main
// ring — is copied into a second, bounded ring that only slow requests can
// enter. The worst requests are therefore always inspectable after the
// fact, no matter how much fast traffic followed them. See DESIGN.md §15.

// DefaultSlowCapacity is the slow-ring size used when Options.SlowCapacity
// is left 0 by callers that enable the ring via EnableSlow semantics; the
// serving layer passes its own configured capacity.
const DefaultSlowCapacity = 64

// slowWarmup is the number of completed candidate roots required before the
// adaptive threshold activates. Below it the latency estimate is noise, so
// only an explicit floor promotes.
const slowWarmup = 64

// slowQuantile is the tail quantile the adaptive threshold tracks.
const slowQuantile = 0.99

// slowBucketBase/slowBucketRatio/slowBucketCount define the exponential
// duration buckets of the streaming latency estimator: 1µs × 1.25^i for 80
// buckets reaches ~47s, with ≤25% quantization error on the threshold.
const (
	slowBucketBase  = time.Microsecond
	slowBucketRatio = 1.25
	slowBucketCount = 80
)

// SlowEntry is one promoted slow request: the root record, the promotion
// threshold in force at the time, and the full span tree (root plus every
// descendant of its track still resident in the main ring, oldest first).
type SlowEntry struct {
	// Seq is the lifetime promotion sequence number (1-based).
	Seq uint64
	// Root is the promoted root span's record.
	Root Record
	// Threshold is the effective promotion threshold when Root was promoted.
	Threshold time.Duration
	// Spans is the full tree in emission order; Spans includes Root.
	Spans []Record
}

// SlowStats summarizes the slow ring for introspection endpoints.
type SlowStats struct {
	// Capacity is the configured ring size (0: slow ring disabled).
	Capacity int
	// Len is the number of entries currently retained.
	Len int
	// Promoted counts promotions over the tracer's lifetime.
	Promoted uint64
	// Observed counts candidate root spans fed to the latency estimator.
	Observed uint64
	// Floor is the configured explicit promotion floor (0: adaptive only).
	Floor time.Duration
	// Threshold is the current effective promotion threshold; 0 while the
	// estimator is still warming up and no floor is set.
	Threshold time.Duration
}

// slowRing is the tail-sampling state hung off a Tracer. All state is under
// one mutex: it is touched once per completed root span (a bucket increment
// and a threshold scan over a fixed 80-entry array), which is noise next to
// the request that just finished.
type slowRing struct {
	capacity int
	floor    time.Duration
	prefix   string

	mu     sync.Mutex
	bounds [slowBucketCount]time.Duration
	counts [slowBucketCount]uint64
	total  uint64 // candidate roots observed
	buf    []SlowEntry
	n      uint64 // entries ever promoted
}

func newSlowRing(capacity int, floor time.Duration, prefix string) *slowRing {
	if capacity <= 0 {
		capacity = DefaultSlowCapacity
	}
	r := &slowRing{capacity: capacity, floor: floor, prefix: prefix,
		buf: make([]SlowEntry, 0, capacity)}
	b := float64(slowBucketBase)
	for i := range r.bounds {
		r.bounds[i] = time.Duration(b)
		b *= slowBucketRatio
	}
	return r
}

// candidate reports whether a completed record is a promotion candidate: a
// finished root span whose name matches the configured prefix.
func (r *slowRing) candidate(rec *Record) bool {
	return rec.Parent == 0 && !rec.Instant &&
		(r.prefix == "" || strings.HasPrefix(rec.Name, r.prefix))
}

// observe feeds one candidate root duration into the latency estimator and
// decides promotion. It returns the effective threshold so the promoted
// entry can record why it qualified.
func (r *slowRing) observe(d time.Duration) (promote bool, thr time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := 0
	for i < slowBucketCount-1 && d >= r.bounds[i] {
		i++
	}
	r.counts[i]++
	r.total++
	thr = r.thresholdLocked()
	if r.floor > 0 && d >= r.floor {
		return true, thr
	}
	if r.total >= slowWarmup {
		if p99 := r.quantileLocked(); d >= p99 {
			return true, thr
		}
	}
	return false, thr
}

// quantileLocked returns the tracked tail quantile as a bucket upper bound.
func (r *slowRing) quantileLocked() time.Duration {
	target := uint64(slowQuantile * float64(r.total))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range r.counts {
		cum += c
		if cum >= target {
			return r.bounds[i]
		}
	}
	return r.bounds[slowBucketCount-1]
}

// thresholdLocked is the effective promotion threshold: the lower of the
// explicit floor and the adaptive estimate, whichever is active.
func (r *slowRing) thresholdLocked() time.Duration {
	var adaptive time.Duration
	if r.total >= slowWarmup {
		adaptive = r.quantileLocked()
	}
	switch {
	case r.floor > 0 && (adaptive == 0 || r.floor < adaptive):
		return r.floor
	default:
		return adaptive
	}
}

// insert places one promoted entry, overwriting the oldest on overflow.
func (r *slowRing) insert(e SlowEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n++
	e.Seq = r.n
	if len(r.buf) < r.capacity {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[(r.n-1)%uint64(r.capacity)] = e
}

// maybePromote runs after a record is placed in the main ring: if it is a
// slow candidate root, the whole track is copied out and retained. Called
// without t.mu held; collectTrack and insert take their own locks (t.mu,
// then slow.mu — never both at once).
func (t *Tracer) maybePromote(r *Record) {
	sr := t.slow
	if sr == nil || !sr.candidate(r) {
		return
	}
	promote, thr := sr.observe(r.Dur)
	if !promote {
		return
	}
	spans := t.collectTrack(r.Track)
	if len(spans) == 0 {
		return // root already overwritten (ring far smaller than tree)
	}
	sr.insert(SlowEntry{Root: *r, Threshold: thr, Spans: spans})
}

// collectTrack copies every resident record of one track, oldest first.
func (t *Tracer) collectTrack(track uint64) []Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	capU := uint64(len(t.buf))
	held := t.n
	if held > capU {
		held = capU
	}
	head := t.n % capU // oldest record position when the ring has wrapped
	if t.n <= capU {
		head = 0
	}
	var out []Record
	for i := uint64(0); i < held; i++ {
		rec := &t.buf[(head+i)%capU]
		if rec.Track == track {
			out = append(out, *rec)
		}
	}
	return out
}

// SlowSnapshot copies the retained slow entries, oldest promotion first.
// Nil on a nil tracer or when the slow ring is disabled.
func (t *Tracer) SlowSnapshot() []SlowEntry {
	if t == nil || t.slow == nil {
		return nil
	}
	r := t.slow
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SlowEntry, 0, len(r.buf))
	if r.n <= uint64(len(r.buf)) {
		out = append(out, r.buf...)
		return out
	}
	head := r.n % uint64(r.capacity)
	out = append(out, r.buf[head:]...)
	out = append(out, r.buf[:head]...)
	return out
}

// SlowStats returns slow-ring counters. Zero on a nil tracer or when the
// ring is disabled.
func (t *Tracer) SlowStats() SlowStats {
	if t == nil || t.slow == nil {
		return SlowStats{}
	}
	r := t.slow
	r.mu.Lock()
	defer r.mu.Unlock()
	return SlowStats{
		Capacity:  r.capacity,
		Len:       len(r.buf),
		Promoted:  r.n,
		Observed:  r.total,
		Floor:     r.floor,
		Threshold: r.thresholdLocked(),
	}
}
