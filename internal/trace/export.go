package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// recordJSON is the JSONL wire form of one record.
type recordJSON struct {
	ID      uint64         `json:"id"`
	Parent  uint64         `json:"parent,omitempty"`
	Track   uint64         `json:"track"`
	Name    string         `json:"name"`
	StartNS int64          `json:"start_ns"`
	DurNS   int64          `json:"dur_ns"`
	Instant bool           `json:"instant,omitempty"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

func attrMap(r *Record) map[string]any {
	if r.NAttrs == 0 {
		return nil
	}
	m := make(map[string]any, r.NAttrs)
	for i := 0; i < r.NAttrs; i++ {
		m[r.Attrs[i].Key] = r.Attrs[i].Value()
	}
	return m
}

// WriteJSONL writes one JSON object per record, one per line — the
// grep/jq-friendly export (GET /trace?format=jsonl on the daemon).
func WriteJSONL(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	for i := range recs {
		r := &recs[i]
		if err := enc.Encode(recordJSON{
			ID: r.ID, Parent: r.Parent, Track: r.Track, Name: r.Name,
			StartNS: r.Start, DurNS: int64(r.Dur), Instant: r.Instant,
			Attrs: attrMap(r),
		}); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one trace_event in the Chrome/Perfetto trace format:
// complete events (ph "X") for spans, instant events (ph "i") for point
// events. Timestamps and durations are microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   uint64         `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the object form of the Chrome trace format (an array of
// events also loads, but the object form carries metadata).
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome writes the records as a Chrome trace_event JSON document
// loadable in chrome://tracing and ui.perfetto.dev. Spans become complete
// ("X") events; instants become thread-scoped instant ("i") events. Each
// root span and its descendants share a tid, so requests and refinement
// sessions render as nested tracks.
func WriteChrome(w io.Writer, recs []Record) error {
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(recs))}
	for i := range recs {
		r := &recs[i]
		ev := chromeEvent{
			Name: r.Name, Cat: "rudolf", Phase: "X",
			TS:  float64(r.Start) / 1e3,
			Dur: float64(r.Dur.Nanoseconds()) / 1e3,
			PID: 1, TID: r.Track,
			Args: attrMap(r),
		}
		if r.Instant {
			ev.Phase = "i"
			ev.Scope = "t"
			ev.Dur = 0
		}
		if ev.Args == nil {
			ev.Args = map[string]any{}
		}
		ev.Args["span_id"] = r.ID
		if r.Parent != 0 {
			ev.Args["parent_id"] = r.Parent
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteChromeTo is WriteChrome over a tracer snapshot, for one-call dumps.
func WriteChromeTo(w io.Writer, t *Tracer) error {
	if t == nil {
		return fmt.Errorf("trace: nil tracer")
	}
	return WriteChrome(w, t.Snapshot())
}
