package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanHierarchyAndAttrs(t *testing.T) {
	tr := New(Options{Capacity: 16})
	root := tr.Start("root")
	root.Int("n", 42).Str("who", "tester").Float("f", 1.5).Bool("ok", true)
	child := root.Child("child")
	child.Int("rule", 3)
	child.Instant("tick")
	child.End()
	root.End()

	recs := tr.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	// Records complete in order: instant, child, root.
	tick, child2, root2 := recs[0], recs[1], recs[2]
	if tick.Name != "tick" || !tick.Instant {
		t.Fatalf("first record = %+v, want instant tick", tick)
	}
	if child2.Name != "child" || child2.Parent != root2.ID {
		t.Fatalf("child parent = %d, want root id %d", child2.Parent, root2.ID)
	}
	if child2.Track != root2.Track || tick.Track != root2.Track {
		t.Fatalf("tracks differ: %d %d %d", tick.Track, child2.Track, root2.Track)
	}
	attrs := attrMap(&root2)
	if attrs["n"] != int64(42) || attrs["who"] != "tester" || attrs["f"] != 1.5 || attrs["ok"] != true {
		t.Fatalf("root attrs = %v", attrs)
	}
}

func TestZeroSpanIsInert(t *testing.T) {
	var s Span
	if s.Live() {
		t.Fatal("zero span reports Live")
	}
	s.Int("a", 1).Str("b", "x").Float("c", 2).Bool("d", true)
	c := s.Child("x")
	if c.Live() {
		t.Fatal("child of zero span is live")
	}
	s.Instant("e")
	s.End()
	s.End() // double End must be safe

	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Start("root")
	if sp.Live() {
		t.Fatal("nil tracer produced a live span")
	}
	tr.Instant("e")
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Snapshot() != nil {
		t.Fatal("nil tracer holds records")
	}
}

func TestDoubleEndAndEndedChild(t *testing.T) {
	tr := New(Options{Capacity: 8})
	sp := tr.Start("a")
	sp.End()
	sp.End() // must not emit twice or corrupt the pool
	if c := sp.Child("b"); c.Live() {
		t.Fatal("child of ended span is live")
	}
	sp.Int("late", 1) // attr after End must no-op
	if got := tr.Len(); got != 1 {
		t.Fatalf("ring holds %d records, want 1", got)
	}
}

func TestRingOverflow(t *testing.T) {
	tr := New(Options{Capacity: 4})
	for i := 0; i < 10; i++ {
		sp := tr.Start(fmt.Sprintf("s%d", i))
		sp.End()
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	recs := tr.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("snapshot holds %d, want 4", len(recs))
	}
	for i, r := range recs {
		want := fmt.Sprintf("s%d", 6+i)
		if r.Name != want {
			t.Fatalf("record %d = %q, want %q (oldest-first order)", i, r.Name, want)
		}
	}
}

func TestAttrOverflowCounted(t *testing.T) {
	tr := New(Options{Capacity: 4})
	sp := tr.Start("s")
	for i := 0; i < MaxAttrs+3; i++ {
		sp.Int(fmt.Sprintf("k%d", i), int64(i))
	}
	sp.End()
	if got := tr.AttrsDropped(); got != 3 {
		t.Fatalf("AttrsDropped = %d, want 3", got)
	}
	recs := tr.Snapshot()
	if recs[0].NAttrs != MaxAttrs {
		t.Fatalf("NAttrs = %d, want %d", recs[0].NAttrs, MaxAttrs)
	}
}

func TestOnEndCallback(t *testing.T) {
	var mu sync.Mutex
	var names []string
	tr := New(Options{Capacity: 8, OnEnd: func(r Record) {
		mu.Lock()
		names = append(names, r.Name)
		mu.Unlock()
	}})
	sp := tr.Start("outer")
	sp.Child("inner").End()
	sp.End()
	mu.Lock()
	defer mu.Unlock()
	if len(names) != 2 || names[0] != "inner" || names[1] != "outer" {
		t.Fatalf("OnEnd saw %v", names)
	}
}

// TestConcurrentEmission hammers one tracer from many goroutines (the serve
// worker-pool shape) while snapshots run concurrently; run with -race.
func TestConcurrentEmission(t *testing.T) {
	tr := New(Options{Capacity: 128})
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = tr.Snapshot()
				_ = tr.Len()
				_ = tr.Dropped()
			}
		}
	}()
	var emitters sync.WaitGroup
	for w := 0; w < workers; w++ {
		emitters.Add(1)
		go func(w int) {
			defer emitters.Done()
			for i := 0; i < perWorker; i++ {
				sp := tr.Start("req")
				sp.Int("worker", int64(w)).Int("i", int64(i))
				c := sp.Child("eval")
				c.Instant("hit")
				c.End()
				sp.End()
			}
		}(w)
	}
	emitters.Wait()
	close(stop)
	wg.Wait()
	// 3 records per iteration: instant + child + root.
	wantTotal := uint64(workers * perWorker * 3)
	if got := tr.Dropped() + uint64(tr.Len()); got != wantTotal {
		t.Fatalf("dropped+held = %d, want %d", got, wantTotal)
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := New(Options{Capacity: 8})
	sp := tr.Start("round")
	sp.Int("round", 1)
	sp.End()
	tr.Instant("invalidate")

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []recordJSON
	for sc.Scan() {
		var r recordJSON
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, r)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0].Name != "round" || lines[0].Attrs["round"] != float64(1) {
		t.Fatalf("line 0 = %+v", lines[0])
	}
	if !lines[1].Instant {
		t.Fatalf("line 1 not marked instant: %+v", lines[1])
	}
}

func TestWriteChrome(t *testing.T) {
	tr := New(Options{Capacity: 8})
	root := tr.Start("refine.round")
	time.Sleep(time.Millisecond)
	child := root.Child("expert.review_generalization")
	child.End()
	child.Instant("never") // ended span: must not emit
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTo(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] != "X" {
			t.Fatalf("phase = %v, want X", ev["ph"])
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Fatalf("ts missing or not numeric: %v", ev["ts"])
		}
	}
	// The child must share the root's tid and carry its parent id.
	childEv, rootEv := doc.TraceEvents[0], doc.TraceEvents[1]
	if childEv["tid"] != rootEv["tid"] {
		t.Fatalf("tids differ: %v vs %v", childEv["tid"], rootEv["tid"])
	}
	args := childEv["args"].(map[string]any)
	rootArgs := rootEv["args"].(map[string]any)
	if args["parent_id"] != rootArgs["span_id"] {
		t.Fatalf("parent_id %v != root span_id %v", args["parent_id"], rootArgs["span_id"])
	}
	if strings.Contains(buf.String(), `"never"`) {
		t.Fatal("instant after End leaked into the trace")
	}
}

// BenchmarkNilTracer proves the disabled path is free: starting, attributing
// and ending spans through a nil tracer must not allocate.
func BenchmarkNilTracer(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartUnder(tr, Span{}, "refine.round")
		sp.Int("round", int64(i)).Float("score", 1.5).Bool("accept", true)
		c := sp.Child("expert.review_generalization")
		c.Int("rule", 3)
		c.End()
		sp.Instant("capture.invalidate")
		sp.End()
	}
}

// BenchmarkEnabledSpan measures the enabled hot path (pool + ring append).
func BenchmarkEnabledSpan(b *testing.B) {
	tr := New(Options{Capacity: 1 << 12})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("refine.round")
		sp.Int("round", int64(i)).Float("score", 1.5)
		c := sp.Child("expert.review_generalization")
		c.End()
		sp.End()
	}
}
