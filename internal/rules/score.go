package rules

import (
	"repro/internal/bitset"
	"repro/internal/relation"
)

// The paper notes that "in practice each rule also includes some threshold
// condition on the score" (the ML risk score in [0, 1000]) alongside the
// semantic conditions its examples focus on. Rules here carry an optional
// minimum-score threshold: a transaction is captured only if it satisfies
// every attribute condition AND its risk score reaches the threshold.
// Thresholds are part of a rule's identity (copied by Clone, compared by
// Equal, printed and parsed as "score >= N") but are never touched by the
// refinement algorithms, matching the paper's treatment of them as static
// side conditions.

// MinScore returns the rule's risk-score threshold (0 = none).
func (r *Rule) MinScore() int16 { return r.minScore }

// SetMinScore sets the risk-score threshold and returns the rule for
// chaining. Values are clamped to [0, relation.MaxScore].
func (r *Rule) SetMinScore(s int16) *Rule {
	if s < 0 {
		s = 0
	}
	if s > relation.MaxScore {
		s = relation.MaxScore
	}
	r.minScore = s
	return r
}

// MatchesAt reports whether transaction i of rel satisfies the rule,
// including the score threshold and any windowed conditions. Matches
// (tuple-only) ignores both; use MatchesAt whenever the transaction's
// position in the relation is available.
func (r *Rule) MatchesAt(rel *relation.Relation, i int) bool {
	if rel.Score(i) < r.minScore {
		return false
	}
	if !r.Matches(rel.Schema(), rel.Tuple(i)) {
		return false
	}
	if len(r.wins) == 0 {
		return true
	}
	return r.windowsAdmitAt(winColumns(rel, r.ruleSpecs()), i)
}

// CapturingRulesAt returns the indices of the rules capturing transaction i
// of rel, score thresholds and windowed conditions included — the
// relation-positional form of CapturingRules.
func (rs *Set) CapturingRulesAt(rel *relation.Relation, i int) []int {
	var out []int
	for ri, r := range rs.rules {
		if r.MatchesAt(rel, i) {
			out = append(out, ri)
		}
	}
	return out
}

// capturesInto adds to out every transaction of rel the rule captures
// (conditions, score threshold and windowed conditions).
func (r *Rule) capturesInto(rel *relation.Relation, out *bitset.Set) {
	s := rel.Schema()
	cs := winColumns(rel, r.ruleSpecs())
	for i := 0; i < rel.Len(); i++ {
		if rel.Score(i) >= r.minScore && r.Matches(s, rel.Tuple(i)) &&
			(len(r.wins) == 0 || r.windowsAdmitAt(cs, i)) {
			out.Add(i)
		}
	}
}
