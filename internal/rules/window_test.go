package rules

import (
	"strings"
	"testing"

	"repro/internal/order"
	"repro/internal/relation"
	"repro/internal/window"
)

// velocitySchema has a time-role attribute (minutes since epoch), a user
// key and an amount, the minimal shape for windowed rules.
func velocitySchema() *relation.Schema {
	return relation.MustSchema(
		relation.Attribute{Name: "minute", Kind: relation.Numeric,
			Domain: order.NewDomain(0, 1_000_000), Time: true},
		relation.Attribute{Name: "user", Kind: relation.Numeric,
			Domain: order.NewDomain(0, 10_000)},
		relation.Attribute{Name: "amount", Kind: relation.Numeric,
			Domain: order.NewDomain(0, 100_000)},
	)
}

func TestWindowFormatParseRoundTrip(t *testing.T) {
	s := velocitySchema()
	for _, text := range []string{
		"COUNT(user, 10m) >= 5",
		"COUNT(user, 2h) <= 3",
		"SUM(amount, user, 12h) >= 1000",
		"DISTINCT(amount, user, 1h) in [2,9]",
		"amount >= 500 && COUNT(user, 10m) >= 5 && score >= 700",
		"COUNT(user, 3d) = 7",
	} {
		r, err := Parse(s, text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		got := r.Format(s)
		if got != text {
			t.Errorf("round trip %q -> %q", text, got)
		}
		again, err := Parse(s, got)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", got, err)
		}
		if !r.Equal(s, again) {
			t.Errorf("Parse(Format(%q)) not Equal to original", text)
		}
	}
	// Durations canonicalize to the largest exact unit.
	if got := MustParse(s, "SUM(amount, user, 24h) >= 1000").Format(s); got != "SUM(amount, user, 1d) >= 1000" {
		t.Errorf("24h formats as %q, want 1d", got)
	}
}

func TestWindowParseErrors(t *testing.T) {
	s := velocitySchema()
	cases := []struct {
		text, want string
	}{
		{"COUNT(nosuch, 10m) >= 5", "unknown attribute"},
		{"COUNT(user, 10x) >= 5", "bad window duration"},
		{"COUNT(user, -5m) >= 5", "bad window duration"},
		{"COUNT(user, 10m, 3h) >= 5", "COUNT takes 2 arguments"},
		{"SUM(amount, user) >= 5", "SUM takes 3 arguments"},
		{"COUNT(user, 10m) >= 5 && COUNT(user, 10m) <= 9", "multiple conditions on aggregate"},
		{"COUNT(user, 10m) >= x", "bad aggregate threshold"},
	}
	for _, c := range cases {
		_, err := Parse(s, c.text)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) = %v, want error containing %q", c.text, err, c.want)
		}
	}
	// A schema without a time attribute refuses windowed atoms with a
	// pointer at the fix.
	_, err := Parse(paperSchema(), "COUNT(amount, 10m) >= 5")
	if err == nil || !strings.Contains(err.Error(), "time attribute") {
		t.Errorf("windowed rule on time-less schema: %v, want time-attribute error", err)
	}
}

// TestWindowedEval checks MatchesAt / Captures / Set.Eval agree and apply
// the velocity condition: a burst of 5 events inside 10 minutes fires, the
// slow drip before it does not.
func TestWindowedEval(t *testing.T) {
	s := velocitySchema()
	rel := relation.New(s)
	// User 1 dribbles one transaction an hour, then bursts 5 in 8 minutes.
	// User 2 stays slow throughout.
	for i := int64(0); i < 5; i++ {
		rel.MustAppend(relation.Tuple{i * 60, 1, 50}, relation.Unlabeled, 500)
		rel.MustAppend(relation.Tuple{i*60 + 30, 2, 50}, relation.Unlabeled, 500)
	}
	burstStart := int64(5 * 60)
	for i := int64(0); i < 5; i++ {
		rel.MustAppend(relation.Tuple{burstStart + i*2, 1, 50}, relation.Unlabeled, 500)
	}
	r := MustParse(s, "COUNT(user, 10m) >= 5")
	rs := NewSet(r)

	capt := r.Captures(rel)
	if got := capt.Elems(nil); len(got) != 1 || got[0] != rel.Len()-1 {
		t.Fatalf("captures %v, want only the burst's last tuple (%d)", got, rel.Len()-1)
	}
	if !r.MatchesAt(rel, rel.Len()-1) {
		t.Error("MatchesAt misses the burst's 5th event")
	}
	if r.MatchesAt(rel, rel.Len()-2) {
		t.Error("MatchesAt fires on the burst's 4th event")
	}
	ev := rs.Eval(rel)
	if !ev.Equal(capt) {
		t.Errorf("Set.Eval disagrees with Rule.Captures: %v vs %v", ev.Elems(nil), capt.Elems(nil))
	}
	if got := rs.CapturingRulesAt(rel, rel.Len()-1); len(got) != 1 || got[0] != 0 {
		t.Errorf("CapturingRulesAt = %v, want [0]", got)
	}
}

func TestWindowedContainsAndNormalize(t *testing.T) {
	s := velocitySchema()
	loose := MustParse(s, "COUNT(user, 10m) >= 3")
	tight := MustParse(s, "COUNT(user, 10m) >= 5")
	plain := MustParse(s, "amount >= 100")
	if !loose.Contains(s, tight) {
		t.Error("COUNT >= 3 should contain COUNT >= 5")
	}
	if tight.Contains(s, loose) {
		t.Error("COUNT >= 5 must not contain COUNT >= 3")
	}
	if plain.Windows() != nil && len(plain.Windows()) != 0 {
		t.Error("plain rule grew windows")
	}
	if tight.Contains(s, plain) {
		t.Error("windowed rule must not contain a window-less rule")
	}
	if !MustParse(s, "true").Contains(s, tight) {
		t.Error("the trivial rule contains every rule")
	}
	// Normalize must not merge rules that differ in windowed conditions.
	rs := NewSet(
		MustParse(s, "amount in [0,50] && COUNT(user, 10m) >= 5"),
		MustParse(s, "amount in [51,100] && COUNT(user, 1h) >= 5"),
	)
	if removed := Normalize(s, rs); removed != 0 || rs.Len() != 2 {
		t.Errorf("Normalize merged across differing windows (removed %d, len %d)", removed, rs.Len())
	}
	// ... but does merge identical-window adjacent fragments.
	rs2 := NewSet(
		MustParse(s, "amount in [0,50] && COUNT(user, 10m) >= 5"),
		MustParse(s, "amount in [51,100] && COUNT(user, 10m) >= 5"),
	)
	if removed := Normalize(s, rs2); removed != 1 || rs2.Len() != 1 {
		t.Errorf("Normalize failed to merge same-window fragments (removed %d, len %d)", removed, rs2.Len())
	}
}

func TestWindowedExplain(t *testing.T) {
	s := velocitySchema()
	rel := relation.New(s)
	for i := int64(0); i < 5; i++ {
		rel.MustAppend(relation.Tuple{100 + i, 1, 50}, relation.Unlabeled, 500)
	}
	rs := NewSet(MustParse(s, "COUNT(user, 10m) >= 5"))
	ex := Explain(rs, rel, rel.Len()-1)
	if len(ex) != 1 || !ex[0].Captured {
		t.Fatalf("explain: %+v, want captured", ex)
	}
	found := false
	for _, c := range ex[0].Conditions {
		if c.Attr == -2 {
			found = true
			if c.Value != "5" || !c.Satisfied {
				t.Errorf("windowed condition explanation = %+v, want value 5 satisfied", c)
			}
		}
	}
	if !found {
		t.Error("explanation lacks the windowed condition entry")
	}
	ex0 := Explain(rs, rel, 0)
	if ex0[0].Captured {
		t.Error("first event of the burst must not be captured (count 1 < 5)")
	}
}

func TestWindowSpecsDedup(t *testing.T) {
	s := velocitySchema()
	rs := NewSet(
		MustParse(s, "COUNT(user, 10m) >= 5"),
		MustParse(s, "COUNT(user, 10m) >= 9 && amount >= 10"),
		MustParse(s, "SUM(amount, user, 24h) >= 1000"),
	)
	specs := rs.WindowSpecs(nil)
	if len(specs) != 2 {
		t.Fatalf("WindowSpecs = %v, want 2 deduped specs", specs)
	}
	if specs[0] != (window.Spec{Agg: window.Count, Key: 1, Val: -1, Window: 10}) {
		t.Errorf("first spec = %+v", specs[0])
	}
}
