package rules

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/order"
	"repro/internal/relation"
	"repro/internal/window"
)

// Windowed conditions extend the paper's per-tuple conjunctions with
// velocity atoms over sliding-window aggregates:
//
//	COUNT(user, 10m) > 5
//	SUM(amount, card, 24h) >= 1000
//	DISTINCT(location, user, 1h) >= 3
//
// A windowed condition constrains the aggregate's value with a closed
// interval, exactly like a numeric attribute condition constrains a tuple
// value; one-sided thresholds use math.MinInt64/MaxInt64 sentinels. The
// aggregate for tuple i is spec's value for tuple i's key at tuple i's
// (clamped) timestamp with tuple i itself already observed, so
// "COUNT(user, 10m) >= 1" fires on a key's first event (see window.ColumnSet).
//
// Per-tuple entry points (Rule.Matches, Set.CapturingRules) cannot see a
// tuple's position in time and therefore ignore windowed conditions; every
// relation-positional entry point (MatchesAt, Captures, Set.Eval,
// CapturingRulesAt, Explain) evaluates them.

// WindowCond is one windowed condition: the aggregate Spec and the closed
// interval its value must fall in.
type WindowCond struct {
	Spec window.Spec
	Iv   order.Interval
}

// noBound sentinels mark one-sided thresholds; Format renders them as
// ">= lo" / "<= hi" instead of interval notation.
const (
	noLowerBound = math.MinInt64
	noUpperBound = math.MaxInt64
)

// Windows returns the rule's windowed conditions; callers must treat the
// slice as read-only.
func (r *Rule) Windows() []WindowCond { return r.wins }

// AddWindow sets the rule's condition on wc.Spec (replacing an existing
// condition on the same spec — a rule holds at most one condition per spec,
// mirroring one condition per attribute) and returns the rule for chaining.
func (r *Rule) AddWindow(wc WindowCond) *Rule {
	for i := range r.wins {
		if r.wins[i].Spec == wc.Spec {
			r.wins[i] = wc
			return r
		}
	}
	r.wins = append(r.wins, wc)
	return r
}

// windowAt returns the rule's condition on the given spec, if any.
func (r *Rule) windowAt(sp window.Spec) (WindowCond, bool) {
	for _, wc := range r.wins {
		if wc.Spec == sp {
			return wc, true
		}
	}
	return WindowCond{}, false
}

// WindowOn returns the rule's windowed condition on the given spec, if any —
// the lookup refinement needs to diff two versions of a rule.
func (r *Rule) WindowOn(sp window.Spec) (WindowCond, bool) { return r.windowAt(sp) }

// RemoveWindow deletes the rule's condition on sp, reporting whether one was
// present. Refinement uses it when a split replaces a condition's window
// length (a new spec) rather than its threshold.
func (r *Rule) RemoveWindow(sp window.Spec) bool {
	for i := range r.wins {
		if r.wins[i].Spec == sp {
			r.wins = append(r.wins[:i], r.wins[i+1:]...)
			return true
		}
	}
	return false
}

// WindowSpecs appends the deduplicated window specs of every rule in the
// set to dst — the spec list an aggregate store must maintain to evaluate
// the set.
func (rs *Set) WindowSpecs(dst []window.Spec) []window.Spec {
	for _, r := range rs.rules {
		for _, wc := range r.wins {
			if !containsSpec(dst, wc.Spec) {
				dst = append(dst, wc.Spec)
			}
		}
	}
	return dst
}

func containsSpec(specs []window.Spec, sp window.Spec) bool {
	for _, s := range specs {
		if s == sp {
			return true
		}
	}
	return false
}

// windowsAdmitAt reports whether tuple i satisfies every windowed condition,
// reading aggregates from the column set (which must cover the rule's
// specs; a missing column admits nothing, failing closed).
func (r *Rule) windowsAdmitAt(cs *window.ColumnSet, i int) bool {
	for _, wc := range r.wins {
		col := cs.Column(wc.Spec)
		if col == nil || !wc.Iv.Contains(col[i]) {
			return false
		}
	}
	return true
}

// winColumns resolves the aggregate columns needed to evaluate the given
// specs over rel: the relation's cached column set when it covers them (all
// specs present and computed at the relation's current length — appends
// since the stamp invalidate it), otherwise a fresh offline replay
// (window.ComputeColumns). The fresh set is cached on the relation only
// when nothing was cached, so it never evicts a serving daemon's live
// stamp.
func winColumns(rel *relation.Relation, specs []window.Spec) *window.ColumnSet {
	if len(specs) == 0 {
		return nil
	}
	if cs, ok := rel.WindowColumns().(*window.ColumnSet); ok && cs != nil && cs.Rows == rel.Len() {
		covered := true
		for _, sp := range specs {
			if cs.Column(sp) == nil {
				covered = false
				break
			}
		}
		if covered {
			return cs
		}
	}
	cs := window.ComputeColumns(rel, specs)
	if rel.WindowColumns() == nil {
		rel.SetWindowColumns(cs)
	}
	return cs
}

// WindowColumnsFor resolves the aggregate columns for the given specs over
// rel with the same cache discipline the evaluators use (see winColumns) —
// the entry point for refinement code that reads aggregates directly.
func WindowColumnsFor(rel *relation.Relation, specs []window.Spec) *window.ColumnSet {
	return winColumns(rel, specs)
}

// ruleSpecs returns the rule's specs (nil for a purely per-tuple rule).
func (r *Rule) ruleSpecs() []window.Spec {
	if len(r.wins) == 0 {
		return nil
	}
	specs := make([]window.Spec, len(r.wins))
	for i, wc := range r.wins {
		specs[i] = wc.Spec
	}
	return specs
}

// windowsEqual reports whether two rules carry the same windowed conditions
// (order-insensitive; a rule has at most one condition per spec).
func windowsEqual(a, b *Rule) bool {
	if len(a.wins) != len(b.wins) {
		return false
	}
	for _, wc := range a.wins {
		other, ok := b.windowAt(wc.Spec)
		if !ok || !wc.Iv.Equal(other.Iv) {
			return false
		}
	}
	return true
}

// windowsContain reports whether r's windowed conditions admit every tuple
// b's admit: every condition of r must be matched by a condition of b on
// the same spec with a contained interval. Conditions over different window
// lengths are different specs and judged incomparable (conservative).
func windowsContain(r, b *Rule) bool {
	for _, wc := range r.wins {
		other, ok := b.windowAt(wc.Spec)
		if !ok || !wc.Iv.ContainsInterval(other.Iv) {
			return false
		}
	}
	return true
}

// FormatWindowCond renders one windowed condition in the rule language —
// refinement logging describes windowed edits with it.
func FormatWindowCond(s *relation.Schema, wc WindowCond) string {
	return formatWindowCond(s, wc)
}

// formatWindowCond renders one windowed condition in the rule language.
func formatWindowCond(s *relation.Schema, wc WindowCond) string {
	atom := FormatWindowAtom(s, wc.Spec)
	iv := wc.Iv
	switch {
	case iv.IsEmpty():
		return atom + " in ⊥"
	case iv.Lo == iv.Hi:
		return fmt.Sprintf("%s = %d", atom, iv.Lo)
	case iv.Lo == noLowerBound:
		return fmt.Sprintf("%s <= %d", atom, iv.Hi)
	case iv.Hi == noUpperBound:
		return fmt.Sprintf("%s >= %d", atom, iv.Lo)
	default:
		return fmt.Sprintf("%s in [%d,%d]", atom, iv.Lo, iv.Hi)
	}
}

// FormatWindowAtom renders the aggregate itself: COUNT(key, dur) or
// AGG(val, key, dur).
func FormatWindowAtom(s *relation.Schema, sp window.Spec) string {
	dur := formatDuration(sp.Window)
	if sp.Agg == window.Count {
		return fmt.Sprintf("COUNT(%s, %s)", s.Attr(sp.Key).Name, dur)
	}
	return fmt.Sprintf("%s(%s, %s, %s)", sp.Agg, s.Attr(sp.Val).Name, s.Attr(sp.Key).Name, dur)
}

func formatDuration(minutes int64) string {
	switch {
	case minutes%(24*60) == 0:
		return fmt.Sprintf("%dd", minutes/(24*60))
	case minutes%60 == 0:
		return fmt.Sprintf("%dh", minutes/60)
	default:
		return fmt.Sprintf("%dm", minutes)
	}
}

// parseDuration parses "10m", "24h", "7d" into minutes.
func parseDuration(text string) (int64, error) {
	text = strings.TrimSpace(text)
	if len(text) < 2 {
		return 0, fmt.Errorf("rules: bad window duration %q (want e.g. 10m, 24h, 7d)", text)
	}
	unit := int64(1)
	switch text[len(text)-1] {
	case 'm':
	case 'h':
		unit = 60
	case 'd':
		unit = 24 * 60
	default:
		return 0, fmt.Errorf("rules: bad window duration %q (unit must be m, h or d)", text)
	}
	n, err := strconv.ParseInt(text[:len(text)-1], 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("rules: bad window duration %q (want a positive integer count)", text)
	}
	return n * unit, nil
}

// isWindowAtom reports whether a condition's left-hand side is a windowed
// aggregate atom.
func isWindowAtom(name string) bool {
	return (strings.HasPrefix(name, "COUNT(") ||
		strings.HasPrefix(name, "SUM(") ||
		strings.HasPrefix(name, "DISTINCT(")) && strings.HasSuffix(name, ")")
}

// parseWindowAtom parses "COUNT(key, dur)" / "SUM(val, key, dur)" /
// "DISTINCT(val, key, dur)" into a spec, validating it against the schema.
func parseWindowAtom(s *relation.Schema, name string) (window.Spec, error) {
	var sp window.Spec
	open := strings.Index(name, "(")
	switch name[:open] {
	case "COUNT":
		sp.Agg = window.Count
	case "SUM":
		sp.Agg = window.Sum
	case "DISTINCT":
		sp.Agg = window.Distinct
	}
	if s.TimeAttr() < 0 {
		return sp, fmt.Errorf("rules: windowed condition %q needs a time attribute, but the schema has none (mark one numeric attribute with the time role)", name)
	}
	args := strings.Split(name[open+1:len(name)-1], ",")
	wantArgs := 3
	if sp.Agg == window.Count {
		wantArgs = 2
	}
	if len(args) != wantArgs {
		return sp, fmt.Errorf("rules: %s takes %d arguments, got %d in %q", sp.Agg, wantArgs, len(args), name)
	}
	resolve := func(arg string) (int, error) {
		arg = strings.TrimSpace(arg)
		a, ok := s.Index(arg)
		if !ok {
			return 0, fmt.Errorf("rules: unknown attribute %q in %q", arg, name)
		}
		return a, nil
	}
	var err error
	sp.Val = -1
	if sp.Agg != window.Count {
		if sp.Val, err = resolve(args[0]); err != nil {
			return sp, err
		}
		args = args[1:]
	}
	if sp.Key, err = resolve(args[0]); err != nil {
		return sp, err
	}
	if sp.Window, err = parseDuration(args[1]); err != nil {
		return sp, err
	}
	if err := sp.Validate(s); err != nil {
		return sp, fmt.Errorf("rules: %q: %w", name, err)
	}
	return sp, nil
}

// parseWindowCond parses a full windowed condition from its already-split
// (name, op, rest) parts. Threshold values are plain integers (aggregate
// values have no attribute formatting).
func parseWindowCond(s *relation.Schema, name, op, rest, text string) (WindowCond, error) {
	sp, err := parseWindowAtom(s, name)
	if err != nil {
		return WindowCond{}, err
	}
	if op == "in" {
		body := strings.TrimSpace(rest)
		if !strings.HasPrefix(body, "[") || !strings.HasSuffix(body, "]") {
			return WindowCond{}, fmt.Errorf("rules: malformed interval in %q", text)
		}
		lohi := strings.SplitN(body[1:len(body)-1], ",", 2)
		if len(lohi) != 2 {
			return WindowCond{}, fmt.Errorf("rules: malformed interval in %q", text)
		}
		lo, err1 := strconv.ParseInt(strings.TrimSpace(lohi[0]), 10, 64)
		hi, err2 := strconv.ParseInt(strings.TrimSpace(lohi[1]), 10, 64)
		if err1 != nil || err2 != nil || lo > hi {
			return WindowCond{}, fmt.Errorf("rules: bad interval bounds in %q", text)
		}
		return WindowCond{Spec: sp, Iv: order.Interval{Lo: lo, Hi: hi}}, nil
	}
	v, err := strconv.ParseInt(rest, 10, 64)
	if err != nil {
		return WindowCond{}, fmt.Errorf("rules: bad aggregate threshold in %q: %v", text, err)
	}
	var iv order.Interval
	switch op {
	case "=":
		iv = order.Point(v)
	case "<=":
		iv = order.Interval{Lo: noLowerBound, Hi: v}
	case "<":
		iv = order.Interval{Lo: noLowerBound, Hi: v - 1}
	case ">=":
		iv = order.Interval{Lo: v, Hi: noUpperBound}
	case ">":
		iv = order.Interval{Lo: v + 1, Hi: noUpperBound}
	default:
		return WindowCond{}, fmt.Errorf("rules: unknown operator %q in %q", op, text)
	}
	return WindowCond{Spec: sp, Iv: iv}, nil
}
