package rules

import (
	"testing"

	"repro/internal/relation"
)

// scoredFixture builds a relation where tuples differ only in risk score.
func scoredFixture(t *testing.T) (*relation.Schema, *relation.Relation) {
	t.Helper()
	s := paperSchema()
	rel := relation.New(s)
	typeOnt, locOnt := s.Attr(2).Ontology, s.Attr(3).Ontology
	for _, score := range []int16{100, 500, 800, 1000} {
		rel.MustAppend(relation.Tuple{
			600, 200,
			int64(typeOnt.MustLookup("Online, no CCV")),
			int64(locOnt.MustLookup("Online Store")),
		}, relation.Unlabeled, score)
	}
	return s, rel
}

func TestMinScoreAccessors(t *testing.T) {
	s := paperSchema()
	r := NewRule(s)
	if r.MinScore() != 0 {
		t.Error("fresh rule has a threshold")
	}
	r.SetMinScore(700)
	if r.MinScore() != 700 {
		t.Error("SetMinScore did not stick")
	}
	r.SetMinScore(-5)
	if r.MinScore() != 0 {
		t.Error("negative threshold not clamped")
	}
	r.SetMinScore(5000)
	if r.MinScore() != relation.MaxScore {
		t.Error("oversized threshold not clamped")
	}
}

func TestScoreThresholdGatesCapture(t *testing.T) {
	s, rel := scoredFixture(t)
	r := MustParse(s, "amount >= $100").SetMinScore(600)
	got := r.Captures(rel).Elems(nil)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("captures = %v, want [2 3] (scores 800 and 1000)", got)
	}
	// Matches (tuple-only) ignores the threshold; MatchesAt honors it.
	if !r.Matches(s, rel.Tuple(0)) {
		t.Error("Matches should ignore the score threshold")
	}
	if r.MatchesAt(rel, 0) {
		t.Error("MatchesAt should honor the score threshold")
	}
	if !r.MatchesAt(rel, 3) {
		t.Error("MatchesAt rejected a qualifying transaction")
	}
}

func TestScoreThresholdInSetEval(t *testing.T) {
	s, rel := scoredFixture(t)
	rs := NewSet(
		MustParse(s, "amount >= $100").SetMinScore(900),
		MustParse(s, "amount >= $100").SetMinScore(400),
	)
	got := rs.Eval(rel)
	if got.Has(0) || !got.Has(1) || !got.Has(2) || !got.Has(3) {
		t.Errorf("Eval = %v", got.Elems(nil))
	}
	if idx := rs.CapturingRulesAt(rel, 1); len(idx) != 1 || idx[0] != 1 {
		t.Errorf("CapturingRulesAt(1) = %v, want [1]", idx)
	}
	if idx := rs.CapturingRulesAt(rel, 3); len(idx) != 2 {
		t.Errorf("CapturingRulesAt(3) = %v, want both rules", idx)
	}
}

func TestScoreThresholdFormatParse(t *testing.T) {
	s := paperSchema()
	r := MustParse(s, "amount >= $110 && score >= 700")
	if r.MinScore() != 700 {
		t.Fatalf("parsed threshold = %d", r.MinScore())
	}
	text := r.Format(s)
	if text != "amount >= $110 && score >= 700" {
		t.Errorf("Format = %q", text)
	}
	r2, err := Parse(s, text)
	if err != nil || !r.Equal(s, r2) {
		t.Errorf("round trip failed: %v", err)
	}
	// A bare score rule.
	r3 := MustParse(s, "score >= 950")
	if r3.MinScore() != 950 {
		t.Errorf("bare score rule threshold = %d", r3.MinScore())
	}
	if got := r3.Format(s); got != "score >= 950" {
		t.Errorf("bare score Format = %q", got)
	}
}

func TestScoreThresholdParseErrors(t *testing.T) {
	s := paperSchema()
	for name, text := range map[string]string{
		"wrong op":   "score = 700",
		"wrong op 2": "score <= 700",
		"negative":   "score >= -1",
		"too big":    "score >= 1001",
		"garbage":    "score >= x",
		"duplicate":  "score >= 1 && score >= 2",
	} {
		if _, err := Parse(s, text); err == nil {
			t.Errorf("%s: Parse(%q) succeeded", name, text)
		}
	}
}

func TestScoreThresholdEqualityAndContainment(t *testing.T) {
	s := paperSchema()
	a := MustParse(s, "amount >= $100").SetMinScore(500)
	b := MustParse(s, "amount >= $100").SetMinScore(500)
	c := MustParse(s, "amount >= $100").SetMinScore(600)
	if !a.Equal(s, b) {
		t.Error("equal thresholds compare unequal")
	}
	if a.Equal(s, c) {
		t.Error("different thresholds compare equal")
	}
	// Containment: a lower-threshold rule contains a higher-threshold one.
	if !a.Contains(s, c) {
		t.Error("threshold 500 should contain threshold 600")
	}
	if c.Contains(s, a) {
		t.Error("threshold 600 should not contain threshold 500")
	}
	// Clone preserves the threshold.
	if a.Clone().MinScore() != 500 {
		t.Error("Clone dropped the threshold")
	}
}

func TestReservedAttributeNames(t *testing.T) {
	for _, name := range []string{"score", "label"} {
		if _, err := relation.NewSchema(relation.Attribute{
			Name: name, Kind: relation.Numeric,
		}); err == nil {
			t.Errorf("schema accepted reserved attribute name %q", name)
		}
	}
}
