package rules

import (
	"strings"
	"testing"

	"repro/internal/order"
)

func TestFormatStyles(t *testing.T) {
	s := paperSchema()
	for _, tc := range []struct {
		rule string
		want string
	}{
		{"time in [18:00,18:05] && amount >= $110", "time in [18:00,18:05] && amount >= $110"},
		{"amount <= $50", "amount <= $50"},
		{"amount = $42", "amount = $42"},
		{`location <= "Gas Station"`, `location <= "Gas Station"`},
		{`location = "Gas Station A"`, `location = "Gas Station A"`},
		{"true", "true"},
		{"", "true"},
	} {
		r := MustParse(s, tc.rule)
		if got := r.Format(s); got != tc.want {
			t.Errorf("Format(%q) = %q, want %q", tc.rule, got, tc.want)
		}
	}
}

func TestFormatEmptyRule(t *testing.T) {
	s := paperSchema()
	r := NewRule(s).SetCond(1, NumericCond(order.Empty()))
	if got := r.Format(s); got != "false" {
		t.Errorf("Format(empty) = %q, want false", got)
	}
}

func TestParseOperators(t *testing.T) {
	s := paperSchema()
	amount := s.MustIndex("amount")
	for _, tc := range []struct {
		text string
		want order.Interval
	}{
		{"amount = $50", order.Point(50)},
		{"amount <= $50", order.Interval{Lo: 0, Hi: 50}},
		{"amount < $50", order.Interval{Lo: 0, Hi: 49}},
		{"amount >= $50", order.Interval{Lo: 50, Hi: 100000}},
		{"amount > $50", order.Interval{Lo: 51, Hi: 100000}},
		{"amount in [$10,$20]", order.Interval{Lo: 10, Hi: 20}},
	} {
		r, err := Parse(s, tc.text)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.text, err)
			continue
		}
		if got := r.Cond(amount).Iv; !got.Equal(tc.want) {
			t.Errorf("Parse(%q) interval = %v, want %v", tc.text, got, tc.want)
		}
	}
}

func TestParseConjunction(t *testing.T) {
	s := paperSchema()
	r, err := Parse(s, `time in [20:45,21:15] && amount >= $40 && location <= "Gas Station" && type <= "Offline"`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Arity(); i++ {
		if r.Cond(i).IsTrivial(s.Attr(i)) {
			t.Errorf("condition on %s unexpectedly trivial", s.Attr(i).Name)
		}
	}
}

func TestParseErrors(t *testing.T) {
	s := paperSchema()
	for name, text := range map[string]string{
		"unknown attr":          "ghost = 5",
		"unknown concept":       `location = "Mars"`,
		"bad op on categorical": `location >= "Gas Station"`,
		"bad interval":          "amount in [5",
		"interval one bound":    "amount in [5]",
		"inverted interval":     "amount in [$20,$10]",
		"bad value":             "amount = x7",
		"no operator":           "amount",
		"duplicate attribute":   "amount = $5 && amount = $6",
		"empty condition":       "amount = $5 && ",
	} {
		if _, err := Parse(s, text); err == nil {
			t.Errorf("%s: Parse(%q) succeeded, want error", name, text)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	s := paperSchema()
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on bad rule")
		}
	}()
	MustParse(s, "ghost = 1")
}

// TestParseFormatRoundTrip verifies Format output re-parses to an equal rule.
func TestParseFormatRoundTrip(t *testing.T) {
	s := paperSchema()
	for _, text := range []string{
		"time in [18:00,18:05] && amount >= $110",
		"time in [18:55,19:15] && amount >= $110",
		`time in [20:45,21:15] && amount >= $40 && location = "Gas Station A"`,
		`type <= "Online" && location <= "Retail"`,
		"amount = $7",
		"true",
	} {
		r := MustParse(s, text)
		r2, err := Parse(s, r.Format(s))
		if err != nil {
			t.Errorf("re-parse of %q failed: %v", r.Format(s), err)
			continue
		}
		if !r.Equal(s, r2) {
			t.Errorf("round trip of %q: got %q", text, r2.Format(s))
		}
	}
}

func TestSetFormat(t *testing.T) {
	s := paperSchema()
	rs := NewSet(
		MustParse(s, "amount >= $110"),
		MustParse(s, `location <= "Gas Station"`),
	)
	got := rs.Format(s)
	if !strings.Contains(got, "1) amount >= $110") || !strings.Contains(got, `2) location <= "Gas Station"`) {
		t.Errorf("Set.Format = %q", got)
	}
}
