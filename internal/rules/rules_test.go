package rules

import (
	"math/rand"
	"testing"

	"repro/internal/ontology"
	"repro/internal/order"
	"repro/internal/relation"
)

// fixture builds the paper's Figure 1 / Figure 2 setting: the type and
// location ontologies, the four-attribute schema, the existing rule set and
// the new-day transaction relation.
type fixture struct {
	schema *relation.Schema
	rel    *relation.Relation
	rules  *Set
}

func locationOntology() *ontology.Ontology {
	return ontology.NewBuilder("location").
		Add("World").
		Add("Gas Station", "World").
		Add("Retail", "World").
		Add("Gas Station A", "Gas Station").
		Add("Gas Station B", "Gas Station").
		Add("Online Store", "Retail").
		Add("Supermarket", "Retail").
		MustBuild()
}

func paperSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Attribute{Name: "time", Kind: relation.Numeric,
			Domain: order.NewDomain(0, 1439), Format: order.FormatTimeOfDay},
		relation.Attribute{Name: "amount", Kind: relation.Numeric,
			Domain: order.NewDomain(0, 100000), Format: order.FormatMoney},
		relation.Attribute{Name: "type", Kind: relation.Categorical,
			Ontology: ontology.PaperTypeOntology()},
		relation.Attribute{Name: "location", Kind: relation.Categorical,
			Ontology: locationOntology()},
	)
}

func hhmm(h, m int64) int64 { return h*60 + m }

// newFixture loads Figure 2's transactions and Figure 1's rules.
func newFixture(t *testing.T) *fixture {
	t.Helper()
	s := paperSchema()
	typeOnt := s.Attr(2).Ontology
	locOnt := s.Attr(3).Ontology
	ty := func(n string) int64 { return int64(typeOnt.MustLookup(n)) }
	loc := func(n string) int64 { return int64(locOnt.MustLookup(n)) }

	rel := relation.New(s)
	add := func(h, m, amt int64, typ, location string, lab relation.Label) {
		rel.MustAppend(relation.Tuple{hhmm(h, m), amt, ty(typ), loc(location)}, lab, 500)
	}
	// The ten transactions of Figure 2, in order.
	add(18, 2, 107, "Online, no CCV", "Online Store", relation.Fraud)
	add(18, 3, 106, "Online, no CCV", "Online Store", relation.Fraud)
	add(18, 4, 112, "Online, with CCV", "Online Store", relation.Unlabeled)
	add(19, 8, 114, "Online, no CCV", "Online Store", relation.Fraud)
	add(19, 10, 117, "Online, with CCV", "Online Store", relation.Unlabeled)
	add(20, 53, 46, "Offline, without PIN", "Gas Station B", relation.Fraud)
	add(20, 54, 48, "Offline, without PIN", "Gas Station B", relation.Fraud)
	add(20, 55, 44, "Offline, without PIN", "Gas Station B", relation.Fraud)
	add(20, 58, 47, "Offline, with PIN", "Supermarket", relation.Unlabeled)
	add(21, 1, 49, "Offline, with PIN", "Gas Station A", relation.Unlabeled)

	// Figure 1's existing rules: attacks in the first and last few minutes
	// of 6pm over $110 at an online store, and a gas-station pattern:
	// 1) Time ∈ [18:00,18:05] ∧ Amt ≥ 110
	// 2) Time ∈ [18:55,19:00] ∧ Amt ≥ 110
	// 3) Time ∈ [20:45,21:15] ∧ Amt ≥ 40 ∧ Location = Gas Station A
	// (Rule 2's window must end before 19:08 for Example 2.2's claim that it
	// captures nothing; Example 4.4's distance of 53 = |18:55 − 18:02| pins
	// its start.)
	rs := NewSet(
		MustParse(s, "time in [18:00,18:05] && amount >= $110"),
		MustParse(s, "time in [18:55,19:00] && amount >= $110"),
		MustParse(s, `time in [20:45,21:15] && amount >= $40 && location = "Gas Station A"`),
	)
	return &fixture{schema: s, rel: rel, rules: rs}
}

// TestPaperExample22 checks Example 2.2: rule 1 captures only the 3rd tuple,
// rule 2 captures nothing, rule 3 captures only the 10th tuple, and none of
// the fraudulent transactions are captured by the existing rules.
func TestPaperExample22(t *testing.T) {
	f := newFixture(t)
	r1 := f.rules.Rule(0).Captures(f.rel)
	if got := r1.Elems(nil); len(got) != 1 || got[0] != 2 {
		t.Errorf("rule 1 captures %v, want [2] (the 3rd tuple)", got)
	}
	r3 := f.rules.Rule(2).Captures(f.rel)
	if got := r3.Elems(nil); len(got) != 1 || got[0] != 9 {
		t.Errorf("rule 3 captures %v, want [9] (the 10th tuple)", got)
	}
	// No fraudulent transaction is captured by the existing rules.
	all := f.rules.Eval(f.rel)
	for _, i := range f.rel.Indices(relation.Fraud) {
		if all.Has(i) {
			t.Errorf("existing rules capture fraudulent tuple %d, but Example 2.2 says none are captured", i)
		}
	}
}

func TestRuleMatchesConditionKinds(t *testing.T) {
	f := newFixture(t)
	s := f.schema
	gs := MustParse(s, `location <= "Gas Station"`)
	for i := 0; i < f.rel.Len(); i++ {
		want := i >= 5 && i != 8 // tuples at Gas Station A/B
		if got := gs.Matches(s, f.rel.Tuple(i)); got != want {
			t.Errorf("tuple %d: location <= Gas Station = %v, want %v", i, got, want)
		}
	}
}

func TestTrivialAndEmptyRules(t *testing.T) {
	f := newFixture(t)
	trivial := NewRule(f.schema)
	if got := trivial.Captures(f.rel).Count(); got != f.rel.Len() {
		t.Errorf("trivial rule captures %d, want all %d", got, f.rel.Len())
	}
	if trivial.IsEmpty(f.schema) {
		t.Error("trivial rule reported empty")
	}
	empty := trivial.Clone().SetCond(0, NumericCond(order.Empty()))
	if !empty.IsEmpty(f.schema) {
		t.Error("rule with empty condition not reported empty")
	}
	if got := empty.Captures(f.rel).Count(); got != 0 {
		t.Errorf("empty rule captures %d, want 0", got)
	}
}

func TestRuleCloneIndependence(t *testing.T) {
	f := newFixture(t)
	r := f.rules.Rule(0)
	c := r.Clone()
	c.SetCond(1, NumericCond(order.Point(5)))
	if r.Cond(1).Iv.Equal(order.Point(5)) {
		t.Error("Clone shares condition storage")
	}
	if !r.Equal(f.schema, f.rules.Rule(0)) {
		t.Error("original rule mutated")
	}
}

func TestRuleContains(t *testing.T) {
	f := newFixture(t)
	s := f.schema
	wide := MustParse(s, `time in [18:00,19:00] && location <= "Gas Station"`)
	narrow := MustParse(s, `time in [18:10,18:20] && location = "Gas Station A"`)
	if !wide.Contains(s, narrow) {
		t.Error("wide should contain narrow")
	}
	if narrow.Contains(s, wide) {
		t.Error("narrow should not contain wide")
	}
	if !NewRule(s).Contains(s, wide) {
		t.Error("trivial rule should contain everything")
	}
}

func TestSetOperations(t *testing.T) {
	f := newFixture(t)
	rs := f.rules.Clone()
	if rs.Len() != 3 {
		t.Fatalf("Len = %d", rs.Len())
	}
	n := NewRule(f.schema)
	idx := rs.Add(n)
	if idx != 3 || rs.Len() != 4 || rs.Rule(3) != n {
		t.Error("Add wrong")
	}
	rs.Remove(0)
	if rs.Len() != 3 || rs.Rule(2) != n {
		t.Error("Remove wrong")
	}
	r2 := NewRule(f.schema).SetCond(1, NumericCond(order.Point(1)))
	rs.Replace(0, r2)
	if rs.Rule(0) != r2 {
		t.Error("Replace wrong")
	}
	if len(rs.Rules()) != rs.Len() {
		t.Error("Rules() length mismatch")
	}
}

// TestSetIndexOf pins the identity-based rule tracking that replaced the
// stale positional indices: IndexOf matches by pointer (not by Equal), its
// result shifts with removals, and a removed or equal-but-distinct rule
// resolves to -1.
func TestSetIndexOf(t *testing.T) {
	s := paperSchema()
	a := MustParse(s, "amount >= $110")
	b := MustParse(s, "time in [18:00,18:05]")
	c := MustParse(s, "amount >= $50")
	rs := NewSet(a, b, c)

	for i, r := range []*Rule{a, b, c} {
		if got := rs.IndexOf(r); got != i {
			t.Errorf("IndexOf(rule %d) = %d", i, got)
		}
	}
	// Identity, not structural equality: an equal clone is a different rule.
	if got := rs.IndexOf(a.Clone()); got != -1 {
		t.Errorf("IndexOf(clone) = %d, want -1", got)
	}
	// Removal shifts later rules and unmaps the removed one.
	rs.Remove(0)
	if got := rs.IndexOf(a); got != -1 {
		t.Errorf("IndexOf(removed) = %d, want -1", got)
	}
	if rs.IndexOf(b) != 0 || rs.IndexOf(c) != 1 {
		t.Errorf("indices after removal = %d, %d; want 0, 1", rs.IndexOf(b), rs.IndexOf(c))
	}
	// Nil and empty-set lookups are well-defined.
	if got := rs.IndexOf(nil); got != -1 {
		t.Errorf("IndexOf(nil) = %d, want -1", got)
	}
	if got := NewSet().IndexOf(a); got != -1 {
		t.Errorf("empty set IndexOf = %d, want -1", got)
	}
}

func TestSetCloneDeep(t *testing.T) {
	f := newFixture(t)
	c := f.rules.Clone()
	c.Rule(0).SetCond(1, NumericCond(order.Point(1)))
	if f.rules.Rule(0).Cond(1).Iv.Equal(order.Point(1)) {
		t.Error("Set.Clone is shallow")
	}
}

func TestSetEvalIsUnionOfCaptures(t *testing.T) {
	f := newFixture(t)
	union := f.rules.Rule(0).Captures(f.rel)
	for i := 1; i < f.rules.Len(); i++ {
		union.UnionWith(f.rules.Rule(i).Captures(f.rel))
	}
	if !f.rules.Eval(f.rel).Equal(union) {
		t.Error("Eval != union of per-rule captures")
	}
}

func TestCapturingRules(t *testing.T) {
	f := newFixture(t)
	// Tuple 2 (18:04, $112) is captured by rule 0 only.
	got := f.rules.CapturingRules(f.schema, f.rel.Tuple(2))
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("CapturingRules(tuple 2) = %v, want [0]", got)
	}
	// An uncaptured tuple yields nothing.
	if got := f.rules.CapturingRules(f.schema, f.rel.Tuple(0)); got != nil {
		t.Errorf("CapturingRules(tuple 0) = %v, want none", got)
	}
	// Overlapping rules both appear.
	rs := f.rules.Clone()
	rs.Add(MustParse(f.schema, "amount >= $100"))
	got = rs.CapturingRules(f.schema, f.rel.Tuple(2))
	if len(got) != 2 {
		t.Errorf("CapturingRules with overlap = %v, want two rules", got)
	}
}

// TestRuleEvalMatchesBruteForce is a property test: rule evaluation via
// Captures agrees with direct per-tuple Matches for random rules over random
// tuples.
func TestRuleEvalMatchesBruteForce(t *testing.T) {
	f := newFixture(t)
	s := f.schema
	rng := rand.New(rand.NewSource(42))
	rel := relation.New(s)
	typeOnt, locOnt := s.Attr(2).Ontology, s.Attr(3).Ontology
	tLeaves, lLeaves := typeOnt.Leaves(), locOnt.Leaves()
	for i := 0; i < 300; i++ {
		rel.MustAppend(relation.Tuple{
			int64(rng.Intn(1440)),
			int64(rng.Intn(1000)),
			int64(tLeaves[rng.Intn(len(tLeaves))]),
			int64(lLeaves[rng.Intn(len(lLeaves))]),
		}, relation.Label(rng.Intn(3)), int16(rng.Intn(1001)))
	}
	for trial := 0; trial < 100; trial++ {
		r := NewRule(s)
		if rng.Intn(2) == 0 {
			lo := int64(rng.Intn(1440))
			r.SetCond(0, NumericCond(order.Interval{Lo: lo, Hi: lo + int64(rng.Intn(200))}))
		}
		if rng.Intn(2) == 0 {
			r.SetCond(1, NumericCond(order.Interval{Lo: int64(rng.Intn(500)), Hi: 100000}))
		}
		if rng.Intn(2) == 0 {
			r.SetCond(2, ConceptCond(ontology.Concept(rng.Intn(typeOnt.Len()))))
		}
		if rng.Intn(2) == 0 {
			r.SetCond(3, ConceptCond(ontology.Concept(rng.Intn(locOnt.Len()))))
		}
		cap := r.Captures(rel)
		for i := 0; i < rel.Len(); i++ {
			if cap.Has(i) != r.Matches(s, rel.Tuple(i)) {
				t.Fatalf("trial %d: Captures and Matches disagree on tuple %d", trial, i)
			}
		}
	}
}
