package rules

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/order"
	"repro/internal/relation"
)

// Format renders the rule in the paper's style with ASCII operators,
// omitting trivial conditions: e.g.
//
//	time in [18:00,18:05] && amount >= 110 && location <= "Gas Station"
//
// A rule whose conditions are all trivial renders as "true"; a rule with an
// empty condition renders as "false".
func (r *Rule) Format(s *relation.Schema) string {
	var parts []string
	for i, c := range r.conds {
		a := s.Attr(i)
		if c.IsEmpty(a) {
			return "false"
		}
		if c.IsTrivial(a) {
			continue
		}
		parts = append(parts, formatCond(a, c))
	}
	for _, wc := range r.wins {
		if wc.Iv.IsEmpty() {
			return "false"
		}
		parts = append(parts, formatWindowCond(s, wc))
	}
	if r.minScore > 0 {
		parts = append(parts, fmt.Sprintf("score >= %d", r.minScore))
	}
	if len(parts) == 0 {
		return "true"
	}
	return strings.Join(parts, " && ")
}

func formatCond(a relation.Attribute, c Condition) string {
	if a.Kind == relation.Categorical {
		if a.Ontology.IsLeaf(c.C) {
			return fmt.Sprintf("%s = %q", a.Name, a.Ontology.ConceptName(c.C))
		}
		return fmt.Sprintf("%s <= %q", a.Name, a.Ontology.ConceptName(c.C))
	}
	iv, d, f := c.Iv, a.Domain, a.Format
	switch {
	case iv.Lo == iv.Hi:
		return fmt.Sprintf("%s = %s", a.Name, f.FormatValue(iv.Lo))
	case iv.Lo == d.Min:
		return fmt.Sprintf("%s <= %s", a.Name, f.FormatValue(iv.Hi))
	case iv.Hi == d.Max:
		return fmt.Sprintf("%s >= %s", a.Name, f.FormatValue(iv.Lo))
	default:
		return fmt.Sprintf("%s in [%s,%s]", a.Name, f.FormatValue(iv.Lo), f.FormatValue(iv.Hi))
	}
}

// Parse parses the textual rule form produced by Format. The grammar is a
// conjunction of conditions joined by "&&"; each condition is one of
//
//	attr in [lo,hi]          (numeric)
//	attr = v | attr < v | attr <= v | attr > v | attr >= v
//	attr <= "Concept"        (categorical; quotes optional)
//	attr = "Leaf"            (categorical; quotes optional)
//	COUNT(key, 10m) > 5      (windowed aggregates; also SUM(val, key, dur)
//	                          and DISTINCT(val, key, dur), dur in m/h/d)
//
// The literal "true" denotes the trivial rule. At most one condition per
// attribute (and per windowed aggregate) is allowed, mirroring the paper's
// rule language. Windowed conditions require the schema to carry a time
// attribute (relation.Attribute.Time).
func Parse(s *relation.Schema, text string) (*Rule, error) {
	r := NewRule(s)
	text = strings.TrimSpace(text)
	if text == "" || text == "true" {
		return r, nil
	}
	seen := make(map[int]bool)
	seenScore := false
	for _, part := range strings.Split(text, "&&") {
		part = strings.TrimSpace(part)
		if th, ok, err := parseScoreCond(part); err != nil {
			return nil, err
		} else if ok {
			if seenScore {
				return nil, fmt.Errorf("rules: multiple score conditions")
			}
			seenScore = true
			r.SetMinScore(th)
			continue
		}
		if name, rest, op, err := splitCond(part); err == nil && isWindowAtom(name) {
			wc, err := parseWindowCond(s, name, op, rest, part)
			if err != nil {
				return nil, err
			}
			if _, dup := r.windowAt(wc.Spec); dup {
				return nil, fmt.Errorf("rules: multiple conditions on aggregate %q", FormatWindowAtom(s, wc.Spec))
			}
			r.AddWindow(wc)
			continue
		}
		attr, c, err := parseCond(s, part)
		if err != nil {
			return nil, err
		}
		if seen[attr] {
			return nil, fmt.Errorf("rules: multiple conditions on attribute %q", s.Attr(attr).Name)
		}
		seen[attr] = true
		r.SetCond(attr, c)
	}
	return r, nil
}

// MustParse is Parse for rule literals in tests and generators.
func MustParse(s *relation.Schema, text string) *Rule {
	r, err := Parse(s, text)
	if err != nil {
		panic(err)
	}
	return r
}

func parseCond(s *relation.Schema, text string) (int, Condition, error) {
	name, rest, op, err := splitCond(text)
	if err != nil {
		return 0, Condition{}, err
	}
	attr, ok := s.Index(name)
	if !ok {
		return 0, Condition{}, fmt.Errorf("rules: unknown attribute %q in %q", name, text)
	}
	a := s.Attr(attr)
	if a.Kind == relation.Categorical {
		cname := strings.Trim(rest, `"`)
		c, ok := a.Ontology.Lookup(cname)
		if !ok {
			return 0, Condition{}, fmt.Errorf("rules: unknown concept %q for attribute %q", cname, name)
		}
		switch op {
		case "=", "<=":
			return attr, ConceptCond(c), nil
		default:
			return 0, Condition{}, fmt.Errorf("rules: operator %q not valid for categorical attribute %q", op, name)
		}
	}
	d, f := a.Domain, a.Format
	if op == "in" {
		body := strings.TrimSpace(rest)
		if !strings.HasPrefix(body, "[") || !strings.HasSuffix(body, "]") {
			return 0, Condition{}, fmt.Errorf("rules: malformed interval in %q", text)
		}
		lohi := strings.SplitN(body[1:len(body)-1], ",", 2)
		if len(lohi) != 2 {
			return 0, Condition{}, fmt.Errorf("rules: malformed interval in %q", text)
		}
		lo, err1 := f.ParseValue(strings.TrimSpace(lohi[0]))
		hi, err2 := f.ParseValue(strings.TrimSpace(lohi[1]))
		if err1 != nil || err2 != nil || lo > hi {
			return 0, Condition{}, fmt.Errorf("rules: bad interval bounds in %q", text)
		}
		return attr, NumericCond(order.Interval{Lo: lo, Hi: hi}), nil
	}
	v, err := f.ParseValue(rest)
	if err != nil {
		return 0, Condition{}, fmt.Errorf("rules: bad value in %q: %v", text, err)
	}
	var iv order.Interval
	switch op {
	case "=":
		iv = order.Point(v)
	case "<=":
		iv = order.Interval{Lo: d.Min, Hi: v}
	case "<":
		iv = order.Interval{Lo: d.Min, Hi: v - 1}
	case ">=":
		iv = order.Interval{Lo: v, Hi: d.Max}
	case ">":
		iv = order.Interval{Lo: v + 1, Hi: d.Max}
	default:
		return 0, Condition{}, fmt.Errorf("rules: unknown operator %q in %q", op, text)
	}
	return attr, NumericCond(iv), nil
}

// parseScoreCond recognizes the reserved risk-score threshold condition
// "score >= N" (ok reports whether the condition addresses the score).
func parseScoreCond(text string) (int16, bool, error) {
	name, rest, op, err := splitCond(text)
	if err != nil || name != "score" {
		return 0, false, nil
	}
	if op != ">=" {
		return 0, false, fmt.Errorf("rules: score conditions must use >=, got %q", text)
	}
	v, err := strconv.ParseInt(rest, 10, 16)
	if err != nil || v < 0 || v > int64(relation.MaxScore) {
		return 0, false, fmt.Errorf("rules: bad score threshold in %q", text)
	}
	return int16(v), true, nil
}

// splitCond splits "attr op rest" returning the attribute name, the operand
// text and the operator.
func splitCond(text string) (name, rest, op string, err error) {
	for _, candidate := range []string{"<=", ">=", "<", ">", "=", " in "} {
		if i := strings.Index(text, candidate); i > 0 {
			name = strings.TrimSpace(text[:i])
			rest = strings.TrimSpace(text[i+len(candidate):])
			op = strings.TrimSpace(candidate)
			if name == "" || rest == "" {
				return "", "", "", fmt.Errorf("rules: malformed condition %q", text)
			}
			return name, rest, op, nil
		}
	}
	return "", "", "", fmt.Errorf("rules: no operator found in condition %q", text)
}

// FormatSet renders every rule in the set, one per line, numbered like the
// paper's figures.
func (rs *Set) Format(s *relation.Schema) string {
	var b strings.Builder
	for i, r := range rs.rules {
		fmt.Fprintf(&b, "%d) %s\n", i+1, r.Format(s))
	}
	return b.String()
}
