// Package rules implements the RUDOLF rule language of Section 2 of the
// paper: a rule is a conjunction of one condition per attribute of the
// transaction relation, where a numeric condition is an interval A ∈ [s, e]
// (the forms A op s are interval shorthands) and a categorical condition is
// a concept bound A ≤ c. A rule set is a disjunction of rules; Φ(I) is the
// union of the tuples each rule captures.
package rules

import (
	"repro/internal/bitset"
	"repro/internal/ontology"
	"repro/internal/order"
	"repro/internal/relation"
)

// Condition restricts one attribute. For a numeric attribute the interval
// Iv is used; for a categorical attribute the concept C is used (meaning
// A ≤ C). The trivial condition admits every value of the attribute.
type Condition struct {
	Iv order.Interval
	C  ontology.Concept
}

// NumericCond returns the condition A ∈ iv.
func NumericCond(iv order.Interval) Condition {
	return Condition{Iv: iv, C: ontology.Invalid}
}

// ConceptCond returns the condition A ≤ c.
func ConceptCond(c ontology.Concept) Condition { return Condition{C: c} }

// TrivialCond returns the condition admitting every value of attribute a.
func TrivialCond(a relation.Attribute) Condition {
	if a.Kind == relation.Categorical {
		return ConceptCond(a.Ontology.Top())
	}
	return NumericCond(a.Domain.Full())
}

// IsTrivial reports whether the condition admits every value of attribute a.
func (c Condition) IsTrivial(a relation.Attribute) bool {
	if a.Kind == relation.Categorical {
		return c.C == a.Ontology.Top()
	}
	return c.Iv.ContainsInterval(a.Domain.Full())
}

// IsEmpty reports whether the condition admits no value at all (the ⊥
// condition produced by an impossible split).
func (c Condition) IsEmpty(a relation.Attribute) bool {
	if a.Kind == relation.Categorical {
		return c.C == ontology.Invalid
	}
	return c.Iv.IsEmpty()
}

// Admits reports whether value v of attribute a satisfies the condition.
func (c Condition) Admits(a relation.Attribute, v int64) bool {
	if a.Kind == relation.Categorical {
		if c.C == ontology.Invalid {
			return false
		}
		return a.Ontology.Contains(c.C, ontology.Concept(v))
	}
	return c.Iv.Contains(v)
}

// ContainsCond reports whether every value admitted by other is admitted by
// c (condition containment within attribute a).
func (c Condition) ContainsCond(a relation.Attribute, other Condition) bool {
	if a.Kind == relation.Categorical {
		return a.Ontology.Contains(c.C, other.C)
	}
	return c.Iv.ContainsInterval(other.Iv)
}

// Equal reports whether the two conditions over attribute a admit exactly
// the same values.
func (c Condition) Equal(a relation.Attribute, other Condition) bool {
	if a.Kind == relation.Categorical {
		return c.C == other.C
	}
	return c.Iv.Equal(other.Iv)
}

// Rule is a conjunction of one condition per schema attribute, optionally
// guarded by a minimum risk-score threshold (see score.go) and by windowed
// aggregate conditions such as COUNT(user, 10m) > 5 (see window.go).
type Rule struct {
	conds    []Condition
	wins     []WindowCond
	minScore int16
}

// NewRule returns the trivial rule over the schema (every condition ⊤),
// which captures every transaction.
func NewRule(s *relation.Schema) *Rule {
	r := &Rule{conds: make([]Condition, s.Arity())}
	for i := 0; i < s.Arity(); i++ {
		r.conds[i] = TrivialCond(s.Attr(i))
	}
	return r
}

// Arity returns the number of conditions (the schema arity).
func (r *Rule) Arity() int { return len(r.conds) }

// Cond returns the condition on attribute i.
func (r *Rule) Cond(i int) Condition { return r.conds[i] }

// SetCond replaces the condition on attribute i and returns the rule for
// chaining during construction.
func (r *Rule) SetCond(i int, c Condition) *Rule {
	r.conds[i] = c
	return r
}

// Clone returns an independent copy of the rule.
func (r *Rule) Clone() *Rule {
	c := &Rule{conds: make([]Condition, len(r.conds)), minScore: r.minScore}
	copy(c.conds, r.conds)
	if len(r.wins) > 0 {
		c.wins = make([]WindowCond, len(r.wins))
		copy(c.wins, r.wins)
	}
	return c
}

// Equal reports whether two rules admit the same tuples condition by
// condition under schema s.
func (r *Rule) Equal(s *relation.Schema, other *Rule) bool {
	if r.minScore != other.minScore || !windowsEqual(r, other) {
		return false
	}
	for i := range r.conds {
		if !r.conds[i].Equal(s.Attr(i), other.conds[i]) {
			return false
		}
	}
	return true
}

// Matches reports whether tuple t satisfies every per-tuple condition of
// the rule. A bare tuple has no position in time, so windowed conditions
// (and the score threshold) are NOT evaluated here — use MatchesAt whenever
// the tuple's relation and index are available.
func (r *Rule) Matches(s *relation.Schema, t relation.Tuple) bool {
	for i, c := range r.conds {
		if !c.Admits(s.Attr(i), t[i]) {
			return false
		}
	}
	return true
}

// IsEmpty reports whether some condition admits no value, so the rule can
// never capture a transaction.
func (r *Rule) IsEmpty(s *relation.Schema) bool {
	for i, c := range r.conds {
		if c.IsEmpty(s.Attr(i)) {
			return true
		}
	}
	for _, wc := range r.wins {
		if wc.Iv.IsEmpty() {
			return true
		}
	}
	return false
}

// Captures evaluates the rule over the relation and returns the set of
// captured transaction indices.
func (r *Rule) Captures(rel *relation.Relation) *bitset.Set {
	out := bitset.New(rel.Len())
	r.capturesInto(rel, out)
	return out
}

// Contains reports whether rule r captures every tuple that rule other
// captures, judged condition-wise (a sufficient, schema-independent check):
// r's threshold must not exceed other's and every condition must contain
// other's.
func (r *Rule) Contains(s *relation.Schema, other *Rule) bool {
	if r.minScore > other.minScore || !windowsContain(r, other) {
		return false
	}
	for i := range r.conds {
		if !r.conds[i].ContainsCond(s.Attr(i), other.conds[i]) {
			return false
		}
	}
	return true
}

// Set is an ordered set of rules, interpreted disjunctively: Φ(I) is the
// union of the captures of its rules.
type Set struct {
	rules []*Rule
}

// NewSet returns a rule set over the given rules (which it does not copy).
func NewSet(rs ...*Rule) *Set { return &Set{rules: rs} }

// Len returns the number of rules.
func (rs *Set) Len() int { return len(rs.rules) }

// Rule returns the i-th rule.
func (rs *Set) Rule(i int) *Rule { return rs.rules[i] }

// Rules returns the underlying slice; callers must treat it as read-only.
func (rs *Set) Rules() []*Rule { return rs.rules }

// Add appends a rule and returns its index.
func (rs *Set) Add(r *Rule) int {
	rs.rules = append(rs.rules, r)
	return len(rs.rules) - 1
}

// Remove deletes the i-th rule, preserving the order of the rest.
func (rs *Set) Remove(i int) {
	rs.rules = append(rs.rules[:i], rs.rules[i+1:]...)
}

// IndexOf returns the current index of exactly the rule r (pointer
// identity), or -1 when r is no longer in the set. Refinement tracks ranked
// candidates by identity rather than by index: indices shift whenever a rule
// is removed mid-loop, and a stale index would silently address a different
// rule.
func (rs *Set) IndexOf(r *Rule) int {
	for i, x := range rs.rules {
		if x == r {
			return i
		}
	}
	return -1
}

// Replace swaps the i-th rule for r.
func (rs *Set) Replace(i int, r *Rule) { rs.rules[i] = r }

// Clone returns a deep copy of the rule set.
func (rs *Set) Clone() *Set {
	c := &Set{rules: make([]*Rule, len(rs.rules))}
	for i, r := range rs.rules {
		c.rules[i] = r.Clone()
	}
	return c
}

// Eval returns Φ(I): the union of the captures of every rule (score
// thresholds and windowed conditions included). This is the reference
// evaluator the compiled index is differentially tested against; windowed
// aggregates come from the relation's cached column set when it covers the
// set's specs, otherwise from an exact offline replay.
func (rs *Set) Eval(rel *relation.Relation) *bitset.Set {
	out := bitset.New(rel.Len())
	s := rel.Schema()
	cs := winColumns(rel, rs.WindowSpecs(nil))
	for i := 0; i < rel.Len(); i++ {
		t := rel.Tuple(i)
		score := rel.Score(i)
		for _, r := range rs.rules {
			if score >= r.minScore && r.Matches(s, t) &&
				(len(r.wins) == 0 || r.windowsAdmitAt(cs, i)) {
				out.Add(i)
				break
			}
		}
	}
	return out
}

// CapturingRules returns the indices of the rules that capture tuple t
// (the set Ω_l of Algorithm 2). Like Rule.Matches it is per-tuple only —
// windowed conditions and score thresholds are not evaluated; use
// CapturingRulesAt when the tuple's relation and index are available.
func (rs *Set) CapturingRules(s *relation.Schema, t relation.Tuple) []int {
	var out []int
	for i, r := range rs.rules {
		if r.Matches(s, t) {
			out = append(out, i)
		}
	}
	return out
}
