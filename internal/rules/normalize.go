package rules

import (
	"repro/internal/relation"
)

// Normalize tidies a rule set without changing its semantics: rules whose
// conditions (and score thresholds) are contained in another rule are
// dropped, and pairs of rules that differ only in one numeric attribute
// with adjacent intervals are merged back into one rule. Sessions produce
// such pairs naturally — Algorithm 2 splits a rule around a legitimate
// value, and if later refinement widens one side back to the excluded
// value's neighborhood the two fragments become mergeable. It returns the
// number of rules removed.
func Normalize(s *relation.Schema, rs *Set) int {
	removed := 0
	for changed := true; changed; {
		changed = false
		// Drop subsumed rules.
		for i := 0; i < rs.Len() && !changed; i++ {
			for j := 0; j < rs.Len(); j++ {
				if i == j {
					continue
				}
				if rs.Rule(i).Contains(s, rs.Rule(j)) {
					rs.Remove(j)
					removed++
					changed = true
					break
				}
			}
		}
		if changed {
			continue
		}
		// Merge adjacent numeric fragments.
		for i := 0; i < rs.Len() && !changed; i++ {
			for j := i + 1; j < rs.Len(); j++ {
				if merged, ok := mergeAdjacent(s, rs.Rule(i), rs.Rule(j)); ok {
					rs.Replace(i, merged)
					rs.Remove(j)
					removed++
					changed = true
					break
				}
			}
		}
	}
	return removed
}

// mergeAdjacent merges two rules that are identical except for one numeric
// attribute whose intervals are adjacent or overlapping.
func mergeAdjacent(s *relation.Schema, a, b *Rule) (*Rule, bool) {
	if a.MinScore() != b.MinScore() || !windowsEqual(a, b) {
		return nil, false
	}
	diff := -1
	for i := 0; i < s.Arity(); i++ {
		if a.Cond(i).Equal(s.Attr(i), b.Cond(i)) {
			continue
		}
		if diff >= 0 {
			return nil, false // more than one differing attribute
		}
		diff = i
	}
	if diff < 0 {
		// Identical rules: "merge" is dropping one.
		return a.Clone(), true
	}
	attr := s.Attr(diff)
	if attr.Kind == relation.Categorical {
		return nil, false
	}
	ia, ib := a.Cond(diff).Iv, b.Cond(diff).Iv
	if ia.Lo > ib.Lo {
		ia, ib = ib, ia
	}
	// Adjacent or overlapping: the union is a single interval.
	if ib.Lo > ia.Hi+1 {
		return nil, false
	}
	merged := a.Clone()
	merged.SetCond(diff, NumericCond(ia.Cover(ib)))
	return merged, true
}
