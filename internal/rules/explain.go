package rules

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// CondExplanation reports how one condition of a rule relates to one
// transaction: the condition's text, the transaction's value, and whether
// the value satisfies it.
type CondExplanation struct {
	Attr      int
	Condition string
	Value     string
	Satisfied bool
}

// Explanation explains one rule's verdict on one transaction, condition by
// condition (trivial conditions are omitted — they always hold).
type Explanation struct {
	RuleIndex int
	Rule      string
	Captured  bool
	// Conditions holds one entry per non-trivial condition, plus the score
	// threshold when the rule has one.
	Conditions []CondExplanation
}

// Explain reports, for every rule in the set, whether it captures
// transaction i of rel and which conditions held or failed — the "why was
// this flagged?" view an analyst needs when triaging alerts. Windowed
// conditions are explained with the aggregate's value at this transaction
// (Attr = -2, since they address no single attribute).
func Explain(rs *Set, rel *relation.Relation, i int) []Explanation {
	s := rel.Schema()
	t := rel.Tuple(i)
	cs := winColumns(rel, rs.WindowSpecs(nil))
	out := make([]Explanation, 0, rs.Len())
	for ri, r := range rs.Rules() {
		e := Explanation{RuleIndex: ri, Rule: r.Format(s), Captured: true}
		for a := 0; a < s.Arity(); a++ {
			attr := s.Attr(a)
			c := r.Cond(a)
			if c.IsTrivial(attr) {
				continue
			}
			ce := CondExplanation{
				Attr:      a,
				Condition: formatCond(attr, c),
				Value:     s.FormatValue(a, t[a]),
				Satisfied: c.Admits(attr, t[a]),
			}
			if !ce.Satisfied {
				e.Captured = false
			}
			e.Conditions = append(e.Conditions, ce)
		}
		for _, wc := range r.Windows() {
			ce := CondExplanation{
				Attr:      -2,
				Condition: formatWindowCond(s, wc),
				Value:     "?",
				Satisfied: false,
			}
			if col := cs.Column(wc.Spec); col != nil {
				ce.Value = fmt.Sprintf("%d", col[i])
				ce.Satisfied = wc.Iv.Contains(col[i])
			}
			if !ce.Satisfied {
				e.Captured = false
			}
			e.Conditions = append(e.Conditions, ce)
		}
		if r.MinScore() > 0 {
			ce := CondExplanation{
				Attr:      -1,
				Condition: fmt.Sprintf("score >= %d", r.MinScore()),
				Value:     fmt.Sprintf("%d", rel.Score(i)),
				Satisfied: rel.Score(i) >= r.MinScore(),
			}
			if !ce.Satisfied {
				e.Captured = false
			}
			e.Conditions = append(e.Conditions, ce)
		}
		out = append(out, e)
	}
	return out
}

// String renders the explanation for human reading.
func (e Explanation) String() string {
	var b strings.Builder
	verdict := "captures"
	if !e.Captured {
		verdict = "does not capture"
	}
	fmt.Fprintf(&b, "rule %d %s the transaction: %s\n", e.RuleIndex+1, verdict, e.Rule)
	for _, c := range e.Conditions {
		mark := "✓"
		if !c.Satisfied {
			mark = "✗"
		}
		fmt.Fprintf(&b, "  %s %-40s (value %s)\n", mark, c.Condition, c.Value)
	}
	return b.String()
}
