package rules

import (
	"repro/internal/relation"
)

// GeneralizeToCover returns the smallest generalization r' of r such that r'
// admits, attribute by attribute, every value admitted by target (line 9 of
// Algorithm 1: "construct the smallest generalization of r to r' so that
// f(C) ∈ r'(I)"). Numeric conditions are extended to the covering interval;
// categorical conditions are walked up the ontology along the shortest
// parent chain to the most specific concept containing the target.
//
// The second result lists the attributes whose condition actually changed.
// r is not modified.
func GeneralizeToCover(s *relation.Schema, r *Rule, target []Condition) (*Rule, []int) {
	out := r.Clone()
	var changed []int
	for i := 0; i < s.Arity(); i++ {
		a := s.Attr(i)
		cur, want := r.Cond(i), target[i]
		if cur.ContainsCond(a, want) {
			continue
		}
		if a.Kind == relation.Categorical {
			g, _ := a.Ontology.MinimalGeneralization(cur.C, want.C)
			out.SetCond(i, ConceptCond(g))
		} else {
			out.SetCond(i, NumericCond(cur.Iv.Extend(want.Iv)))
		}
		changed = append(changed, i)
	}
	return out, changed
}

// RuleFromConditions returns a rule whose conditions are exactly the given
// pattern (used by Algorithm 1 line 18 to create a rule selecting exactly a
// representative tuple when no existing rule can be generalized).
func RuleFromConditions(s *relation.Schema, conds []Condition) *Rule {
	r := NewRule(s)
	for i, c := range conds {
		r.SetCond(i, c)
	}
	return r
}
