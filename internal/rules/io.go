package rules

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/relation"
)

// WriteSet writes the rule set in its textual form, one rule per line, as
// produced by Rule.Format. Lines starting with '#' are comments.
func WriteSet(w io.Writer, s *relation.Schema, rs *Set) error {
	for _, r := range rs.Rules() {
		if _, err := fmt.Fprintln(w, r.Format(s)); err != nil {
			return err
		}
	}
	return nil
}

// ReadSet parses a rule set previously written by WriteSet: one rule per
// line, blank lines and '#' comments ignored.
func ReadSet(rd io.Reader, s *relation.Schema) (*Set, error) {
	out := NewSet()
	scanner := bufio.NewScanner(rd)
	line := 0
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		r, err := Parse(s, text)
		if err != nil {
			return nil, fmt.Errorf("rules: line %d: %w", line, err)
		}
		out.Add(r)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
