package rules

import (
	"strings"
	"testing"
)

func TestExplainAgainstFigure2(t *testing.T) {
	f := newFixture(t)
	// Tuple 2 (18:04, $112) is captured by rule 1 only.
	exps := Explain(f.rules, f.rel, 2)
	if len(exps) != 3 {
		t.Fatalf("want 3 explanations, got %d", len(exps))
	}
	if !exps[0].Captured {
		t.Error("rule 1 should capture tuple 2")
	}
	for _, c := range exps[0].Conditions {
		if !c.Satisfied {
			t.Errorf("rule 1 condition %q unsatisfied for a captured tuple", c.Condition)
		}
	}
	// Rule 2 fails on time only.
	if exps[1].Captured {
		t.Error("rule 2 should not capture tuple 2")
	}
	var failed []string
	for _, c := range exps[1].Conditions {
		if !c.Satisfied {
			failed = append(failed, c.Condition)
		}
	}
	if len(failed) != 1 || !strings.Contains(failed[0], "time") {
		t.Errorf("rule 2 failing conditions = %v, want only the time window", failed)
	}
	// Rule 3 fails on time and location.
	if exps[2].Captured {
		t.Error("rule 3 should not capture tuple 2")
	}
}

func TestExplainAgreesWithCapture(t *testing.T) {
	f := newFixture(t)
	for i := 0; i < f.rel.Len(); i++ {
		exps := Explain(f.rules, f.rel, i)
		capturing := map[int]bool{}
		for _, ri := range f.rules.CapturingRulesAt(f.rel, i) {
			capturing[ri] = true
		}
		for _, e := range exps {
			if e.Captured != capturing[e.RuleIndex] {
				t.Fatalf("tuple %d rule %d: Explain says %v, capture says %v",
					i, e.RuleIndex, e.Captured, capturing[e.RuleIndex])
			}
		}
	}
}

func TestExplainScoreThreshold(t *testing.T) {
	f := newFixture(t)
	rs := NewSet(MustParse(f.schema, "amount >= $40 && score >= 600"))
	exps := Explain(rs, f.rel, 0) // fixture scores are 500
	if exps[0].Captured {
		t.Error("score threshold should block capture")
	}
	last := exps[0].Conditions[len(exps[0].Conditions)-1]
	if last.Attr != -1 || last.Satisfied || !strings.Contains(last.Condition, "score") {
		t.Errorf("score condition explanation = %+v", last)
	}
	// Rendered form mentions the verdict and the failing mark.
	text := exps[0].String()
	if !strings.Contains(text, "does not capture") || !strings.Contains(text, "✗") {
		t.Errorf("rendered explanation = %q", text)
	}
}
