package rules

import (
	"math/rand"
	"testing"

	"repro/internal/order"
	"repro/internal/relation"
)

func TestNormalizeMergesAdjacentFragments(t *testing.T) {
	s := paperSchema()
	rs := NewSet(
		MustParse(s, "time in [18:00,18:03] && amount >= $100"),
		MustParse(s, "time in [18:04,18:10] && amount >= $100"),
	)
	if got := Normalize(s, rs); got != 1 {
		t.Fatalf("removed %d rules, want 1", got)
	}
	if rs.Len() != 1 {
		t.Fatalf("rule count = %d", rs.Len())
	}
	want := order.Interval{Lo: 18 * 60, Hi: 18*60 + 10}
	if !rs.Rule(0).Cond(0).Iv.Equal(want) {
		t.Errorf("merged interval = %v, want %v", rs.Rule(0).Cond(0).Iv, want)
	}
}

func TestNormalizeKeepsIntentionalGaps(t *testing.T) {
	s := paperSchema()
	// The Algorithm 2 split around 18:04: the gap must survive.
	rs := NewSet(
		MustParse(s, "time in [18:00,18:03] && amount >= $100"),
		MustParse(s, "time = 18:05 && amount >= $100"),
	)
	if got := Normalize(s, rs); got != 0 {
		t.Fatalf("removed %d rules from a gapped pair", got)
	}
	if rs.Len() != 2 {
		t.Fatalf("rule count = %d", rs.Len())
	}
}

func TestNormalizeDropsSubsumedAndDuplicates(t *testing.T) {
	s := paperSchema()
	rs := NewSet(
		MustParse(s, "amount >= $100"),
		MustParse(s, "amount >= $200"),                              // subsumed
		MustParse(s, "amount >= $100"),                              // duplicate
		MustParse(s, `amount >= $500 && location <= "Gas Station"`), // subsumed
	)
	removed := Normalize(s, rs)
	if rs.Len() != 1 || removed != 3 {
		t.Fatalf("len=%d removed=%d, want 1 rule after normalization", rs.Len(), removed)
	}
}

func TestNormalizeRespectsScoreThresholds(t *testing.T) {
	s := paperSchema()
	rs := NewSet(
		MustParse(s, "time in [18:00,18:03] && score >= 700"),
		MustParse(s, "time in [18:04,18:10] && score >= 800"),
	)
	if got := Normalize(s, rs); got != 0 {
		t.Fatalf("merged rules with different thresholds (removed %d)", got)
	}
	// A lower-threshold superset subsumes a higher-threshold one.
	rs2 := NewSet(
		MustParse(s, "time in [18:00,18:10] && score >= 500"),
		MustParse(s, "time in [18:02,18:05] && score >= 700"),
	)
	if got := Normalize(s, rs2); got != 1 || rs2.Len() != 1 {
		t.Fatalf("threshold-aware subsumption wrong: removed %d", got)
	}
}

func TestNormalizeCategoricalNotMerged(t *testing.T) {
	s := paperSchema()
	rs := NewSet(
		MustParse(s, `location = "Gas Station A" && amount >= $40`),
		MustParse(s, `location = "Gas Station B" && amount >= $40`),
	)
	if got := Normalize(s, rs); got != 0 {
		t.Fatalf("merged sibling categorical rules (removed %d): lifting to the parent concept would widen semantics", got)
	}
}

// TestNormalizePreservesSemantics: Φ(I) is identical before and after, on
// random rule sets over random data.
func TestNormalizePreservesSemantics(t *testing.T) {
	s := paperSchema()
	rng := rand.New(rand.NewSource(91))
	typeLeaves := s.Attr(2).Ontology.Leaves()
	locLeaves := s.Attr(3).Ontology.Leaves()
	for trial := 0; trial < 30; trial++ {
		rel := relation.New(s)
		for i := 0; i < 200; i++ {
			rel.MustAppend(relation.Tuple{
				int64(rng.Intn(1440)), int64(rng.Intn(500)),
				int64(typeLeaves[rng.Intn(len(typeLeaves))]),
				int64(locLeaves[rng.Intn(len(locLeaves))]),
			}, relation.Unlabeled, int16(rng.Intn(1001)))
		}
		rs := NewSet()
		for k := 0; k < 2+rng.Intn(6); k++ {
			lo := int64(rng.Intn(1200))
			r := NewRule(s).SetCond(0, NumericCond(order.Interval{Lo: lo, Hi: lo + int64(rng.Intn(200))}))
			if rng.Intn(2) == 0 {
				r.SetCond(1, NumericCond(order.Interval{Lo: int64(rng.Intn(300)), Hi: 500}))
			}
			rs.Add(r)
		}
		before := rs.Eval(rel)
		Normalize(s, rs)
		if !rs.Eval(rel).Equal(before) {
			t.Fatalf("trial %d: normalization changed semantics", trial)
		}
	}
}
