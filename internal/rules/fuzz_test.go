package rules

import (
	"testing"
)

// FuzzParseRule feeds arbitrary text to the rule parser: it must never
// panic, and whatever parses must survive a Format → Parse round trip
// unchanged (the parser and printer agree on the language).
func FuzzParseRule(f *testing.F) {
	for _, seed := range []string{
		"true",
		"",
		"time in [18:00,18:05] && amount >= $110",
		`time in [20:45,21:15] && amount >= $40 && location = "Gas Station A"`,
		`type <= "Online" && score >= 700`,
		"amount = $5 && amount = $6",
		"amount in [$20,$10]",
		"ghost = 1",
		"score >= 1001",
		"time in [18:00",
		"&&&&",
		"amount >= ",
		`location <= "`,
	} {
		f.Add(seed)
	}
	s := paperSchema()
	f.Fuzz(func(t *testing.T, text string) {
		r, err := Parse(s, text)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		printed := r.Format(s)
		r2, err := Parse(s, printed)
		if err != nil {
			t.Fatalf("Format output %q does not re-parse: %v (input %q)", printed, err, text)
		}
		if !r.Equal(s, r2) {
			t.Fatalf("round trip changed the rule: %q -> %q", printed, r2.Format(s))
		}
	})
}
