package relation

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/ontology"
	"repro/internal/order"
)

// The JSON schema format makes datasets self-describing: cmd/datagen writes
// a schema file next to the transaction CSV and cmd/rudolf can load both,
// so custom schemas work without recompiling.

type jsonSchema struct {
	Attributes []jsonAttribute `json:"attributes"`
}

type jsonAttribute struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "numeric" or "categorical"
	// Numeric attributes:
	Min    *int64 `json:"min,omitempty"`
	Max    *int64 `json:"max,omitempty"`
	Format string `json:"format,omitempty"` // plain, time-of-day, minutes, money
	// Time marks the schema's event-time attribute (see Attribute.Time);
	// windowed rule atoms order events by it.
	Time bool `json:"time,omitempty"`
	// Categorical attributes:
	Ontology json.RawMessage `json:"ontology,omitempty"`
}

var formatNames = map[order.Format]string{
	order.FormatPlain:     "plain",
	order.FormatTimeOfDay: "time-of-day",
	order.FormatMinutes:   "minutes",
	order.FormatMoney:     "money",
}

func formatByName(name string) (order.Format, error) {
	for f, n := range formatNames {
		if n == name {
			return f, nil
		}
	}
	if name == "" {
		return order.FormatPlain, nil
	}
	return 0, fmt.Errorf("relation: unknown format %q", name)
}

// WriteJSON serializes the schema (ontologies included).
func (s *Schema) WriteJSON(w io.Writer) error {
	out := jsonSchema{Attributes: make([]jsonAttribute, 0, s.Arity())}
	for i := 0; i < s.Arity(); i++ {
		a := s.Attr(i)
		ja := jsonAttribute{Name: a.Name}
		if a.Kind == Categorical {
			ja.Kind = "categorical"
			raw, err := json.Marshal(a.Ontology)
			if err != nil {
				return fmt.Errorf("relation: marshaling ontology of %q: %w", a.Name, err)
			}
			ja.Ontology = raw
		} else {
			ja.Kind = "numeric"
			min, max := a.Domain.Min, a.Domain.Max
			ja.Min, ja.Max = &min, &max
			ja.Format = formatNames[a.Format]
			ja.Time = a.Time
		}
		out.Attributes = append(out.Attributes, ja)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadSchemaJSON parses a schema previously written by WriteJSON.
//
// The reader is hardened for untrusted input (it sits behind HTTP uploads
// in the serving daemon): unknown JSON fields are rejected rather than
// silently dropped — a misspelled "formt" would otherwise quietly fall back
// to the default format — duplicate attribute names are reported with both
// positions, and every error names the offending attribute.
func ReadSchemaJSON(r io.Reader) (*Schema, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var in jsonSchema
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("relation: reading schema JSON: %w", err)
	}
	byName := make(map[string]int, len(in.Attributes))
	for i, ja := range in.Attributes {
		if ja.Name == "" {
			return nil, fmt.Errorf("relation: schema JSON attribute %d has no name", i+1)
		}
		if prev, dup := byName[ja.Name]; dup {
			return nil, fmt.Errorf("relation: schema JSON attribute %d: duplicate name %q (already attribute %d)",
				i+1, ja.Name, prev)
		}
		byName[ja.Name] = i + 1
	}
	attrs := make([]Attribute, 0, len(in.Attributes))
	for _, ja := range in.Attributes {
		switch ja.Kind {
		case "categorical":
			if ja.Time {
				return nil, fmt.Errorf("relation: categorical attribute %q cannot carry the time role", ja.Name)
			}
			if len(ja.Ontology) == 0 {
				return nil, fmt.Errorf("relation: categorical attribute %q has no ontology", ja.Name)
			}
			o, err := ontology.UnmarshalOntology(ja.Ontology)
			if err != nil {
				return nil, fmt.Errorf("relation: attribute %q: %w", ja.Name, err)
			}
			attrs = append(attrs, Attribute{Name: ja.Name, Kind: Categorical, Ontology: o})
		case "numeric":
			if ja.Min == nil || ja.Max == nil {
				return nil, fmt.Errorf("relation: numeric attribute %q needs min and max", ja.Name)
			}
			if *ja.Min > *ja.Max {
				return nil, fmt.Errorf("relation: numeric attribute %q has inverted bounds", ja.Name)
			}
			f, err := formatByName(ja.Format)
			if err != nil {
				return nil, fmt.Errorf("relation: attribute %q: %w", ja.Name, err)
			}
			attrs = append(attrs, Attribute{
				Name: ja.Name, Kind: Numeric,
				Domain: order.NewDomain(*ja.Min, *ja.Max), Format: f,
				Time: ja.Time,
			})
		default:
			return nil, fmt.Errorf("relation: attribute %q has unknown kind %q", ja.Name, ja.Kind)
		}
	}
	return NewSchema(attrs...)
}
