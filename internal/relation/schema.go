// Package relation implements the universal transaction relation of the
// paper: a time-ordered table of transactions over a fixed schema of numeric
// and categorical attributes, each tuple carrying a ground-truth label
// (fraudulent, legitimate, or unlabeled) and a machine-learning risk score
// in [0, 1000].
package relation

import (
	"fmt"

	"repro/internal/ontology"
	"repro/internal/order"
)

// Kind distinguishes numeric (totally ordered) from categorical
// (ontology-valued) attributes.
type Kind uint8

const (
	// Numeric attributes take values in a bounded discrete domain.
	Numeric Kind = iota
	// Categorical attributes take leaf concepts of an ontology as values.
	Categorical
)

// Attribute describes one column of the transaction relation.
type Attribute struct {
	Name string
	Kind Kind
	// Domain and Format apply to numeric attributes.
	Domain order.Domain
	Format order.Format
	// Ontology applies to categorical attributes.
	Ontology *ontology.Ontology
	// Time marks the schema's event-time attribute: the numeric column (in
	// minutes) that sliding-window aggregates (COUNT/SUM/DISTINCT atoms of
	// the rule language) order events by. At most one attribute per schema
	// may carry the role, and it must be numeric. Schemas without a time
	// attribute simply cannot host windowed rules — rules.Parse reports a
	// clear error instead of treating an arbitrary numeric as a timestamp.
	Time bool
}

// Schema is an ordered list of attributes. Schemas are immutable after
// construction.
type Schema struct {
	attrs    []Attribute
	byName   map[string]int
	timeAttr int
}

// NewSchema builds a schema from the given attributes. Attribute names must
// be unique; categorical attributes must carry an ontology; at most one
// (numeric) attribute may carry the time role.
func NewSchema(attrs ...Attribute) (*Schema, error) {
	s := &Schema{attrs: attrs, byName: make(map[string]int, len(attrs)), timeAttr: -1}
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("relation: attribute %d has no name", i)
		}
		if a.Name == "score" || a.Name == "label" {
			// "score" is the risk-score threshold pseudo-attribute of the
			// rule language and both names are CSV header columns.
			return nil, fmt.Errorf("relation: attribute name %q is reserved", a.Name)
		}
		if _, dup := s.byName[a.Name]; dup {
			return nil, fmt.Errorf("relation: duplicate attribute %q", a.Name)
		}
		if a.Kind == Categorical && a.Ontology == nil {
			return nil, fmt.Errorf("relation: categorical attribute %q has no ontology", a.Name)
		}
		if a.Time {
			if a.Kind != Numeric {
				return nil, fmt.Errorf("relation: time attribute %q must be numeric", a.Name)
			}
			if s.timeAttr >= 0 {
				return nil, fmt.Errorf("relation: duplicate time attribute %q (already %q)",
					a.Name, attrs[s.timeAttr].Name)
			}
			s.timeAttr = i
		}
		s.byName[a.Name] = i
	}
	return s, nil
}

// TimeAttr returns the index of the attribute carrying the time role, or -1
// when the schema has none (windowed rules are then rejected at parse time).
func (s *Schema) TimeAttr() int { return s.timeAttr }

// MustSchema is NewSchema for statically known-good schemas.
func MustSchema(attrs ...Attribute) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Index returns the position of the named attribute.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// MustIndex is Index for names known to exist; it panics otherwise.
func (s *Schema) MustIndex(name string) int {
	i, ok := s.byName[name]
	if !ok {
		panic(fmt.Sprintf("relation: unknown attribute %q", name))
	}
	return i
}

// FormatValue renders the value of attribute i for display.
func (s *Schema) FormatValue(i int, v int64) string {
	a := s.attrs[i]
	if a.Kind == Categorical {
		return a.Ontology.ConceptName(ontology.Concept(v))
	}
	return a.Format.FormatValue(v)
}

// ParseValue parses the textual form of a value of attribute i. Categorical
// values are concept names; numeric values use the attribute's format.
func (s *Schema) ParseValue(i int, text string) (int64, error) {
	a := s.attrs[i]
	if a.Kind == Categorical {
		c, ok := a.Ontology.Lookup(text)
		if !ok {
			return 0, fmt.Errorf("relation: attribute %q: unknown concept %q", a.Name, text)
		}
		return int64(c), nil
	}
	return a.Format.ParseValue(text)
}
