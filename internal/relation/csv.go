package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the relation in CSV form: a header row with the attribute
// names followed by "label" and "score", then one row per transaction with
// values rendered by the schema's formats.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, r.schema.Arity()+2)
	for i := 0; i < r.schema.Arity(); i++ {
		header = append(header, r.schema.Attr(i).Name)
	}
	header = append(header, "label", "score")
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i := 0; i < r.Len(); i++ {
		t := r.Tuple(i)
		for a := range t {
			row[a] = r.schema.FormatValue(a, t[a])
		}
		row[len(t)] = r.Label(i).String()
		row[len(t)+1] = strconv.Itoa(int(r.Score(i)))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a relation previously written by WriteCSV (or hand-written
// in the same layout) against the given schema. The header's attribute names
// must match the schema in order.
func ReadCSV(schema *Schema, rd io.Reader) (*Relation, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = schema.Arity() + 2
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	for i := 0; i < schema.Arity(); i++ {
		if header[i] != schema.Attr(i).Name {
			return nil, fmt.Errorf("relation: CSV column %d is %q, schema expects %q",
				i, header[i], schema.Attr(i).Name)
		}
	}
	if header[schema.Arity()] != "label" || header[schema.Arity()+1] != "score" {
		return nil, fmt.Errorf("relation: CSV must end with label,score columns")
	}
	rel := New(schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV line %d: %w", line, err)
		}
		t := make(Tuple, schema.Arity())
		for a := 0; a < schema.Arity(); a++ {
			v, err := schema.ParseValue(a, rec[a])
			if err != nil {
				return nil, fmt.Errorf("relation: CSV line %d: %w", line, err)
			}
			t[a] = v
		}
		label, err := parseLabel(rec[schema.Arity()])
		if err != nil {
			return nil, fmt.Errorf("relation: CSV line %d: %w", line, err)
		}
		score, err := strconv.Atoi(rec[schema.Arity()+1])
		if err != nil || score < 0 || score > MaxScore {
			return nil, fmt.Errorf("relation: CSV line %d: bad score %q", line, rec[schema.Arity()+1])
		}
		if _, err := rel.Append(t, label, int16(score)); err != nil {
			return nil, fmt.Errorf("relation: CSV line %d: %w", line, err)
		}
	}
	return rel, nil
}

func parseLabel(s string) (Label, error) {
	switch s {
	case "":
		return Unlabeled, nil
	case "FRAUD":
		return Fraud, nil
	case "LEGITIMATE":
		return Legitimate, nil
	default:
		return Unlabeled, fmt.Errorf("bad label %q", s)
	}
}
