package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the relation in CSV form: a header row with the attribute
// names followed by "label" and "score", then one row per transaction with
// values rendered by the schema's formats.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, r.schema.Arity()+2)
	for i := 0; i < r.schema.Arity(); i++ {
		header = append(header, r.schema.Attr(i).Name)
	}
	header = append(header, "label", "score")
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i := 0; i < r.Len(); i++ {
		t := r.Tuple(i)
		for a := range t {
			row[a] = r.schema.FormatValue(a, t[a])
		}
		row[len(t)] = r.Label(i).String()
		row[len(t)+1] = strconv.Itoa(int(r.Score(i)))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a relation previously written by WriteCSV (or hand-written
// in the same layout) against the given schema. The header's attribute names
// must match the schema in order, followed by the label and score columns.
//
// The reader is hardened for untrusted input (it sits behind HTTP uploads in
// the serving daemon): duplicate and unknown header columns are rejected by
// name, and every error pinpoints the offending line and column.
func ReadCSV(schema *Schema, rd io.Reader) (*Relation, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = -1 // column counts are checked by hand for better errors
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	if err := checkHeader(schema, header); err != nil {
		return nil, err
	}
	want := schema.Arity() + 2
	rel := New(schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV line %d: %w", line, err)
		}
		if len(rec) != want {
			return nil, fmt.Errorf("relation: CSV line %d: %d columns, want %d", line, len(rec), want)
		}
		t := make(Tuple, schema.Arity())
		for a := 0; a < schema.Arity(); a++ {
			v, err := schema.ParseValue(a, rec[a])
			if err != nil {
				return nil, fmt.Errorf("relation: CSV line %d, column %d (%s): %w",
					line, a+1, schema.Attr(a).Name, err)
			}
			t[a] = v
		}
		label, err := parseLabel(rec[schema.Arity()])
		if err != nil {
			return nil, fmt.Errorf("relation: CSV line %d, column %d (label): %w",
				line, schema.Arity()+1, err)
		}
		score, err := strconv.Atoi(rec[schema.Arity()+1])
		if err != nil || score < 0 || score > MaxScore {
			return nil, fmt.Errorf("relation: CSV line %d, column %d (score): bad score %q (want an integer in [0,%d])",
				line, schema.Arity()+2, rec[schema.Arity()+1], MaxScore)
		}
		if _, err := rel.Append(t, label, int16(score)); err != nil {
			return nil, fmt.Errorf("relation: CSV line %d: %w", line, err)
		}
	}
	return rel, nil
}

// checkHeader validates the header row: the schema's attribute names in
// order, then label and score. Errors name the offending column (1-based)
// and distinguish duplicates, unknown names, and misplaced known names.
func checkHeader(schema *Schema, header []string) error {
	expected := make([]string, 0, schema.Arity()+2)
	for i := 0; i < schema.Arity(); i++ {
		expected = append(expected, schema.Attr(i).Name)
	}
	expected = append(expected, "label", "score")

	known := make(map[string]bool, len(expected))
	for _, name := range expected {
		known[name] = true
	}
	seen := make(map[string]int, len(header))
	for i, name := range header {
		if prev, dup := seen[name]; dup {
			return fmt.Errorf("relation: CSV header line 1, column %d: duplicate column %q (already at column %d)",
				i+1, name, prev)
		}
		seen[name] = i + 1
		if !known[name] {
			return fmt.Errorf("relation: CSV header line 1, column %d: unknown column %q (schema has no such attribute)",
				i+1, name)
		}
	}
	if len(header) != len(expected) {
		for _, name := range expected {
			if _, ok := seen[name]; !ok {
				return fmt.Errorf("relation: CSV header line 1: missing column %q (%d columns, want %d)",
					name, len(header), len(expected))
			}
		}
	}
	for i, name := range header {
		if name != expected[i] {
			return fmt.Errorf("relation: CSV header line 1, column %d: %q out of order, schema expects %q",
				i+1, name, expected[i])
		}
	}
	return nil
}

func parseLabel(s string) (Label, error) {
	switch s {
	case "":
		return Unlabeled, nil
	case "FRAUD":
		return Fraud, nil
	case "LEGITIMATE":
		return Legitimate, nil
	default:
		return Unlabeled, fmt.Errorf("bad label %q", s)
	}
}
