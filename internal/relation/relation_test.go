package relation

import (
	"strings"
	"testing"

	"repro/internal/ontology"
	"repro/internal/order"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	loc := ontology.NewBuilder("location").
		Add("World").
		Add("Gas Station", "World").
		Add("Gas Station A", "Gas Station").
		Add("Gas Station B", "Gas Station").
		Add("Online Store", "World").
		MustBuild()
	return MustSchema(
		Attribute{Name: "time", Kind: Numeric, Domain: order.NewDomain(0, 1439), Format: order.FormatTimeOfDay},
		Attribute{Name: "amount", Kind: Numeric, Domain: order.NewDomain(0, 100000), Format: order.FormatMoney},
		Attribute{Name: "location", Kind: Categorical, Ontology: loc},
	)
}

func leaf(t *testing.T, s *Schema, attr int, name string) int64 {
	t.Helper()
	return int64(s.Attr(attr).Ontology.MustLookup(name))
}

func TestNewSchemaErrors(t *testing.T) {
	if _, err := NewSchema(Attribute{Name: ""}); err == nil {
		t.Error("unnamed attribute accepted")
	}
	if _, err := NewSchema(
		Attribute{Name: "a", Kind: Numeric},
		Attribute{Name: "a", Kind: Numeric},
	); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := NewSchema(Attribute{Name: "c", Kind: Categorical}); err == nil {
		t.Error("categorical without ontology accepted")
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := testSchema(t)
	if s.Arity() != 3 {
		t.Errorf("Arity = %d, want 3", s.Arity())
	}
	if i, ok := s.Index("amount"); !ok || i != 1 {
		t.Errorf("Index(amount) = %d,%v", i, ok)
	}
	if _, ok := s.Index("nope"); ok {
		t.Error("Index of unknown attribute succeeded")
	}
	if s.MustIndex("time") != 0 {
		t.Error("MustIndex(time) != 0")
	}
	if s.Attr(1).Name != "amount" {
		t.Error("Attr(1) wrong")
	}
}

func TestMustIndexPanics(t *testing.T) {
	s := testSchema(t)
	defer func() {
		if recover() == nil {
			t.Error("MustIndex did not panic")
		}
	}()
	s.MustIndex("ghost")
}

func TestFormatAndParseValue(t *testing.T) {
	s := testSchema(t)
	if got := s.FormatValue(0, 18*60+5); got != "18:05" {
		t.Errorf("FormatValue(time) = %q", got)
	}
	if got := s.FormatValue(2, leaf(t, s, 2, "Gas Station A")); got != "Gas Station A" {
		t.Errorf("FormatValue(location) = %q", got)
	}
	v, err := s.ParseValue(2, "Gas Station B")
	if err != nil || v != leaf(t, s, 2, "Gas Station B") {
		t.Errorf("ParseValue(location) = %d, %v", v, err)
	}
	if _, err := s.ParseValue(2, "Mars"); err == nil {
		t.Error("ParseValue of unknown concept succeeded")
	}
	v, err = s.ParseValue(1, "$42")
	if err != nil || v != 42 {
		t.Errorf("ParseValue(amount) = %d, %v", v, err)
	}
}

func TestAppendValidation(t *testing.T) {
	s := testSchema(t)
	r := New(s)
	good := Tuple{18*60 + 2, 107, leaf(t, s, 2, "Online Store")}
	if _, err := r.Append(good, Fraud, 800); err != nil {
		t.Fatalf("valid append failed: %v", err)
	}
	for name, tc := range map[string]struct {
		t     Tuple
		score int16
	}{
		"short tuple":        {Tuple{1, 2}, 0},
		"numeric out of dom": {Tuple{-1, 100, leaf(t, s, 2, "Online Store")}, 0},
		"bad concept id":     {Tuple{10, 100, 999}, 0},
		"non-leaf concept":   {Tuple{10, 100, int64(s.Attr(2).Ontology.MustLookup("Gas Station"))}, 0},
		"bad score":          {good, 2000},
	} {
		if _, err := r.Append(tc.t, Unlabeled, tc.score); err == nil {
			t.Errorf("%s: append succeeded, want error", name)
		}
	}
	if r.Len() != 1 {
		t.Errorf("failed appends mutated the relation: len = %d", r.Len())
	}
}

func TestLabelsScoresAndCounts(t *testing.T) {
	s := testSchema(t)
	r := New(s)
	loc := leaf(t, s, 2, "Online Store")
	r.MustAppend(Tuple{1, 10, loc}, Fraud, 900)
	r.MustAppend(Tuple{2, 20, loc}, Legitimate, 100)
	r.MustAppend(Tuple{3, 30, loc}, Unlabeled, 500)
	r.MustAppend(Tuple{4, 40, loc}, Fraud, 950)
	if r.Count(Fraud) != 2 || r.Count(Legitimate) != 1 || r.Count(Unlabeled) != 1 {
		t.Error("Count wrong")
	}
	if got := r.Indices(Fraud); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("Indices(Fraud) = %v", got)
	}
	if r.Score(3) != 950 || r.Label(1) != Legitimate {
		t.Error("Score/Label accessors wrong")
	}
	r.SetLabel(2, Fraud)
	if r.Label(2) != Fraud {
		t.Error("SetLabel did not stick")
	}
}

func TestPrefixAndSlice(t *testing.T) {
	s := testSchema(t)
	r := New(s)
	loc := leaf(t, s, 2, "Online Store")
	for i := int64(0); i < 10; i++ {
		r.MustAppend(Tuple{i, i * 10, loc}, Unlabeled, 0)
	}
	p := r.Prefix(4)
	if p.Len() != 4 || p.Tuple(3)[0] != 3 {
		t.Errorf("Prefix(4) wrong: len=%d", p.Len())
	}
	if got := r.Prefix(99).Len(); got != 10 {
		t.Errorf("Prefix over-length = %d, want 10", got)
	}
	sl := r.Slice(3, 6)
	if sl.Len() != 3 || sl.Tuple(0)[0] != 3 {
		t.Errorf("Slice(3,6) wrong")
	}
	if got := r.Slice(8, 99).Len(); got != 2 {
		t.Errorf("Slice clamp = %d, want 2", got)
	}
	if got := r.Slice(-2, 2).Len(); got != 2 {
		t.Errorf("Slice negative lo = %d, want 2", got)
	}
	if got := r.Slice(6, 3).Len(); got != 0 {
		t.Errorf("Slice inverted = %d, want 0", got)
	}
}

func TestFormatTuple(t *testing.T) {
	s := testSchema(t)
	r := New(s)
	r.MustAppend(Tuple{18*60 + 2, 107, leaf(t, s, 2, "Online Store")}, Fraud, 800)
	got := r.FormatTuple(0)
	want := "time=18:02, amount=$107, location=Online Store [FRAUD]"
	if got != want {
		t.Errorf("FormatTuple = %q, want %q", got, want)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := testSchema(t)
	r := New(s)
	r.MustAppend(Tuple{18*60 + 2, 107, leaf(t, s, 2, "Online Store")}, Fraud, 800)
	r.MustAppend(Tuple{20*60 + 53, 46, leaf(t, s, 2, "Gas Station B")}, Legitimate, 120)
	r.MustAppend(Tuple{0, 0, leaf(t, s, 2, "Gas Station A")}, Unlabeled, 0)

	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(s, strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadCSV: %v\ncsv:\n%s", err, sb.String())
	}
	if got.Len() != r.Len() {
		t.Fatalf("round trip len = %d, want %d", got.Len(), r.Len())
	}
	for i := 0; i < r.Len(); i++ {
		if got.Label(i) != r.Label(i) || got.Score(i) != r.Score(i) {
			t.Errorf("tuple %d: label/score mismatch", i)
		}
		for a := range r.Tuple(i) {
			if got.Tuple(i)[a] != r.Tuple(i)[a] {
				t.Errorf("tuple %d attr %d: %d != %d", i, a, got.Tuple(i)[a], r.Tuple(i)[a])
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	s := testSchema(t)
	for name, csvText := range map[string]string{
		"bad header":   "x,amount,location,label,score\n",
		"bad tail":     "time,amount,location,lbl,score\n",
		"bad value":    "time,amount,location,label,score\n25:99,$1,Online Store,,0\n",
		"bad concept":  "time,amount,location,label,score\n01:00,$1,Mars,,0\n",
		"bad label":    "time,amount,location,label,score\n01:00,$1,Online Store,MAYBE,0\n",
		"bad score":    "time,amount,location,label,score\n01:00,$1,Online Store,,abc\n",
		"score range":  "time,amount,location,label,score\n01:00,$1,Online Store,,5000\n",
		"wrong fields": "time,amount,location,label,score\n01:00,$1\n",
	} {
		if _, err := ReadCSV(s, strings.NewReader(csvText)); err == nil {
			t.Errorf("%s: ReadCSV succeeded, want error", name)
		}
	}
}

func TestLabelString(t *testing.T) {
	if Fraud.String() != "FRAUD" || Legitimate.String() != "LEGITIMATE" || Unlabeled.String() != "" {
		t.Error("Label.String wrong")
	}
}

func TestTupleClone(t *testing.T) {
	orig := Tuple{1, 2, 3}
	c := orig.Clone()
	c[0] = 99
	if orig[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestValueAccessors(t *testing.T) {
	s := testSchema(t)
	tp := Tuple{60, 42, leaf(t, s, 2, "Gas Station A")}
	if NumericValue(tp, 1) != 42 {
		t.Error("NumericValue wrong")
	}
	if ConceptValue(tp, 2) != ontology.Concept(leaf(t, s, 2, "Gas Station A")) {
		t.Error("ConceptValue wrong")
	}
}
