package relation

import (
	"fmt"
	"sync/atomic"

	"repro/internal/ontology"
	"repro/internal/order"
)

// Label is the ground-truth annotation of a transaction.
type Label uint8

const (
	// Unlabeled transactions are assumed correct until reported otherwise.
	Unlabeled Label = iota
	// Fraud marks a transaction reported as fraudulent.
	Fraud
	// Legitimate marks a transaction verified as legitimate.
	Legitimate
)

// String returns the paper's annotation for the label.
func (l Label) String() string {
	switch l {
	case Fraud:
		return "FRAUD"
	case Legitimate:
		return "LEGITIMATE"
	default:
		return ""
	}
}

// MaxScore is the upper bound of the ML risk score range used by the paper's
// dataset (scores lie in [0, 1000]).
const MaxScore = 1000

// Tuple is one transaction: one value per schema attribute. Numeric
// attributes store domain values; categorical attributes store leaf concept
// ids of the attribute's ontology.
type Tuple []int64

// Clone returns an independent copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Relation is an append-only transaction relation. Tuples are kept in
// arrival (time) order; labels and risk scores are stored alongside.
type Relation struct {
	schema *Schema
	tuples []Tuple
	labels []Label
	scores []int16
	// winCols caches derived sliding-window aggregate columns for this
	// relation (an opaque *window.ColumnSet; typed any to keep the relation
	// package free of the dependency). The compiled evaluator computes and
	// stores columns here so repeated windowed evaluation — and explain-time
	// margin re-derivation — never recomputes them; the serving daemon stamps
	// live aggregates for each scored batch. Concurrent writers race benignly
	// (both store equivalent immutable column sets; last writer wins), and
	// views made by Prefix/Slice start with an empty slot, so a cached set
	// can never leak onto a relation of a different length.
	winCols atomic.Value
}

// New returns an empty relation over the schema.
func New(schema *Schema) *Relation {
	return &Relation{schema: schema}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of transactions.
func (r *Relation) Len() int { return len(r.tuples) }

// Append adds a transaction with its label and risk score and returns its
// index. It validates the tuple against the schema.
func (r *Relation) Append(t Tuple, label Label, score int16) (int, error) {
	if len(t) != r.schema.Arity() {
		return 0, fmt.Errorf("relation: tuple arity %d, schema arity %d", len(t), r.schema.Arity())
	}
	for i, v := range t {
		a := r.schema.Attr(i)
		switch a.Kind {
		case Numeric:
			if !a.Domain.Contains(v) {
				return 0, fmt.Errorf("relation: attribute %q: value %d outside domain [%d,%d]",
					a.Name, v, a.Domain.Min, a.Domain.Max)
			}
		case Categorical:
			c := ontology.Concept(v)
			if v < 0 || int(v) >= a.Ontology.Len() {
				return 0, fmt.Errorf("relation: attribute %q: invalid concept id %d", a.Name, v)
			}
			if !a.Ontology.IsLeaf(c) {
				return 0, fmt.Errorf("relation: attribute %q: value %q is not a leaf concept",
					a.Name, a.Ontology.ConceptName(c))
			}
		}
	}
	if score < 0 || score > MaxScore {
		return 0, fmt.Errorf("relation: risk score %d outside [0,%d]", score, MaxScore)
	}
	r.tuples = append(r.tuples, t)
	r.labels = append(r.labels, label)
	r.scores = append(r.scores, score)
	return len(r.tuples) - 1, nil
}

// MustAppend is Append for programmatically generated, known-valid tuples.
func (r *Relation) MustAppend(t Tuple, label Label, score int16) int {
	i, err := r.Append(t, label, score)
	if err != nil {
		panic(err)
	}
	return i
}

// Tuple returns the i-th transaction. The returned slice is shared; callers
// must not modify it.
func (r *Relation) Tuple(i int) Tuple { return r.tuples[i] }

// Label returns the ground-truth label of transaction i.
func (r *Relation) Label(i int) Label { return r.labels[i] }

// SetLabel updates the label of transaction i (transactions get reported as
// fraudulent or verified legitimate over time).
func (r *Relation) SetLabel(i int, l Label) { r.labels[i] = l }

// Score returns the ML risk score of transaction i.
func (r *Relation) Score(i int) int16 { return r.scores[i] }

// Indices returns the transaction indices with the given label, in order.
func (r *Relation) Indices(l Label) []int {
	var out []int
	for i, lab := range r.labels {
		if lab == l {
			out = append(out, i)
		}
	}
	return out
}

// Count returns the number of transactions with the given label.
func (r *Relation) Count(l Label) int {
	n := 0
	for _, lab := range r.labels {
		if lab == l {
			n++
		}
	}
	return n
}

// Prefix returns a view of the first n transactions. The view shares storage
// with the original relation; appends to the view are not allowed to keep
// sharing sound, so Prefix is only for read paths (evaluation, refinement).
func (r *Relation) Prefix(n int) *Relation {
	if n > len(r.tuples) {
		n = len(r.tuples)
	}
	return &Relation{
		schema: r.schema,
		tuples: r.tuples[:n:n],
		labels: r.labels[:n:n],
		scores: r.scores[:n:n],
	}
}

// Slice returns a read-only view of transactions [lo, hi).
func (r *Relation) Slice(lo, hi int) *Relation {
	if hi > len(r.tuples) {
		hi = len(r.tuples)
	}
	if lo < 0 {
		lo = 0
	}
	if lo > hi {
		lo = hi
	}
	return &Relation{
		schema: r.schema,
		tuples: r.tuples[lo:hi:hi],
		labels: r.labels[lo:hi:hi],
		scores: r.scores[lo:hi:hi],
	}
}

// WindowColumns returns the cached window-aggregate column set (nil when
// none has been stored). The value is opaque to this package; the window
// package defines the concrete *ColumnSet and the index evaluator checks it
// still matches its spec list before trusting it.
func (r *Relation) WindowColumns() any {
	return r.winCols.Load()
}

// SetWindowColumns stores a window-aggregate column set for reuse by later
// evaluations over this relation. Storing a new set is also the
// time-invalidation signal for caches keyed on this relation (the capture
// cache compares the stored pointer against the one it bound against).
func (r *Relation) SetWindowColumns(v any) {
	r.winCols.Store(v)
}

// NumericValue returns the value of numeric attribute a in tuple t.
func NumericValue(t Tuple, a int) order.Value { return t[a] }

// ConceptValue returns the value of categorical attribute a in tuple t.
func ConceptValue(t Tuple, a int) ontology.Concept { return ontology.Concept(t[a]) }

// FormatTuple renders a tuple for display, attribute by attribute.
func (r *Relation) FormatTuple(i int) string {
	t := r.tuples[i]
	s := ""
	for a := range t {
		if a > 0 {
			s += ", "
		}
		s += r.schema.Attr(a).Name + "=" + r.schema.FormatValue(a, t[a])
	}
	if lab := r.labels[i]; lab != Unlabeled {
		s += " [" + lab.String() + "]"
	}
	return s
}
