package relation

import (
	"strings"
	"testing"

	"repro/internal/order"
)

// The readers sit behind untrusted HTTP uploads in the serving daemon:
// these tests pin the hardened error paths — duplicate/unknown/misordered
// header columns, per-column error positions, and schema-JSON strictness.

func hardSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema(
		Attribute{Name: "amount", Kind: Numeric, Domain: order.NewDomain(0, 1000)},
		Attribute{Name: "hour", Kind: Numeric, Domain: order.NewDomain(0, 23)},
	)
}

func TestReadCSVHeaderHardening(t *testing.T) {
	s := hardSchema(t)
	cases := []struct {
		name   string
		csv    string
		expect []string // substrings the error must contain
	}{
		{
			"duplicate column",
			"amount,amount,label,score\n",
			[]string{"column 2", `duplicate column "amount"`, "column 1"},
		},
		{
			"duplicate label column",
			"amount,hour,label,label\n",
			[]string{"column 4", `duplicate column "label"`},
		},
		{
			"unknown column",
			"amount,riskiness,label,score\n",
			[]string{"column 2", `unknown column "riskiness"`},
		},
		{
			"out of order",
			"hour,amount,label,score\n",
			[]string{"column 1", "out of order", `"amount"`},
		},
		{
			"missing column",
			"amount,label,score\n",
			[]string{`missing column "hour"`},
		},
		{
			"missing label/score",
			"amount,hour\n",
			[]string{`missing column "label"`},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadCSV(s, strings.NewReader(tc.csv))
			if err == nil {
				t.Fatalf("no error for header %q", strings.TrimSpace(tc.csv))
			}
			for _, want := range tc.expect {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q missing %q", err, want)
				}
			}
		})
	}
}

func TestReadCSVValueErrorsNameLineAndColumn(t *testing.T) {
	s := hardSchema(t)
	header := "amount,hour,label,score\n"

	cases := []struct {
		name   string
		row    string
		expect []string
	}{
		{"bad value", "12,nope,,5\n", []string{"line 2", "column 2", "hour"}},
		{"bad label", "12,3,MAYBE,5\n", []string{"line 2", "column 3", "label", `"MAYBE"`}},
		{"bad score", "12,3,,many\n", []string{"line 2", "column 4", "score", `"many"`}},
		{"score out of range", "12,3,,5000\n", []string{"line 2", "column 4", `"5000"`}},
		{"short row", "12,3,\n", []string{"line 2", "3 columns, want 4"}},
		{"long row", "12,3,,5,extra\n", []string{"line 2", "5 columns, want 4"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadCSV(s, strings.NewReader(header+tc.row))
			if err == nil {
				t.Fatalf("no error for row %q", strings.TrimSpace(tc.row))
			}
			for _, want := range tc.expect {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q missing %q", err, want)
				}
			}
		})
	}

	// Errors on a later line report that line.
	_, err := ReadCSV(s, strings.NewReader(header+"12,3,,5\n12,99,,5\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("late error = %v, want line 3", err)
	}

	// A valid file still parses.
	rel, err := ReadCSV(s, strings.NewReader(header+"12,3,FRAUD,5\n7,0,,1000\n"))
	if err != nil {
		t.Fatalf("valid CSV rejected: %v", err)
	}
	if rel.Len() != 2 || rel.Label(0) != Fraud {
		t.Fatalf("parsed %d rows, label %v", rel.Len(), rel.Label(0))
	}
}

func TestReadSchemaJSONHardening(t *testing.T) {
	cases := []struct {
		name   string
		json   string
		expect []string
	}{
		{
			"unknown field",
			`{"attributes":[{"name":"a","kind":"numeric","min":0,"max":9,"formt":"money"}]}`,
			[]string{"unknown field", `"formt"`},
		},
		{
			"duplicate attribute",
			`{"attributes":[
				{"name":"a","kind":"numeric","min":0,"max":9},
				{"name":"b","kind":"numeric","min":0,"max":9},
				{"name":"a","kind":"numeric","min":0,"max":9}]}`,
			[]string{"attribute 3", `duplicate name "a"`, "attribute 1"},
		},
		{
			"unnamed attribute",
			`{"attributes":[{"kind":"numeric","min":0,"max":9}]}`,
			[]string{"attribute 1", "no name"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadSchemaJSON(strings.NewReader(tc.json))
			if err == nil {
				t.Fatal("no error")
			}
			for _, want := range tc.expect {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q missing %q", err, want)
				}
			}
		})
	}

	// A schema written by WriteJSON still round-trips under the strict
	// decoder.
	s := hardSchema(t)
	var sb strings.Builder
	if err := s.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSchemaJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("round-trip rejected: %v", err)
	}
	if got.Arity() != s.Arity() {
		t.Fatalf("round-trip arity %d, want %d", got.Arity(), s.Arity())
	}
}
