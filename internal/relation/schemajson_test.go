package relation

import (
	"strings"
	"testing"
)

func TestSchemaJSONRoundTrip(t *testing.T) {
	s := testSchema(t)
	var buf strings.Builder
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSchemaJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ReadSchemaJSON: %v\njson:\n%s", err, buf.String())
	}
	if got.Arity() != s.Arity() {
		t.Fatalf("arity %d, want %d", got.Arity(), s.Arity())
	}
	for i := 0; i < s.Arity(); i++ {
		a, b := s.Attr(i), got.Attr(i)
		if a.Name != b.Name || a.Kind != b.Kind {
			t.Errorf("attr %d: %+v vs %+v", i, a.Name, b.Name)
		}
		if a.Kind == Numeric {
			if a.Domain != b.Domain || a.Format != b.Format {
				t.Errorf("attr %d numeric config differs", i)
			}
			continue
		}
		if a.Ontology.Len() != b.Ontology.Len() {
			t.Errorf("attr %d ontology size %d vs %d", i, a.Ontology.Len(), b.Ontology.Len())
		}
		// Containment relations survive the round trip.
		for _, la := range a.Ontology.Leaves() {
			name := a.Ontology.ConceptName(la)
			lb, ok := b.Ontology.Lookup(name)
			if !ok {
				t.Fatalf("leaf %q lost in round trip", name)
			}
			if !b.Ontology.IsLeaf(lb) {
				t.Errorf("leaf %q no longer a leaf", name)
			}
		}
	}
	// A relation written against the original parses against the round-trip.
	rel := New(s)
	rel.MustAppend(Tuple{60, 42, leaf(t, s, 2, "Gas Station B")}, Fraud, 700)
	var csv strings.Builder
	if err := rel.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCSV(got, strings.NewReader(csv.String())); err != nil {
		t.Errorf("CSV against round-trip schema: %v", err)
	}
}

func TestReadSchemaJSONErrors(t *testing.T) {
	for name, text := range map[string]string{
		"garbage":         "{",
		"unknown kind":    `{"attributes":[{"name":"a","kind":"weird"}]}`,
		"numeric no min":  `{"attributes":[{"name":"a","kind":"numeric","max":5}]}`,
		"inverted bounds": `{"attributes":[{"name":"a","kind":"numeric","min":9,"max":5}]}`,
		"bad format":      `{"attributes":[{"name":"a","kind":"numeric","min":0,"max":5,"format":"roman"}]}`,
		"cat no ontology": `{"attributes":[{"name":"a","kind":"categorical"}]}`,
		"bad ontology":    `{"attributes":[{"name":"a","kind":"categorical","ontology":{"name":"x","concepts":[{"name":"r","parents":["ghost"]}]}}]}`,
		"reserved name":   `{"attributes":[{"name":"score","kind":"numeric","min":0,"max":5}]}`,
	} {
		if _, err := ReadSchemaJSON(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted %q", name, text)
		}
	}
}
