// Package window implements bounded-memory sliding-window aggregates keyed
// by an attribute value — the state behind the rule language's velocity
// atoms (COUNT(key, 10m) > 5, SUM(amount, card, 24h) >= 1000). Production
// fraud platforms live on such signals; the paper's per-tuple conjunctions
// cannot express "more than K transactions from this user in W minutes".
//
// # Design
//
// A Store maintains, per (Spec, key value) pair, a ring of time buckets with
// running totals, sharded and lock-striped for the serving hot path. Every
// event lands in the bucket of its clamped timestamp; expiring a bucket
// subtracts its contribution from the running totals, so reading an
// aggregate is O(1) and allocation-free in the steady state (pinned by
// TestObserveSteadyStateAllocs).
//
// # Determinism contract
//
// The store never reads a wall clock. Time flows in exclusively through
// Observe (an event's timestamp) and Advance (an explicit watermark lift),
// in whole minutes — the unit of the schema's time attribute. The watermark
// is monotone; an event older than the watermark is clamped to it, so every
// entry's bucket cursor only moves forward and replaying the same
// Observe/Advance sequence rebuilds byte-identical aggregate state (the WAL
// replay path of the serving daemon depends on this).
//
// # Exact semantics
//
// Each spec uses buckets of width w = ceil(Window/bucketsPerWindow) minutes
// and a ring of n = ceil(Window/w) buckets. At watermark m, the aggregate
// over a key is taken over exactly the events whose clamped timestamp t
// satisfies floor(t/w) > floor(m/w) - n — the last n buckets including the
// current one. The effective horizon therefore lies between Window and
// Window + w minutes, a standard bucketed approximation; the differential
// tests hold the store to this definition exactly, against a naive replay of
// the raw event list.
//
// # Memory bound
//
// MaxEntries caps the number of live (spec, key) entries. When a new key
// would exceed the cap, the owning shard first drops entries whose windows
// have fully expired (semantically invisible — their aggregates are already
// zero) and, if none have, drops its least-recently-observed entry. Evicting
// a live entry forgets that key's history; its aggregates restart from zero.
package window

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/relation"
)

// Agg selects the aggregate function of a Spec.
type Agg uint8

const (
	// Count counts events per key in the window.
	Count Agg = iota
	// Sum sums a value attribute per key in the window.
	Sum
	// Distinct counts distinct values of a value attribute per key.
	Distinct
)

// String returns the rule-language name of the aggregate.
func (a Agg) String() string {
	switch a {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Distinct:
		return "DISTINCT"
	default:
		return fmt.Sprintf("Agg(%d)", uint8(a))
	}
}

// Spec identifies one sliding-window aggregate: the function, the grouping
// key attribute, the aggregated value attribute (-1 for Count) and the
// window length in minutes. Specs are comparable values; equal specs share
// state in a Store.
type Spec struct {
	Agg Agg
	// Key is the schema attribute whose value groups events.
	Key int
	// Val is the schema attribute aggregated by Sum/Distinct; -1 for Count.
	Val int
	// Window is the window length in minutes (the time attribute's unit).
	Window int64
}

// Validate checks the spec against a schema, mirroring the checks
// rules.Parse applies to windowed atoms.
func (sp Spec) Validate(schema *relation.Schema) error {
	if sp.Window <= 0 {
		return fmt.Errorf("window: spec window %dm must be positive", sp.Window)
	}
	if sp.Key < 0 || sp.Key >= schema.Arity() {
		return fmt.Errorf("window: spec key attribute %d out of range", sp.Key)
	}
	switch sp.Agg {
	case Count:
		if sp.Val != -1 {
			return fmt.Errorf("window: COUNT takes no value attribute (got %d)", sp.Val)
		}
	case Sum, Distinct:
		if sp.Val < 0 || sp.Val >= schema.Arity() {
			return fmt.Errorf("window: spec value attribute %d out of range", sp.Val)
		}
		if sp.Agg == Sum && schema.Attr(sp.Val).Kind != relation.Numeric {
			return fmt.Errorf("window: SUM over categorical attribute %q", schema.Attr(sp.Val).Name)
		}
	default:
		return fmt.Errorf("window: unknown aggregate %d", sp.Agg)
	}
	return nil
}

// bucketsPerWindow bounds the ring size per entry; the bucket width grows
// with the window instead (see the package comment's exact semantics).
const bucketsPerWindow = 16

// geometry is the precomputed bucket layout of one spec.
type geometry struct {
	width int64 // bucket width in minutes
	n     int64 // ring length in buckets
}

func specGeometry(windowMin int64) geometry {
	w := (windowMin + bucketsPerWindow - 1) / bucketsPerWindow
	if w < 1 {
		w = 1
	}
	n := (windowMin + w - 1) / w
	if n < 1 {
		n = 1
	}
	return geometry{width: w, n: n}
}

// specState is one registered spec with its layout.
type specState struct {
	spec Spec
	geo  geometry
}

// specSet is the immutable registered-spec snapshot swapped atomically on
// EnsureSpecs, so Observe reads it without taking the registry lock.
type specSet struct {
	specs []specState
	index map[Spec]int32
}

// DefaultMaxEntries bounds live (spec, key) entries when Config.MaxEntries
// is zero: at ~100 bytes per COUNT entry this keeps a fully-loaded store in
// the low hundreds of MB while still holding millions of keys.
const DefaultMaxEntries = 1 << 21

const nShards = 64

// Config parameterizes a Store.
type Config struct {
	// TimeAttr is the schema attribute carrying event time in minutes.
	// Negative means the schema has no time attribute; every event then
	// lands at minute 0 (a degenerate single-window mode that only
	// programmatic misuse can reach — rules.Parse refuses windowed atoms on
	// such schemas).
	TimeAttr int
	// MaxEntries caps live (spec, key) entries; 0 means DefaultMaxEntries.
	MaxEntries int
}

// Store is a sharded sliding-window aggregate store. All methods are safe
// for concurrent use.
type Store struct {
	timeAttr   int
	maxEntries int

	mu    sync.Mutex // guards spec registration (EnsureSpecs)
	specs atomic.Pointer[specSet]

	watermark atomic.Int64 // current time in minutes; monotone
	hasTime   atomic.Bool  // false until the first Observe/Advance
	entries   atomic.Int64 // live entry count across shards (memory budget)

	// Lifetime evicted-entry counts by cause (observability): expired
	// entries whose window aggregates to zero, and live entries dropped
	// least-recently-observed-first under memory pressure.
	evictExpired atomic.Int64
	evictLRU     atomic.Int64

	shards [nShards]shard
}

type shard struct {
	mu sync.Mutex
	m  map[entryKey]*entry
}

type entryKey struct {
	spec int32
	key  int64
}

// entry is the ring state of one (spec, key) pair. All fields are guarded
// by the owning shard's mutex.
type entry struct {
	lastBucket int64 // bucket index the ring cursor is at
	lastTouch  int64 // watermark minute of the last observe (eviction order)
	count      []int32
	totalCount int64
	// Sum only:
	sum      []int64
	totalSum int64
	// Distinct only: per-bucket observed values (with multiplicity) and the
	// window-wide value refcounts; the aggregate is len(vals).
	slotVals [][]int64
	vals     map[int64]int32
}

// New returns an empty store. Specs are registered with EnsureSpecs; events
// for unregistered specs are simply not aggregated.
func New(cfg Config) *Store {
	s := &Store{timeAttr: cfg.TimeAttr, maxEntries: cfg.MaxEntries}
	if s.maxEntries <= 0 {
		s.maxEntries = DefaultMaxEntries
	}
	s.specs.Store(&specSet{index: map[Spec]int32{}})
	for i := range s.shards {
		s.shards[i].m = make(map[entryKey]*entry)
	}
	return s
}

// EnsureSpecs registers every spec not yet known to the store. Registration
// is append-only: a spec published once keeps accumulating state even if a
// later rule set drops it (its entries age out via the eviction path), so
// republishing a windowed rule never restarts its aggregates from zero.
func (s *Store) EnsureSpecs(specs []Spec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.specs.Load()
	missing := 0
	for _, sp := range specs {
		if _, ok := cur.index[sp]; !ok {
			missing++
		}
	}
	if missing == 0 {
		return
	}
	next := &specSet{
		specs: make([]specState, len(cur.specs), len(cur.specs)+missing),
		index: make(map[Spec]int32, len(cur.index)+missing),
	}
	copy(next.specs, cur.specs)
	for k, v := range cur.index {
		next.index[k] = v
	}
	for _, sp := range specs {
		if _, ok := next.index[sp]; ok {
			continue
		}
		next.index[sp] = int32(len(next.specs))
		next.specs = append(next.specs, specState{spec: sp, geo: specGeometry(sp.Window)})
	}
	s.specs.Store(next)
}

// Specs returns the registered specs in registration order.
func (s *Store) Specs() []Spec {
	set := s.specs.Load()
	out := make([]Spec, len(set.specs))
	for i, st := range set.specs {
		out[i] = st.spec
	}
	return out
}

// Watermark returns the store's current time in minutes.
func (s *Store) Watermark() int64 { return s.watermark.Load() }

// Entries returns the live (spec, key) entry count.
func (s *Store) Entries() int64 { return s.entries.Load() }

// Evictions returns the lifetime count of evicted entries (all causes).
func (s *Store) Evictions() int64 { return s.evictExpired.Load() + s.evictLRU.Load() }

// EvictionsByCause splits the lifetime eviction count: expired entries
// (window aggregated to zero — dropping them never changes a result) vs
// live entries evicted least-recently-observed-first under the MaxEntries
// memory budget.
func (s *Store) EvictionsByCause() (expired, lru int64) {
	return s.evictExpired.Load(), s.evictLRU.Load()
}

// MaxEntries returns the configured live-entry budget.
func (s *Store) MaxEntries() int { return s.maxEntries }

// ShardOccupancy returns the live-entry count of every shard, in shard
// order. The per-shard view exposes key skew: a hot shard near the top of
// an otherwise-empty histogram means one key (not volume) is driving
// evictions.
func (s *Store) ShardOccupancy() []int {
	out := make([]int, nShards)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		out[i] = len(sh.m)
		sh.mu.Unlock()
	}
	return out
}

// Advance lifts the watermark to now (in minutes); it never moves backward.
// Bucket expiry is lazy — entries rotate forward the next time they are
// observed or read.
func (s *Store) Advance(now int64) {
	s.liftWatermark(now)
}

func (s *Store) liftWatermark(t int64) int64 {
	for {
		cur := s.watermark.Load()
		if s.hasTime.Load() && t <= cur {
			return cur
		}
		if !s.hasTime.Load() {
			// First time signal: adopt it even if negative/zero.
			s.mu.Lock()
			if !s.hasTime.Load() {
				s.watermark.Store(t)
				s.hasTime.Store(true)
				s.mu.Unlock()
				return t
			}
			s.mu.Unlock()
			continue
		}
		if s.watermark.CompareAndSwap(cur, t) {
			return t
		}
	}
}

// Observe folds one event (a schema-shaped tuple) into every registered
// spec, reading its timestamp from the store's time attribute. The
// timestamp lifts the watermark; an event older than the watermark is
// clamped to it (see the determinism contract in the package comment).
func (s *Store) Observe(t relation.Tuple) {
	ts := int64(0)
	if s.timeAttr >= 0 && s.timeAttr < len(t) {
		ts = t[s.timeAttr]
	}
	wm := s.liftWatermark(ts)
	set := s.specs.Load()
	for si := range set.specs {
		st := &set.specs[si]
		key := t[st.spec.Key]
		val := int64(0)
		if st.spec.Val >= 0 {
			val = t[st.spec.Val]
		}
		s.observeOne(int32(si), st, key, val, wm)
	}
}

func (s *Store) shardFor(spec int32, key int64) *shard {
	// Mix spec and key; the multiplier is the 64-bit FNV prime.
	h := (uint64(key) ^ uint64(spec)<<32) * 1099511628211
	return &s.shards[h%nShards]
}

func (s *Store) observeOne(spec int32, st *specState, key, val, wm int64) {
	sh := s.shardFor(spec, key)
	sh.mu.Lock()
	k := entryKey{spec: spec, key: key}
	e := sh.m[k]
	if e == nil {
		if s.entries.Load() >= int64(s.maxEntries) && s.evictShard(sh, wm) == 0 {
			// The owning shard had nothing to give; scan the others, locking
			// one shard at a time (never two, so concurrent observers in
			// other shards cannot deadlock against this path).
			sh.mu.Unlock()
			s.evictElsewhere(sh, wm)
			sh.mu.Lock()
			e = sh.m[k] // re-check: a concurrent observer may have created it
		}
		if e == nil {
			e = newEntry(st)
			sh.m[k] = e
			s.entries.Add(1)
		}
	}
	b := bucketOf(wm, st.geo.width)
	e.rotate(st, b)
	slot := int(b % st.geo.n)
	if slot < 0 {
		slot += int(st.geo.n)
	}
	e.lastTouch = wm
	e.count[slot]++
	e.totalCount++
	switch st.spec.Agg {
	case Sum:
		e.sum[slot] += val
		e.totalSum += val
	case Distinct:
		e.slotVals[slot] = append(e.slotVals[slot], val)
		e.vals[val]++
	}
	sh.mu.Unlock()
}

// Aggregate returns the current value of spec over key at the store's
// watermark: the event count, value sum, or distinct-value count in the
// window. Unknown specs and unseen keys read as zero. Steady-state reads
// are allocation-free.
func (s *Store) Aggregate(spec Spec, key int64) int64 {
	set := s.specs.Load()
	si, ok := set.index[spec]
	if !ok {
		return 0
	}
	return s.aggregateAt(si, &set.specs[si], key, s.watermark.Load())
}

func (s *Store) aggregateAt(spec int32, st *specState, key, wm int64) int64 {
	sh := s.shardFor(spec, key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.m[entryKey{spec: spec, key: key}]
	if e == nil {
		return 0
	}
	e.rotate(st, bucketOf(wm, st.geo.width))
	switch st.spec.Agg {
	case Sum:
		return e.totalSum
	case Distinct:
		return int64(len(e.vals))
	default:
		return e.totalCount
	}
}

func bucketOf(t, width int64) int64 {
	b := t / width
	if t < 0 && t%width != 0 {
		b-- // floor division for negative minutes
	}
	return b
}

func newEntry(st *specState) *entry {
	n := st.geo.n
	e := &entry{lastBucket: -1 << 62, count: make([]int32, n)}
	switch st.spec.Agg {
	case Sum:
		e.sum = make([]int64, n)
	case Distinct:
		e.slotVals = make([][]int64, n)
		e.vals = make(map[int64]int32)
	}
	return e
}

// rotate advances the entry's ring cursor to bucket b, expiring every
// bucket that falls out of the window and subtracting its contribution
// from the running totals. Cursor movement is monotone (callers clamp time
// to the watermark).
func (e *entry) rotate(st *specState, b int64) {
	if b <= e.lastBucket {
		return
	}
	n := st.geo.n
	steps := b - e.lastBucket
	if steps >= n || e.lastBucket == -1<<62 {
		// Everything expired: reset in place, keeping capacity.
		for i := range e.count {
			e.count[i] = 0
		}
		e.totalCount = 0
		if e.sum != nil {
			for i := range e.sum {
				e.sum[i] = 0
			}
			e.totalSum = 0
		}
		if e.slotVals != nil {
			for i := range e.slotVals {
				e.slotVals[i] = e.slotVals[i][:0]
			}
			clear(e.vals)
		}
		e.lastBucket = b
		return
	}
	for nb := e.lastBucket + 1; nb <= b; nb++ {
		// Bucket nb enters the window; the bucket it displaces (nb - n,
		// stored in the same slot) expires.
		slot := int(nb % n)
		if slot < 0 {
			slot += int(n)
		}
		e.totalCount -= int64(e.count[slot])
		e.count[slot] = 0
		if e.sum != nil {
			e.totalSum -= e.sum[slot]
			e.sum[slot] = 0
		}
		if e.slotVals != nil {
			for _, v := range e.slotVals[slot] {
				if c := e.vals[v] - 1; c > 0 {
					e.vals[v] = c
				} else {
					delete(e.vals, v)
				}
			}
			e.slotVals[slot] = e.slotVals[slot][:0]
		}
	}
	e.lastBucket = b
}

// evictElsewhere frees room in some shard other than the caller's, scanning
// in a fixed order so single-threaded replay makes the same eviction
// decisions. Called with no shard lock held.
func (s *Store) evictElsewhere(except *shard, wm int64) {
	for i := range s.shards {
		sh := &s.shards[i]
		if sh == except {
			continue
		}
		sh.mu.Lock()
		removed := 0
		if len(sh.m) > 0 {
			removed = s.evictShard(sh, wm)
		}
		sh.mu.Unlock()
		if removed > 0 {
			return
		}
	}
}

// evictShard frees room in one shard and returns the number of entries
// dropped: dead entries (fully expired windows) go first — dropping them
// never changes an aggregate — then the least-recently-observed live entry.
// Called with the shard lock held.
func (s *Store) evictShard(sh *shard, wm int64) int {
	set := s.specs.Load()
	removed := 0
	var lruKey entryKey
	var lruTouch int64 = 1<<63 - 1
	haveLRU := false
	for k, e := range sh.m {
		st := &set.specs[k.spec]
		e.rotate(st, bucketOf(wm, st.geo.width))
		if e.totalCount == 0 {
			delete(sh.m, k)
			removed++
			continue
		}
		if e.lastTouch < lruTouch || (e.lastTouch == lruTouch && (!haveLRU || lessKey(k, lruKey))) {
			lruKey, lruTouch, haveLRU = k, e.lastTouch, true
		}
	}
	if removed > 0 {
		s.evictExpired.Add(int64(removed))
	} else if haveLRU {
		delete(sh.m, lruKey)
		removed++
		s.evictLRU.Add(1)
	}
	s.entries.Add(-int64(removed))
	return removed
}

func lessKey(a, b entryKey) bool {
	if a.spec != b.spec {
		return a.spec < b.spec
	}
	return a.key < b.key
}

// EvictIdle drops every entry whose window has fully expired at the current
// watermark. Such entries already aggregate to zero, so EvictIdle is
// semantically invisible — the differential tests interleave it freely.
func (s *Store) EvictIdle() {
	wm := s.watermark.Load()
	set := s.specs.Load()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		removed := 0
		for k, e := range sh.m {
			st := &set.specs[k.spec]
			e.rotate(st, bucketOf(wm, st.geo.width))
			if e.totalCount == 0 {
				delete(sh.m, k)
				removed++
			}
		}
		sh.mu.Unlock()
		s.entries.Add(-int64(removed))
		s.evictExpired.Add(int64(removed))
	}
}
