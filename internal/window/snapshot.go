package window

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Snapshot serialization: the serving daemon writes the store's full state
// into its snapshot directory (window.json) so velocity aggregates survive
// kill-9 without replaying the entire WAL, and WAL "observe" records only
// need to cover the tail since the last snapshot. The encoding is
// deterministic (entries sorted by spec then key) so snapshot bytes are
// reproducible for a given state.

type snapshotDoc struct {
	Watermark int64           `json:"watermark"`
	HasTime   bool            `json:"has_time"`
	Specs     []snapshotSpec  `json:"specs"`
	Entries   []snapshotEntry `json:"entries"`
}

type snapshotSpec struct {
	Agg    uint8 `json:"agg"`
	Key    int   `json:"key"`
	Val    int   `json:"val"`
	Window int64 `json:"window"`
}

type snapshotEntry struct {
	Spec       int32     `json:"spec"`
	Key        int64     `json:"key"`
	LastBucket int64     `json:"last_bucket"`
	LastTouch  int64     `json:"last_touch"`
	Count      []int32   `json:"count"`
	Sum        []int64   `json:"sum,omitempty"`
	Slots      [][]int64 `json:"slots,omitempty"`
}

// WriteSnapshot serializes the store's complete state. Concurrent observers
// are locked out shard by shard; callers wanting a point-in-time snapshot
// consistent with a WAL position must hold their observe lock around the
// call (the serving daemon does).
func (s *Store) WriteSnapshot(w io.Writer) error {
	set := s.specs.Load()
	doc := snapshotDoc{
		Watermark: s.watermark.Load(),
		HasTime:   s.hasTime.Load(),
		Specs:     make([]snapshotSpec, len(set.specs)),
	}
	for i, st := range set.specs {
		doc.Specs[i] = snapshotSpec{
			Agg: uint8(st.spec.Agg), Key: st.spec.Key, Val: st.spec.Val, Window: st.spec.Window,
		}
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, e := range sh.m {
			se := snapshotEntry{
				Spec: k.spec, Key: k.key,
				LastBucket: e.lastBucket, LastTouch: e.lastTouch,
				Count: append([]int32(nil), e.count...),
			}
			if e.sum != nil {
				se.Sum = append([]int64(nil), e.sum...)
			}
			if e.slotVals != nil {
				se.Slots = make([][]int64, len(e.slotVals))
				for si, vs := range e.slotVals {
					se.Slots[si] = append([]int64{}, vs...)
				}
			}
			doc.Entries = append(doc.Entries, se)
		}
		sh.mu.Unlock()
	}
	sort.Slice(doc.Entries, func(i, j int) bool {
		if doc.Entries[i].Spec != doc.Entries[j].Spec {
			return doc.Entries[i].Spec < doc.Entries[j].Spec
		}
		return doc.Entries[i].Key < doc.Entries[j].Key
	})
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// ReadSnapshot restores state previously written by WriteSnapshot into an
// empty store (New with the same Config). Running totals are recomputed
// from the serialized rings, so a truncated or hand-edited snapshot cannot
// desynchronize totals from buckets.
func (s *Store) ReadSnapshot(r io.Reader) error {
	dec := json.NewDecoder(r)
	var doc snapshotDoc
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("window: reading snapshot: %w", err)
	}
	specs := make([]Spec, len(doc.Specs))
	for i, sp := range doc.Specs {
		specs[i] = Spec{Agg: Agg(sp.Agg), Key: sp.Key, Val: sp.Val, Window: sp.Window}
	}
	s.EnsureSpecs(specs)
	set := s.specs.Load()
	s.watermark.Store(doc.Watermark)
	s.hasTime.Store(doc.HasTime)
	for _, se := range doc.Entries {
		if se.Spec < 0 || int(se.Spec) >= len(doc.Specs) {
			return fmt.Errorf("window: snapshot entry references unknown spec %d", se.Spec)
		}
		// Snapshot spec positions map onto registered positions via the spec
		// value (the store may already hold specs in a different order).
		si, ok := set.index[specs[se.Spec]]
		if !ok {
			return fmt.Errorf("window: snapshot spec %d not registered", se.Spec)
		}
		st := &set.specs[si]
		n := int(st.geo.n)
		if len(se.Count) != n {
			return fmt.Errorf("window: snapshot entry (spec %d, key %d): %d buckets, want %d",
				se.Spec, se.Key, len(se.Count), n)
		}
		e := newEntry(st)
		e.lastBucket = se.LastBucket
		e.lastTouch = se.LastTouch
		copy(e.count, se.Count)
		for _, c := range se.Count {
			e.totalCount += int64(c)
		}
		switch st.spec.Agg {
		case Sum:
			if len(se.Sum) != n {
				return fmt.Errorf("window: snapshot entry (spec %d, key %d): %d sum buckets, want %d",
					se.Spec, se.Key, len(se.Sum), n)
			}
			copy(e.sum, se.Sum)
			for _, v := range se.Sum {
				e.totalSum += v
			}
		case Distinct:
			if len(se.Slots) != n {
				return fmt.Errorf("window: snapshot entry (spec %d, key %d): %d value slots, want %d",
					se.Spec, se.Key, len(se.Slots), n)
			}
			for slot, vs := range se.Slots {
				e.slotVals[slot] = append(e.slotVals[slot], vs...)
				for _, v := range vs {
					e.vals[v]++
				}
			}
		}
		sh := s.shardFor(si, se.Key)
		sh.mu.Lock()
		if _, dup := sh.m[entryKey{spec: si, key: se.Key}]; !dup {
			sh.m[entryKey{spec: si, key: se.Key}] = e
			s.entries.Add(1)
		}
		sh.mu.Unlock()
	}
	return nil
}
