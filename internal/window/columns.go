package window

import "repro/internal/relation"

// ColumnSet is a per-relation materialization of window aggregates: one
// int64 column per spec, index-aligned with the relation, where Cols[s][i]
// is spec s's aggregate for tuple i's key at tuple i's (clamped) timestamp,
// with tuple i itself already observed — COUNT(key, W) of a tuple counts
// the tuple, so a threshold of ">= 1" fires on the first event.
//
// A ColumnSet is immutable after construction. The compiled evaluator
// caches one on the relation (relation.SetWindowColumns) so repeated
// evaluation and explain-time margin re-derivation read plain slices; the
// serving daemon stamps one per scored batch from its live store.
type ColumnSet struct {
	Specs []Spec
	Cols  [][]int64
	// Rows is the relation length the columns were computed for. Relations
	// grow (the serving daemon's feedback relation appends on every batch),
	// and a set stamped before an append is silently short — validity checks
	// must compare Rows against the live length, not just the spec list.
	Rows int
}

// Matches reports whether the set provides exactly the given specs in the
// given order and covers a relation of the given length — the cheap
// validity check evaluators run before trusting a cached set.
func (cs *ColumnSet) Matches(specs []Spec, rows int) bool {
	if cs == nil || cs.Rows != rows || len(cs.Specs) != len(specs) {
		return false
	}
	for i, sp := range specs {
		if cs.Specs[i] != sp {
			return false
		}
	}
	return true
}

// Column returns the column of the given spec, or nil when absent.
func (cs *ColumnSet) Column(sp Spec) []int64 {
	if cs == nil {
		return nil
	}
	for i, s := range cs.Specs {
		if s == sp {
			return cs.Cols[i]
		}
	}
	return nil
}

// ComputeColumns materializes the aggregate columns of the given specs over
// a relation by replaying it, in order, through a fresh store: observe
// tuple i, then read each spec's aggregate for tuple i's key. This is the
// offline path (refinement, capture, experiments); the serving daemon
// stamps live batches with Store.StampColumns instead. The specs slice is
// retained (not copied) so cache-validity checks can compare cheaply.
func ComputeColumns(rel *relation.Relation, specs []Spec) *ColumnSet {
	st := New(Config{TimeAttr: rel.Schema().TimeAttr()})
	st.EnsureSpecs(specs)
	return st.StampColumns(rel, specs)
}

// StampColumns observes every tuple of rel into the store, in order, and
// returns the per-tuple aggregate columns of the requested specs (which
// must be registered). The serving daemon calls this once per scored batch
// under its observe lock: transactions within a batch see each other in
// arrival order, and the stamped columns are exactly what the compiled
// evaluator then reads.
func (s *Store) StampColumns(rel *relation.Relation, specs []Spec) *ColumnSet {
	n := rel.Len()
	cs := newColumnSet(specs, n)
	set := s.specs.Load()
	for i := 0; i < n; i++ {
		t := rel.Tuple(i)
		s.Observe(t)
		wm := s.watermark.Load()
		stampRow(s, set, cs, specs, t, i, wm)
	}
	return cs
}

// PeekColumns is the read-only form of StampColumns: it stamps the current
// aggregates of the requested specs onto rel WITHOUT observing the tuples
// or lifting the watermark. A replication follower scores with this — its
// store mirrors the leader's observe stream, so local read traffic must not
// mutate it, and a scored transaction therefore does not count itself
// (COUNT(key, W) >= 1 fires only once the leader's stream delivers a prior
// event for the key).
func (s *Store) PeekColumns(rel *relation.Relation, specs []Spec) *ColumnSet {
	n := rel.Len()
	cs := newColumnSet(specs, n)
	set := s.specs.Load()
	wm := s.watermark.Load()
	for i := 0; i < n; i++ {
		stampRow(s, set, cs, specs, rel.Tuple(i), i, wm)
	}
	return cs
}

// newColumnSet carves the index-aligned columns for n rows out of one flat
// allocation.
func newColumnSet(specs []Spec, n int) *ColumnSet {
	cs := &ColumnSet{Specs: specs, Cols: make([][]int64, len(specs)), Rows: n}
	flat := make([]int64, n*len(specs))
	for k := range specs {
		cs.Cols[k] = flat[k*n : (k+1)*n : (k+1)*n]
	}
	return cs
}

// stampRow fills row i of the column set with each spec's aggregate for
// tuple t's key at watermark wm.
func stampRow(s *Store, set *specSet, cs *ColumnSet, specs []Spec, t relation.Tuple, i int, wm int64) {
	for k, sp := range specs {
		si, ok := set.index[sp]
		if !ok {
			continue // unregistered: reads as zero
		}
		cs.Cols[k][i] = s.aggregateAt(si, &set.specs[si], t[sp.Key], wm)
	}
}
