package window

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/order"
	"repro/internal/relation"
)

// testSchema: time (the time attribute), user (key), amount (value).
func testSchema(t testing.TB) *relation.Schema {
	t.Helper()
	s, err := relation.NewSchema(
		relation.Attribute{Name: "t", Kind: relation.Numeric, Domain: order.NewDomain(0, 1_000_000), Time: true},
		relation.Attribute{Name: "user", Kind: relation.Numeric, Domain: order.NewDomain(0, 1_000)},
		relation.Attribute{Name: "amount", Kind: relation.Numeric, Domain: order.NewDomain(0, 10_000)},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testSpecs() []Spec {
	return []Spec{
		{Agg: Count, Key: 1, Val: -1, Window: 10},
		{Agg: Sum, Key: 1, Val: 2, Window: 60},
		{Agg: Distinct, Key: 1, Val: 2, Window: 25},
	}
}

// naiveStore is the O(n) reference: it keeps every event's clamped
// timestamp and recomputes aggregates from the raw list using the package's
// exact bucketed semantics (events in the last n buckets including the
// watermark's). The bucketed ring store must match it on every read.
type naiveStore struct {
	timeAttr int
	specs    []Spec
	wm       int64
	hasTime  bool
	events   map[Spec]map[int64][]naiveEvent
}

type naiveEvent struct {
	t, val int64
}

func newNaive(timeAttr int, specs []Spec) *naiveStore {
	n := &naiveStore{timeAttr: timeAttr, specs: specs, events: map[Spec]map[int64][]naiveEvent{}}
	for _, sp := range specs {
		n.events[sp] = map[int64][]naiveEvent{}
	}
	return n
}

func (n *naiveStore) lift(t int64) {
	if !n.hasTime || t > n.wm {
		n.wm, n.hasTime = t, true
	}
}

func (n *naiveStore) observe(t relation.Tuple) {
	n.lift(t[n.timeAttr])
	for _, sp := range n.specs {
		val := int64(0)
		if sp.Val >= 0 {
			val = t[sp.Val]
		}
		n.events[sp][t[sp.Key]] = append(n.events[sp][t[sp.Key]], naiveEvent{t: n.wm, val: val})
	}
}

func (n *naiveStore) aggregate(sp Spec, key int64) int64 {
	geo := specGeometry(sp.Window)
	cutoff := bucketOf(n.wm, geo.width) - geo.n
	switch sp.Agg {
	case Sum:
		var total int64
		for _, e := range n.events[sp][key] {
			if bucketOf(e.t, geo.width) > cutoff {
				total += e.val
			}
		}
		return total
	case Distinct:
		seen := map[int64]bool{}
		for _, e := range n.events[sp][key] {
			if bucketOf(e.t, geo.width) > cutoff {
				seen[e.val] = true
			}
		}
		return int64(len(seen))
	default:
		var total int64
		for _, e := range n.events[sp][key] {
			if bucketOf(e.t, geo.width) > cutoff {
				total++
			}
		}
		return total
	}
}

func compareAll(t *testing.T, st *Store, naive *naiveStore, keys map[int64]bool) {
	t.Helper()
	for _, sp := range naive.specs {
		for key := range keys {
			if got, want := st.Aggregate(sp, key), naive.aggregate(sp, key); got != want {
				t.Fatalf("%v(key=%d) at wm %d: store %d, naive %d", sp.Agg, key, naive.wm, got, want)
			}
		}
	}
}

// TestStoreDifferential drives random Observe/Advance/EvictIdle
// interleavings and checks every aggregate against the naive recompute
// after each step.
func TestStoreDifferential(t *testing.T) {
	specs := testSpecs()
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		st := New(Config{TimeAttr: 0})
		st.EnsureSpecs(specs)
		naive := newNaive(0, specs)
		keys := map[int64]bool{}
		now := int64(rng.Intn(1000))
		for step := 0; step < 600; step++ {
			switch op := rng.Intn(10); {
			case op < 6: // observe, sometimes out of order (clamped)
				ts := now - int64(rng.Intn(40)) + int64(rng.Intn(20))
				key := int64(rng.Intn(6))
				amount := int64(rng.Intn(100))
				tup := relation.Tuple{ts, key, amount}
				st.Observe(tup)
				naive.observe(tup)
				keys[key] = true
			case op < 9: // advance
				now += int64(rng.Intn(30))
				st.Advance(now)
				naive.lift(now)
			default:
				st.EvictIdle() // semantically invisible
			}
			compareAll(t, st, naive, keys)
		}
	}
}

// FuzzStoreDifferential mirrors TestStoreDifferential with fuzz-chosen
// operation sequences (the FuzzEvalAttributedLazy pattern: the fuzzer owns
// the interleaving, the naive model owns the truth).
func FuzzStoreDifferential(f *testing.F) {
	f.Add([]byte{1, 2, 3, 40, 5, 0, 200, 9})
	f.Add([]byte{0, 0, 0, 0, 255, 254, 253, 1, 1, 1})
	specs := testSpecs()
	f.Fuzz(func(t *testing.T, data []byte) {
		st := New(Config{TimeAttr: 0})
		st.EnsureSpecs(specs)
		naive := newNaive(0, specs)
		keys := map[int64]bool{}
		now := int64(0)
		for i := 0; i+2 < len(data); i += 3 {
			op, a, b := data[i], int64(data[i+1]), int64(data[i+2])
			switch op % 4 {
			case 0, 1:
				ts := now + a - 64 // out-of-order events exercise clamping
				key := b % 5
				tup := relation.Tuple{ts, key, a}
				st.Observe(tup)
				naive.observe(tup)
				keys[key] = true
			case 2:
				now += a
				st.Advance(now)
				naive.lift(now)
			case 3:
				st.EvictIdle()
			}
		}
		compareAll(t, st, naive, keys)
	})
}

// TestConcurrentObserveAggregate exercises Observe vs Aggregate races under
// -race: correctness of the values is covered differentially above; this
// test is about the locking.
func TestConcurrentObserveAggregate(t *testing.T) {
	specs := testSpecs()
	st := New(Config{TimeAttr: 0})
	st.EnsureSpecs(specs)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				st.Observe(relation.Tuple{int64(i), int64(rng.Intn(8)), int64(rng.Intn(50))})
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				for _, sp := range specs {
					st.Aggregate(sp, int64(i%8))
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestObserveSteadyStateAllocs pins the serve hot path: once a key's entry
// and rings exist, Observe and Aggregate allocate nothing (COUNT and SUM;
// DISTINCT amortizes value-slice growth and is exempt).
func TestObserveSteadyStateAllocs(t *testing.T) {
	specs := []Spec{
		{Agg: Count, Key: 1, Val: -1, Window: 10},
		{Agg: Sum, Key: 1, Val: 2, Window: 60},
	}
	st := New(Config{TimeAttr: 0})
	st.EnsureSpecs(specs)
	now := int64(0)
	tup := relation.Tuple{0, 7, 42}
	for i := 0; i < 100; i++ { // warm up entry + rings
		now++
		tup[0] = now
		st.Observe(tup)
	}
	avg := testing.AllocsPerRun(200, func() {
		now++
		tup[0] = now
		st.Observe(tup)
		for _, sp := range specs {
			if st.Aggregate(sp, 7) < 0 {
				t.Fatal("negative aggregate")
			}
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state Observe+Aggregate allocates %.1f/op, want 0", avg)
	}
}

// TestEviction verifies the memory budget: dead entries go first, then the
// least-recently-observed, and the evictions counter moves.
func TestEviction(t *testing.T) {
	specs := []Spec{{Agg: Count, Key: 1, Val: -1, Window: 10}}
	st := New(Config{TimeAttr: 0, MaxEntries: 8})
	st.EnsureSpecs(specs)
	for k := int64(0); k < 32; k++ {
		st.Observe(relation.Tuple{int64(k), k, 0})
	}
	if got := st.Entries(); got > 9 {
		t.Fatalf("entries %d exceed budget 8 by more than one shard slack", got)
	}
	if st.Evictions() == 0 {
		t.Fatal("no evictions recorded despite exceeding the budget")
	}
	// The newest key survived with its count intact.
	if got := st.Aggregate(specs[0], 31); got != 1 {
		t.Fatalf("surviving key aggregate = %d, want 1", got)
	}
}

// TestEvictionsByCause splits the eviction counter the way the
// observability surface reports it: live entries squeezed out by the
// MaxEntries budget count as LRU, entries whose windows aggregated to zero
// count as expired, and the two causes always sum to Evictions().
func TestEvictionsByCause(t *testing.T) {
	specs := []Spec{{Agg: Count, Key: 1, Val: -1, Window: 10}}
	st := New(Config{TimeAttr: 0, MaxEntries: 8})
	st.EnsureSpecs(specs)

	// 32 distinct keys, all observed at the same minute: every entry is
	// live, so exceeding the budget can only evict least-recently-observed.
	for k := int64(0); k < 32; k++ {
		st.Observe(relation.Tuple{100, k, 0})
	}
	exp, lru := st.EvictionsByCause()
	if lru == 0 {
		t.Fatal("no LRU evictions despite 32 live keys over an 8-entry budget")
	}
	if exp != 0 {
		t.Fatalf("%d expired evictions from same-minute traffic, want 0 (nothing left any window)", exp)
	}

	// Advance the watermark far past every window, then sweep: the
	// surviving entries have aggregated to zero and are evicted as expired.
	before := st.Entries()
	if before == 0 {
		t.Fatal("budget eviction left the store empty")
	}
	st.Observe(relation.Tuple{1000, 99, 0})
	st.EvictIdle()
	exp, lru2 := st.EvictionsByCause()
	if exp != before {
		t.Fatalf("expired evictions = %d, want the %d pre-sweep survivors", exp, before)
	}
	if lru2 != lru {
		t.Fatalf("LRU evictions moved %d -> %d during an idle sweep", lru, lru2)
	}
	if st.Entries() != 1 { // only the fresh key remains
		t.Fatalf("entries = %d after sweep, want 1", st.Entries())
	}
	if got, want := st.Evictions(), exp+lru2; got != want {
		t.Fatalf("Evictions() = %d, want expired+lru = %d", got, want)
	}
}

// TestSnapshotRoundTrip: serialize, restore into a fresh store, and check
// both aggregates and future behavior (continued observation) agree.
func TestSnapshotRoundTrip(t *testing.T) {
	specs := testSpecs()
	rng := rand.New(rand.NewSource(99))
	st := New(Config{TimeAttr: 0})
	st.EnsureSpecs(specs)
	keys := map[int64]bool{}
	now := int64(0)
	for i := 0; i < 500; i++ {
		now += int64(rng.Intn(3))
		key := int64(rng.Intn(6))
		st.Observe(relation.Tuple{now, key, int64(rng.Intn(100))})
		keys[key] = true
	}
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New(Config{TimeAttr: 0})
	if err := restored.ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	check := func() {
		t.Helper()
		for _, sp := range specs {
			for key := range keys {
				if got, want := restored.Aggregate(sp, key), st.Aggregate(sp, key); got != want {
					t.Fatalf("%v(key=%d): restored %d, original %d", sp.Agg, key, got, want)
				}
			}
		}
	}
	check()
	for i := 0; i < 200; i++ { // divergence would show as time advances
		now += int64(rng.Intn(5))
		key := int64(rng.Intn(6))
		tup := relation.Tuple{now, key, int64(rng.Intn(100))}
		st.Observe(tup)
		restored.Observe(tup)
		check()
	}
}

// TestComputeColumns checks the observe-then-read contract: a tuple's
// column value includes the tuple itself.
func TestComputeColumns(t *testing.T) {
	s := testSchema(t)
	rel := relation.New(s)
	// Three events for user 1 within 10 minutes, then one 30 minutes later.
	for _, row := range [][3]int64{{100, 1, 10}, {103, 1, 20}, {105, 1, 30}, {135, 1, 40}} {
		rel.MustAppend(relation.Tuple{row[0], row[1], row[2]}, relation.Unlabeled, 0)
	}
	spec := Spec{Agg: Count, Key: 1, Val: -1, Window: 10}
	cs := ComputeColumns(rel, []Spec{spec})
	col := cs.Column(spec)
	if col == nil {
		t.Fatal("missing column")
	}
	if col[0] != 1 || col[1] != 2 || col[2] != 3 {
		t.Fatalf("burst counts = %v, want prefix 1,2,3", col[:3])
	}
	if col[3] != 1 {
		t.Fatalf("post-gap count = %d, want 1 (window expired)", col[3])
	}
}

func BenchmarkStoreObserve(b *testing.B) {
	specs := []Spec{
		{Agg: Count, Key: 1, Val: -1, Window: 10},
		{Agg: Sum, Key: 1, Val: 2, Window: 1440},
	}
	st := New(Config{TimeAttr: 0})
	st.EnsureSpecs(specs)
	tup := relation.Tuple{0, 0, 25}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tup[0] = int64(i / 64)
		tup[1] = int64(i % 512)
		st.Observe(tup)
	}
}
