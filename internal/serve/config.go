package serve

import (
	"errors"
	"fmt"
	"log/slog"
	"net/url"
	"runtime"
	"time"

	"repro/internal/alert"
	"repro/internal/core"
	"repro/internal/expert"
	"repro/internal/history"
	"repro/internal/relation"
	"repro/internal/rules"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

// Config parameterizes a Server. Schema is required; everything else has
// serving-grade defaults. Construct it in one place (internal/cli builds it
// from the daemon's flags), call Validate to get actionable errors instead
// of surprising runtime behavior, and hand it to New — New validates again,
// so programmatic callers cannot skip the checks.
type Config struct {
	// Schema of the transaction relation the daemon scores.
	Schema *relation.Schema
	// Rules is the initial rule set (may be empty; swap one in later). When
	// DataDir holds previously persisted state, the restored rules win and
	// Rules is only used for the very first boot.
	Rules *rules.Set
	// History receives every published version; nil means a fresh store.
	// Mutually exclusive with DataDir, which persists its own history.
	History *history.Store
	// Workers bounds concurrently evaluating scoring requests (the worker
	// pool). 0 means 2×GOMAXPROCS slots.
	Workers int
	// MaxBatch caps transactions per /v1/score or /v1/feedback request.
	// 0 means DefaultMaxBatch.
	MaxBatch int
	// MaxBodyBytes caps request bodies. 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// ScoreTimeout, SwapTimeout, FeedbackTimeout and RefineTimeout bound
	// the respective endpoints (0 means the package defaults).
	ScoreTimeout    time.Duration
	SwapTimeout     time.Duration
	FeedbackTimeout time.Duration
	RefineTimeout   time.Duration
	// DrainTimeout bounds the graceful shutdown in Serve.
	DrainTimeout time.Duration
	// Refine configures the sessions run by POST /v1/refine.
	Refine core.Options
	// Expert reviews /v1/refine proposals; nil means the auto-accepting
	// expert (the paper's unattended RUDOLF⁻ mode — a serving daemon has
	// no terminal to put an analyst on).
	Expert core.Expert
	// Registry receives the daemon's metrics; nil means a fresh registry.
	Registry *telemetry.Registry
	// TraceCapacity sizes the daemon's span ring buffer (GET /v1/trace
	// serves its contents). 0 means trace.DefaultCapacity. The daemon
	// always owns its tracer: span completions also feed the
	// refinement-duration and expert-query metrics.
	TraceCapacity int
	// SlowRingCapacity sizes the tail-sampled slow-request ring served by
	// GET /v1/debug/slow: requests slower than the live p99-tracking
	// threshold (or SlowFloor) keep their full span tree until overwritten
	// by later promotions. 0 means DefaultSlowRing; negative disables the
	// ring.
	SlowRingCapacity int
	// SlowFloor is the explicit tail-sampling floor: any request at least
	// this slow is promoted into the slow ring regardless of the adaptive
	// threshold. 0 means adaptive-only.
	SlowFloor time.Duration
	// Logger receives structured operational logs (publishes, refinements,
	// replays, drains). Nil discards them, keeping tests and library
	// callers quiet.
	Logger *slog.Logger

	// AuditCapacity bounds the sampled decision audit ring served by
	// GET /v1/audit. 0 means rulestats.DefaultAuditCapacity; negative
	// disables the ring.
	AuditCapacity int
	// AuditSampleEvery admits every n-th scored transaction into the audit
	// ring. 0 means rulestats.DefaultSampleEvery; negative disables
	// sampling.
	AuditSampleEvery int
	// DriftHalfLife is the half-life of the per-rule fire-rate EWMA behind
	// the drift score of GET /v1/rules/health. 0 means
	// rulestats.DefaultHalfLife.
	DriftHalfLife time.Duration
	// BaselineMinTx is the scored-transaction count after which a freshly
	// published version's per-rule baseline fire shares freeze (the drift
	// denominator). 0 means rulestats.DefaultBaselineMinTx.
	BaselineMinTx int
	// RuleLabelCap caps the number of per-rule metric series
	// (rudolf_rule_fires_total{rule=...} and friends): the first
	// RuleLabelCap rule indices get their own series, later ones share the
	// {rule="other"} overflow series, so an unbounded rule set cannot
	// explode a time-series database. 0 means DefaultRuleLabelCap;
	// negative means unbounded.
	RuleLabelCap int

	// DataDir enables durable serving state: analyst feedback and rule-set
	// publishes are written to a write-ahead log under DataDir/wal, bounded
	// by periodic snapshots under DataDir/snap-*, and replayed on boot
	// before the server is constructed (so /readyz never reports ready with
	// half-restored state). Empty disables durability (in-memory only, the
	// pre-durability behavior).
	DataDir string
	// Fsync selects the WAL fsync policy: "always" (default; an acked
	// record is durable), "interval" (bounded loss window, higher
	// throughput) or "never" (leave flushing to the OS). Requires DataDir.
	Fsync string
	// FsyncInterval is the flush period under Fsync "interval". 0 means
	// wal.DefaultSyncInterval. Requires Fsync "interval".
	FsyncInterval time.Duration
	// SnapshotInterval bounds WAL replay time by periodically writing a
	// snapshot (feedback CSV + rule history + version manifest) and pruning
	// replayed-into-snapshot WAL segments. 0 means DefaultSnapshotInterval;
	// negative disables periodic snapshots (one is still written on Close).
	// Requires DataDir.
	SnapshotInterval time.Duration
	// WALSegmentBytes is the WAL segment rotation threshold. 0 means
	// wal.DefaultSegmentBytes. Requires DataDir.
	WALSegmentBytes int64

	// AlertRules is the declarative alert rule set the embedded alert engine
	// evaluates (see internal/alert and DESIGN.md §17). Nil means
	// alert.DefaultRules(); an explicit empty slice disables every rule
	// while keeping the engine (and POST /v1/alerts) available.
	AlertRules []alert.Rule
	// AlertInterval is the evaluation period. 0 means
	// alert.DefaultInterval (15s); negative disables the periodic
	// evaluator (the engine still exists, and GET /v1/alerts?refresh=1
	// evaluates on demand — how tests and scripts drive it
	// deterministically).
	AlertInterval time.Duration
	// AlertWebhook, when non-empty, is an absolute http(s) URL that
	// receives every firing and resolved alert transition as a JSON POST
	// (asynchronously, with bounded queue and capped-backoff retries).
	AlertWebhook string

	// FollowURL turns the server into a read-only replication follower of
	// the leader at this base URL (e.g. "http://leader:8080"): it bootstraps
	// from the leader's newest snapshot, tails its WAL stream, serves reads
	// at the leader's rule version, and answers every mutating request with
	// 403 "read_only" plus a Location header to the leader. Mutually
	// exclusive with DataDir (a follower's durable state IS the leader's)
	// and History. See DESIGN.md §16.
	FollowURL string
}

// Defaults for the zero Config values.
const (
	DefaultMaxBatch         = 4096
	DefaultMaxBodyBytes     = 8 << 20
	DefaultScoreTimeout     = 5 * time.Second
	DefaultSwapTimeout      = 10 * time.Second
	DefaultRefine           = 120 * time.Second
	DefaultDrain            = 10 * time.Second
	DefaultSnapshotInterval = time.Minute
	DefaultRuleLabelCap     = 128
	// DefaultSlowRing is the slow-request ring capacity when
	// Config.SlowRingCapacity is 0.
	DefaultSlowRing = 64
)

// Validate checks the configuration for contradictions and out-of-range
// values, returning actionable errors. The zero values that mean "use the
// default" are accepted.
func (cfg Config) Validate() error {
	if cfg.Schema == nil {
		return errors.New("serve: Config.Schema is required (load one with relation.ReadSchemaJSON, or boot the synthetic dataset)")
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("serve: Config.Workers = %d; want >= 0 (0 means 2×GOMAXPROCS = %d)", cfg.Workers, 2*runtime.GOMAXPROCS(0))
	}
	if cfg.MaxBatch < 0 {
		return fmt.Errorf("serve: Config.MaxBatch = %d; want >= 0 (0 means the default %d)", cfg.MaxBatch, DefaultMaxBatch)
	}
	if cfg.MaxBodyBytes < 0 {
		return fmt.Errorf("serve: Config.MaxBodyBytes = %d; want >= 0 (0 means the default %d)", cfg.MaxBodyBytes, int64(DefaultMaxBodyBytes))
	}
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"ScoreTimeout", cfg.ScoreTimeout},
		{"SwapTimeout", cfg.SwapTimeout},
		{"FeedbackTimeout", cfg.FeedbackTimeout},
		{"RefineTimeout", cfg.RefineTimeout},
		{"DrainTimeout", cfg.DrainTimeout},
		{"FsyncInterval", cfg.FsyncInterval},
		{"DriftHalfLife", cfg.DriftHalfLife},
		{"SlowFloor", cfg.SlowFloor},
	} {
		if d.v < 0 {
			return fmt.Errorf("serve: Config.%s = %v; want >= 0 (0 means the default)", d.name, d.v)
		}
	}
	if cfg.TraceCapacity < 0 {
		return fmt.Errorf("serve: Config.TraceCapacity = %d; want >= 0 (0 means the trace default)", cfg.TraceCapacity)
	}
	if cfg.BaselineMinTx < 0 {
		return fmt.Errorf("serve: Config.BaselineMinTx = %d; want >= 0 (0 means the rulestats default)", cfg.BaselineMinTx)
	}
	if cfg.WALSegmentBytes < 0 {
		return fmt.Errorf("serve: Config.WALSegmentBytes = %d; want >= 0 (0 means the default %d)", cfg.WALSegmentBytes, int64(wal.DefaultSegmentBytes))
	}
	if cfg.DataDir == "" {
		switch {
		case cfg.Fsync != "":
			return errors.New("serve: Config.Fsync is set without Config.DataDir; durability options need a data directory")
		case cfg.FsyncInterval != 0:
			return errors.New("serve: Config.FsyncInterval is set without Config.DataDir; durability options need a data directory")
		case cfg.SnapshotInterval != 0:
			return errors.New("serve: Config.SnapshotInterval is set without Config.DataDir; durability options need a data directory")
		case cfg.WALSegmentBytes != 0:
			return errors.New("serve: Config.WALSegmentBytes is set without Config.DataDir; durability options need a data directory")
		}
	}
	policy, err := wal.ParseSyncPolicy(cfg.Fsync)
	if err != nil {
		return fmt.Errorf("serve: Config.Fsync: %w", err)
	}
	if cfg.FsyncInterval > 0 && policy != wal.SyncInterval {
		return fmt.Errorf("serve: Config.FsyncInterval = %v but Config.Fsync = %q; the interval only applies to Fsync \"interval\"", cfg.FsyncInterval, policy)
	}
	if cfg.DataDir != "" && cfg.History != nil {
		return errors.New("serve: Config.DataDir and Config.History are mutually exclusive; the data directory persists its own version history")
	}
	if cfg.AlertWebhook != "" {
		u, err := url.Parse(cfg.AlertWebhook)
		if err != nil || !u.IsAbs() || u.Host == "" || (u.Scheme != "http" && u.Scheme != "https") {
			return fmt.Errorf("serve: Config.AlertWebhook = %q; want an absolute http(s) URL like http://alertmanager:9093/hook", cfg.AlertWebhook)
		}
	}
	if cfg.FollowURL != "" {
		if cfg.DataDir != "" {
			return errors.New("serve: Config.FollowURL and Config.DataDir are mutually exclusive; a follower's durable state is the leader's")
		}
		if cfg.History != nil {
			return errors.New("serve: Config.FollowURL and Config.History are mutually exclusive; a follower replicates the leader's history")
		}
		u, err := url.Parse(cfg.FollowURL)
		if err != nil || !u.IsAbs() || u.Host == "" || (u.Scheme != "http" && u.Scheme != "https") {
			return fmt.Errorf("serve: Config.FollowURL = %q; want an absolute http(s) base URL like http://leader:8080", cfg.FollowURL)
		}
	}
	return nil
}

// withDefaults returns a copy with every zero field replaced by its default.
// Callers must have validated first.
func (cfg Config) withDefaults() Config {
	if cfg.Rules == nil {
		cfg.Rules = rules.NewSet()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.ScoreTimeout <= 0 {
		cfg.ScoreTimeout = DefaultScoreTimeout
	}
	if cfg.SwapTimeout <= 0 {
		cfg.SwapTimeout = DefaultSwapTimeout
	}
	if cfg.FeedbackTimeout <= 0 {
		cfg.FeedbackTimeout = DefaultSwapTimeout
	}
	if cfg.RefineTimeout <= 0 {
		cfg.RefineTimeout = DefaultRefine
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrain
	}
	if cfg.Expert == nil {
		// The auto-accepting expert: a serving daemon has no terminal to
		// put an analyst on, so /v1/refine defaults to the paper's
		// unattended RUDOLF⁻ mode.
		cfg.Expert = &expert.AutoAccept{}
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	if cfg.RuleLabelCap == 0 {
		cfg.RuleLabelCap = DefaultRuleLabelCap
	}
	switch {
	case cfg.SlowRingCapacity == 0:
		cfg.SlowRingCapacity = DefaultSlowRing
	case cfg.SlowRingCapacity < 0:
		cfg.SlowRingCapacity = 0 // disabled
	}
	if cfg.Fsync == "" {
		cfg.Fsync = string(wal.SyncAlways)
	}
	if cfg.AlertRules == nil {
		cfg.AlertRules = alert.DefaultRules()
	}
	if cfg.AlertInterval == 0 {
		cfg.AlertInterval = alert.DefaultInterval
	}
	if cfg.DataDir != "" && cfg.SnapshotInterval == 0 {
		cfg.SnapshotInterval = DefaultSnapshotInterval
	}
	return cfg
}
