package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func jsonUnmarshal(s string, v any) error { return json.Unmarshal([]byte(s), v) }

// readAll drains and closes a response body.
func readAll(t testing.TB, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// noRedirect returns a client that surfaces 3xx responses instead of
// following them, so the legacy-path contract is observable.
func noRedirect() *http.Client {
	return &http.Client{
		CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
	}
}

// TestLegacyRedirects: every legacy unversioned path answers 308 Permanent
// Redirect to its /v1 successor, with Deprecation and Link headers, and the
// query string preserved. 308 (not 301) so POST bodies survive the hop.
func TestLegacyRedirects(t *testing.T) {
	schema := testSchema(t)
	_, ts := newTestServer(t, Config{Schema: schema, Rules: mustRules(t, schema, "amount >= 100")})
	client := noRedirect()

	for _, base := range []string{"score", "rules", "feedback", "refine", "stats", "schema", "trace"} {
		resp, err := client.Get(ts.URL + "/" + base)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusPermanentRedirect {
			t.Errorf("GET /%s = %d, want 308", base, resp.StatusCode)
		}
		if loc := resp.Header.Get("Location"); loc != "/v1/"+base {
			t.Errorf("GET /%s Location = %q, want /v1/%s", base, loc, base)
		}
		if resp.Header.Get("Deprecation") == "" {
			t.Errorf("GET /%s: missing Deprecation header", base)
		}
		if link := resp.Header.Get("Link"); !strings.Contains(link, "successor-version") {
			t.Errorf("GET /%s Link = %q, want a successor-version relation", base, link)
		}
	}

	// The unversioned debug paths redirect like the rest of the legacy
	// surface (same 308 + Deprecation + successor-version Link).
	for _, p := range []string{"/debug/slow", "/debug/state"} {
		resp, err := client.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusPermanentRedirect {
			t.Errorf("GET %s = %d, want 308", p, resp.StatusCode)
		}
		if loc := resp.Header.Get("Location"); loc != "/v1"+p {
			t.Errorf("GET %s Location = %q, want /v1%s", p, loc, p)
		}
		if resp.Header.Get("Deprecation") == "" {
			t.Errorf("GET %s: missing Deprecation header", p)
		}
	}

	// The query string survives the redirect.
	resp, err := client.Get(ts.URL + "/trace?format=jsonl")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if loc := resp.Header.Get("Location"); loc != "/v1/trace?format=jsonl" {
		t.Errorf("redirect Location = %q, want query preserved", loc)
	}

	// Infra endpoints stay unversioned: no redirect.
	for _, p := range []string{"/healthz", "/readyz", "/metrics"} {
		resp, err := client.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200 (no redirect)", p, resp.StatusCode)
		}
	}

	// And a POST through the redirect lands with its body intact (the
	// default client follows 308 preserving method and body).
	var sr scoreResponse
	code, body := postJSON(t, ts.URL+"/score", tx(500, 3, 9), &sr)
	if code != http.StatusOK || sr.Count != 1 {
		t.Fatalf("POST via legacy /score = %d (%s), want the batch to survive the 308", code, body)
	}
}

// TestErrorEnvelope: every failure mode answers the uniform envelope with a
// stable code and the request id.
func TestErrorEnvelope(t *testing.T) {
	schema := testSchema(t)
	_, ts := newTestServer(t, Config{Schema: schema, Rules: mustRules(t, schema, "amount >= 100")})

	check := func(t *testing.T, code int, body, wantCode string, wantStatus int) {
		t.Helper()
		if code != wantStatus {
			t.Fatalf("status = %d (%s), want %d", code, body, wantStatus)
		}
		var er errorResponse
		if err := jsonUnmarshal(body, &er); err != nil {
			t.Fatalf("body %q is not the error envelope: %v", body, err)
		}
		if er.Error.Code != wantCode {
			t.Errorf("code = %q, want %q", er.Error.Code, wantCode)
		}
		if er.Error.Message == "" {
			t.Error("empty error message")
		}
	}

	t.Run("bad request", func(t *testing.T) {
		code, body := postJSON(t, ts.URL+"/v1/score", map[string]any{"transactions": []any{}}, nil)
		check(t, code, body, CodeBadRequest, http.StatusBadRequest)
	})
	t.Run("method not allowed", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/score")
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		check(t, resp.StatusCode, body, CodeMethodNotAllowed, http.StatusMethodNotAllowed)
	})
	t.Run("not found", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/nope")
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		check(t, resp.StatusCode, body, CodeNotFound, http.StatusNotFound)
	})
	t.Run("request id present", func(t *testing.T) {
		code, body := postJSON(t, ts.URL+"/v1/score", map[string]any{"transactions": []any{}}, nil)
		if code != http.StatusBadRequest {
			t.Fatalf("status = %d", code)
		}
		var er errorResponse
		if err := jsonUnmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(er.Error.RequestID, "req-") {
			t.Errorf("request_id = %q, want a req-… id", er.Error.RequestID)
		}
	})
}

// TestIfMatch: optimistic concurrency on rule publishes via the version
// ETag.
func TestIfMatch(t *testing.T) {
	schema := testSchema(t)
	_, ts := newTestServer(t, Config{Schema: schema, Rules: mustRules(t, schema, "amount >= 100")})

	// GET exposes the current version as a strong ETag.
	resp, err := http.Get(ts.URL + "/v1/rules")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	etag := resp.Header.Get("ETag")
	if etag != `"1"` {
		t.Fatalf("ETag = %q, want %q", etag, `"1"`)
	}

	post := func(t *testing.T, ifMatch string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/rules",
			strings.NewReader(`{"rules":["amount >= 200"],"comment":"cas"}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if ifMatch != "" {
			req.Header.Set("If-Match", ifMatch)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Matching If-Match publishes and bumps the ETag.
	resp = post(t, etag)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST with matching If-Match = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("ETag"); got != `"2"` {
		t.Fatalf("post-publish ETag = %q, want %q", got, `"2"`)
	}

	// The now-stale tag conflicts, and the response carries the current tag.
	resp = post(t, etag)
	body = readAll(t, resp)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("POST with stale If-Match = %d: %s", resp.StatusCode, body)
	}
	var er errorResponse
	if err := jsonUnmarshal(body, &er); err != nil || er.Error.Code != CodeConflict {
		t.Fatalf("conflict body = %q (err %v), want code %q", body, err, CodeConflict)
	}
	if got := resp.Header.Get("ETag"); got != `"2"` {
		t.Fatalf("conflict ETag = %q, want the current %q", got, `"2"`)
	}

	// "*" and absence both bypass the check.
	resp = post(t, "*")
	readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST with If-Match: * = %d", resp.StatusCode)
	}
	resp = post(t, "")
	readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST without If-Match = %d", resp.StatusCode)
	}

	// Garbage is a 400, not a silent bypass.
	resp = post(t, `"seven"`)
	body = readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST with bad If-Match = %d: %s", resp.StatusCode, body)
	}
}

// TestAPIContract pins the whole /v1 surface, route × method, on a leader
// and on a follower: expected status, stable error code and envelope shape.
// The follower is constructed with a FollowURL but never connected — the
// contract of an un-bootstrapped follower (not ready, read-only, version 0)
// is exactly what a load balancer and a retrying client see during catch-up.
func TestAPIContract(t *testing.T) {
	schema := testSchema(t)
	leader, lts := newTestServer(t, Config{
		Schema:  schema,
		Rules:   mustRules(t, schema, "amount >= 100"),
		DataDir: t.TempDir(),
		Fsync:   "never",
	})
	defer leader.Close()
	// Port 9 (discard) is never listened on; Follow is never started, so the
	// URL is only identity.
	follower, err := New(Config{Schema: schema, FollowURL: "http://127.0.0.1:9"})
	if err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(follower.Handler())
	defer fts.Close()

	scoreBody := `{"attrs":{"amount":150,"hour":3},"score":10}`
	feedbackBody := `{"transactions":[{"attrs":{"amount":150,"hour":3},"score":10,"label":"fraud"}]}`
	rulesBody := `{"rules":["amount >= 50"],"comment":"contract"}`

	// One expectation: HTTP status plus the envelope's stable code ("" for
	// success — no envelope to check).
	type want struct {
		status int
		code   string
	}
	ok := want{http.StatusOK, ""}
	readOnly := want{http.StatusForbidden, CodeReadOnly}
	notAllowed := want{http.StatusMethodNotAllowed, CodeMethodNotAllowed}
	notFound := want{http.StatusNotFound, CodeNotFound}

	// Rows run in order against both servers; mutating leader rows are
	// sequenced so earlier rows never invalidate later expectations (refine
	// runs before feedback exists, so it answers 409).
	rows := []struct {
		method, path, body string
		leader, follower   want
	}{
		{"POST", "/v1/score", scoreBody, ok, ok},
		{"GET", "/v1/score", "", notAllowed, notAllowed},
		{"GET", "/v1/rules", "", ok, ok},
		{"DELETE", "/v1/rules", "", notAllowed, notAllowed},
		{"POST", "/v1/refine", "{}", want{http.StatusConflict, CodeConflict}, readOnly},
		{"GET", "/v1/refine", "", notAllowed, notAllowed},
		{"POST", "/v1/feedback", feedbackBody, ok, readOnly},
		{"GET", "/v1/feedback", "", notAllowed, notAllowed},
		{"POST", "/v1/rules", rulesBody, ok, readOnly},
		{"GET", "/v1/stats", "", ok, ok},
		{"POST", "/v1/stats", "{}", notAllowed, notAllowed},
		{"GET", "/v1/schema", "", ok, ok},
		{"POST", "/v1/schema", "{}", notAllowed, notAllowed},
		{"GET", "/v1/status", "", ok, ok},
		{"POST", "/v1/status", "{}", notAllowed, notAllowed},
		{"GET", "/v1/rules/health", "", ok, ok},
		{"POST", "/v1/rules/health", "{}", notAllowed, notAllowed},
		{"GET", "/v1/audit", "", ok, ok},
		{"POST", "/v1/audit", "{}", notAllowed, notAllowed},
		// /v1/alerts is node-local on every role: a follower accepts alert
		// rules (its replication lag is exactly what they watch), so POST is
		// deliberately NOT read-only-guarded.
		{"GET", "/v1/alerts", "", ok, ok},
		{"POST", "/v1/alerts", `{"rules":["alert contract: value(rudolf_score_inflight) > 1000000"]}`, ok, ok},
		{"DELETE", "/v1/alerts", "", notAllowed, notAllowed},
		{"GET", "/v1/trace", "", ok, ok},
		{"POST", "/v1/trace", "{}", notAllowed, notAllowed},
		{"GET", "/v1/debug/slow", "", ok, ok},
		{"POST", "/v1/debug/slow", "{}", notAllowed, notAllowed},
		{"GET", "/v1/debug/state", "", ok, ok},
		{"POST", "/v1/debug/state", "{}", notAllowed, notAllowed},
		// The replication surface: served by a durable leader, 404 with the
		// uniform envelope on a node without a WAL (the follower), 405 for
		// wrong methods on both. ?from=0 is invalid, so the leader's stream
		// row answers 400 instead of long-polling the test.
		{"GET", "/v1/wal/segments", "", ok, notFound},
		{"POST", "/v1/wal/segments", "{}", notAllowed, notAllowed},
		{"GET", "/v1/wal/snapshot", "", notFound, notFound}, // no snapshot yet on the leader either
		{"POST", "/v1/wal/snapshot", "{}", notAllowed, notAllowed},
		{"GET", "/v1/wal/stream?from=0", "", want{http.StatusBadRequest, CodeBadRequest}, notFound},
		{"POST", "/v1/wal/stream", "{}", notAllowed, notAllowed},
		// Catch-all and infra.
		{"GET", "/v1/nope", "", notFound, notFound},
		{"GET", "/readyz", "", ok, want{http.StatusServiceUnavailable, CodeNotReady}},
	}

	run := func(t *testing.T, base, role string, method, path, body string, w want) {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, base+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		if body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		got := readAll(t, resp)
		if resp.StatusCode != w.status {
			t.Fatalf("%s: %s %s = %d (%s), want %d", role, method, path, resp.StatusCode, got, w.status)
		}
		if w.code == "" {
			return
		}
		var er errorResponse
		if err := jsonUnmarshal(got, &er); err != nil {
			t.Fatalf("%s: %s %s body %q is not the error envelope: %v", role, method, path, got, err)
		}
		if er.Error.Code != w.code {
			t.Errorf("%s: %s %s code = %q, want %q", role, method, path, er.Error.Code, w.code)
		}
		if er.Error.Message == "" {
			t.Errorf("%s: %s %s: empty error message", role, method, path)
		}
		if w.code == CodeMethodNotAllowed && resp.Header.Get("Allow") == "" {
			t.Errorf("%s: %s %s: 405 without an Allow header", role, method, path)
		}
		if w.code == CodeReadOnly && resp.Header.Get("Location") == "" {
			t.Errorf("%s: %s %s: read_only without a Location to the leader", role, method, path)
		}
	}
	for _, row := range rows {
		run(t, lts.URL, "leader", row.method, row.path, row.body, row.leader)
		run(t, fts.URL, "follower", row.method, row.path, row.body, row.follower)
	}
}

// TestConfigValidateBasics covers the non-durability Validate diagnostics.
func TestConfigValidateBasics(t *testing.T) {
	if err := (Config{}).Validate(); err == nil || !strings.Contains(err.Error(), "Schema is required") {
		t.Errorf("Validate of zero Config = %v, want a schema-required error", err)
	}
	schema := testSchema(t)
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"negative workers", func(c *Config) { c.Workers = -1 }},
		{"negative batch", func(c *Config) { c.MaxBatch = -1 }},
		{"negative body", func(c *Config) { c.MaxBodyBytes = -1 }},
		{"negative timeout", func(c *Config) { c.ScoreTimeout = -1 }},
		{"negative trace capacity", func(c *Config) { c.TraceCapacity = -1 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Schema: schema}
			tc.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("Validate accepted an out-of-range value")
			}
		})
	}
	// And New refuses what Validate refuses.
	if _, err := New(Config{Schema: schema, Workers: -1}); err == nil {
		t.Error("New accepted a config Validate rejects")
	}
}
