package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// TestAppendJSONString pins the hand-rolled string escaper against
// encoding/json across the cases that matter: clean ASCII (the fast path),
// quotes, backslashes, every control character, multi-byte UTF-8 and
// invalid UTF-8 (which both encoders replace with U+FFFD).
func TestAppendJSONString(t *testing.T) {
	cases := []string{
		"",
		"amount",
		`rule "7" says \ hello`,
		"tab\there\nnewline\rcr",
		"\x00\x01\x1f",
		"caffè ☕ 🚨",
		"bad\xffutf8",
		strings.Repeat("a", 300),
	}
	for _, s := range cases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		got := appendJSONString(nil, s)
		// encoding/json additionally escapes <, > and & for HTML safety; our
		// inputs never contain them (attribute names and rule texts come from
		// the parser's charset), so byte equality holds for these cases.
		if string(got) != string(want) {
			t.Fatalf("appendJSONString(%q) = %s, want %s", s, got, want)
		}
	}
}

// TestScoreEncodeDifferential proves the hand-rolled score encoder emits
// exactly the documented wire shape: the response decodes into the wire
// structs and re-encodes to the same canonical JSON, for plain, explain and
// explain_all modes.
func TestScoreEncodeDifferential(t *testing.T) {
	schema := testSchema(t)
	_, ts := newTestServer(t, Config{Schema: schema, Rules: mustRules(t, schema, "amount >= 100", "hour <= 6 && score >= 50")})
	for _, mode := range []map[string]any{
		{},
		{"explain": true},
		{"explain_all": true},
	} {
		body := map[string]any{"transactions": []map[string]any{tx(250, 12, 0), tx(50, 3, 80), tx(10, 22, 0)}}
		for k, v := range mode {
			body[k] = v
		}
		code, raw := postJSON(t, ts.URL+"/v1/score", body, nil)
		if code != http.StatusOK {
			t.Fatalf("%v: score = %d: %s", mode, code, raw)
		}
		var resp scoreResponse
		if err := json.Unmarshal([]byte(raw), &resp); err != nil {
			t.Fatalf("%v: hand-encoded response does not decode as scoreResponse: %v\n%s", mode, err, raw)
		}
		re, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		// Round-trip stability: decode(hand) == decode(encode(decode(hand))).
		var a, b any
		if err := json.Unmarshal([]byte(raw), &a); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(re, &b); err != nil {
			t.Fatal(err)
		}
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			t.Fatalf("%v: hand-rolled encoding is not wire-identical to the struct form\n hand: %s\nstruct: %s", mode, aj, bj)
		}
		if resp.Count != 3 || len(resp.Flagged) != 3 {
			t.Fatalf("%v: count/flagged = %d/%d, want 3/3", mode, resp.Count, len(resp.Flagged))
		}
	}
}

// TestScoreContentLength pins the exact-Content-Length contract of the
// buffered write path (no chunked encoding on score responses).
func TestScoreContentLength(t *testing.T) {
	schema := testSchema(t)
	_, ts := newTestServer(t, Config{Schema: schema, Rules: mustRules(t, schema, "amount >= 100")})
	resp, err := http.Post(ts.URL+"/v1/score", "application/json",
		strings.NewReader(`{"transactions":[{"attrs":{"amount":250,"hour":3},"score":0}],"explain":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := readAll(t, resp)
	cl := resp.Header.Get("Content-Length")
	if cl == "" {
		t.Fatal("score response carries no Content-Length")
	}
	if n, _ := strconv.Atoi(cl); n != len(body) {
		t.Fatalf("Content-Length %s != body length %d", cl, len(body))
	}
}

// TestWriteJSONMarshalFailure pins the writeJSON bugfix: a value the encoder
// cannot marshal (NaN) must produce a complete 500 error envelope — not a
// 200 header followed by torn JSON.
func TestWriteJSONMarshalFailure(t *testing.T) {
	schema := testSchema(t)
	s, _ := newTestServer(t, Config{Schema: schema, Rules: mustRules(t, schema, "amount >= 100")})
	rec := httptest.NewRecorder()
	s.writeJSON(rec, http.StatusOK, map[string]float64{"oops": math.NaN()})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("marshal failure answered %d, want 500", rec.Code)
	}
	var env errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("fallback envelope is not valid JSON: %v\n%s", err, rec.Body.Bytes())
	}
	if env.Error.Code != CodeInternal {
		t.Fatalf("fallback code = %q, want %q", env.Error.Code, CodeInternal)
	}
	if cl := rec.Header().Get("Content-Length"); cl != strconv.Itoa(rec.Body.Len()) {
		t.Fatalf("fallback Content-Length %q != body length %d", cl, rec.Body.Len())
	}
}

// TestScoreEncodeAllocs pins the request-handling allocation budgets of the
// plain and explain score paths (satellite of the 277-allocs/op single-score
// finding): the whole in-process handler round trip — decode, eval, encode —
// must stay within a budget that rules out per-rule/per-check allocation
// regressions. Measured directly against the mux to exclude client and
// socket noise.
func TestScoreEncodeAllocs(t *testing.T) {
	schema := testSchema(t)
	s, _ := newTestServer(t, Config{Schema: schema, Rules: mustRules(t, schema,
		"amount >= 100", "hour <= 6 && score >= 50", "amount >= 9000", "hour >= 22")})
	h := s.Handler()
	run := func(body string) func() {
		return func() {
			req := httptest.NewRequest(http.MethodPost, "/v1/score", strings.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Fatalf("score = %d: %s", rec.Code, rec.Body.String())
			}
		}
	}
	plain := run(`{"transactions":[{"attrs":{"amount":250,"hour":3},"score":0}]}`)
	explain := run(`{"transactions":[{"attrs":{"amount":250,"hour":3},"score":80}],"explain":true}`)
	explainAll := run(`{"transactions":[{"attrs":{"amount":250,"hour":3},"score":80}],"explain_all":true}`)
	plain()
	explain()
	explainAll() // warm pools
	// The remaining allocations are httptest plumbing, request decode
	// (map[string]json.RawMessage per tx) and per-request bookkeeping — all
	// independent of rule count and check count. The pre-fix explain path
	// allocated per rule AND per check per tuple; with 4 rules these budgets
	// would already be blown by a regression.
	if n := testing.AllocsPerRun(50, plain); n > 100 {
		t.Fatalf("plain single score = %.0f allocs/run, want <= 100", n)
	}
	if n := testing.AllocsPerRun(50, explain); n > 110 {
		t.Fatalf("explain single score = %.0f allocs/run, want <= 110", n)
	}
	if n := testing.AllocsPerRun(50, explainAll); n > 120 {
		t.Fatalf("explain_all single score = %.0f allocs/run, want <= 120", n)
	}
}
