package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/order"
	"repro/internal/relation"
)

// velocityServeSchema has a time attribute, so servers built over it carry a
// live sliding-window aggregate store.
func velocityServeSchema(t testing.TB) *relation.Schema {
	t.Helper()
	return relation.MustSchema(
		relation.Attribute{Name: "minute", Kind: relation.Numeric,
			Domain: order.NewDomain(0, 1_000_000), Time: true},
		relation.Attribute{Name: "user", Kind: relation.Numeric,
			Domain: order.NewDomain(0, 1000)},
		relation.Attribute{Name: "amount", Kind: relation.Numeric,
			Domain: order.NewDomain(0, 10000)},
	)
}

func vtx(minute, user, amount int64) map[string]any {
	return map[string]any{
		"attrs": map[string]any{"minute": minute, "user": user, "amount": amount},
		"score": 10,
	}
}

// TestScoreVelocityRule: a windowed rule is stateful across /v1/score
// requests — the third transaction of one user inside the window fires
// COUNT(user, 10m) >= 3 while other users and expired activity do not, and
// the explain path renders the aggregate check with its signed margin.
func TestScoreVelocityRule(t *testing.T) {
	schema := velocityServeSchema(t)
	_, ts := newTestServer(t, Config{
		Schema: schema,
		Rules:  mustRules(t, schema, "COUNT(user, 10m) >= 3"),
	})

	var resp scoreResponse
	for i, want := range []bool{false, false} {
		code, body := postJSON(t, ts.URL+"/v1/score", vtx(int64(100+i), 1, 50), &resp)
		if code != http.StatusOK {
			t.Fatalf("score %d: %d %s", i, code, body)
		}
		if resp.Flagged[0] != want {
			t.Fatalf("transaction %d flagged = %v, want %v", i, resp.Flagged[0], want)
		}
	}

	// Third event in the window: the rule fires, and explain attributes the
	// verdict to the windowed check with margin aggregate − threshold = 0.
	req := map[string]any{"transactions": []any{vtx(102, 1, 50)}, "explain": true}
	code, body := postJSON(t, ts.URL+"/v1/score", req, &resp)
	if code != http.StatusOK {
		t.Fatalf("explain score: %d %s", code, body)
	}
	if !resp.Flagged[0] {
		t.Fatalf("third in-window transaction not flagged: %s", body)
	}
	if len(resp.Explanations) != 1 || len(resp.Explanations[0].Rules) != 1 {
		t.Fatalf("explanations = %+v", resp.Explanations)
	}
	checks := resp.Explanations[0].Rules[0].Checks
	if len(checks) != 1 { // the windowed condition is the rule's only check
		t.Fatalf("checks = %+v, want exactly the window check", checks)
	}
	win := checks[0]
	if win.Attr != "COUNT(user, 10m)" || win.Kind != "window" || !win.Pass || win.Margin != 0 {
		t.Fatalf("window check = %+v, want attr %q kind window pass margin 0",
			win, "COUNT(user, 10m)")
	}

	// A different user is at count 1: not flagged, and the window margin is
	// negative by exactly the missing velocity.
	code, _ = postJSON(t, ts.URL+"/v1/score",
		map[string]any{"transactions": []any{vtx(103, 2, 50)}, "explain_all": true}, &resp)
	if code != http.StatusOK || resp.Flagged[0] {
		t.Fatalf("other user flagged (code %d): %+v", code, resp)
	}
	win = resp.Explanations[0].Rules[0].Checks[0]
	if win.Kind != "window" || win.Pass || win.Margin != -2 {
		t.Fatalf("other user's window check = %+v, want fail margin -2", win)
	}

	// Far past the window the burst has expired: user 1 is back to count 1.
	code, _ = postJSON(t, ts.URL+"/v1/score", vtx(500, 1, 50), &resp)
	if code != http.StatusOK || resp.Flagged[0] {
		t.Fatalf("expired-window transaction flagged (code %d): %+v", code, resp)
	}
}

// TestScoreVelocityBatchOrder: within one batch, each transaction's
// aggregate includes itself and every earlier transaction of the batch — a
// burst arriving as one request still trips the rule on its third event.
func TestScoreVelocityBatchOrder(t *testing.T) {
	schema := velocityServeSchema(t)
	_, ts := newTestServer(t, Config{
		Schema: schema,
		Rules:  mustRules(t, schema, "COUNT(user, 10m) >= 3"),
	})
	var resp scoreResponse
	code, body := postJSON(t, ts.URL+"/v1/score", map[string]any{
		"transactions": []any{vtx(10, 7, 50), vtx(11, 7, 50), vtx(12, 7, 50), vtx(13, 7, 50)},
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("batch: %d %s", code, body)
	}
	want := []bool{false, false, true, true}
	for i, w := range want {
		if resp.Flagged[i] != w {
			t.Fatalf("flagged = %v, want %v", resp.Flagged, want)
		}
	}
}

// velocityDurableConfig mirrors durableConfig over the velocity schema with
// a windowed rule published from boot.
func velocityDurableConfig(t testing.TB, dir string) Config {
	t.Helper()
	schema := velocityServeSchema(t)
	return Config{
		Schema:           schema,
		Rules:            mustRules(t, schema, "COUNT(user, 10m) >= 3"),
		DataDir:          dir,
		Fsync:            "always",
		SnapshotInterval: -1,
	}
}

// TestDurableVelocityCrashRecovery: scored transactions are observe records
// in the WAL, so a kill -9 and reboot rebuilds the window aggregates exactly
// — the third event of a burst whose first two were scored by the previous
// process still fires the rule.
func TestDurableVelocityCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, velocityDurableConfig(t, dir))
	var resp scoreResponse
	for i := 0; i < 2; i++ {
		code, body := postJSON(t, ts.URL+"/v1/score", vtx(int64(100+i), 1, 50), &resp)
		if code != http.StatusOK || resp.Flagged[0] {
			t.Fatalf("pre-crash score %d: code %d flagged %v (%s)", i, code, resp.Flagged, body)
		}
	}
	ts.Close()
	// No Close(): crash.

	s2, err := New(velocityDurableConfig(t, dir))
	if err != nil {
		t.Fatalf("recovery boot: %v", err)
	}
	defer s2.Close()
	ts2 := newHTTPServer(t, s2)
	code, body := postJSON(t, ts2.URL+"/v1/score",
		map[string]any{"transactions": []any{vtx(102, 1, 50)}, "explain": true}, &resp)
	if code != http.StatusOK {
		t.Fatalf("post-crash score: %d %s", code, body)
	}
	if !resp.Flagged[0] {
		t.Fatalf("aggregates lost across crash: %s", body)
	}
	if win := resp.Explanations[0].Rules[0].Checks[0]; win.Kind != "window" || win.Margin != 0 {
		t.Fatalf("post-crash window check = %+v, want margin 0 (count exactly 3)", win)
	}
}

// TestDurableVelocitySnapshot: window aggregates ride in the snapshot
// (window.json) and observe records past it replay on top, so a crash after
// a snapshot mid-burst still reconstructs the exact count.
func TestDurableVelocitySnapshot(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, velocityDurableConfig(t, dir))
	var resp scoreResponse
	for i := 0; i < 2; i++ {
		if code, body := postJSON(t, ts.URL+"/v1/score", vtx(int64(100+i), 1, 50), &resp); code != http.StatusOK {
			t.Fatalf("score %d: %d %s", i, code, body)
		}
	}
	if err := s.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	// One more observe lands in the WAL after the snapshot.
	if code, body := postJSON(t, ts.URL+"/v1/score", vtx(102, 1, 50), &resp); code != http.StatusOK {
		t.Fatalf("post-snapshot score: %d %s", code, body)
	}
	if !resp.Flagged[0] {
		t.Fatalf("third in-window transaction not flagged before crash: %+v", resp)
	}
	ts.Close()
	// No Close(): crash.

	s2, err := New(velocityDurableConfig(t, dir))
	if err != nil {
		t.Fatalf("recovery boot: %v", err)
	}
	defer s2.Close()
	ts2 := newHTTPServer(t, s2)
	code, body := postJSON(t, ts2.URL+"/v1/score",
		map[string]any{"transactions": []any{vtx(103, 1, 50)}, "explain": true}, &resp)
	if code != http.StatusOK {
		t.Fatalf("post-crash score: %d %s", code, body)
	}
	if !resp.Flagged[0] {
		t.Fatalf("aggregates lost across snapshot + crash: %s", body)
	}
	// Margin 1 pins the count at exactly 4: two observes from the snapshot,
	// one replayed from the WAL, plus this transaction.
	if win := resp.Explanations[0].Rules[0].Checks[0]; win.Margin != 1 {
		t.Fatalf("post-crash window check = %+v, want margin 1 (count exactly 4)", win)
	}
}

// TestFeedbackVelocityCapture: repeated feedback appends under a published
// windowed rule must stay healthy — each append grows the feedback relation,
// and the capture evaluator has to recompute the aggregate columns for the
// new length instead of reading past a stale cached stamp (regression: the
// second append used to panic the evaluator's worker goroutines).
func TestFeedbackVelocityCapture(t *testing.T) {
	schema := velocityServeSchema(t)
	_, ts := newTestServer(t, Config{
		Schema: schema,
		Rules:  mustRules(t, schema, "COUNT(user, 10m) >= 3"),
	})
	var resp feedbackResponse
	for i := 0; i < 4; i++ {
		tx := vtx(int64(100+i), 1, 50)
		tx["label"] = "fraud"
		code, body := postJSON(t, ts.URL+"/v1/feedback",
			map[string]any{"transactions": []any{tx}}, &resp)
		if code != http.StatusOK {
			t.Fatalf("feedback %d: %d %s", i, code, body)
		}
		if resp.Total != i+1 || len(resp.Captured) != 1 {
			t.Fatalf("feedback %d: total %d captured %v", i, resp.Total, resp.Captured)
		}
		// Feedback is never observed into the live window store, so capture
		// replays the feedback relation offline: the burst's third and later
		// transactions are captured by the windowed rule, earlier ones not.
		if want := i >= 2; resp.Captured[0] != want {
			t.Fatalf("feedback %d: captured %v, want %v", i, resp.Captured[0], want)
		}
	}
}

// newHTTPServer wraps an already-constructed Server for tests that reopen a
// data directory themselves.
func newHTTPServer(t testing.TB, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}
