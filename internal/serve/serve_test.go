package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/order"
	"repro/internal/relation"
	"repro/internal/rules"
	"repro/internal/telemetry"
)

// testSchema is a two-attribute numeric schema: amount in [0, 10000] and
// hour in [0, 23].
func testSchema(t testing.TB) *relation.Schema {
	t.Helper()
	return relation.MustSchema(
		relation.Attribute{Name: "amount", Kind: relation.Numeric, Domain: order.NewDomain(0, 10000)},
		relation.Attribute{Name: "hour", Kind: relation.Numeric, Domain: order.NewDomain(0, 23)},
	)
}

func mustRules(t testing.TB, s *relation.Schema, texts ...string) *rules.Set {
	t.Helper()
	rs := rules.NewSet()
	for _, text := range texts {
		r, err := rules.Parse(s, text)
		if err != nil {
			t.Fatalf("parsing %q: %v", text, err)
		}
		rs.Add(r)
	}
	return rs
}

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Close() }) //nolint:errcheck // test teardown; Close is idempotent
	return s, ts
}

func postJSON(t testing.TB, url string, body any, out any) (int, string) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("unmarshaling %q: %v", data, err)
		}
	}
	return resp.StatusCode, string(data)
}

func getJSON(t testing.TB, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("unmarshaling %q: %v", data, err)
		}
	}
	return resp.StatusCode
}

func tx(amount, hour int64, score int16) map[string]any {
	return map[string]any{
		"attrs": map[string]any{"amount": amount, "hour": hour},
		"score": score,
	}
}

func TestScoreSingleAndBatch(t *testing.T) {
	schema := testSchema(t)
	_, ts := newTestServer(t, Config{Schema: schema, Rules: mustRules(t, schema, "amount >= 100")})

	// Single-transaction shorthand.
	var resp scoreResponse
	code, body := postJSON(t, ts.URL+"/v1/score",
		map[string]any{"attrs": map[string]any{"amount": 150, "hour": 3}, "score": 10}, &resp)
	if code != http.StatusOK {
		t.Fatalf("single score: %d %s", code, body)
	}
	if resp.Version != 1 || resp.Count != 1 || resp.Matched != 1 || !resp.Flagged[0] {
		t.Fatalf("single score response: %+v", resp)
	}

	// Batch with mixed verdicts; string-form values parse too.
	code, body = postJSON(t, ts.URL+"/v1/score", map[string]any{
		"transactions": []any{
			tx(150, 3, 10),
			tx(50, 3, 10),
			map[string]any{"attrs": map[string]any{"amount": "9999", "hour": "0"}, "score": 1000},
		},
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("batch score: %d %s", code, body)
	}
	want := []bool{true, false, true}
	if resp.Count != 3 || resp.Matched != 2 {
		t.Fatalf("batch response: %+v", resp)
	}
	for i, w := range want {
		if resp.Flagged[i] != w {
			t.Fatalf("flagged[%d] = %v, want %v (%+v)", i, resp.Flagged[i], w, resp)
		}
	}
}

func TestScoreRejectsMalformed(t *testing.T) {
	schema := testSchema(t)
	_, ts := newTestServer(t, Config{Schema: schema, Rules: rules.NewSet(), MaxBatch: 2})

	cases := []struct {
		name string
		body any
		code int
	}{
		{"empty", map[string]any{}, http.StatusBadRequest},
		{"missing attr", map[string]any{"attrs": map[string]any{"amount": 1}}, http.StatusBadRequest},
		{"unknown attr", map[string]any{"attrs": map[string]any{"amount": 1, "hour": 2, "bogus": 3}}, http.StatusBadRequest},
		{"out of domain", map[string]any{"attrs": map[string]any{"amount": 1, "hour": 99}}, http.StatusBadRequest},
		{"bad score", map[string]any{"attrs": map[string]any{"amount": 1, "hour": 2}, "score": 9999}, http.StatusBadRequest},
		{"batch too large", map[string]any{"transactions": []any{tx(1, 1, 1), tx(2, 2, 2), tx(3, 3, 3)}}, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		code, body := postJSON(t, ts.URL+"/v1/score", tc.body, nil)
		if code != tc.code {
			t.Errorf("%s: code %d (want %d): %s", tc.name, code, tc.code, body)
		}
	}

	// GET is not allowed.
	if code := getJSON(t, ts.URL+"/v1/score", nil); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /score = %d, want 405", code)
	}
}

func TestBodyLimit(t *testing.T) {
	schema := testSchema(t)
	_, ts := newTestServer(t, Config{Schema: schema, Rules: rules.NewSet(), MaxBodyBytes: 128})
	big := strings.Repeat(" ", 1024)
	resp, err := http.Post(ts.URL+"/v1/score", "application/json", strings.NewReader(`{"pad":"`+big+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize body: %d, want 413", resp.StatusCode)
	}
}

func TestRulesGetAndSwap(t *testing.T) {
	schema := testSchema(t)
	s, ts := newTestServer(t, Config{Schema: schema, Rules: mustRules(t, schema, "amount >= 100")})

	var got rulesResponse
	if code := getJSON(t, ts.URL+"/v1/rules", &got); code != http.StatusOK {
		t.Fatalf("GET /rules: %d", code)
	}
	if got.Version != 1 || got.Count != 1 || len(got.Rules) != 1 {
		t.Fatalf("GET /rules: %+v", got)
	}

	// JSON swap.
	var swapped rulesResponse
	code, body := postJSON(t, ts.URL+"/v1/rules",
		rulesSwapRequest{Rules: []string{"amount <= 50", "hour in [0,6]"}}, &swapped)
	if code != http.StatusOK {
		t.Fatalf("POST /rules: %d %s", code, body)
	}
	if swapped.Version != 2 || swapped.Count != 2 {
		t.Fatalf("swap response: %+v", swapped)
	}
	if s.Version() != 2 || s.Rules().Len() != 2 {
		t.Fatalf("server state: version %d, %d rules", s.Version(), s.Rules().Len())
	}

	// Bad rule text is rejected and nothing is published.
	code, body = postJSON(t, ts.URL+"/v1/rules", rulesSwapRequest{Rules: []string{"no such attr >= 5"}}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("bad rule: %d %s", code, body)
	}
	if s.Version() != 2 {
		t.Fatalf("bad rule bumped version to %d", s.Version())
	}

	// text/plain rule-file swap.
	resp, err := http.Post(ts.URL+"/v1/rules", "text/plain",
		strings.NewReader("# refined by hand\namount >= 200\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("text swap: %d %s", resp.StatusCode, raw)
	}
	if s.Version() != 3 || s.Rules().Len() != 1 {
		t.Fatalf("after text swap: version %d, %d rules", s.Version(), s.Rules().Len())
	}
	// Every publish is a history version.
	if s.History().Len() != 3 {
		t.Fatalf("history has %d versions, want 3", s.History().Len())
	}
}

func TestFeedbackRefineStats(t *testing.T) {
	schema := testSchema(t)
	s, ts := newTestServer(t, Config{Schema: schema, Rules: mustRules(t, schema, "amount >= 100")})

	// Refine before any feedback is a conflict.
	if code, body := postJSON(t, ts.URL+"/v1/refine", nil, nil); code != http.StatusConflict {
		t.Fatalf("refine without feedback: %d %s", code, body)
	}

	fb := func(amount int64, label string) map[string]any {
		return map[string]any{
			"attrs": map[string]any{"amount": amount, "hour": 12},
			"score": 500,
			"label": label,
		}
	}
	var fresp feedbackResponse
	code, body := postJSON(t, ts.URL+"/v1/feedback", map[string]any{
		"transactions": []any{
			fb(150, "fraud"),    // already captured
			fb(90, "fraud"),     // missed: refinement should reach for it
			fb(20, "legit"),     // not captured
			fb(30, "unlabeled"), // context traffic
		},
	}, &fresp)
	if code != http.StatusOK {
		t.Fatalf("feedback: %d %s", code, body)
	}
	if fresp.Added != 4 || fresp.Total != 4 {
		t.Fatalf("feedback response: %+v", fresp)
	}
	wantCaptured := []bool{true, false, false, false}
	for i, w := range wantCaptured {
		if fresp.Captured[i] != w {
			t.Fatalf("captured[%d] = %v, want %v", i, fresp.Captured[i], w)
		}
	}

	// A label outside the vocabulary is rejected wholesale.
	code, _ = postJSON(t, ts.URL+"/v1/feedback", map[string]any{
		"transactions": []any{fb(10, "dubious")},
	}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("bad label: %d", code)
	}
	var st statsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st.Feedback != 4 || st.Fraud != 2 || st.FraudCaptured != 1 || st.Legit != 1 || st.Unlabeled != 1 {
		t.Fatalf("stats: %+v", st)
	}

	var rresp refineResponse
	code, body = postJSON(t, ts.URL+"/v1/refine", refineRequest{MaxRounds: 4}, &rresp)
	if code != http.StatusOK {
		t.Fatalf("refine: %d %s", code, body)
	}
	if rresp.OldVersion != 1 || rresp.Version != 2 {
		t.Fatalf("refine versions: %+v", rresp)
	}
	if rresp.FraudTotal != 2 {
		t.Fatalf("refine stats: %+v", rresp)
	}
	if s.Version() != 2 {
		t.Fatalf("server version after refine: %d", s.Version())
	}
	// The refined set captures at least as many frauds as before.
	if rresp.FraudCaptured < 1 {
		t.Fatalf("refined rules lost frauds: %+v", rresp)
	}
}

func TestHealthReadyAndDrain(t *testing.T) {
	schema := testSchema(t)
	s, ts := newTestServer(t, Config{Schema: schema, Rules: rules.NewSet()})
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if code := getJSON(t, ts.URL+"/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz: %d", code)
	}
	s.SetDraining(true)
	if code := getJSON(t, ts.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz: %d, want 503", code)
	}
	s.SetDraining(false)
	if code := getJSON(t, ts.URL+"/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz after drain cleared: %d", code)
	}
}

func TestServeGracefulShutdown(t *testing.T) {
	schema := testSchema(t)
	s, err := New(Config{Schema: schema, Rules: rules.NewSet(), DrainTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	url := "http://" + ln.Addr().String()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not drain within 5s")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	schema := testSchema(t)
	_, ts := newTestServer(t, Config{Schema: schema, Rules: mustRules(t, schema, "amount >= 100")})

	for i := 0; i < 3; i++ {
		if code, body := postJSON(t, ts.URL+"/v1/score", tx(150, 3, 10), nil); code != http.StatusOK {
			t.Fatalf("score: %d %s", code, body)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	page := string(raw)
	if v, ok := telemetry.ScrapeValue(page, "rudolf_score_tx_total"); !ok || v != 3 {
		t.Fatalf("rudolf_score_tx_total = %v, %v (want 3)\n%s", v, ok, page)
	}
	if v, ok := telemetry.ScrapeValue(page, "rudolf_rules_version"); !ok || v != 1 {
		t.Fatalf("rudolf_rules_version = %v, %v (want 1)", v, ok)
	}
	if v, ok := telemetry.ScrapeValue(page, `rudolf_http_requests_total{path="/v1/score",code="200"}`); !ok || v != 3 {
		t.Fatalf("request counter = %v, %v (want 3)", v, ok)
	}
	h, err := telemetry.ScrapeHistogram(strings.NewReader(page), "rudolf_score_latency_seconds")
	if err != nil {
		t.Fatal(err)
	}
	if h.Total != 3 {
		t.Fatalf("latency count = %d, want 3", h.Total)
	}
	if p99 := h.Quantile(0.99); p99 <= 0 {
		t.Fatalf("p99 = %v, want > 0", p99)
	}
}

func TestSchemaEndpoint(t *testing.T) {
	schema := testSchema(t)
	_, ts := newTestServer(t, Config{Schema: schema, Rules: rules.NewSet()})
	resp, err := http.Get(ts.URL + "/schema")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := relation.ReadSchemaJSON(resp.Body)
	if err != nil {
		t.Fatalf("served schema does not round-trip: %v", err)
	}
	if got.Arity() != schema.Arity() {
		t.Fatalf("round-tripped arity %d, want %d", got.Arity(), schema.Arity())
	}
}

// TestHotSwapRace is the torn-read check: scorer goroutines hammer /score
// with batches of one probe transaction repeated, while a swapper alternates
// the published rule set between one that flags the probe (odd versions) and
// one that does not (even versions). Every response must be internally
// consistent (all verdicts in a batch equal — one version per response) and
// externally consistent (the verdicts match the version the response
// reports). Run under -race this also proves the swap path publishes safely.
func TestHotSwapRace(t *testing.T) {
	schema := testSchema(t)
	// Version 1 (initial) flags the probe; every swap alternates.
	flagging := "amount >= 100"
	nonFlagging := "amount <= 50"
	s, ts := newTestServer(t, Config{Schema: schema, Rules: mustRules(t, schema, flagging)})
	_ = s

	const (
		scorers   = 4
		perScorer = 150
		swaps     = 60
		batch     = 16
	)
	probeBatch := make([]any, batch)
	for i := range probeBatch {
		probeBatch[i] = tx(150, 3, 10)
	}
	body, err := json.Marshal(map[string]any{"transactions": probeBatch})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, scorers+1)

	wg.Add(1)
	go func() { // swapper
		defer wg.Done()
		for i := 0; i < swaps; i++ {
			text := nonFlagging // publishes as version 2, 4, ...
			if i%2 == 1 {
				text = flagging // version 3, 5, ...
			}
			raw, _ := json.Marshal(rulesSwapRequest{Rules: []string{text}})
			resp, err := http.Post(ts.URL+"/v1/rules", "application/json", bytes.NewReader(raw))
			if err != nil {
				errs <- fmt.Errorf("swap %d: %v", i, err)
				return
			}
			var got rulesResponse
			err = json.NewDecoder(resp.Body).Decode(&got)
			resp.Body.Close()
			if err != nil {
				errs <- fmt.Errorf("swap %d: %v", i, err)
				return
			}
			// Version assignment is serialized under the server mutex, so
			// the single swapper sees consecutive versions: initial 1, then
			// 2, 3, ... — version v flags the probe iff v is odd.
			if got.Version != i+2 {
				errs <- fmt.Errorf("swap %d got version %d, want %d", i, got.Version, i+2)
				return
			}
		}
	}()

	for g := 0; g < scorers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perScorer; i++ {
				resp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var got scoreResponse
				err = json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if got.Count != batch || len(got.Flagged) != batch {
					errs <- fmt.Errorf("short response: %+v", got)
					return
				}
				wantFlag := got.Version%2 == 1
				for k, f := range got.Flagged {
					if f != got.Flagged[0] {
						errs <- fmt.Errorf("torn batch: verdict %d disagrees within one response (version %d)", k, got.Version)
						return
					}
					if f != wantFlag {
						errs <- fmt.Errorf("version %d reported flagged=%v, want %v", got.Version, f, wantFlag)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
