// Package serve is the online scoring service: a stdlib-only net/http
// daemon that evaluates the current rule set against live transaction
// traffic, ingests analyst feedback, and refines its rules in place.
//
// The paper's RUDOLF refines rules offline, but its premise is that the
// refined set is then deployed against live card traffic — financial
// institutes run rule systems as high-throughput online scorers whose rules
// are hot-swapped as analysts iterate. This package is that deployment
// layer over the repository's evaluation core:
//
//   - The public surface is the versioned /v1 API: POST /v1/score,
//     GET+POST /v1/rules, POST /v1/feedback, POST /v1/refine, GET
//     /v1/stats, GET /v1/schema, GET /v1/trace. The pre-/v1 unversioned
//     paths answer 308 Permanent Redirect to their /v1 successors with a
//     Deprecation header, for one release. Every non-2xx JSON response
//     carries the uniform error envelope
//     {"error":{"code","message","request_id"}} with stable machine codes.
//   - The published rule set lives behind an atomic pointer as a
//     ruleState (rule set + compiled index.Evaluator + version). Scoring
//     requests load the pointer exactly once, so every response is
//     consistent with exactly one version; swaps compile off to the side
//     and publish with a single atomic store (no torn reads, no locks on
//     the hot path — serve_test.go hammers this under -race). POST
//     /v1/rules accepts If-Match on the version for optimistic
//     concurrency (409 conflict on mismatch).
//   - Versions are committed to an internal/history store: every
//     POST /v1/rules swap and every /v1/refine round is a durable,
//     diffable rule-set version, mirroring the FI change histories of the
//     paper.
//   - With Config.DataDir set, serving state is durable: every feedback
//     batch and every publish is written to an internal/wal write-ahead
//     log before it is acknowledged, periodic snapshots bound replay
//     time, and New replays snapshot+WAL before returning — a crashed
//     daemon restarts with the exact version and feedback it acked. See
//     durable.go and DESIGN.md §11.
//   - Feedback (fraud/legit verdicts, plus unlabeled context traffic)
//     appends to a server-side relation watched by an incremental
//     capture.Cache, so POST /v1/refine runs a refinement session in
//     place and atomically publishes the result.
//   - A bounded worker pool (semaphore) caps concurrent scoring
//     evaluations; inside a slot, batches reuse the chunk-parallel
//     compiled evaluator.
//   - Production plumbing: per-endpoint timeouts, max body bytes,
//     /healthz, /readyz (flips to 503 while draining), graceful drain,
//     and /metrics in Prometheus text format via internal/telemetry.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"mime"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/alert"
	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/index"
	"repro/internal/relation"
	"repro/internal/rules"
	"repro/internal/rulestats"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wal"
	"repro/internal/window"
)

// ruleState is one published version: the rule set, its compiled evaluator
// and the history version id. Immutable once published — swaps build a new
// state and atomically replace the pointer.
type ruleState struct {
	version int
	set     *rules.Set
	ev      *index.Evaluator
	texts   []string
	// textsJSON holds each rule text pre-escaped as a JSON string literal
	// (quotes included), computed once per publish so the score encode path
	// never re-escapes rule texts per response.
	textsJSON []string
	// winSpecs is the evaluator's window-spec registry (nil for purely
	// per-tuple rule sets). The scoring path observes every transaction into
	// the live aggregate store and stamps these exact specs' columns onto the
	// batch, so the compiled evaluator's exact-match fast path applies.
	winSpecs []window.Spec
	// winJSON holds each spec's atom (e.g. "COUNT(user, 10m)") pre-escaped
	// as a JSON string literal, indexed like winSpecs — the explain encode
	// path's lookup table for windowed checks.
	winJSON []string
}

// Server is the scoring daemon. Create with New, mount via Handler, run
// with Serve (or any http.Server; call Close on teardown when running
// outside Serve).
type Server struct {
	cfg    Config
	schema *relation.Schema

	state atomic.Pointer[ruleState]

	// mu serializes control-plane state: rule swaps, history commits,
	// feedback appends, WAL writes, snapshots, the capture cache and
	// refinement. The scoring data plane never takes it.
	mu       sync.Mutex
	hist     *history.Store
	feedback *relation.Relation
	cache    *capture.Cache

	// winStore is the live sliding-window aggregate store behind windowed
	// rules (nil when the schema has no time attribute, in which case no
	// windowed rule can parse). obsMu serializes the observe path: the WAL
	// "observe" append and the store mutation happen atomically with respect
	// to publishes (spec registration) and snapshots (store serialization),
	// so WAL order always equals observation order and replay is
	// deterministic. Lock order: s.mu before obsMu; the scoring path takes
	// obsMu alone.
	winStore *window.Store
	obsMu    sync.Mutex

	draining atomic.Bool
	// drainCh is closed (once) when draining starts; long-lived responses
	// (the /v1/wal/stream long-poll) select on it so graceful drain is never
	// blocked by an open replication stream.
	drainCh   chan struct{}
	drainOnce sync.Once

	// follower is the replication-side state when this server was built with
	// Config.FollowURL (nil on a leader); see follower.go.
	follower *followerState

	sem chan struct{}

	// stats is the per-rule health accountant behind GET /v1/rules/health,
	// GET /v1/audit and the per-rule metric series. Reset on every publish.
	stats *rulestats.Tracker

	reg *telemetry.Registry
	// hot-path metrics, resolved once.
	mScoreTx      *telemetry.Counter
	mScoreLat     *telemetry.Histogram
	mBatchSize    *telemetry.Histogram
	mInflight     *telemetry.Gauge
	mVersion      *telemetry.Gauge
	mRulesetVer   *telemetry.Gauge
	mRuleCount    *telemetry.Gauge
	mSwaps        *telemetry.Counter
	mRefines      *telemetry.Counter
	mCacheHit     *telemetry.Counter
	mCacheMiss    *telemetry.Counter
	mRoundDur     *telemetry.Histogram
	mExpertGen    *telemetry.Counter
	mExpertSplit  *telemetry.Counter
	mRefineHits   *telemetry.Counter
	mRefineMisses *telemetry.Counter
	mSnapshots    *telemetry.Counter
	walCounters   wal.Counters
	// Per-rule metric families, cardinality-capped at Config.RuleLabelCap
	// distinct rule labels (later rules share the {rule="other"} series).
	vRuleFires *telemetry.CounterVec
	vRuleTP    *telemetry.CounterVec
	vRuleFP    *telemetry.CounterVec
	vRuleDrift *telemetry.FloatGaugeVec
	vRuleStale *telemetry.FloatGaugeVec

	// Durability (nil / zero when Config.DataDir is empty; see durable.go).
	wal         *wal.Log
	lastSnapSeq uint64
	snapStop    chan struct{}
	snapDone    chan struct{}
	closeOnce   sync.Once
	closeErr    error

	// alerts is the embedded alert engine (DESIGN.md §17): declarative
	// threshold rules over the telemetry registry, rule health and
	// replication state, evaluated on its own ticker so the score hot path
	// never pays for it. alertStop/alertDone bracket the ticker goroutine
	// (nil when Config.AlertInterval < 0).
	alerts    *alert.Engine
	alertStop chan struct{}
	alertDone chan struct{}

	// tracer records request/refinement spans; reqSeq numbers requests for
	// the X-Request-Id header echoed in every JSON response.
	tracer *trace.Tracer
	reqSeq atomic.Uint64
	log    *slog.Logger

	// attrJSON holds each schema attribute name pre-escaped as a JSON string
	// literal (quotes included), indexed by attribute — the encode path's
	// lookup table (see encode.go).
	attrJSON []string
	// httpCounters caches the per-{path,code} request counters so instrument
	// never formats a metric name on the hot path.
	httpCounters sync.Map // httpCounterKey -> *telemetry.Counter
	// mFeedbackLabel holds the per-label feedback counters, resolved once.
	mFeedbackFraud     *telemetry.Counter
	mFeedbackLegit     *telemetry.Counter
	mFeedbackUnlabeled *telemetry.Counter

	// Observability (DESIGN.md §15): the per-stage latency histograms of the
	// score hot path, the runtime/metrics collector, and the derived gauges
	// refreshed before every /metrics scrape and /v1/debug/state read.
	mStage  [numStages]*telemetry.Histogram
	rc      *runtimeCollector
	started time.Time
	// debugMu serializes refreshDebugStats: syncing the monotone subsystem
	// counters into telemetry counters needs read-modify-write of the last*
	// cursors below.
	debugMu             sync.Mutex
	mWinEntries         *telemetry.Gauge
	mWinWatermark       *telemetry.Gauge
	mWinEvictExpired    *telemetry.Counter
	mWinEvictLRU        *telemetry.Counter
	lastWinEvictExpired uint64
	lastWinEvictLRU     uint64
	mWALSegments        *telemetry.Gauge
	mWALDiskBytes       *telemetry.Gauge
	mSlowPromoted       *telemetry.Counter
	lastSlowPromoted    uint64
	mSlowThreshold      *telemetry.FloatGauge
}

// Version identifies the daemon build in /v1/status and the
// rudolf_build_info metric. Overridable at link time:
//
//	go build -ldflags "-X repro/internal/serve.Version=v1.2.3" ./cmd/rudolfd
var Version = "dev"

// httpCounterKey keys the cached rudolf_http_requests_total counters.
type httpCounterKey struct {
	path string
	code int
}

// New validates cfg, restores any durable state under cfg.DataDir (snapshot
// plus write-ahead log, replayed before New returns, so the server is never
// reachable with half-restored state), and publishes the initial rules as
// version 1 on a first boot.
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	hist := cfg.History
	if hist == nil {
		hist = history.NewStore(cfg.Schema)
	}
	s := &Server{
		cfg:      cfg,
		schema:   cfg.Schema,
		hist:     hist,
		feedback: relation.New(cfg.Schema),
		cache:    capture.New(),
		sem:      make(chan struct{}, cfg.Workers),
		reg:      cfg.Registry,
		log:      cfg.Logger,
		started:  time.Now(),
		drainCh:  make(chan struct{}),
	}
	if cfg.FollowURL != "" {
		s.follower = &followerState{leaderURL: strings.TrimRight(cfg.FollowURL, "/")}
	}
	s.attrJSON = make([]string, cfg.Schema.Arity())
	for i := range s.attrJSON {
		s.attrJSON[i] = string(appendJSONString(nil, cfg.Schema.Attr(i).Name))
	}
	if cfg.Schema.TimeAttr() >= 0 {
		s.winStore = window.New(window.Config{TimeAttr: cfg.Schema.TimeAttr()})
	}
	s.stats = rulestats.New(rulestats.Config{
		HalfLife:      cfg.DriftHalfLife,
		BaselineMinTx: uint64(cfg.BaselineMinTx),
		AuditCapacity: cfg.AuditCapacity,
		SampleEvery:   cfg.AuditSampleEvery,
	})
	s.initMetrics()
	// The tracer's completion hook derives the refinement metrics straight
	// from the spans, so the histogram and the trace can never disagree.
	s.tracer = trace.New(trace.Options{
		Capacity: cfg.TraceCapacity,
		// Tail sampling: score/rules/... request roots slower than the live
		// threshold keep their whole span tree in the slow ring for
		// GET /v1/debug/slow. withDefaults already turned "disabled" into 0.
		SlowCapacity:   cfg.SlowRingCapacity,
		SlowFloor:      cfg.SlowFloor,
		SlowRootPrefix: "request.",
		OnEnd: func(r trace.Record) {
			switch r.Name {
			case "refine.round":
				s.mRoundDur.Observe(r.Dur.Seconds())
			case "expert.review_generalization":
				s.mExpertGen.Inc()
			case "expert.review_split":
				s.mExpertSplit.Inc()
			}
		}})
	s.cache.Tracer = s.tracer

	restored := false
	if cfg.DataDir != "" {
		var err error
		restored, err = s.openDurability()
		if err != nil {
			return nil, err
		}
	}
	if s.follower != nil {
		// A follower's entire state is a function of the leader's WAL: do not
		// mint a local version 1. Install an empty version-0 state so the
		// server is constructible and scoreable (zero rules, nothing flags)
		// before Follow bootstraps; /readyz reports not-ready until then. The
		// leader's first WAL record is its own v1 publish, which replays here.
		rs := rules.NewSet()
		s.mu.Lock()
		s.installLocked(rs, index.Compile(s.schema, rs), history.Version{})
		s.mu.Unlock()
	} else if !restored {
		s.mu.Lock()
		_, err := s.publishLocked(cfg.Rules.Clone(), nil, "initial rules")
		s.mu.Unlock()
		if err != nil {
			if s.wal != nil {
				s.wal.Close() //nolint:errcheck // already failing
			}
			return nil, err
		}
	}
	if s.wal != nil && cfg.SnapshotInterval > 0 {
		s.snapStop = make(chan struct{})
		s.snapDone = make(chan struct{})
		go s.snapshotLoop(cfg.SnapshotInterval)
	}

	// The alert engine always exists (GET /v1/alerts and POST /v1/alerts
	// work even with the ticker disabled); the periodic evaluator only runs
	// for a positive interval. Prepare refreshes the derived window / WAL /
	// runtime gauges before each pass — the same refresh /metrics does — so
	// rules over those series never read stale values.
	alertCfg := alert.Config{
		Rules:    cfg.AlertRules,
		Interval: cfg.AlertInterval,
		Sources: alert.Sources{
			Metrics:   s.reg,
			RuleStats: s.stats.Snapshot,
		},
		Prepare: s.refreshDebugStats,
		Logger:  s.log,
	}
	if cfg.AlertWebhook != "" {
		alertCfg.Webhook = &alert.WebhookConfig{URL: cfg.AlertWebhook}
	}
	s.alerts = alert.NewEngine(alertCfg)
	if cfg.AlertInterval > 0 {
		s.alertStop = make(chan struct{})
		s.alertDone = make(chan struct{})
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			defer close(s.alertDone)
			defer cancel()
			go func() { <-s.alertStop; cancel() }()
			s.alerts.Run(ctx)
		}()
	}
	return s, nil
}

// Tracer returns the daemon's span tracer (never nil), for callers that want
// to dump traces out of band of GET /v1/trace.
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

func (s *Server) initMetrics() {
	r := s.reg
	r.Help("rudolf_http_requests_total", "HTTP requests served, by path and status code.")
	r.Help("rudolf_score_tx_total", "Transactions scored.")
	r.Help("rudolf_score_latency_seconds", "Whole-batch scoring request latency (one observation per /v1/score request).")
	r.Help("rudolf_score_batch_size", "Transactions per /v1/score request.")
	r.Help("rudolf_score_inflight", "Scoring requests currently holding a worker slot.")
	r.Help("rudolf_rules_version", "Published rule-set version (history id).")
	r.Help("rudolf_ruleset_version", "Published rule-set version (history id); survives restarts via the WAL.")
	r.Help("rudolf_rules_count", "Rules in the published set.")
	r.Help("rudolf_rule_swaps_total", "Rule-set publishes (swaps + refines + initial).")
	r.Help("rudolf_refines_total", "Completed /v1/refine rounds.")
	r.Help("rudolf_feedback_tx_total", "Feedback transactions ingested, by label.")
	r.Help("rudolf_capture_cache_hits_total", "Capture-cache queries answered incrementally, by caller.")
	r.Help("rudolf_capture_cache_misses_total", "Capture-cache queries that forced a full rebind, by caller.")
	r.Help("rudolf_refine_round_duration_seconds", "Wall-clock duration of one generalize+specialize refinement round.")
	r.Help("rudolf_expert_queries_total", "Expert proposals reviewed during refinement, by proposal kind.")
	r.Help("rudolf_wal_appends_total", "Records appended to the write-ahead log.")
	r.Help("rudolf_wal_fsyncs_total", "fsync(2) calls issued by the write-ahead log.")
	r.Help("rudolf_wal_replayed_records_total", "Durable WAL records replayed at boot.")
	r.Help("rudolf_wal_torn_tail_drops_total", "Torn final WAL records dropped at boot.")
	r.Help("rudolf_snapshots_total", "Durable snapshots written.")
	r.Help("rudolf_rule_fires_total", "Scored transactions whose first matching rule this was, by rule index (label cardinality capped; overflow shares rule=\"other\").")
	r.Help("rudolf_rule_feedback_tp_total", "Fraud-labeled feedback transactions captured, by rule index.")
	r.Help("rudolf_rule_feedback_fp_total", "Legit-labeled feedback transactions captured, by rule index.")
	r.Help("rudolf_rule_drift", "Per-rule fire-rate drift vs the post-publish baseline (0 = unchanged, 1 = moved by its whole baseline; -1 = not yet measurable).")
	r.Help("rudolf_rule_last_fired_ago_seconds", "Seconds since the rule last fired under the published version (-1 = never).")
	r.Help("rudolf_stage_duration_seconds", "Score hot-path latency by stage (decode, acquire, wal_append, window, eval, encode, write).")
	r.Help("rudolf_window_entries", "Live sliding-window aggregate entries across all shards.")
	r.Help("rudolf_window_watermark_minutes", "Sliding-window event-time watermark (epoch minutes).")
	r.Help("rudolf_window_evictions_total", "Window entries evicted, by cause (expired = dead under the watermark; lru = capacity pressure).")
	r.Help("rudolf_wal_append_seconds", "WAL append latency: frame encode + write, excluding fsync.")
	r.Help("rudolf_wal_fsync_seconds", "WAL fsync(2) latency.")
	r.Help("rudolf_wal_segments", "Live WAL segment files.")
	r.Help("rudolf_wal_disk_bytes", "Bytes across live WAL segment files.")
	r.Help("rudolf_trace_slow_promoted_total", "Requests promoted into the slow-request ring (GET /v1/debug/slow).")
	r.Help("rudolf_trace_slow_threshold_seconds", "Current slow-ring promotion threshold (the lower of the adaptive p99 and the configured floor).")
	r.Help("rudolf_go_goroutines", "Live goroutines.")
	r.Help("rudolf_go_heap_bytes", "Heap bytes occupied by live objects.")
	r.Help("rudolf_go_heap_objects", "Live heap objects.")
	r.Help("rudolf_go_gc_cycles", "Completed GC cycles.")
	r.Help("rudolf_go_gc_pause_seconds", "GC stop-the-world pause durations (folded from runtime/metrics).")
	s.mScoreTx = r.Counter("rudolf_score_tx_total")
	s.mScoreLat = r.Histogram("rudolf_score_latency_seconds", nil)
	s.mBatchSize = r.Histogram("rudolf_score_batch_size", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096})
	s.mInflight = r.Gauge("rudolf_score_inflight")
	s.mVersion = r.Gauge("rudolf_rules_version")
	s.mRulesetVer = r.Gauge("rudolf_ruleset_version")
	s.mRuleCount = r.Gauge("rudolf_rules_count")
	s.mSwaps = r.Counter("rudolf_rule_swaps_total")
	s.mRefines = r.Counter("rudolf_refines_total")
	s.mCacheHit = r.Counter(`rudolf_capture_cache_hits_total{caller="serve"}`)
	s.mCacheMiss = r.Counter(`rudolf_capture_cache_misses_total{caller="serve"}`)
	s.mRefineHits = r.Counter(`rudolf_capture_cache_hits_total{caller="refine"}`)
	s.mRefineMisses = r.Counter(`rudolf_capture_cache_misses_total{caller="refine"}`)
	s.mRoundDur = r.Histogram("rudolf_refine_round_duration_seconds", nil)
	s.mExpertGen = r.Counter(`rudolf_expert_queries_total{kind="generalization"}`)
	s.mExpertSplit = r.Counter(`rudolf_expert_queries_total{kind="split"}`)
	s.mSnapshots = r.Counter("rudolf_snapshots_total")
	s.mFeedbackFraud = r.Counter(`rudolf_feedback_tx_total{label="fraud"}`)
	s.mFeedbackLegit = r.Counter(`rudolf_feedback_tx_total{label="legit"}`)
	s.mFeedbackUnlabeled = r.Counter(`rudolf_feedback_tx_total{label="unlabeled"}`)
	lcap := s.cfg.RuleLabelCap
	s.vRuleFires = r.CounterVec("rudolf_rule_fires_total", "rule", lcap)
	s.vRuleTP = r.CounterVec("rudolf_rule_feedback_tp_total", "rule", lcap)
	s.vRuleFP = r.CounterVec("rudolf_rule_feedback_fp_total", "rule", lcap)
	s.vRuleDrift = r.FloatGaugeVec("rudolf_rule_drift", "rule", lcap)
	s.vRuleStale = r.FloatGaugeVec("rudolf_rule_last_fired_ago_seconds", "rule", lcap)
	s.walCounters = wal.Counters{
		Appends:       r.Counter("rudolf_wal_appends_total"),
		Fsyncs:        r.Counter("rudolf_wal_fsyncs_total"),
		Replayed:      r.Counter("rudolf_wal_replayed_records_total"),
		TornTailDrops: r.Counter("rudolf_wal_torn_tail_drops_total"),
		AppendSeconds: r.Histogram("rudolf_wal_append_seconds", telemetry.StageBuckets),
		FsyncSeconds:  r.Histogram("rudolf_wal_fsync_seconds", telemetry.StageBuckets),
	}
	for st := stage(0); st < numStages; st++ {
		s.mStage[st] = r.Histogram(`rudolf_stage_duration_seconds{stage="`+stageNames[st]+`"}`, telemetry.StageBuckets)
	}
	s.mWinEntries = r.Gauge("rudolf_window_entries")
	s.mWinWatermark = r.Gauge("rudolf_window_watermark_minutes")
	s.mWinEvictExpired = r.Counter(`rudolf_window_evictions_total{cause="expired"}`)
	s.mWinEvictLRU = r.Counter(`rudolf_window_evictions_total{cause="lru"}`)
	s.mWALSegments = r.Gauge("rudolf_wal_segments")
	s.mWALDiskBytes = r.Gauge("rudolf_wal_disk_bytes")
	s.mSlowPromoted = r.Counter("rudolf_trace_slow_promoted_total")
	s.mSlowThreshold = r.FloatGauge("rudolf_trace_slow_threshold_seconds")
	if s.follower != nil {
		r.Help("rudolf_replica_applied_seq", "Last leader WAL sequence number applied by this follower.")
		r.Help("rudolf_replica_lag_records", "Records this follower trails the last known leader position.")
		r.Help("rudolf_replica_reconnects_total", "Times the follower's replication stream reconnected to the leader.")
		s.follower.mApplied = r.Gauge("rudolf_replica_applied_seq")
		s.follower.mLag = r.Gauge("rudolf_replica_lag_records")
		s.follower.mReconnects = r.Counter("rudolf_replica_reconnects_total")
	}
	// Build identity: a constant-1 gauge whose labels carry the versions, the
	// standard Prometheus idiom for joining build metadata onto any query.
	r.Help("rudolf_build_info", "Build metadata: constant 1, labeled with the Go runtime version and the daemon version.")
	r.Gauge(`rudolf_build_info{go_version="` + telemetry.EscapeLabel(runtime.Version()) + `",version="` + telemetry.EscapeLabel(Version) + `"}`).Set(1)
	s.rc = newRuntimeCollector(r)
}

// publishLocked compiles rs, logs the publish to the WAL (when durable),
// commits it to history and atomically publishes the new state. The WAL
// write happens before any in-memory state changes: a publish that cannot
// be made durable is not made at all. Callers hold s.mu.
func (s *Server) publishLocked(rs *rules.Set, mods []core.Modification, comment string) (*ruleState, error) {
	ev := index.Compile(s.schema, rs)
	v := s.hist.Build(rs, mods, comment)
	// The WAL publish record and the spec registration happen under the
	// observe lock: replay registers a publish's window specs before applying
	// any later observe record, so the store's spec set at every WAL position
	// is identical live and replayed.
	specs := ev.WindowSpecs()
	if s.wal != nil || (len(specs) > 0 && s.winStore != nil) {
		s.obsMu.Lock()
		if s.wal != nil {
			if err := s.walAppendPublish(v); err != nil {
				s.obsMu.Unlock()
				return nil, err
			}
		}
		if len(specs) > 0 && s.winStore != nil {
			s.winStore.EnsureSpecs(specs)
		}
		s.obsMu.Unlock()
	}
	if err := s.hist.Append(v); err != nil {
		// Unreachable by construction (Build assigns the next id and the
		// rules came from a parsed set); fail loud rather than diverge from
		// the WAL.
		return nil, fmt.Errorf("serve: committing version %d: %w", v.ID, err)
	}
	st := s.installLocked(rs, ev, v)
	s.mSwaps.Inc()
	s.log.Info("rules published", "version", st.version, "rules", rs.Len(), "comment", comment)
	return st, nil
}

// installLocked atomically publishes an already-committed version (the
// shared tail of live publishes and WAL replay). Callers hold s.mu.
func (s *Server) installLocked(rs *rules.Set, ev *index.Evaluator, v history.Version) *ruleState {
	st := &ruleState{version: v.ID, set: rs, ev: ev, texts: v.Rules}
	st.textsJSON = make([]string, len(v.Rules))
	for i, text := range v.Rules {
		st.textsJSON[i] = string(appendJSONString(nil, text))
	}
	if specs := ev.WindowSpecs(); len(specs) > 0 {
		st.winSpecs = specs
		st.winJSON = make([]string, len(specs))
		for i, sp := range specs {
			st.winJSON[i] = string(appendJSONString(nil, rules.FormatWindowAtom(s.schema, sp)))
		}
		if s.winStore != nil {
			s.winStore.EnsureSpecs(specs) // replay path: publishes bypass publishLocked
		}
	}
	s.state.Store(st)
	// The capture cache mirrors the published rules over the feedback
	// relation; a publish invalidates it wholesale (rule count may match
	// across a swap, so length-drift detection is not enough).
	s.cache.Invalidate()
	// Per-rule health restarts with every publish: fire counts, baselines
	// and FP/TP estimates are only meaningful relative to the serving rules.
	// (The sampled audit ring survives — its entries carry their version.)
	s.stats.Reset(st.version, rs.Len())
	s.mVersion.Set(int64(st.version))
	s.mRulesetVer.Set(int64(st.version))
	s.mRuleCount.Set(int64(rs.Len()))
	return st
}

// captureLocked returns the capture cache bound to the feedback relation
// and the published rules, counting hits (incremental) vs misses (rebind).
// Callers hold s.mu.
func (s *Server) captureLocked(st *ruleState) *capture.Cache {
	if rebound := s.cache.Ensure(s.feedback, st.set); rebound {
		s.mCacheMiss.Inc()
	} else {
		s.mCacheHit.Inc()
	}
	return s.cache
}

// Version returns the currently published rules version.
func (s *Server) Version() int { return s.state.Load().version }

// Rules returns the currently published rule set (read-only).
func (s *Server) Rules() *rules.Set { return s.state.Load().set }

// History returns the server's version store.
func (s *Server) History() *history.Store { return s.hist }

// Registry returns the server's telemetry registry.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// FeedbackLen returns the number of feedback transactions ingested (live
// plus replayed).
func (s *Server) FeedbackLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.feedback.Len()
}

// SetDraining flips readiness: a draining server answers /readyz with 503
// so load balancers stop routing to it, while in-flight and late requests
// still complete. Entering the draining state also ends any open
// /v1/wal/stream long-polls (they would otherwise hold graceful shutdown
// open indefinitely); followers reconnect on their own schedule.
func (s *Server) SetDraining(v bool) {
	s.draining.Store(v)
	if v {
		s.drainOnce.Do(func() { close(s.drainCh) })
	}
}

// v1Routes maps the route basename (also the request-span suffix) to its
// handler constructor; shared by the /v1 table and the legacy redirects.
func (s *Server) v1Routes() []struct {
	base string
	h    http.Handler
} {
	return []struct {
		base string
		h    http.Handler
	}{
		{"score", s.timeout(http.HandlerFunc(s.handleScore), s.cfg.ScoreTimeout)},
		// The mutating routes are wrapped by the read-only guard: on a
		// follower their write methods answer 403 "read_only" with a Location
		// header pointing at the leader; their read methods (GET /v1/rules)
		// and wrong-method 405s pass through. No-op on a leader.
		{"rules", s.readOnly(s.timeout(http.HandlerFunc(s.handleRules), s.cfg.SwapTimeout), http.MethodPost)},
		{"feedback", s.readOnly(s.timeout(http.HandlerFunc(s.handleFeedback), s.cfg.FeedbackTimeout), http.MethodPost)},
		{"refine", s.readOnly(s.timeout(http.HandlerFunc(s.handleRefine), s.cfg.RefineTimeout), http.MethodPost)},
		{"stats", http.HandlerFunc(s.handleStats)},
		{"schema", http.HandlerFunc(s.handleSchema)},
	}
}

// Handler returns the daemon's route table: the versioned /v1 surface,
// 308 redirects from the legacy unversioned paths (with a Deprecation
// header), and the unversioned infrastructure endpoints (/healthz, /readyz,
// /metrics).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range s.v1Routes() {
		path := "/v1/" + rt.base
		mux.Handle(path, s.instrument(path, rt.base, rt.h))
		mux.Handle("/"+rt.base, legacyRedirect(path))
	}
	// The observability endpoints are /v1-only (they never existed
	// unversioned, so no legacy redirects).
	mux.Handle("/v1/rules/health", s.instrument("/v1/rules/health", "rules_health", http.HandlerFunc(s.handleRuleHealth)))
	mux.Handle("/v1/audit", s.instrument("/v1/audit", "audit", http.HandlerFunc(s.handleAudit)))
	// /v1/alerts: the alert engine's readout and rule surface. Deliberately
	// not readOnly-wrapped — each node alerts on its own signals (a
	// follower's replication lag is exactly what its alert rules watch), so
	// rule installs are node-local on every role. See DESIGN.md §17.
	mux.Handle("/v1/alerts", s.instrument("/v1/alerts", "alerts", http.HandlerFunc(s.handleAlerts)))
	// /v1/status: the role-aware node identity document, served identically
	// by leaders and followers.
	mux.Handle("/v1/status", s.instrument("/v1/status", "status", http.HandlerFunc(s.handleStatus)))
	// The replication surface (leader side; see replication.go). The manifest
	// and snapshot endpoints are ordinary instrumented GETs; the stream is
	// deliberately uninstrumented and untimed — it is long-lived by design
	// (a span that lives for minutes would always be promoted into the slow
	// ring, and a timeout would sever healthy followers).
	mux.Handle("/v1/wal/segments", s.instrument("/v1/wal/segments", "wal_segments", http.HandlerFunc(s.handleWALSegments)))
	mux.Handle("/v1/wal/snapshot", s.instrument("/v1/wal/snapshot", "wal_snapshot", http.HandlerFunc(s.handleWALSnapshot)))
	mux.Handle("/v1/wal/stream", http.HandlerFunc(s.handleWALStream))
	// /v1/trace is deliberately uninstrumented: fetching the trace must not
	// append request spans to the very ring being exported.
	mux.Handle("/v1/trace", http.HandlerFunc(s.handleTrace))
	mux.Handle("/trace", legacyRedirect("/v1/trace"))
	// The debug endpoints are uninstrumented for the same reason: inspecting
	// the slow ring must not mint request spans that could themselves be
	// promoted into it.
	mux.Handle("/v1/debug/slow", http.HandlerFunc(s.handleDebugSlow))
	mux.Handle("/v1/debug/state", http.HandlerFunc(s.handleDebugState))
	// The debug endpoints predate /v1 in tooling bookmarks; redirect the
	// unversioned spellings like the rest of the legacy surface.
	mux.Handle("/debug/slow", legacyRedirect("/v1/debug/slow"))
	mux.Handle("/debug/state", legacyRedirect("/v1/debug/state"))
	mux.Handle("/healthz", http.HandlerFunc(s.handleHealthz))
	mux.Handle("/readyz", http.HandlerFunc(s.handleReadyz))
	metricsHandler := s.reg.Handler()
	mux.Handle("/metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The drift / staleness gauges are derived state: refresh them from a
		// health snapshot right before every scrape, so the registry never
		// serves stale per-rule gauges without putting snapshot cost on the
		// scoring path. Likewise the window / WAL / runtime / slow-ring
		// series, refreshed from subsystem stats per scrape.
		s.refreshRuleGauges()
		s.refreshDebugStats()
		metricsHandler.ServeHTTP(w, r)
	}))
	mux.Handle("/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.writeErrorID(w, "", http.StatusNotFound, CodeNotFound, "no route %s %s (the API lives under /v1)", r.Method, r.URL.Path)
	}))
	return mux
}

// legacyRedirect answers the pre-/v1 unversioned paths: a 308 Permanent
// Redirect to the /v1 successor (308 preserves method and body, so POSTs
// survive the hop) plus a Deprecation header and a successor-version Link,
// kept for one release.
func legacyRedirect(target string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=%q", target, "successor-version"))
		u := target
		if r.URL.RawQuery != "" {
			u += "?" + r.URL.RawQuery
		}
		http.Redirect(w, r, u, http.StatusPermanentRedirect)
	})
}

// handleTrace exports the daemon's recent spans: Chrome trace_event JSON by
// default (loadable in chrome://tracing / ui.perfetto.dev), JSONL with
// ?format=jsonl.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, r, http.MethodGet)
		return
	}
	recs := s.tracer.Snapshot()
	switch f := r.URL.Query().Get("format"); f {
	case "", "chrome":
		w.Header().Set("Content-Type", "application/json")
		trace.WriteChrome(w, recs) //nolint:errcheck // client gone: nothing to do
	case "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		trace.WriteJSONL(w, recs) //nolint:errcheck // client gone: nothing to do
	default:
		s.writeErrorID(w, "", http.StatusBadRequest, CodeBadRequest, "unknown format %q (want chrome or jsonl)", f)
	}
}

// Serve runs the daemon on ln until ctx is canceled, then drains: readiness
// flips first, then the listener closes, in-flight requests get
// DrainTimeout to finish, and the durable state is flushed (final snapshot
// + WAL fsync) via Close.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	s.log.Info("serving", "addr", ln.Addr().String(), "workers", s.cfg.Workers)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		s.Close() //nolint:errcheck // serve error wins
		return err
	case <-ctx.Done():
	}
	s.log.Info("draining", "timeout", s.cfg.DrainTimeout)
	s.SetDraining(true)
	shutCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		s.Close() //nolint:errcheck // drain error wins
		return fmt.Errorf("serve: drain: %w", err)
	}
	<-errc // hs.Serve returned http.ErrServerClosed
	return s.Close()
}

// timeout wraps h with http.TimeoutHandler unless d <= 0. The timeout body
// is the uniform error envelope (no request id: the handler goroutine owns
// the request context by then).
func (s *Server) timeout(h http.Handler, d time.Duration) http.Handler {
	if d <= 0 {
		return h
	}
	return http.TimeoutHandler(h, d, `{"error":{"code":"timeout","message":"request timed out"}}`)
}

// statusWriter records the response code for the request counter. When
// track is set it also opens a stage.write child span on the first write,
// so response copy-out that happens outside the handler's own stage clock
// (the buffered flush http.TimeoutHandler performs after the handler
// returns) is still attributed to the write stage; instrument ends the
// span and observes the duration.
type statusWriter struct {
	http.ResponseWriter
	code    int
	track   bool
	started bool
	parent  trace.Span
	sp      trace.Span
	t0      time.Time
}

func (w *statusWriter) begin() {
	if !w.track || w.started {
		return
	}
	w.started = true
	w.t0 = time.Now()
	w.sp = w.parent.Child(stageSpanNames[stageWrite])
}

func (w *statusWriter) WriteHeader(code int) {
	w.begin()
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.begin()
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// reqMetaKey carries the per-request id and span through the context.
type reqMetaKey struct{}

// reqMeta is the per-request correlation state minted by instrument.
type reqMeta struct {
	id   string
	span trace.Span
}

// requestMeta returns the request's correlation metadata (zero when the
// route is uninstrumented).
func requestMeta(r *http.Request) reqMeta {
	m, _ := r.Context().Value(reqMetaKey{}).(reqMeta)
	return m
}

// instrument applies the body limit, mints a request id (echoed as the
// X-Request-Id header and the request_id field of JSON responses), opens a
// per-request span named request.<base> (stable across API versions), and
// counts the request by path and status code. The span id makes responses
// joinable against GET /v1/trace.
func (s *Server) instrument(path, base string, h http.Handler) http.Handler {
	name := "request." + base
	// The score route sits behind http.TimeoutHandler, which buffers the
	// whole response and copies it to the real ResponseWriter only after
	// the handler returns — client-visible latency the handler's own stage
	// clock cannot see (its stageWrite times the write into the buffer).
	// That copy-out is exactly this statusWriter's write activity, so
	// instrument brackets it and attributes it to the write stage,
	// preserving the slow-ring invariant that the stage breakdown accounts
	// for the request span end to end. Only enabled when the timeout
	// wrapper is actually in play: with ScoreTimeout <= 0 the handler
	// writes straight through sw during its own stageWrite window, and
	// bracketing here would double-count the same interval.
	timedWrite := base == "score" && s.cfg.ScoreTimeout > 0
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		id := requestID(s.reqSeq.Add(1))
		sp := s.tracer.Start(name)
		sp.Str("id", id)
		w.Header().Set("X-Request-Id", id)
		r = r.WithContext(context.WithValue(r.Context(), reqMetaKey{}, reqMeta{id: id, span: sp}))
		sw := &statusWriter{ResponseWriter: w, track: timedWrite, parent: sp}
		h.ServeHTTP(sw, r)
		if sw.started {
			sw.sp.End()
			s.mStage[stageWrite].Observe(time.Since(sw.t0).Seconds())
		}
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		sp.Int("code", int64(sw.code))
		sp.End()
		s.httpCounter(path, sw.code).Inc()
	})
}

// requestID renders the X-Request-Id for sequence number n: "req-%06d"
// without the fmt machinery (the id is minted on every instrumented
// request, including the scoring hot path).
func requestID(n uint64) string {
	var tmp [20]byte
	digits := strconv.AppendUint(tmp[:0], n, 10)
	buf := make([]byte, 0, 4+6+len(digits))
	buf = append(buf, "req-"...)
	for pad := 6 - len(digits); pad > 0; pad-- {
		buf = append(buf, '0')
	}
	return string(append(buf, digits...))
}

// httpCounter returns the rudolf_http_requests_total counter for one
// {path, code} pair, resolving the formatted series name only on the first
// hit — steady state is a lock-free sync.Map read instead of a Sprintf.
func (s *Server) httpCounter(path string, code int) *telemetry.Counter {
	key := httpCounterKey{path: path, code: code}
	if c, ok := s.httpCounters.Load(key); ok {
		return c.(*telemetry.Counter)
	}
	c := s.reg.Counter(fmt.Sprintf(`rudolf_http_requests_total{path=%q,code="%d"}`, path, code))
	actual, _ := s.httpCounters.LoadOrStore(key, c)
	return actual.(*telemetry.Counter)
}

// Stable machine codes of the uniform error envelope. Clients switch on
// these, never on message text.
const (
	CodeBadRequest       = "bad_request"
	CodePayloadTooLarge  = "payload_too_large"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeConflict         = "conflict"
	CodeNotFound         = "not_found"
	CodeNotReady         = "not_ready"
	CodeReadOnly         = "read_only"
	CodeTimeout          = "timeout"
	CodeUnavailable      = "unavailable"
	CodeInternal         = "internal"
)

// respBufPool holds the scratch buffers writeJSON encodes into before
// touching the ResponseWriter; see writeJSON for why the indirection exists.
var respBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// respBufMaxRetain bounds the buffer capacity returned to respBufPool, so
// one huge response does not pin its memory forever.
const respBufMaxRetain = 1 << 20

// encodeFailedEnvelope is the hand-built 500 body writeJSON falls back to
// when the response value itself fails to encode: it cannot be produced by
// the same encoder that just failed.
const encodeFailedEnvelope = `{"error":{"code":"internal","message":"response encoding failed"}}` + "\n"

// writeJSON encodes v into a pooled buffer first and only then touches the
// ResponseWriter, so an encoding failure (a bug: every response type here is
// marshalable — but silently truncated JSON would corrupt clients) becomes a
// clean 500 envelope instead of a torn body after a 200 header. The buffered
// form also yields an exact Content-Length. Write errors are classified:
// a vanished client is routine (debug), anything else is logged as a warning.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	buf := respBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer func() {
		if buf.Cap() <= respBufMaxRetain {
			respBufPool.Put(buf)
		}
	}()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		s.log.Error("response encoding failed", "err", err, "status", code)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", strconv.Itoa(len(encodeFailedEnvelope)))
		w.WriteHeader(http.StatusInternalServerError)
		io.WriteString(w, encodeFailedEnvelope) //nolint:errcheck // already in the failure path
		return
	}
	s.writeBody(w, code, buf.Bytes())
}

// writeBody writes an already-encoded JSON body with an exact
// Content-Length, logging non-client-gone write errors.
func (s *Server) writeBody(w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(code)
	if _, err := w.Write(body); err != nil {
		if isClientGone(err) {
			s.log.Debug("client gone before response write", "err", err)
		} else {
			s.log.Warn("response write failed", "err", err)
		}
	}
}

// isClientGone reports whether a response-write error just means the peer
// went away (canceled request, closed connection) — routine under load
// balancers and impatient clients, not a server fault worth a warning.
func isClientGone(err error) bool {
	return errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, http.ErrHandlerTimeout)
}

// methodNotAllowed answers a wrong-method request uniformly: 405 with the
// standard Allow header naming what the route does accept, and the uniform
// error envelope with the stable "method_not_allowed" code.
func (s *Server) methodNotAllowed(w http.ResponseWriter, r *http.Request, allow ...string) {
	methods := strings.Join(allow, ", ")
	w.Header().Set("Allow", methods)
	s.writeError(w, r, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "%s is not allowed here (allow: %s)", r.Method, methods)
}

// writeError emits the uniform error envelope, carrying the request's id so
// failures are joinable against GET /v1/trace like successes are.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, code, format string, args ...any) {
	s.writeErrorID(w, requestMeta(r).id, status, code, format, args...)
}

func (s *Server) writeErrorID(w http.ResponseWriter, requestID string, status int, code, format string, args ...any) {
	s.writeJSON(w, status, errorResponse{Error: errorBody{
		Code:      code,
		Message:   fmt.Sprintf(format, args...),
		RequestID: requestID,
	}})
}

func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, r, http.StatusRequestEntityTooLarge, CodePayloadTooLarge, "body exceeds %d bytes", tooBig.Limit)
			return false
		}
		s.writeError(w, r, http.StatusBadRequest, CodeBadRequest, "bad JSON: %v", err)
		return false
	}
	return true
}

// buildRelation parses and validates a wire batch into a relation, honoring
// labels when forFeedback is set.
func (s *Server) buildRelation(txs []txIn, forFeedback bool) (*relation.Relation, []relation.Label, error) {
	rel := relation.New(s.schema)
	labels := make([]relation.Label, 0, len(txs))
	for i, tx := range txs {
		t, err := parseTuple(s.schema, tx.Attrs)
		if err != nil {
			return nil, nil, fmt.Errorf("transaction %d: %w", i, err)
		}
		lab := relation.Unlabeled
		if forFeedback {
			lab, err = parseWireLabel(tx.Label)
			if err != nil {
				return nil, nil, fmt.Errorf("transaction %d: %w", i, err)
			}
			if tx.Label == "" {
				return nil, nil, fmt.Errorf("transaction %d: missing label (want fraud, legit or unlabeled)", i)
			}
		}
		if _, err := rel.Append(t, lab, tx.Score); err != nil {
			return nil, nil, fmt.Errorf("transaction %d: %w", i, err)
		}
		labels = append(labels, lab)
	}
	return rel, labels, nil
}

// acquire takes a worker-pool slot, respecting request cancellation.
func (s *Server) acquire(ctx context.Context) bool {
	select {
	case s.sem <- struct{}{}:
		s.mInflight.Add(1)
		return true
	case <-ctx.Done():
		return false
	}
}

func (s *Server) release() {
	<-s.sem
	s.mInflight.Add(-1)
}

// handleScore evaluates a batch against exactly one published version.
func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.methodNotAllowed(w, r, http.MethodPost)
		return
	}
	// The stage clock splits this request's wall time across the stage
	// taxonomy (rudolf_stage_duration_seconds) and, when the request is
	// traced, emits stage.<name> child spans — so a slow-ring promotion
	// carries its own breakdown. Error returns flush whatever was timed.
	meta := requestMeta(r)
	clock := stageClock{parent: meta.span, hist: &s.mStage}
	defer clock.flush()
	clock.begin(stageDecode)
	var req scoreRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	txs := req.Transactions
	if txs == nil && req.Attrs != nil {
		txs = []txIn{{Attrs: req.Attrs, Score: req.Score}}
	}
	if len(txs) == 0 {
		s.writeError(w, r, http.StatusBadRequest, CodeBadRequest, "no transactions")
		return
	}
	if len(txs) > s.cfg.MaxBatch {
		s.writeError(w, r, http.StatusRequestEntityTooLarge, CodePayloadTooLarge, "batch of %d exceeds max %d", len(txs), s.cfg.MaxBatch)
		return
	}
	rel, _, err := s.buildRelation(txs, false)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	clock.begin(stageAcquire)
	if !s.acquire(r.Context()) {
		s.writeError(w, r, http.StatusServiceUnavailable, CodeUnavailable, "canceled while queued for a worker slot")
		return
	}
	explain := req.Explain || req.ExplainAll
	sc := getScoreState()
	defer putScoreState(sc)
	start := time.Now()
	st := s.state.Load() // exactly one version per response
	// Windowed rules are stateful: every scored transaction is observed into
	// the live aggregate store (WAL first, when durable — the observation
	// must survive a crash or replayed aggregates diverge from what was
	// served), and the batch is stamped with the published specs' aggregate
	// columns, which the compiled evaluator's exact-match fast path then
	// reads. Window-less rule sets skip all of it: no lock, no WAL record.
	if len(st.winSpecs) > 0 && s.winStore != nil {
		clock.begin(stageWindow)
		if s.follower != nil {
			// A follower's window store mirrors the leader's observe stream;
			// local read traffic must not mutate it, so scoring stamps the
			// current aggregates read-only (no observe, no WAL, no obsMu —
			// the store's shard locks make reads safe against the replication
			// goroutine's concurrent Observe applies).
			rel.SetWindowColumns(s.winStore.PeekColumns(rel, st.winSpecs))
		} else {
			// Waiting on obsMu is attributed to the window stage; the durable
			// observe append (including its synchronous fsync) to wal_append.
			s.obsMu.Lock()
			if s.wal != nil {
				clock.begin(stageWAL)
				err := s.walAppendObserve(rel)
				clock.begin(stageWindow)
				if err != nil {
					s.obsMu.Unlock()
					s.release()
					s.writeError(w, r, http.StatusInternalServerError, CodeInternal, "persisting observations: %v", err)
					return
				}
			}
			rel.SetWindowColumns(s.winStore.StampColumns(rel, st.winSpecs))
			s.obsMu.Unlock()
		}
	}
	// The default path computes first-match attribution instead of the bare
	// union: same short-circuiting loop and chunking as Eval, one int32
	// write per tuple extra, and it is exactly what per-rule fire accounting
	// needs. Explain mode runs the lazy attribution pass: margins are
	// materialized for the rules that fire (what "why was this flagged"
	// asks); explain_all re-derives the non-firing rules' margins at encode
	// time.
	clock.begin(stageEval)
	if explain {
		st.ev.EvalAttributedLazyIntoUnder(meta.span, rel, &sc.attrib)
		if cap(sc.first) < rel.Len() {
			sc.first = make([]int32, rel.Len())
		}
		sc.first = sc.first[:rel.Len()]
		for i := range sc.attrib.Tuples {
			sc.first[i] = index.NoRule
			if m := sc.attrib.Tuples[i].Matched; len(m) > 0 {
				sc.first[i] = int32(m[0])
			}
		}
	} else {
		sc.first = st.ev.EvalFirstIntoUnder(meta.span, rel, sc.first)
	}
	elapsed := time.Since(start).Seconds()
	s.release()
	clock.begin(stageEncode)

	matched := 0
	for i := 0; i < rel.Len(); i++ {
		if sc.first[i] != index.NoRule {
			matched++
		}
	}
	if req.ExplainAll {
		// Pre-size the re-derivation scratch so encode never reallocates it.
		if n := st.ev.MaxRuleChecks(); cap(sc.scratch) < n {
			sc.scratch = make([]index.CheckAttribution, 0, n)
		}
	}
	sc.out = s.appendScoreResponse(sc.out[:0], meta.id, st, sc, rel, matched, req.Explain, req.ExplainAll)
	s.recordScore(meta.id, st, rel, sc.first)
	s.mScoreTx.Add(uint64(rel.Len()))
	s.mScoreLat.Observe(elapsed)
	s.mBatchSize.Observe(float64(rel.Len()))
	clock.begin(stageWrite)
	s.writeBody(w, http.StatusOK, sc.out)
}

// recordScore feeds one scored batch into the rule-health tracker, the
// per-rule fire counters and (for sampled decisions) the audit ring.
func (s *Server) recordScore(requestID string, st *ruleState, rel *relation.Relation, first []int32) {
	s.stats.RecordFires(first)
	// Per-rule fire counters: aggregate per batch so a 4k-tx batch costs at
	// most one counter lookup per distinct fired rule.
	nRules := st.set.Len()
	var counts []uint64
	for i, ri := range first {
		if ri >= 0 && int(ri) < nRules {
			if counts == nil {
				counts = make([]uint64, nRules)
			}
			counts[ri]++
		}
		if s.stats.ShouldSample() {
			s.stats.AddAudit(rulestats.AuditEntry{
				RequestID: requestID,
				Version:   st.version,
				Rule:      int(ri),
				Flagged:   ri != index.NoRule,
				Score:     rel.Score(i),
				Attrs:     renderAttrs(s.schema, rel, i),
			})
		}
	}
	for ri, n := range counts {
		if n > 0 {
			s.vRuleFires.With(strconv.Itoa(ri)).Add(n)
		}
	}
}

// renderAttrs renders one tuple attribute-by-attribute in the schema's
// textual form (audit entries must stay meaningful after the schema's
// numeric encodings change).
func renderAttrs(schema *relation.Schema, rel *relation.Relation, i int) map[string]string {
	t := rel.Tuple(i)
	out := make(map[string]string, schema.Arity())
	for a := 0; a < schema.Arity(); a++ {
		out[schema.Attr(a).Name] = schema.FormatValue(a, t[a])
	}
	return out
}

// handleRules serves the published rules (GET, with the version as an ETag)
// and hot-swaps a new set (POST): parse + compile off to the side, then one
// atomic publish. POST honors If-Match on the version for optimistic
// concurrency — two racing operators cannot silently clobber each other.
func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		st := s.state.Load()
		w.Header().Set("ETag", versionETag(st.version))
		s.writeJSON(w, http.StatusOK, rulesResponse{RequestID: requestMeta(r).id, Version: st.version, Count: len(st.texts), Rules: st.texts})
	case http.MethodPost:
		wantVersion, ok, err := parseIfMatch(r.Header.Get("If-Match"))
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, CodeBadRequest, "%v", err)
			return
		}
		texts, comment, err := readRulesBody(r)
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				s.writeError(w, r, http.StatusRequestEntityTooLarge, CodePayloadTooLarge, "%v", err)
				return
			}
			s.writeError(w, r, http.StatusBadRequest, CodeBadRequest, "%v", err)
			return
		}
		rs := rules.NewSet()
		for i, text := range texts {
			rule, err := rules.Parse(s.schema, text)
			if err != nil {
				s.writeError(w, r, http.StatusBadRequest, CodeBadRequest, "rule %d: %v", i+1, err)
				return
			}
			rs.Add(rule)
		}
		s.mu.Lock()
		if ok {
			if cur := s.state.Load().version; cur != wantVersion {
				s.mu.Unlock()
				w.Header().Set("ETag", versionETag(cur))
				s.writeError(w, r, http.StatusConflict, CodeConflict,
					"published version is %d, If-Match wanted %d (re-read /v1/rules and retry)", cur, wantVersion)
				return
			}
		}
		st, err := s.publishLocked(rs, nil, comment)
		s.mu.Unlock()
		if err != nil {
			s.writeError(w, r, http.StatusInternalServerError, CodeInternal, "persisting publish: %v", err)
			return
		}
		w.Header().Set("ETag", versionETag(st.version))
		s.writeJSON(w, http.StatusOK, rulesResponse{RequestID: requestMeta(r).id, Version: st.version, Count: len(st.texts), Rules: st.texts})
	default:
		s.methodNotAllowed(w, r, http.MethodGet, http.MethodPost)
	}
}

// versionETag renders a rule-set version as a strong entity tag.
func versionETag(v int) string { return fmt.Sprintf("%q", strconv.Itoa(v)) }

// parseIfMatch parses an If-Match header carrying a rule-set version as
// written by versionETag (quotes optional; "*" matches anything and is
// reported as absent).
func parseIfMatch(h string) (version int, ok bool, err error) {
	h = strings.TrimSpace(h)
	if h == "" || h == "*" {
		return 0, false, nil
	}
	h = strings.TrimPrefix(h, "W/")
	h = strings.Trim(h, `"`)
	v, perr := strconv.Atoi(h)
	if perr != nil || v < 0 {
		return 0, false, fmt.Errorf("bad If-Match %q (want a rule-set version like %s)", h, versionETag(7))
	}
	return v, true, nil
}

// readRulesBody accepts either the JSON swap request or a text/plain rule
// file (one rule per line, '#' comments), so `curl --data-binary
// @rules.txt` works.
func readRulesBody(r *http.Request) (texts []string, comment string, err error) {
	ct := r.Header.Get("Content-Type")
	if mt, _, _ := mime.ParseMediaType(ct); mt == "" || mt == "application/json" {
		var req rulesSwapRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return nil, "", fmt.Errorf("bad JSON: %w", err)
		}
		if req.Comment == "" {
			req.Comment = "POST /v1/rules"
		}
		return req.Rules, req.Comment, nil
	}
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, "", err
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		texts = append(texts, line)
	}
	return texts, "POST /v1/rules", nil
}

// handleFeedback appends labeled transactions to the server-side relation
// (WAL first, when durable) and reports which of them the current rules
// already capture.
func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.methodNotAllowed(w, r, http.MethodPost)
		return
	}
	var req feedbackRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Transactions) == 0 {
		s.writeError(w, r, http.StatusBadRequest, CodeBadRequest, "no transactions")
		return
	}
	if len(req.Transactions) > s.cfg.MaxBatch {
		s.writeError(w, r, http.StatusRequestEntityTooLarge, CodePayloadTooLarge, "batch of %d exceeds max %d", len(req.Transactions), s.cfg.MaxBatch)
		return
	}
	// Validate the whole batch before touching server state: feedback is
	// all-or-nothing.
	batch, labels, err := s.buildRelation(req.Transactions, true)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	if s.wal != nil {
		if err := s.walAppendFeedback(batch); err != nil {
			s.mu.Unlock()
			s.writeError(w, r, http.StatusInternalServerError, CodeInternal, "persisting feedback: %v", err)
			return
		}
	}
	base := s.feedback.Len()
	for i := 0; i < batch.Len(); i++ {
		s.feedback.MustAppend(batch.Tuple(i), batch.Label(i), batch.Score(i))
	}
	st := s.state.Load()
	cache := s.captureLocked(st)
	resp := feedbackResponse{
		RequestID: requestMeta(r).id,
		Version:   st.version,
		Added:     batch.Len(),
		Total:     s.feedback.Len(),
		Captured:  make([]bool, batch.Len()),
	}
	capturing := make([][]int, batch.Len())
	for i := range resp.Captured {
		resp.Captured[i] = cache.Captured(base + i)
		capturing[i] = cache.CapturingRulesAt(base + i)
	}
	s.mu.Unlock()
	// Join the labels against the capturing rules: the per-rule FP/TP
	// evidence behind GET /v1/rules/health and the feedback counter series.
	for i, lab := range labels {
		fraud := lab == relation.Fraud
		legit := lab == relation.Legitimate
		s.stats.RecordFeedback(fraud, legit, capturing[i])
		if fraud || legit {
			for _, ri := range capturing[i] {
				if fraud {
					s.vRuleTP.With(strconv.Itoa(ri)).Inc()
				} else {
					s.vRuleFP.With(strconv.Itoa(ri)).Inc()
				}
			}
		}
	}
	for _, lab := range labels {
		switch lab {
		case relation.Fraud:
			s.mFeedbackFraud.Inc()
		case relation.Legitimate:
			s.mFeedbackLegit.Inc()
		default:
			s.mFeedbackUnlabeled.Inc()
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleRefine runs a refinement session over the accumulated feedback and
// atomically publishes the refined rules.
func (s *Server) handleRefine(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.methodNotAllowed(w, r, http.MethodPost)
		return
	}
	var req refineRequest
	if r.ContentLength != 0 {
		if !s.decodeJSON(w, r, &req) {
			return
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.feedback.Len() == 0 {
		s.writeError(w, r, http.StatusConflict, CodeConflict, "no feedback ingested yet")
		return
	}
	old := s.state.Load()
	opts := s.cfg.Refine
	if req.MaxRounds > 0 {
		opts.MaxRounds = req.MaxRounds
	}
	meta := requestMeta(r)
	// The session's spans nest under this request's span, so GET /v1/trace
	// shows the whole refinement — rounds, expert queries, capture rebinds —
	// attributed to the request id echoed in the response.
	opts.Tracer = s.tracer
	opts.TraceParent = meta.span
	sess := core.NewSession(old.set, s.cfg.Expert, opts)
	stats := sess.Refine(s.feedback)
	hits, rebinds, _ := sess.CaptureStats()
	s.mRefineHits.Add(hits)
	s.mRefineMisses.Add(rebinds)
	comment := req.Comment
	if comment == "" {
		comment = fmt.Sprintf("POST /v1/refine over %d feedback transactions", s.feedback.Len())
	}
	st, err := s.publishLocked(sess.Rules().Clone(), sess.Log().All(), comment)
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, CodeInternal, "persisting refined rules: %v", err)
		return
	}
	s.mRefines.Inc()
	s.log.Info("refinement complete", "request_id", meta.id,
		"old_version", old.version, "version", st.version,
		"rounds", stats.Round, "modifications", stats.Modifications,
		"fraud_captured", stats.FraudCaptured, "fraud_total", stats.FraudTotal)
	s.writeJSON(w, http.StatusOK, refineResponse{
		RequestID:         meta.id,
		OldVersion:        old.version,
		Version:           st.version,
		Rules:             st.set.Len(),
		Modifications:     stats.Modifications,
		FraudTotal:        stats.FraudTotal,
		FraudCaptured:     stats.FraudCaptured,
		LegitTotal:        stats.LegitTotal,
		LegitCaptured:     stats.LegitCaptured,
		UnlabeledCaptured: stats.UnlabeledCaptured,
	})
}

// handleStats reports the published rules' performance over the feedback
// relation, read off the incremental capture cache.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, r, http.MethodGet)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state.Load()
	resp := statsResponse{RequestID: requestMeta(r).id, Version: st.version, Rules: st.set.Len(), Feedback: s.feedback.Len()}
	if s.feedback.Len() > 0 {
		cache := s.captureLocked(st)
		union := cache.Union()
		for i := 0; i < s.feedback.Len(); i++ {
			switch s.feedback.Label(i) {
			case relation.Fraud:
				resp.Fraud++
				if union.Has(i) {
					resp.FraudCaptured++
				}
			case relation.Legitimate:
				resp.Legit++
				if union.Has(i) {
					resp.LegitCaptured++
				}
			default:
				resp.Unlabeled++
			}
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleRuleHealth serves the per-rule health snapshot: fire counts and
// shares, feedback-derived FP/TP estimates, EWMA fire-rate drift against the
// post-publish baseline, and staleness. The ETag is the rule-set version the
// snapshot accounts for — identical to GET /v1/rules' ETag for the same
// version, so clients can join health against the rule texts they already
// hold (and detect a publish race with If-None-Match).
func (s *Server) handleRuleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, r, http.MethodGet)
		return
	}
	meta := requestMeta(r)
	sp := meta.span.Child("rulestats.snapshot")
	snap := s.stats.Snapshot()
	sp.Int("rules", int64(len(snap.Rules))).Int("version", int64(snap.Version))
	sp.End()
	etag := versionETag(snap.Version)
	w.Header().Set("ETag", etag)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	s.writeJSON(w, http.StatusOK, ruleHealthResponse{RequestID: meta.id, Snapshot: snap})
}

// handleAudit serves the sampled decision audit ring, newest first.
// ?n= bounds the returned entries (default 100).
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, r, http.MethodGet)
		return
	}
	n := 100
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			s.writeError(w, r, http.StatusBadRequest, CodeBadRequest, "bad n %q (want a positive integer)", q)
			return
		}
		n = v
	}
	entries := s.stats.AuditEntries(n)
	if entries == nil {
		entries = []rulestats.AuditEntry{}
	}
	s.writeJSON(w, http.StatusOK, auditResponse{
		RequestID: requestMeta(r).id,
		Version:   s.stats.Version(),
		Retained:  s.stats.AuditLen(),
		Count:     len(entries),
		Entries:   entries,
	})
}

// refreshRuleGauges publishes the derived per-rule gauges (drift, staleness)
// from a fresh health snapshot. Called before every /metrics scrape.
func (s *Server) refreshRuleGauges() {
	snap := s.stats.Snapshot()
	for _, h := range snap.Rules {
		label := strconv.Itoa(h.Rule)
		s.vRuleDrift.With(label).Set(h.Drift)
		s.vRuleStale.With(label).Set(h.LastFiredAgo)
	}
}

// handleSchema serves the schema JSON so clients (cmd/loadgen) can
// self-configure.
func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, r, http.MethodGet)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.schema.WriteJSON(w); err != nil {
		s.writeError(w, r, http.StatusInternalServerError, CodeInternal, "%v", err)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports readiness. New replays the snapshot and WAL before
// the server can even be constructed, so a reachable leader is a restored
// leader and its readiness only flips while draining. A follower is
// additionally not ready until replay has caught up to the leader's WAL
// position as of the first connect — load balancers never route reads to a
// node still serving a stale rule version.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		s.writeErrorID(w, "", http.StatusServiceUnavailable, CodeNotReady, "draining")
		return
	}
	if f := s.follower; f != nil && !f.ready() {
		s.writeErrorID(w, "", http.StatusServiceUnavailable, CodeNotReady,
			"follower catching up: applied seq %d of %d", f.applied.Load(), f.target.Load())
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}
