// Package serve is the online scoring service: a stdlib-only net/http
// daemon that evaluates the current rule set against live transaction
// traffic, ingests analyst feedback, and refines its rules in place.
//
// The paper's RUDOLF refines rules offline, but its premise is that the
// refined set is then deployed against live card traffic — financial
// institutes run rule systems as high-throughput online scorers whose rules
// are hot-swapped as analysts iterate. This package is that deployment
// layer over the repository's evaluation core:
//
//   - The published rule set lives behind an atomic pointer as a
//     ruleState (rule set + compiled index.Evaluator + version). Scoring
//     requests load the pointer exactly once, so every response is
//     consistent with exactly one version; swaps compile off to the side
//     and publish with a single atomic store (no torn reads, no locks on
//     the hot path — serve_test.go hammers this under -race).
//   - Versions are committed to an internal/history store: every
//     POST /rules swap and every /refine round is a durable, diffable
//     rule-set version, mirroring the FI change histories of the paper.
//   - Feedback (fraud/legit verdicts, plus unlabeled context traffic)
//     appends to a server-side relation watched by an incremental
//     capture.Cache, so POST /refine runs a refinement session in place
//     and atomically publishes the result.
//   - A bounded worker pool (semaphore) caps concurrent scoring
//     evaluations; inside a slot, batches reuse the chunk-parallel
//     compiled evaluator.
//   - Production plumbing: per-endpoint timeouts, max body bytes,
//     /healthz, /readyz (flips to 503 while draining), graceful drain,
//     and /metrics in Prometheus text format via internal/telemetry.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"mime"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/expert"
	"repro/internal/history"
	"repro/internal/index"
	"repro/internal/relation"
	"repro/internal/rules"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config parameterizes a Server. Schema is required; everything else has
// serving-grade defaults.
type Config struct {
	// Schema of the transaction relation the daemon scores.
	Schema *relation.Schema
	// Rules is the initial rule set (may be empty; swap one in later).
	Rules *rules.Set
	// History receives every published version; nil means a fresh store.
	History *history.Store
	// Workers bounds concurrently evaluating scoring requests (the worker
	// pool). 0 means 2×GOMAXPROCS slots.
	Workers int
	// MaxBatch caps transactions per /score or /feedback request.
	// 0 means DefaultMaxBatch.
	MaxBatch int
	// MaxBodyBytes caps request bodies. 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// ScoreTimeout, SwapTimeout, FeedbackTimeout and RefineTimeout bound
	// the respective endpoints (0 means the package defaults).
	ScoreTimeout    time.Duration
	SwapTimeout     time.Duration
	FeedbackTimeout time.Duration
	RefineTimeout   time.Duration
	// DrainTimeout bounds the graceful shutdown in Serve.
	DrainTimeout time.Duration
	// Refine configures the sessions run by POST /refine.
	Refine core.Options
	// Expert reviews /refine proposals; nil means the auto-accepting
	// expert (the paper's unattended RUDOLF⁻ mode — a serving daemon has
	// no terminal to put an analyst on).
	Expert core.Expert
	// Registry receives the daemon's metrics; nil means a fresh registry.
	Registry *telemetry.Registry
	// TraceCapacity sizes the daemon's span ring buffer (GET /trace serves
	// its contents). 0 means trace.DefaultCapacity. The daemon always owns
	// its tracer: span completions also feed the refinement-duration and
	// expert-query metrics.
	TraceCapacity int
	// Logger receives structured operational logs (publishes, refinements,
	// drains). Nil discards them, keeping tests and library callers quiet.
	Logger *slog.Logger
}

// Defaults for the zero Config values.
const (
	DefaultMaxBatch     = 4096
	DefaultMaxBodyBytes = 8 << 20
	DefaultScoreTimeout = 5 * time.Second
	DefaultSwapTimeout  = 10 * time.Second
	DefaultRefine       = 120 * time.Second
	DefaultDrain        = 10 * time.Second
)

// ruleState is one published version: the rule set, its compiled evaluator
// and the history version id. Immutable once published — swaps build a new
// state and atomically replace the pointer.
type ruleState struct {
	version int
	set     *rules.Set
	ev      *index.Evaluator
	texts   []string
}

// Server is the scoring daemon. Create with New, mount via Handler, run
// with Serve (or any http.Server).
type Server struct {
	cfg    Config
	schema *relation.Schema

	state atomic.Pointer[ruleState]

	// mu serializes control-plane state: rule swaps, history commits,
	// feedback appends, the capture cache and refinement. The scoring data
	// plane never takes it.
	mu       sync.Mutex
	hist     *history.Store
	feedback *relation.Relation
	cache    *capture.Cache

	draining atomic.Bool

	sem chan struct{}

	reg *telemetry.Registry
	// hot-path metrics, resolved once.
	mScoreTx      *telemetry.Counter
	mScoreLat     *telemetry.Histogram
	mBatchLat     *telemetry.Histogram
	mInflight     *telemetry.Gauge
	mVersion      *telemetry.Gauge
	mRuleCount    *telemetry.Gauge
	mSwaps        *telemetry.Counter
	mRefines      *telemetry.Counter
	mCacheHit     *telemetry.Counter
	mCacheMiss    *telemetry.Counter
	mRoundDur     *telemetry.Histogram
	mExpertGen    *telemetry.Counter
	mExpertSplit  *telemetry.Counter
	mRefineHits   *telemetry.Counter
	mRefineMisses *telemetry.Counter

	// tracer records request/refinement spans; reqSeq numbers requests for
	// the X-Request-Id header echoed in every JSON response.
	tracer *trace.Tracer
	reqSeq atomic.Uint64
	log    *slog.Logger
}

// New builds a Server and publishes version 1 from cfg.Rules.
func New(cfg Config) (*Server, error) {
	if cfg.Schema == nil {
		return nil, errors.New("serve: Config.Schema is required")
	}
	if cfg.Rules == nil {
		cfg.Rules = rules.NewSet()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2 * maxProcs()
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.ScoreTimeout <= 0 {
		cfg.ScoreTimeout = DefaultScoreTimeout
	}
	if cfg.SwapTimeout <= 0 {
		cfg.SwapTimeout = DefaultSwapTimeout
	}
	if cfg.FeedbackTimeout <= 0 {
		cfg.FeedbackTimeout = DefaultSwapTimeout
	}
	if cfg.RefineTimeout <= 0 {
		cfg.RefineTimeout = DefaultRefine
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrain
	}
	if cfg.Expert == nil {
		// The auto-accepting expert: a serving daemon has no terminal to
		// put an analyst on, so /refine defaults to the paper's unattended
		// RUDOLF⁻ mode.
		cfg.Expert = &expert.AutoAccept{}
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	hist := cfg.History
	if hist == nil {
		hist = history.NewStore(cfg.Schema)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	s := &Server{
		cfg:      cfg,
		schema:   cfg.Schema,
		hist:     hist,
		feedback: relation.New(cfg.Schema),
		cache:    capture.New(),
		sem:      make(chan struct{}, cfg.Workers),
		reg:      cfg.Registry,
		log:      logger,
	}
	s.initMetrics()
	// The tracer's completion hook derives the refinement metrics straight
	// from the spans, so the histogram and the trace can never disagree.
	s.tracer = trace.New(trace.Options{Capacity: cfg.TraceCapacity, OnEnd: func(r trace.Record) {
		switch r.Name {
		case "refine.round":
			s.mRoundDur.Observe(r.Dur.Seconds())
		case "expert.review_generalization":
			s.mExpertGen.Inc()
		case "expert.review_split":
			s.mExpertSplit.Inc()
		}
	}})
	s.cache.Tracer = s.tracer
	s.mu.Lock()
	s.publishLocked(cfg.Rules.Clone(), nil, "initial rules")
	s.mu.Unlock()
	return s, nil
}

// Tracer returns the daemon's span tracer (never nil), for callers that want
// to dump traces out of band of GET /trace.
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

func maxProcs() int { return runtime.GOMAXPROCS(0) }

func (s *Server) initMetrics() {
	r := s.reg
	r.Help("rudolf_http_requests_total", "HTTP requests served, by path and status code.")
	r.Help("rudolf_score_tx_total", "Transactions scored.")
	r.Help("rudolf_score_latency_seconds", "Per-transaction scoring latency (request latency / batch size).")
	r.Help("rudolf_score_batch_latency_seconds", "Whole-request scoring latency.")
	r.Help("rudolf_score_inflight", "Scoring requests currently holding a worker slot.")
	r.Help("rudolf_rules_version", "Published rule-set version (history id).")
	r.Help("rudolf_rules_count", "Rules in the published set.")
	r.Help("rudolf_rule_swaps_total", "Rule-set publishes (swaps + refines + initial).")
	r.Help("rudolf_refines_total", "Completed /refine rounds.")
	r.Help("rudolf_feedback_tx_total", "Feedback transactions ingested, by label.")
	r.Help("rudolf_capture_cache_hits_total", "Capture-cache queries answered incrementally, by caller.")
	r.Help("rudolf_capture_cache_misses_total", "Capture-cache queries that forced a full rebind, by caller.")
	r.Help("rudolf_refine_round_duration_seconds", "Wall-clock duration of one generalize+specialize refinement round.")
	r.Help("rudolf_expert_queries_total", "Expert proposals reviewed during refinement, by proposal kind.")
	s.mScoreTx = r.Counter("rudolf_score_tx_total")
	s.mScoreLat = r.Histogram("rudolf_score_latency_seconds", nil)
	s.mBatchLat = r.Histogram("rudolf_score_batch_latency_seconds", nil)
	s.mInflight = r.Gauge("rudolf_score_inflight")
	s.mVersion = r.Gauge("rudolf_rules_version")
	s.mRuleCount = r.Gauge("rudolf_rules_count")
	s.mSwaps = r.Counter("rudolf_rule_swaps_total")
	s.mRefines = r.Counter("rudolf_refines_total")
	s.mCacheHit = r.Counter(`rudolf_capture_cache_hits_total{caller="serve"}`)
	s.mCacheMiss = r.Counter(`rudolf_capture_cache_misses_total{caller="serve"}`)
	s.mRefineHits = r.Counter(`rudolf_capture_cache_hits_total{caller="refine"}`)
	s.mRefineMisses = r.Counter(`rudolf_capture_cache_misses_total{caller="refine"}`)
	s.mRoundDur = r.Histogram("rudolf_refine_round_duration_seconds", nil)
	s.mExpertGen = r.Counter(`rudolf_expert_queries_total{kind="generalization"}`)
	s.mExpertSplit = r.Counter(`rudolf_expert_queries_total{kind="split"}`)
}

// publishLocked compiles rs, commits it to history and atomically publishes
// the new state. Callers hold s.mu.
func (s *Server) publishLocked(rs *rules.Set, mods []core.Modification, comment string) *ruleState {
	ev := index.Compile(s.schema, rs)
	v := s.hist.Commit(rs, mods, comment)
	st := &ruleState{version: v.ID, set: rs, ev: ev, texts: v.Rules}
	s.state.Store(st)
	// The capture cache mirrors the published rules over the feedback
	// relation; a publish invalidates it wholesale (rule count may match
	// across a swap, so length-drift detection is not enough).
	s.cache.Invalidate()
	s.mVersion.Set(int64(st.version))
	s.mRuleCount.Set(int64(rs.Len()))
	s.mSwaps.Inc()
	s.log.Info("rules published", "version", st.version, "rules", rs.Len(), "comment", comment)
	return st
}

// captureLocked returns the capture cache bound to the feedback relation
// and the published rules, counting hits (incremental) vs misses (rebind).
// Callers hold s.mu.
func (s *Server) captureLocked(st *ruleState) *capture.Cache {
	if rebound := s.cache.Ensure(s.feedback, st.set); rebound {
		s.mCacheMiss.Inc()
	} else {
		s.mCacheHit.Inc()
	}
	return s.cache
}

// Version returns the currently published rules version.
func (s *Server) Version() int { return s.state.Load().version }

// Rules returns the currently published rule set (read-only).
func (s *Server) Rules() *rules.Set { return s.state.Load().set }

// History returns the server's version store.
func (s *Server) History() *history.Store { return s.hist }

// Registry returns the server's telemetry registry.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// SetDraining flips readiness: a draining server answers /readyz with 503
// so load balancers stop routing to it, while in-flight and late requests
// still complete.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Handler returns the daemon's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/score", s.instrument("/score", s.timeout(http.HandlerFunc(s.handleScore), s.cfg.ScoreTimeout)))
	mux.Handle("/rules", s.instrument("/rules", s.timeout(http.HandlerFunc(s.handleRules), s.cfg.SwapTimeout)))
	mux.Handle("/feedback", s.instrument("/feedback", s.timeout(http.HandlerFunc(s.handleFeedback), s.cfg.FeedbackTimeout)))
	mux.Handle("/refine", s.instrument("/refine", s.timeout(http.HandlerFunc(s.handleRefine), s.cfg.RefineTimeout)))
	mux.Handle("/stats", s.instrument("/stats", http.HandlerFunc(s.handleStats)))
	mux.Handle("/schema", s.instrument("/schema", http.HandlerFunc(s.handleSchema)))
	mux.Handle("/healthz", http.HandlerFunc(s.handleHealthz))
	mux.Handle("/readyz", http.HandlerFunc(s.handleReadyz))
	mux.Handle("/metrics", s.reg.Handler())
	// /trace is deliberately uninstrumented: fetching the trace must not
	// append request spans to the very ring being exported.
	mux.Handle("/trace", http.HandlerFunc(s.handleTrace))
	return mux
}

// handleTrace exports the daemon's recent spans: Chrome trace_event JSON by
// default (loadable in chrome://tracing / ui.perfetto.dev), JSONL with
// ?format=jsonl.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	recs := s.tracer.Snapshot()
	switch f := r.URL.Query().Get("format"); f {
	case "", "chrome":
		w.Header().Set("Content-Type", "application/json")
		trace.WriteChrome(w, recs) //nolint:errcheck // client gone: nothing to do
	case "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		trace.WriteJSONL(w, recs) //nolint:errcheck // client gone: nothing to do
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (want chrome or jsonl)", f)
	}
}

// Serve runs the daemon on ln until ctx is canceled, then drains: readiness
// flips first, then the listener closes and in-flight requests get
// DrainTimeout to finish.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	s.log.Info("serving", "addr", ln.Addr().String(), "workers", s.cfg.Workers)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.log.Info("draining", "timeout", s.cfg.DrainTimeout)
	s.SetDraining(true)
	shutCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	<-errc // hs.Serve returned http.ErrServerClosed
	return nil
}

// timeout wraps h with http.TimeoutHandler unless d <= 0.
func (s *Server) timeout(h http.Handler, d time.Duration) http.Handler {
	if d <= 0 {
		return h
	}
	return http.TimeoutHandler(h, d, `{"error":"request timed out"}`)
}

// statusWriter records the response code for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// reqMetaKey carries the per-request id and span through the context.
type reqMetaKey struct{}

// reqMeta is the per-request correlation state minted by instrument.
type reqMeta struct {
	id   string
	span trace.Span
}

// requestMeta returns the request's correlation metadata (zero when the
// route is uninstrumented).
func requestMeta(r *http.Request) reqMeta {
	m, _ := r.Context().Value(reqMetaKey{}).(reqMeta)
	return m
}

// instrument applies the body limit, mints a request id (echoed as the
// X-Request-Id header and the request_id field of JSON responses), opens a
// per-request span named after the route, and counts the request by path and
// status code. The span id makes responses joinable against GET /trace.
func (s *Server) instrument(path string, h http.Handler) http.Handler {
	name := "request." + strings.TrimPrefix(path, "/")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		id := fmt.Sprintf("req-%06d", s.reqSeq.Add(1))
		sp := s.tracer.Start(name)
		sp.Str("id", id)
		w.Header().Set("X-Request-Id", id)
		r = r.WithContext(context.WithValue(r.Context(), reqMetaKey{}, reqMeta{id: id, span: sp}))
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, r)
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		sp.Int("code", int64(sw.code))
		sp.End()
		s.reg.Counter(fmt.Sprintf(`rudolf_http_requests_total{path=%q,code="%d"}`, path, sw.code)).Inc()
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone: nothing to do
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooBig.Limit)
			return false
		}
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return false
	}
	return true
}

// buildRelation parses and validates a wire batch into a relation, honoring
// labels when forFeedback is set.
func (s *Server) buildRelation(txs []txIn, forFeedback bool) (*relation.Relation, []relation.Label, error) {
	rel := relation.New(s.schema)
	labels := make([]relation.Label, 0, len(txs))
	for i, tx := range txs {
		t, err := parseTuple(s.schema, tx.Attrs)
		if err != nil {
			return nil, nil, fmt.Errorf("transaction %d: %w", i, err)
		}
		lab := relation.Unlabeled
		if forFeedback {
			lab, err = parseWireLabel(tx.Label)
			if err != nil {
				return nil, nil, fmt.Errorf("transaction %d: %w", i, err)
			}
			if tx.Label == "" {
				return nil, nil, fmt.Errorf("transaction %d: missing label (want fraud, legit or unlabeled)", i)
			}
		}
		if _, err := rel.Append(t, lab, tx.Score); err != nil {
			return nil, nil, fmt.Errorf("transaction %d: %w", i, err)
		}
		labels = append(labels, lab)
	}
	return rel, labels, nil
}

// acquire takes a worker-pool slot, respecting request cancellation.
func (s *Server) acquire(ctx context.Context) bool {
	select {
	case s.sem <- struct{}{}:
		s.mInflight.Add(1)
		return true
	case <-ctx.Done():
		return false
	}
}

func (s *Server) release() {
	<-s.sem
	s.mInflight.Add(-1)
}

// handleScore evaluates a batch against exactly one published version.
func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req scoreRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	txs := req.Transactions
	if txs == nil && req.Attrs != nil {
		txs = []txIn{{Attrs: req.Attrs, Score: req.Score}}
	}
	if len(txs) == 0 {
		httpError(w, http.StatusBadRequest, "no transactions")
		return
	}
	if len(txs) > s.cfg.MaxBatch {
		httpError(w, http.StatusRequestEntityTooLarge, "batch of %d exceeds max %d", len(txs), s.cfg.MaxBatch)
		return
	}
	rel, _, err := s.buildRelation(txs, false)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.acquire(r.Context()) {
		httpError(w, http.StatusServiceUnavailable, "canceled while queued for a worker slot")
		return
	}
	meta := requestMeta(r)
	start := time.Now()
	st := s.state.Load() // exactly one version per response
	captured := st.ev.EvalUnder(meta.span, rel)
	elapsed := time.Since(start).Seconds()
	s.release()

	resp := scoreResponse{RequestID: meta.id, Version: st.version, Count: rel.Len(), Flagged: make([]bool, rel.Len())}
	for i := 0; i < rel.Len(); i++ {
		if captured.Has(i) {
			resp.Flagged[i] = true
			resp.Matched++
		}
	}
	s.mScoreTx.Add(uint64(rel.Len()))
	s.mBatchLat.Observe(elapsed)
	s.mScoreLat.Observe(elapsed / float64(rel.Len()))
	writeJSON(w, http.StatusOK, resp)
}

// handleRules serves the published rules (GET) and hot-swaps a new set
// (POST): parse + compile off to the side, then one atomic publish.
func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		st := s.state.Load()
		writeJSON(w, http.StatusOK, rulesResponse{RequestID: requestMeta(r).id, Version: st.version, Count: len(st.texts), Rules: st.texts})
	case http.MethodPost:
		texts, comment, err := readRulesBody(r)
		if err != nil {
			status := http.StatusBadRequest
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				status = http.StatusRequestEntityTooLarge
			}
			httpError(w, status, "%v", err)
			return
		}
		rs := rules.NewSet()
		for i, text := range texts {
			rule, err := rules.Parse(s.schema, text)
			if err != nil {
				httpError(w, http.StatusBadRequest, "rule %d: %v", i+1, err)
				return
			}
			rs.Add(rule)
		}
		s.mu.Lock()
		st := s.publishLocked(rs, nil, comment)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, rulesResponse{RequestID: requestMeta(r).id, Version: st.version, Count: len(st.texts)})
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

// readRulesBody accepts either the JSON swap request or a text/plain rule
// file (one rule per line, '#' comments), so `curl --data-binary
// @rules.txt` works.
func readRulesBody(r *http.Request) (texts []string, comment string, err error) {
	ct := r.Header.Get("Content-Type")
	if mt, _, _ := mime.ParseMediaType(ct); mt == "" || mt == "application/json" {
		var req rulesSwapRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return nil, "", fmt.Errorf("bad JSON: %w", err)
		}
		if req.Comment == "" {
			req.Comment = "POST /rules"
		}
		return req.Rules, req.Comment, nil
	}
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, "", err
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		texts = append(texts, line)
	}
	return texts, "POST /rules", nil
}

// handleFeedback appends labeled transactions to the server-side relation
// and reports which of them the current rules already capture.
func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req feedbackRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Transactions) == 0 {
		httpError(w, http.StatusBadRequest, "no transactions")
		return
	}
	if len(req.Transactions) > s.cfg.MaxBatch {
		httpError(w, http.StatusRequestEntityTooLarge, "batch of %d exceeds max %d", len(req.Transactions), s.cfg.MaxBatch)
		return
	}
	// Validate the whole batch before touching server state: feedback is
	// all-or-nothing.
	batch, labels, err := s.buildRelation(req.Transactions, true)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	base := s.feedback.Len()
	for i := 0; i < batch.Len(); i++ {
		s.feedback.MustAppend(batch.Tuple(i), batch.Label(i), batch.Score(i))
	}
	st := s.state.Load()
	cache := s.captureLocked(st)
	resp := feedbackResponse{
		RequestID: requestMeta(r).id,
		Version:   st.version,
		Added:     batch.Len(),
		Total:     s.feedback.Len(),
		Captured:  make([]bool, batch.Len()),
	}
	for i := range resp.Captured {
		resp.Captured[i] = cache.Captured(base + i)
	}
	s.mu.Unlock()
	for _, lab := range labels {
		name := "unlabeled"
		switch lab {
		case relation.Fraud:
			name = "fraud"
		case relation.Legitimate:
			name = "legit"
		}
		s.reg.Counter(fmt.Sprintf(`rudolf_feedback_tx_total{label=%q}`, name)).Inc()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRefine runs a refinement session over the accumulated feedback and
// atomically publishes the refined rules.
func (s *Server) handleRefine(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req refineRequest
	if r.ContentLength != 0 {
		if !decodeJSON(w, r, &req) {
			return
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.feedback.Len() == 0 {
		httpError(w, http.StatusConflict, "no feedback ingested yet")
		return
	}
	old := s.state.Load()
	opts := s.cfg.Refine
	if req.MaxRounds > 0 {
		opts.MaxRounds = req.MaxRounds
	}
	meta := requestMeta(r)
	// The session's spans nest under this request's span, so GET /trace
	// shows the whole refinement — rounds, expert queries, capture rebinds —
	// attributed to the request id echoed in the response.
	opts.Tracer = s.tracer
	opts.TraceParent = meta.span
	sess := core.NewSession(old.set, s.cfg.Expert, opts)
	stats := sess.Refine(s.feedback)
	hits, rebinds, _ := sess.CaptureStats()
	s.mRefineHits.Add(hits)
	s.mRefineMisses.Add(rebinds)
	comment := req.Comment
	if comment == "" {
		comment = fmt.Sprintf("POST /refine over %d feedback transactions", s.feedback.Len())
	}
	st := s.publishLocked(sess.Rules().Clone(), sess.Log().All(), comment)
	s.mRefines.Inc()
	s.log.Info("refinement complete", "request_id", meta.id,
		"old_version", old.version, "version", st.version,
		"rounds", stats.Round, "modifications", stats.Modifications,
		"fraud_captured", stats.FraudCaptured, "fraud_total", stats.FraudTotal)
	writeJSON(w, http.StatusOK, refineResponse{
		RequestID:         meta.id,
		OldVersion:        old.version,
		Version:           st.version,
		Rules:             st.set.Len(),
		Modifications:     stats.Modifications,
		FraudTotal:        stats.FraudTotal,
		FraudCaptured:     stats.FraudCaptured,
		LegitTotal:        stats.LegitTotal,
		LegitCaptured:     stats.LegitCaptured,
		UnlabeledCaptured: stats.UnlabeledCaptured,
	})
}

// handleStats reports the published rules' performance over the feedback
// relation, read off the incremental capture cache.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state.Load()
	resp := statsResponse{RequestID: requestMeta(r).id, Version: st.version, Rules: st.set.Len(), Feedback: s.feedback.Len()}
	if s.feedback.Len() > 0 {
		cache := s.captureLocked(st)
		union := cache.Union()
		for i := 0; i < s.feedback.Len(); i++ {
			switch s.feedback.Label(i) {
			case relation.Fraud:
				resp.Fraud++
				if union.Has(i) {
					resp.FraudCaptured++
				}
			case relation.Legitimate:
				resp.Legit++
				if union.Has(i) {
					resp.LegitCaptured++
				}
			default:
				resp.Unlabeled++
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSchema serves the schema JSON so clients (cmd/loadgen) can
// self-configure.
func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.schema.WriteJSON(w); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}
