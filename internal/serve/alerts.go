package serve

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/alert"
)

// GET /v1/alerts and POST /v1/alerts: the embedded alert engine's readout
// and rule surface (DESIGN.md §17).
//
// The endpoint is node-local on every role: a follower evaluates (and
// accepts) its own alert rules, because its signals — replication lag
// above all — are exactly what the rules watch. That is why the route is
// not wrapped by the read-only guard, unlike /v1/rules.

// alertsResponse is the GET /v1/alerts document: the engine snapshot plus
// the request id envelope field.
type alertsResponse struct {
	RequestID string `json:"request_id,omitempty"`
	alert.Snapshot
}

// alertsPublishRequest is the POST /v1/alerts body: the full replacement
// rule set, one rule per line. An empty list disables every alert.
type alertsPublishRequest struct {
	Rules []string `json:"rules"`
}

// alertsPublishResponse acknowledges a rule install.
type alertsPublishResponse struct {
	RequestID string `json:"request_id,omitempty"`
	// ConfigVersion counts rule installs on this node (the first half of
	// the /v1/alerts ETag).
	ConfigVersion int `json:"config_version"`
	// Rules is the number of rules now installed.
	Rules int `json:"rules"`
}

// alertsETag versions GET /v1/alerts responses: the install counter plus
// the state-transition generation, so any rule change or lifecycle
// transition invalidates a cached readout.
func alertsETag(snap *alert.Snapshot) string {
	return fmt.Sprintf(`"%d-%d"`, snap.ConfigVersion, snap.Generation)
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.handleAlertsGet(w, r)
	case http.MethodPost:
		s.handleAlertsPost(w, r)
	default:
		s.methodNotAllowed(w, r, http.MethodGet, http.MethodPost)
	}
}

// handleAlertsGet serves the engine snapshot. ?refresh=1 forces a
// synchronous evaluation pass first — how tests and the smoke scripts get
// deterministic readouts without racing the ticker (and how a disabled
// ticker is driven at all).
func (s *Server) handleAlertsGet(w http.ResponseWriter, r *http.Request) {
	meta := requestMeta(r)
	if v := r.URL.Query().Get("refresh"); v != "" && v != "0" {
		sp := meta.span.Child("alerts.evaluate")
		s.alerts.Evaluate()
		sp.End()
	}
	snap := s.alerts.Snapshot()
	etag := alertsETag(&snap)
	w.Header().Set("ETag", etag)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	s.writeJSON(w, http.StatusOK, alertsResponse{RequestID: meta.id, Snapshot: snap})
}

// handleAlertsPost replaces the node's alert rule set. Unlike scoring-rule
// publishes this is deliberately not WAL-logged or replicated: alert rules
// are operator configuration about this node, not scoring state.
func (s *Server) handleAlertsPost(w http.ResponseWriter, r *http.Request) {
	var req alertsPublishRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	rules, err := alert.ParseRuleLines(req.Rules)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, CodeBadRequest, "bad alert rules: %v", err)
		return
	}
	cv := s.alerts.SetRules(rules)
	s.log.Info("alert rules installed", "rules", len(rules), "config_version", cv)
	s.writeJSON(w, http.StatusOK, alertsPublishResponse{
		RequestID:     requestMeta(r).id,
		ConfigVersion: cv,
		Rules:         len(rules),
	})
}

// debugAlertsState is the alerts block of GET /v1/debug/state: the compact
// rollup (full detail lives at /v1/alerts).
type debugAlertsState struct {
	Rules         int     `json:"rules"`
	Firing        int     `json:"firing"`
	Pending       int     `json:"pending"`
	ConfigVersion int     `json:"config_version"`
	Generation    uint64  `json:"generation"`
	IntervalS     float64 `json:"interval_s"`
	// TickerRunning reports whether the periodic evaluator is on
	// (Config.AlertInterval >= 0); refresh-on-read works either way.
	TickerRunning bool                 `json:"ticker_running"`
	LastEval      string               `json:"last_eval,omitempty"`
	Webhook       *alert.WebhookStatus `json:"webhook,omitempty"`
}

// alertsDebugState builds the alerts block for /v1/debug/state.
func (s *Server) alertsDebugState() *debugAlertsState {
	snap := s.alerts.Snapshot()
	st := &debugAlertsState{
		Rules:         len(snap.Rules),
		Firing:        snap.Firing,
		Pending:       snap.Pending,
		ConfigVersion: snap.ConfigVersion,
		Generation:    snap.Generation,
		IntervalS:     snap.Interval.Seconds(),
		TickerRunning: s.alertStop != nil,
		Webhook:       snap.Webhook,
	}
	if !snap.LastEval.IsZero() {
		st.LastEval = snap.LastEval.UTC().Format(time.RFC3339Nano)
	}
	return st
}
