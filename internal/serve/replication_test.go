package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// startFollower builds a follower of the leader at leaderURL, runs its
// replication loop until the test ends, and serves its handler over httptest.
func startFollower(t testing.TB, cfg Config, leaderURL string) (*Server, string) {
	t.Helper()
	cfg.FollowURL = leaderURL
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- f.Follow(ctx) }()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Follow: %v", err)
		}
	})
	ts := httptest.NewServer(f.Handler())
	t.Cleanup(ts.Close)
	return f, ts.URL
}

// decodeBody unmarshals a response body into out, failing the test on
// malformed JSON.
func decodeBody(t testing.TB, resp *http.Response, out any) {
	t.Helper()
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("unmarshaling %q: %v", data, err)
	}
}

// waitFor polls cond for up to 10s — replication is asynchronous by design,
// so convergence assertions poll instead of sleeping a fixed amount.
func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func etagOf(t testing.TB, base string) (string, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/rules")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr rulesResponse
	decodeBody(t, resp, &rr)
	return resp.Header.Get("ETag"), rr.Version
}

// TestFollowerReplicatesLeader is the end-to-end tentpole test: a follower
// bootstraps from a live durable leader, replays feedback and publishes,
// reaches readiness, serves GET /v1/rules with the leader's exact ETag,
// keeps converging on later publishes, and rejects writes with the
// "read_only" envelope pointing at the leader.
func TestFollowerReplicatesLeader(t *testing.T) {
	schema := testSchema(t)
	leader, lts := newTestServer(t, Config{
		Schema:  schema,
		Rules:   mustRules(t, schema, "amount >= 100"),
		DataDir: t.TempDir(),
		Fsync:   "never",
	})
	defer leader.Close()

	// Pre-existing leader state the follower must replay: one feedback batch
	// and a second published version.
	if code, body := postJSON(t, lts.URL+"/v1/feedback", map[string]any{
		"transactions": []any{
			map[string]any{"attrs": map[string]any{"amount": 500, "hour": 3}, "score": 10, "label": "fraud"},
			map[string]any{"attrs": map[string]any{"amount": 20, "hour": 12}, "score": 10, "label": "legit"},
		},
	}, nil); code != http.StatusOK {
		t.Fatalf("leader feedback: %d %s", code, body)
	}
	if code, body := postJSON(t, lts.URL+"/v1/rules", map[string]any{
		"rules": []string{"amount >= 100", "hour <= 4"}, "comment": "v2",
	}, nil); code != http.StatusOK {
		t.Fatalf("leader publish: %d %s", code, body)
	}

	follower, fts := startFollower(t, Config{Schema: schema}, lts.URL)

	waitFor(t, "follower readiness", func() bool {
		return getJSON(t, fts+"/readyz", nil) == http.StatusOK
	})
	waitFor(t, "version convergence", func() bool { return follower.Version() == leader.Version() })

	// The load-bearing invariant: the follower's /v1/rules ETag equals the
	// leader's at the same version.
	letag, lver := etagOf(t, lts.URL)
	fetag, fver := etagOf(t, fts)
	if letag != fetag || lver != fver {
		t.Fatalf("leader %s v%d != follower %s v%d", letag, lver, fetag, fver)
	}
	if got, want := follower.FeedbackLen(), leader.FeedbackLen(); got != want {
		t.Fatalf("follower feedback = %d, want %d", got, want)
	}

	// The follower scores with the replicated rules.
	var sr scoreResponse
	if code, body := postJSON(t, fts+"/v1/score", tx(150, 12, 10), &sr); code != http.StatusOK {
		t.Fatalf("follower score: %d %s", code, body)
	} else if !sr.Flagged[0] || sr.Version != lver {
		t.Fatalf("follower score: %+v, want flagged at version %d", sr, lver)
	}

	// GET /v1/status reports the roles.
	var st statusResponse
	if code := getJSON(t, fts+"/v1/status", &st); code != http.StatusOK || st.Role != "follower" || !st.Ready {
		t.Fatalf("follower status: code %d, %+v", code, st)
	}
	if code := getJSON(t, lts.URL+"/v1/status", &st); code != http.StatusOK || st.Role != "leader" || st.WALLastSeq == 0 {
		t.Fatalf("leader status: code %d, %+v", code, st)
	}

	// Writes are rejected with the stable code and a Location to the leader.
	resp, err := http.Post(fts+"/v1/feedback", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	var er errorResponse
	decodeBody(t, resp, &er)
	if resp.StatusCode != http.StatusForbidden || er.Error.Code != CodeReadOnly {
		t.Fatalf("follower write: %d %+v, want 403 %s", resp.StatusCode, er, CodeReadOnly)
	}
	if loc := resp.Header.Get("Location"); loc != lts.URL+"/v1/feedback" {
		t.Fatalf("Location = %q, want %q", loc, lts.URL+"/v1/feedback")
	}
	// GET on the same guarded route still serves.
	if code := getJSON(t, fts+"/v1/rules", nil); code != http.StatusOK {
		t.Fatalf("follower GET /v1/rules: %d", code)
	}

	// A publish after catch-up streams through live.
	if code, body := postJSON(t, lts.URL+"/v1/rules", map[string]any{
		"rules": []string{"amount >= 200"}, "comment": "v3",
	}, nil); code != http.StatusOK {
		t.Fatalf("leader publish v3: %d %s", code, body)
	}
	waitFor(t, "post-catch-up convergence", func() bool { return follower.Version() == leader.Version() })
	letag, _ = etagOf(t, lts.URL)
	fetag, _ = etagOf(t, fts)
	if letag != fetag {
		t.Fatalf("post-publish ETags diverge: leader %s follower %s", letag, fetag)
	}
}

// TestFollowerBootstrapsFromSnapshot forces a leader snapshot (which prunes
// the WAL) before the follower connects: bootstrap must come from the
// snapshot files, not a full-WAL replay, and the streamed tail must carry
// only the records past it. Windowed state rides along in window.json.
func TestFollowerBootstrapsFromSnapshot(t *testing.T) {
	schema := velocityServeSchema(t)
	leader, lts := newTestServer(t, Config{
		Schema:  schema,
		Rules:   mustRules(t, schema, "COUNT(user, 10m) >= 3"),
		DataDir: t.TempDir(),
		Fsync:   "never",
	})
	defer leader.Close()

	// Two observed events inside the snapshot...
	for i := 0; i < 2; i++ {
		if code, body := postJSON(t, lts.URL+"/v1/score", vtx(int64(100+i), 7, 50), nil); code != http.StatusOK {
			t.Fatalf("leader score %d: %d %s", i, code, body)
		}
	}
	if err := leader.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// ...and one streamed after it.
	if code, body := postJSON(t, lts.URL+"/v1/score", vtx(102, 7, 50), nil); code != http.StatusOK {
		t.Fatalf("leader score post-snapshot: %d %s", code, body)
	}

	follower, fts := startFollower(t, Config{Schema: schema}, lts.URL)
	waitFor(t, "follower readiness", func() bool {
		return getJSON(t, fts+"/readyz", nil) == http.StatusOK
	})
	if follower.follower.snapSeq.Load() == 0 {
		t.Fatal("follower did not bootstrap from a snapshot")
	}

	// The replicated window store has user 7's three observes: a fourth
	// event scores as flagged on the follower — read-only, so scoring it
	// twice yields the same aggregate (the follower never observes).
	for try := 0; try < 2; try++ {
		var sr scoreResponse
		if code, body := postJSON(t, fts+"/v1/score", vtx(103, 7, 50), &sr); code != http.StatusOK {
			t.Fatalf("follower score: %d %s", code, body)
		} else if !sr.Flagged[0] {
			t.Fatalf("try %d: follower did not flag the velocity rule (%+v)", try, sr)
		}
	}
	// A different user has no replicated activity: not flagged.
	var sr scoreResponse
	if _, body := postJSON(t, fts+"/v1/score", vtx(103, 8, 50), &sr); sr.Flagged[0] {
		t.Fatalf("unseen user flagged: %s", body)
	}
}
