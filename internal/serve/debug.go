package serve

import (
	"math"
	"net/http"
	"runtime/metrics"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// This file is the runtime-introspection surface (DESIGN.md §15): the
// runtime/metrics collector behind the rudolf_go_* series, the pre-scrape
// refresh that keeps the window / WAL / slow-ring gauges honest, and the
// two debug endpoints — GET /v1/debug/slow (the tail-sampled slow-request
// ring, Chrome-trace or JSON) and GET /v1/debug/state (one consolidated
// JSON document covering every subsystem that used to be blind).

// runtimeCollector samples runtime/metrics into telemetry series on demand
// (before every /metrics scrape and /v1/debug/state read), so the runtime
// view costs nothing between scrapes.
type runtimeCollector struct {
	goroutines  *telemetry.Gauge
	heapBytes   *telemetry.Gauge
	heapObjects *telemetry.Gauge
	gcCycles    *telemetry.Gauge
	gcPause     *telemetry.Histogram

	mu        sync.Mutex
	samples   []metrics.Sample
	pauseIdx  int      // index of the GC pause histogram sample; -1 if unsupported
	lastPause []uint64 // previous cumulative pause bucket counts
}

// runtime/metrics names sampled by the collector. The GC pause histogram
// has two candidate names across Go releases; the first one the runtime
// recognizes wins.
var runtimePauseNames = []string{
	"/sched/pauses/total/gc:seconds", // Go 1.22+
	"/gc/pauses:seconds",             // older name, kept as a fallback
}

func newRuntimeCollector(r *telemetry.Registry) *runtimeCollector {
	rc := &runtimeCollector{
		goroutines:  r.Gauge("rudolf_go_goroutines"),
		heapBytes:   r.Gauge("rudolf_go_heap_bytes"),
		heapObjects: r.Gauge("rudolf_go_heap_objects"),
		gcCycles:    r.Gauge("rudolf_go_gc_cycles"),
		gcPause:     r.Histogram("rudolf_go_gc_pause_seconds", telemetry.StageBuckets),
		pauseIdx:    -1,
	}
	rc.samples = []metrics.Sample{
		{Name: "/sched/goroutines:goroutines"},
		{Name: "/memory/classes/heap/objects:bytes"},
		{Name: "/gc/heap/objects:objects"},
		{Name: "/gc/cycles/total:gc-cycles"},
	}
	// Probe the pause-histogram candidates once; keep the first supported.
	probe := make([]metrics.Sample, len(runtimePauseNames))
	for i, n := range runtimePauseNames {
		probe[i].Name = n
	}
	metrics.Read(probe)
	for _, p := range probe {
		if p.Value.Kind() == metrics.KindFloat64Histogram {
			rc.pauseIdx = len(rc.samples)
			rc.samples = append(rc.samples, metrics.Sample{Name: p.Name})
			break
		}
	}
	return rc
}

// refresh re-samples the runtime and updates the telemetry series. GC pause
// counts are cumulative in runtime/metrics, so only the per-bucket deltas
// since the previous refresh are folded into the telemetry histogram.
func (rc *runtimeCollector) refresh() {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	metrics.Read(rc.samples)
	for i := range rc.samples {
		s := &rc.samples[i]
		if s.Value.Kind() != metrics.KindUint64 {
			continue
		}
		v := int64(s.Value.Uint64())
		switch s.Name {
		case "/sched/goroutines:goroutines":
			rc.goroutines.Set(v)
		case "/memory/classes/heap/objects:bytes":
			rc.heapBytes.Set(v)
		case "/gc/heap/objects:objects":
			rc.heapObjects.Set(v)
		case "/gc/cycles/total:gc-cycles":
			rc.gcCycles.Set(v)
		}
	}
	if rc.pauseIdx < 0 {
		return
	}
	h := rc.samples[rc.pauseIdx].Value.Float64Histogram()
	if h == nil {
		return
	}
	if len(rc.lastPause) != len(h.Counts) {
		rc.lastPause = make([]uint64, len(h.Counts))
	}
	for i, c := range h.Counts {
		if d := c - rc.lastPause[i]; d > 0 {
			// Attribute the delta to the bucket's finite edge (the runtime's
			// outermost buckets are unbounded).
			v := h.Buckets[i]
			if math.IsInf(v, 0) {
				v = h.Buckets[i+1]
			}
			if !math.IsInf(v, 0) {
				rc.gcPause.ObserveN(v, d)
			}
		}
		rc.lastPause[i] = c
	}
}

// refreshDebugStats recomputes every derived observability series: runtime
// gauges, window occupancy and eviction counters, WAL footprint gauges and
// the slow-ring counters. Called before each /metrics scrape and each
// /v1/debug/state read — never on the scoring path.
func (s *Server) refreshDebugStats() {
	s.debugMu.Lock()
	defer s.debugMu.Unlock()
	s.rc.refresh()
	if s.winStore != nil {
		s.mWinEntries.Set(s.winStore.Entries())
		s.mWinWatermark.Set(s.winStore.Watermark())
		exp, lru := s.winStore.EvictionsByCause()
		s.mWinEvictExpired.Add(uint64(exp) - s.lastWinEvictExpired)
		s.lastWinEvictExpired = uint64(exp)
		s.mWinEvictLRU.Add(uint64(lru) - s.lastWinEvictLRU)
		s.lastWinEvictLRU = uint64(lru)
	}
	if s.wal != nil {
		st := s.wal.Stats()
		s.mWALSegments.Set(int64(st.Segments))
		s.mWALDiskBytes.Set(st.DiskBytes)
	}
	ss := s.tracer.SlowStats()
	s.mSlowPromoted.Add(ss.Promoted - s.lastSlowPromoted)
	s.lastSlowPromoted = ss.Promoted
	s.mSlowThreshold.Set(ss.Threshold.Seconds())
}

// --- GET /v1/debug/slow ----------------------------------------------------

// debugSpan is one span of a retained slow-request tree on the wire.
type debugSpan struct {
	ID      uint64         `json:"id"`
	Parent  uint64         `json:"parent,omitempty"`
	Name    string         `json:"name"`
	StartNS int64          `json:"start_ns"`
	DurNS   int64          `json:"dur_ns"`
	Instant bool           `json:"instant,omitempty"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// debugSlowEntry is one promoted slow request: identity, why it qualified,
// the per-stage breakdown re-derived from its stage.<name> child spans, and
// the full span tree.
type debugSlowEntry struct {
	Seq          uint64           `json:"seq"`
	RequestID    string           `json:"request_id,omitempty"`
	Name         string           `json:"name"`
	StartNS      int64            `json:"start_ns"`
	DurNS        int64            `json:"dur_ns"`
	ThresholdNS  int64            `json:"threshold_ns"`
	StagesNS     map[string]int64 `json:"stages_ns,omitempty"`
	StageTotalNS int64            `json:"stage_total_ns"`
	Spans        []debugSpan      `json:"spans"`
}

// debugSlowResponse is the GET /v1/debug/slow JSON document.
type debugSlowResponse struct {
	Count         int              `json:"count"`
	PromotedTotal uint64           `json:"promoted_total"`
	ObservedRoots uint64           `json:"observed_roots"`
	ThresholdNS   int64            `json:"threshold_ns"`
	FloorNS       int64            `json:"floor_ns"`
	Entries       []debugSlowEntry `json:"entries"`
}

func attrsOf(r *trace.Record) map[string]any {
	if r.NAttrs == 0 {
		return nil
	}
	m := make(map[string]any, r.NAttrs)
	for _, a := range r.Attrs[:r.NAttrs] {
		m[a.Key] = a.Value()
	}
	return m
}

func slowEntryWire(e trace.SlowEntry) debugSlowEntry {
	out := debugSlowEntry{
		Seq:         e.Seq,
		Name:        e.Root.Name,
		StartNS:     e.Root.Start,
		DurNS:       int64(e.Root.Dur),
		ThresholdNS: int64(e.Threshold),
		Spans:       make([]debugSpan, 0, len(e.Spans)),
	}
	for _, a := range e.Root.Attrs[:e.Root.NAttrs] {
		if a.Key == "id" {
			if id, ok := a.Value().(string); ok {
				out.RequestID = id
			}
		}
	}
	for i := range e.Spans {
		r := &e.Spans[i]
		out.Spans = append(out.Spans, debugSpan{
			ID: r.ID, Parent: r.Parent, Name: r.Name,
			StartNS: r.Start, DurNS: int64(r.Dur), Instant: r.Instant,
			Attrs: attrsOf(r),
		})
		if r.Parent == e.Root.ID && strings.HasPrefix(r.Name, "stage.") {
			if out.StagesNS == nil {
				out.StagesNS = make(map[string]int64, int(numStages))
			}
			out.StagesNS[strings.TrimPrefix(r.Name, "stage.")] += int64(r.Dur)
			out.StageTotalNS += int64(r.Dur)
		}
	}
	return out
}

// handleDebugSlow exports the tail-sampled slow-request ring: structured
// JSON by default (per-entry stage breakdown included), or the flattened
// Chrome trace_event form with ?format=chrome. Like /v1/trace it is
// deliberately uninstrumented — inspecting the slow ring must not emit
// request spans that could themselves be promoted.
func (s *Server) handleDebugSlow(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, r, http.MethodGet)
		return
	}
	entries := s.tracer.SlowSnapshot()
	switch f := r.URL.Query().Get("format"); f {
	case "", "json":
		ss := s.tracer.SlowStats()
		resp := debugSlowResponse{
			Count:         len(entries),
			PromotedTotal: ss.Promoted,
			ObservedRoots: ss.Observed,
			ThresholdNS:   int64(ss.Threshold),
			FloorNS:       int64(ss.Floor),
			Entries:       make([]debugSlowEntry, 0, len(entries)),
		}
		for _, e := range entries {
			resp.Entries = append(resp.Entries, slowEntryWire(e))
		}
		s.writeJSON(w, http.StatusOK, resp)
	case "chrome":
		var recs []trace.Record
		for _, e := range entries {
			recs = append(recs, e.Spans...)
		}
		w.Header().Set("Content-Type", "application/json")
		trace.WriteChrome(w, recs) //nolint:errcheck // client gone: nothing to do
	default:
		s.writeErrorID(w, "", http.StatusBadRequest, CodeBadRequest, "unknown format %q (want json or chrome)", f)
	}
}

// --- GET /v1/debug/state ---------------------------------------------------

type debugTraceState struct {
	Capacity  int    `json:"capacity"`
	Held      int    `json:"held"`
	Dropped   uint64 `json:"dropped"`
	AttrDrops uint64 `json:"attr_drops"`
}

type debugSlowState struct {
	Capacity    int    `json:"capacity"`
	Len         int    `json:"len"`
	Promoted    uint64 `json:"promoted"`
	Observed    uint64 `json:"observed_roots"`
	FloorNS     int64  `json:"floor_ns"`
	ThresholdNS int64  `json:"threshold_ns"`
}

type debugWindowState struct {
	Entries          int64 `json:"entries"`
	MaxEntries       int   `json:"max_entries"`
	WatermarkMinutes int64 `json:"watermark_minutes"`
	Specs            int   `json:"specs"`
	EvictedExpired   int64 `json:"evicted_expired"`
	EvictedLRU       int64 `json:"evicted_lru"`
	OccupiedShards   int   `json:"occupied_shards"`
	MaxShard         int   `json:"max_shard"`
	ShardOccupancy   []int `json:"shard_occupancy"`
}

type debugWALState struct {
	Segments      int    `json:"segments"`
	DiskBytes     int64  `json:"disk_bytes"`
	LastSeq       uint64 `json:"last_seq"`
	Appends       uint64 `json:"appends"`
	Fsyncs        uint64 `json:"fsyncs"`
	Replayed      uint64 `json:"replayed"`
	TornTailDrops uint64 `json:"torn_tail_drops"`
}

type debugCaptureState struct {
	BoundRules  int    `json:"bound_rules"`
	Hits        uint64 `json:"hits"`
	Rebinds     uint64 `json:"rebinds"`
	Invalidates uint64 `json:"invalidates"`
}

type debugRuntimeState struct {
	Goroutines     int64   `json:"goroutines"`
	HeapBytes      int64   `json:"heap_bytes"`
	HeapObjects    int64   `json:"heap_objects"`
	GCCycles       int64   `json:"gc_cycles"`
	GCPauseP50Secs float64 `json:"gc_pause_p50_seconds"`
	GCPauseP99Secs float64 `json:"gc_pause_p99_seconds"`
}

// debugStateResponse is the GET /v1/debug/state JSON document: one
// consolidated view of the serving process and its subsystems.
type debugStateResponse struct {
	Now           string            `json:"now"`
	UptimeSeconds float64           `json:"uptime_seconds"`
	Version       int               `json:"version"`
	Rules         int               `json:"rules"`
	Workers       int               `json:"workers"`
	Inflight      int64             `json:"inflight"`
	Draining      bool              `json:"draining"`
	ScoredTx      uint64            `json:"scored_tx"`
	Trace         debugTraceState   `json:"trace"`
	Slow          debugSlowState    `json:"slow"`
	Window        *debugWindowState      `json:"window"`
	WAL           *debugWALState         `json:"wal"`
	Capture       debugCaptureState      `json:"capture"`
	Runtime       debugRuntimeState      `json:"runtime"`
	Replication   *debugReplicationState `json:"replication"`
	Alerts        *debugAlertsState      `json:"alerts"`
}

// handleDebugState consolidates the introspection stats of every subsystem
// into one document. Uninstrumented for the same reason as /v1/trace and
// /v1/debug/slow.
func (s *Server) handleDebugState(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, r, http.MethodGet)
		return
	}
	s.refreshDebugStats()
	now := time.Now()
	st := s.state.Load()
	ss := s.tracer.SlowStats()
	traceCap := s.cfg.TraceCapacity
	if traceCap <= 0 {
		traceCap = trace.DefaultCapacity
	}
	resp := debugStateResponse{
		Now:           now.UTC().Format(time.RFC3339Nano),
		UptimeSeconds: now.Sub(s.started).Seconds(),
		Version:       st.version,
		Rules:         st.set.Len(),
		Workers:       s.cfg.Workers,
		Inflight:      s.mInflight.Value(),
		Draining:      s.draining.Load(),
		ScoredTx:      s.mScoreTx.Value(),
		Trace: debugTraceState{
			Capacity:  traceCap,
			Held:      s.tracer.Len(),
			Dropped:   s.tracer.Dropped(),
			AttrDrops: s.tracer.AttrsDropped(),
		},
		Slow: debugSlowState{
			Capacity:    ss.Capacity,
			Len:         ss.Len,
			Promoted:    ss.Promoted,
			Observed:    ss.Observed,
			FloorNS:     int64(ss.Floor),
			ThresholdNS: int64(ss.Threshold),
		},
		Runtime: debugRuntimeState{
			Goroutines:     s.rc.goroutines.Value(),
			HeapBytes:      s.rc.heapBytes.Value(),
			HeapObjects:    s.rc.heapObjects.Value(),
			GCCycles:       s.rc.gcCycles.Value(),
			GCPauseP50Secs: s.rc.gcPause.Quantile(0.50),
			GCPauseP99Secs: s.rc.gcPause.Quantile(0.99),
		},
	}
	if s.winStore != nil {
		occ := s.winStore.ShardOccupancy()
		ws := &debugWindowState{
			Entries:          s.winStore.Entries(),
			MaxEntries:       s.winStore.MaxEntries(),
			WatermarkMinutes: s.winStore.Watermark(),
			Specs:            len(s.winStore.Specs()),
			ShardOccupancy:   occ,
		}
		ws.EvictedExpired, ws.EvictedLRU = s.winStore.EvictionsByCause()
		for _, n := range occ {
			if n > 0 {
				ws.OccupiedShards++
			}
			if n > ws.MaxShard {
				ws.MaxShard = n
			}
		}
		resp.Window = ws
	}
	if s.wal != nil {
		wst := s.wal.Stats()
		resp.WAL = &debugWALState{
			Segments:      wst.Segments,
			DiskBytes:     wst.DiskBytes,
			LastSeq:       wst.LastSeq,
			Appends:       wst.Appends,
			Fsyncs:        wst.Fsyncs,
			Replayed:      wst.Replayed,
			TornTailDrops: wst.TornTailDrops,
		}
	}
	resp.Replication = s.replicationDebugState()
	resp.Alerts = s.alertsDebugState()
	s.mu.Lock()
	hits, rebinds, invalidates := s.cache.Stats()
	resp.Capture = debugCaptureState{
		BoundRules:  s.cache.Len(),
		Hits:        hits,
		Rebinds:     rebinds,
		Invalidates: invalidates,
	}
	s.mu.Unlock()
	s.writeJSON(w, http.StatusOK, resp)
}
