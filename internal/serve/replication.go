// The leader side of WAL-shipping replication (DESIGN.md §16): the /v1/wal
// surface a follower bootstraps and tails from. All three endpoints are
// gated on durability — replication ships the write-ahead log, so a leader
// without Config.DataDir has nothing to serve.
//
//	GET /v1/wal/segments        point-in-time manifest: segment list, last
//	                            durable seq, newest snapshot seq
//	GET /v1/wal/snapshot?seq=N  every file of snapshot N, base64-encoded in
//	                            one atomic JSON document
//	GET /v1/wal/stream?from=N   chunked raw WAL frames from seq N, exactly
//	                            the on-disk "<seq> <len> <crc32> <payload>"
//	                            wire format, long-polling at the tail
package serve

import (
	"encoding/base64"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/wal"
)

// walSegmentsResponse is the GET /v1/wal/segments document. A follower uses
// snapshot_seq to pick its bootstrap point and last_seq as its catch-up
// target.
type walSegmentsResponse struct {
	RequestID   string            `json:"request_id,omitempty"`
	FirstSeq    uint64            `json:"first_seq"`
	LastSeq     uint64            `json:"last_seq"`
	SnapshotSeq uint64            `json:"snapshot_seq"`
	Segments    []wal.SegmentInfo `json:"segments"`
}

// walSnapshotResponse is the GET /v1/wal/snapshot document: the files of one
// snapshot directory in a single response, so a concurrent snapshot rotation
// can never hand a follower a torn mix of two snapshots.
type walSnapshotResponse struct {
	RequestID string            `json:"request_id,omitempty"`
	Seq       uint64            `json:"seq"`
	Files     map[string]string `json:"files"`
}

// requireWAL gates the replication surface on durability.
func (s *Server) requireWAL(w http.ResponseWriter, r *http.Request) bool {
	if s.wal == nil {
		s.writeError(w, r, http.StatusNotFound, CodeNotFound,
			"replication requires a durable leader (start with -data-dir)")
		return false
	}
	return true
}

// handleWALSegments serves the WAL manifest.
func (s *Server) handleWALSegments(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, r, http.MethodGet)
		return
	}
	if !s.requireWAL(w, r) {
		return
	}
	m := s.wal.Manifest()
	s.mu.Lock()
	snapSeq := s.lastSnapSeq
	s.mu.Unlock()
	s.writeJSON(w, http.StatusOK, walSegmentsResponse{
		RequestID:   requestMeta(r).id,
		FirstSeq:    m.FirstSeq,
		LastSeq:     m.LastSeq,
		SnapshotSeq: snapSeq,
		Segments:    m.Segments,
	})
}

// handleWALSnapshot serves the files of one snapshot (?seq=N; default the
// newest) base64-encoded in a single document. If the requested snapshot was
// rotated away in the meantime the follower gets a 404 and refetches the
// manifest — never a mix of two snapshots.
func (s *Server) handleWALSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, r, http.MethodGet)
		return
	}
	if !s.requireWAL(w, r) {
		return
	}
	s.mu.Lock()
	seq := s.lastSnapSeq
	s.mu.Unlock()
	if q := r.URL.Query().Get("seq"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, CodeBadRequest, "bad seq %q (want an unsigned integer)", q)
			return
		}
		seq = v
	}
	if seq == 0 {
		s.writeError(w, r, http.StatusNotFound, CodeNotFound, "no snapshot yet (bootstrap empty and stream from seq 1)")
		return
	}
	dir := filepath.Join(s.cfg.DataDir, snapName(seq))
	files := make(map[string]string)
	for _, name := range []string{manifestFile, feedbackFile, historyFile, rulesFile, windowFile} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			if os.IsNotExist(err) {
				if name == windowFile {
					continue // optional: snapshots of window-less servers omit it
				}
				s.writeError(w, r, http.StatusNotFound, CodeNotFound,
					"snapshot %d is gone (rotated away); refetch /v1/wal/segments", seq)
				return
			}
			s.writeError(w, r, http.StatusInternalServerError, CodeInternal, "reading snapshot %d: %v", seq, err)
			return
		}
		files[name] = base64.StdEncoding.EncodeToString(data)
	}
	s.writeJSON(w, http.StatusOK, walSnapshotResponse{RequestID: requestMeta(r).id, Seq: seq, Files: files})
}

// handleWALStream streams raw WAL frames from ?from=<seq>, long-polling at
// the durable tail. The open Reader pins its position, so snapshot pruning
// can never unlink a segment out from under the stream (wal.Log.Prune); a
// `from` that was already pruned answers 409 — the follower's signal to
// re-bootstrap from a snapshot.
//
// The route is mounted without http.TimeoutHandler (the response is
// long-lived by design) and uninstrumented (a stream span would live for
// minutes and always be promoted into the slow ring). The stream ends when
// the client disconnects, the server drains, or the WAL is corrupt.
func (s *Server) handleWALStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, r, http.MethodGet)
		return
	}
	if !s.requireWAL(w, r) {
		return
	}
	from := uint64(1)
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil || v == 0 {
			s.writeErrorID(w, "", http.StatusBadRequest, CodeBadRequest, "bad from %q (want a sequence number >= 1)", q)
			return
		}
		from = v
	}
	rd, err := s.wal.NewReader(from)
	if err != nil {
		if errors.Is(err, wal.ErrPruned) {
			s.writeErrorID(w, "", http.StatusConflict, CodeConflict,
				"seq %d was pruned behind a snapshot; re-bootstrap from /v1/wal/snapshot (%v)", from, err)
			return
		}
		s.writeErrorID(w, "", http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	defer rd.Close()

	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	ctx := r.Context()
	var buf []byte
	for {
		e, ok, rerr := rd.Next()
		if rerr != nil {
			// Corruption mid-log or the log closed under us: drop the
			// connection; the follower reconnects and the manifest decides.
			s.log.Warn("wal stream aborted", "from", from, "pos", rd.Pos(), "err", rerr)
			return
		}
		if ok {
			buf = wal.AppendFrame(buf[:0], e.Seq, e.Payload)
			if _, werr := w.Write(buf); werr != nil {
				if !isClientGone(werr) {
					s.log.Warn("wal stream write failed", "err", werr)
				}
				return
			}
			continue
		}
		// Durable tail: flush what the follower has not seen yet, then
		// long-poll for the next append (or the end of the world).
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-ctx.Done():
			return
		case <-s.drainCh:
			return // draining: the follower reconnects elsewhere/later
		case <-s.wal.WaitFor(rd.Pos()):
		}
	}
}
